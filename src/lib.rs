//! # anderson-fmm — reproduction of Hu & Johnsson, SC'96
//!
//! *A Data-Parallel Implementation of O(N) Hierarchical N-body Methods*:
//! Anderson's variant of the fast multipole method, its BLAS-aggregated
//! hierarchy traversal, the supernode optimization, the coordinate sort,
//! and an instrumented data-parallel machine model reproducing the paper's
//! communication experiments.
//!
//! This facade crate re-exports the public API of the workspace crates:
//!
//! * [`fmm_core`] — the method itself ([`Fmm`], [`FmmConfig`]),
//! * [`fmm_sphere`] — sphere quadrature and Anderson's computational
//!   elements,
//! * [`fmm_tree`] — the uniform hierarchy, interaction lists, supernodes,
//! * [`fmm_linalg`] — the small dense-BLAS substrate,
//! * [`fmm_machine`] — the CM-5-like data-parallel machine simulator,
//! * [`fmm_spmd`] — the message-passing SPMD executor behind it
//!   (`Executor::spmd(p)`: worker threads as VUs, explicit channels,
//!   measured per-phase data motion) and its pluggable fabrics
//!   ([`Transport`]: in-process channels, UNIX-domain sockets, TCP —
//!   bitwise-identical output on all three; see `fmm-worker` for
//!   multi-process execution),
//! * [`fmm_direct`] / [`fmm_bh`] — O(N²) and Barnes–Hut baselines,
//! * [`fmm2d`] — the two-dimensional (log-kernel) variant of the method,
//! * [`fmm_serve`] — a batched, multi-tenant evaluation service
//!   (coalescing batcher + shared [`PlanRegistry`]).
//!
//! See `examples/quickstart.rs` for a five-line end-to-end use.

pub use fmm2d;
pub use fmm_bh;
pub use fmm_core;
pub use fmm_direct;
pub use fmm_linalg;
pub use fmm_machine;
pub use fmm_serve;
pub use fmm_sphere;
pub use fmm_spmd;
pub use fmm_tree;

pub use fmm_core::{BatchOutput, BatchRequest, PlanKey, PlanRegistry, RegistryStats};
pub use fmm_core::{Counters, Fabric, SpmdOptions};
pub use fmm_core::{DepthPolicy, EvalOutput, Executor, Fmm, FmmConfig, FmmError, Precision};
pub use fmm_linalg::Kernel;
pub use fmm_spmd::{FabricAddr, Transport};
