//! Cross-crate integration: the machine simulator's ghost-buffer fetch
//! feeds a real interactive-field (T2) computation, and the result must
//! match `fmm-core`'s shared-memory downward pass box-for-box.
//!
//! This is the strongest fidelity claim for the communication substrate:
//! the halos the Table-4 strategies build contain exactly the data the
//! numerical method needs.

use anderson_fmm::fmm_core::field::FieldHierarchy;
use anderson_fmm::fmm_core::plan::TraversalPlan;
use anderson_fmm::fmm_core::translations::TranslationSet;
use anderson_fmm::fmm_core::traversal::{downward_pass, upward_pass, Aggregation};
use anderson_fmm::fmm_machine::ghost::{fetch, ghost_extents, FetchStrategy, GHOST_DEPTH};
use anderson_fmm::fmm_machine::{BlockLayout, DistGrid, VuGrid};
use anderson_fmm::fmm_sphere::SphereRule;
use anderson_fmm::fmm_tree::{interactive_field_offsets, BoxCoord, Hierarchy, Separation};

#[test]
fn simulated_ghost_fetch_supports_exact_t2() {
    // Shared-memory truth: a depth-5 hierarchy (32³ leaves) with pseudo-
    // random leaf outer samples, downward pass without supernodes.
    let rule = SphereRule::for_order(3);
    let k = rule.len();
    let ts = TranslationSet::build(&rule, 2, 1.6, 1.0, Separation::Two, false);
    let depth = 5u32;
    let mut fh = FieldHierarchy::new(Hierarchy::new(depth), k);
    let mut state = 4242u64;
    for v in fh.far[depth as usize].iter_mut() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }
    let plan = TraversalPlan::build(depth, Separation::Two);
    upward_pass(&mut fh, &ts, &plan, Aggregation::Gemm, false);
    downward_pass(&mut fh, &ts, &plan, false, Aggregation::Gemm, false);

    // Machine side: distribute the leaf level over 4×4×4 VUs (8³
    // subgrids) and fetch the ghost halo with the forwarding strategy.
    let layout = BlockLayout::new([32, 32, 32], VuGrid::new([4, 4, 4]));
    let grid = DistGrid::from_fn(layout, k, |g, c| {
        let b = BoxCoord {
            level: depth,
            x: g[0] as u32,
            y: g[1] as u32,
            z: g[2] as u32,
        };
        fh.far[depth as usize][b.index() * k + c]
    });
    let result = fetch(&grid, FetchStrategy::LinearizedAliased, &[]);
    let ghost = result.ghost_vu0.expect("buffer");
    let ext = ghost_extents(&layout);

    // Recompute the T2 contribution of every box in VU 0's subgrid from
    // the ghost buffer alone, and compare with the shared-memory result.
    // VU 0's subgrid is [0,8)³, which touches the global boundary; the
    // machine's halos wrap circularly while the method clips, so restrict
    // to target boxes whose full interactive field is in-domain AND
    // within the buffer: boxes at local coords [5, 8) exist only on
    // interior VUs — instead, verify the *interior* targets of VU 0 whose
    // interactive fields stay inside [0, 32)³, reading sources from the
    // buffer when they are within its span and checking the buffer agrees
    // with global data there.
    let local_leaf = &fh.local[depth as usize];
    let mut checked = 0;
    for tz in 5..8u32 {
        for ty in 5..8u32 {
            for tx in 5..8u32 {
                let t = BoxCoord {
                    level: depth,
                    x: tx,
                    y: ty,
                    z: tz,
                };
                let oct = [(tx & 1) as i32, (ty & 1) as i32, (tz & 1) as i32];
                let mut acc = vec![0.0; k];
                let mut all_in_buffer = true;
                for off in interactive_field_offsets(oct, Separation::Two) {
                    let s = [tx as i32 + off[0], ty as i32 + off[1], tz as i32 + off[2]];
                    if s.iter().any(|&v| !(0..32).contains(&v)) {
                        continue; // clipped by the method
                    }
                    // Buffer coordinate: local + G (VU 0's origin is 0).
                    let e = [
                        s[0] + GHOST_DEPTH as i32,
                        s[1] + GHOST_DEPTH as i32,
                        s[2] + GHOST_DEPTH as i32,
                    ];
                    if e.iter().zip(&ext).any(|(&v, &x)| v < 0 || v as usize >= x) {
                        all_in_buffer = false;
                        break;
                    }
                    let src =
                        ((e[2] as usize * ext[1] + e[1] as usize) * ext[0] + e[0] as usize) * k;
                    let g = &ghost[src..src + k];
                    let m = ts.t2(off).expect("interactive offset");
                    for j in 0..k {
                        let mut v = 0.0;
                        for i in 0..k {
                            v += g[i] * m[(i, j)];
                        }
                        acc[j] += v;
                    }
                }
                if !all_in_buffer {
                    continue;
                }
                // Shared-memory result = T2 + T3; subtract the T3 part by
                // recomputing it, or simpler: recompute T2-only truth.
                let mut truth = vec![0.0; k];
                for off in interactive_field_offsets(oct, Separation::Two) {
                    if let Some(s) = t.offset(off) {
                        let g = &fh.far[depth as usize][s.index() * k..(s.index() + 1) * k];
                        let m = ts.t2(off).unwrap();
                        for j in 0..k {
                            let mut v = 0.0;
                            for i in 0..k {
                                v += g[i] * m[(i, j)];
                            }
                            truth[j] += v;
                        }
                    }
                }
                for (a, b) in acc.iter().zip(&truth) {
                    assert!(
                        (a - b).abs() < 1e-12,
                        "ghost-fed T2 differs at box {:?}: {} vs {}",
                        (tx, ty, tz),
                        a,
                        b
                    );
                }
                checked += 1;
                let _ = local_leaf;
            }
        }
    }
    assert!(checked >= 20, "only {} boxes checked", checked);
}

#[test]
fn all_fetch_strategies_equivalent_on_fmm_data() {
    // Aliased strategies must deliver identical halos when fed real FMM
    // far-field data (not just synthetic patterns).
    let rule = SphereRule::for_order(2);
    let k = rule.len();
    let layout = BlockLayout::new([16, 16, 16], VuGrid::new([2, 2, 2]));
    let grid = DistGrid::from_fn(layout, k, |g, c| {
        ((g[0] * 31 + g[1] * 17 + g[2] * 7 + c) % 101) as f64 * 0.01
    });
    let a = fetch(&grid, FetchStrategy::DirectAliased, &[])
        .ghost_vu0
        .unwrap();
    let b = fetch(&grid, FetchStrategy::LinearizedAliased, &[])
        .ghost_vu0
        .unwrap();
    let c = fetch(&grid, FetchStrategy::LinearizedAliasedWholeSubgrid, &[])
        .ghost_vu0
        .unwrap();
    assert_eq!(a.len(), b.len());
    for i in 0..a.len() {
        assert_eq!(a[i], b[i]);
        assert_eq!(a[i], c[i]);
    }
}
