//! Property-based tests of physical and structural invariants.

use anderson_fmm::fmm_core::{Fmm, FmmConfig};
use anderson_fmm::fmm_linalg::{gemm_acc_with, gemm_naive, gemv_with, Kernel};
use anderson_fmm::fmm_tree::{bin_particles, morton, BoxCoord, Domain};
use proptest::prelude::*;

fn small_system() -> impl Strategy<Value = (Vec<[f64; 3]>, Vec<f64>)> {
    // 30–120 particles in the unit cube with charges in [−2, 2].
    (30usize..120).prop_flat_map(|n| {
        (
            proptest::collection::vec(
                (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0).prop_map(|(x, y, z)| [x, y, z]),
                n,
            ),
            proptest::collection::vec(-2.0f64..2.0, n),
        )
    })
}

fn fmm() -> Fmm {
    Fmm::new(FmmConfig::order(3).depth(2).sequential()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Rigid translation of the whole system (and its domain) leaves every
    /// potential unchanged — the method has no preferred origin.
    #[test]
    fn translation_invariance((pts, q) in small_system(),
                              shift in (-5.0f64..5.0, -5.0f64..5.0, -5.0f64..5.0)) {
        let f = fmm();
        let d1 = Domain::unit();
        let p1 = f.evaluate_in(&pts, &q, d1).unwrap().potentials;
        let shifted: Vec<[f64;3]> = pts.iter()
            .map(|p| [p[0] + shift.0, p[1] + shift.1, p[2] + shift.2])
            .collect();
        let d2 = Domain { min: [shift.0, shift.1, shift.2], size: 1.0 };
        let p2 = f.evaluate_in(&shifted, &q, d2).unwrap().potentials;
        for (a, b) in p1.iter().zip(&p2) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()),
                         "{} vs {}", a, b);
        }
    }

    /// Scaling all lengths by λ scales potentials by 1/λ (Coulomb kernel
    /// homogeneity); translation matrices are scale-free.
    #[test]
    fn scaling_covariance((pts, q) in small_system(), lambda in 0.2f64..5.0) {
        let f = fmm();
        let p1 = f.evaluate_in(&pts, &q, Domain::unit()).unwrap().potentials;
        let scaled: Vec<[f64;3]> = pts.iter()
            .map(|p| [p[0] * lambda, p[1] * lambda, p[2] * lambda])
            .collect();
        let d2 = Domain { min: [0.0;3], size: lambda };
        let p2 = f.evaluate_in(&scaled, &q, d2).unwrap().potentials;
        for (a, b) in p1.iter().zip(&p2) {
            prop_assert!((a / lambda - b).abs() < 1e-9 * (1.0 + b.abs()),
                         "λ={}: {} vs {}", lambda, a / lambda, b);
        }
    }

    /// The result must not depend on the order particles are supplied in.
    #[test]
    fn permutation_invariance((pts, q) in small_system(), seed in 0u64..1000) {
        let f = fmm();
        let p1 = f.evaluate_in(&pts, &q, Domain::unit()).unwrap().potentials;
        // A deterministic shuffle from the seed.
        let n = pts.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = seed.wrapping_add(1);
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s as usize) % (i + 1));
        }
        let pts2: Vec<[f64;3]> = order.iter().map(|&i| pts[i]).collect();
        let q2: Vec<f64> = order.iter().map(|&i| q[i]).collect();
        let p2 = f.evaluate_in(&pts2, &q2, Domain::unit()).unwrap().potentials;
        for (pos, &i) in order.iter().enumerate() {
            prop_assert!((p1[i] - p2[pos]).abs() < 1e-10 * (1.0 + p1[i].abs()));
        }
    }

    /// Superposition: potentials are linear in the charges.
    #[test]
    fn superposition((pts, q) in small_system(), alpha in -3.0f64..3.0) {
        let f = fmm();
        let d = Domain::unit();
        let p1 = f.evaluate_in(&pts, &q, d).unwrap().potentials;
        let q2: Vec<f64> = q.iter().map(|v| alpha * v).collect();
        let p2 = f.evaluate_in(&pts, &q2, d).unwrap().potentials;
        for (a, b) in p1.iter().zip(&p2) {
            prop_assert!((alpha * a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    /// Total force on an isolated system vanishes (Newton's third law
    /// carries through far field + near field).
    #[test]
    fn momentum_conservation((pts, q) in small_system()) {
        let f = Fmm::new(FmmConfig::order(7).depth(2).sequential()).unwrap();
        let out = f.evaluate_in_forces_helper(&pts, &q);
        let fields = out;
        let mut total = [0.0f64; 3];
        let mut scale = 0.0f64;
        for (fi, qi) in fields.iter().zip(&q) {
            for (ta, fa) in total.iter_mut().zip(fi) {
                *ta += qi * fa;
                scale = scale.max((qi * fa).abs());
            }
        }
        for (a, ta) in total.iter().enumerate() {
            // The far-field part is approximate, so the cancellation is to
            // method accuracy, not machine precision.
            prop_assert!(ta.abs() < 2e-2 * scale.max(1e-9) * (pts.len() as f64).sqrt(),
                         "axis {}: total {} (scale {})", a, ta, scale);
        }
    }

    /// Morton encode/decode round-trips for arbitrary 16-bit coordinates.
    #[test]
    fn morton_round_trip(x in 0u32..65536, y in 0u32..65536, z in 0u32..65536) {
        let code = morton::morton_encode(x, y, z);
        prop_assert_eq!(morton::morton_decode(code), (x, y, z));
    }

    /// Binning is a permutation and every particle ends up in its box.
    #[test]
    fn binning_is_valid_partition(pts in proptest::collection::vec(
        (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0).prop_map(|(x, y, z)| [x, y, z]), 1..200),
        level in 1u32..4) {
        let d = Domain::unit();
        let ids: Vec<u32> = pts.iter().map(|&p| d.locate(p, level).index() as u32).collect();
        let n_boxes = 1usize << (3 * level);
        let b = bin_particles(&ids, n_boxes);
        let mut seen = vec![false; pts.len()];
        for bx in 0..n_boxes {
            for s in b.range(bx) {
                let orig = b.perm[s] as usize;
                prop_assert!(!seen[orig]);
                seen[orig] = true;
                prop_assert_eq!(ids[orig] as usize, bx);
            }
        }
        prop_assert!(seen.iter().all(|&v| v));
    }

    /// Box parent/child/octant arithmetic round-trips for random coords.
    #[test]
    fn box_coord_round_trip(level in 1u32..8, idx in 0usize..4096) {
        let n = 1usize << (3 * level);
        let idx = idx % n;
        let b = BoxCoord::from_index(level, idx);
        prop_assert_eq!(b.index(), idx);
        let p = b.parent().unwrap();
        prop_assert_eq!(p.child(b.octant()), b);
    }

    /// The dispatched GEMM microkernel (AVX2+FMA where available) agrees
    /// with the naive triple loop on awkward panel shapes: K spans the
    /// paper's operating points (12–120), panel rows cover all the edge
    /// cases of the register tiling (odd rows, sub-tile column tails).
    #[test]
    fn simd_gemm_matches_naive_on_odd_shapes(
        k in 12usize..=120,
        n in 1usize..513,
        seed in 0u64..1000,
    ) {
        let a = pseudo_f64(seed, n * k);
        let b = pseudo_f64(seed ^ 0x9e37, k * k);
        let mut c1 = pseudo_f64(seed ^ 0x7f4a, n * k);
        let mut c2 = c1.clone();
        gemm_acc_with(Kernel::detect(), n, k, k, &a, &b, &mut c1);
        gemm_naive(n, k, k, &a, &b, &mut c2);
        let scale = (k as f64).sqrt();
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((x - y).abs() < 1e-12 * scale * (1.0 + y.abs()),
                         "K={} n={}: {} vs {}", k, n, x, y);
        }
    }

    /// The dispatched GEMV kernel agrees with scalar on odd lengths, in
    /// both overwrite and accumulate modes.
    #[test]
    fn simd_gemv_matches_scalar(
        m in 1usize..200,
        k in 1usize..130,
        accumulate in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let a = pseudo_f64(seed, m * k);
        let x = pseudo_f64(seed ^ 0x1b3, k);
        let mut y1 = pseudo_f64(seed ^ 0x5c9, m);
        let mut y2 = y1.clone();
        gemv_with(Kernel::detect(), m, k, &a, &x, &mut y1, accumulate);
        gemv_with(Kernel::Scalar, m, k, &a, &x, &mut y2, accumulate);
        for (p, q) in y1.iter().zip(&y2) {
            prop_assert!((p - q).abs() < 1e-12 * (1.0 + q.abs()),
                         "m={} k={} acc={}: {} vs {}", m, k, accumulate, p, q);
        }
    }

    /// Repeated evaluations of the same system are bitwise reproducible
    /// and reuse the cached traversal plan.
    #[test]
    fn repeated_evaluate_deterministic((pts, q) in small_system()) {
        let f = fmm();
        let d = Domain::unit();
        let p1 = f.evaluate_in(&pts, &q, d).unwrap().potentials;
        prop_assert_eq!(f.plan_builds(), 1);
        let p2 = f.evaluate_in(&pts, &q, d).unwrap().potentials;
        prop_assert_eq!(f.plan_builds(), 1);
        for (a, b) in p1.iter().zip(&p2) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

/// Deterministic pseudo-random f64s in [−1, 1] for the kernel tests.
fn pseudo_f64(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(99991);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
        .collect()
}

/// Helper trait-ish shim: evaluate forces and unwrap fields (kept out of
/// the proptest macro for readability).
trait ForcesHelper {
    fn evaluate_in_forces_helper(&self, pts: &[[f64; 3]], q: &[f64]) -> Vec<[f64; 3]>;
}

impl ForcesHelper for Fmm {
    fn evaluate_in_forces_helper(&self, pts: &[[f64; 3]], q: &[f64]) -> Vec<[f64; 3]> {
        self.evaluate_forces(pts, q).unwrap().fields.unwrap()
    }
}
