//! Integration tests: end-to-end accuracy of the FMM against direct
//! summation across configurations and particle distributions.

use anderson_fmm::fmm_core::{relative_error_stats, Fmm, FmmConfig};
use anderson_fmm::fmm_direct;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn uniform(n: usize, seed: u64) -> Vec<[f64; 3]> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| [rng.gen(), rng.gen(), rng.gen()]).collect()
}

fn clustered(n: usize, seed: u64) -> Vec<[f64; 3]> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let c = if rng.gen::<bool>() { 0.25 } else { 0.75 };
            [
                c + 0.1 * (rng.gen::<f64>() - 0.5),
                c + 0.1 * (rng.gen::<f64>() - 0.5),
                0.5 + 0.45 * (rng.gen::<f64>() * 2.0 - 1.0),
            ]
        })
        .collect()
}

#[test]
fn four_digits_at_order_5() {
    let n = 4000;
    let pts = uniform(n, 1);
    let q = vec![1.0; n];
    let reference = fmm_direct::potentials(&pts, &q);
    for depth in [2u32, 3] {
        let fmm = Fmm::new(FmmConfig::order(5).depth(depth)).unwrap();
        let out = fmm.evaluate(&pts, &q).unwrap();
        let st = relative_error_stats(&out.potentials, &reference);
        assert!(
            st.digits() > 3.3,
            "depth {}: only {:.2} digits (rms {:.2e})",
            depth,
            st.digits(),
            st.rms_rel
        );
    }
}

#[test]
fn seven_digits_at_order_14() {
    let n = 2000;
    let pts = uniform(n, 2);
    let q = vec![1.0; n];
    let reference = fmm_direct::potentials(&pts, &q);
    let fmm = Fmm::new(FmmConfig::order(14).depth(2)).unwrap();
    let out = fmm.evaluate(&pts, &q).unwrap();
    let st = relative_error_stats(&out.potentials, &reference);
    assert!(
        st.digits() > 6.5,
        "only {:.2} digits (rms {:.2e})",
        st.digits(),
        st.rms_rel
    );
}

#[test]
fn accuracy_holds_for_clustered_distribution() {
    // The non-adaptive method loses *efficiency* on clustered systems, not
    // correctness.
    let n = 3000;
    let pts = clustered(n, 3);
    let q = vec![1.0; n];
    let reference = fmm_direct::potentials(&pts, &q);
    let fmm = Fmm::new(FmmConfig::order(5).depth(3)).unwrap();
    let out = fmm.evaluate(&pts, &q).unwrap();
    let st = relative_error_stats(&out.potentials, &reference);
    assert!(st.digits() > 3.0, "digits {:.2}", st.digits());
}

#[test]
fn supernodes_trade_little_accuracy_for_many_fewer_flops() {
    let n = 4000;
    let pts = uniform(n, 4);
    let q = vec![1.0; n];
    let reference = fmm_direct::potentials(&pts, &q);
    let plain = Fmm::new(FmmConfig::order(5).depth(3).supernodes(false)).unwrap();
    let sup = Fmm::new(FmmConfig::order(5).depth(3).supernodes(true)).unwrap();
    let out_plain = plain.evaluate(&pts, &q).unwrap();
    let out_sup = sup.evaluate(&pts, &q).unwrap();
    let st_plain = relative_error_stats(&out_plain.potentials, &reference);
    let st_sup = relative_error_stats(&out_sup.potentials, &reference);
    // ≈4.6× fewer T2 flops…
    assert!(out_sup.traversal_flops.t2 * 4 < out_plain.traversal_flops.t2);
    // …at under half a digit of accuracy.
    assert!(
        st_sup.digits() > st_plain.digits() - 0.5,
        "plain {:.2} vs supernode {:.2} digits",
        st_plain.digits(),
        st_sup.digits()
    );
}

#[test]
fn one_separation_works_but_less_accurately() {
    use anderson_fmm::fmm_tree::Separation;
    let n = 3000;
    let pts = uniform(n, 5);
    let q = vec![1.0; n];
    let reference = fmm_direct::potentials(&pts, &q);
    // One-separation needs a tighter outer radius (T2 distance shrinks to
    // 2 − inner).
    let cfg1 = FmmConfig::order(5)
        .depth(3)
        .separation(Separation::One)
        .radii(0.95, 0.9);
    let fmm1 = Fmm::new(cfg1).unwrap();
    let out1 = fmm1.evaluate(&pts, &q).unwrap();
    let st1 = relative_error_stats(&out1.potentials, &reference);
    let fmm2 = Fmm::new(FmmConfig::order(5).depth(3)).unwrap();
    let out2 = fmm2.evaluate(&pts, &q).unwrap();
    let st2 = relative_error_stats(&out2.potentials, &reference);
    assert!(
        st1.digits() > 1.5,
        "one-separation digits {:.2}",
        st1.digits()
    );
    assert!(
        st2.digits() > st1.digits(),
        "two-separation ({:.2}) should beat one-separation ({:.2})",
        st2.digits(),
        st1.digits()
    );
}

#[test]
fn forces_agree_with_direct() {
    let n = 1500;
    let pts = uniform(n, 6);
    let q = vec![1.0; n];
    let (_, ref_field) = fmm_direct::potentials_and_fields(&pts, &q);
    let fmm = Fmm::new(FmmConfig::order(7).depth(2)).unwrap();
    let out = fmm.evaluate_forces(&pts, &q).unwrap();
    let field = out.fields.unwrap();
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..n {
        for a in 0..3 {
            let e = field[i][a] - ref_field[i][a];
            num += e * e;
            den += ref_field[i][a] * ref_field[i][a];
        }
    }
    let rel = (num / den).sqrt();
    assert!(rel < 1e-3, "relative field error {:.2e}", rel);
}

#[test]
fn deeper_hierarchy_does_not_lose_accuracy() {
    let n = 8000;
    let pts = uniform(n, 8);
    let q = vec![1.0; n];
    let reference = fmm_direct::potentials(&pts, &q);
    let mut digits = Vec::new();
    for depth in [2u32, 3, 4] {
        let fmm = Fmm::new(FmmConfig::order(5).depth(depth)).unwrap();
        let out = fmm.evaluate(&pts, &q).unwrap();
        let st = relative_error_stats(&out.potentials, &reference);
        digits.push(st.digits());
    }
    for (i, d) in digits.iter().enumerate() {
        assert!(*d > 3.2, "depth {}: {:.2} digits", i + 2, d);
    }
}

#[test]
fn mixed_sign_charges_absolute_error_matches_unit_charge_scale() {
    // The relative metric degrades for mixed signs (reference fluctuates
    // near zero) but the absolute RMS error should stay comparable.
    let n = 3000;
    let pts = uniform(n, 9);
    let q_unit = vec![1.0; n];
    let mut rng = SmallRng::seed_from_u64(10);
    let q_mixed: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
    let fmm = Fmm::new(FmmConfig::order(5).depth(3)).unwrap();

    let ref_unit = fmm_direct::potentials(&pts, &q_unit);
    let out_unit = fmm.evaluate(&pts, &q_unit).unwrap();
    let st_unit = relative_error_stats(&out_unit.potentials, &ref_unit);

    let ref_mixed = fmm_direct::potentials(&pts, &q_mixed);
    let out_mixed = fmm.evaluate(&pts, &q_mixed).unwrap();
    let st_mixed = relative_error_stats(&out_mixed.potentials, &ref_mixed);

    // Charges have ~1/√3 the RMS magnitude; allow an order of magnitude.
    assert!(
        st_mixed.rms_abs < st_unit.rms_abs * 10.0,
        "mixed abs {:.2e} vs unit abs {:.2e}",
        st_mixed.rms_abs,
        st_unit.rms_abs
    );
}

#[test]
fn softening_perturbs_only_close_pairs() {
    // With ε far below the interparticle spacing, softened ≈ unsoftened;
    // with ε comparable to it, only the near field changes (bounded
    // potentials at close encounters) while far potentials stay put.
    let n = 2000;
    let pts = uniform(n, 77);
    let q = vec![1.0; n];
    let base = Fmm::new(FmmConfig::order(5).depth(3)).unwrap();
    let tiny = Fmm::new(FmmConfig::order(5).depth(3).softening(1e-9)).unwrap();
    let p0 = base.evaluate(&pts, &q).unwrap().potentials;
    let p1 = tiny.evaluate(&pts, &q).unwrap().potentials;
    for (a, b) in p0.iter().zip(&p1) {
        assert!((a - b).abs() < 1e-9 * a.abs().max(1.0));
    }
    // ε of half a leaf side: potentials drop (soft kernel is weaker), and
    // only by a bounded amount.
    let soft = Fmm::new(FmmConfig::order(5).depth(3).softening(0.06)).unwrap();
    let p2 = soft.evaluate(&pts, &q).unwrap().potentials;
    for (a, b) in p0.iter().zip(&p2) {
        assert!(b < a, "softened potential must be smaller: {} vs {}", b, a);
        assert!(
            a - b < 0.3 * a,
            "softening changed the far field too: {} vs {}",
            a,
            b
        );
    }
}

#[test]
fn softened_forces_bounded_at_coincident_particles() {
    // Two nearly-coincident particles: unsoftened forces blow up, softened
    // ones stay bounded by q/ε².
    let mut pts = uniform(500, 88);
    pts[1] = [pts[0][0] + 1e-12, pts[0][1], pts[0][2]];
    let q = vec![1.0; 500];
    let eps = 1e-3;
    let fmm = Fmm::new(FmmConfig::order(5).depth(2).softening(eps)).unwrap();
    let out = fmm.evaluate_forces(&pts, &q).unwrap();
    let f = out.fields.unwrap();
    let bound = 1.0 / (eps * eps) + 1e6; // pair bound + rest of system
    for i in [0usize, 1] {
        for fa in &f[i] {
            assert!(fa.abs() < bound, "unbounded softened force {}", fa);
        }
    }
}
