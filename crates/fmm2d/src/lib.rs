//! # fmm2d — the two-dimensional variant of Anderson's method
//!
//! The paper emphasizes that in Anderson's formulation "the computations
//! in two and three dimensions are very similar; therefore, a code for
//! three dimensions is easily obtained from a code for two dimensions, or
//! vice versa". This crate substantiates that claim: it is the 2-D
//! log-kernel (Φ = Σ q ln(1/r)) analogue of `fmm-core`, with circles in
//! place of spheres, the trapezoid rule in place of sphere quadrature,
//! a quadtree in place of the octree, and (K+1)-dimensional computational
//! elements `(Q, g₁…g_K)` — the total charge must ride along explicitly in
//! 2-D because the far potential grows like Q ln(1/r).
//!
//! ## Elements
//!
//! *Outer* (sources inside the circle of radius a, samples gᵢ = Φ(a·eᶦᶿⁱ)):
//!
//!   Φ(x) ≈ Q ln(1/r) + Σᵢ gᵢ · (2/K) Σₙ₌₁^M (a/r)ⁿ cos n(θ−θᵢ)
//!
//! (the constant part of g drops out of the cosine sums because the θᵢ
//! are equispaced, so no ln(1/a) bookkeeping is needed).
//!
//! *Inner* (sources far outside):
//!
//!   Ψ(x) ≈ (1/K) Σᵢ gᵢ \[ 1 + 2 Σₙ₌₁^M (r/a)ⁿ cos n(θ−θᵢ) \]
//!
//! The structure of the driver — P2O, upward (T1), downward (T2 + T3),
//! leaf evaluation, near field — is line-for-line parallel to the 3-D
//! crate, which is precisely the paper's point.

#![forbid(unsafe_code)]

pub mod direct;
pub mod driver;
pub mod element;
pub mod translations;
pub mod tree2d;

pub use direct::direct_potentials;
pub use driver::{Fmm2d, Fmm2dConfig};
pub use element::{inner_row, outer_row, Circle};
pub use tree2d::{interactive_field_offsets_2d, near_field_offsets_2d, BoxCoord2d};
