//! 2-D translation matrices.
//!
//! One structural difference from 3-D: the log kernel is not scale
//! invariant (ln λr = ln λ + ln r), so the matrix entries multiplying the
//! charge slot Q pick up a per-level ln(1/side) term. Matrices are
//! therefore built per level (they are small: (K+1)² each, 96 + 4 + 4 per
//! level), where the 3-D crate shares one set across all levels.

use crate::element::{element_len, inner_row, outer_row, Circle};
use crate::tree2d::interactive_field_union_2d;

/// Transposed (E×E, E = K+1) matrices for one level.
#[derive(Debug, Clone)]
pub struct LevelSet {
    pub e: usize,
    /// `t1t[quad]`: child outer → parent outer.
    pub t1t: Vec<Vec<f64>>,
    /// `t3t[quad]`: parent inner → child inner (scale-free but stored per
    /// level for uniformity).
    pub t3t: Vec<Vec<f64>>,
    /// T2 cube over offsets [−5,5]², indexed by `t2_index`.
    pub t2t: Vec<Option<Vec<f64>>>,
}

/// Index into the 11×11 offset cube.
#[inline]
pub fn t2_index(o: [i32; 2]) -> usize {
    debug_assert!(o[0].abs() <= 5 && o[1].abs() <= 5);
    ((o[1] + 5) as usize) * 11 + (o[0] + 5) as usize
}

fn quad_center_offset(quad: usize) -> [f64; 2] {
    [(quad & 1) as f64 - 0.5, ((quad >> 1) & 1) as f64 - 0.5]
}

impl LevelSet {
    /// Build for boxes of side `side` at the child/target level.
    pub fn build(circle: &Circle, m: usize, outer_ratio: f64, inner_ratio: f64, side: f64) -> Self {
        let k = circle.k;
        let e = element_len(k);
        let a_child = outer_ratio * side;
        let a_parent = 2.0 * outer_ratio * side;
        let b_child = inner_ratio * side;
        let b_parent = 2.0 * inner_ratio * side;
        let mut row = vec![0.0; e];

        let mut t1t = Vec::with_capacity(4);
        let mut t3t = Vec::with_capacity(4);
        for quad in 0..4 {
            let c = quad_center_offset(quad);
            let c = [c[0] * side, c[1] * side];
            let mut m1 = vec![0.0; e * e];
            let mut m3 = vec![0.0; e * e];
            // Charge slot: parent Q accumulates child Q (T1); inner
            // elements carry no charge (T3 row 0 stays zero).
            m1[0] = 1.0; // transposed: column 0 (parent Q) ← row 0 (child Q)
            for j in 0..k {
                let pj = circle.point(j, [0.0, 0.0], a_parent);
                let x1 = [pj[0] - c[0], pj[1] - c[1]];
                outer_row(circle, m, a_child, x1, &mut row);
                for i in 0..e {
                    m1[i * e + (1 + j)] = row[i]; // transposed store
                }
                let qj = circle.point(j, [0.0, 0.0], b_child);
                let x3 = [c[0] + qj[0], c[1] + qj[1]];
                inner_row(circle, m, b_parent, x3, &mut row);
                for i in 0..e {
                    m3[i * e + (1 + j)] = row[i];
                }
            }
            t1t.push(m1);
            t3t.push(m3);
        }

        let mut t2t: Vec<Option<Vec<f64>>> = vec![None; 121];
        for o in interactive_field_union_2d(2) {
            let mut mt = vec![0.0; e * e];
            for j in 0..k {
                let pj = circle.point(j, [0.0, 0.0], b_child);
                let x = [pj[0] - o[0] as f64 * side, pj[1] - o[1] as f64 * side];
                outer_row(circle, m, a_child, x, &mut row);
                for i in 0..e {
                    mt[i * e + (1 + j)] = row[i];
                }
            }
            t2t[t2_index(o)] = Some(mt);
        }
        LevelSet { e, t1t, t3t, t2t }
    }
}

/// Apply a transposed matrix to a single element: `out += elem · Mᵗ`.
pub fn apply_t(e: usize, mt: &[f64], elem: &[f64], out: &mut [f64]) {
    debug_assert_eq!(mt.len(), e * e);
    for i in 0..e {
        let gi = elem[i];
        if gi == 0.0 {
            continue;
        }
        let mrow = &mt[i * e..(i + 1) * e];
        for (o, m) in out.iter_mut().zip(mrow) {
            *o += gi * m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::outer_from_particles;

    #[test]
    fn t1_matches_directly_built_parent() {
        let circle = Circle::new(24);
        let m = 10;
        let side = 0.25; // a non-unit side exercises the log scaling
        let ls = LevelSet::build(&circle, m, 1.4, 0.9, side);
        let quad = 3; // (1,1): centre offset (+side/2, +side/2)
        let cc = [0.5 * side, 0.5 * side];
        let pos = [[cc[0] + 0.1 * side, cc[1] - 0.2 * side]];
        let q = [2.0];
        let e = ls.e;
        // Child element (positions relative to child centre).
        let rel: Vec<[f64; 2]> = pos.iter().map(|p| [p[0] - cc[0], p[1] - cc[1]]).collect();
        let mut child = vec![0.0; e];
        outer_from_particles(&circle, 1.4 * side, &rel, &q, &mut child);
        // Parent element built directly (positions relative to origin).
        let mut parent_direct = vec![0.0; e];
        outer_from_particles(&circle, 2.8 * side, &pos, &q, &mut parent_direct);
        let mut parent_via = vec![0.0; e];
        apply_t(e, &ls.t1t[quad], &child, &mut parent_via);
        assert!((parent_via[0] - 2.0).abs() < 1e-12, "Q not conserved");
        for j in 0..circle.k {
            assert!(
                (parent_via[1 + j] - parent_direct[1 + j]).abs() < 1e-7,
                "sample {}: {} vs {}",
                j,
                parent_via[1 + j],
                parent_direct[1 + j]
            );
        }
    }

    #[test]
    fn t2_converts_outer_to_inner_2d() {
        let circle = Circle::new(24);
        let m = 10;
        let side = 1.0;
        let ls = LevelSet::build(&circle, m, 1.4, 0.9, side);
        let o = [4, -3];
        let src_c = [4.0, -3.0];
        let pos = [[src_c[0] + 0.3, src_c[1] - 0.1]];
        let q = [1.0];
        let e = ls.e;
        let rel: Vec<[f64; 2]> = pos
            .iter()
            .map(|p| [p[0] - src_c[0], p[1] - src_c[1]])
            .collect();
        let mut src = vec![0.0; e];
        outer_from_particles(&circle, 1.4, &rel, &q, &mut src);
        let mut inner = vec![0.0; e];
        apply_t(e, ls.t2t[t2_index(o)].as_ref().unwrap(), &src, &mut inner);
        // Inner samples must equal the exact potential on the target circle.
        for j in 0..circle.k {
            let pt = circle.point(j, [0.0, 0.0], 0.9);
            let d = [pt[0] - pos[0][0], pt[1] - pos[0][1]];
            let exact = -q[0] * (d[0] * d[0] + d[1] * d[1]).sqrt().ln();
            assert!(
                (inner[1 + j] - exact).abs() < 1e-6,
                "sample {}: {} vs {}",
                j,
                inner[1 + j],
                exact
            );
        }
    }

    #[test]
    fn t2_cube_has_96_matrices() {
        let circle = Circle::new(8);
        let ls = LevelSet::build(&circle, 3, 1.4, 0.9, 1.0);
        let n = ls.t2t.iter().filter(|m| m.is_some()).count();
        assert_eq!(n, 96);
    }
}
