//! O(N²) direct summation with the 2-D log kernel (reference).

use rayon::prelude::*;

/// Φᵢ = Σ_{j≠i} q_j ln(1/|xᵢ − x_j|).
pub fn direct_potentials(positions: &[[f64; 2]], charges: &[f64]) -> Vec<f64> {
    assert_eq!(positions.len(), charges.len());
    let n = positions.len();
    (0..n)
        .into_par_iter()
        .map(|i| {
            let mut acc = 0.0;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let d = [
                    positions[i][0] - positions[j][0],
                    positions[i][1] - positions[j][1],
                ];
                acc -= charges[j] * (d[0] * d[0] + d[1] * d[1]).sqrt().ln();
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_charges() {
        let p = [[0.0, 0.0], [f64::exp(1.0), 0.0]];
        let q = [1.0, 3.0];
        let out = direct_potentials(&p, &q);
        assert!((out[0] - (-3.0)).abs() < 1e-12); // 3·ln(1/e) = −3
        assert!((out[1] - (-1.0)).abs() < 1e-12);
    }
}
