//! The 2-D computational elements: outer/inner circle approximations.
//!
//! An element is the vector `(Q, g₁…g_K)`: total enclosed charge plus K
//! equispaced potential samples on the circle. Kernel rows map an element
//! to a potential value at a point; they are the columns of every
//! translation matrix.

/// A circle of K equispaced integration points.
#[derive(Debug, Clone)]
pub struct Circle {
    pub k: usize,
    /// cos θᵢ, sin θᵢ of the integration points.
    pub cos: Vec<f64>,
    pub sin: Vec<f64>,
}

impl Circle {
    pub fn new(k: usize) -> Self {
        assert!(k >= 2);
        let (mut cos, mut sin) = (Vec::with_capacity(k), Vec::with_capacity(k));
        for i in 0..k {
            let t = 2.0 * std::f64::consts::PI * i as f64 / k as f64;
            cos.push(t.cos());
            sin.push(t.sin());
        }
        Circle { k, cos, sin }
    }

    /// Point i on a circle of radius `a` centred at `c`.
    #[inline]
    pub fn point(&self, i: usize, c: [f64; 2], a: f64) -> [f64; 2] {
        [c[0] + a * self.cos[i], c[1] + a * self.sin[i]]
    }
}

/// Element length: 1 charge slot + K samples.
#[inline]
pub fn element_len(k: usize) -> usize {
    k + 1
}

/// Fill the outer kernel row: `row` has length K+1; `row[0]` multiplies Q
/// and `row[1 + i]` multiplies gᵢ, so that Φ(x) = row · (Q, g).
/// `x` is relative to the circle centre; requires r > 0.
pub fn outer_row(circle: &Circle, m: usize, a: f64, x: [f64; 2], row: &mut [f64]) {
    let k = circle.k;
    debug_assert_eq!(row.len(), k + 1);
    let r = (x[0] * x[0] + x[1] * x[1]).sqrt();
    debug_assert!(r > 0.0);
    let (ct, st) = (x[0] / r, x[1] / r);
    row[0] = -r.ln(); // Q ln(1/r)
    let t = a / r;
    for i in 0..k {
        // cos n(θ−θᵢ) via the angle difference δᵢ: cos δ = cosθ cosθᵢ +
        // sinθ sinθᵢ; recurrence cos nδ = 2 cos δ cos (n−1)δ − cos (n−2)δ.
        let cd = ct * circle.cos[i] + st * circle.sin[i];
        let mut c_nm1 = 1.0; // cos 0δ
        let mut c_n = cd; // cos 1δ
        let mut tp = t;
        let mut acc = 0.0;
        for _n in 1..=m {
            acc += tp * c_n;
            let c_np1 = 2.0 * cd * c_n - c_nm1;
            c_nm1 = c_n;
            c_n = c_np1;
            tp *= t;
        }
        row[1 + i] = 2.0 * acc / k as f64;
    }
}

/// Fill the inner kernel row (same layout; `row[0]` is 0 because the
/// inner element's charge slot is unused — far sources contribute no log
/// growth inside the circle).
pub fn inner_row(circle: &Circle, m: usize, a: f64, x: [f64; 2], row: &mut [f64]) {
    let k = circle.k;
    debug_assert_eq!(row.len(), k + 1);
    row[0] = 0.0;
    let r = (x[0] * x[0] + x[1] * x[1]).sqrt();
    if r == 0.0 {
        for i in 0..k {
            row[1 + i] = 1.0 / k as f64;
        }
        return;
    }
    let (ct, st) = (x[0] / r, x[1] / r);
    let t = r / a;
    for i in 0..k {
        let cd = ct * circle.cos[i] + st * circle.sin[i];
        let mut c_nm1 = 1.0;
        let mut c_n = cd;
        let mut tp = t;
        let mut acc = 0.5; // the n = 0 term contributes 1/K overall
        for _n in 1..=m {
            acc += tp * c_n;
            let c_np1 = 2.0 * cd * c_n - c_nm1;
            c_nm1 = c_n;
            c_n = c_np1;
            tp *= t;
        }
        row[1 + i] = 2.0 * acc / k as f64;
    }
}

/// Build an outer element from point charges (positions relative to the
/// circle centre): Q = Σq, gᵢ = Σ_j q_j ln(1/|a·pᵢ − x_j|).
pub fn outer_from_particles(
    circle: &Circle,
    a: f64,
    positions: &[[f64; 2]],
    charges: &[f64],
    out: &mut [f64],
) {
    let k = circle.k;
    debug_assert_eq!(out.len(), k + 1);
    out[0] = charges.iter().sum();
    for i in 0..k {
        let p = [a * circle.cos[i], a * circle.sin[i]];
        let mut acc = 0.0;
        for (x, q) in positions.iter().zip(charges) {
            let d = [p[0] - x[0], p[1] - x[1]];
            let r = (d[0] * d[0] + d[1] * d[1]).sqrt();
            acc -= q * r.ln();
        }
        out[1 + i] = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(row: &[f64], elem: &[f64]) -> f64 {
        row.iter().zip(elem).map(|(r, e)| r * e).sum()
    }

    #[test]
    fn point_charge_at_centre_exact() {
        // g = q ln(1/a) constant; cosine sums annihilate constants, so
        // Φ(x) = Q ln(1/r) exactly.
        let circle = Circle::new(8);
        let a = 1.3;
        let mut elem = vec![0.0; 9];
        outer_from_particles(&circle, a, &[[0.0, 0.0]], &[2.0], &mut elem);
        let mut row = vec![0.0; 9];
        for &r in &[2.0f64, 5.0, 11.0] {
            outer_row(&circle, 4, a, [r, 0.0], &mut row);
            let v = eval(&row, &elem);
            let exact = -2.0 * r.ln();
            assert!((v - exact).abs() < 1e-12, "r={}: {} vs {}", r, v, exact);
        }
    }

    #[test]
    fn off_centre_charge_converges() {
        let circle = Circle::new(16);
        let a = 1.0;
        let p = [[0.3, -0.2]];
        let q = [1.5];
        let mut elem = vec![0.0; 17];
        outer_from_particles(&circle, a, &p, &q, &mut elem);
        let mut row = vec![0.0; 17];
        let x = [3.0, 1.0];
        outer_row(&circle, 7, a, x, &mut row);
        let v = eval(&row, &elem);
        let d = [x[0] - p[0][0], x[1] - p[0][1]];
        let exact = -q[0] * (d[0] * d[0] + d[1] * d[1]).sqrt().ln();
        assert!((v - exact).abs() < 1e-6, "{} vs {}", v, exact);
    }

    #[test]
    fn inner_reconstructs_far_field() {
        let circle = Circle::new(16);
        let a = 1.0;
        // Far sources; sample their exact potential on the circle.
        let sources = [[5.0, 2.0], [-4.0, 6.0]];
        let q = [1.0, -0.5];
        let mut elem = vec![0.0; 17];
        elem[0] = 0.0; // inner elements do not carry charge
        for i in 0..16 {
            let pt = circle.point(i, [0.0, 0.0], a);
            let mut acc = 0.0;
            for (s, qq) in sources.iter().zip(&q) {
                let d = [pt[0] - s[0], pt[1] - s[1]];
                acc -= qq * (d[0] * d[0] + d[1] * d[1]).sqrt().ln();
            }
            elem[1 + i] = acc;
        }
        let mut row = vec![0.0; 17];
        for x in [[0.2, 0.1], [0.0, 0.0], [-0.3, 0.3]] {
            inner_row(&circle, 7, a, x, &mut row);
            let v = eval(&row, &elem);
            let mut exact = 0.0;
            for (s, qq) in sources.iter().zip(&q) {
                let d = [x[0] - s[0], x[1] - s[1]];
                exact -= qq * (d[0] * d[0] + d[1] * d[1]).sqrt().ln();
            }
            assert!((v - exact).abs() < 1e-5, "x={:?}: {} vs {}", x, v, exact);
        }
    }

    #[test]
    fn inner_at_centre_is_circle_mean() {
        let circle = Circle::new(12);
        let mut row = vec![0.0; 13];
        inner_row(&circle, 5, 1.0, [0.0, 0.0], &mut row);
        assert_eq!(row[0], 0.0);
        for i in 0..12 {
            assert!((row[1 + i] - 1.0 / 12.0).abs() < 1e-15);
        }
    }

    #[test]
    fn more_points_improve_accuracy() {
        let p: [[f64; 2]; 1] = [[0.4, 0.3]];
        let q = [1.0];
        let x = [2.5, -1.0];
        let d = [x[0] - p[0][0], x[1] - p[0][1]];
        let exact = -(d[0] * d[0] + d[1] * d[1]).sqrt().ln();
        let mut last = f64::INFINITY;
        for k in [4usize, 8, 16, 32] {
            let circle = Circle::new(k);
            let mut elem = vec![0.0; k + 1];
            outer_from_particles(&circle, 1.0, &p, &q, &mut elem);
            let mut row = vec![0.0; k + 1];
            outer_row(&circle, k / 2 - 1, 1.0, x, &mut row);
            let err = (eval(&row, &elem) - exact).abs();
            assert!(err < last, "K={}: {} not below {}", k, err, last);
            last = err;
        }
        assert!(last < 1e-9);
    }
}
