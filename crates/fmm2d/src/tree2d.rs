//! Quadtree index arithmetic and 2-D interaction lists.
//!
//! The 2-D analogues of `fmm-tree`: level-l grids of 4^l boxes,
//! d-separation near fields of (2d+1)²−1 boxes, and interactive fields of
//! (4d+2)²−(2d+1)² = 75 boxes for two-separation.

/// Box coordinates on a level-l grid of 2^l × 2^l boxes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoxCoord2d {
    pub level: u32,
    pub x: u32,
    pub y: u32,
}

impl BoxCoord2d {
    #[inline]
    pub fn index(&self) -> usize {
        let n = 1usize << self.level;
        self.y as usize * n + self.x as usize
    }

    #[inline]
    pub fn from_index(level: u32, idx: usize) -> Self {
        let n = 1usize << level;
        BoxCoord2d {
            level,
            x: (idx % n) as u32,
            y: (idx / n) as u32,
        }
    }

    #[inline]
    pub fn parent(&self) -> Option<BoxCoord2d> {
        if self.level == 0 {
            None
        } else {
            Some(BoxCoord2d {
                level: self.level - 1,
                x: self.x >> 1,
                y: self.y >> 1,
            })
        }
    }

    /// Quadrant within the parent: bit 0 = x parity, bit 1 = y parity.
    #[inline]
    pub fn quadrant(&self) -> usize {
        ((self.x & 1) | ((self.y & 1) << 1)) as usize
    }

    #[inline]
    pub fn child(&self, quad: usize) -> BoxCoord2d {
        BoxCoord2d {
            level: self.level + 1,
            x: (self.x << 1) | (quad as u32 & 1),
            y: (self.y << 1) | ((quad as u32 >> 1) & 1),
        }
    }

    #[inline]
    pub fn offset(&self, d: [i32; 2]) -> Option<BoxCoord2d> {
        let n = 1i64 << self.level;
        let x = self.x as i64 + d[0] as i64;
        let y = self.y as i64 + d[1] as i64;
        if x < 0 || y < 0 || x >= n || y >= n {
            None
        } else {
            Some(BoxCoord2d {
                level: self.level,
                x: x as u32,
                y: y as u32,
            })
        }
    }
}

/// Near-field offsets for d-separation (excluding self): 24 for d = 2.
pub fn near_field_offsets_2d(d: i32) -> Vec<[i32; 2]> {
    let mut out = Vec::new();
    for dy in -d..=d {
        for dx in -d..=d {
            if dx != 0 || dy != 0 {
                out.push([dx, dy]);
            }
        }
    }
    out
}

/// Interactive-field offsets of a box with quadrant parity `(qx, qy)`:
/// 75 offsets for two-separation.
pub fn interactive_field_offsets_2d(quad: [i32; 2], d: i32) -> Vec<[i32; 2]> {
    let mut out = Vec::new();
    for py in -d..=d {
        for px in -d..=d {
            for e in 0..4 {
                let o = [
                    2 * px + (e & 1) - quad[0],
                    2 * py + ((e >> 1) & 1) - quad[1],
                ];
                if o[0].abs() > d || o[1].abs() > d {
                    out.push(o);
                }
            }
        }
    }
    out
}

/// Offsets over the union cube [−(2d+1), 2d+1]² minus the near field.
pub fn interactive_field_union_2d(d: i32) -> Vec<[i32; 2]> {
    let w = 2 * d + 1;
    let mut out = Vec::new();
    for dy in -w..=w {
        for dx in -w..=w {
            if dx.abs() > d || dy.abs() > d {
                out.push([dx, dy]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn near_field_sizes_2d() {
        assert_eq!(near_field_offsets_2d(1).len(), 8);
        assert_eq!(near_field_offsets_2d(2).len(), 24);
    }

    #[test]
    fn interactive_field_is_75_for_two_separation() {
        for q in 0..4 {
            let quad = [q & 1, (q >> 1) & 1];
            let f = interactive_field_offsets_2d(quad, 2);
            assert_eq!(f.len(), 100 - 25, "quad {:?}", quad);
            let set: HashSet<_> = f.iter().collect();
            assert_eq!(set.len(), 75);
        }
    }

    #[test]
    fn union_is_96() {
        // 11² − 5² = 96 distinct offsets across the four quadrants.
        assert_eq!(interactive_field_union_2d(2).len(), 121 - 25);
    }

    #[test]
    fn parent_child_round_trip_2d() {
        let c = BoxCoord2d {
            level: 4,
            x: 11,
            y: 6,
        };
        let p = c.parent().unwrap();
        assert_eq!(p.child(c.quadrant()), c);
        assert_eq!(BoxCoord2d::from_index(4, c.index()), c);
    }

    #[test]
    fn offsets_clip_at_boundary() {
        let c = BoxCoord2d {
            level: 2,
            x: 0,
            y: 3,
        };
        assert_eq!(c.offset([-1, 0]), None);
        assert_eq!(c.offset([0, 1]), None);
        assert!(c.offset([1, -1]).is_some());
    }
}
