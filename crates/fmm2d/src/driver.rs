//! The 2-D driver: the same five phases as the 3-D crate, on a quadtree.

use crate::element::{element_len, inner_row, outer_from_particles, Circle};
use crate::translations::{apply_t, t2_index, LevelSet};
use crate::tree2d::{interactive_field_offsets_2d, near_field_offsets_2d, BoxCoord2d};
use rayon::prelude::*;

/// Configuration of the 2-D method.
#[derive(Debug, Clone)]
pub struct Fmm2dConfig {
    /// Integration points on each circle (trapezoid rule); modes up to
    /// K/2 − 1 are represented faithfully.
    pub k: usize,
    /// Fourier truncation M (defaults to K/2 − 1).
    pub m: usize,
    /// Circle radii in box-side units; outer must exceed √2/2.
    pub outer_ratio: f64,
    pub inner_ratio: f64,
    /// Quadtree depth (leaf level has 4^depth boxes).
    pub depth: u32,
    /// Parallel near field / leaf phases.
    pub parallel: bool,
}

impl Fmm2dConfig {
    pub fn with_points(k: usize) -> Self {
        Fmm2dConfig {
            k,
            m: k / 2 - 1,
            outer_ratio: 1.4,
            inner_ratio: 0.9,
            depth: 3,
            parallel: true,
        }
    }

    pub fn depth(mut self, d: u32) -> Self {
        self.depth = d.max(2);
        self
    }

    pub fn validate(&self) -> Result<(), String> {
        let min = 2f64.sqrt() / 2.0;
        if self.outer_ratio <= min || self.inner_ratio <= min {
            return Err(format!("circle radii must exceed √2/2 ≈ {:.3}", min));
        }
        if self.outer_ratio >= 3.0 - self.inner_ratio {
            return Err("outer_ratio too large for two-separation".into());
        }
        if self.m + 1 > self.k / 2 {
            return Err(format!(
                "truncation M = {} exceeds the trapezoid rule's faithful band (K/2 − 1 = {})",
                self.m,
                self.k / 2 - 1
            ));
        }
        Ok(())
    }
}

/// A configured 2-D FMM over the unit square.
pub struct Fmm2d {
    cfg: Fmm2dConfig,
    circle: Circle,
    levels: Vec<LevelSet>,
}

impl Fmm2d {
    pub fn new(cfg: Fmm2dConfig) -> Result<Self, String> {
        cfg.validate()?;
        let circle = Circle::new(cfg.k);
        // Per-level matrices (the log kernel is not scale invariant).
        let levels = (0..=cfg.depth)
            .map(|l| {
                let side = 1.0 / (1u64 << l) as f64;
                LevelSet::build(&circle, cfg.m, cfg.outer_ratio, cfg.inner_ratio, side)
            })
            .collect();
        Ok(Fmm2d {
            cfg,
            circle,
            levels,
        })
    }

    pub fn k(&self) -> usize {
        self.cfg.k
    }

    /// Potentials Φᵢ = Σ_{j≠i} q_j ln(1/r) for particles in [0,1)².
    pub fn evaluate(&self, positions: &[[f64; 2]], charges: &[f64]) -> Vec<f64> {
        assert_eq!(positions.len(), charges.len());
        assert!(!positions.is_empty());
        let depth = self.cfg.depth;
        let e = element_len(self.cfg.k);
        let n_axis = |l: u32| 1usize << l;
        let boxes = |l: u32| 1usize << (2 * l);
        let side = |l: u32| 1.0 / n_axis(l) as f64;

        // ---- bin particles -------------------------------------------------
        let nl = boxes(depth);
        let locate = |p: &[f64; 2]| -> usize {
            let n = n_axis(depth) as f64;
            let x = ((p[0] * n) as usize).min(n_axis(depth) - 1);
            let y = ((p[1] * n) as usize).min(n_axis(depth) - 1);
            y * n_axis(depth) + x
        };
        let mut counts = vec![0u32; nl + 1];
        for p in positions {
            counts[locate(p) + 1] += 1;
        }
        for i in 0..nl {
            counts[i + 1] += counts[i];
        }
        let starts = counts.clone();
        let mut cursor = counts;
        let mut order = vec![0u32; positions.len()];
        for (i, p) in positions.iter().enumerate() {
            let b = locate(p);
            order[cursor[b] as usize] = i as u32;
            cursor[b] += 1;
        }

        // ---- P2O -----------------------------------------------------------
        let mut far: Vec<Vec<f64>> = (0..=depth).map(|l| vec![0.0; boxes(l) * e]).collect();
        let leaf_side = side(depth);
        let a_leaf = self.cfg.outer_ratio * leaf_side;
        {
            let fl = &mut far[depth as usize];
            let circle = &self.circle;
            let build_box = |(b, out): (usize, &mut [f64])| {
                let r = starts[b] as usize..starts[b + 1] as usize;
                if r.is_empty() {
                    return;
                }
                let bc = BoxCoord2d::from_index(depth, b);
                let c = [
                    (bc.x as f64 + 0.5) * leaf_side,
                    (bc.y as f64 + 0.5) * leaf_side,
                ];
                let rel: Vec<[f64; 2]> = r
                    .clone()
                    .map(|s| {
                        let p = positions[order[s] as usize];
                        [p[0] - c[0], p[1] - c[1]]
                    })
                    .collect();
                let q: Vec<f64> = r.clone().map(|s| charges[order[s] as usize]).collect();
                outer_from_particles(circle, a_leaf, &rel, &q, out);
            };
            if self.cfg.parallel {
                fl.par_chunks_mut(e).enumerate().for_each(build_box);
            } else {
                fl.chunks_mut(e).enumerate().for_each(build_box);
            }
        }

        // ---- upward (T1) ----------------------------------------------------
        for l in (1..depth).rev() {
            let (lo, hi) = far.split_at_mut(l as usize + 1);
            let parents = &mut lo[l as usize];
            let children = &hi[0];
            let ls = &self.levels[(l + 1) as usize]; // matrices at child side
            for pi in 0..boxes(l) {
                let pc = BoxCoord2d::from_index(l, pi);
                let out = &mut parents[pi * e..(pi + 1) * e];
                for quad in 0..4 {
                    let ci = pc.child(quad).index();
                    apply_t(e, &ls.t1t[quad], &children[ci * e..(ci + 1) * e], out);
                }
            }
        }

        // ---- downward (T2 + T3) ----------------------------------------------
        let mut local_prev: Vec<f64> = vec![0.0; e]; // level-1 locals are zero
        for l in 2..=depth {
            let nb = boxes(l);
            let mut local_cur = vec![0.0; nb * e];
            let ls = &self.levels[l as usize];
            let far_cur = &far[l as usize];
            let na = n_axis(l) as i32;
            for bi in 0..nb {
                let bc = BoxCoord2d::from_index(l, bi);
                let quad = bc.quadrant();
                let out = &mut local_cur[bi * e..(bi + 1) * e];
                // T3
                if l >= 3 {
                    let pi = bc.parent().unwrap().index();
                    apply_t(e, &ls.t3t[quad], &local_prev[pi * e..(pi + 1) * e], out);
                }
                // T2
                let qoff = [(quad & 1) as i32, ((quad >> 1) & 1) as i32];
                for o in interactive_field_offsets_2d(qoff, 2) {
                    let sx = bc.x as i32 + o[0];
                    let sy = bc.y as i32 + o[1];
                    if sx < 0 || sy < 0 || sx >= na || sy >= na {
                        continue;
                    }
                    let si = sy as usize * na as usize + sx as usize;
                    let mt = ls.t2t[t2_index(o)].as_ref().unwrap();
                    apply_t(e, mt, &far_cur[si * e..(si + 1) * e], out);
                }
            }
            local_prev = std::mem::take(&mut local_cur);
        }
        let local_leaf = local_prev;

        // ---- leaf evaluation + near field -------------------------------------
        let b_leaf = self.cfg.inner_ratio * leaf_side;
        let near = near_field_offsets_2d(2);
        let circle = &self.circle;
        let m = self.cfg.m;
        let eval_box = |b: usize| -> Vec<(u32, f64)> {
            let r = starts[b] as usize..starts[b + 1] as usize;
            let mut out = Vec::with_capacity(r.len());
            if r.is_empty() {
                return out;
            }
            let bc = BoxCoord2d::from_index(depth, b);
            let c = [
                (bc.x as f64 + 0.5) * leaf_side,
                (bc.y as f64 + 0.5) * leaf_side,
            ];
            let g = &local_leaf[b * e..(b + 1) * e];
            let mut row = vec![0.0; e];
            for s in r.clone() {
                let idx = order[s] as usize;
                let p = positions[idx];
                inner_row(circle, m, b_leaf, [p[0] - c[0], p[1] - c[1]], &mut row);
                let mut pot: f64 = row.iter().zip(g).map(|(a, b)| a * b).sum();
                // near field: own box + 24 neighbours
                let mut near_box = |nb: BoxCoord2d| {
                    let rr = starts[nb.index()] as usize..starts[nb.index() + 1] as usize;
                    for t in rr {
                        let j = order[t] as usize;
                        if j == idx {
                            continue;
                        }
                        let d = [p[0] - positions[j][0], p[1] - positions[j][1]];
                        let r2 = d[0] * d[0] + d[1] * d[1];
                        if r2 > 0.0 {
                            pot -= charges[j] * 0.5 * r2.ln();
                        }
                    }
                };
                near_box(bc);
                for &o in &near {
                    if let Some(nb) = bc.offset(o) {
                        near_box(nb);
                    }
                }
                out.push((idx as u32, pot));
            }
            out
        };
        let mut potentials = vec![0.0; positions.len()];
        let per_box: Vec<Vec<(u32, f64)>> = if self.cfg.parallel {
            (0..nl).into_par_iter().map(eval_box).collect()
        } else {
            (0..nl).map(eval_box).collect()
        };
        for chunk in per_box {
            for (idx, pot) in chunk {
                potentials[idx as usize] = pot;
            }
        }
        potentials
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::direct_potentials;

    fn pseudo(n: usize, seed: u64) -> (Vec<[f64; 2]>, Vec<f64>) {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<[f64; 2]> = (0..n).map(|_| [next(), next()]).collect();
        let q = vec![1.0; n];
        (pts, q)
    }

    fn rms_rel(a: &[f64], b: &[f64]) -> f64 {
        let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        let den: f64 = b.iter().map(|y| y * y).sum();
        (num / den).sqrt()
    }

    #[test]
    fn matches_direct_depth3() {
        let (pts, q) = pseudo(2000, 21);
        let fmm = Fmm2d::new(Fmm2dConfig::with_points(16).depth(3)).unwrap();
        let out = fmm.evaluate(&pts, &q);
        let reference = direct_potentials(&pts, &q);
        let err = rms_rel(&out, &reference);
        assert!(err < 1e-5, "rms_rel {:.2e}", err);
    }

    #[test]
    fn matches_direct_depth4() {
        let (pts, q) = pseudo(4000, 22);
        let fmm = Fmm2d::new(Fmm2dConfig::with_points(16).depth(4)).unwrap();
        let out = fmm.evaluate(&pts, &q);
        let reference = direct_potentials(&pts, &q);
        let err = rms_rel(&out, &reference);
        assert!(err < 1e-5, "rms_rel {:.2e}", err);
    }

    #[test]
    fn accuracy_improves_with_k() {
        let (pts, q) = pseudo(1500, 23);
        let reference = direct_potentials(&pts, &q);
        let mut last = f64::INFINITY;
        for k in [8usize, 16, 32] {
            let fmm = Fmm2d::new(Fmm2dConfig::with_points(k).depth(3)).unwrap();
            let err = rms_rel(&fmm.evaluate(&pts, &q), &reference);
            assert!(err < last, "K={}: {:.2e} not below {:.2e}", k, err, last);
            last = err;
        }
        assert!(last < 1e-9, "K=32 err {:.2e}", last);
    }

    #[test]
    fn mixed_charges_2d() {
        let (pts, _) = pseudo(1000, 24);
        let mut state = 77u64;
        let q: Vec<f64> = (0..1000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect();
        let fmm = Fmm2d::new(Fmm2dConfig::with_points(24).depth(3)).unwrap();
        let out = fmm.evaluate(&pts, &q);
        let reference = direct_potentials(&pts, &q);
        // Absolute comparison (reference fluctuates near zero).
        let scale = reference.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        for (a, b) in out.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-6 * scale.max(1.0), "{} vs {}", a, b);
        }
    }

    #[test]
    fn sequential_matches_parallel_2d() {
        let (pts, q) = pseudo(800, 25);
        let mut cfg = Fmm2dConfig::with_points(16).depth(3);
        cfg.parallel = false;
        let seq = Fmm2d::new(cfg.clone()).unwrap().evaluate(&pts, &q);
        cfg.parallel = true;
        let par = Fmm2d::new(cfg).unwrap().evaluate(&pts, &q);
        for (a, b) in seq.iter().zip(&par) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn invalid_configs_rejected_2d() {
        assert!(Fmm2d::new(Fmm2dConfig {
            outer_ratio: 0.5,
            ..Fmm2dConfig::with_points(16)
        })
        .is_err());
        assert!(Fmm2d::new(Fmm2dConfig {
            m: 12,
            ..Fmm2dConfig::with_points(16)
        })
        .is_err());
    }
}
