//! # fmm-machine — a data-parallel machine simulator
//!
//! The paper's communication results are statements about *data motion* on
//! a CM-5/5E: how many boxes cross vector-unit (VU) boundaries, how many
//! are copied locally, and how many CSHIFT invocations (each with a large
//! fixed overhead) a strategy needs. Those quantities are properties of
//! the algorithms and the block data layout, not of the silicon — so this
//! crate simulates exactly that machine model:
//!
//! * [`layout`] — block distribution of a 3-D box grid over a VU grid,
//!   with the VU-address / local-address bit fields of the paper's Fig. 4,
//! * [`counters`] + [`cost`] — data-motion counters and a
//!   latency/bandwidth/copy cost model with CM-5E-flavoured constants,
//! * [`grid`] — a distributed array with a *circular shift* (CSHIFT)
//!   primitive that moves real data and counts its motion,
//! * [`ghost`] — the four interactive-field fetch strategies compared in
//!   the paper's Table 4 (direct / linearized × unaliased / aliased),
//! * [`multigrid`] — the Multigrid-embed cost comparison of Fig. 7,
//! * [`replication`] — the precomputation-vs-replication trade-offs of
//!   Figs. 8 and 9.
//!
//! Strategies that build ghost buffers are verified for *data
//! correctness*, not just counted: every strategy must produce identical
//! halo contents.

#![forbid(unsafe_code)]

pub mod compare;
pub mod cost;
pub mod counters;
pub mod ghost;
pub mod grid;
pub mod layout;
pub mod multigrid;
pub mod program;
pub mod replication;
pub mod transport;
pub mod travel;

pub use compare::{
    check_phases, predicted_bytes, predicted_messages, BudgetMismatch, MeasuredPhase,
    DEFAULT_TOLERANCE,
};
pub use cost::CostModel;
pub use counters::Counters;
pub use ghost::{FetchStrategy, GhostResult};
pub use grid::DistGrid;
pub use layout::{BlockLayout, VuGrid};
pub use program::{
    communication_budget, communication_budget_with, gather_hops, subgrid_extent, PhaseBudget,
    ProgramBudget, ProgramConfig, PARTICLE_WORDS,
};
pub use transport::{preflight, PreflightReport, TransportModel};
pub use travel::{TravelPath, TravelStep};
