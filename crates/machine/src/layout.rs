//! Block layout of a 3-D grid over a VU grid (paper Fig. 4).
//!
//! On the Connection Machine, both the number of VUs per axis and the
//! number of boxes per axis are powers of two, so the global address of a
//! box splits into bit fields: high-order bits select the VU, low-order
//! bits the location in that VU's local subgrid. All address arithmetic
//! here is that bit manipulation, round-trip tested.

/// A grid of vector units (the paper's processing elements: 4 VUs per
/// CM-5E node).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VuGrid {
    /// VUs per axis; each a power of two.
    pub dims: [usize; 3],
}

impl VuGrid {
    pub fn new(dims: [usize; 3]) -> Self {
        for d in dims {
            assert!(d.is_power_of_two(), "VU grid dims must be powers of two");
        }
        VuGrid { dims }
    }

    /// Total number of VUs.
    pub fn len(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    /// Rank of a VU coordinate (x fastest).
    #[inline]
    pub fn rank(&self, v: [usize; 3]) -> usize {
        debug_assert!(v[0] < self.dims[0] && v[1] < self.dims[1] && v[2] < self.dims[2]);
        (v[2] * self.dims[1] + v[1]) * self.dims[0] + v[0]
    }

    /// Inverse of [`VuGrid::rank`].
    #[inline]
    pub fn coords(&self, rank: usize) -> [usize; 3] {
        [
            rank % self.dims[0],
            (rank / self.dims[0]) % self.dims[1],
            rank / (self.dims[0] * self.dims[1]),
        ]
    }
}

/// A block layout: global box grid distributed over a VU grid, each VU
/// holding a contiguous subgrid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockLayout {
    /// Global boxes per axis (powers of two).
    pub global: [usize; 3],
    pub vu: VuGrid,
    /// Local subgrid extents per axis: `global[a] / vu.dims[a]`.
    pub subgrid: [usize; 3],
}

impl BlockLayout {
    pub fn new(global: [usize; 3], vu: VuGrid) -> Self {
        let mut subgrid = [0; 3];
        for a in 0..3 {
            assert!(
                global[a].is_power_of_two(),
                "global extents must be powers of two"
            );
            assert!(
                global[a].is_multiple_of(vu.dims[a]) && global[a] >= vu.dims[a],
                "axis {}: {} boxes over {} VUs",
                a,
                global[a],
                vu.dims[a]
            );
            subgrid[a] = global[a] / vu.dims[a];
        }
        BlockLayout {
            global,
            vu,
            subgrid,
        }
    }

    /// Number of boxes in one VU's subgrid.
    pub fn boxes_per_vu(&self) -> usize {
        self.subgrid[0] * self.subgrid[1] * self.subgrid[2]
    }

    /// Total boxes.
    pub fn total_boxes(&self) -> usize {
        self.global[0] * self.global[1] * self.global[2]
    }

    /// Bits of the VU address per axis.
    pub fn vu_bits(&self) -> [u32; 3] {
        [
            self.vu.dims[0].trailing_zeros(),
            self.vu.dims[1].trailing_zeros(),
            self.vu.dims[2].trailing_zeros(),
        ]
    }

    /// Bits of the local address per axis.
    pub fn local_bits(&self) -> [u32; 3] {
        [
            self.subgrid[0].trailing_zeros(),
            self.subgrid[1].trailing_zeros(),
            self.subgrid[2].trailing_zeros(),
        ]
    }

    /// The VU owning a global box coordinate (high-order bits per axis).
    #[inline]
    pub fn vu_of(&self, g: [usize; 3]) -> usize {
        let v = [
            g[0] >> self.local_bits()[0],
            g[1] >> self.local_bits()[1],
            g[2] >> self.local_bits()[2],
        ];
        self.vu.rank(v)
    }

    /// Local coordinate within the owning VU (low-order bits per axis).
    #[inline]
    pub fn local_of(&self, g: [usize; 3]) -> [usize; 3] {
        [
            g[0] & (self.subgrid[0] - 1),
            g[1] & (self.subgrid[1] - 1),
            g[2] & (self.subgrid[2] - 1),
        ]
    }

    /// Local linear index (x fastest within the subgrid).
    #[inline]
    pub fn local_index(&self, g: [usize; 3]) -> usize {
        let l = self.local_of(g);
        (l[2] * self.subgrid[1] + l[1]) * self.subgrid[0] + l[0]
    }

    /// Rebuild the global coordinate from (vu rank, local index).
    pub fn global_of(&self, vu_rank: usize, local_index: usize) -> [usize; 3] {
        let v = self.vu.coords(vu_rank);
        let l = [
            local_index % self.subgrid[0],
            (local_index / self.subgrid[0]) % self.subgrid[1],
            local_index / (self.subgrid[0] * self.subgrid[1]),
        ];
        [
            (v[0] << self.local_bits()[0]) | l[0],
            (v[1] << self.local_bits()[1]) | l[1],
            (v[2] << self.local_bits()[2]) | l[2],
        ]
    }

    /// Global linear index (x fastest).
    #[inline]
    pub fn global_index(&self, g: [usize; 3]) -> usize {
        (g[2] * self.global[1] + g[1]) * self.global[0] + g[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout_32node() -> BlockLayout {
        // The paper's Table-4 machine: 32-node CM-5E = 128 VUs, 8³ local
        // subgrids.
        BlockLayout::new([64, 32, 32], VuGrid::new([8, 4, 4]))
    }

    #[test]
    fn vu_rank_round_trip() {
        let vg = VuGrid::new([8, 4, 2]);
        for r in 0..vg.len() {
            assert_eq!(vg.rank(vg.coords(r)), r);
        }
    }

    #[test]
    fn paper_table4_configuration() {
        let l = layout_32node();
        assert_eq!(l.vu.len(), 128);
        assert_eq!(l.subgrid, [8, 8, 8]);
        assert_eq!(l.boxes_per_vu(), 512);
        assert_eq!(l.total_boxes(), 65536);
    }

    #[test]
    fn owner_and_local_round_trip() {
        let l = layout_32node();
        for &g in &[[0, 0, 0], [7, 7, 7], [8, 0, 0], [63, 31, 31], [17, 9, 25]] {
            let vu = l.vu_of(g);
            let li = l.local_index(g);
            assert_eq!(l.global_of(vu, li), g);
        }
    }

    #[test]
    fn neighbours_within_subgrid_share_vu() {
        let l = layout_32node();
        assert_eq!(l.vu_of([0, 0, 0]), l.vu_of([7, 7, 7]));
        assert_ne!(l.vu_of([7, 0, 0]), l.vu_of([8, 0, 0]));
    }

    #[test]
    fn bit_fields_match_extents() {
        let l = layout_32node();
        assert_eq!(l.vu_bits(), [3, 2, 2]);
        assert_eq!(l.local_bits(), [3, 3, 3]);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        let _ = VuGrid::new([3, 1, 1]);
    }

    #[test]
    #[should_panic]
    fn more_vus_than_boxes_rejected() {
        let _ = BlockLayout::new([4, 4, 4], VuGrid::new([8, 1, 1]));
    }
}
