//! Redundant computation vs. replication for translation matrices
//! (paper §3.3.4 and Figs. 8–9).
//!
//! All VUs need the same translation matrices. Two extremes:
//! compute every matrix on every VU (embarrassingly parallel, redundant),
//! or compute each once across the machine and broadcast ("replicating a
//! K×K translation matrix to all nodes is about three to twelve times
//! faster than computing it"). For T1/T3 (8 matrices), replication can be
//! restricted to groups of eight VUs.

use crate::cost::CostModel;

/// Strategy for obtaining `n_matrices` identical K×K matrices on every VU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationStrategy {
    /// Every VU computes every matrix.
    ComputeAllRedundant,
    /// Matrices are computed once across the machine, then spread to all
    /// VUs (`group: None`) or within VU groups of the given size.
    ComputeAndReplicate { group: Option<usize> },
}

impl ReplicationStrategy {
    pub fn name(self) -> &'static str {
        match self {
            ReplicationStrategy::ComputeAllRedundant => "compute on every VU",
            ReplicationStrategy::ComputeAndReplicate { group: None } => {
                "compute in parallel + replicate to all"
            }
            ReplicationStrategy::ComputeAndReplicate { group: Some(_) } => {
                "compute in parallel + replicate within groups"
            }
        }
    }
}

/// Flops to build one K×K translation matrix with truncation M: each of
/// the K² entries evaluates an (M+1)-term Legendre series on top of a
/// normalized direction (sqrt, divisions) — ~20 flops per term plus ~60
/// fixed.
pub const fn build_flops(k: usize, m: usize) -> u64 {
    (k as u64) * (k as u64) * (20 * (m as u64 + 1) + 60)
}

/// Cost breakdown of a precomputation strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecomputeCost {
    /// Wall-clock compute seconds (parallel over VUs where applicable).
    pub compute_s: f64,
    /// Replication (spread) seconds.
    pub replicate_s: f64,
}

impl PrecomputeCost {
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.replicate_s
    }
}

/// Model one strategy: `n_matrices` K×K matrices with truncation `m` on a
/// machine of `n_vus` VUs. `replications` is how many broadcast events
/// occur (the paper delays T2 replication until each matrix is needed:
/// 1331·(h−1) replications over a run — pass `n_matrices` for the
/// precompute-once pattern).
pub fn precompute_cost(
    n_matrices: usize,
    k: usize,
    m: usize,
    n_vus: usize,
    strategy: ReplicationStrategy,
    replications: usize,
    cost: &CostModel,
) -> PrecomputeCost {
    let per_matrix_s = build_flops(k, m) as f64 * cost.flop_ns * 1e-9;
    match strategy {
        ReplicationStrategy::ComputeAllRedundant => PrecomputeCost {
            compute_s: n_matrices as f64 * per_matrix_s,
            replicate_s: 0.0,
        },
        ReplicationStrategy::ComputeAndReplicate { group } => {
            let g = group.unwrap_or(n_vus).max(2);
            // With grouping, each group of g VUs computes the whole
            // collection: parallelism within a group is g.
            let parallelism = g.min(n_matrices).max(1);
            let rounds = n_matrices.div_ceil(parallelism);
            let stages = (g as f64).log2().ceil().max(1.0);
            // Pipelined spread: per replication, log₂(fan-out) latency
            // stages plus one bandwidth term for the K² payload.
            let per_rep_s = stages * cost.broadcast_stage_ns * 1e-9
                + (k * k) as f64 * cost.broadcast_elem_ns * 1e-9;
            PrecomputeCost {
                compute_s: rounds as f64 * per_matrix_s,
                replicate_s: replications as f64 * per_rep_s,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm5e() -> CostModel {
        CostModel::cm5e()
    }

    #[test]
    fn replication_beats_redundant_compute_for_t2() {
        // 1331 T2 matrices on 1024 VUs (paper Fig. 9): parallel compute +
        // replicate is up to an order of magnitude faster.
        let c = cm5e();
        for (k, m) in [(12, 3), (32, 4), (72, 8)] {
            let red = precompute_cost(
                1331,
                k,
                m,
                1024,
                ReplicationStrategy::ComputeAllRedundant,
                0,
                &c,
            );
            let rep = precompute_cost(
                1331,
                k,
                m,
                1024,
                ReplicationStrategy::ComputeAndReplicate { group: None },
                1331,
                &c,
            );
            assert!(
                rep.total_s() < red.total_s(),
                "K={}: rep {} vs red {}",
                k,
                rep.total_s(),
                red.total_s()
            );
        }
    }

    #[test]
    fn replicating_a_matrix_faster_than_computing_it() {
        // Paper: 3–12× faster as K varies from 12 to 72.
        let c = cm5e();
        for (k, m, lo, hi) in [(12usize, 3usize, 1.2, 6.0), (72, 8, 5.0, 25.0)] {
            let compute_s = build_flops(k, m) as f64 * c.flop_ns * 1e-9;
            let rep = precompute_cost(
                1,
                k,
                m,
                1024,
                ReplicationStrategy::ComputeAndReplicate { group: None },
                1,
                &c,
            );
            let ratio = compute_s / rep.replicate_s;
            assert!(
                ratio > lo && ratio < hi,
                "K={}: compute/replicate = {}",
                k,
                ratio
            );
        }
    }

    #[test]
    fn grouping_reduces_replication_cost() {
        // Paper Fig. 8: replication within groups of 8 is 1.26–1.75×
        // cheaper than to all 1024 VUs.
        let c = cm5e();
        for (k, m) in [(12, 3), (72, 8)] {
            let all = precompute_cost(
                8,
                k,
                m,
                1024,
                ReplicationStrategy::ComputeAndReplicate { group: None },
                8,
                &c,
            );
            let grouped = precompute_cost(
                8,
                k,
                m,
                1024,
                ReplicationStrategy::ComputeAndReplicate { group: Some(8) },
                8,
                &c,
            );
            assert!(grouped.replicate_s < all.replicate_s);
            assert!((all.compute_s - grouped.compute_s).abs() < 1e-12);
        }
    }

    #[test]
    fn compute_all_has_no_replication() {
        let c = cm5e();
        let r = precompute_cost(
            100,
            12,
            3,
            64,
            ReplicationStrategy::ComputeAllRedundant,
            0,
            &c,
        );
        assert_eq!(r.replicate_s, 0.0);
        assert!(r.compute_s > 0.0);
    }

    #[test]
    fn parallel_compute_time_shrinks_with_machine() {
        // Fig. 9(b): compute-in-parallel time decreases on larger machines.
        let c = cm5e();
        let t = |p: usize| {
            precompute_cost(
                1331,
                32,
                4,
                p,
                ReplicationStrategy::ComputeAndReplicate { group: None },
                0,
                &c,
            )
            .compute_s
        };
        assert!(t(1024) < t(256));
        assert!(t(256) < t(128));
    }
}
