//! The cost model: counters → modeled time.
//!
//! Constants are expressed in nanoseconds per unit with CM-5E-flavoured
//! *ratios* (what matters for reproducing the paper's orderings is the
//! relative cost of a CSHIFT invocation vs an off-VU box vs a local copy,
//! not the absolute clock). Defaults are chosen so that the paper's
//! measured ratios hold at the paper's problem sizes:
//!
//! * linearized unaliased beats direct unaliased by ≈7× (fewer CSHIFTs
//!   and far less data motion),
//! * linearized aliased beats direct aliased by ≈1.5× (the 54 small
//!   region CSHIFTs of the direct scheme pay 54 fixed overheads, the
//!   linearized whole-subgrid scheme pays 6 at more data moved),
//! * general-router sends are dominated by the address-computation
//!   overhead, which scales with the *array size*, not the selected
//!   elements (Fig. 7).

use crate::counters::Counters;

/// Time model; all values in nanoseconds. `k` (box vector length) scales
/// per-box transfer and copy costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed overhead per CSHIFT invocation.
    pub cshift_overhead_ns: f64,
    /// Per-f64 element cost of an off-VU transfer.
    pub off_vu_elem_ns: f64,
    /// Per-f64 element cost of a local copy.
    pub local_elem_ns: f64,
    /// Fixed overhead per general-router send.
    pub send_overhead_ns: f64,
    /// Per-element cost of scanning an array to compute send addresses.
    pub send_scan_elem_ns: f64,
    /// Per-f64 element cost of a routed transfer.
    pub send_elem_ns: f64,
    /// Fixed overhead per broadcast stage.
    pub broadcast_stage_ns: f64,
    /// Per-f64 element cost per broadcast stage.
    pub broadcast_elem_ns: f64,
    /// Time per flop.
    pub flop_ns: f64,
}

impl CostModel {
    /// CM-5E-flavoured defaults (≈33 MHz VUs, fat-tree network, CMRTS
    /// software overheads).
    pub fn cm5e() -> Self {
        CostModel {
            cshift_overhead_ns: 150_000.0,
            off_vu_elem_ns: 100.0,
            local_elem_ns: 15.0,
            send_overhead_ns: 400_000.0,
            send_scan_elem_ns: 40.0,
            send_elem_ns: 150.0,
            broadcast_stage_ns: 8_000.0,
            broadcast_elem_ns: 120.0,
            flop_ns: 8.0,
        }
    }

    /// Modeled time of a counter set, for boxes of `k` doubles.
    pub fn time_ns(&self, c: &Counters, k: usize) -> f64 {
        let k = k as f64;
        c.cshifts as f64 * self.cshift_overhead_ns
            + c.off_vu_boxes as f64 * k * self.off_vu_elem_ns
            + c.local_box_moves as f64 * k * self.local_elem_ns
            + c.sends as f64 * self.send_overhead_ns
            + c.send_address_scans as f64 * self.send_scan_elem_ns
            + c.broadcast_stages as f64 * self.broadcast_stage_ns
            + c.broadcast_boxes as f64 * k * self.broadcast_elem_ns
            + c.flops as f64 * self.flop_ns
    }

    /// Modeled time in seconds.
    pub fn time_s(&self, c: &Counters, k: usize) -> f64 {
        self.time_ns(c, k) * 1e-9
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::cm5e()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cshift_overhead_dominates_small_transfers() {
        let m = CostModel::cm5e();
        let many_small = Counters {
            cshifts: 54,
            off_vu_boxes: 3584,
            ..Default::default()
        };
        let few_large = Counters {
            cshifts: 6,
            off_vu_boxes: 6656,
            ..Default::default()
        };
        // The paper's observation: fewer, larger CSHIFTs win even when
        // they move more data (≈1.5× there).
        let t_small = m.time_s(&many_small, 12);
        let t_large = m.time_s(&few_large, 12);
        assert!(t_large < t_small, "{} vs {}", t_large, t_small);
        let ratio = t_small / t_large;
        assert!(ratio > 1.1 && ratio < 3.0, "ratio {}", ratio);
    }

    #[test]
    fn time_scales_with_k() {
        let m = CostModel::cm5e();
        let c = Counters {
            off_vu_boxes: 100,
            ..Default::default()
        };
        assert!(m.time_ns(&c, 72) > m.time_ns(&c, 12) * 5.9);
    }

    #[test]
    fn flops_counted() {
        let m = CostModel::cm5e();
        let c = Counters {
            flops: 1_000_000,
            ..Default::default()
        };
        assert!((m.time_s(&c, 1) - 8e-3).abs() < 1e-9);
    }
}
