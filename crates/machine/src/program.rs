//! Whole-program communication budget of a distributed FMM run.
//!
//! The paper's bottom-line communication claims — "the communication time
//! for large particle systems amounts to about 10–25%, and the overall
//! efficiency is about 35%" — are budget statements over the five phases
//! of the method on a block-distributed machine. This module assembles
//! that budget from the same per-phase counting used by the Table-4 /
//! Fig.-7 experiments:
//!
//! * **sort** — the coordinate sort leaves a (distribution-dependent)
//!   fraction of particles off their box's VU; those move once through
//!   the router,
//! * **P2O / eval** — particle–box interactions are local after the sort,
//! * **upward / downward parent–child** — local while a level has at
//!   least one box per VU, a small send above that (the two-step
//!   Multigrid-embed),
//! * **interactive field** — one ghost-halo fetch per level (forwarding
//!   strategy: exact halo volume, 6 CSHIFTs),
//! * **near field** — 62 unit CSHIFTs of the leaf particle arrays
//!   (travelling-accumulator symmetry).

use crate::cost::CostModel;
use crate::counters::Counters;
use crate::ghost::GHOST_DEPTH;
use crate::layout::VuGrid;
use crate::travel::TravelPath;
use fmm_tree::partition::{box_halo, child_flush, parent_fetch, particle_halo, slot_route};
use fmm_tree::{Partition, Separation};

/// Words moved per particle by the router sort and the travelling
/// near-field sweep: x, y, z, q plus one bookkeeping word (the original
/// index for the sort, the travelling accumulator for the near field).
pub const PARTICLE_WORDS: u64 = 5;

/// Configuration of a simulated FMM run.
#[derive(Debug, Clone)]
pub struct ProgramConfig {
    /// Hierarchy depth h (leaf level has 8^h boxes).
    pub depth: u32,
    /// Sphere integration points per box.
    pub k: usize,
    /// Legendre truncation.
    pub m: usize,
    /// Mean particles per leaf box.
    pub particles_per_box: f64,
    /// The machine.
    pub vu_grid: VuGrid,
    /// Supernodes on (189 translations/box) or off (875).
    pub supernodes: bool,
    /// Fraction of particles NOT on their box's VU after the coordinate
    /// sort (0 for uniform distributions, per §3.2).
    pub sort_miss_fraction: f64,
    /// Near-field variant: `false` prices the travelling-accumulator
    /// potentials sweep (62 visits + returns), `true` the forces
    /// particle-halo exchange (one clipped halo fetch, three axis phases).
    pub forces_near: bool,
}

impl ProgramConfig {
    /// The paper's large-system configuration: depth-8 hierarchy on a
    /// 256-node (1024-VU) CM-5E, 100M particles, K = 12.
    pub fn paper_d5() -> Self {
        ProgramConfig {
            depth: 8,
            k: 12,
            m: 3,
            particles_per_box: 100e6 / 8f64.powi(8),
            vu_grid: VuGrid::new([16, 8, 8]),
            supernodes: true,
            sort_miss_fraction: 0.0,
            forces_near: false,
        }
    }

    /// The paper's high-accuracy configuration: depth 7, K = 72.
    pub fn paper_d14() -> Self {
        ProgramConfig {
            depth: 7,
            k: 72,
            m: 8,
            particles_per_box: 100e6 / 8f64.powi(7),
            vu_grid: VuGrid::new([16, 8, 8]),
            supernodes: true,
            sort_miss_fraction: 0.0,
            forces_near: false,
        }
    }

    /// Total particles.
    pub fn n_particles(&self) -> f64 {
        self.particles_per_box * 8f64.powi(self.depth as i32)
    }
}

/// One phase of the budget.
#[derive(Debug, Clone)]
pub struct PhaseBudget {
    pub name: &'static str,
    pub comm: Counters,
    pub compute_flops: u64,
}

/// The assembled budget.
#[derive(Debug, Clone)]
pub struct ProgramBudget {
    pub phases: Vec<PhaseBudget>,
    pub config_k: usize,
}

impl ProgramBudget {
    /// All phase counters merged (the cost model is linear in the
    /// counters, so timing the merged set equals summing per-phase times).
    pub fn total_comm(&self) -> Counters {
        self.phases.iter().map(|p| p.comm).sum()
    }

    /// Communication seconds under a cost model (flops excluded).
    pub fn comm_s(&self, cost: &CostModel) -> f64 {
        cost.time_s(&self.total_comm(), self.config_k)
    }

    /// Compute seconds under a cost model.
    pub fn compute_s(&self, cost: &CostModel) -> f64 {
        self.total_flops() as f64 * cost.flop_ns * 1e-9
    }

    /// Fraction of total modeled time spent communicating.
    pub fn comm_fraction(&self, cost: &CostModel) -> f64 {
        let c = self.comm_s(cost);
        let f = self.compute_s(cost);
        c / (c + f)
    }

    /// Achieved efficiency against a peak flop time (ns/flop at peak).
    /// `cost.flop_ns` is the *achieved* per-flop time of real kernels;
    /// efficiency = (flops · peak_flop_ns) / total_time.
    pub fn efficiency(&self, cost: &CostModel, peak_flop_ns: f64) -> f64 {
        let flops: u64 = self.phases.iter().map(|p| p.compute_flops).sum();
        let total = self.comm_s(cost) + self.compute_s(cost);
        (flops as f64 * peak_flop_ns * 1e-9) / total
    }

    pub fn total_flops(&self) -> u64 {
        self.phases.iter().map(|p| p.compute_flops).sum()
    }
}

/// Total chunk-hops of a binomial-tree gather to rank 0 over `p = 2^b`
/// ranks: rank r's chunk travels popcount(r) hops, and
/// Σ_{r=1}^{p−1} popcount(r) = (p/2)·log₂(p).
pub fn gather_hops(p: u64) -> u64 {
    debug_assert!(p.is_power_of_two());
    (p / 2) * p.trailing_zeros() as u64
}

/// Per-VU subgrid extent (per axis) of level `l` over a VU grid, or `None`
/// when the level has fewer boxes than VUs along some axis.
pub fn subgrid_extent(l: u32, vu: &VuGrid) -> Option<[usize; 3]> {
    let n = 1usize << l;
    let mut s = [0; 3];
    for (sa, &d) in s.iter_mut().zip(&vu.dims) {
        if n < d {
            return None;
        }
        *sa = n / d;
    }
    Some(s)
}

/// Assemble the per-phase communication/compute budget for the uniform
/// block layout (equivalent to [`communication_budget_with`] with no
/// partition).
pub fn communication_budget(cfg: &ProgramConfig) -> ProgramBudget {
    communication_budget_with(cfg, None)
}

/// Assemble the per-phase budget, optionally for a cost-weighted
/// [`Partition`] of the leaf Morton curve instead of the uniform block
/// layout.
///
/// With a partition, the upward / downward / near communication counters
/// are no longer closed forms: they are summed from the exact exchange
/// plans the partition induces ([`fmm_tree::partition`]) — the same plans
/// the SPMD schedule and executor consume — so `sends` equals the
/// machine-wide message count and `off_vu_boxes` the cross-owner K-box
/// rows *exactly*, making the budget byte-exact against executor counters
/// by construction. Compute flops keep the layout-independent closed
/// forms. The partitioned near field is modelled at two-separation, like
/// the closed-form path.
pub fn communication_budget_with(
    cfg: &ProgramConfig,
    partition: Option<&Partition>,
) -> ProgramBudget {
    let mut budget = closed_form_budget(cfg);
    let Some(part) = partition else {
        return budget;
    };
    assert_eq!(
        part.workers(),
        cfg.vu_grid.len(),
        "partition workers must match the VU grid"
    );
    assert_eq!(part.depth(), cfg.depth, "partition depth must match");
    let h = cfg.depth;
    let sep = Separation::Two;

    // Upward: one child-flush exchange per computed parent level
    // (depth−1 down to 2); no gather/broadcast embedding.
    let mut up = Counters::default();
    for l in 2..h {
        let ex = child_flush(part, l);
        up.sends += ex.messages();
        up.off_vu_boxes += ex.rows();
    }
    budget.phases[2].comm = up;

    // Downward: per level, a parent-fetch of local rows (l ≥ 3) and a
    // box-halo of far rows over the interactive-field union.
    let mut down = Counters::default();
    for l in 2..=h {
        if l >= 3 {
            let ex = parent_fetch(part, l);
            down.sends += ex.messages();
            down.off_vu_boxes += ex.rows();
        }
        let ex = box_halo(part, l, sep);
        down.sends += ex.messages();
        down.off_vu_boxes += ex.rows();
    }
    budget.phases[3].comm = down;

    // Near field: the travelling-slot sweep becomes per-hop routed
    // exchanges (steps shift by −dir; returns walk the slots home), or one
    // particle-halo exchange for forces. Payloads are data-dependent, so
    // only the message count is predicted (bytes stay un-checked).
    let mut near = Counters::default();
    if cfg.forces_near {
        near.sends += particle_halo(part, sep).messages();
    } else {
        let path = TravelPath::new(sep.d());
        for s in &path.steps {
            near.sends += slot_route(part, s.axis, -s.dir).messages();
        }
        for (axis, &r) in path.returns.iter().enumerate() {
            for _ in 0..r.unsigned_abs() {
                near.sends += slot_route(part, axis, -r.signum()).messages();
            }
        }
    }
    budget.phases[5].comm = near;
    budget
}

/// The closed-form uniform-layout budget body.
fn closed_form_budget(cfg: &ProgramConfig) -> ProgramBudget {
    let p = cfg.vu_grid.len() as u64;
    let k = cfg.k as u64;
    let n = cfg.n_particles();
    let h = cfg.depth;
    let leaf_boxes = 1u64 << (3 * h);
    let mut phases = Vec::new();

    // --- sort -----------------------------------------------------------
    // One all-to-allv through the router; each mis-homed particle carries
    // PARTICLE_WORDS f64 (x, y, z, q, original index), scaled to K-boxes.
    let misses = (n * cfg.sort_miss_fraction) as u64;
    phases.push(PhaseBudget {
        name: "sort",
        comm: Counters {
            sends: if misses > 0 { 1 } else { 0 },
            off_vu_boxes: misses * PARTICLE_WORDS / k.max(1),
            send_address_scans: n as u64,
            ..Default::default()
        },
        compute_flops: (n * (n / p as f64).log2().max(1.0)) as u64, // comparison work
    });

    // --- P2O (local after the sort) --------------------------------------
    phases.push(PhaseBudget {
        name: "p2o",
        comm: Counters::default(),
        compute_flops: (n * cfg.k as f64 * 10.0) as u64,
    });

    // --- upward (T1) ------------------------------------------------------
    // While parent and child levels are both block-distributed, a child
    // and its parent share a VU (the block layout strips one low bit per
    // axis), so gathering children is pure local motion. At the single
    // transition to the Multigrid-embed region, the child level's far
    // field is gathered to rank 0 by a binomial tree; every shallower
    // level is computed there with local moves only.
    let mut up_comm = Counters::default();
    let mut up_flops = 0u64;
    for l in (1..h).rev() {
        let boxes = 1u64 << (3 * l);
        let children = boxes * 8;
        up_flops += boxes * 8 * 2 * k * k;
        up_comm.local_box_moves += children;
        if subgrid_extent(l, &cfg.vu_grid).is_none()
            && subgrid_extent(l + 1, &cfg.vu_grid).is_some()
        {
            // Embed transition: binomial gather of far[l+1] to rank 0.
            up_comm.sends += p - 1;
            up_comm.off_vu_boxes += (children / p) * gather_hops(p);
        }
    }
    phases.push(PhaseBudget {
        name: "upward(T1)",
        comm: up_comm,
        compute_flops: up_flops,
    });

    // --- downward (T2 + T3) ----------------------------------------------
    let translations_per_box = if cfg.supernodes { 189u64 } else { 875 };
    let mut down_comm = Counters::default();
    let mut down_flops = 0u64;
    for l in 2..=h {
        let boxes = 1u64 << (3 * l);
        down_flops += boxes * translations_per_box * 2 * k * k; // T2
        if l >= 3 {
            down_flops += boxes * 2 * k * k; // T3
        }
        match subgrid_extent(l, &cfg.vu_grid) {
            Some(s) => {
                // Forwarding halo fetch: exact halo volume, 6 CSHIFTs,
                // plus local copies for the buffer and the T2 gathers.
                // Plain T2 reads sources up to 2d+1 = 5 child boxes away
                // (the per-octant reach is asymmetric, [−5, +4]/[−4, +5];
                // a symmetric depth-5 halo covers it); the supernode
                // decomposition's leftover children stay within the
                // paper's GHOST_DEPTH = 4.
                let g = if cfg.supernodes {
                    GHOST_DEPTH
                } else {
                    GHOST_DEPTH + 1
                };
                let halo =
                    ((s[0] + 2 * g) * (s[1] + 2 * g) * (s[2] + 2 * g) - s[0] * s[1] * s[2]) as u64;
                // A ghost cell at distance o (1 ≤ o ≤ g) beyond the block
                // edge along axis a lives on VU (me ± ⌈o/s_a⌉) mod dims_a;
                // when that wraps back onto the owner (small grids: an axis
                // spanned by one VU, or g reaching all the way around) the
                // fetch is pure local motion, not a message. Per-axis
                // off-VU offsets times the axis phase's cross-section — the
                // corner-forwarding phases extend earlier axes first — give
                // the exact off-VU halo volume. On grids where no offset
                // wraps home (all the paper configurations) every ghost
                // cell is off-VU and this reduces to the full halo.
                let dims = cfg.vu_grid.dims;
                let off_offsets = |a: usize| -> u64 {
                    2 * (1..=g).filter(|&o| o.div_ceil(s[a]) % dims[a] != 0).count() as u64
                };
                let cross = [
                    (s[1] * s[2]) as u64,
                    ((s[0] + 2 * g) * s[2]) as u64,
                    ((s[0] + 2 * g) * (s[1] + 2 * g)) as u64,
                ];
                let off: u64 = (0..3).map(|a| off_offsets(a) * cross[a]).sum();
                down_comm.cshifts += 6;
                down_comm.off_vu_boxes += off * p;
                down_comm.local_box_moves += (halo - off + boxes / p * translations_per_box) * p;
            }
            None => {
                // Embedded level: computed wholly on rank 0; the 27-point
                // neighbourhood gathers are local memory traffic there.
                down_comm.local_box_moves += boxes * 27;
            }
        }
    }
    // Re-entering the distributed region: the first distributed level l_d
    // with an embedded parent needs local[l_d − 1] everywhere for T3, so
    // rank 0 tree-broadcasts that (tiny) level once.
    if let Some(l_d) = (2..=h).find(|&l| subgrid_extent(l, &cfg.vu_grid).is_some()) {
        if l_d >= 3 && subgrid_extent(l_d - 1, &cfg.vu_grid).is_none() {
            let parent_boxes = 1u64 << (3 * (l_d - 1));
            down_comm.broadcast_stages += p.trailing_zeros() as u64;
            down_comm.broadcast_boxes += parent_boxes * (p - 1);
        }
    }
    phases.push(PhaseBudget {
        name: "downward(T2+T3)",
        comm: down_comm,
        compute_flops: down_flops,
    });

    // --- leaf evaluation ---------------------------------------------------
    phases.push(PhaseBudget {
        name: "eval",
        comm: Counters::default(),
        compute_flops: (n * cfg.k as f64 * (cfg.m as f64 + 1.0) * 6.0) as u64,
    });

    // --- near field ---------------------------------------------------------
    let pairs = n * cfg.particles_per_box * 125.0 / 2.0; // symmetric sweep
    let near_flops = (pairs * 10.0) as u64;
    let mut near_comm = Counters::default();
    if cfg.forces_near {
        // Forces near field: one clipped particle-halo fetch of the
        // separation-depth shell (d = 2) instead of the travelling sweep —
        // three axis phases, two CSHIFT-ledger ops each (like the box
        // halo). Ghost particles carry x, y, z, q (no accumulator; forces
        // accumulate one-sided on the owning VU), scaled to K-boxes.
        near_comm.cshifts += 6;
        if let Some(s) = subgrid_extent(h, &cfg.vu_grid) {
            let d_sep = 2u64;
            let plane = leaf_boxes >> h; // n² boxes per leaf-grid plane
            let crossing: u64 = (0..3)
                .filter(|&a| cfg.vu_grid.dims[a] > 1)
                .map(|a| {
                    let seams = cfg.vu_grid.dims[a] as u64 - 1;
                    2 * d_sep.min(s[a] as u64) * seams * plane
                })
                .sum();
            let words_per_box = cfg.particles_per_box * 4.0;
            near_comm.off_vu_boxes += (crossing as f64 * words_per_box / cfg.k as f64) as u64;
        }
    } else if let Some(s) = subgrid_extent(h, &cfg.vu_grid) {
        // The travelling-accumulator sweep: one unit CSHIFT per visited
        // half-offset plus one return shift per axis. Each unit
        // displacement along axis a moves every VU's boundary plane
        // (leaf_boxes / s[a] boxes globally) across a VU seam and the rest
        // within VU memory; each box carries particles_per_box particles
        // of PARTICLE_WORDS f64 (x, y, z, q, accumulator), scaled to
        // K-boxes.
        let path = TravelPath::new(2);
        near_comm.cshifts += path.cshift_count();
        let total_moves: u64 = (0..3)
            .map(|a| path.total_travel_along(a) * leaf_boxes)
            .sum();
        // An axis spanned by a single VU wraps onto itself: the shift is
        // pure local motion, nothing crosses a seam.
        let crossing: u64 = (0..3)
            .filter(|&a| cfg.vu_grid.dims[a] > 1)
            .map(|a| path.total_travel_along(a) * (leaf_boxes / s[a] as u64))
            .sum();
        let words_per_box = cfg.particles_per_box * PARTICLE_WORDS as f64;
        near_comm.off_vu_boxes += (crossing as f64 * words_per_box / cfg.k as f64) as u64;
        near_comm.local_box_moves +=
            ((total_moves - crossing) as f64 * words_per_box / cfg.k as f64) as u64;
    }
    phases.push(PhaseBudget {
        name: "near",
        comm: near_comm,
        compute_flops: near_flops,
    });

    ProgramBudget {
        phases,
        config_k: cfg.k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_hit_the_claimed_comm_band() {
        let cost = CostModel::cm5e();
        let d5 = communication_budget(&ProgramConfig::paper_d5());
        let d14 = communication_budget(&ProgramConfig::paper_d14());
        let f5 = d5.comm_fraction(&cost);
        let f14 = d14.comm_fraction(&cost);
        // Paper: "about 10-25%" (12% for K=12/depth 8 in the traversal,
        // 25% for K=72/depth 7). Our budget counts *minimal* data motion:
        // it reproduces the D=5 figure (~9% vs the paper's ~12%) but shows
        // the K=72 configuration to be compute-bound (~2%) — the paper's
        // 25% at K=72 reflects CM runtime overheads beyond minimal motion
        // (whole-subgrid moves, per-call costs); see EXPERIMENTS.md E9.
        assert!(f5 > 0.05 && f5 < 0.20, "D=5 comm fraction {}", f5);
        assert!(f14 > 0.005 && f14 < 0.30, "D=14 comm fraction {}", f14);
        assert!(f14 < f5, "K=72 moves fewer bytes per flop than K=12");
    }

    #[test]
    fn supernodes_reduce_compute_not_comm() {
        let mut cfg = ProgramConfig::paper_d5();
        cfg.supernodes = false;
        let plain = communication_budget(&cfg);
        cfg.supernodes = true;
        let sup = communication_budget(&cfg);
        assert!(sup.total_flops() < plain.total_flops());
        let cost = CostModel::cm5e();
        // Supernodes shrink the halo only slightly (depth 4 vs 5) while
        // cutting the T2 compute ~4.6×, so the comm fraction rises.
        assert!(sup.comm_fraction(&cost) >= plain.comm_fraction(&cost) * 0.99);
    }

    #[test]
    fn deeper_hierarchy_shrinks_halo_share() {
        // Bigger subgrids (same machine, deeper tree) have better
        // surface-to-volume, so the downward phase's comm per flop drops.
        let cost = CostModel::cm5e();
        let share = |depth: u32| {
            let cfg = ProgramConfig {
                depth,
                particles_per_box: 10.0,
                ..ProgramConfig::paper_d5()
            };
            let b = communication_budget(&cfg);
            let down = b
                .phases
                .iter()
                .find(|p| p.name == "downward(T2+T3)")
                .unwrap();
            cost.time_s(&down.comm, b.config_k)
                / (cost.time_s(&down.comm, b.config_k)
                    + down.compute_flops as f64 * cost.flop_ns * 1e-9)
        };
        assert!(share(8) < share(6), "{} vs {}", share(8), share(6));
    }

    #[test]
    fn sort_misses_add_router_traffic() {
        let cost = CostModel::cm5e();
        let mut cfg = ProgramConfig::paper_d5();
        cfg.sort_miss_fraction = 0.0;
        let clean = communication_budget(&cfg).comm_s(&cost);
        cfg.sort_miss_fraction = 0.5;
        let dirty = communication_budget(&cfg).comm_s(&cost);
        assert!(dirty > clean);
    }

    #[test]
    fn partitioned_budget_sums_the_exchange_plans() {
        let cfg = ProgramConfig {
            depth: 3,
            k: 6,
            m: 3,
            particles_per_box: 4.0,
            vu_grid: VuGrid::new([2, 2, 2]),
            supernodes: false,
            sort_miss_fraction: 1.0 - 1.0 / 8.0,
            forces_near: false,
        };
        let costs: Vec<u64> = (0..512u64)
            .map(|i| (i.wrapping_mul(2654435761)) % 997)
            .collect();
        let part = Partition::cost_weighted(3, 8, &costs);
        let b = communication_budget_with(&cfg, Some(&part));
        // Upward is exactly the level-2 child flush.
        let cf = child_flush(&part, 2);
        assert_eq!(b.phases[2].comm.sends, cf.messages());
        assert_eq!(b.phases[2].comm.off_vu_boxes, cf.rows());
        // Downward sums parent fetches and box halos.
        let expect: u64 = [
            box_halo(&part, 2, Separation::Two),
            box_halo(&part, 3, Separation::Two),
        ]
        .iter()
        .map(|e| e.messages())
        .sum::<u64>()
            + parent_fetch(&part, 3).messages();
        assert_eq!(b.phases[3].comm.sends, expect);
        // P2O and eval stay communication-free.
        assert_eq!(crate::compare::predicted_messages(&b.phases[1].comm), 0);
        assert_eq!(crate::compare::predicted_messages(&b.phases[4].comm), 0);
        // The forces variant prices the particle halo instead of the sweep.
        let bf = communication_budget_with(
            &ProgramConfig {
                forces_near: true,
                ..cfg.clone()
            },
            Some(&part),
        );
        assert_eq!(
            bf.phases[5].comm.sends,
            particle_halo(&part, Separation::Two).messages()
        );
    }

    #[test]
    fn single_worker_partition_has_silent_phases() {
        let cfg = ProgramConfig {
            depth: 3,
            k: 6,
            m: 3,
            particles_per_box: 4.0,
            vu_grid: VuGrid::new([1, 1, 1]),
            supernodes: false,
            sort_miss_fraction: 0.0,
            forces_near: false,
        };
        let b = communication_budget_with(&cfg, Some(&Partition::uniform(3, 1)));
        for ph in &b.phases {
            assert_eq!(
                crate::compare::predicted_messages(&ph.comm),
                0,
                "phase {} should be silent at p = 1",
                ph.name
            );
        }
    }

    #[test]
    fn efficiency_in_papers_ballpark() {
        // With achieved-kernel flop time 2× the peak flop time (≈50%
        // arithmetic efficiency, the paper's Table-3 regime), the overall
        // efficiency should land in the paper's 25–40% band.
        let cost = CostModel::cm5e();
        let b = communication_budget(&ProgramConfig::paper_d14());
        let eff = b.efficiency(&cost, cost.flop_ns / 2.0);
        assert!(eff > 0.2 && eff < 0.55, "efficiency {}", eff);
    }
}
