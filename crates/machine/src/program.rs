//! Whole-program communication budget of a distributed FMM run.
//!
//! The paper's bottom-line communication claims — "the communication time
//! for large particle systems amounts to about 10–25%, and the overall
//! efficiency is about 35%" — are budget statements over the five phases
//! of the method on a block-distributed machine. This module assembles
//! that budget from the same per-phase counting used by the Table-4 /
//! Fig.-7 experiments:
//!
//! * **sort** — the coordinate sort leaves a (distribution-dependent)
//!   fraction of particles off their box's VU; those move once through
//!   the router,
//! * **P2O / eval** — particle–box interactions are local after the sort,
//! * **upward / downward parent–child** — local while a level has at
//!   least one box per VU, a small send above that (the two-step
//!   Multigrid-embed),
//! * **interactive field** — one ghost-halo fetch per level (forwarding
//!   strategy: exact halo volume, 6 CSHIFTs),
//! * **near field** — 62 unit CSHIFTs of the leaf particle arrays
//!   (travelling-accumulator symmetry).

use crate::cost::CostModel;
use crate::counters::Counters;
use crate::ghost::GHOST_DEPTH;
use crate::layout::VuGrid;

/// Configuration of a simulated FMM run.
#[derive(Debug, Clone)]
pub struct ProgramConfig {
    /// Hierarchy depth h (leaf level has 8^h boxes).
    pub depth: u32,
    /// Sphere integration points per box.
    pub k: usize,
    /// Legendre truncation.
    pub m: usize,
    /// Mean particles per leaf box.
    pub particles_per_box: f64,
    /// The machine.
    pub vu_grid: VuGrid,
    /// Supernodes on (189 translations/box) or off (875).
    pub supernodes: bool,
    /// Fraction of particles NOT on their box's VU after the coordinate
    /// sort (0 for uniform distributions, per §3.2).
    pub sort_miss_fraction: f64,
}

impl ProgramConfig {
    /// The paper's large-system configuration: depth-8 hierarchy on a
    /// 256-node (1024-VU) CM-5E, 100M particles, K = 12.
    pub fn paper_d5() -> Self {
        ProgramConfig {
            depth: 8,
            k: 12,
            m: 3,
            particles_per_box: 100e6 / 8f64.powi(8),
            vu_grid: VuGrid::new([16, 8, 8]),
            supernodes: true,
            sort_miss_fraction: 0.0,
        }
    }

    /// The paper's high-accuracy configuration: depth 7, K = 72.
    pub fn paper_d14() -> Self {
        ProgramConfig {
            depth: 7,
            k: 72,
            m: 8,
            particles_per_box: 100e6 / 8f64.powi(7),
            vu_grid: VuGrid::new([16, 8, 8]),
            supernodes: true,
            sort_miss_fraction: 0.0,
        }
    }

    /// Total particles.
    pub fn n_particles(&self) -> f64 {
        self.particles_per_box * 8f64.powi(self.depth as i32)
    }
}

/// One phase of the budget.
#[derive(Debug, Clone)]
pub struct PhaseBudget {
    pub name: &'static str,
    pub comm: Counters,
    pub compute_flops: u64,
}

/// The assembled budget.
#[derive(Debug, Clone)]
pub struct ProgramBudget {
    pub phases: Vec<PhaseBudget>,
    pub config_k: usize,
}

impl ProgramBudget {
    /// Communication seconds under a cost model (flops excluded).
    pub fn comm_s(&self, cost: &CostModel) -> f64 {
        self.phases
            .iter()
            .map(|p| cost.time_s(&p.comm, self.config_k))
            .sum()
    }

    /// Compute seconds under a cost model.
    pub fn compute_s(&self, cost: &CostModel) -> f64 {
        self.phases
            .iter()
            .map(|p| p.compute_flops as f64 * cost.flop_ns * 1e-9)
            .sum()
    }

    /// Fraction of total modeled time spent communicating.
    pub fn comm_fraction(&self, cost: &CostModel) -> f64 {
        let c = self.comm_s(cost);
        let f = self.compute_s(cost);
        c / (c + f)
    }

    /// Achieved efficiency against a peak flop time (ns/flop at peak).
    /// `cost.flop_ns` is the *achieved* per-flop time of real kernels;
    /// efficiency = (flops · peak_flop_ns) / total_time.
    pub fn efficiency(&self, cost: &CostModel, peak_flop_ns: f64) -> f64 {
        let flops: u64 = self.phases.iter().map(|p| p.compute_flops).sum();
        let total = self.comm_s(cost) + self.compute_s(cost);
        (flops as f64 * peak_flop_ns * 1e-9) / total
    }

    pub fn total_flops(&self) -> u64 {
        self.phases.iter().map(|p| p.compute_flops).sum()
    }
}

/// Per-VU subgrid extent (per axis) of level `l` over a VU grid, or `None`
/// when the level has fewer boxes than VUs along some axis.
fn subgrid_extent(l: u32, vu: &VuGrid) -> Option<[usize; 3]> {
    let n = 1usize << l;
    let mut s = [0; 3];
    for (sa, &d) in s.iter_mut().zip(&vu.dims) {
        if n < d {
            return None;
        }
        *sa = n / d;
    }
    Some(s)
}

/// Assemble the per-phase communication/compute budget.
pub fn communication_budget(cfg: &ProgramConfig) -> ProgramBudget {
    let p = cfg.vu_grid.len() as u64;
    let k = cfg.k as u64;
    let n = cfg.n_particles();
    let h = cfg.depth;
    let leaf_boxes = 1u64 << (3 * h);
    let mut phases = Vec::new();

    // --- sort -----------------------------------------------------------
    let misses = (n * cfg.sort_miss_fraction) as u64;
    phases.push(PhaseBudget {
        name: "sort",
        comm: Counters {
            sends: if misses > 0 { 1 } else { 0 },
            off_vu_boxes: misses / k.max(1), // particles, scaled to boxes
            send_address_scans: n as u64,
            ..Default::default()
        },
        compute_flops: (n * (n / p as f64).log2().max(1.0)) as u64, // comparison work
    });

    // --- P2O (local after the sort) --------------------------------------
    phases.push(PhaseBudget {
        name: "p2o",
        comm: Counters::default(),
        compute_flops: (n * cfg.k as f64 * 10.0) as u64,
    });

    // --- upward (T1) ------------------------------------------------------
    let mut up_comm = Counters::default();
    let mut up_flops = 0u64;
    for l in (1..h).rev() {
        let boxes = 1u64 << (3 * l);
        up_flops += boxes * 8 * 2 * k * k;
        if subgrid_extent(l, &cfg.vu_grid).is_none() {
            // Fewer boxes than VUs: two-step embed/extract, all boxes move.
            up_comm.sends += 1;
            up_comm.off_vu_boxes += boxes * 8; // children gathered
            up_comm.send_address_scans += p;
        } else {
            up_comm.local_box_moves += boxes * 8;
        }
    }
    phases.push(PhaseBudget {
        name: "upward(T1)",
        comm: up_comm,
        compute_flops: up_flops,
    });

    // --- downward (T2 + T3) ----------------------------------------------
    let translations_per_box = if cfg.supernodes { 189u64 } else { 875 };
    let mut down_comm = Counters::default();
    let mut down_flops = 0u64;
    for l in 2..=h {
        let boxes = 1u64 << (3 * l);
        down_flops += boxes * translations_per_box * 2 * k * k; // T2
        if l >= 3 {
            down_flops += boxes * 2 * k * k; // T3
        }
        match subgrid_extent(l, &cfg.vu_grid) {
            Some(s) => {
                // Forwarding halo fetch: exact halo volume, 6 CSHIFTs,
                // plus local copies for the buffer and the T2 gathers.
                let g = GHOST_DEPTH;
                let halo =
                    ((s[0] + 2 * g) * (s[1] + 2 * g) * (s[2] + 2 * g) - s[0] * s[1] * s[2]) as u64;
                down_comm.cshifts += 6;
                down_comm.off_vu_boxes += halo * p;
                down_comm.local_box_moves += (halo + boxes / p * translations_per_box) * p;
            }
            None => {
                // Near the root: everything moves (tiny levels).
                down_comm.sends += 1;
                down_comm.off_vu_boxes += boxes * 27;
                down_comm.send_address_scans += p;
            }
        }
    }
    phases.push(PhaseBudget {
        name: "downward(T2+T3)",
        comm: down_comm,
        compute_flops: down_flops,
    });

    // --- leaf evaluation ---------------------------------------------------
    phases.push(PhaseBudget {
        name: "eval",
        comm: Counters::default(),
        compute_flops: (n * cfg.k as f64 * (cfg.m as f64 + 1.0) * 6.0) as u64,
    });

    // --- near field ---------------------------------------------------------
    let pairs = n * cfg.particles_per_box * 125.0 / 2.0; // symmetric sweep
    let near_flops = (pairs * 10.0) as u64;
    let mut near_comm = Counters::default();
    if let Some(s) = subgrid_extent(h, &cfg.vu_grid) {
        // 62 unit CSHIFTs of the particle arrays (4 f64 per particle, so
        // particles_per_box·4/k "boxes" of k doubles per leaf box).
        let crossing_boxes = 62 * leaf_boxes / s[0] as u64;
        let particle_box_factor = cfg.particles_per_box * 4.0 / cfg.k as f64;
        near_comm.cshifts += 62;
        near_comm.off_vu_boxes += (crossing_boxes as f64 * particle_box_factor) as u64;
        near_comm.local_box_moves +=
            ((62 * leaf_boxes - crossing_boxes) as f64 * particle_box_factor) as u64;
    }
    phases.push(PhaseBudget {
        name: "near",
        comm: near_comm,
        compute_flops: near_flops,
    });

    ProgramBudget {
        phases,
        config_k: cfg.k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_hit_the_claimed_comm_band() {
        let cost = CostModel::cm5e();
        let d5 = communication_budget(&ProgramConfig::paper_d5());
        let d14 = communication_budget(&ProgramConfig::paper_d14());
        let f5 = d5.comm_fraction(&cost);
        let f14 = d14.comm_fraction(&cost);
        // Paper: "about 10-25%" (12% for K=12/depth 8 in the traversal,
        // 25% for K=72/depth 7). Our budget counts *minimal* data motion:
        // it reproduces the D=5 figure (~9% vs the paper's ~12%) but shows
        // the K=72 configuration to be compute-bound (~2%) — the paper's
        // 25% at K=72 reflects CM runtime overheads beyond minimal motion
        // (whole-subgrid moves, per-call costs); see EXPERIMENTS.md E9.
        assert!(f5 > 0.05 && f5 < 0.20, "D=5 comm fraction {}", f5);
        assert!(f14 > 0.005 && f14 < 0.30, "D=14 comm fraction {}", f14);
        assert!(f14 < f5, "K=72 moves fewer bytes per flop than K=12");
    }

    #[test]
    fn supernodes_reduce_compute_not_comm() {
        let mut cfg = ProgramConfig::paper_d5();
        cfg.supernodes = false;
        let plain = communication_budget(&cfg);
        cfg.supernodes = true;
        let sup = communication_budget(&cfg);
        assert!(sup.total_flops() < plain.total_flops());
        let cost = CostModel::cm5e();
        // Same halos are fetched either way, so the comm fraction rises
        // when supernodes cut the compute.
        assert!(sup.comm_fraction(&cost) >= plain.comm_fraction(&cost) * 0.99);
    }

    #[test]
    fn deeper_hierarchy_shrinks_halo_share() {
        // Bigger subgrids (same machine, deeper tree) have better
        // surface-to-volume, so the downward phase's comm per flop drops.
        let cost = CostModel::cm5e();
        let share = |depth: u32| {
            let cfg = ProgramConfig {
                depth,
                particles_per_box: 10.0,
                ..ProgramConfig::paper_d5()
            };
            let b = communication_budget(&cfg);
            let down = b
                .phases
                .iter()
                .find(|p| p.name == "downward(T2+T3)")
                .unwrap();
            cost.time_s(&down.comm, b.config_k)
                / (cost.time_s(&down.comm, b.config_k)
                    + down.compute_flops as f64 * cost.flop_ns * 1e-9)
        };
        assert!(share(8) < share(6), "{} vs {}", share(8), share(6));
    }

    #[test]
    fn sort_misses_add_router_traffic() {
        let cost = CostModel::cm5e();
        let mut cfg = ProgramConfig::paper_d5();
        cfg.sort_miss_fraction = 0.0;
        let clean = communication_budget(&cfg).comm_s(&cost);
        cfg.sort_miss_fraction = 0.5;
        let dirty = communication_budget(&cfg).comm_s(&cost);
        assert!(dirty > clean);
    }

    #[test]
    fn efficiency_in_papers_ballpark() {
        // With achieved-kernel flop time 2× the peak flop time (≈50%
        // arithmetic efficiency, the paper's Table-3 regime), the overall
        // efficiency should land in the paper's 25–40% band.
        let cost = CostModel::cm5e();
        let b = communication_budget(&ProgramConfig::paper_d14());
        let eff = b.efficiency(&cost, cost.flop_ns / 2.0);
        assert!(eff > 0.2 && eff < 0.55, "efficiency {}", eff);
    }
}
