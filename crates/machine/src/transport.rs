//! Budget pricing per transport, and the launcher's pre-flight check.
//!
//! The program budget ([`crate::communication_budget`]) counts data
//! motion in machine units — messages and payload bytes. What a message
//! *costs* depends on the wire the SPMD executor selects: an in-process
//! channel send is an allocation handoff, a UNIX-domain frame crosses the
//! kernel twice, a TCP frame additionally pays the stack's segmentation.
//! [`TransportModel`] carries per-fabric constants so the same budget can
//! be priced on each, and [`preflight`] turns the priced budget into a
//! go/no-go answer *before* any rank is spawned: a schedule whose total
//! traffic exceeds the operator's byte budget, or whose largest phase
//! cannot fit a frame on the wire, fails fast with the numbers in hand
//! instead of wedging p processes mid-collective.

use crate::program::ProgramBudget;

/// Latency/bandwidth/frame constants of one fabric. The defaults are
/// order-of-magnitude figures for a single host (loopback), deliberately
/// round: pre-flight is a feasibility gate, not a performance prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransportModel {
    /// Fabric name, matching `fmm_core::Fabric::name()`.
    pub name: &'static str,
    /// Fixed per-message cost, seconds.
    pub latency_s: f64,
    /// Streaming payload bandwidth, bytes per second.
    pub bytes_per_s: f64,
    /// Largest single frame the wire accepts (payload bytes).
    pub max_frame: u64,
}

impl TransportModel {
    /// In-process channels: a send moves a `Vec` by ownership; no frame
    /// limit beyond memory.
    pub fn in_process() -> Self {
        TransportModel {
            name: "inprocess",
            latency_s: 1e-7,
            bytes_per_s: 20e9,
            max_frame: u64::MAX,
        }
    }

    /// UNIX-domain sockets: two kernel crossings per frame.
    pub fn unix() -> Self {
        TransportModel {
            name: "unix",
            latency_s: 5e-6,
            bytes_per_s: 5e9,
            max_frame: 256 << 20,
        }
    }

    /// Loopback TCP: kernel crossings plus stack segmentation.
    pub fn tcp() -> Self {
        TransportModel {
            name: "tcp",
            latency_s: 15e-6,
            bytes_per_s: 2.5e9,
            max_frame: 256 << 20,
        }
    }

    /// Look a model up by fabric name (`--fabric` spelling; an
    /// `addr`-qualified `unix:/path` form selects by its prefix).
    pub fn by_name(name: &str) -> Option<Self> {
        match name.split(':').next().unwrap_or(name) {
            "inprocess" | "channels" | "mpsc" => Some(Self::in_process()),
            "unix" => Some(Self::unix()),
            "tcp" => Some(Self::tcp()),
            _ => None,
        }
    }

    /// Seconds to move `messages` frames carrying `bytes` total payload.
    pub fn seconds(&self, messages: u64, bytes: u64) -> f64 {
        messages as f64 * self.latency_s + bytes as f64 / self.bytes_per_s
    }
}

/// What [`preflight`] computed: the priced budget a launcher (or an
/// operator reading `fmm-verify preflight`) decides on.
#[derive(Debug, Clone, PartialEq)]
pub struct PreflightReport {
    pub transport: &'static str,
    /// Predicted messages over the whole program, all phases.
    pub messages: u64,
    /// Predicted payload bytes over the whole program.
    pub bytes: u64,
    /// Predicted bytes of the heaviest single phase, with its name.
    pub peak_phase: &'static str,
    pub peak_phase_bytes: u64,
    /// Communication seconds under the transport model.
    pub est_seconds: f64,
}

impl std::fmt::Display for PreflightReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "transport {}: {} messages, {} bytes (peak phase {} at {} bytes), est {:.3} ms comm",
            self.transport,
            self.messages,
            self.bytes,
            self.peak_phase,
            self.peak_phase_bytes,
            self.est_seconds * 1e3
        )
    }
}

/// Price `budget` on `model` and gate it against an optional byte
/// capacity. Errors carry the overage so the operator can size the run:
///
/// * total predicted bytes must not exceed `capacity_bytes` (when given);
/// * no phase may predict more traffic than the wire can frame at all
///   (phase bytes ≤ messages × max_frame — a necessary condition, since
///   a phase's traffic is spread over at least its message count).
pub fn preflight(
    budget: &ProgramBudget,
    model: &TransportModel,
    capacity_bytes: Option<u64>,
) -> Result<PreflightReport, String> {
    let k = budget.config_k;
    let mut messages = 0u64;
    let mut bytes = 0u64;
    let mut peak_phase = "";
    let mut peak_phase_bytes = 0u64;
    for ph in &budget.phases {
        let m = crate::compare::predicted_messages(&ph.comm);
        let b = crate::compare::predicted_bytes(&ph.comm, k);
        messages += m;
        bytes += b;
        if b >= peak_phase_bytes {
            peak_phase = ph.name;
            peak_phase_bytes = b;
        }
        if m > 0 && b > m.saturating_mul(model.max_frame) {
            return Err(format!(
                "pre-flight: phase {} predicts {b} bytes over {m} messages, beyond the \
                 {} fabric's {}-byte frame cap",
                ph.name, model.name, model.max_frame
            ));
        }
    }
    let report = PreflightReport {
        transport: model.name,
        messages,
        bytes,
        peak_phase,
        peak_phase_bytes,
        est_seconds: model.seconds(messages, bytes),
    };
    if let Some(cap) = capacity_bytes {
        if bytes > cap {
            return Err(format!(
                "pre-flight: predicted traffic {bytes} bytes exceeds the {cap}-byte \
                 capacity budget ({report})"
            ));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{communication_budget, ProgramConfig};
    use crate::VuGrid;

    fn table4_budget() -> ProgramBudget {
        communication_budget(&ProgramConfig {
            depth: 4,
            k: 6,
            m: 5,
            particles_per_box: 4.0,
            vu_grid: VuGrid::new([8, 4, 4]),
            supernodes: false,
            sort_miss_fraction: 1.0 - 1.0 / 128.0,
            forces_near: false,
        })
    }

    #[test]
    fn by_name_resolves_fabrics_and_rejects_junk() {
        for name in ["inprocess", "unix", "tcp", "unix:/tmp/x.sock", "tcp:h:1"] {
            assert!(TransportModel::by_name(name).is_some(), "{name}");
        }
        assert!(TransportModel::by_name("smoke-signals").is_none());
    }

    #[test]
    fn generous_capacity_passes_with_consistent_totals() {
        let budget = table4_budget();
        let rep = preflight(&budget, &TransportModel::unix(), Some(u64::MAX)).unwrap();
        assert!(rep.messages > 0 && rep.bytes > 0);
        assert!(rep.peak_phase_bytes <= rep.bytes);
        assert!(rep.est_seconds > 0.0);
        // The unpriced totals must match the comparator's per-phase sums.
        let k = budget.config_k;
        let bytes: u64 = budget
            .phases
            .iter()
            .map(|p| crate::compare::predicted_bytes(&p.comm, k))
            .sum();
        assert_eq!(rep.bytes, bytes);
    }

    #[test]
    fn undersized_capacity_fails_with_the_overage() {
        let err = preflight(&table4_budget(), &TransportModel::tcp(), Some(1000)).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
        assert!(err.contains("1000-byte"), "{err}");
    }

    #[test]
    fn transports_price_the_same_budget_differently() {
        let budget = table4_budget();
        let a = preflight(&budget, &TransportModel::in_process(), None).unwrap();
        let b = preflight(&budget, &TransportModel::tcp(), None).unwrap();
        assert_eq!(a.bytes, b.bytes, "counts are transport-independent");
        assert!(a.est_seconds < b.est_seconds, "pricing is not");
    }
}
