//! A distributed 3-D array of K-vectors with a counting CSHIFT.
//!
//! CSHIFT is CM Fortran's circular shift: after `cshift(axis, o)` every
//! box holds the data that was `o` boxes away along `axis` (wrapping).
//! The primitive both moves real data and accounts for its motion under
//! the block layout: a shift by `o` along an axis with subgrid extent `S`
//! moves a fraction `min(|o|,S)/S` of all boxes across VU boundaries and
//! copies the rest within VU memory — exactly the accounting behind the
//! paper's Fig. 6 discussion.

use crate::counters::Counters;
use crate::layout::BlockLayout;

/// A distributed grid: one K-vector per box.
#[derive(Debug, Clone)]
pub struct DistGrid {
    pub layout: BlockLayout,
    pub k: usize,
    /// Global-row-major storage (x fastest), `total_boxes * k` values.
    data: Vec<f64>,
}

impl DistGrid {
    /// Zero grid.
    pub fn new(layout: BlockLayout, k: usize) -> Self {
        DistGrid {
            layout,
            k,
            data: vec![0.0; layout.total_boxes() * k],
        }
    }

    /// Build with `f(global_coord, component)`.
    pub fn from_fn(
        layout: BlockLayout,
        k: usize,
        mut f: impl FnMut([usize; 3], usize) -> f64,
    ) -> Self {
        let mut g = DistGrid::new(layout, k);
        for z in 0..layout.global[2] {
            for y in 0..layout.global[1] {
                for x in 0..layout.global[0] {
                    let base = layout.global_index([x, y, z]) * k;
                    for c in 0..k {
                        g.data[base + c] = f([x, y, z], c);
                    }
                }
            }
        }
        g
    }

    /// The K-vector of a box.
    #[inline]
    pub fn get(&self, g: [usize; 3]) -> &[f64] {
        let base = self.layout.global_index(g) * self.k;
        &self.data[base..base + self.k]
    }

    /// Mutable K-vector of a box.
    #[inline]
    pub fn get_mut(&mut self, g: [usize; 3]) -> &mut [f64] {
        let base = self.layout.global_index(g) * self.k;
        &mut self.data[base..base + self.k]
    }

    /// Circular shift: afterwards box `b` holds what was at `b + offset`
    /// along `axis` (CM Fortran CSHIFT semantics with a positive shift
    /// fetching from higher indices). Counts one CSHIFT invocation plus
    /// the per-box motion it causes.
    pub fn cshift(&mut self, axis: usize, offset: i64, counters: &mut Counters) {
        assert!(axis < 3);
        let n = self.layout.global[axis] as i64;
        let o = offset.rem_euclid(n) as usize;
        counters.cshifts += 1;
        if o == 0 {
            return;
        }
        let s = self.layout.subgrid[axis];
        let total = self.layout.total_boxes() as u64;
        // Boxes whose source lives on a different VU: with a circular
        // shift the effective distance is min(o, n−o), saturating at the
        // subgrid extent (beyond which every box crosses); a single VU
        // along the axis never communicates.
        let eff = o.min(n as usize - o).min(s);
        let crossing = if self.layout.vu.dims[axis] == 1 {
            0
        } else {
            (eff as u64 * total) / s as u64
        };
        counters.off_vu_boxes += crossing;
        counters.local_box_moves += total - crossing;

        // Perform the rotation along the axis.
        let dims = self.layout.global;
        let k = self.k;
        let mut out = vec![0.0; self.data.len()];
        for z in 0..dims[2] {
            for y in 0..dims[1] {
                for x in 0..dims[0] {
                    let mut src = [x, y, z];
                    src[axis] = (src[axis] + o) % dims[axis];
                    let d = self.layout.global_index([x, y, z]) * k;
                    let sidx = self.layout.global_index(src) * k;
                    out[d..d + k].copy_from_slice(&self.data[sidx..sidx + k]);
                }
            }
        }
        self.data = out;
    }

    /// Shift by a 3-D offset (a sequence of per-axis CSHIFTs, as the CM
    /// runtime implements multi-axis shifts).
    pub fn cshift3(&mut self, offset: [i64; 3], counters: &mut Counters) {
        for (axis, &off_a) in offset.iter().enumerate() {
            if off_a != 0 {
                self.cshift(axis, off_a, counters);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::VuGrid;

    fn small() -> DistGrid {
        let layout = BlockLayout::new([8, 8, 8], VuGrid::new([2, 2, 2]));
        DistGrid::from_fn(layout, 2, |g, c| {
            (g[0] * 100 + g[1] * 10 + g[2]) as f64 + c as f64 * 0.5
        })
    }

    #[test]
    fn cshift_moves_data_circularly() {
        let mut g = small();
        let mut c = Counters::new();
        g.cshift(0, 3, &mut c);
        // Box (0,0,0) now holds what was at (3,0,0).
        assert_eq!(g.get([0, 0, 0])[0], 300.0);
        // Wrap: box (6,0,0) holds what was at (9 mod 8, 0, 0) = (1,0,0).
        assert_eq!(g.get([6, 0, 0])[0], 100.0);
    }

    #[test]
    fn cshift_negative_offset() {
        let mut g = small();
        let mut c = Counters::new();
        g.cshift(1, -2, &mut c);
        assert_eq!(g.get([0, 2, 0])[0], 0.0);
        assert_eq!(g.get([0, 0, 0])[0], 60.0); // from (0, 6, 0)
    }

    #[test]
    fn cshift_counts_crossings() {
        let mut g = small(); // subgrid 4 per axis, 512 boxes
        let mut c = Counters::new();
        g.cshift(0, 1, &mut c);
        assert_eq!(c.cshifts, 1);
        // 1/4 of boxes cross a VU boundary.
        assert_eq!(c.off_vu_boxes, 128);
        assert_eq!(c.local_box_moves, 384);
        // Shift by the full subgrid: everything crosses.
        let mut c2 = Counters::new();
        g.cshift(0, 4, &mut c2);
        assert_eq!(c2.off_vu_boxes, 512);
        assert_eq!(c2.local_box_moves, 0);
    }

    #[test]
    fn cshift3_is_sequential_shifts() {
        let mut a = small();
        let mut b = small();
        let mut ca = Counters::new();
        let mut cb = Counters::new();
        a.cshift3([1, 2, 0], &mut ca);
        b.cshift(0, 1, &mut cb);
        b.cshift(1, 2, &mut cb);
        assert_eq!(ca.cshifts, 2);
        for z in 0..8 {
            for y in 0..8 {
                for x in 0..8 {
                    assert_eq!(a.get([x, y, z]), b.get([x, y, z]));
                }
            }
        }
    }

    #[test]
    fn zero_shift_is_noop_with_one_invocation() {
        let mut g = small();
        let before = g.get([5, 5, 5]).to_vec();
        let mut c = Counters::new();
        g.cshift(2, 0, &mut c);
        assert_eq!(c.cshifts, 1);
        assert_eq!(c.off_vu_boxes, 0);
        assert_eq!(g.get([5, 5, 5]), &before[..]);
    }
}
