//! The four interactive-field fetch strategies of the paper's Table 4.
//!
//! Every box needs the potential vectors of its (two-separation) 875
//! interactive-field boxes; per VU, the union of all its boxes' needs is
//! a ghost region four boxes deep on every face of its subgrid (the
//! interactive field extends at most 4 boxes past the near field along
//! each axis at the *box* level; the paper's Fig. 6 and §3.3.1).
//!
//! * **Direct, unaliased** — one multi-axis CSHIFT of the whole array per
//!   interactive offset (Fig. 6a): enormous data motion, every shift moves
//!   every box.
//! * **Linearized, unaliased** — a snake path of unit CSHIFTs through the
//!   offset cube (Fig. 6b): each step moves the whole array one box; much
//!   better, still excessive (boxes travel back and forth past their
//!   consumers, Fig. 6c).
//! * **Direct, aliased** — array aliasing exposes the VU subgrid; fetch
//!   exactly the 26 ghost regions (6 faces, 12 edges, 8 corners) into a
//!   `(S+8)³` local buffer: minimal data motion, but 54 small CSHIFTs
//!   each paying the large fixed overhead.
//! * **Linearized, aliased** — sequenced slab shifts with corner
//!   forwarding (x, then y over the x-extended buffer, then z over the
//!   xy-extended buffer): the same minimal data volume in only 6 shifts.
//!   (The paper's CMF variant had to move whole subgrids to keep the
//!   linear ordering expressible, trading ~1.9× data for the same shift
//!   count; that variant is counted too.)
//!
//! All buffer-building strategies are verified to produce identical ghost
//! contents; the unaliased strategies are verified on shifted-array
//! samples.

use crate::counters::Counters;
use crate::grid::DistGrid;
use crate::layout::BlockLayout;

/// Ghost depth for two-separation interactive fields: the field spans
/// [−5, 5] per axis but boxes deeper than 4 inside a neighbouring subgrid
/// are never needed by any box of the target subgrid... precisely: a
/// boundary box's farthest interactive offset is 5 outward, of which the
/// first is the boundary itself, so the halo is 4 deep plus the adjacent
/// row — the paper states "the ghost region is four boxes deep on each
/// face" for its subgrids; we keep that constant.
pub const GHOST_DEPTH: usize = 4;

/// Which Table-4 strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchStrategy {
    DirectUnaliased,
    LinearizedUnaliased,
    DirectAliased,
    LinearizedAliased,
    /// The paper's CMF-expressible variant of `LinearizedAliased`: whole
    /// subgrids travel the linear ordering.
    LinearizedAliasedWholeSubgrid,
}

impl FetchStrategy {
    pub const ALL: [FetchStrategy; 5] = [
        FetchStrategy::DirectUnaliased,
        FetchStrategy::LinearizedUnaliased,
        FetchStrategy::DirectAliased,
        FetchStrategy::LinearizedAliased,
        FetchStrategy::LinearizedAliasedWholeSubgrid,
    ];

    pub fn name(self) -> &'static str {
        match self {
            FetchStrategy::DirectUnaliased => "direct, unaliased",
            FetchStrategy::LinearizedUnaliased => "linearized, unaliased",
            FetchStrategy::DirectAliased => "direct, aliased",
            FetchStrategy::LinearizedAliased => "linearized, aliased (forwarding)",
            FetchStrategy::LinearizedAliasedWholeSubgrid => "linearized, aliased (whole subgrid)",
        }
    }
}

/// Result of a fetch: counters plus (for aliased strategies) the ghost
/// buffer of VU 0, `(S0+2G)×(S1+2G)×(S2+2G)` boxes of `k` values, for
/// content verification.
#[derive(Debug, Clone)]
pub struct GhostResult {
    pub strategy: FetchStrategy,
    pub counters: Counters,
    pub ghost_vu0: Option<Vec<f64>>,
}

/// Extended-buffer extents for a layout.
pub fn ghost_extents(layout: &BlockLayout) -> [usize; 3] {
    [
        layout.subgrid[0] + 2 * GHOST_DEPTH,
        layout.subgrid[1] + 2 * GHOST_DEPTH,
        layout.subgrid[2] + 2 * GHOST_DEPTH,
    ]
}

/// Reference ghost buffer of one VU, built directly from global data with
/// circular wrap (CSHIFT semantics). Buffer coordinate `e` corresponds to
/// global coordinate `vu_origin + e − G` (mod global extents).
pub fn reference_ghost(grid: &DistGrid, vu_rank: usize) -> Vec<f64> {
    let l = grid.layout;
    let ext = ghost_extents(&l);
    let v = l.vu.coords(vu_rank);
    let origin = [
        v[0] * l.subgrid[0],
        v[1] * l.subgrid[1],
        v[2] * l.subgrid[2],
    ];
    let k = grid.k;
    let mut out = vec![0.0; ext[0] * ext[1] * ext[2] * k];
    for ez in 0..ext[2] {
        for ey in 0..ext[1] {
            for ex in 0..ext[0] {
                let g = [
                    (origin[0] + ex + l.global[0] - GHOST_DEPTH) % l.global[0],
                    (origin[1] + ey + l.global[1] - GHOST_DEPTH) % l.global[1],
                    (origin[2] + ez + l.global[2] - GHOST_DEPTH) % l.global[2],
                ];
                let dst = ((ez * ext[1] + ey) * ext[0] + ex) * k;
                out[dst..dst + k].copy_from_slice(grid.get(g));
            }
        }
    }
    out
}

/// Per-VU ghost volume: the paper's "number of non-local boxes fetched"
/// for the direct aliased strategy — (S+2G)³ − S³ = 3584 for S = 8.
pub fn ghost_volume(layout: &BlockLayout) -> usize {
    let ext = ghost_extents(layout);
    ext[0] * ext[1] * ext[2] - layout.boxes_per_vu()
}

/// Strategy 1: one multi-axis CSHIFT per interactive offset over the whole
/// (unaliased) array. Returns per-VU-normalized counters.
pub fn fetch_direct_unaliased(grid: &DistGrid, offsets: &[[i32; 3]]) -> GhostResult {
    let mut counters = Counters::new();
    // Verify a sample offset's shifted contents; count all of them.
    for (i, &off) in offsets.iter().enumerate() {
        let mut c = Counters::new();
        if i == 0 {
            let mut work = grid.clone();
            work.cshift3([off[0] as i64, off[1] as i64, off[2] as i64], &mut c);
            // box (0,0,0) must now hold data of box offset (mod wrap).
            let l = grid.layout;
            let g = [
                (off[0].rem_euclid(l.global[0] as i32)) as usize,
                (off[1].rem_euclid(l.global[1] as i32)) as usize,
                (off[2].rem_euclid(l.global[2] as i32)) as usize,
            ];
            assert_eq!(work.get([0, 0, 0]), grid.get(g), "shift contents wrong");
        } else {
            // Count without moving data (the motion is the same for every
            // offset pattern; data was verified above).
            count_cshift3(grid.layout, off, &mut c);
        }
        counters.merge(&c);
    }
    normalize_per_vu(&mut counters, grid.layout);
    GhostResult {
        strategy: FetchStrategy::DirectUnaliased,
        counters,
        ghost_vu0: None,
    }
}

/// Count the motion of a multi-axis CSHIFT without performing it.
fn count_cshift3(layout: BlockLayout, off: [i32; 3], c: &mut Counters) {
    let total = layout.total_boxes() as u64;
    for (axis, &off_a) in off.iter().enumerate() {
        if off_a == 0 {
            continue;
        }
        c.cshifts += 1;
        let n = layout.global[axis];
        let o = (off_a.rem_euclid(n as i32)) as usize;
        let s = layout.subgrid[axis];
        let eff = o.min(n - o).min(s);
        let crossing = if layout.vu.dims[axis] == 1 {
            0
        } else {
            (eff as u64 * total) / s as u64
        };
        c.off_vu_boxes += crossing;
        c.local_box_moves += total - crossing;
    }
}

/// Strategy 2: a snake path of unit CSHIFTs through the offset bounding
/// cube (the paper's Fig. 6b linear ordering). Returns per-VU counters.
pub fn fetch_linearized_unaliased(grid: &DistGrid, offsets: &[[i32; 3]]) -> GhostResult {
    // Bounding cube of the offsets.
    let mut lo = [i32::MAX; 3];
    let mut hi = [i32::MIN; 3];
    for o in offsets {
        for a in 0..3 {
            lo[a] = lo[a].min(o[a]);
            hi[a] = hi[a].max(o[a]);
        }
    }
    let mut counters = Counters::new();
    let mut work = grid.clone();
    // Move to the cube's corner, then snake: x fastest, turning in y,
    // then z — every unit step is one CSHIFT of the whole array.
    let mut cur = [0i32; 3];
    let step =
        |work: &mut DistGrid, axis: usize, dir: i32, cur: &mut [i32; 3], c: &mut Counters| {
            work.cshift(axis, dir as i64, c);
            cur[axis] += dir;
        };
    for a in 0..3 {
        while cur[a] > lo[a] {
            step(&mut work, a, -1, &mut cur, &mut counters);
        }
    }
    let mut xdir = 1;
    let mut ydir = 1;
    loop {
        // Traverse the full x extent.
        while (xdir > 0 && cur[0] < hi[0]) || (xdir < 0 && cur[0] > lo[0]) {
            step(&mut work, 0, xdir, &mut cur, &mut counters);
        }
        xdir = -xdir;
        if (ydir > 0 && cur[1] < hi[1]) || (ydir < 0 && cur[1] > lo[1]) {
            step(&mut work, 1, ydir, &mut cur, &mut counters);
            continue;
        }
        ydir = -ydir;
        if cur[2] < hi[2] {
            step(&mut work, 2, 1, &mut cur, &mut counters);
        } else {
            break;
        }
    }
    // Verify final position's contents.
    let l = grid.layout;
    let g = [
        (cur[0].rem_euclid(l.global[0] as i32)) as usize,
        (cur[1].rem_euclid(l.global[1] as i32)) as usize,
        (cur[2].rem_euclid(l.global[2] as i32)) as usize,
    ];
    assert_eq!(work.get([0, 0, 0]), grid.get(g), "snake contents wrong");
    normalize_per_vu(&mut counters, grid.layout);
    GhostResult {
        strategy: FetchStrategy::LinearizedUnaliased,
        counters,
        ghost_vu0: None,
    }
}

/// Strategy 3: aliased arrays, direct region fetches — 6 faces, 12 edges,
/// 8 corners, each fetched with one CSHIFT per involved axis. Builds and
/// returns VU 0's ghost buffer (copied box-by-box from the owning VUs,
/// with motion counted from actual ownership).
pub fn fetch_direct_aliased(grid: &DistGrid) -> GhostResult {
    let l = grid.layout;
    let ext = ghost_extents(&l);
    let k = grid.k;
    let mut counters = Counters::new();

    // Region bookkeeping: CSHIFT invocations are collective, one per
    // involved axis per region.
    for rz in -1i32..=1 {
        for ry in -1i32..=1 {
            for rx in -1i32..=1 {
                if rx == 0 && ry == 0 && rz == 0 {
                    continue;
                }
                let axes = (rx != 0) as u64 + (ry != 0) as u64 + (rz != 0) as u64;
                counters.cshifts += axes;
            }
        }
    }

    // Fill VU 0's buffer; count motion for *all* VUs by symmetry (the
    // pattern is identical per VU under the circular layout), then report
    // per VU.
    let mut ghost = vec![0.0; ext[0] * ext[1] * ext[2] * k];
    let vu_rank = 0usize;
    let v = l.vu.coords(vu_rank);
    let origin = [
        v[0] * l.subgrid[0],
        v[1] * l.subgrid[1],
        v[2] * l.subgrid[2],
    ];
    for ez in 0..ext[2] {
        for ey in 0..ext[1] {
            for ex in 0..ext[0] {
                let g = [
                    (origin[0] + ex + l.global[0] - GHOST_DEPTH) % l.global[0],
                    (origin[1] + ey + l.global[1] - GHOST_DEPTH) % l.global[1],
                    (origin[2] + ez + l.global[2] - GHOST_DEPTH) % l.global[2],
                ];
                let dst = ((ez * ext[1] + ey) * ext[0] + ex) * k;
                ghost[dst..dst + k].copy_from_slice(grid.get(g));
                let interior = ex >= GHOST_DEPTH
                    && ex < ext[0] - GHOST_DEPTH
                    && ey >= GHOST_DEPTH
                    && ey < ext[1] - GHOST_DEPTH
                    && ez >= GHOST_DEPTH
                    && ez < ext[2] - GHOST_DEPTH;
                if interior {
                    // own subgrid: local copy into the extended buffer
                    counters.local_box_moves += 1;
                } else if l.vu_of(g) == vu_rank {
                    counters.local_box_moves += 1;
                } else {
                    counters.off_vu_boxes += 1;
                    counters.local_box_moves += 1; // unpack into buffer
                }
            }
        }
    }
    GhostResult {
        strategy: FetchStrategy::DirectAliased,
        counters,
        ghost_vu0: Some(ghost),
    }
}

/// Strategy 4: sequenced slab shifts with forwarding (x, then y over the
/// x-extended buffer, then z over the xy-extended buffer): six shifts
/// moving exactly the ghost volume. Builds the buffer phase by phase, so
/// the forwarding logic itself is what is verified.
pub fn fetch_linearized_aliased(grid: &DistGrid) -> GhostResult {
    let l = grid.layout;
    let ext = ghost_extents(&l);
    let k = grid.k;
    let g_depth = GHOST_DEPTH;
    let mut counters = Counters::new();
    let vu_rank = 0usize;
    let v = l.vu.coords(vu_rank);
    let origin = [
        v[0] * l.subgrid[0],
        v[1] * l.subgrid[1],
        v[2] * l.subgrid[2],
    ];

    // Phase buffers grow axis by axis; stored as (extents, data) with
    // buffer coord e ↔ global origin + e − applied_ghost (mod wrap).
    // Phase 0: own subgrid.
    let mut cur_ext = [l.subgrid[0], l.subgrid[1], l.subgrid[2]];
    let mut cur: Vec<f64> = {
        let mut d = vec![0.0; cur_ext[0] * cur_ext[1] * cur_ext[2] * k];
        for z in 0..cur_ext[2] {
            for y in 0..cur_ext[1] {
                for x in 0..cur_ext[0] {
                    let g = [origin[0] + x, origin[1] + y, origin[2] + z];
                    let dst = ((z * cur_ext[1] + y) * cur_ext[0] + x) * k;
                    d[dst..dst + k].copy_from_slice(grid.get(g));
                    counters.local_box_moves += 1;
                }
            }
        }
        d
    };
    let mut applied = [0usize; 3];

    for axis in 0..3 {
        let mut next_ext = cur_ext;
        next_ext[axis] += 2 * g_depth;
        let mut next = vec![0.0; next_ext[0] * next_ext[1] * next_ext[2] * k];
        // Two shifts (one per direction), each moving a slab of depth G of
        // the *current extended* buffer from the neighbouring VU. The slab
        // contents are reconstructed from global data (what the neighbour's
        // current buffer holds at that phase) — this is exactly what
        // forwarding delivers, because the neighbour's buffer was built by
        // the same phases.
        counters.cshifts += 2;
        let slab = g_depth * (cur_ext[(axis + 1) % 3]) * (cur_ext[(axis + 2) % 3]);
        counters.off_vu_boxes += 2 * slab as u64;
        counters.local_box_moves += 2 * slab as u64; // unpack

        for nz in 0..next_ext[2] {
            for ny in 0..next_ext[1] {
                for nx in 0..next_ext[0] {
                    let mut e = [nx, ny, nz];
                    // convert to global: subtract the ghost applied so far
                    // (previous axes) and the new one on `axis`.
                    let mut app = applied;
                    app[axis] += g_depth;
                    let g = [
                        (origin[0] + e[0] + l.global[0] - app[0]) % l.global[0],
                        (origin[1] + e[1] + l.global[1] - app[1]) % l.global[1],
                        (origin[2] + e[2] + l.global[2] - app[2]) % l.global[2],
                    ];
                    let dst = ((nz * next_ext[1] + ny) * next_ext[0] + nx) * k;
                    // Interior (already in cur): copy from cur; slabs: from
                    // global (the verified cshift primitive moved them).
                    if e[axis] >= g_depth && e[axis] < g_depth + cur_ext[axis] {
                        e[axis] -= g_depth;
                        let src = ((e[2] * cur_ext[1] + e[1]) * cur_ext[0] + e[0]) * k;
                        next[dst..dst + k].copy_from_slice(&cur[src..src + k]);
                    } else {
                        next[dst..dst + k].copy_from_slice(grid.get(g));
                    }
                }
            }
        }
        cur = next;
        cur_ext = next_ext;
        applied[axis] += g_depth;
    }
    assert_eq!(cur_ext, ext);
    GhostResult {
        strategy: FetchStrategy::LinearizedAliased,
        counters,
        ghost_vu0: Some(cur),
    }
}

/// Strategy 5: the paper's whole-subgrid linear ordering — same six-shift
/// structure, but each shift carries whole (extended) subgrids so the
/// linear ordering stays expressible in CMF. Data volume is counted
/// accordingly; contents are identical to the forwarding scheme.
pub fn fetch_linearized_aliased_whole_subgrid(grid: &DistGrid) -> GhostResult {
    let l = grid.layout;
    let mut base = fetch_linearized_aliased(grid);
    // Recount the off-VU volume: whole current-extents subgrids move at
    // each phase instead of G-deep slabs.
    let mut counters = Counters::new();
    counters.local_box_moves = base.counters.local_box_moves;
    let g_depth = GHOST_DEPTH;
    let mut cur_ext = [l.subgrid[0], l.subgrid[1], l.subgrid[2]];
    for axis in 0..3 {
        counters.cshifts += 2;
        let whole = cur_ext[0] * cur_ext[1] * cur_ext[2];
        counters.off_vu_boxes += 2 * whole as u64;
        cur_ext[axis] += 2 * g_depth;
    }
    base.strategy = FetchStrategy::LinearizedAliasedWholeSubgrid;
    base.counters = counters;
    base
}

/// Normalize whole-array counters to per-VU (the unaliased strategies
/// shift the entire array; Table 4 reports per-VU volumes).
fn normalize_per_vu(c: &mut Counters, layout: BlockLayout) {
    let p = layout.vu.len() as u64;
    c.off_vu_boxes /= p;
    c.local_box_moves /= p;
}

/// Run one strategy.
pub fn fetch(grid: &DistGrid, strategy: FetchStrategy, offsets: &[[i32; 3]]) -> GhostResult {
    match strategy {
        FetchStrategy::DirectUnaliased => fetch_direct_unaliased(grid, offsets),
        FetchStrategy::LinearizedUnaliased => fetch_linearized_unaliased(grid, offsets),
        FetchStrategy::DirectAliased => fetch_direct_aliased(grid),
        FetchStrategy::LinearizedAliased => fetch_linearized_aliased(grid),
        FetchStrategy::LinearizedAliasedWholeSubgrid => {
            fetch_linearized_aliased_whole_subgrid(grid)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::VuGrid;

    fn table4_grid() -> DistGrid {
        // Scaled-down Table-4 machine (full 128-VU/65536-box grid is used
        // by the experiment binary; tests use 8 VUs with S = 8).
        let layout = BlockLayout::new([16, 16, 16], VuGrid::new([2, 2, 2]));
        DistGrid::from_fn(layout, 3, |g, c| {
            (g[0] * 10_000 + g[1] * 100 + g[2]) as f64 + c as f64 * 0.25
        })
    }

    fn union_offsets() -> Vec<[i32; 3]> {
        // [−5,5]³ minus [−2,2]³ — the 1206 interactive-field union.
        let mut out = Vec::new();
        for z in -5i32..=5 {
            for y in -5i32..=5 {
                for x in -5i32..=5 {
                    if x.abs() > 2 || y.abs() > 2 || z.abs() > 2 {
                        out.push([x, y, z]);
                    }
                }
            }
        }
        assert_eq!(out.len(), 1206);
        out
    }

    #[test]
    fn ghost_volume_matches_paper() {
        // S = 8, G = 4 → 16³ − 8³ = 3584 (the paper's Table-4 value).
        let layout = BlockLayout::new([64, 32, 32], VuGrid::new([8, 4, 4]));
        assert_eq!(ghost_volume(&layout), 3584);
    }

    #[test]
    fn aliased_strategies_agree_with_reference() {
        let grid = table4_grid();
        let reference = reference_ghost(&grid, 0);
        for strat in [
            FetchStrategy::DirectAliased,
            FetchStrategy::LinearizedAliased,
            FetchStrategy::LinearizedAliasedWholeSubgrid,
        ] {
            let r = fetch(&grid, strat, &[]);
            let ghost = r.ghost_vu0.expect("aliased strategies build buffers");
            assert_eq!(ghost.len(), reference.len());
            for (i, (a, b)) in ghost.iter().zip(&reference).enumerate() {
                assert!(
                    (a - b).abs() < 1e-12,
                    "{:?} differs from reference at {}: {} vs {}",
                    strat,
                    i,
                    a,
                    b
                );
            }
        }
    }

    #[test]
    fn direct_aliased_counts_exact_ghost_volume() {
        let grid = table4_grid();
        let r = fetch_direct_aliased(&grid);
        assert_eq!(r.counters.off_vu_boxes as usize, ghost_volume(&grid.layout));
        assert_eq!(r.counters.cshifts, 6 + 12 * 2 + 8 * 3);
    }

    #[test]
    fn forwarding_moves_same_volume_with_six_shifts() {
        let grid = table4_grid();
        let r = fetch_linearized_aliased(&grid);
        assert_eq!(r.counters.cshifts, 6);
        assert_eq!(r.counters.off_vu_boxes as usize, ghost_volume(&grid.layout));
    }

    #[test]
    fn whole_subgrid_variant_moves_more() {
        let grid = table4_grid();
        let fw = fetch_linearized_aliased(&grid);
        let ws = fetch_linearized_aliased_whole_subgrid(&grid);
        assert_eq!(ws.counters.cshifts, 6);
        assert!(ws.counters.off_vu_boxes > fw.counters.off_vu_boxes);
    }

    #[test]
    fn unaliased_strategies_ordering() {
        let grid = table4_grid();
        let offsets = union_offsets();
        let direct = fetch_direct_unaliased(&grid, &offsets);
        let snake = fetch_linearized_unaliased(&grid, &offsets);
        // The snake path needs far fewer CSHIFTs and moves far less data.
        assert!(snake.counters.cshifts < direct.counters.cshifts / 2);
        assert!(snake.counters.off_vu_boxes < direct.counters.off_vu_boxes);
        // And both move vastly more than the aliased fetches.
        let aliased = fetch_direct_aliased(&grid);
        assert!(aliased.counters.off_vu_boxes < snake.counters.off_vu_boxes);
    }

    #[test]
    fn snake_visits_whole_cube() {
        let grid = table4_grid();
        let offsets = union_offsets();
        let snake = fetch_linearized_unaliased(&grid, &offsets);
        // The path covers an 11×11×11 cube: 10 (to corner) + 1330 steps.
        assert_eq!(snake.counters.cshifts, 15 + 11 * 11 * 11 - 1);
    }
}
