//! Multigrid-embed / Multigrid-extract cost comparison (paper Fig. 7).
//!
//! Embedding a temporary per-level array of potential vectors into the
//! 4-D/5-D hierarchy array can be done three ways:
//!
//! * **general send** — what the CMF compiler emits for any assignment
//!   between arrays of different shape: a router send whose address
//!   computation scans the whole array ("overhead … about linear in the
//!   array size … may dominate the actual communication"),
//! * **local copy** — when at least one box per VU exists at the level,
//!   array aliasing + sectioning turns the embed into a pure local copy,
//! * **two-step** — near the root (< 1 box/VU): send into a temporary at
//!   the first level with ≥ 1 box/VU (cheap: tiny array), then local copy.
//!
//! The paper measured up to two orders of magnitude improvement from
//! local-copy / two-step over the general send (Fig. 7).

use crate::counters::Counters;

/// How an embed/extract is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmbedMethod {
    GeneralSend,
    LocalCopy,
    TwoStep,
}

impl EmbedMethod {
    pub fn name(self) -> &'static str {
        match self {
            EmbedMethod::GeneralSend => "general send",
            EmbedMethod::LocalCopy => "local copy",
            EmbedMethod::TwoStep => "two-step",
        }
    }
}

/// Data-motion counters of one Multigrid-embed of `n_boxes` boxes into a
/// hierarchy array of `dest_boxes` boxes on a machine with `n_vus` VUs.
///
/// The general send's address computation scans both operands — that is
/// the paper's "overhead … about linear in the array size \[which\] may
/// dominate the actual communication"; the two-step scheme's first send
/// only scans a one-box-per-VU temporary.
pub fn embed_counters(
    n_boxes: usize,
    dest_boxes: usize,
    n_vus: usize,
    method: EmbedMethod,
) -> Counters {
    let mut c = Counters::new();
    match method {
        EmbedMethod::GeneralSend => {
            c.sends = 1;
            c.send_address_scans = (n_boxes + dest_boxes) as u64;
            c.off_vu_boxes = n_boxes as u64; // router path, worst case
        }
        EmbedMethod::LocalCopy => {
            c.local_box_moves = n_boxes as u64;
        }
        EmbedMethod::TwoStep => {
            // Step 1: send into a temporary with one box per VU.
            c.sends = 1;
            c.send_address_scans = (n_boxes + n_vus.min(dest_boxes)) as u64;
            c.off_vu_boxes = n_boxes as u64;
            // Step 2: local copy into the final embedding (aliasing +
            // sectioning: pure index arithmetic, no scan).
            c.local_box_moves = n_boxes as u64;
        }
    }
    c
}

/// The method the paper's implementation picks for a level: local copy
/// when the level has at least one box per VU, two-step otherwise.
pub fn best_method(n_boxes: usize, n_vus: usize) -> EmbedMethod {
    if n_boxes >= n_vus {
        EmbedMethod::LocalCopy
    } else {
        EmbedMethod::TwoStep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    #[test]
    fn best_method_switches_at_one_box_per_vu() {
        assert_eq!(best_method(512, 1024), EmbedMethod::TwoStep);
        assert_eq!(best_method(4096, 1024), EmbedMethod::LocalCopy);
        assert_eq!(best_method(1024, 1024), EmbedMethod::LocalCopy);
    }

    #[test]
    fn send_dominated_by_scan_overhead() {
        let m = CostModel::cm5e();
        let n = 1 << 21; // 2M boxes into a 16M-box destination
        let dest = 1 << 24;
        let send = m.time_s(&embed_counters(n, dest, 1024, EmbedMethod::GeneralSend), 12);
        let local = m.time_s(&embed_counters(n, dest, 1024, EmbedMethod::LocalCopy), 12);
        // Paper Fig. 7: one to two orders of magnitude.
        assert!(send / local > 8.0, "send {} local {}", send, local);
    }

    #[test]
    fn two_step_beats_send_near_root() {
        let m = CostModel::cm5e();
        let n = 512; // fewer boxes than VUs
        let dest = 1 << 24;
        let send = m.time_s(&embed_counters(n, dest, 1024, EmbedMethod::GeneralSend), 12);
        let two = m.time_s(&embed_counters(n, dest, 1024, EmbedMethod::TwoStep), 12);
        assert!(two < send / 50.0, "two-step {} vs send {}", two, send);
    }

    #[test]
    fn counters_scale_linearly() {
        let a = embed_counters(1000, 1 << 20, 64, EmbedMethod::LocalCopy);
        let b = embed_counters(2000, 1 << 20, 64, EmbedMethod::LocalCopy);
        assert_eq!(2 * a.local_box_moves, b.local_box_moves);
    }
}
