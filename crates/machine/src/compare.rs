//! The one comparator between a priced communication budget and a
//! measured (or statically summed) communication profile.
//!
//! Three consumers share this logic — the `fmm-spmd` Table-4 model test,
//! the `fmm-verify` budget-conformance pass, and anyone eyeballing a
//! [`crate::ProgramBudget`] against an `SpmdReport` — so tolerance
//! handling lives here and nowhere else.
//!
//! Semantics: a phase the model prices at exactly zero must measure
//! exactly zero (the deterministic phases have no noise floor to hide
//! in); a non-zero prediction must be matched within `tolerance`
//! relative error. A measured phase may mark its bytes `None` to skip
//! the byte check — used for quantities the static analyzer cannot sum
//! because they are data-dependent (router payloads, travelling-slot
//! occupancy).

use crate::counters::Counters;
use crate::program::ProgramBudget;

/// The acceptance tolerance the ISSUE criteria use: measured motion
/// lands within 10% of the closed-form prediction.
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// One phase of a measured (or statically summed) communication profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasuredPhase {
    /// Logical messages: CSHIFT invocations + router/point-to-point
    /// sends + broadcast stages, machine-wide.
    pub messages: u64,
    /// Off-VU payload bytes, or `None` if data-dependent and unknown to
    /// the producer (skips the byte comparison for this phase).
    pub bytes: Option<u64>,
}

/// Which measured quantity diverged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantity {
    Messages,
    Bytes,
}

impl std::fmt::Display for Quantity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Quantity::Messages => "messages",
            Quantity::Bytes => "bytes",
        })
    }
}

/// One divergence between budget and measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetMismatch {
    pub phase: &'static str,
    pub quantity: Quantity,
    pub predicted: u64,
    pub measured: u64,
    /// Relative error; infinite when the prediction is zero.
    pub rel_error: f64,
}

impl std::fmt::Display for BudgetMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} off by {:.1}% (predicted {}, measured {})",
            self.phase,
            self.quantity,
            self.rel_error * 100.0,
            self.predicted,
            self.measured
        )
    }
}

/// Logical message count of a priced phase: CSHIFT invocations, router
/// operations, and point-to-point sends all count once, as in the cost
/// model's per-call overhead terms.
pub fn predicted_messages(c: &Counters) -> u64 {
    c.cshifts + c.sends + c.broadcast_stages
}

/// Off-VU payload in bytes: `off_vu_boxes` and `broadcast_boxes` are both
/// in K-box units of `k` f64 words.
pub fn predicted_bytes(c: &Counters, k: usize) -> u64 {
    (c.off_vu_boxes + c.broadcast_boxes) * k as u64 * 8
}

/// Compare every phase of `measured` against `budget` at `tolerance`
/// relative error. Returns all divergences (empty ⇒ conformant).
/// Panics if the phase counts differ — that is a program bug, not a
/// budget violation.
pub fn check_phases(
    budget: &ProgramBudget,
    measured: &[MeasuredPhase],
    tolerance: f64,
) -> Vec<BudgetMismatch> {
    assert_eq!(
        budget.phases.len(),
        measured.len(),
        "budget and measurement must cover the same phases"
    );
    let k = budget.config_k;
    let mut out = Vec::new();
    for (phase, m) in budget.phases.iter().zip(measured) {
        let mut check = |quantity, predicted: u64, got: u64| {
            let bad = if predicted == 0 {
                got != 0
            } else {
                (got as f64 - predicted as f64).abs() / predicted as f64 > tolerance
            };
            if bad {
                out.push(BudgetMismatch {
                    phase: phase.name,
                    quantity,
                    predicted,
                    measured: got,
                    rel_error: if predicted == 0 {
                        f64::INFINITY
                    } else {
                        (got as f64 - predicted as f64).abs() / predicted as f64
                    },
                });
            }
        };
        check(
            Quantity::Messages,
            predicted_messages(&phase.comm),
            m.messages,
        );
        if let Some(bytes) = m.bytes {
            check(Quantity::Bytes, predicted_bytes(&phase.comm, k), bytes);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{communication_budget, ProgramConfig};
    use crate::VuGrid;

    fn table4_budget() -> ProgramBudget {
        communication_budget(&ProgramConfig {
            depth: 4,
            k: 6,
            m: 3,
            particles_per_box: 4.0,
            vu_grid: VuGrid::new([8, 4, 4]),
            supernodes: false,
            sort_miss_fraction: 1.0 - 1.0 / 128.0,
            forces_near: false,
        })
    }

    #[test]
    fn exact_match_is_conformant() {
        let budget = table4_budget();
        let measured: Vec<MeasuredPhase> = budget
            .phases
            .iter()
            .map(|p| MeasuredPhase {
                messages: predicted_messages(&p.comm),
                bytes: Some(predicted_bytes(&p.comm, budget.config_k)),
            })
            .collect();
        assert!(check_phases(&budget, &measured, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn zero_prediction_requires_exact_zero() {
        let budget = table4_budget();
        let mut measured: Vec<MeasuredPhase> = budget
            .phases
            .iter()
            .map(|p| MeasuredPhase {
                messages: predicted_messages(&p.comm),
                bytes: Some(predicted_bytes(&p.comm, budget.config_k)),
            })
            .collect();
        // Phase 1 (p2o) is communication-free: even one message fails.
        assert_eq!(predicted_messages(&budget.phases[1].comm), 0);
        measured[1].messages = 1;
        let bad = check_phases(&budget, &measured, DEFAULT_TOLERANCE);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].phase, budget.phases[1].name);
        assert!(bad[0].rel_error.is_infinite());
    }

    #[test]
    fn tolerance_bounds_divergence() {
        let budget = table4_budget();
        let mut measured: Vec<MeasuredPhase> = budget
            .phases
            .iter()
            .map(|p| MeasuredPhase {
                messages: predicted_messages(&p.comm),
                bytes: Some(predicted_bytes(&p.comm, budget.config_k)),
            })
            .collect();
        let near = &mut measured[5];
        near.messages = near.messages + near.messages / 5; // +20%
        let bad = check_phases(&budget, &measured, DEFAULT_TOLERANCE);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].quantity, Quantity::Messages);
        // A looser tolerance accepts it.
        assert!(check_phases(&budget, &measured, 0.25).is_empty());
    }

    #[test]
    fn none_bytes_skip_the_byte_check() {
        let budget = table4_budget();
        let measured: Vec<MeasuredPhase> = budget
            .phases
            .iter()
            .map(|p| MeasuredPhase {
                messages: predicted_messages(&p.comm),
                bytes: None,
            })
            .collect();
        assert!(check_phases(&budget, &measured, DEFAULT_TOLERANCE).is_empty());
    }
}
