//! Data-motion counters.
//!
//! Everything the paper's communication analysis measures: boxes moved
//! between VUs, boxes copied within a VU, CSHIFT invocations (fixed
//! overhead each), router messages, broadcast stages, and flops. Counts
//! are *element* (box) granular; one box is a K-vector of f64 and the cost
//! model scales accordingly.

/// Accumulated data-motion counts for one communication pattern or
/// program phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Boxes (K-vectors) that crossed a VU boundary.
    pub off_vu_boxes: u64,
    /// Boxes copied within a VU's memory.
    pub local_box_moves: u64,
    /// CSHIFT invocations (each has a large fixed overhead on the CM-5E).
    pub cshifts: u64,
    /// General-router send operations.
    pub sends: u64,
    /// Elements scanned to compute send addresses (the paper's "overhead
    /// in computing send addresses, which is about linear in the array
    /// size").
    pub send_address_scans: u64,
    /// One-to-all / one-to-group broadcast stages (log₂ fan-out hops).
    pub broadcast_stages: u64,
    /// Boxes carried by broadcasts (per stage).
    pub broadcast_boxes: u64,
    /// Floating point operations.
    pub flops: u64,
}

impl Counters {
    pub fn new() -> Self {
        Counters::default()
    }

    /// Sum of two counter sets.
    pub fn merge(&mut self, other: &Counters) {
        *self += *other;
    }

    /// Total boxes touched by communication (for sanity checks).
    pub fn total_boxes_moved(&self) -> u64 {
        self.off_vu_boxes + self.local_box_moves
    }
}

impl std::ops::AddAssign for Counters {
    fn add_assign(&mut self, other: Counters) {
        self.off_vu_boxes += other.off_vu_boxes;
        self.local_box_moves += other.local_box_moves;
        self.cshifts += other.cshifts;
        self.sends += other.sends;
        self.send_address_scans += other.send_address_scans;
        self.broadcast_stages += other.broadcast_stages;
        self.broadcast_boxes += other.broadcast_boxes;
        self.flops += other.flops;
    }
}

impl std::ops::Add for Counters {
    type Output = Counters;
    fn add(mut self, other: Counters) -> Counters {
        self += other;
        self
    }
}

impl std::iter::Sum for Counters {
    fn sum<I: Iterator<Item = Counters>>(iter: I) -> Counters {
        iter.fold(Counters::default(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = Counters {
            off_vu_boxes: 1,
            local_box_moves: 2,
            cshifts: 3,
            ..Default::default()
        };
        let b = Counters {
            off_vu_boxes: 10,
            flops: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.off_vu_boxes, 11);
        assert_eq!(a.local_box_moves, 2);
        assert_eq!(a.flops, 5);
        assert_eq!(a.total_boxes_moved(), 13);
    }

    #[test]
    fn add_and_sum_match_merge() {
        let a = Counters {
            cshifts: 2,
            sends: 1,
            ..Default::default()
        };
        let b = Counters {
            cshifts: 3,
            broadcast_boxes: 7,
            ..Default::default()
        };
        let s: Counters = [a, b].into_iter().sum();
        assert_eq!(s.cshifts, 5);
        assert_eq!(s.sends, 1);
        assert_eq!(s.broadcast_boxes, 7);
        let mut m = a;
        m += b;
        assert_eq!(m, s);
        assert_eq!(a + b, s);
    }
}
