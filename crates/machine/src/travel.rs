//! The canonical travelling-accumulator path for the symmetric near field.
//!
//! The paper resolves the near field's symmetric write conflicts with a
//! *travelling accumulator*: the leaf particle arrays (with a per-particle
//! accumulator riding along) are circularly shifted through the
//! d-separation neighbourhood so that every unordered box pair meets
//! exactly once, then returned home. The path below is the single source
//! of truth shared by the analytic model ([`crate::program`]), the
//! shared-memory emulation in `fmm-core`, and the message-passing
//! executor in `fmm-spmd` — all three count and accumulate in exactly this
//! order, which is what makes their results bitwise comparable.
//!
//! The path is a unit-step snake over the lexicographically-positive half
//! of the (2d+1)³ neighbourhood (the x-major order used by
//! `near_field_offsets`): first the +z column at x = y = 0, then the
//! y-rows of the x = 0 plane, then the full (y, z) planes at x = 1..d,
//! each swept boustrophedon. Every step moves the travelling data by one
//! box along one axis and visits exactly one new offset; 62 steps cover
//! the 62 half-offsets of two-separation. Three per-axis shifts return
//! the accumulators to their home boxes.

/// One unit step of the travelling sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TravelStep {
    /// Axis moved along (0 = x, 1 = y, 2 = z).
    pub axis: usize,
    /// Direction of the move (+1 or −1).
    pub dir: i32,
    /// Cumulative offset (source − target) *after* the step — the
    /// half-offset this step visits.
    pub cum: [i32; 3],
}

/// The full travelling-accumulator itinerary for separation `d`.
#[derive(Debug, Clone)]
pub struct TravelPath {
    /// Separation parameter d (2 for the paper's two-separation).
    pub d: i32,
    /// Unit steps, one visited half-offset each.
    pub steps: Vec<TravelStep>,
    /// Signed per-axis return displacement (home − final position).
    pub returns: [i32; 3],
}

impl TravelPath {
    /// Build the canonical path for separation `d ≥ 1`.
    pub fn new(d: i32) -> Self {
        assert!(d >= 1);
        let mut steps = Vec::new();
        let mut cum = [0i32; 3];
        let push = |steps: &mut Vec<TravelStep>, cum: &mut [i32; 3], axis: usize, dir: i32| {
            cum[axis] += dir;
            steps.push(TravelStep {
                axis,
                dir,
                cum: *cum,
            });
        };

        // +z column at x = y = 0: offsets (0, 0, 1..d).
        for _ in 0..d {
            push(&mut steps, &mut cum, 2, 1);
        }
        // y-rows of the x = 0 plane: (0, 1..d, −d..d), z boustrophedon.
        for _ in 0..d {
            push(&mut steps, &mut cum, 1, 1);
            let zdir = if cum[2] > 0 { -1 } else { 1 };
            for _ in 0..2 * d {
                push(&mut steps, &mut cum, 2, zdir);
            }
        }
        // Full (y, z) planes at x = 1..d, snaked row by row.
        for _ in 0..d {
            push(&mut steps, &mut cum, 0, 1);
            // The plane is always entered at a y-extreme (segment B ends at
            // y = d, later planes end at ±d), so one y-direction covers it.
            let ydir = if cum[1] > 0 { -1 } else { 1 };
            loop {
                let zdir = if cum[2] > 0 { -1 } else { 1 };
                for _ in 0..2 * d {
                    push(&mut steps, &mut cum, 2, zdir);
                }
                if cum[1] == d * ydir {
                    break;
                }
                push(&mut steps, &mut cum, 1, ydir);
            }
        }
        let returns = [-cum[0], -cum[1], -cum[2]];
        TravelPath { d, steps, returns }
    }

    /// Unit steps taken along `axis` while visiting (excludes returns).
    pub fn unit_steps_along(&self, axis: usize) -> u64 {
        self.steps.iter().filter(|s| s.axis == axis).count() as u64
    }

    /// Absolute return displacement along `axis`.
    pub fn return_distance(&self, axis: usize) -> u64 {
        self.returns[axis].unsigned_abs() as u64
    }

    /// Total box-displacements along `axis`, visits plus return — the
    /// quantity the byte model multiplies by the boundary cross-section.
    pub fn total_travel_along(&self, axis: usize) -> u64 {
        self.unit_steps_along(axis) + self.return_distance(axis)
    }

    /// Logical CSHIFT invocations: one per unit step plus one per
    /// non-trivial return shift.
    pub fn cshift_count(&self) -> u64 {
        self.steps.len() as u64 + self.returns.iter().filter(|&&r| r != 0).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn half_offsets(d: i32) -> HashSet<[i32; 3]> {
        let mut set = HashSet::new();
        for x in -d..=d {
            for y in -d..=d {
                for z in -d..=d {
                    if [x, y, z] > [0, 0, 0] {
                        set.insert([x, y, z]);
                    }
                }
            }
        }
        set
    }

    #[test]
    fn visits_every_half_offset_exactly_once() {
        for d in 1..=3 {
            let path = TravelPath::new(d);
            let expect = half_offsets(d);
            let visited: Vec<[i32; 3]> = path.steps.iter().map(|s| s.cum).collect();
            let unique: HashSet<[i32; 3]> = visited.iter().copied().collect();
            assert_eq!(visited.len(), unique.len(), "d={}: revisited offset", d);
            assert_eq!(unique, expect, "d={}: wrong half set", d);
        }
    }

    #[test]
    fn steps_are_unit_and_consistent() {
        let path = TravelPath::new(2);
        let mut cum = [0i32; 3];
        for s in &path.steps {
            assert!(s.dir == 1 || s.dir == -1);
            cum[s.axis] += s.dir;
            assert_eq!(cum, s.cum);
        }
        for (c, r) in cum.iter().zip(&path.returns) {
            assert_eq!(c + r, 0, "return must reach home");
        }
    }

    #[test]
    fn two_separation_counts_match_paper() {
        let path = TravelPath::new(2);
        assert_eq!(path.steps.len(), 62);
        assert_eq!(path.cshift_count(), 65); // 62 visits + 3 returns
        let per_axis: u64 = (0..3).map(|a| path.unit_steps_along(a)).sum();
        assert_eq!(per_axis, 62);
    }

    #[test]
    fn one_separation_counts() {
        let path = TravelPath::new(1);
        assert_eq!(path.steps.len(), 13); // half of 27 − 1
    }
}
