//! Criterion bench: the baselines — O(N²) direct summation and Barnes–Hut
//! — against the FMM at matched N (the crossover behind Table 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fmm_bench::workloads::{uniform, unit_charges};
use fmm_bh::BarnesHut;
use fmm_core::{Fmm, FmmConfig};

fn bench_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("method_crossover");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(10));
    for &n in &[2_000usize, 16_000] {
        let pts = uniform(n, 31);
        let q = unit_charges(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, _| {
            b.iter(|| fmm_direct::potentials(&pts, &q));
        });
        group.bench_with_input(BenchmarkId::new("barnes_hut_0.6", n), &n, |b, _| {
            b.iter(|| {
                let bh = BarnesHut::build(&pts, &q, 32);
                bh.potentials(0.6, false)
            });
        });
        let fmm = Fmm::new(FmmConfig::order(5)).unwrap();
        group.bench_with_input(BenchmarkId::new("anderson_d5", n), &n, |b, _| {
            b.iter(|| fmm.evaluate(&pts, &q).unwrap());
        });
    }
    group.finish();
}

fn bench_bh_theta(c: &mut Criterion) {
    let n = 50_000;
    let pts = uniform(n, 37);
    let q = unit_charges(n);
    let bh = BarnesHut::build(&pts, &q, 32);
    let mut group = c.benchmark_group("barnes_hut_theta");
    group.sample_size(10);
    for theta in [0.3f64, 0.6, 1.0] {
        group.bench_with_input(
            BenchmarkId::new("theta", format!("{}", theta)),
            &theta,
            |b, &t| {
                b.iter(|| bh.potentials(t, false));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_crossover, bench_bh_theta);
criterion_main!(benches);
