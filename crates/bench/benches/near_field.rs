//! Criterion bench: near-field direct evaluation kernels — target-centric
//! (parallelizable) vs symmetric (Newton's third law), one- vs
//! two-separation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fmm_bench::workloads::{uniform, unit_charges};
use fmm_core::particles::BinnedParticles;
use fmm_core::{near_field_potentials, near_field_symmetric};
use fmm_tree::{Domain, Separation};

fn bench_near_field(c: &mut Criterion) {
    let n = 50_000;
    let pts = uniform(n, 17);
    let q = unit_charges(n);
    let bp = BinnedParticles::build(&pts, &q, Domain::unit(), 4);
    let mut out = vec![0.0; n];

    let mut group = c.benchmark_group("near_field");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(10));
    // Pair counts for throughput labels.
    let st = near_field_potentials(&bp, Separation::Two, false, &mut out);
    group.throughput(Throughput::Elements(st.pair_interactions));
    group.bench_function("target_centric_seq", |b| {
        b.iter(|| {
            out.iter_mut().for_each(|x| *x = 0.0);
            near_field_potentials(&bp, Separation::Two, false, &mut out)
        });
    });
    group.bench_function("target_centric_par", |b| {
        b.iter(|| {
            out.iter_mut().for_each(|x| *x = 0.0);
            near_field_potentials(&bp, Separation::Two, true, &mut out)
        });
    });
    group.bench_function("symmetric_seq", |b| {
        b.iter(|| near_field_symmetric(&bp, Separation::Two));
    });
    group.finish();

    let mut group = c.benchmark_group("near_field_separation");
    group.sample_size(10);
    for (label, sep) in [("one", Separation::One), ("two", Separation::Two)] {
        group.bench_with_input(BenchmarkId::new("sep", label), &sep, |b, &sep| {
            b.iter(|| {
                out.iter_mut().for_each(|x| *x = 0.0);
                near_field_potentials(&bp, sep, true, &mut out)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_near_field);
criterion_main!(benches);
