//! Criterion bench: the hierarchy traversal (upward T1, downward T2+T3) —
//! aggregation (GEMM vs GEMV), supernodes on/off, sequential vs parallel.
//! This is the kernel behind the paper's Table 3 and the supernode claim.

use criterion::{criterion_group, criterion_main, Criterion};
use fmm_core::field::FieldHierarchy;
use fmm_core::plan::TraversalPlan;
use fmm_core::translations::TranslationSet;
use fmm_core::traversal::{downward_pass, upward_pass, Aggregation};
use fmm_sphere::SphereRule;
use fmm_tree::{Hierarchy, Separation};

fn setup(depth: u32) -> (FieldHierarchy, TranslationSet, TraversalPlan) {
    let rule = SphereRule::for_order(5);
    let ts = TranslationSet::build(&rule, 3, 1.6, 1.0, Separation::Two, true);
    let plan = TraversalPlan::build(depth, Separation::Two);
    let mut fh = FieldHierarchy::new(Hierarchy::new(depth), rule.len());
    let mut state = 5u64;
    let d = depth as usize;
    for v in fh.far[d].iter_mut() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }
    upward_pass(&mut fh, &ts, &plan, Aggregation::Gemm, false);
    (fh, ts, plan)
}

fn bench_traversal(c: &mut Criterion) {
    let depth = 4;
    let (fh, ts, plan) = setup(depth);

    let mut group = c.benchmark_group("downward_pass_depth4");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(10));
    group.bench_function("gemm_seq", |b| {
        b.iter(|| {
            let mut f = fh.clone();
            downward_pass(&mut f, &ts, &plan, false, Aggregation::Gemm, false)
        });
    });
    group.bench_function("gemv_seq", |b| {
        b.iter(|| {
            let mut f = fh.clone();
            downward_pass(&mut f, &ts, &plan, false, Aggregation::Gemv, false)
        });
    });
    group.bench_function("gemm_par", |b| {
        b.iter(|| {
            let mut f = fh.clone();
            downward_pass(&mut f, &ts, &plan, false, Aggregation::Gemm, true)
        });
    });
    group.bench_function("supernodes_seq", |b| {
        b.iter(|| {
            let mut f = fh.clone();
            downward_pass(&mut f, &ts, &plan, true, Aggregation::Gemm, false)
        });
    });
    group.bench_function("supernodes_par", |b| {
        b.iter(|| {
            let mut f = fh.clone();
            downward_pass(&mut f, &ts, &plan, true, Aggregation::Gemm, true)
        });
    });
    group.finish();

    let mut group = c.benchmark_group("upward_pass_depth5");
    group.sample_size(10);
    let (fh5, ts5, plan5) = setup(5);
    group.bench_function("gemm_seq", |b| {
        b.iter(|| {
            let mut f = fh5.clone();
            upward_pass(&mut f, &ts5, &plan5, Aggregation::Gemm, false)
        });
    });
    group.bench_function("gemm_par", |b| {
        b.iter(|| {
            let mut f = fh5.clone();
            upward_pass(&mut f, &ts5, &plan5, Aggregation::Gemm, true)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_traversal);
criterion_main!(benches);
