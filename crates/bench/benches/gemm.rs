//! Criterion bench: the GEMM/GEMV substrate at the translation shapes the
//! paper uses — K×K by K×n panels for K ∈ {12, 72, 120} (Table 3's
//! arithmetic-efficiency kernels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fmm_linalg::{gemm_acc, gemm_flops, gemv_acc};

fn pseudo(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

fn bench_gemm_panels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_panel");
    for &k in &[12usize, 72, 120] {
        let n = 2048; // boxes aggregated per panel
        let a = pseudo(1, k * k);
        let b = pseudo(2, n * k);
        let mut out = vec![0.0; n * k];
        group.throughput(Throughput::Elements(gemm_flops(n, k, k)));
        group.bench_with_input(BenchmarkId::new("K", k), &k, |bench, _| {
            bench.iter(|| gemm_acc(n, k, k, &b, &a, &mut out));
        });
    }
    group.finish();
}

fn bench_gemv_equivalent(c: &mut Criterion) {
    // The unaggregated (level-2 BLAS) path: one GEMV per box.
    let mut group = c.benchmark_group("gemv_per_box");
    for &k in &[12usize, 72] {
        let n = 2048;
        let a = pseudo(3, k * k);
        let x = pseudo(4, n * k);
        let mut y = vec![0.0; n * k];
        group.throughput(Throughput::Elements(gemm_flops(n, k, k)));
        group.bench_with_input(BenchmarkId::new("K", k), &k, |bench, _| {
            bench.iter(|| {
                for i in 0..n {
                    gemv_acc(k, k, &a, &x[i * k..(i + 1) * k], &mut y[i * k..(i + 1) * k]);
                }
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gemm_panels, bench_gemv_equivalent
}
criterion_main!(benches);
