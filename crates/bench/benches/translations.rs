//! Criterion bench: building translation matrices (the precompute side of
//! Figs. 8–9) and applying them (single translation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmm_core::translations::TranslationSet;
use fmm_sphere::SphereRule;
use fmm_tree::Separation;

fn bench_build_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_translation_set");
    group.sample_size(10);
    for &d in &[3usize, 5] {
        let rule = SphereRule::for_order(d);
        group.bench_with_input(BenchmarkId::new("order", d), &d, |b, _| {
            b.iter(|| TranslationSet::build(&rule, d / 2 + 1, 1.6, 1.0, Separation::Two, false));
        });
    }
    group.finish();
}

fn bench_build_with_supernodes(c: &mut Criterion) {
    let rule = SphereRule::for_order(5);
    let mut group = c.benchmark_group("build_supernode_matrices");
    group.sample_size(10);
    group.bench_function("order5", |b| {
        b.iter(|| TranslationSet::build(&rule, 3, 1.6, 1.0, Separation::Two, true));
    });
    group.finish();
}

fn bench_apply_t2(c: &mut Criterion) {
    let rule = SphereRule::for_order(5);
    let k = rule.len();
    let ts = TranslationSet::build(&rule, 3, 1.6, 1.0, Separation::Two, false);
    let m = ts.t2([3, -4, 2]).unwrap();
    let g: Vec<f64> = (0..k).map(|i| i as f64 * 0.3).collect();
    let mut out = vec![0.0; k];
    c.bench_function("apply_t2_single", |b| {
        b.iter(|| {
            for j in 0..k {
                let mut acc = 0.0;
                for i in 0..k {
                    acc += g[i] * m[(i, j)];
                }
                out[j] += acc;
            }
        });
    });
}

criterion_group!(
    benches,
    bench_build_all,
    bench_build_with_supernodes,
    bench_apply_t2
);
criterion_main!(benches);
