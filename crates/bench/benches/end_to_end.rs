//! Criterion bench: full FMM evaluations — orders, depths, supernodes,
//! potentials vs forces. The headline end-to-end numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fmm_bench::workloads::{uniform, unit_charges};
use fmm_core::{Fmm, FmmConfig};

fn bench_end_to_end(c: &mut Criterion) {
    let n = 50_000;
    let pts = uniform(n, 23);
    let q = unit_charges(n);

    let mut group = c.benchmark_group("fmm_evaluate_50k");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(12));
    group.throughput(Throughput::Elements(n as u64));
    for d in [5usize, 7] {
        let fmm = Fmm::new(FmmConfig::order(d)).unwrap();
        group.bench_with_input(BenchmarkId::new("order", d), &d, |b, _| {
            b.iter(|| fmm.evaluate(&pts, &q).unwrap());
        });
    }
    let fmm_sup = Fmm::new(FmmConfig::order(5).supernodes(true)).unwrap();
    group.bench_function("order5_supernodes", |b| {
        b.iter(|| fmm_sup.evaluate(&pts, &q).unwrap());
    });
    let fmm5 = Fmm::new(FmmConfig::order(5)).unwrap();
    group.bench_function("order5_forces", |b| {
        b.iter(|| fmm5.evaluate_forces(&pts, &q).unwrap());
    });
    group.finish();
}

fn bench_setup_cost(c: &mut Criterion) {
    // Instance construction = translation-matrix precompute.
    let mut group = c.benchmark_group("fmm_new");
    group.sample_size(10);
    for d in [5usize, 9] {
        group.bench_with_input(BenchmarkId::new("order", d), &d, |b, &d| {
            b.iter(|| Fmm::new(FmmConfig::order(d)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end, bench_setup_cost);
criterion_main!(benches);
