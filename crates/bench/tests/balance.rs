//! Load-balance smoke (CI): on clustered distributions at p = 8, the
//! cost-weighted partitioner balances the deterministic per-worker flop
//! counters to within 10%, where the uniform block layout exceeds 3x
//! max/mean — and the two balance modes produce bitwise-identical
//! outputs.
//!
//! Flop counters rather than wall-clock make the gate deterministic: the
//! workers' busy times equalize in the blocking collectives, but the
//! arithmetic each one performs is a pure function of the partition.

use fmm_bench::workloads::{mixed_charges, Distribution};
use fmm_core::{Balance, Executor, Fmm, FmmConfig};

const N: usize = 32_768;
const DEPTH: u32 = 4;
const P: usize = 8;

fn assert_balanced(dist: Distribution, with_fields: bool) {
    fmm_spmd::install();
    let pts = dist.positions(N, 99);
    let q = mixed_charges(N, 100);
    let eval = |bal: Balance| {
        let fmm = Fmm::new(
            FmmConfig::order(3)
                .depth(DEPTH)
                .executor(Executor::spmd(P))
                .balance(bal),
        )
        .unwrap();
        if with_fields {
            fmm.evaluate_forces(&pts, &q).unwrap()
        } else {
            fmm.evaluate(&pts, &q).unwrap()
        }
    };
    let uni = eval(Balance::Uniform);
    let cw = eval(Balance::CostWeighted);
    let ru = uni.spmd.as_ref().unwrap();
    let rc = cw.spmd.as_ref().unwrap();
    println!(
        "{} (forces={}): uniform flop imbalance {:.3}, cost-weighted {:.3}",
        dist.name(),
        with_fields,
        ru.flop_imbalance(),
        rc.flop_imbalance()
    );

    // The uniform block layout leaves the slowest worker with > 3x the
    // mean flops (imbalance = max/mean - 1 > 2), the cost-weighted cut
    // keeps it within 10%.
    assert!(
        ru.flop_imbalance() > 2.0,
        "{}: uniform layout should exceed 3x max/mean, got {:.3}",
        dist.name(),
        ru.flop_imbalance()
    );
    assert!(
        rc.flop_imbalance() < 0.10,
        "{}: cost-weighted imbalance must stay under 10%, got {:.3}",
        dist.name(),
        rc.flop_imbalance()
    );

    // Rebalancing must not change a single bit of the answer.
    assert_eq!(uni.potentials.len(), cw.potentials.len());
    for (i, (a, b)) in uni.potentials.iter().zip(&cw.potentials).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "potential {i} differs");
    }
    if with_fields {
        let fu = uni.fields.as_ref().unwrap();
        let fc = cw.fields.as_ref().unwrap();
        for (i, (a, b)) in fu.iter().zip(fc).enumerate() {
            for axis in 0..3 {
                assert_eq!(
                    a[axis].to_bits(),
                    b[axis].to_bits(),
                    "field {i}.{axis} differs"
                );
            }
        }
    }
    assert_eq!(
        uni.near_stats.pair_interactions,
        cw.near_stats.pair_interactions
    );
}

#[test]
fn cost_weighted_balances_plummer_at_p8() {
    assert_balanced(Distribution::Plummer, false);
}

#[test]
fn cost_weighted_balances_two_cluster_at_p8() {
    assert_balanced(Distribution::TwoCluster, false);
}

#[test]
fn cost_weighted_balances_plummer_forces_at_p8() {
    assert_balanced(Distribution::Plummer, true);
}
