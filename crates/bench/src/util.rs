//! Shared measurement helpers for the experiment binaries.

use std::time::Instant;

/// Wall-time a closure in seconds, returning (seconds, result).
pub fn time_s<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed().as_secs_f64(), r)
}

/// Best-of-`reps` wall time in seconds.
pub fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    assert!(reps >= 1);
    let (mut best, mut out) = time_s(&mut f);
    for _ in 1..reps {
        let (t, r) = time_s(&mut f);
        if t < best {
            best = t;
            out = r;
        }
    }
    (best, out)
}

/// Measure this host's peak dense GEMM rate (Gflop/s, single core) — the
/// denominator of the paper's "arithmetic efficiency" (achieved rate /
/// peak rate). Takes the max over several cache-resident shapes so the
/// probe measures the ALU, not the memory system.
pub fn peak_gemm_gflops() -> f64 {
    let mut best = 0.0f64;
    for n in [64usize, 96, 128, 192] {
        let a: Vec<f64> = (0..n * n).map(|i| (i % 97) as f64 * 0.013).collect();
        let b: Vec<f64> = (0..n * n).map(|i| (i % 89) as f64 * 0.017).collect();
        let mut c = vec![0.0; n * n];
        // Warm up, then repeat enough to amortize timer overhead.
        fmm_linalg::gemm_acc(n, n, n, &a, &b, &mut c);
        let reps = (1 << 24) / (n * n * n) + 1;
        let (t, _) = best_of(5, || {
            for _ in 0..reps {
                fmm_linalg::gemm_acc(n, n, n, &a, &b, &mut c);
            }
        });
        best = best.max(reps as f64 * fmm_linalg::gemm_flops(n, n, n) as f64 / t / 1e9);
    }
    best
}

/// RMS-relative error and implied digits.
pub fn rms_digits(approx: &[f64], reference: &[f64]) -> (f64, f64) {
    let st = fmm_core::relative_error_stats(approx, reference);
    (st.rms_rel, st.digits())
}

/// Pretty separator line for experiment output.
pub fn header(title: &str) {
    println!("\n=== {} ===", title);
}

/// All numeric values of `"key":<number>` occurrences, in document order.
/// Enough of a parser for the JSON the bench binaries write themselves.
pub fn extract_numbers(json: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{}\":", key);
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
            .unwrap_or(rest.len());
        if let Ok(v) = rest[..end].parse::<f64>() {
            out.push(v);
        }
    }
    out
}

/// Compare higher-is-better throughput metrics of a fresh run against a
/// committed baseline. A metric regresses when it falls more than
/// `tolerance` (a fraction) below the baseline. Keys absent from either
/// document are skipped, so the gate survives schema growth and
/// host-dependent kernel sets.
pub fn check_regressions(old: &str, new: &str, rate_keys: &[&str], tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for key in rate_keys {
        let old_vals = extract_numbers(old, key);
        let new_vals = extract_numbers(new, key);
        for (i, (o, n)) in old_vals.iter().zip(&new_vals).enumerate() {
            if *n < o * (1.0 - tolerance) {
                failures.push(format!(
                    "{}[{}]: {:.2} vs baseline {:.2} ({:+.1}%, tolerance -{:.0}%)",
                    key,
                    i,
                    n,
                    o,
                    (n / o - 1.0) * 100.0,
                    tolerance * 100.0
                ));
            }
        }
    }
    failures
}

/// The regression threshold: `FMM_BENCH_TOLERANCE` (a fraction) or the
/// given default. CI shared runners use a loose 0.5.
pub fn bench_tolerance(default: f64) -> f64 {
    std::env::var("FMM_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timers_return_results() {
        let (t, v) = time_s(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
        let (t2, v2) = best_of(3, || 7);
        assert_eq!(v2, 7);
        assert!(t2 >= 0.0);
    }

    #[test]
    fn peak_is_positive() {
        assert!(peak_gemm_gflops() > 0.1);
    }

    #[test]
    fn number_extraction_walks_the_document() {
        let doc = r#"{"a":{"rate":1.5},"b":[{"rate":2e1},{"other":3}],"rate":-0.25}"#;
        assert_eq!(extract_numbers(doc, "rate"), vec![1.5, 20.0, -0.25]);
        assert!(extract_numbers(doc, "missing").is_empty());
    }

    #[test]
    fn regression_gate_flags_only_real_drops() {
        let old = r#"{"rate":100,"noise":5}"#;
        let fine = r#"{"rate":90,"noise":1}"#; // -10% within 15%
        let bad = r#"{"rate":80}"#; // -20% beyond 15%
        assert!(check_regressions(old, fine, &["rate"], 0.15).is_empty());
        let f = check_regressions(old, bad, &["rate"], 0.15);
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("rate[0]"), "{f:?}");
        // Keys absent from the baseline never fire.
        assert!(check_regressions(old, bad, &["absent"], 0.15).is_empty());
    }
}
