//! Shared measurement helpers for the experiment binaries.

use std::time::Instant;

/// Wall-time a closure in seconds, returning (seconds, result).
pub fn time_s<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed().as_secs_f64(), r)
}

/// Best-of-`reps` wall time in seconds.
pub fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    assert!(reps >= 1);
    let (mut best, mut out) = time_s(&mut f);
    for _ in 1..reps {
        let (t, r) = time_s(&mut f);
        if t < best {
            best = t;
            out = r;
        }
    }
    (best, out)
}

/// Measure this host's peak dense GEMM rate (Gflop/s, single core) — the
/// denominator of the paper's "arithmetic efficiency" (achieved rate /
/// peak rate). Takes the max over several cache-resident shapes so the
/// probe measures the ALU, not the memory system.
pub fn peak_gemm_gflops() -> f64 {
    let mut best = 0.0f64;
    for n in [64usize, 96, 128, 192] {
        let a: Vec<f64> = (0..n * n).map(|i| (i % 97) as f64 * 0.013).collect();
        let b: Vec<f64> = (0..n * n).map(|i| (i % 89) as f64 * 0.017).collect();
        let mut c = vec![0.0; n * n];
        // Warm up, then repeat enough to amortize timer overhead.
        fmm_linalg::gemm_acc(n, n, n, &a, &b, &mut c);
        let reps = (1 << 24) / (n * n * n) + 1;
        let (t, _) = best_of(5, || {
            for _ in 0..reps {
                fmm_linalg::gemm_acc(n, n, n, &a, &b, &mut c);
            }
        });
        best = best.max(reps as f64 * fmm_linalg::gemm_flops(n, n, n) as f64 / t / 1e9);
    }
    best
}

/// RMS-relative error and implied digits.
pub fn rms_digits(approx: &[f64], reference: &[f64]) -> (f64, f64) {
    let st = fmm_core::relative_error_stats(approx, reference);
    (st.rms_rel, st.digits())
}

/// Pretty separator line for experiment output.
pub fn header(title: &str) {
    println!("\n=== {} ===", title);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timers_return_results() {
        let (t, v) = time_s(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
        let (t2, v2) = best_of(3, || 7);
        assert_eq!(v2, 7);
        assert!(t2 >= 0.0);
    }

    #[test]
    fn peak_is_positive() {
        assert!(peak_gemm_gflops() > 0.1);
    }
}
