//! **E6 — Paper Fig. 9**: precomputing the 1331 T2 translation matrices —
//! (a) all-redundant vs parallel-compute + replicate as K varies on a
//! 256-node machine; (b) the compute and replicate components across
//! machine sizes (32/64/256 nodes).
//!
//! Paper: parallel+replicate is up to an order of magnitude faster; the
//! parallel compute time shrinks on larger machines while the replication
//! time (which dominates) grows only 10–20% per doubling, so the total
//! rises at most 62% from 32 to 256 nodes.
//!
//! Run: `cargo run --release -p fmm-bench --bin exp_fig9`

use fmm_bench::util::header;
use fmm_machine::replication::{precompute_cost, ReplicationStrategy};
use fmm_machine::CostModel;

const N_MAT: usize = 1331;

fn main() {
    let cost = CostModel::cm5e();

    header("Fig. 9(a) — 1331 T2 matrices on a 256-node (1024-VU) CM-5E model");
    println!(
        "{:>4} {:>3} {:>16} {:>16} {:>8}",
        "K", "M", "all-redundant", "par+replicate", "ratio"
    );
    for (k, m) in [(12usize, 3usize), (24, 4), (32, 4), (50, 5), (72, 8)] {
        let red = precompute_cost(
            N_MAT,
            k,
            m,
            1024,
            ReplicationStrategy::ComputeAllRedundant,
            0,
            &cost,
        );
        let rep = precompute_cost(
            N_MAT,
            k,
            m,
            1024,
            ReplicationStrategy::ComputeAndReplicate { group: None },
            N_MAT,
            &cost,
        );
        println!(
            "{:>4} {:>3} {:>15.2}s {:>15.2}s {:>8.1}",
            k,
            m,
            red.total_s(),
            rep.total_s(),
            red.total_s() / rep.total_s()
        );
    }

    header("Fig. 9(b) — compute vs replicate components across machine sizes");
    println!(
        "{:>6} {:>5} {:>4} {:>14} {:>14} {:>14}",
        "nodes", "VUs", "K", "compute (s)", "replicate (s)", "total (s)"
    );
    for (k, m) in [(12usize, 3usize), (72, 8)] {
        for nodes in [32usize, 64, 256] {
            let vus = nodes * 4;
            let rep = precompute_cost(
                N_MAT,
                k,
                m,
                vus,
                ReplicationStrategy::ComputeAndReplicate { group: None },
                N_MAT,
                &cost,
            );
            println!(
                "{:>6} {:>5} {:>4} {:>14.3} {:>14.3} {:>14.3}",
                nodes,
                vus,
                k,
                rep.compute_s,
                rep.replicate_s,
                rep.total_s()
            );
        }
        println!();
    }
    println!(
        "Paper: compute-in-parallel shrinks with machine size; replication\n\
         dominates and grows mildly with machine size (their total grew ≤62%\n\
         from 32 to 256 nodes). Our pipelined-spread model keeps replication\n\
         flat in machine size — same ordering, milder growth; see\n\
         EXPERIMENTS.md for the comparison."
    );
}
