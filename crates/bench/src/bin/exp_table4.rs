//! **E3 — Paper Table 4**: data-motion needs of the four interactive-field
//! fetch strategies on a 32-node (128-VU) machine with 8³ subgrids.
//!
//! Paper anchors: direct-aliased fetches exactly the ghost volume (3,584
//! boxes per VU); the linearized unaliased snake is 7.4× faster than
//! direct CSHIFTs; linearized aliased beats direct aliased by ~1.5× (per-
//! CSHIFT overhead dominates the many small region fetches).
//!
//! Run: `cargo run --release -p fmm-bench --bin exp_table4`

use fmm_bench::util::header;
use fmm_machine::ghost::{fetch, ghost_volume, FetchStrategy};
use fmm_machine::{BlockLayout, CostModel, DistGrid, VuGrid};
use fmm_tree::{interactive_field_union, Separation};

fn main() {
    header("Table 4 — interactive-field fetch strategies (32-node CM-5E model, S=8³)");
    // The paper's machine: 32 nodes × 4 VUs = 128 VUs, local subgrids 8³.
    let layout = BlockLayout::new([64, 32, 32], VuGrid::new([8, 4, 4]));
    let k = 12;
    let grid = DistGrid::from_fn(layout, k, |g, c| {
        (g[0] * 1_000_000 + g[1] * 1000 + g[2]) as f64 + c as f64 * 0.125
    });
    let offsets: Vec<[i32; 3]> = interactive_field_union(Separation::Two);
    println!(
        "VUs: {}, subgrid: {:?}, ghost volume per VU: {}",
        layout.vu.len(),
        layout.subgrid,
        ghost_volume(&layout)
    );
    let cost = CostModel::cm5e();
    println!(
        "\n{:<38} {:>12} {:>12} {:>9} {:>11} {:>9}",
        "method", "off-VU boxes", "local moves", "#CSHIFTs", "time(model)", "relative"
    );
    let mut times = Vec::new();
    let mut rows = Vec::new();
    for strat in FetchStrategy::ALL {
        let r = fetch(&grid, strat, &offsets);
        let t = cost.time_s(&r.counters, k);
        times.push(t);
        rows.push((strat, r.counters, t));
    }
    let tmin = times.iter().cloned().fold(f64::INFINITY, f64::min);
    for (strat, c, t) in rows {
        println!(
            "{:<38} {:>12} {:>12} {:>9} {:>10.4}s {:>9.2}",
            strat.name(),
            c.off_vu_boxes,
            c.local_box_moves,
            c.cshifts,
            t,
            t / tmin
        );
    }
    println!(
        "\nPaper's measured cells (OCR-legible ones): direct-aliased fetches\n\
         3,584 non-local boxes; linearized-unaliased ≈7.4× faster than direct\n\
         CSHIFTs at K=12; linearized-aliased ≈1.5× faster than direct-aliased.\n\
         Our forwarding variant of linearized-aliased moves the exact ghost\n\
         volume in 6 shifts (the paper's CMF variant moved whole subgrids)."
    );
}
