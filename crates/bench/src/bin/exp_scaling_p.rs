//! **E9 — §4 / abstract parallel-scaling claim**: "the speed of the code
//! scales linearly with the number of processors", with communication
//! "about 10–25%" of the traversal.
//!
//! Part 1 measures rayon speedup over 1..ncpu threads at fixed N (the
//! shared-memory analogue of the paper's processor scaling). Part 2 runs
//! the *real* message-passing executor (`fmm-spmd`) over worker counts —
//! actual data motion through channels, not a simulation. Part 3 uses
//! the machine simulator to report the communication share of the
//! traversal on CM-5E-like configurations, reproducing the 10–25% claim.
//!
//! Run: `cargo run --release -p fmm-bench --bin exp_scaling_p [n]`

use fmm_bench::util::{header, time_s};
use fmm_bench::workloads::{uniform, unit_charges};
use fmm_core::{Executor, Fmm, FmmConfig};
use fmm_machine::ghost::{fetch, FetchStrategy};
use fmm_machine::{BlockLayout, CostModel, Counters, DistGrid, VuGrid};
use fmm_tree::{interactive_field_union, Separation};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000);

    header("Scaling in P — rayon threads on one host");
    let positions = uniform(n, 4242);
    let charges = unit_charges(n);
    let ncpu = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(4);
    println!("N = {}, host cores: {}", n, ncpu);
    println!(
        "{:>8} {:>10} {:>9} {:>11}",
        "threads", "time (s)", "speedup", "efficiency"
    );
    let mut t1 = 0.0;
    let mut threads = 1;
    while threads <= ncpu {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let fmm = Fmm::new(FmmConfig::order(5)).unwrap();
        let (t, _) = pool.install(|| time_s(|| fmm.evaluate(&positions, &charges).unwrap()));
        if threads == 1 {
            t1 = t;
        }
        println!(
            "{:>8} {:>10.3} {:>9.2} {:>10.1}%",
            threads,
            t,
            t1 / t,
            100.0 * t1 / t / threads as f64
        );
        threads *= 2;
    }

    header("Scaling in P — SPMD message-passing executor");
    fmm_spmd::install();
    // The SPMD runs use a smaller N: every inter-worker datum really
    // crosses a channel, and the point here is speedup shape + measured
    // traffic, not peak throughput.
    let sn = (n / 8).max(10_000);
    let spts = uniform(sn, 4242);
    let sq = unit_charges(sn);
    println!("N = {}, executor = Executor::spmd(p)", sn);
    println!(
        "{:>8} {:>10} {:>9} {:>11} {:>14} {:>12}",
        "workers", "time (s)", "speedup", "efficiency", "msgs (total)", "MB moved"
    );
    let mut ts1 = 0.0;
    let mut p = 1;
    while p <= 8 {
        let fmm = Fmm::new(FmmConfig::order(5).executor(Executor::spmd(p))).unwrap();
        let (t, out) = time_s(|| fmm.evaluate(&spts, &sq).unwrap());
        if p == 1 {
            ts1 = t;
        }
        let rep = out.spmd.expect("spmd report");
        let msgs: u64 = rep.phases.iter().map(|ph| ph.messages).sum();
        let bytes: u64 = rep.phases.iter().map(|ph| ph.bytes).sum();
        println!(
            "{:>8} {:>10.3} {:>9.2} {:>10.1}% {:>14} {:>12.2}",
            p,
            t,
            ts1 / t,
            100.0 * ts1 / t / p as f64,
            msgs,
            bytes as f64 / 1e6
        );
        p *= 2;
    }

    header("Communication share of the traversal (simulator, per level)");
    // A 256-node (1024-VU) machine at the paper's 100M-particle depth-8
    // hierarchy: level 8 has 256³ boxes → 16³ subgrids; level 7 → 8³; etc.
    let cost = CostModel::cm5e();
    let k = 12;
    println!(
        "{:>6} {:>10} {:>9} {:>13} {:>13} {:>8}",
        "level", "subgrid", "T2 flops", "comm (s)", "compute (s)", "comm %"
    );
    for (level, sub) in [(8u32, 16usize), (7, 8), (6, 4)] {
        let vu = VuGrid::new([16, 8, 8]); // 1024 VUs
        let layout = BlockLayout::new([16 * sub, 8 * sub, 8 * sub], vu);
        let grid = DistGrid::from_fn(layout, 1, |_, _| 0.0);
        let r = fetch(
            &grid,
            FetchStrategy::LinearizedAliased,
            &interactive_field_union(Separation::Two),
        );
        let comm = cost.time_s(&r.counters, k);
        // Per-VU T2 compute: boxes_per_vu × 875 × 2K² flops.
        let t2_flops = layout.boxes_per_vu() as u64 * 875 * 2 * (k * k) as u64;
        let compute = cost.time_s(
            &Counters {
                flops: t2_flops,
                ..Default::default()
            },
            k,
        );
        println!(
            "{:>6} {:>7}³ {:>10.2e} {:>13.4} {:>13.4} {:>7.1}%",
            level,
            sub,
            t2_flops as f64,
            comm,
            compute,
            100.0 * comm / (comm + compute)
        );
    }
    println!(
        "\nPaper: communication is ~12% of traversal time for K=12 (depth 8)\n\
         and ~25% for K=72 (depth 7); overall communication 10–25%. The\n\
         simulator shows the same regime: small at deep levels (large\n\
         subgrids), growing as subgrids shrink toward the root."
    );
}
