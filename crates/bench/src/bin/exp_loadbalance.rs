//! **E14 — §3.5 load balance of the non-adaptive method**: the box work
//! is perfectly balanced by construction; the particle work (P2O,
//! evaluation, near field) is at the mercy of the distribution.
//!
//! Run: `cargo run --release -p fmm-bench --bin exp_loadbalance`

use fmm_bench::util::header;
use fmm_bench::workloads::{clustered, jittered_grid, uniform};
use fmm_tree::{
    analyze_balance, assign_boxes, bin_particles, CoordinateSortKey, Domain, Separation,
};

fn main() {
    header("Load balance of the non-adaptive decomposition (§3.5)");
    let n = 262_144;
    let level = 5; // 32³ leaf boxes over 128 VUs
    let vu_grid = [8u32, 4, 4];
    println!(
        "N = {}, level {} (32³ boxes), 128 VUs ({}×{}×{} grid)\n",
        n, level, vu_grid[0], vu_grid[1], vu_grid[2]
    );
    println!(
        "{:<26} {:>14} {:>14} {:>18}",
        "distribution", "particle imbal", "near-pair imbal", "near eff. bound"
    );
    let cases: [(&str, Vec<[f64; 3]>); 4] = [
        ("uniform", uniform(n, 41)),
        ("jittered grid (j=0.5)", jittered_grid(64, 0.5, 42)),
        ("jittered grid (j=2.0)", jittered_grid(64, 2.0, 43)),
        ("clustered (Plummer-like)", clustered(n, 44)),
    ];
    let domain = Domain::unit();
    let layout = CoordinateSortKey::for_vu_grid(level, vu_grid);
    for (name, pts) in cases {
        let ids = assign_boxes(&pts, &domain, level);
        let binning = bin_particles(&ids, 1 << (3 * level));
        let lb = analyze_balance(&binning, level, layout, Separation::Two);
        println!(
            "{:<26} {:>13.2}× {:>13.2}× {:>17.1}%",
            name,
            lb.particle_imbalance(),
            lb.near_imbalance(),
            100.0 * lb.near_efficiency_bound()
        );
    }
    println!(
        "\nThe paper's method is explicitly non-adaptive: box work (the\n\
         traversal) is perfectly balanced at every level, while particle\n\
         work tracks the distribution — fine for the uniform and\n\
         near-uniform systems all its measurements use, and the reason\n\
         adaptive O(N) methods (its §5 outlook) matter for clustered ones."
    );
}
