//! Service-layer benchmark: emits `BENCH_serve.json`.
//!
//! Measures the payoff of the serving subsystem's two pieces:
//!
//! 1. **Coalesced batching** — 64 small same-shape requests evaluated as
//!    one [`Fmm::evaluate_batch`] call (the multiple-instance GEMM path
//!    the server's batcher feeds) vs the same 64 requests evaluated
//!    serially, one [`Fmm::evaluate`] each. Requests/sec for both, the
//!    speedup, a bitwise-identity check of every potential, and the
//!    plan-registry build count for the whole batch (must be exactly 1).
//! 2. **End-to-end service** — an in-process [`fmm_serve::Server`] on a
//!    loopback port, stormed by concurrent binary clients; reports
//!    requests/sec through the full socket → batcher → engine path and
//!    the largest coalesced batch observed.
//!
//! JSON is written by hand — the harness has no serde dependency.
//!
//! Run: `cargo run --release -p fmm-bench --bin bench_serve [--check]`
//!
//! Exits non-zero if any served/batched potential differs bitwise from
//! solo evaluation, if the batch needs more than one plan build, or if
//! the coalesced batch fails the 3x requests/sec acceptance bar.
//!
//! `--check` is the perf-regression gate (the `bench_json --check`
//! counterpart for the service layer): re-measures the requests/sec
//! rates and fails (exit 1) if any drops more than 15% below the
//! committed `BENCH_serve.json`, without overwriting it. Override the
//! threshold with `FMM_BENCH_TOLERANCE=<fraction>` — CI shared runners
//! use 0.5. The bitwise-identity and single-plan-build invariants stay
//! enforced in `--check` mode too; only the 3x speedup bar is relaxed to
//! the relative gate (absolute speedup depends on host core count).

use fmm_bench::util::best_of;
use fmm_core::{BatchRequest, Fmm, FmmConfig};
use fmm_serve::protocol::{self, EvalRequest, Shape};
use fmm_serve::{ServeConfig, Server};
use std::fmt::Write as _;
use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Minimal JSON object builder (strings, numbers, raw nested values).
#[derive(Default)]
struct Obj {
    body: String,
}

impl Obj {
    fn field(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        let _ = write!(self.body, "\"{}\":{}", key, value);
        self
    }

    fn str_field(&mut self, key: &str, value: &str) -> &mut Self {
        self.field(key, format_args!("\"{}\"", value))
    }

    fn finish(&self) -> String {
        format!("{{{}}}", self.body)
    }
}

fn system(n: usize, seed: u64) -> (Vec<[f64; 3]>, Vec<f64>) {
    let mut state = seed;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let pts: Vec<[f64; 3]> = (0..n).map(|_| [next(), next(), next()]).collect();
    let q: Vec<f64> = (0..n).map(|_| next() * 2.0 - 1.0).collect();
    (pts, q)
}

struct BatchResult {
    json: String,
    speedup: f64,
    bitwise: bool,
    plan_builds: u64,
}

/// The acceptance measurement: R small same-shape requests, coalesced vs
/// serial, on one `Fmm` (so the serial path also enjoys its plan cache —
/// the speedup measured here is pure GEMM aggregation, not plan reuse).
fn bench_batch(order: usize, depth: u32, requests: usize, n_per: usize) -> BatchResult {
    let fmm = Fmm::new(FmmConfig::order(order).depth(depth)).expect("config");
    let systems: Vec<(Vec<[f64; 3]>, Vec<f64>)> = (0..requests)
        .map(|i| system(n_per, 9000 + i as u64))
        .collect();
    let reqs: Vec<BatchRequest> = systems
        .iter()
        .map(|(p, q)| BatchRequest {
            positions: p,
            charges: q,
        })
        .collect();

    // Warm both paths (plan build, page faults) before timing.
    let solo_warm: Vec<Vec<f64>> = systems
        .iter()
        .map(|(p, q)| fmm.evaluate(p, q).expect("solo").potentials)
        .collect();
    fmm.evaluate_batch(&reqs).expect("batch");

    let (t_serial, _) = best_of(5, || {
        for (p, q) in &systems {
            std::hint::black_box(fmm.evaluate(p, q).expect("solo"));
        }
    });
    let (t_batch, out) = best_of(5, || fmm.evaluate_batch(&reqs).expect("batch"));

    // Bitwise identity of the coalesced result against solo evaluation.
    let mut bitwise = true;
    for (i, want) in solo_warm.iter().enumerate() {
        let got = out.potentials_of(i);
        if got.len() != want.len()
            || got
                .iter()
                .zip(want)
                .any(|(a, b)| a.to_bits() != b.to_bits())
        {
            bitwise = false;
        }
    }

    // The whole batch (and every solo rep) resolved one plan, built once.
    let plan_builds = fmm.plan_builds();

    let rps_serial = requests as f64 / t_serial;
    let rps_batch = requests as f64 / t_batch;
    let speedup = rps_batch / rps_serial;
    let mut o = Obj::default();
    o.field("order", order)
        .field("depth", depth)
        .field("requests", requests)
        .field("particles_per_request", n_per)
        .field("serial_requests_per_s", format_args!("{:.1}", rps_serial))
        .field("batched_requests_per_s", format_args!("{:.1}", rps_batch))
        .field("speedup", format_args!("{:.2}", speedup))
        .field("bitwise_identical", bitwise)
        .field("plan_builds", plan_builds);
    println!(
        "batch  order {order} depth {depth}: {requests} x {n_per} particles  \
         serial {rps_serial:.0} req/s  batched {rps_batch:.0} req/s  \
         speedup {speedup:.2}x  bitwise {bitwise}  plan_builds {plan_builds}"
    );
    BatchResult {
        json: o.finish(),
        speedup,
        bitwise,
        plan_builds,
    }
}

/// Storm an in-process server with concurrent binary clients and report
/// throughput through the full socket -> batcher -> engine path.
fn bench_service(clients: usize, rounds: usize, n_per: usize) -> String {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        conn_threads: clients.min(16),
        exec_threads: 2,
        window: Duration::from_micros(500),
        max_batch: 64,
        registry_capacity: 16,
        read_timeout: Duration::from_secs(30),
    })
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let shape = Shape {
        order: 5,
        depth: 2,
        separation: 2,
        mixed: false,
        forces: false,
    };

    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || -> usize {
                let mut max_batch = 0usize;
                for r in 0..rounds {
                    let (pts, q) = system(n_per, (7000 + c * rounds + r) as u64);
                    let mut s = TcpStream::connect(&addr).expect("connect");
                    s.write_all(&protocol::MAGIC).expect("magic");
                    let req = EvalRequest {
                        shape,
                        positions: pts,
                        charges: q,
                    };
                    protocol::write_frame(&mut s, &protocol::encode_evaluate(&req)).expect("write");
                    let frame = protocol::read_frame(&mut s).expect("read");
                    let resp = protocol::decode_eval_response(&frame, false).expect("decode");
                    max_batch = max_batch.max(resp.batch_size);
                }
                max_batch
            })
        })
        .collect();
    let max_batch = handles
        .into_iter()
        .map(|h| h.join().expect("client"))
        .max()
        .unwrap_or(0);
    let elapsed = t0.elapsed().as_secs_f64();
    let total = clients * rounds;
    let stats = server.engine().registry().stats();
    server.shutdown();
    server.join();

    let rps = total as f64 / elapsed;
    let mut o = Obj::default();
    o.field("clients", clients)
        .field("requests", total)
        .field("particles_per_request", n_per)
        .field("requests_per_s", format_args!("{:.1}", rps))
        .field("max_coalesced_batch", max_batch)
        .field("plan_builds", stats.plan_builds)
        .field("plan_hits", stats.plan_hits);
    println!(
        "serve  {clients} clients x {rounds} rounds: {rps:.0} req/s end-to-end, \
         max batch {max_batch}, plan builds {}",
        stats.plan_builds
    );
    o.finish()
}

/// Higher-is-better rates gated by `--check`; wall-clock-free invariants
/// (bitwise identity, single plan build) are enforced unconditionally.
const RATE_KEYS: [&str; 3] = [
    "serial_requests_per_s",
    "batched_requests_per_s",
    "requests_per_s",
];

fn main() {
    let check = std::env::args().any(|a| a == "--check");

    // The acceptance shape: 64 small same-shape requests.
    let accept = bench_batch(5, 2, 64, 64);
    let deep = bench_batch(5, 3, 64, 128);
    let service = bench_service(16, 4, 64);

    let mut root = Obj::default();
    root.str_field("bench", "serve");
    root.str_field(
        "note",
        "coalesced multi-instance evaluation vs serial per-request evaluation; \
         single plan shared via the registry",
    );
    root.field(
        "nproc",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );
    root.field(
        "coalesced_batch",
        format_args!("[{},{}]", accept.json, deep.json),
    );
    root.field("service", service);
    let report = root.finish() + "\n";

    if !accept.bitwise || !deep.bitwise {
        eprintln!("FAIL: batched potentials are not bitwise identical to solo evaluation");
        std::process::exit(1);
    }
    if accept.plan_builds != 1 || deep.plan_builds != 1 {
        eprintln!("FAIL: a coalesced batch must build exactly one plan");
        std::process::exit(1);
    }

    if check {
        // Perf-regression gate: compare against the committed baseline
        // without overwriting it.
        let old = std::fs::read_to_string("BENCH_serve.json")
            .expect("--check needs a committed BENCH_serve.json baseline");
        let tolerance = fmm_bench::util::bench_tolerance(0.15);
        let failures = fmm_bench::util::check_regressions(&old, &report, &RATE_KEYS, tolerance);
        if failures.is_empty() {
            println!(
                "\nbench_serve --check: no regressions beyond {:.0}%",
                tolerance * 100.0
            );
        } else {
            eprintln!("\nbench_serve --check: throughput regressions detected:");
            for f in &failures {
                eprintln!("  {}", f);
            }
            eprintln!("(override with FMM_BENCH_TOLERANCE=<fraction>, e.g. 0.5)");
            std::process::exit(1);
        }
        return;
    }

    std::fs::write("BENCH_serve.json", report).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");

    if accept.speedup < 3.0 {
        eprintln!(
            "FAIL: coalesced batch speedup {:.2}x is below the 3x acceptance bar",
            accept.speedup
        );
        std::process::exit(1);
    }
}
