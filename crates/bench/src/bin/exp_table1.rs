//! **E11 — Paper Table 1 (our rows)**: efficiency and cycles/particle of
//! this implementation, with a Barnes–Hut quadrupole run in the same
//! harness (the class of codes the paper's Table 1 compares against) and
//! direct summation as the absolute baseline.
//!
//! Run: `cargo run --release -p fmm-bench --bin exp_table1 [n]`

use fmm_bench::util::{header, peak_gemm_gflops, rms_digits, time_s};
use fmm_bench::workloads::{direct_potentials, uniform, unit_charges};
use fmm_bh::BarnesHut;
use fmm_core::{Fmm, FmmConfig};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000);
    header("Table 1 — method comparison rows on this host");
    let positions = uniform(n, 1996);
    let charges = unit_charges(n);
    let ghz = 3.0;
    let ncpu = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(4);
    let peak = peak_gemm_gflops() * ncpu as f64; // crude machine peak
    println!(
        "N = {}, cores = {}, est. machine peak ≈ {:.1} Gflop/s\n",
        n, ncpu, peak
    );

    // Accuracy sampling against direct on a subset.
    let n_ref = 3000.min(n);
    let reference = direct_potentials(&positions[..n_ref], &charges[..n_ref]);

    println!(
        "{:<26} {:>10} {:>12} {:>14} {:>10} {:>7}",
        "method", "time (s)", "Gflop/s", "cycles/part", "eff (%)", "digits"
    );

    for d in [5usize, 14] {
        let fmm = Fmm::new(FmmConfig::order(d)).unwrap();
        let (t, out) = time_s(|| fmm.evaluate(&positions, &charges).unwrap());
        let flops = out.profile.total_flops() as f64;
        let acc = fmm
            .evaluate(&positions[..n_ref], &charges[..n_ref])
            .unwrap();
        let (_, digits) = rms_digits(&acc.potentials, &reference);
        println!(
            "{:<26} {:>10.3} {:>12.2} {:>14.0} {:>10.1} {:>7.2}",
            format!("Anderson D={} (K={})", d, fmm.k()),
            t,
            flops / t / 1e9,
            t * ghz * 1e9 * ncpu as f64 / n as f64,
            100.0 * flops / t / 1e9 / peak,
            digits
        );
    }

    for theta in [0.6f64, 0.3] {
        let (t_build, bh) = time_s(|| BarnesHut::build(&positions, &charges, 32));
        let (t_run, (pot, stats)) = time_s(|| bh.potentials(theta, false));
        let t = t_build + t_run;
        // Flops: node interactions ≈ 60 flops (quadrupole), pairs ≈ 10.
        let flops = stats.node_interactions as f64 * 60.0 + stats.pair_interactions as f64 * 10.0;
        let _ = pot;
        // Accuracy measured on the same n_ref subsystem as the FMM rows.
        let bh_small = BarnesHut::build(&positions[..n_ref], &charges[..n_ref], 32);
        let (pot_small, _) = bh_small.potentials(theta, false);
        let (_, digits) = rms_digits(&pot_small, &reference);
        println!(
            "{:<26} {:>10.3} {:>12.2} {:>14.0} {:>10.1} {:>7.2}",
            format!("Barnes-Hut θ={}", theta),
            t,
            flops / t / 1e9,
            t * ghz * 1e9 * ncpu as f64 / n as f64,
            100.0 * flops / t / 1e9 / peak,
            digits
        );
    }

    println!(
        "\nPaper's rows (256-node CM-5E, 100M particles): Anderson D=5: 27%\n\
         efficiency, 37K cycles/particle; D=14: 35%, 183K. BH quadrupole\n\
         codes: 26–30%, 97–266K cycles/particle. The comparable shape: the\n\
         FMM's flop rate (BLAS-heavy) exceeds BH's (irregular traversal),\n\
         while BH does fewer flops at low accuracy."
    );
}
