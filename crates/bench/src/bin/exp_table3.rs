//! **E2 — Paper Table 3**: leaf-level arithmetic efficiency of the
//! translation operators, aggregated (GEMM) vs per-box (GEMV), including
//! the gather/copy overhead.
//!
//! The paper reports, on a 256-node CM-5E: T1/T3 at 54–60% efficiency, T2
//! arithmetic at 74–85%, degrading to 44–74% once copying and masking are
//! included, with the small-K case (K=12) hurt much more than K=72
//! because the copy cost is linear in K while the GEMM is quadratic.
//! Here "efficiency" is the achieved flop rate of the traversal phase
//! relative to this host's peak dense GEMM rate.
//!
//! Run: `cargo run --release -p fmm-bench --bin exp_table3`

use fmm_bench::util::{best_of, header, peak_gemm_gflops};
use fmm_core::field::FieldHierarchy;
use fmm_core::plan::TraversalPlan;
use fmm_core::translations::TranslationSet;
use fmm_core::traversal::{downward_pass, upward_pass, Aggregation};
use fmm_core::SphereRule;
use fmm_tree::{Hierarchy, Separation};

fn run_case(d: usize, depth: u32, peak: f64) {
    let rule = SphereRule::for_order(d);
    let k = rule.len();
    let cfg = fmm_core::FmmConfig::order(d);
    let ts = TranslationSet::build(
        &rule,
        cfg.m_trunc,
        cfg.outer_ratio,
        cfg.inner_ratio,
        Separation::Two,
        false,
    );
    let plan = TraversalPlan::build(depth, Separation::Two);
    let mut fh = FieldHierarchy::new(Hierarchy::new(depth), k);
    // Pseudo-random leaf potentials.
    let mut state = 99u64;
    for v in fh.far[depth as usize].iter_mut() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }

    println!("-- D={} (K={}), depth {} --", d, k, depth);
    for (label, agg) in [
        ("GEMV (level-2 BLAS)", Aggregation::Gemv),
        ("GEMM (level-3 BLAS)", Aggregation::Gemm),
    ] {
        let mut up_flops = 0;
        let (t_up, _) = best_of(3, || {
            let mut f = fh.clone();
            let fl = upward_pass(&mut f, &ts, &plan, agg, false);
            up_flops = fl.t1;
        });
        let mut down = Default::default();
        let (t_down, _) = best_of(3, || {
            let mut f = fh.clone();
            upward_pass(&mut f, &ts, &plan, Aggregation::Gemm, false);
            let t0 = std::time::Instant::now();
            down = downward_pass(&mut f, &ts, &plan, false, agg, false);
            t0.elapsed().as_secs_f64()
        });
        // t_down includes the upward pre-pass; re-time just the downward.
        let mut f = fh.clone();
        upward_pass(&mut f, &ts, &plan, Aggregation::Gemm, false);
        let (t_down_only, _) = best_of(3, || {
            let mut g = f.clone();
            downward_pass(&mut g, &ts, &plan, false, agg, false)
        });
        let _ = (t_down, t_up);
        let gf_up = up_flops as f64 / t_up / 1e9;
        let gf_down = (down.t2 + down.t3) as f64 / t_down_only / 1e9;
        println!(
            "  {:<22} T1: {:>6.2} Gflop/s ({:>4.1}% of peak)   T2+T3 incl. copy: {:>6.2} Gflop/s ({:>4.1}% of peak)",
            label,
            gf_up,
            100.0 * gf_up / peak,
            gf_down,
            100.0 * gf_down / peak
        );
    }
}

fn main() {
    header("Table 3 — leaf-level arithmetic efficiency of translations");
    let peak = peak_gemm_gflops();
    println!("host peak dense GEMM: {:.2} Gflop/s (single core)\n", peak);
    // Paper cases: K = 12 (depth 8 there; scaled down here) and K = 72
    // (our degree-14 product rule has K = 120).
    run_case(5, 5, peak);
    run_case(14, 4, peak);
    println!(
        "\nPaper (256-node CM-5E): K=12: T1/T3 54%, T2 74%, incl. copy+mask 44%;\n\
         K=72: T1/T3 60%, T2 85%, incl. copy+mask 74%. The shape to check:\n\
         aggregation (GEMM) beats GEMV, and the copy overhead hurts small K\n\
         (cost linear in K) far more than large K (GEMM quadratic in K)."
    );
}
