//! Parameter calibration sweep: for each integration order D, sweep sphere
//! radius ratios and truncation M and report the end-to-end RMS error of a
//! depth-3 FMM against direct summation. The winners become the defaults
//! in `FmmConfig::order` (the paper's Table 2 role).

use fmm_core::{relative_error_stats, Fmm, FmmConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn direct(positions: &[[f64; 3]], charges: &[f64]) -> Vec<f64> {
    let n = positions.len();
    let mut out = vec![0.0; n];
    for i in 0..n {
        let mut acc = 0.0;
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = [
                positions[i][0] - positions[j][0],
                positions[i][1] - positions[j][1],
                positions[i][2] - positions[j][2],
            ];
            acc += charges[j] / (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
        }
        out[i] = acc;
    }
    out
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(12345);
    let n = 3000;
    let positions: Vec<[f64; 3]> = (0..n)
        .map(|_| [rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()])
        .collect();
    let charges = vec![1.0f64; n]; // gravitational convention: same sign
    let reference = direct(&positions, &charges);

    let args: Vec<String> = std::env::args().collect();
    let orders: Vec<usize> = if args.len() > 1 {
        args[1..].iter().map(|s| s.parse().unwrap()).collect()
    } else {
        vec![5]
    };

    for d in orders {
        println!("== D = {} (K = {}) ==", d, FmmConfig::order(d).rule().len());
        for &(outer, inner) in &[
            (1.0, 1.0),
            (1.2, 1.2),
            (1.4, 1.4),
            (1.4, 1.0),
            (1.6, 1.0),
            (1.8, 1.0),
            (1.0, 1.6),
        ] {
            for m in [d / 2, d / 2 + 1, d / 2 + 2, d / 2 + 3] {
                let cfg = FmmConfig::order(d)
                    .depth(3)
                    .radii(outer, inner)
                    .truncation(m);
                if cfg.validate().is_err() {
                    continue;
                }
                let fmm = Fmm::new(cfg).unwrap();
                let out = fmm.evaluate(&positions, &charges).unwrap();
                let st = relative_error_stats(&out.potentials, &reference);
                println!(
                    "  outer={:<4} inner={:<4} M={:<3} rms_rel={:.3e} max_rel={:.3e} digits={:.2}",
                    outer,
                    inner,
                    m,
                    st.rms_rel,
                    st.max_rel,
                    st.digits()
                );
            }
        }
    }
}
