//! **E10b — §2.3 supernodes**: reducing the effective interactive field
//! from 875 to 189 translations per box, "a dramatic improvement in the
//! overall performance, at the cost of slightly decreased accuracy".
//!
//! Run: `cargo run --release -p fmm-bench --bin exp_supernode [n]`

use fmm_bench::util::{header, rms_digits, time_s};
use fmm_bench::workloads::{direct_potentials, uniform, unit_charges};
use fmm_core::{Fmm, FmmConfig, Phase};
use fmm_tree::{supernode_decomposition, Separation};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    header("Supernodes — 875 → 189 interactive-field translations (§2.3)");
    let sd = supernode_decomposition([0, 0, 0], Separation::Two);
    println!(
        "decomposition: {} parent supernodes + {} leftover children = {} translations (covers {})",
        sd.parents.len(),
        sd.children.len(),
        sd.translation_count(),
        sd.covered_boxes()
    );

    let positions = uniform(n, 321);
    let charges = unit_charges(n);
    // Accuracy reference on a subsampled system (direct is O(N²)).
    let n_ref = 3000.min(n);
    let ref_pos = &positions[..n_ref];
    let ref_q = &charges[..n_ref];
    let reference = direct_potentials(ref_pos, ref_q);

    println!(
        "\n{:>11} {:>10} {:>14} {:>14} {:>12} {:>7}",
        "supernodes", "time (s)", "T2 time (s)", "T2 flops", "rms_rel", "digits"
    );
    for sup in [false, true] {
        let fmm = Fmm::new(FmmConfig::order(5).depth(4).supernodes(sup)).unwrap();
        let (t, out) = time_s(|| fmm.evaluate(&positions, &charges).unwrap());
        let t2 = out.profile.phase_time(Phase::Interactive).as_secs_f64();
        let acc_out = fmm.evaluate(ref_pos, ref_q).unwrap();
        let (rms, digits) = rms_digits(&acc_out.potentials, &reference);
        println!(
            "{:>11} {:>10.3} {:>14.3} {:>14.2e} {:>12.3e} {:>7.2}",
            sup, t, t2, out.traversal_flops.t2 as f64, rms, digits
        );
    }
    println!(
        "\nThe T2 flop count drops by 875/189 ≈ 4.6×; the paper calls the\n\
         accuracy cost \"slightly decreased\" — quantified here (parent-level\n\
         sources sit at a worse a/r ratio, so some digits are lost)."
    );
}
