//! **E4 — Paper Fig. 7**: Multigrid-embed via general send vs the
//! local-copy / two-step scheme, as a function of the temporary array
//! size (boxes at the level being embedded).
//!
//! The paper measured up to two orders of magnitude improvement; the
//! two-step scheme is used when a level has fewer boxes than VUs, local
//! copy otherwise.
//!
//! Run: `cargo run --release -p fmm-bench --bin exp_fig7`

use fmm_bench::util::header;
use fmm_machine::multigrid::{best_method, embed_counters, EmbedMethod};
use fmm_machine::CostModel;

fn main() {
    header("Fig. 7 — Multigrid-embed: general send vs local-copy / two-step");
    let n_vus = 1024; // 256-node CM-5E
    let k = 12;
    let dest = 1usize << 24; // leaf-level layer of the 5-D potential array
    let cost = CostModel::cm5e();
    println!(
        "machine: {} VUs, destination array {} boxes, K = {}\n",
        n_vus, dest, k
    );
    println!(
        "{:>12} {:>14} {:>14} {:>12} {:>8}",
        "temp boxes", "send (s)", "ours (s)", "method", "speedup"
    );
    let mut n = 4096usize; // 4K .. 16M, the paper's x-axis
    while n <= (1 << 24) {
        let send = cost.time_s(&embed_counters(n, dest, n_vus, EmbedMethod::GeneralSend), k);
        let method = best_method(n, n_vus);
        let ours = cost.time_s(&embed_counters(n, dest, n_vus, method), k);
        println!(
            "{:>12} {:>14.4} {:>14.6} {:>12} {:>8.1}",
            n,
            send,
            ours,
            method.name(),
            send / ours
        );
        n *= 8; // one hierarchy level per point, as in the paper
    }
    println!(
        "\nPaper: the send curve sits one to two orders of magnitude above\n\
         the local-copy/two-step curve across 4K–16M boxes (two-step used\n\
         for the first two sizes on their 1024-VU machine)."
    );
}
