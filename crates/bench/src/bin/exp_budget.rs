//! **E9b — abstract communication/efficiency claims**: the whole-program
//! communication budget of the paper's two 100M-particle configurations,
//! assembled from the machine simulator's per-phase counting.
//!
//! Run: `cargo run --release -p fmm-bench --bin exp_budget`

use fmm_bench::util::header;
use fmm_machine::{communication_budget, CostModel, ProgramConfig};

fn show(name: &str, cfg: &ProgramConfig, cost: &CostModel) {
    let b = communication_budget(cfg);
    println!(
        "\n-- {} (depth {}, K = {}, {:.0}M particles, {} VUs, supernodes {}) --",
        name,
        cfg.depth,
        cfg.k,
        cfg.n_particles() / 1e6,
        cfg.vu_grid.len(),
        cfg.supernodes
    );
    println!(
        "{:<18} {:>12} {:>14} {:>12}",
        "phase", "comm (s)", "flops", "compute (s)"
    );
    for p in &b.phases {
        println!(
            "{:<18} {:>12.3} {:>14.3e} {:>12.3}",
            p.name,
            cost.time_s(&p.comm, b.config_k),
            p.compute_flops as f64,
            p.compute_flops as f64 * cost.flop_ns * 1e-9
        );
    }
    println!(
        "communication fraction: {:.1}%   efficiency (at 50% kernel efficiency): {:.1}%",
        100.0 * b.comm_fraction(cost),
        100.0 * b.efficiency(cost, cost.flop_ns / 2.0)
    );
}

fn main() {
    header("Whole-program communication budget (paper: comm 10–25%, efficiency ~35%)");
    let cost = CostModel::cm5e();
    show("D = 5", &ProgramConfig::paper_d5(), &cost);
    show("D = 14", &ProgramConfig::paper_d14(), &cost);
    println!(
        "\nThe D=5 budget reproduces the paper's communication share; the\n\
         D=14 one shows the *minimal* data motion for K=72 is compute-bound\n\
         (~2%) — the paper's 25% there includes CM runtime overheads beyond\n\
         minimal motion (whole-subgrid moves, per-call costs). See\n\
         EXPERIMENTS.md."
    );
}
