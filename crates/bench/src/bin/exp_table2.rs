//! **E1 — Paper Table 2**: parameter selections and measured error decay
//! rate of the outer/inner sphere approximations per integration order D.
//!
//! The paper's Table 2 lists, for each D: the number of integration points
//! K, the truncation M, the sphere radii, and the *expected error decay
//! rate* (exponent D/2+2). Its radii digits did not survive OCR, so this
//! experiment plays the table's role: it reports our calibrated (M, radii)
//! per D, the measured end-to-end RMS error of a depth-3 FMM against
//! direct summation, and the decay rate fitted across successive D.
//!
//! Run: `cargo run --release -p fmm-bench --bin exp_table2`

use fmm_bench::util::{header, rms_digits};
use fmm_bench::workloads::{direct_potentials, uniform, unit_charges};
use fmm_core::{Fmm, FmmConfig};

fn main() {
    header("Table 2 — error decay of Anderson's approximations per integration order D");
    let n = 3000;
    let positions = uniform(n, 12345);
    let charges = unit_charges(n);
    let reference = direct_potentials(&positions, &charges);

    println!(
        "{:>3} {:>5} {:>3} {:>7} {:>7} {:>12} {:>7} {:>16}",
        "D", "K", "M", "a_out", "a_in", "rms_rel", "digits", "decay vs prev D"
    );
    let orders = [2usize, 3, 5, 7, 9, 11, 14];
    let mut prev: Option<(usize, f64)> = None;
    for &d in &orders {
        let cfg = FmmConfig::order(d).depth(3);
        let (m, aout, ain) = (cfg.m_trunc, cfg.outer_ratio, cfg.inner_ratio);
        let k = cfg.rule().len();
        let fmm = Fmm::new(cfg).unwrap();
        let out = fmm.evaluate(&positions, &charges).unwrap();
        let (rms, digits) = rms_digits(&out.potentials, &reference);
        // Fitted decay exponent between consecutive orders, interpreting
        // error ~ c^D: exponent = Δlog(err)/ΔD (the paper's expected rate
        // is error ∝ c^(D/2+2) for a fixed geometry ratio c).
        let decay = prev
            .map(|(pd, perr)| ((rms.ln() - perr.ln()) / (d as f64 - pd as f64)).exp())
            .map(|r| format!("{:.3} per ΔD=1", r))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:>3} {:>5} {:>3} {:>7.2} {:>7.2} {:>12.3e} {:>7.2} {:>16}",
            d, k, m, aout, ain, rms, digits, decay
        );
        prev = Some((d, rms));
    }
    println!(
        "\nPaper's headline: D=5 → ~4 digits, D=14 → ~7 digits (abstract);\n\
         expected decay exponent grows like D/2+2 — i.e. roughly a constant\n\
         factor per unit D, visible in the right-hand column."
    );
}
