//! **E12 — §3.2 coordinate sort**: sorting particles by keys built from
//! VU-address and local-address bits aligns particles with the VUs owning
//! their leaf boxes, turning the 1-D → 4-D reshape into a local copy.
//!
//! Measures, for uniform / jittered / clustered distributions, the
//! fraction of particles whose sorted-array VU equals the owner VU of
//! their leaf box (the paper: "for a uniform particle distribution … each
//! particle … will be allocated to the same VU"; "for a near uniform
//! distribution … most particles").
//!
//! Run: `cargo run --release -p fmm-bench --bin exp_sort`

use fmm_bench::util::header;
use fmm_bench::workloads::{clustered, jittered_grid, uniform};
use fmm_tree::{coordinate_sort, CoordinateSortKey, Domain};

fn locality_fraction(positions: &[[f64; 3]], level: u32, vu_grid: [u32; 3]) -> f64 {
    let domain = Domain::unit();
    let layout = CoordinateSortKey::for_vu_grid(level, vu_grid);
    let (perm, _keys) = coordinate_sort(positions, &domain, level, layout);
    let n = positions.len() as u64;
    let n_vus = layout.vu_count();
    // Sorted array is block-distributed over VUs: sorted index i lives on
    // VU floor(i * n_vus / n). The box's owner VU comes from the layout.
    let mut matches = 0u64;
    for (i, &orig) in perm.iter().enumerate() {
        let p = positions[orig as usize];
        let owner = layout.vu_of(domain.locate(p, level));
        let holder = (i as u64 * n_vus) / n;
        if owner == holder {
            matches += 1;
        }
    }
    matches as f64 / n as f64
}

fn main() {
    header("Coordinate sort — particle/box VU locality (§3.2)");
    let n = 262_144; // 2048 per VU on the 128-VU machine below
    let level = 5; // 32³ leaf boxes
    let vu_grid = [8u32, 4, 4]; // 128 VUs, 4×8×8 subgrids
    println!(
        "N = {}, leaf level {} (32³ boxes), {}×{}×{} = 128 VUs\n",
        n, level, vu_grid[0], vu_grid[1], vu_grid[2]
    );
    println!("{:<28} {:>18}", "distribution", "on-owner fraction");
    let cases: [(&str, Vec<[f64; 3]>); 4] = [
        ("uniform", uniform(n, 7)),
        ("jittered grid (j=0.5)", jittered_grid(64, 0.5, 8)),
        ("jittered grid (j=2.0)", jittered_grid(64, 2.0, 9)),
        ("clustered (Plummer-like)", clustered(n, 10)),
    ];
    for (name, pts) in cases {
        let f = locality_fraction(&pts, level, vu_grid);
        println!("{:<28} {:>17.1}%", name, 100.0 * f);
    }
    println!(
        "\nPaper: with ≥1 leaf box per VU and a uniform distribution, every\n\
         particle lands on its box's VU (no communication in the reshape);\n\
         near-uniform distributions keep most particles local; clustered\n\
         ones degrade — the load-balance limitation of the non-adaptive\n\
         method (§3.5)."
    );
}
