//! **E7 — Abstract / §4 accuracy claim**: "expected four and seven digits
//! of accuracy" for the D = 5 and D = 14 configurations.
//!
//! Compares FMM potentials against direct summation for uniform
//! unit-charge systems (the paper's gravitational convention) and, as a
//! harsher metric, mixed-sign charges.
//!
//! Run: `cargo run --release -p fmm-bench --bin exp_accuracy`

use fmm_bench::util::{header, rms_digits};
use fmm_bench::workloads::{direct_potentials, mixed_charges, uniform, unit_charges};
use fmm_core::{Fmm, FmmConfig};

fn main() {
    header("Accuracy — paper: D=5 → ~4 digits, D=14 → ~7 digits");
    let n = 5000;
    let positions = uniform(n, 777);

    for (label, charges) in [
        ("unit charges (gravitational)", unit_charges(n)),
        ("mixed-sign charges (plasma)", mixed_charges(n, 778)),
    ] {
        let reference = direct_potentials(&positions, &charges);
        println!("\n-- {} --", label);
        println!(
            "{:>3} {:>5} {:>6} {:>12} {:>7}",
            "D", "K", "depth", "rms_rel", "digits"
        );
        for d in [5usize, 14] {
            for depth in [2u32, 3] {
                let fmm = Fmm::new(FmmConfig::order(d).depth(depth)).unwrap();
                let out = fmm.evaluate(&positions, &charges).unwrap();
                let (rms, digits) = rms_digits(&out.potentials, &reference);
                println!(
                    "{:>3} {:>5} {:>6} {:>12.3e} {:>7.2}",
                    d,
                    fmm.k(),
                    depth,
                    rms,
                    digits
                );
            }
        }
    }
    println!(
        "\nThe paper's digits are quoted for uniform (same-sign) systems;\n\
         mixed-sign systems lose digits in the *relative* metric because the\n\
         reference potential fluctuates around zero while absolute errors\n\
         stay at the same scale."
    );
}
