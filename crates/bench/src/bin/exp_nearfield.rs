//! **E13 — §3.4 near-field symmetry**: Newton's third law turns 124
//! neighbour box–box interactions into 62, roughly halving the pairwise
//! work; the CSHIFTs that carry the travelling accumulators are 10–15% of
//! the near-field time on the CM-5E.
//!
//! Run: `cargo run --release -p fmm-bench --bin exp_nearfield [n]`

use fmm_bench::util::{header, time_s};
use fmm_bench::workloads::{uniform, unit_charges};
use fmm_core::particles::BinnedParticles;
use fmm_core::{near_field_potentials, near_field_symmetric};
use fmm_machine::{CostModel, Counters};
use fmm_tree::{Domain, Separation};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    header("Near field — exploiting Newton's third law (§3.4)");
    let positions = uniform(n, 55);
    let charges = unit_charges(n);
    let depth = 4;
    let bp = BinnedParticles::build(&positions, &charges, Domain::unit(), depth);
    println!(
        "N = {}, depth {} ({} leaf boxes)\n",
        n,
        depth,
        1 << (3 * depth)
    );

    let mut out = vec![0.0; n];
    let (t_tc, st_tc) = time_s(|| near_field_potentials(&bp, Separation::Two, false, &mut out));
    let st_tc = {
        out.iter_mut().for_each(|x| *x = 0.0);
        st_tc
    };
    let (t_sym, (pot_sym, st_sym)) = time_s(|| near_field_symmetric(&bp, Separation::Two));

    println!(
        "{:<24} {:>14} {:>12} {:>10}",
        "kernel", "pair inters", "box pairs", "time (s)"
    );
    println!(
        "{:<24} {:>14} {:>12} {:>10.3}",
        "target-centric (124)", st_tc.pair_interactions, st_tc.box_pairs, t_tc
    );
    println!(
        "{:<24} {:>14} {:>12} {:>10.3}",
        "symmetric (62)", st_sym.pair_interactions, st_sym.box_pairs, t_sym
    );
    println!(
        "pair reduction: {:.2}×",
        st_tc.pair_interactions as f64 / st_sym.pair_interactions as f64
    );
    let check: f64 = pot_sym.iter().sum();
    println!(
        "(symmetric result checksum {:.6e} — matches target-centric)",
        check
    );

    // CSHIFT share model: the travelling-accumulator scheme does 62
    // single-step CSHIFTs of the 4-D particle arrays per sweep. Lay this
    // problem's leaf grid over a 64-VU machine (4³ subgrids) and compare
    // the per-VU shift cost against the per-VU pairwise compute.
    let cost = CostModel::cm5e();
    let n_vus = 64u64;
    let boxes_per_vu = (1u64 << (3 * depth)) / n_vus; // 4³ = 64
    let subgrid_axis = 4u64;
    let parts_per_box = (n as u64 >> (3 * depth)).max(1);
    let comm = Counters {
        cshifts: 62,
        // a unit CSHIFT moves 1/S of each VU's particle boxes off-VU
        off_vu_boxes: 62 * boxes_per_vu / subgrid_axis * parts_per_box,
        local_box_moves: 62 * boxes_per_vu * (subgrid_axis - 1) / subgrid_axis * parts_per_box,
        ..Default::default()
    };
    let t_comm = cost.time_s(&comm, 4); // x,y,z,q per particle
    let flops = Counters {
        flops: st_sym.flops / n_vus,
        ..Default::default()
    };
    let t_comp = cost.time_s(&flops, 1);
    println!(
        "\nsimulated CM-5E near-field ({} VUs): CSHIFT share = {:.1}% (paper: 10–15%)",
        n_vus,
        100.0 * t_comm / (t_comm + t_comp)
    );
}
