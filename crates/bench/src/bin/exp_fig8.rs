//! **E5 — Paper Fig. 8**: precomputing the eight T1 (T3) translation
//! matrices — compute on every VU vs compute in parallel + replicate,
//! with and without grouping into eight-VU groups, as K varies.
//!
//! Paper: compute+replicate costs 66%→24% of all-redundant as K goes
//! 12→72; grouping cuts the replication by 1.75×→1.26×.
//!
//! Run: `cargo run --release -p fmm-bench --bin exp_fig8`

use fmm_bench::util::header;
use fmm_machine::replication::{precompute_cost, ReplicationStrategy};
use fmm_machine::CostModel;

fn main() {
    header("Fig. 8 — computation vs replication for the 8 T1/T3 matrices (1024 VUs)");
    let n_vus = 1024;
    let n_mat = 8;
    let cost = CostModel::cm5e();
    println!(
        "{:>4} {:>3} {:>14} {:>14} {:>14} {:>16} {:>16}",
        "K",
        "M",
        "all-redundant",
        "par+replicate",
        "par+rep(grp 8)",
        "rep share(all)",
        "rep share(grp)"
    );
    for (k, m) in [(12usize, 3usize), (24, 4), (32, 4), (50, 5), (72, 8)] {
        let red = precompute_cost(
            n_mat,
            k,
            m,
            n_vus,
            ReplicationStrategy::ComputeAllRedundant,
            0,
            &cost,
        );
        let rep = precompute_cost(
            n_mat,
            k,
            m,
            n_vus,
            ReplicationStrategy::ComputeAndReplicate { group: None },
            n_mat,
            &cost,
        );
        let grp = precompute_cost(
            n_mat,
            k,
            m,
            n_vus,
            ReplicationStrategy::ComputeAndReplicate { group: Some(8) },
            n_mat,
            &cost,
        );
        println!(
            "{:>4} {:>3} {:>13.2}ms {:>13.2}ms {:>13.2}ms {:>15.0}% {:>15.0}%",
            k,
            m,
            red.total_s() * 1e3,
            rep.total_s() * 1e3,
            grp.total_s() * 1e3,
            100.0 * rep.replicate_s / rep.total_s(),
            100.0 * grp.replicate_s / grp.total_s()
        );
    }
    println!(
        "\nPaper: parallel-compute+replicate costs 66%→24% of the all-redundant\n\
         scheme as K grows 12→72; grouping (8 VUs) reduces the replication\n\
         cost by 1.75×→1.26× (latency-dominated at small K, bandwidth at large)."
    );
}
