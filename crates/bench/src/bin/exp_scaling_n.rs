//! **E8 — §4 / abstract scaling claim**: "the speed of the code scales
//! linearly with … the number of particles".
//!
//! Sweeps N at the auto-chosen (optimal) hierarchy depth and reports the
//! time per particle and the paper's cross-implementation metric,
//! *cycles per particle* (wall time × clock / N). Linear scaling shows as
//! a flat time-per-particle column (stepping slightly at depth changes).
//!
//! Run: `cargo run --release -p fmm-bench --bin exp_scaling_n [max_n]`

use fmm_bench::util::{header, time_s};
use fmm_bench::workloads::{uniform, unit_charges};
use fmm_core::{Fmm, FmmConfig, Phase};

fn main() {
    header("Scaling in N — time per particle at auto depth (D = 5, K = 12)");
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    // A rough clock estimate for the cycles/particle column.
    let ghz = 3.0;
    println!(
        "{:>9} {:>6} {:>10} {:>12} {:>14} {:>11} {:>11}",
        "N", "depth", "time (s)", "µs/particle", "cycles/part", "near %", "trav %"
    );
    let fmm = Fmm::new(FmmConfig::order(5)).unwrap();
    let mut n = 31_250;
    while n <= max_n {
        let positions = uniform(n, 42 + n as u64);
        let charges = unit_charges(n);
        let (t, out) = time_s(|| fmm.evaluate(&positions, &charges).unwrap());
        let near = out.profile.phase_time(Phase::Near).as_secs_f64();
        let trav = out.profile.traversal_time().as_secs_f64();
        println!(
            "{:>9} {:>6} {:>10.3} {:>12.3} {:>14.0} {:>10.1}% {:>10.1}%",
            n,
            out.depth,
            t,
            t / n as f64 * 1e6,
            t / n as f64 * ghz * 1e9,
            100.0 * near / t,
            100.0 * trav / t
        );
        n *= 4;
    }
    println!(
        "\nPaper (256-node CM-5E): 37K cycles/particle at D=5, 183K at D=14,\n\
         and linear scaling in N. The shape to check: flat µs/particle as N\n\
         grows 64× (sawtooth at depth transitions is the §2.3 near-field /\n\
         traversal balance)."
    );
}
