//! Machine-readable kernel benchmark: emits `BENCH_kernels.json`.
//!
//! Covers the three optimization layers of this repo's kernel work:
//!
//! 1. **GEMM microkernels** — scalar blocked loop vs the explicit
//!    AVX2+FMA register-tiled kernel, on the panel shapes the traversal
//!    actually runs (K×K translation matrices applied to n-box panels;
//!    the paper's K = 12 and K = 72 operating points plus our K = 120
//!    product rule).
//! 2. **Near field** — target-centric parallel sweep vs the symmetric
//!    colored sweep (Newton's third law + 8-color conflict-free blocks).
//! 3. **End-to-end `evaluate()`** — first call (builds the traversal
//!    plan) vs repeat call (plan cache hit), the regime of a time-stepping
//!    loop.
//!
//! 4. **SPMD data motion** — the message-passing executor's measured
//!    per-phase messages/bytes against `fmm_machine::communication_budget`
//!    on the Table-4 configuration, plus wall-clock scaling over worker
//!    counts; written to `BENCH_spmd.json`.
//!
//! 5. **Load balance** — per-worker flop and busy-time spreads of the
//!    uniform block layout vs the cost-weighted partition on clustered
//!    distributions (Plummer, two-cluster) at p ∈ {2, 8}; written to
//!    `BENCH_balance.json`. The flop counters are deterministic, so
//!    `--check` gates them strictly: cost-weighted imbalance must stay
//!    under 10% at p = 8 where uniform exceeds 3x, with bitwise-identical
//!    outputs.
//!
//! JSON is written by hand — the harness has no serde dependency.
//!
//! Run: `cargo run --release -p fmm-bench --bin bench_json [--seeded|--check]`
//!
//! `--seeded` emits only the deterministic SPMD data-motion report (no
//! wall-clock numbers): two runs produce byte-identical
//! `BENCH_spmd.json`, which CI diffs to pin executor determinism.
//!
//! `--check` is the perf-regression gate: re-measures the kernel rates
//! and fails (exit 1) if any GEMM GFLOP/s or near-field interactions/s
//! figure drops more than 15% below the committed `BENCH_kernels.json`.
//! Override the threshold with `FMM_BENCH_TOLERANCE=<fraction>` — CI
//! shared runners use 0.5.

use fmm_bench::util::best_of;
use fmm_bench::workloads::{mixed_charges, uniform, unit_charges, Distribution};
use fmm_core::near::{near_field_potentials, near_field_symmetric_colored, ColorSchedule};
use fmm_core::near32::near_field_potentials_f32;
use fmm_core::particles::BinnedParticles;
use fmm_core::{Balance, Domain, Executor, Fmm, FmmConfig, Separation, SpmdReport};
use fmm_linalg::{gemm_acc_with, gemm_flops, Kernel};
use fmm_machine::{communication_budget, Counters, ProgramConfig, VuGrid};
use std::fmt::Write as _;

/// Minimal JSON object builder (strings, numbers, raw nested values).
#[derive(Default)]
struct Obj {
    body: String,
}

impl Obj {
    fn field(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        let _ = write!(self.body, "\"{}\":{}", key, value);
        self
    }

    fn str_field(&mut self, key: &str, value: &str) -> &mut Self {
        self.field(key, format_args!("\"{}\"", value))
    }

    fn finish(&self) -> String {
        format!("{{{}}}", self.body)
    }
}

fn json_array(items: impl IntoIterator<Item = String>) -> String {
    let v: Vec<String> = items.into_iter().collect();
    format!("[{}]", v.join(","))
}

fn pseudo(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
        .collect()
}

/// GFLOP/s of `C += A·B` for an `n × k` panel against a `k × k` matrix.
fn gemm_rate(kernel: Kernel, n: usize, k: usize) -> f64 {
    let a = pseudo(1, n * k);
    let b = pseudo(2, k * k);
    let mut c = vec![0.0; n * k];
    let flops = gemm_flops(n, k, k) as f64;
    // Warm-up plus best-of to suppress clock ramp noise.
    gemm_acc_with(kernel, n, k, k, &a, &b, &mut c);
    let (t, _) = best_of(5, || gemm_acc_with(kernel, n, k, k, &a, &b, &mut c));
    flops / t / 1e9
}

/// JSON-friendly key for a microkernel family: `avx2+fma` → `avx2_fma`.
fn family_key(kernel: Kernel) -> String {
    kernel.name().replace('+', "_")
}

fn bench_gemm() -> (String, f64) {
    let n = 2048; // panel rows: boxes aggregated per slab at depth ≥ 4
    let families = Kernel::available();
    let mut entries = Vec::new();
    let mut speedup_k72 = 0.0;
    for k in [12, 72, 120] {
        let mut o = Obj::default();
        o.field("k", k).field("panel_rows", n);
        let mut scalar = 0.0;
        let mut best = (Kernel::Scalar, 0.0f64);
        let mut line = format!("gemm K={:<3} n={} ", k, n);
        for &kernel in &families {
            let rate = gemm_rate(kernel, n, k);
            o.field(
                &format!("{}_gflops", family_key(kernel)),
                format_args!("{:.3}", rate),
            );
            let _ = write!(line, " {} {:>6.2} GF/s ", kernel.name(), rate);
            if kernel == Kernel::Scalar {
                scalar = rate;
            }
            if rate > best.1 {
                best = (kernel, rate);
            }
        }
        let speedup = best.1 / scalar;
        if k == 72 {
            speedup_k72 = speedup;
        }
        println!("{} ({:.2}x best/scalar)", line, speedup);
        o.str_field("best_kernel", best.0.name())
            .field("speedup", format_args!("{:.3}", speedup));
        entries.push(o.finish());
    }
    (json_array(entries), speedup_k72)
}

fn bench_near() -> String {
    let depth = 4u32;
    let n = 120_000;
    let pts = uniform(n, 77);
    let q = unit_charges(n);
    let domain = Domain::bounding(&pts);
    let bp = BinnedParticles::build(&pts, &q, domain, depth);
    let schedule = ColorSchedule::build(depth);
    let sep = Separation::Two;

    let mut out = vec![0.0; n];
    // Warm-up both paths once.
    let tc_stats = near_field_potentials(&bp, sep, true, &mut out);
    let (t_target, _) = best_of(3, || {
        out.iter_mut().for_each(|x| *x = 0.0);
        near_field_potentials(&bp, sep, true, &mut out)
    });
    let sym_stats = near_field_symmetric_colored(&bp, sep, &schedule, true, 0.0, &mut out);
    let (t_sym, _) = best_of(3, || {
        out.iter_mut().for_each(|x| *x = 0.0);
        near_field_symmetric_colored(&bp, sep, &schedule, true, 0.0, &mut out)
    });
    // Mixed-precision variant of the same colored sweep (f32 SIMD lanes,
    // f64 accumulation across box pairs).
    let detected = Kernel::detect();
    near_field_potentials_f32(detected, &bp, sep, &schedule, true, 0.0, &mut out);
    let (t_f32, _) = best_of(3, || {
        out.iter_mut().for_each(|x| *x = 0.0);
        near_field_potentials_f32(detected, &bp, sep, &schedule, true, 0.0, &mut out)
    });

    // Throughput in *physical* interactions per second: the symmetric
    // sweep visits each pair once but updates both endpoints, so its
    // effective interaction count equals the target-centric one.
    let tc_rate = tc_stats.pair_interactions as f64 / t_target / 1e6;
    let sym_rate = tc_stats.pair_interactions as f64 / t_sym / 1e6;
    let f32_rate = tc_stats.pair_interactions as f64 / t_f32 / 1e6;
    println!(
        "near field n={} depth={}  target-centric {:.1} ms ({:.0} M int/s)  colored-symmetric {:.1} ms ({:.0} M int/s, {:.2}x)  f32 {:.1} ms ({:.0} M int/s, {:.2}x vs f64)",
        n,
        depth,
        t_target * 1e3,
        tc_rate,
        t_sym * 1e3,
        sym_rate,
        t_target / t_sym,
        t_f32 * 1e3,
        f32_rate,
        t_sym / t_f32
    );

    let mut o = Obj::default();
    o.field("n_particles", n)
        .field("depth", depth)
        .field("target_centric_seconds", format_args!("{:.6}", t_target))
        .field("colored_symmetric_seconds", format_args!("{:.6}", t_sym))
        .field("f32_colored_seconds", format_args!("{:.6}", t_f32))
        .field("target_centric_pairs", tc_stats.pair_interactions)
        .field("symmetric_pairs", sym_stats.pair_interactions)
        .field(
            "target_centric_minteractions_per_s",
            format_args!("{:.1}", tc_rate),
        )
        .field(
            "colored_symmetric_minteractions_per_s",
            format_args!("{:.1}", sym_rate),
        )
        .field("f32_minteractions_per_s", format_args!("{:.1}", f32_rate))
        .str_field("f32_kernel", detected.name())
        .field("speedup", format_args!("{:.3}", t_target / t_sym))
        .field("f32_speedup", format_args!("{:.3}", t_sym / t_f32));
    o.finish()
}

fn bench_evaluate() -> String {
    let n = 40_000;
    let pts = uniform(n, 101);
    let q = unit_charges(n);
    let fmm = Fmm::new(FmmConfig::order(5).depth(4)).unwrap();

    let t0 = std::time::Instant::now();
    let first = fmm.evaluate(&pts, &q).unwrap();
    let t_first = t0.elapsed().as_secs_f64();
    assert_eq!(fmm.plan_builds(), 1);

    // The same configuration with the fused level sweeps disabled —
    // isolates the cache-residency win of fusing P2O→T1 and T3→eval.
    // The two variants are round-robined so slow machine-load drift
    // cancels out of the ratio instead of biasing whichever ran second.
    let unfused = Fmm::new(FmmConfig::order(5).depth(4).fused(false)).unwrap();
    unfused.evaluate(&pts, &q).unwrap();
    let mut t_repeat = f64::INFINITY;
    let mut t_unfused = f64::INFINITY;
    for _ in 0..5 {
        let t0 = std::time::Instant::now();
        fmm.evaluate(&pts, &q).unwrap();
        t_repeat = t_repeat.min(t0.elapsed().as_secs_f64());
        let t0 = std::time::Instant::now();
        unfused.evaluate(&pts, &q).unwrap();
        t_unfused = t_unfused.min(t0.elapsed().as_secs_f64());
    }
    assert_eq!(
        fmm.plan_builds(),
        1,
        "repeat evaluations must hit the plan cache"
    );

    println!(
        "evaluate n={} depth={}  first {:.1} ms (plan build)  repeat {:.1} ms (cache hit)  unfused repeat {:.1} ms ({:.2}x from fusion)",
        n,
        first.depth,
        t_first * 1e3,
        t_repeat * 1e3,
        t_unfused * 1e3,
        t_unfused / t_repeat
    );

    let mut o = Obj::default();
    o.field("n_particles", n)
        .field("depth", first.depth)
        .field("first_seconds", format_args!("{:.6}", t_first))
        .field("repeat_seconds", format_args!("{:.6}", t_repeat))
        .field("repeat_unfused_seconds", format_args!("{:.6}", t_unfused))
        .field(
            "fused_repeat_speedup",
            format_args!("{:.3}", t_unfused / t_repeat),
        )
        .field("plan_builds", fmm.plan_builds());
    o.finish()
}

/// Predicted (logical messages, payload bytes) of one model phase: CSHIFT
/// invocations, router ops, and point-to-point sends each count one
/// message; `off_vu_boxes` / `broadcast_boxes` are K-box units of payload.
fn model_motion(c: &Counters, k: usize) -> (u64, u64) {
    (
        c.cshifts + c.sends + c.broadcast_stages,
        (c.off_vu_boxes + c.broadcast_boxes) * k as u64 * 8,
    )
}

/// The SPMD executor's measured data motion against the machine model, on
/// the Table-4 configuration, plus (when not `--seeded`) wall-clock
/// scaling over worker counts. Everything emitted under `--seeded` is a
/// pure function of the seed — byte-identical across runs.
fn bench_spmd(seeded: bool) -> String {
    fmm_spmd::install();
    let (depth, workers, n) = (4u32, 128usize, 16_384usize);
    let pts = uniform(n, 2026);
    let q = unit_charges(n);
    let fmm = Fmm::new(
        FmmConfig::order(3)
            .depth(depth)
            .executor(Executor::spmd(workers)),
    )
    .unwrap();
    let k = fmm.k();
    let out = fmm.evaluate(&pts, &q).unwrap();
    let report = out.spmd.expect("spmd report");
    let budget = communication_budget(&ProgramConfig {
        depth,
        k,
        m: fmm.config().m_trunc,
        particles_per_box: n as f64 / 8f64.powi(depth as i32),
        vu_grid: VuGrid::new(report.vu_dims),
        supernodes: false,
        sort_miss_fraction: 1.0 - 1.0 / workers as f64,
        forces_near: false,
    });

    let mut phases = Vec::new();
    for (pb, m) in budget.phases.iter().zip(&report.phases) {
        let (pm, pbytes) = model_motion(&pb.comm, k);
        println!(
            "spmd {:<16} messages {:>4} (model {:>4})   bytes {:>12} (model {:>12})",
            pb.name, m.messages, pm, m.bytes, pbytes
        );
        let mut o = Obj::default();
        o.str_field("name", pb.name)
            .field("measured_messages", m.messages)
            .field("predicted_messages", pm)
            .field("measured_bytes", m.bytes)
            .field("predicted_bytes", pbytes)
            .field("local_words", m.local_words);
        phases.push(o.finish());
    }
    let mut t4 = Obj::default();
    t4.field("depth", depth)
        .field("workers", workers)
        .field(
            "vu_dims",
            format_args!(
                "[{},{},{}]",
                report.vu_dims[0], report.vu_dims[1], report.vu_dims[2]
            ),
        )
        .field("n_particles", n)
        .field("k", k)
        .field("phases", json_array(phases));

    let mut root = Obj::default();
    root.field("seeded", seeded).field("table4", t4.finish());

    if !seeded {
        let sn = 60_000;
        let spts = uniform(sn, 4242);
        let sq = unit_charges(sn);
        let mut t1 = 0.0;
        let mut entries = Vec::new();
        for p in [1usize, 2, 4, 8] {
            let f = Fmm::new(FmmConfig::order(3).depth(4).executor(Executor::spmd(p))).unwrap();
            let t0 = std::time::Instant::now();
            f.evaluate(&spts, &sq).unwrap();
            let t = t0.elapsed().as_secs_f64();
            if p == 1 {
                t1 = t;
            }
            println!(
                "spmd scaling n={} depth=4  p={:<3} {:.1} ms  ({:.2}x)",
                sn,
                p,
                t * 1e3,
                t1 / t
            );
            let mut o = Obj::default();
            o.field("workers", p)
                .field("n_particles", sn)
                .field("seconds", format_args!("{:.6}", t))
                .field("speedup", format_args!("{:.3}", t1 / t));
            entries.push(o.finish());
        }
        root.field("scaling", json_array(entries));
    }
    root.finish()
}

/// One distribution × worker-count load-balance comparison, for the
/// `--check` gate.
struct BalanceCase {
    dist: Distribution,
    workers: usize,
    uniform_imbalance: f64,
    cost_weighted_imbalance: f64,
    bitwise_identical: bool,
}

/// Per-worker load spread, uniform block layout vs cost-weighted
/// partition, on the clustered distributions at p ∈ {2, 8} — written to
/// `BENCH_balance.json`. The flop counters (and the partition cuts) are
/// pure functions of the seed; busy wall-clock columns are added only
/// outside `--seeded` so the seeded file diffs byte-for-byte.
fn bench_balance(seeded: bool) -> (String, Vec<BalanceCase>) {
    fmm_spmd::install();
    let (depth, n) = (4u32, 32_768usize);
    let mut cases = Vec::new();
    let mut entries = Vec::new();
    for dist in [Distribution::Plummer, Distribution::TwoCluster] {
        let pts = dist.positions(n, 99);
        let q = mixed_charges(n, 100);
        for p in [2usize, 8] {
            let run = |bal: Balance| {
                Fmm::new(
                    FmmConfig::order(3)
                        .depth(depth)
                        .executor(Executor::spmd(p))
                        .balance(bal),
                )
                .unwrap()
                .evaluate(&pts, &q)
                .unwrap()
            };
            let uni = run(Balance::Uniform);
            let cw = run(Balance::CostWeighted);
            let bitwise = uni
                .potentials
                .iter()
                .zip(&cw.potentials)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            let side = |rep: &SpmdReport| {
                let mut o = Obj::default();
                o.field("flop_min", rep.worker_flops.iter().min().unwrap())
                    .field("flop_max", rep.worker_flops.iter().max().unwrap())
                    .field(
                        "flop_imbalance",
                        format_args!("{:.4}", rep.flop_imbalance()),
                    )
                    .field(
                        "worker_flops",
                        json_array(rep.worker_flops.iter().map(|f| f.to_string())),
                    );
                if let Some(cuts) = &rep.partition {
                    o.field(
                        "partition_cuts",
                        json_array(cuts.iter().map(|c| c.to_string())),
                    );
                }
                if !seeded {
                    let ms = |ns: u64| format!("{:.3}", ns as f64 / 1e6);
                    o.field("busy_min_ms", ms(*rep.worker_busy_ns.iter().min().unwrap()))
                        .field("busy_max_ms", ms(*rep.worker_busy_ns.iter().max().unwrap()))
                        .field(
                            "busy_imbalance",
                            format_args!("{:.4}", rep.busy_imbalance()),
                        );
                }
                o.finish()
            };
            let ru = uni.spmd.as_ref().unwrap();
            let rc = cw.spmd.as_ref().unwrap();
            println!(
                "balance {:<12} p={:<2} uniform flop imbalance {:>6.3}  cost-weighted {:>6.3}  bitwise {}",
                dist.name(),
                p,
                ru.flop_imbalance(),
                rc.flop_imbalance(),
                bitwise
            );
            let mut o = Obj::default();
            o.str_field("distribution", dist.name())
                .field("workers", p)
                .field("uniform", side(ru))
                .field("cost_weighted", side(rc))
                .field("bitwise_identical", bitwise);
            entries.push(o.finish());
            cases.push(BalanceCase {
                dist,
                workers: p,
                uniform_imbalance: ru.flop_imbalance(),
                cost_weighted_imbalance: rc.flop_imbalance(),
                bitwise_identical: bitwise,
            });
        }
    }
    let mut root = Obj::default();
    root.field("seeded", seeded)
        .field("n_particles", n)
        .field("depth", depth)
        .field("cases", json_array(entries));
    (root.finish(), cases)
}

/// The deterministic load-balance gate shared by `--check` and CI: at
/// p = 8 the cost-weighted partition must stay under 10% flop imbalance
/// on distributions where the uniform layout exceeds 3x max/mean, and
/// rebalancing must not change one bit of the output.
fn balance_failures(cases: &[BalanceCase]) -> Vec<String> {
    let mut failures = Vec::new();
    for c in cases {
        if !c.bitwise_identical {
            failures.push(format!(
                "{} p={}: cost-weighted output differs bitwise from uniform",
                c.dist.name(),
                c.workers
            ));
        }
        if c.workers == 8 {
            if c.uniform_imbalance <= 2.0 {
                failures.push(format!(
                    "{} p=8: uniform layout imbalance {:.3} no longer exceeds 3x max/mean",
                    c.dist.name(),
                    c.uniform_imbalance
                ));
            }
            if c.cost_weighted_imbalance >= 0.10 {
                failures.push(format!(
                    "{} p=8: cost-weighted flop imbalance {:.3} breaches the 10% bound",
                    c.dist.name(),
                    c.cost_weighted_imbalance
                ));
            }
        }
    }
    failures
}

/// Higher-is-better rates only; wall-clock times are not gated.
const RATE_KEYS: [&str; 7] = [
    "scalar_gflops",
    "avx2_fma_gflops",
    "avx512_gflops",
    "neon_gflops",
    "target_centric_minteractions_per_s",
    "colored_symmetric_minteractions_per_s",
    "f32_minteractions_per_s",
];

fn kernels_report() -> (String, f64) {
    let (gemm, speedup_k72) = bench_gemm();
    let near = bench_near();
    let eval = bench_evaluate();

    let mut root = Obj::default();
    root.str_field("kernel_detected", Kernel::detect().name())
        .field("threads", rayon::current_num_threads())
        .field("gemm", gemm)
        .field("near_field", near)
        .field("evaluate", eval);
    (root.finish(), speedup_k72)
}

fn main() {
    let seeded = std::env::args().any(|a| a == "--seeded");
    let check = std::env::args().any(|a| a == "--check");

    if check {
        // Perf-regression gate: re-measure and compare against the
        // committed BENCH_kernels.json without overwriting it. Tune the
        // threshold with FMM_BENCH_TOLERANCE (fraction, default 0.15) —
        // CI shared runners need a loose one.
        let old = std::fs::read_to_string("BENCH_kernels.json")
            .expect("--check needs a committed BENCH_kernels.json baseline");
        let tolerance = fmm_bench::util::bench_tolerance(0.15);
        let (new, _) = kernels_report();
        let mut failures = fmm_bench::util::check_regressions(&old, &new, &RATE_KEYS, tolerance);
        // The load-balance gate is flop-counter based — deterministic, so
        // no tolerance applies.
        let (_, cases) = bench_balance(true);
        failures.extend(balance_failures(&cases));
        if failures.is_empty() {
            println!(
                "\nbench --check: no regressions beyond {:.0}%, load balance within bounds",
                tolerance * 100.0
            );
        } else {
            eprintln!("\nbench --check: regressions detected:");
            for f in &failures {
                eprintln!("  {}", f);
            }
            eprintln!(
                "(override the rate threshold with FMM_BENCH_TOLERANCE=<fraction>, e.g. 0.5)"
            );
            std::process::exit(1);
        }
        return;
    }

    let spmd = bench_spmd(seeded);
    std::fs::write("BENCH_spmd.json", &spmd).expect("write BENCH_spmd.json");
    println!("wrote BENCH_spmd.json");
    let (balance, _) = bench_balance(seeded);
    std::fs::write("BENCH_balance.json", &balance).expect("write BENCH_balance.json");
    println!("wrote BENCH_balance.json");
    if seeded {
        // Deterministic mode for the CI byte-for-byte diff: the kernel
        // timing sections are inherently noisy, so only the data-motion
        // report (a pure function of the seed) is emitted.
        return;
    }

    let (json, speedup_k72) = kernels_report();
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("\nwrote BENCH_kernels.json");
    if Kernel::detect() != Kernel::Scalar && speedup_k72 < 1.5 {
        println!(
            "warning: K=72 SIMD speedup {:.2}x below the 1.5x target",
            speedup_k72
        );
    }
}
