//! **E10a — §2.3 optimal hierarchy depth**: the depth that balances the
//! hierarchy traversal (linear in the number of boxes) against the
//! near-field direct evaluation (O(N²/M)).
//!
//! Run: `cargo run --release -p fmm-bench --bin exp_depth [n]`

use fmm_bench::util::{header, time_s};
use fmm_bench::workloads::{uniform, unit_charges};
use fmm_core::{Fmm, FmmConfig, Phase};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    header("Optimal hierarchy depth — traversal vs near-field balance (§2.3)");
    let positions = uniform(n, 99);
    let charges = unit_charges(n);
    println!("N = {}", n);
    println!(
        "{:>6} {:>12} {:>10} {:>12} {:>12} {:>12}",
        "depth", "part/leaf", "time (s)", "near (s)", "traversal(s)", "other (s)"
    );
    let mut best = (0u32, f64::INFINITY);
    for depth in 2..=6u32 {
        let fmm = Fmm::new(FmmConfig::order(5).depth(depth)).unwrap();
        let (t, out) = time_s(|| fmm.evaluate(&positions, &charges).unwrap());
        let near = out.profile.phase_time(Phase::Near).as_secs_f64();
        let trav = out.profile.traversal_time().as_secs_f64();
        println!(
            "{:>6} {:>12.1} {:>10.3} {:>12.3} {:>12.3} {:>12.3}",
            depth,
            n as f64 / 8f64.powi(depth as i32),
            t,
            near,
            trav,
            t - near - trav
        );
        if t < best.1 {
            best = (depth, t);
        }
    }
    println!(
        "\nbest depth: {} ({:.3} s). The optimum sits where near-field and\n\
         traversal times cross (paper §2.3: the optimal number of leaf boxes\n\
         is proportional to N).",
        best.0, best.1
    );
}
