//! Workload generators shared by the experiment binaries.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// N uniform points in the unit cube (the paper's uniform distribution).
pub fn uniform(n: usize, seed: u64) -> Vec<[f64; 3]> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| [rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()])
        .collect()
}

/// Unit charges (gravitational-mass convention; matches the paper's
/// uniform systems).
pub fn unit_charges(n: usize) -> Vec<f64> {
    vec![1.0; n]
}

/// Mixed-sign charges in [−1, 1] (plasma convention; harder error metric).
pub fn mixed_charges(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect()
}

/// A near-uniform "jittered grid" distribution: one particle per cell of a
/// g³ grid, jittered — exercises the coordinate-sort locality claims.
pub fn jittered_grid(g: usize, jitter: f64, seed: u64) -> Vec<[f64; 3]> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(g * g * g);
    let h = 1.0 / g as f64;
    for z in 0..g {
        for y in 0..g {
            for x in 0..g {
                out.push([
                    (x as f64 + 0.5 + jitter * (rng.gen::<f64>() - 0.5)) * h,
                    (y as f64 + 0.5 + jitter * (rng.gen::<f64>() - 0.5)) * h,
                    (z as f64 + 0.5 + jitter * (rng.gen::<f64>() - 0.5)) * h,
                ]);
            }
        }
    }
    out
}

/// A clustered (Plummer-like radial) distribution, clamped to the unit
/// cube: stresses load balance of the non-adaptive method (§3.5).
pub fn clustered(n: usize, seed: u64) -> Vec<[f64; 3]> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            // Plummer radius with scale 0.15, direction uniform.
            let m: f64 = rng.gen::<f64>().max(1e-9);
            let r = 0.15 / (m.powf(-2.0 / 3.0) - 1.0).max(1e-9).sqrt();
            let r = r.min(0.49);
            let theta = (2.0 * rng.gen::<f64>() - 1.0f64).acos();
            let phi = 2.0 * std::f64::consts::PI * rng.gen::<f64>();
            [
                0.5 + r * theta.sin() * phi.cos(),
                0.5 + r * theta.sin() * phi.sin(),
                0.5 + r * theta.cos(),
            ]
        })
        .collect()
}

/// A Plummer-like radial cluster at `center` with scale radius `a`,
/// clamped to the unit cube. The radial CDF inversion is the standard
/// Plummer sampling; the clamp keeps stragglers inside the FMM domain.
pub fn plummer_at(n: usize, seed: u64, center: [f64; 3], a: f64) -> Vec<[f64; 3]> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let m: f64 = rng.gen::<f64>().max(1e-9);
            let r = a / (m.powf(-2.0 / 3.0) - 1.0).max(1e-9).sqrt();
            let r = r.min(0.45);
            let theta = (2.0 * rng.gen::<f64>() - 1.0f64).acos();
            let phi = 2.0 * std::f64::consts::PI * rng.gen::<f64>();
            let p = [
                center[0] + r * theta.sin() * phi.cos(),
                center[1] + r * theta.sin() * phi.sin(),
                center[2] + r * theta.cos(),
            ];
            [
                p[0].clamp(0.001, 0.999),
                p[1].clamp(0.001, 0.999),
                p[2].clamp(0.001, 0.999),
            ]
        })
        .collect()
}

/// Canonical particle distributions for the load-balance experiments:
/// the paper's uniform systems plus the clustered cases (§3.5) where a
/// uniform spatial decomposition concentrates most of the work on a few
/// workers. All are pure functions of `(n, seed)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Uniform in the unit cube.
    Uniform,
    /// A single off-centre Plummer sphere — dense core away from the box
    /// centre, so uniform block partitions land the core on few workers.
    Plummer,
    /// Two unequal Plummer clusters in opposite corners — a galaxy-merger
    /// initial condition.
    TwoCluster,
}

impl Distribution {
    pub const ALL: [Distribution; 3] = [
        Distribution::Uniform,
        Distribution::Plummer,
        Distribution::TwoCluster,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Distribution::Uniform => "uniform",
            Distribution::Plummer => "plummer",
            Distribution::TwoCluster => "two_cluster",
        }
    }

    /// N seeded points in the unit cube; deterministic per `(self, n, seed)`.
    pub fn positions(self, n: usize, seed: u64) -> Vec<[f64; 3]> {
        match self {
            Distribution::Uniform => uniform(n, seed),
            Distribution::Plummer => plummer_at(n, seed, [0.30, 0.35, 0.40], 0.12),
            Distribution::TwoCluster => {
                let n1 = n * 3 / 5;
                let mut pts = plummer_at(n1, seed, [0.24, 0.28, 0.26], 0.08);
                pts.extend(plummer_at(n - n1, seed ^ 0x9E37, [0.74, 0.70, 0.76], 0.10));
                pts
            }
        }
    }
}

/// Direct O(N²) potential reference (sequential; use fmm-direct for the
/// parallel baseline).
pub fn direct_potentials(positions: &[[f64; 3]], charges: &[f64]) -> Vec<f64> {
    let n = positions.len();
    let mut out = vec![0.0; n];
    for i in 0..n {
        let mut acc = 0.0;
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = [
                positions[i][0] - positions[j][0],
                positions[i][1] - positions[j][1],
                positions[i][2] - positions[j][2],
            ];
            acc += charges[j] / (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
        }
        out[i] = acc;
    }
    out
}
