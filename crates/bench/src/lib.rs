//! # fmm-bench — experiment harness
//!
//! One binary per paper table/figure (see DESIGN.md §4) plus criterion
//! benches for the hot kernels. Shared workload generators live here.

#![forbid(unsafe_code)]

pub mod util;
pub mod workloads;
