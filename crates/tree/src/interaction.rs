//! Near-field and interactive-field offset lists, and supernodes.
//!
//! With *d-separation* (paper §2.1) the near field of a box is the
//! (2d+1)³−1 boxes within d steps in every axis; the *interactive field*
//! of a box at level l is the part of its parent's near field (refined to
//! level l) outside its own near field. In 3-D with two-separation that is
//! 10³ − 5³ = 875 boxes per box, and the union over the eight siblings is
//! 11³ − 5³ = 1206 distinct offsets (the paper allocates the full 11³ =
//! 1331 cube of translation matrices for easy indexing).
//!
//! The *supernode* optimization (§2.3): a parent-level box all of whose
//! eight children lie in the interactive field can be translated once from
//! its parent-level outer approximation, reducing the effective number of
//! translations per box from 875 to 189 (98 supernodes + 91 leftover
//! children) — "a dramatic improvement in the overall performance, at the
//! cost of slightly decreased accuracy".

/// Near-field separation: the paper's "one separation" (3³ neighbourhood,
/// Greengard–Rokhlin original) or "two separation" (5³, assumed throughout
/// the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Separation {
    One,
    Two,
}

impl Separation {
    /// The d in d-separation.
    #[inline]
    pub fn d(self) -> i32 {
        match self {
            Separation::One => 1,
            Separation::Two => 2,
        }
    }

    /// Boxes in the near field, excluding the box itself: (2d+1)³ − 1.
    pub fn near_field_size(self) -> usize {
        let w = (2 * self.d() + 1) as usize;
        w * w * w - 1
    }

    /// Interactive-field boxes for an interior box: 7·(2d+1)³.
    pub fn interactive_field_size(self) -> usize {
        let w = (2 * self.d() + 1) as usize;
        7 * w * w * w
    }
}

/// Offsets of the near field (excluding `[0,0,0]`) for d-separation:
/// 124 offsets for two-separation, 26 for one-separation.
pub fn near_field_offsets(sep: Separation) -> Vec<[i32; 3]> {
    let d = sep.d();
    let mut out = Vec::with_capacity(sep.near_field_size());
    for dz in -d..=d {
        for dy in -d..=d {
            for dx in -d..=d {
                if dx != 0 || dy != 0 || dz != 0 {
                    out.push([dx, dy, dz]);
                }
            }
        }
    }
    out
}

#[inline]
fn in_near(o: [i32; 3], d: i32) -> bool {
    o[0].abs() <= d && o[1].abs() <= d && o[2].abs() <= d
}

/// Offsets of the interactive field of a box whose octant within its
/// parent is `octant` (each component 0 or 1). The offsets are in units of
/// the box's own level.
///
/// Derivation: the parent's near field consists of parents at offsets
/// P ∈ [−d,d]³; their children sit at child-level offsets 2P + e − octant
/// for e ∈ {0,1}³; the box's own near field [−d,d]³ (and itself) are
/// excluded. For two-separation this yields 875 offsets spanning
/// [−(2d+1)+oct, 2d+(1−oct)] per axis — the paper's [−5+i, 4+i] range.
pub fn interactive_field_offsets(octant: [i32; 3], sep: Separation) -> Vec<[i32; 3]> {
    let d = sep.d();
    let mut out = Vec::with_capacity(sep.interactive_field_size());
    for pz in -d..=d {
        for py in -d..=d {
            for px in -d..=d {
                for e in 0..8 {
                    let o = [
                        2 * px + (e & 1) - octant[0],
                        2 * py + ((e >> 1) & 1) - octant[1],
                        2 * pz + ((e >> 2) & 1) - octant[2],
                    ];
                    if !in_near(o, d) {
                        out.push(o);
                    }
                }
            }
        }
    }
    out
}

/// The union of interactive-field offsets over all eight octants:
/// [−(2d+1), 2d+1]³ minus the near field — 1206 offsets for
/// two-separation.
pub fn interactive_field_union(sep: Separation) -> Vec<[i32; 3]> {
    let d = sep.d();
    let w = 2 * d + 1;
    let mut out = Vec::new();
    for dz in -w..=w {
        for dy in -w..=w {
            for dx in -w..=w {
                let o = [dx, dy, dz];
                if !in_near(o, d) {
                    out.push(o);
                }
            }
        }
    }
    out
}

/// A supernode source: a parent-level box acting as a single T2 source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SupernodeOffset {
    /// Offset of the source *parent* box relative to the target's parent,
    /// in parent-level units.
    pub parent_offset: [i32; 3],
    /// Offset of the source parent's *centre* relative to the target box's
    /// centre, in **half** target-box units (so it is integral: the true
    /// offset is `center_offset_half / 2` target-box sides per axis).
    pub center_offset_half: [i32; 3],
}

/// The supernode decomposition of one octant's interactive field.
#[derive(Debug, Clone)]
pub struct SupernodeDecomposition {
    /// Whole parents translated once from their parent-level outer
    /// approximation.
    pub parents: Vec<SupernodeOffset>,
    /// Leftover child-level offsets translated individually.
    pub children: Vec<[i32; 3]>,
}

impl SupernodeDecomposition {
    /// Effective number of T2 translations (the paper's N_int = 189 for
    /// two-separation).
    pub fn translation_count(&self) -> usize {
        self.parents.len() + self.children.len()
    }

    /// Child-level boxes covered (must equal the plain interactive field).
    pub fn covered_boxes(&self) -> usize {
        self.parents.len() * 8 + self.children.len()
    }
}

/// Compute the supernode decomposition for a box of the given octant.
///
/// A parent at offset P (parent-level units, relative to the target's
/// parent) is a supernode iff all eight of its children fall outside the
/// target's near field. Child-level offsets of P's children are
/// 2P + e − octant, and the parent centre sits at child-level offset
/// 2P − octant + ½ per axis (stored doubled to stay integral).
pub fn supernode_decomposition(octant: [i32; 3], sep: Separation) -> SupernodeDecomposition {
    let d = sep.d();
    let mut parents = Vec::new();
    let mut children = Vec::new();
    for pz in -d..=d {
        for py in -d..=d {
            for px in -d..=d {
                let p = [px, py, pz];
                let child_offsets: Vec<[i32; 3]> = (0..8)
                    .map(|e| {
                        [
                            2 * px + (e & 1) - octant[0],
                            2 * py + ((e >> 1) & 1) - octant[1],
                            2 * pz + ((e >> 2) & 1) - octant[2],
                        ]
                    })
                    .collect();
                let inside: Vec<&[i32; 3]> =
                    child_offsets.iter().filter(|o| !in_near(**o, d)).collect();
                if inside.len() == 8 {
                    parents.push(SupernodeOffset {
                        parent_offset: p,
                        center_offset_half: [
                            4 * px - 2 * octant[0] + 1,
                            4 * py - 2 * octant[1] + 1,
                            4 * pz - 2 * octant[2] + 1,
                        ],
                    });
                } else {
                    children.extend(inside.into_iter().copied());
                }
            }
        }
    }
    SupernodeDecomposition { parents, children }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn near_field_sizes() {
        assert_eq!(near_field_offsets(Separation::One).len(), 26);
        assert_eq!(near_field_offsets(Separation::Two).len(), 124);
        assert_eq!(Separation::Two.near_field_size(), 124);
    }

    #[test]
    fn interactive_field_size_is_875_for_two_separation() {
        for oct in 0..8 {
            let o = [oct & 1, (oct >> 1) & 1, (oct >> 2) & 1];
            let f = interactive_field_offsets(o, Separation::Two);
            assert_eq!(f.len(), 875, "octant {:?}", o);
            // No duplicates.
            let set: HashSet<_> = f.iter().collect();
            assert_eq!(set.len(), 875);
        }
    }

    #[test]
    fn interactive_field_size_one_separation() {
        // 6³ − 3³ = 189 boxes for one-separation (the original GR scheme
        // has 875 with two-separation; see paper §2.1: 7(2d+1)³ for
        // interior boxes of an infinite grid, i.e. (4d+2)³−(2d+1)³ here).
        let f = interactive_field_offsets([0, 0, 0], Separation::One);
        assert_eq!(f.len(), 6 * 6 * 6 - 27);
    }

    #[test]
    fn interactive_field_range_matches_paper() {
        // Paper: offsets span [−5+i, 4+i] per axis with i ∈ {0,1}
        // (sign convention: our octant o gives [−4−o, 5−o]... verify both
        // bounds concretely for two-separation).
        for oct in 0..8 {
            let o = [oct & 1, (oct >> 1) & 1, (oct >> 2) & 1];
            let f = interactive_field_offsets(o, Separation::Two);
            for axis in 0..3 {
                let lo = f.iter().map(|v| v[axis]).min().unwrap();
                let hi = f.iter().map(|v| v[axis]).max().unwrap();
                assert_eq!(lo, -4 - o[axis]);
                assert_eq!(hi, 5 - o[axis]);
            }
        }
    }

    #[test]
    fn union_is_1206() {
        let u = interactive_field_union(Separation::Two);
        assert_eq!(u.len(), 1331 - 125);
        // And it is exactly the union over octants.
        let mut seen = HashSet::new();
        for oct in 0..8 {
            let o = [oct & 1, (oct >> 1) & 1, (oct >> 2) & 1];
            seen.extend(interactive_field_offsets(o, Separation::Two));
        }
        let u_set: HashSet<_> = u.into_iter().collect();
        assert_eq!(seen, u_set);
    }

    #[test]
    fn interactive_and_near_disjoint_and_cover_parent_neighbourhood() {
        let sep = Separation::Two;
        let near: HashSet<[i32; 3]> = near_field_offsets(sep).into_iter().collect();
        for oct in 0..8 {
            let o = [oct & 1, (oct >> 1) & 1, (oct >> 2) & 1];
            let inter: HashSet<[i32; 3]> = interactive_field_offsets(o, sep).into_iter().collect();
            assert!(inter.is_disjoint(&near));
            assert!(!inter.contains(&[0, 0, 0]));
            // near ∪ interactive ∪ {self} covers all children of the
            // parent's near-field parents: 10³ = 1000 boxes.
            assert_eq!(inter.len() + near.len() + 1, 1000);
        }
    }

    #[test]
    fn supernode_decomposition_gives_189_translations() {
        // The paper's headline: supernodes reduce N_int from 875 to 189.
        for oct in 0..8 {
            let o = [oct & 1, (oct >> 1) & 1, (oct >> 2) & 1];
            let sd = supernode_decomposition(o, Separation::Two);
            assert_eq!(sd.covered_boxes(), 875, "octant {:?}", o);
            assert_eq!(sd.translation_count(), 189, "octant {:?}", o);
            assert_eq!(sd.parents.len(), 98);
            assert_eq!(sd.children.len(), 91);
        }
    }

    #[test]
    fn supernode_children_are_in_interactive_field() {
        let o = [1, 0, 1];
        let sd = supernode_decomposition(o, Separation::Two);
        let inter: HashSet<[i32; 3]> = interactive_field_offsets(o, Separation::Two)
            .into_iter()
            .collect();
        for c in &sd.children {
            assert!(inter.contains(c));
        }
        // Parents' children are in the interactive field too, and the
        // parent centre offsets are consistent: centre = mean of children.
        for p in &sd.parents {
            let mut sum = [0i32; 3];
            for e in 0..8 {
                let c = [
                    2 * p.parent_offset[0] + (e & 1) - o[0],
                    2 * p.parent_offset[1] + ((e >> 1) & 1) - o[1],
                    2 * p.parent_offset[2] + ((e >> 2) & 1) - o[2],
                ];
                assert!(inter.contains(&c));
                for (sa, &ca) in sum.iter_mut().zip(&c) {
                    *sa += 2 * ca; // doubled child-centre offset
                }
            }
            for (sa, pa) in sum.iter().zip(&p.center_offset_half) {
                // The mean of the doubled child-centre offsets is the
                // doubled parent-centre offset: (32P + 8 − 16o)/8 = 4P −
                // 2o + 1.
                assert_eq!(*sa, 8 * pa);
            }
        }
    }

    #[test]
    fn supernode_parents_farther_than_one_parent_box() {
        // Supernode sources must be well separated: each has some axis
        // with |parent_offset| ≥ 2 for two-separation.
        let sd = supernode_decomposition([0, 0, 0], Separation::Two);
        for p in &sd.parents {
            assert!(
                p.parent_offset.iter().any(|v| v.abs() >= 2),
                "{:?} too close",
                p.parent_offset
            );
        }
    }
}
