//! Morton (Z-order) encoding: bit interleaving of box coordinates.
//!
//! The paper's storage-to-sequence mapping manipulates the address bits of
//! box coordinates directly (Figs. 4–5); Morton codes are the standard
//! shared-memory analogue and are also used as sort keys when no VU layout
//! is imposed.

/// Spread the low 21 bits of `v` so that bit i lands at bit 3i.
#[inline]
pub fn spread_bits(v: u32) -> u64 {
    let mut x = (v as u64) & 0x1f_ffff;
    x = (x | (x << 32)) & 0x1f00000000ffff;
    x = (x | (x << 16)) & 0x1f0000ff0000ff;
    x = (x | (x << 8)) & 0x100f00f00f00f00f;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

/// Inverse of [`spread_bits`].
#[inline]
pub fn compact_bits(x: u64) -> u32 {
    let mut x = x & 0x1249249249249249;
    x = (x | (x >> 2)) & 0x10c30c30c30c30c3;
    x = (x | (x >> 4)) & 0x100f00f00f00f00f;
    x = (x | (x >> 8)) & 0x1f0000ff0000ff;
    x = (x | (x >> 16)) & 0x1f00000000ffff;
    x = (x | (x >> 32)) & 0x1f_ffff;
    x as u32
}

/// Morton code of (x, y, z): x bits at positions 3i, y at 3i+1, z at 3i+2.
#[inline]
pub fn morton_encode(x: u32, y: u32, z: u32) -> u64 {
    spread_bits(x) | (spread_bits(y) << 1) | (spread_bits(z) << 2)
}

/// Inverse of [`morton_encode`].
#[inline]
pub fn morton_decode(code: u64) -> (u32, u32, u32) {
    (
        compact_bits(code),
        compact_bits(code >> 1),
        compact_bits(code >> 2),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_exhaustive_small() {
        for x in 0..16 {
            for y in 0..16 {
                for z in 0..16 {
                    let code = morton_encode(x, y, z);
                    assert_eq!(morton_decode(code), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn round_trip_large_values() {
        for &(x, y, z) in &[
            (0x1f_ffff, 0, 0),
            (0, 0x1f_ffff, 0x15_5555),
            (123456, 654321, 999999),
        ] {
            assert_eq!(morton_decode(morton_encode(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn ordering_groups_octants() {
        // Children of one parent occupy 8 consecutive Morton codes.
        let parent = (3u32, 5u32, 2u32);
        let base = morton_encode(parent.0 << 1, parent.1 << 1, parent.2 << 1);
        for oct in 0..8u32 {
            let c = morton_encode(
                (parent.0 << 1) | (oct & 1),
                (parent.1 << 1) | ((oct >> 1) & 1),
                (parent.2 << 1) | ((oct >> 2) & 1),
            );
            assert_eq!(c, base + oct as u64);
        }
    }

    #[test]
    fn spread_compact_inverse() {
        for v in [0u32, 1, 2, 0xffff, 0x1f_ffff] {
            assert_eq!(compact_bits(spread_bits(v)), v);
        }
    }
}
