//! Box coordinates and flattened hierarchy storage.
//!
//! The paper embeds the hierarchy of grids in two layers of a 4-D array
//! (Fig. 3); in shared memory we use the simpler flattened analogue: one
//! contiguous buffer per quantity with per-level offsets, boxes within a
//! level stored row-major (x fastest). All conversions here are pure index
//! arithmetic and are exercised heavily by property tests.

/// A balanced hierarchy of depth `depth`: levels `0..=depth`, level l has
/// `2^l` boxes per axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hierarchy {
    pub depth: u32,
}

impl Hierarchy {
    pub fn new(depth: u32) -> Self {
        assert!(depth <= 10, "depth {} would overflow box indices", depth);
        Hierarchy { depth }
    }

    /// Boxes per axis at level `l`.
    #[inline]
    pub fn boxes_per_axis(&self, l: u32) -> u32 {
        1 << l
    }

    /// Total boxes at level `l` (8^l).
    #[inline]
    pub fn boxes_at_level(&self, l: u32) -> usize {
        1usize << (3 * l)
    }

    /// Number of leaf boxes (8^depth).
    #[inline]
    pub fn leaf_boxes(&self) -> usize {
        self.boxes_at_level(self.depth)
    }

    /// Offset of level `l` in a flattened all-levels buffer
    /// (levels stored in increasing order: Σ_{k<l} 8^k = (8^l − 1)/7).
    #[inline]
    pub fn level_offset(&self, l: u32) -> usize {
        ((1usize << (3 * l)) - 1) / 7
    }

    /// Total boxes across all levels 0..=depth.
    #[inline]
    pub fn total_boxes(&self) -> usize {
        self.level_offset(self.depth + 1)
    }

    /// Iterate all box coordinates at level `l` in storage order.
    pub fn boxes(&self, l: u32) -> impl Iterator<Item = BoxCoord> {
        let n = self.boxes_per_axis(l);
        (0..n).flat_map(move |z| {
            (0..n).flat_map(move |y| (0..n).map(move |x| BoxCoord { level: l, x, y, z }))
        })
    }
}

/// Coordinates of one box: level plus integer grid position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoxCoord {
    pub level: u32,
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

impl BoxCoord {
    /// The root box.
    pub const ROOT: BoxCoord = BoxCoord {
        level: 0,
        x: 0,
        y: 0,
        z: 0,
    };

    /// Row-major index within the level (x fastest).
    #[inline]
    pub fn index(&self) -> usize {
        let n = 1usize << self.level;
        ((self.z as usize * n) + self.y as usize) * n + self.x as usize
    }

    /// Inverse of [`BoxCoord::index`].
    #[inline]
    pub fn from_index(level: u32, idx: usize) -> Self {
        let n = 1usize << level;
        let x = (idx % n) as u32;
        let y = ((idx / n) % n) as u32;
        let z = (idx / (n * n)) as u32;
        BoxCoord { level, x, y, z }
    }

    /// Index in a flattened all-levels buffer.
    #[inline]
    pub fn flat_index(&self, h: &Hierarchy) -> usize {
        h.level_offset(self.level) + self.index()
    }

    /// The parent box; `None` at the root.
    #[inline]
    pub fn parent(&self) -> Option<BoxCoord> {
        if self.level == 0 {
            None
        } else {
            Some(BoxCoord {
                level: self.level - 1,
                x: self.x >> 1,
                y: self.y >> 1,
                z: self.z >> 1,
            })
        }
    }

    /// Which of its parent's eight children this box is: bit 0 = x parity,
    /// bit 1 = y parity, bit 2 = z parity.
    #[inline]
    pub fn octant(&self) -> usize {
        ((self.x & 1) | ((self.y & 1) << 1) | ((self.z & 1) << 2)) as usize
    }

    /// Octant as a 0/1 triple `(ox, oy, oz)`.
    #[inline]
    pub fn octant_coords(&self) -> [i32; 3] {
        [
            (self.x & 1) as i32,
            (self.y & 1) as i32,
            (self.z & 1) as i32,
        ]
    }

    /// The eight children, ordered by octant index.
    pub fn children(&self) -> [BoxCoord; 8] {
        let mut out = [*self; 8];
        for (oct, c) in out.iter_mut().enumerate() {
            c.level = self.level + 1;
            c.x = (self.x << 1) | (oct as u32 & 1);
            c.y = (self.y << 1) | ((oct as u32 >> 1) & 1);
            c.z = (self.z << 1) | ((oct as u32 >> 2) & 1);
        }
        out
    }

    /// The child at a given octant.
    #[inline]
    pub fn child(&self, octant: usize) -> BoxCoord {
        debug_assert!(octant < 8);
        BoxCoord {
            level: self.level + 1,
            x: (self.x << 1) | (octant as u32 & 1),
            y: (self.y << 1) | ((octant as u32 >> 1) & 1),
            z: (self.z << 1) | ((octant as u32 >> 2) & 1),
        }
    }

    /// The box at integer offset `(dx, dy, dz)` on the same level, or
    /// `None` if that falls outside the domain.
    #[inline]
    pub fn offset(&self, d: [i32; 3]) -> Option<BoxCoord> {
        let n = 1i64 << self.level;
        let x = self.x as i64 + d[0] as i64;
        let y = self.y as i64 + d[1] as i64;
        let z = self.z as i64 + d[2] as i64;
        if x < 0 || y < 0 || z < 0 || x >= n || y >= n || z >= n {
            None
        } else {
            Some(BoxCoord {
                level: self.level,
                x: x as u32,
                y: y as u32,
                z: z as u32,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_offsets_are_prefix_sums() {
        let h = Hierarchy::new(5);
        let mut acc = 0;
        for l in 0..=5 {
            assert_eq!(h.level_offset(l), acc);
            acc += h.boxes_at_level(l);
        }
        assert_eq!(h.total_boxes(), acc);
    }

    #[test]
    fn index_round_trip() {
        for level in 0..5u32 {
            let n = 1usize << (3 * level);
            for idx in (0..n).step_by(7.max(n / 64)) {
                let c = BoxCoord::from_index(level, idx);
                assert_eq!(c.index(), idx);
                assert_eq!(c.level, level);
            }
        }
    }

    #[test]
    fn parent_child_round_trip() {
        let c = BoxCoord {
            level: 4,
            x: 11,
            y: 6,
            z: 13,
        };
        let p = c.parent().unwrap();
        assert_eq!(
            p,
            BoxCoord {
                level: 3,
                x: 5,
                y: 3,
                z: 6
            }
        );
        let back = p.child(c.octant());
        assert_eq!(back, c);
    }

    #[test]
    fn children_have_distinct_octants() {
        let p = BoxCoord {
            level: 2,
            x: 1,
            y: 3,
            z: 2,
        };
        let kids = p.children();
        for (oct, k) in kids.iter().enumerate() {
            assert_eq!(k.octant(), oct);
            assert_eq!(k.parent().unwrap(), p);
        }
    }

    #[test]
    fn root_has_no_parent() {
        assert_eq!(BoxCoord::ROOT.parent(), None);
    }

    #[test]
    fn offset_respects_bounds() {
        let c = BoxCoord {
            level: 2,
            x: 0,
            y: 3,
            z: 1,
        };
        assert_eq!(c.offset([-1, 0, 0]), None);
        assert_eq!(c.offset([0, 1, 0]), None); // y = 4 out of range at level 2
        assert_eq!(
            c.offset([1, -1, 0]),
            Some(BoxCoord {
                level: 2,
                x: 1,
                y: 2,
                z: 1
            })
        );
    }

    #[test]
    fn boxes_iterator_in_storage_order() {
        let h = Hierarchy::new(3);
        for (i, b) in h.boxes(2).enumerate() {
            assert_eq!(b.index(), i);
        }
        assert_eq!(h.boxes(2).count(), 64);
    }

    #[test]
    fn flat_index_distinct_across_levels() {
        let h = Hierarchy::new(3);
        let mut seen = std::collections::HashSet::new();
        for l in 0..=3 {
            for b in h.boxes(l) {
                assert!(seen.insert(b.flat_index(&h)), "duplicate flat index");
            }
        }
        assert_eq!(seen.len(), h.total_boxes());
    }
}
