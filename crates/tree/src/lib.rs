//! # fmm-tree — the uniform spatial hierarchy
//!
//! The non-adaptive O(N) methods of the paper refine a cubic domain into a
//! balanced octree of depth h: level 0 is the whole domain, level l has 8^l
//! boxes, and leaves are at level h. This crate provides:
//!
//! * box coordinate / index arithmetic and flattened per-level storage
//!   layout ([`coords`]) — the analogue of the paper's 5-D array embedding,
//! * Morton (bit-interleaved) indices ([`morton`]),
//! * near-field / interactive-field offset lists with d-separation and the
//!   supernode decomposition that reduces 875 interactive-field
//!   translations to ≈189 ([`interaction`]),
//! * the coordinate sort of §3.2 (keys built from VU-address and
//!   local-address bits) and particle binning ([`sort`]),
//! * the cubic domain geometry ([`domain`]).

#![forbid(unsafe_code)]

pub mod balance;
pub mod coords;
pub mod domain;
pub mod interaction;
pub mod morton;
pub mod partition;
pub mod sort;

pub use balance::{analyze as analyze_balance, LoadBalance};
pub use coords::{BoxCoord, Hierarchy};
pub use domain::Domain;
pub use interaction::{
    interactive_field_offsets, interactive_field_union, near_field_offsets,
    supernode_decomposition, Separation, SupernodeDecomposition, SupernodeOffset,
};
pub use partition::{
    box_halo, child_flush, leaf_costs, morton_to_rowmajor, parent_fetch, particle_halo,
    rowmajor_to_morton, slot_route, CostModel, Exchange, Partition,
};
pub use sort::{assign_boxes, bin_particles, coordinate_sort, Binning, CoordinateSortKey};
