//! Cost-weighted partitioning of the Morton curve, and the exchange plans a
//! partition induces.
//!
//! The paper's uniform VU layout assigns every worker the same *number* of
//! boxes, which collapses on clustered inputs (PetFMM and Hu/Gumerov/
//! Duraiswami both weight boxes by modelled work instead). A [`Partition`]
//! splits the *leaf Morton curve* at `p+1` cut points chosen so that each
//! contiguous segment carries (nearly) the same modelled cost; a box at a
//! coarser level is owned by whoever owns its first descendant leaf, so
//! ownership stays Morton-contiguous at every level and parent/child
//! relations cross at most one cut.
//!
//! The exchange-plan builders ([`child_flush`], [`parent_fetch`],
//! [`box_halo`], [`particle_halo`], [`slot_route`]) derive, from the
//! partition alone, exactly which box/cell rows cross an ownership boundary
//! in each phase. They are deliberately the *single source of truth*: the
//! SPMD schedule, the executor, and the machine-model communication budget
//! all consume the same [`Exchange`] values, which is what makes the budget
//! byte-exact against executor counters by construction.

use std::collections::{BTreeMap, BTreeSet};

use crate::coords::BoxCoord;
use crate::interaction::{interactive_field_offsets, near_field_offsets, Separation};
use crate::morton::{morton_decode, morton_encode};

/// Convert a Morton code at `level` to the row-major storage index used by
/// the flattened per-level buffers (x fastest).
#[inline]
pub fn morton_to_rowmajor(level: u32, code: u64) -> usize {
    let (x, y, z) = morton_decode(code);
    let n = 1usize << level;
    (z as usize * n + y as usize) * n + x as usize
}

/// Inverse of [`morton_to_rowmajor`].
#[inline]
pub fn rowmajor_to_morton(level: u32, idx: usize) -> u64 {
    let n = 1usize << level;
    let x = (idx % n) as u32;
    let y = ((idx / n) % n) as u32;
    let z = (idx / (n * n)) as u32;
    morton_encode(x, y, z)
}

/// A contiguous split of the leaf-level Morton curve across `p` workers.
///
/// `splits` has `p + 1` entries with `splits[0] = 0`,
/// `splits[p] = 8^depth`, nondecreasing; worker `r` owns leaf Morton codes
/// in `[splits[r], splits[r+1])`. Empty parts are legal (their interval is
/// empty). A coarser box is owned by the owner of its first descendant
/// leaf, so per-level ownership is also a prefix partition of that level's
/// Morton curve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    depth: u32,
    splits: Vec<u64>,
}

impl Partition {
    /// Equal-count split: worker `r` gets leaves `[r·L/p, (r+1)·L/p)`.
    pub fn uniform(depth: u32, p: usize) -> Partition {
        assert!(p >= 1, "need at least one worker");
        let leaves = 1u64 << (3 * depth);
        let splits = (0..=p as u64).map(|r| r * leaves / p as u64).collect();
        Partition { depth, splits }
    }

    /// Build from explicit cut points (used by tests and the verifier's
    /// synthetic layouts). Panics unless the cuts are a valid cover.
    pub fn from_splits(depth: u32, splits: Vec<u64>) -> Partition {
        let leaves = 1u64 << (3 * depth);
        assert!(splits.len() >= 2, "need at least one part");
        assert_eq!(splits[0], 0, "first cut must be 0");
        assert_eq!(*splits.last().unwrap(), leaves, "last cut must be 8^depth");
        assert!(
            splits.windows(2).all(|w| w[0] <= w[1]),
            "cuts must be nondecreasing"
        );
        Partition { depth, splits }
    }

    /// Optimal-bottleneck contiguous split: minimises the maximum per-part
    /// cost over all ways of cutting the Morton curve into `p` contiguous
    /// segments. `costs` is indexed by leaf Morton code. A zero total falls
    /// back to the uniform split.
    pub fn cost_weighted(depth: u32, p: usize, costs: &[u64]) -> Partition {
        let leaves = 1usize << (3 * depth);
        assert_eq!(costs.len(), leaves, "one cost per leaf box");
        assert!(p >= 1, "need at least one worker");
        let total: u64 = costs.iter().sum();
        if total == 0 || p == 1 {
            return Partition::uniform(depth, p);
        }
        // Binary-search the smallest feasible bottleneck B: greedy packing
        // uses the fewest parts for a given B, so feasibility is monotone.
        let max_item = *costs.iter().max().unwrap();
        let (mut lo, mut hi) = (max_item, total);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if parts_needed(costs, mid) <= p {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let bottleneck = lo;
        // Greedy fill at the optimal bottleneck; unused parts stay empty at
        // the end of the curve.
        let mut splits = Vec::with_capacity(p + 1);
        splits.push(0u64);
        let mut acc = 0u64;
        for (i, &w) in costs.iter().enumerate() {
            if acc + w > bottleneck && splits.len() <= p {
                splits.push(i as u64);
                acc = 0;
            }
            acc += w;
        }
        while splits.len() < p + 1 {
            splits.push(leaves as u64);
        }
        splits[p] = leaves as u64;
        Partition { depth, splits }
    }

    /// Leaf depth of the partitioned hierarchy.
    #[inline]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of workers (parts).
    #[inline]
    pub fn workers(&self) -> usize {
        self.splits.len() - 1
    }

    /// Total leaf boxes, 8^depth.
    #[inline]
    pub fn leaf_count(&self) -> u64 {
        1u64 << (3 * self.depth)
    }

    /// The cut points (length `workers() + 1`).
    #[inline]
    pub fn splits(&self) -> &[u64] {
        &self.splits
    }

    /// Owner of a leaf box by Morton code: the unique `r` with
    /// `code ∈ [splits[r], splits[r+1])`.
    #[inline]
    pub fn leaf_owner(&self, code: u64) -> usize {
        debug_assert!(code < self.leaf_count());
        // Largest r with splits[r] <= code; duplicate cuts denote empty
        // parts whose (empty) interval cannot contain the code.
        self.splits.partition_point(|&s| s <= code) - 1
    }

    /// Owner of a box at `level` by its Morton code at that level: the
    /// owner of its first descendant leaf.
    #[inline]
    pub fn owner_at(&self, level: u32, code: u64) -> usize {
        debug_assert!(level <= self.depth);
        self.leaf_owner(code << (3 * (self.depth - level)))
    }

    /// Owner of a box given as grid coordinates.
    #[inline]
    pub fn owner(&self, b: &BoxCoord) -> usize {
        self.owner_at(b.level, morton_encode(b.x, b.y, b.z))
    }

    /// Morton codes at `level` owned by worker `r` (a contiguous range:
    /// per-level ownership inherits the leaf prefix structure).
    pub fn owned_at(&self, r: usize, level: u32) -> std::ops::Range<u64> {
        debug_assert!(level <= self.depth);
        let m = 1u64 << (3 * (self.depth - level));
        let lo = self.splits[r].div_ceil(m);
        let hi = self.splits[r + 1].div_ceil(m);
        lo..hi.max(lo)
    }
}

/// Minimum number of contiguous parts needed so that no part exceeds `b`
/// (greedy packing; requires `b >= max(costs)`).
fn parts_needed(costs: &[u64], b: u64) -> usize {
    let mut parts = 1usize;
    let mut acc = 0u64;
    for &w in costs {
        if acc + w > b {
            parts += 1;
            acc = 0;
        }
        acc += w;
    }
    parts
}

/// Per-pair cost weight of one near-field interaction when only potentials
/// are evaluated (mirrors `fmm_core::near::PAIR_FLOPS`).
pub const PAIR_FLOPS: u64 = 10;
/// Per-pair cost weight with forces (mirrors
/// `fmm_core::near::PAIR_FORCE_FLOPS`).
pub const PAIR_FORCE_FLOPS: u64 = 20;

/// Parameters of the a-priori cost model used to weight leaf boxes.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Sphere samples per box (K).
    pub k: usize,
    /// Inner-evaluation truncation order M.
    pub m_trunc: usize,
    /// Whether forces are evaluated (near-field pairs are one-sided and
    /// cost [`PAIR_FORCE_FLOPS`] each instead of shared
    /// [`PAIR_FLOPS`] halves).
    pub with_fields: bool,
    /// Near-field separation.
    pub sep: Separation,
}

/// Modelled flop cost per leaf Morton code.
///
/// `counts` holds per-leaf particle counts in row-major order (the binning
/// layout); the result is indexed by leaf *Morton* code so it can be fed
/// straight into [`Partition::cost_weighted`].
///
/// Charges, calibrated against the executor's own counters (see
/// DESIGN.md §8):
/// * near field — charged to the box that *computes* each pair:
///   potentials run the travelling-accumulator sweep, so box `b` pays
///   `n·(n−1)/2` self pairs plus `n_b·n_{b+h}` for every
///   lexicographically-positive half-offset `h` (the pair is evaluated
///   when `b` is visited), at [`PAIR_FLOPS`] each; forces are
///   target-centric, so `b` pays directed `n·(n−1)` self pairs plus all
///   in-domain neighbour pairs at [`PAIR_FORCE_FLOPS`];
/// * per particle — `10·K` for P2O and `6·K·(M+1)` for inner evaluation;
/// * per box at level l (charged to its first descendant leaf) —
///   `2K²` per T2 source of its octant's full interactive field (the
///   executors sweep dense level arrays, so boundary boxes pay the full
///   stencil), `2K²` for the T3 parent shift (l ≥ 3), and `8·2K²` for
///   forming its children's T1 contributions (2 ≤ l < depth).
pub fn leaf_costs(depth: u32, model: &CostModel, counts: &[usize]) -> Vec<u64> {
    let leaves = 1usize << (3 * depth);
    assert_eq!(counts.len(), leaves, "one particle count per leaf box");
    let k = model.k as u64;
    let gemm_row = 2 * k * k;
    let mut cost = vec![0u64; leaves];

    // Translation work at every level, charged to first descendant leaves.
    let octant_offsets: Vec<Vec<[i32; 3]>> = (0..8)
        .map(|o| interactive_field_offsets([o & 1, (o >> 1) & 1, (o >> 2) & 1], model.sep))
        .collect();
    for l in 2..=depth {
        let shift = 3 * (depth - l);
        for code in 0..1u64 << (3 * l) {
            let (x, y, z) = morton_decode(code);
            let b = BoxCoord { level: l, x, y, z };
            let t2 = octant_offsets[b.octant()].len() as u64;
            let mut w = t2 * gemm_row;
            if l >= 3 {
                w += gemm_row; // T3 from the parent's local expansion
            }
            if l < depth {
                w += 8 * gemm_row; // T1 over this box's eight children
            }
            cost[(code << shift) as usize] += w;
        }
    }

    // Per-leaf particle work: P2O, inner evaluation, near-field pairs —
    // each pair charged to the owner of the box that computes it.
    let near = near_field_offsets(model.sep);
    let visited: Vec<[i32; 3]> = near.iter().copied().filter(|&o| o > [0, 0, 0]).collect();
    for code in 0..leaves as u64 {
        let (x, y, z) = morton_decode(code);
        let b = BoxCoord {
            level: depth,
            x,
            y,
            z,
        };
        let nt = counts[b.index()] as u64;
        let mut w = nt * k * 10 + nt * k * (model.m_trunc as u64 + 1) * 6;
        w += if model.with_fields {
            // Target-centric: every directed pair is computed at the
            // target box.
            let mut cross = 0u64;
            for &o in &near {
                if let Some(s) = b.offset(o) {
                    cross += nt * counts[s.index()] as u64;
                }
            }
            (nt * nt.saturating_sub(1) + cross) * PAIR_FORCE_FLOPS
        } else {
            // Travelling accumulator: the pair (b, b + h) for each
            // lexicographically-positive half-offset h is evaluated when
            // b is visited — its cost lands wholly on b's owner.
            let mut cross = 0u64;
            for &o in &visited {
                if let Some(s) = b.offset(o) {
                    cross += nt * counts[s.index()] as u64;
                }
            }
            (nt * nt.saturating_sub(1) / 2 + cross) * PAIR_FLOPS
        };
        cost[code as usize] += w;
    }
    cost
}

/// A static cross-owner data movement plan for one exchange step.
///
/// Per rank, `sends` lists `(dst, cells)` with destinations ascending and
/// cells ascending; `recvs` lists `(src, cells)` with sources ascending,
/// where the cells are exactly the sender's list (so the receiver knows the
/// row order of every incoming message without a header). Cell indices are
/// row-major at the level the plan was built for. At most one message per
/// ordered rank pair, and every rank posts all its sends before any
/// receive — which is deadlock-free at channel capacity 1.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Exchange {
    /// Per source rank: `(dst, cell indices)` ascending by `dst`.
    pub sends: Vec<Vec<(usize, Vec<usize>)>>,
    /// Per destination rank: `(src, cell indices)` ascending by `src`.
    pub recvs: Vec<Vec<(usize, Vec<usize>)>>,
}

impl Exchange {
    /// Assemble from a `(src, dst) → cells` map.
    fn from_pairs(p: usize, pairs: &BTreeMap<(usize, usize), BTreeSet<usize>>) -> Exchange {
        let mut sends = vec![Vec::new(); p];
        let mut recvs = vec![Vec::new(); p];
        // BTreeMap order gives ascending (src, dst); for a fixed src the
        // dsts ascend, and for a fixed dst the srcs ascend.
        for (&(src, dst), cells) in pairs {
            if cells.is_empty() {
                continue;
            }
            let list: Vec<usize> = cells.iter().copied().collect();
            sends[src].push((dst, list.clone()));
            recvs[dst].push((src, list));
        }
        Exchange { sends, recvs }
    }

    /// Total messages (ordered rank pairs with traffic).
    pub fn messages(&self) -> u64 {
        self.sends.iter().map(|s| s.len() as u64).sum()
    }

    /// Total cell rows moved across owners.
    pub fn rows(&self) -> u64 {
        self.sends
            .iter()
            .flat_map(|s| s.iter())
            .map(|(_, cells)| cells.len() as u64)
            .sum()
    }

    /// True when no traffic crosses an owner boundary.
    pub fn is_empty(&self) -> bool {
        self.sends.iter().all(|s| s.is_empty())
    }
}

/// Upward-pass exchange for forming parents at `parent_level`: every child
/// box (level `parent_level + 1`) whose owner differs from its parent's
/// owner ships its far-field row to the parent's owner. Cells are row-major
/// at the *child* level.
pub fn child_flush(part: &Partition, parent_level: u32) -> Exchange {
    debug_assert!(parent_level < part.depth());
    let mut pairs: BTreeMap<(usize, usize), BTreeSet<usize>> = BTreeMap::new();
    for pc in 0..1u64 << (3 * parent_level) {
        let owner_p = part.owner_at(parent_level, pc);
        for oct in 0..8u64 {
            let cc = (pc << 3) | oct;
            let owner_c = part.owner_at(parent_level + 1, cc);
            if owner_c != owner_p {
                pairs
                    .entry((owner_c, owner_p))
                    .or_default()
                    .insert(morton_to_rowmajor(parent_level + 1, cc));
            }
        }
    }
    Exchange::from_pairs(part.workers(), &pairs)
}

/// Downward-pass exchange for the T3 shift at `level` (≥ 3): every box
/// whose parent lives on another owner fetches the parent's local-expansion
/// row. Cells are row-major at the *parent* level (`level − 1`).
pub fn parent_fetch(part: &Partition, level: u32) -> Exchange {
    debug_assert!((3..=part.depth()).contains(&level));
    let mut pairs: BTreeMap<(usize, usize), BTreeSet<usize>> = BTreeMap::new();
    for code in 0..1u64 << (3 * level) {
        let owner_b = part.owner_at(level, code);
        let pc = code >> 3;
        let owner_p = part.owner_at(level - 1, pc);
        if owner_p != owner_b {
            pairs
                .entry((owner_p, owner_b))
                .or_default()
                .insert(morton_to_rowmajor(level - 1, pc));
        }
    }
    Exchange::from_pairs(part.workers(), &pairs)
}

/// Downward-pass exchange of far-field rows at `level`: for every owned
/// target box, every in-domain interactive-field source (union over
/// octants) on another owner ships its row once. Cells are row-major at
/// `level`.
pub fn box_halo(part: &Partition, level: u32, sep: Separation) -> Exchange {
    debug_assert!((2..=part.depth()).contains(&level));
    let union = crate::interaction::interactive_field_union(sep);
    let mut pairs: BTreeMap<(usize, usize), BTreeSet<usize>> = BTreeMap::new();
    for code in 0..1u64 << (3 * level) {
        let owner_t = part.owner_at(level, code);
        let (x, y, z) = morton_decode(code);
        let t = BoxCoord { level, x, y, z };
        for &off in &union {
            if let Some(s) = t.offset(off) {
                let owner_s = part.owner_at(level, morton_encode(s.x, s.y, s.z));
                if owner_s != owner_t {
                    pairs
                        .entry((owner_s, owner_t))
                        .or_default()
                        .insert(s.index());
                }
            }
        }
    }
    Exchange::from_pairs(part.workers(), &pairs)
}

/// Near-field particle exchange at the leaf level (forces path): every
/// owned target box pulls the particles of its in-domain near-field
/// neighbours that live on other owners. Cells are row-major leaf indices.
pub fn particle_halo(part: &Partition, sep: Separation) -> Exchange {
    let depth = part.depth();
    let near = near_field_offsets(sep);
    let mut pairs: BTreeMap<(usize, usize), BTreeSet<usize>> = BTreeMap::new();
    for code in 0..part.leaf_count() {
        let owner_t = part.leaf_owner(code);
        let (x, y, z) = morton_decode(code);
        let t = BoxCoord {
            level: depth,
            x,
            y,
            z,
        };
        for &off in &near {
            if let Some(s) = t.offset(off) {
                let owner_s = part.leaf_owner(morton_encode(s.x, s.y, s.z));
                if owner_s != owner_t {
                    pairs
                        .entry((owner_s, owner_t))
                        .or_default()
                        .insert(s.index());
                }
            }
        }
    }
    Exchange::from_pairs(part.workers(), &pairs)
}

/// Routing plan for one unit hop of the travelling-slot scheme: every leaf
/// cell holds exactly one slot, and a wrapped shift by `delta ∈ {−1, +1}`
/// along `axis` moves the slot in cell c to cell c′. Cells crossing an
/// ownership boundary are listed under their *source* row-major index. All
/// travel-path steps and returns are unit hops, so at most six distinct
/// `(axis, delta)` routes exist per partition.
pub fn slot_route(part: &Partition, axis: usize, delta: i32) -> Exchange {
    debug_assert!(axis < 3 && delta.abs() == 1);
    let depth = part.depth();
    let n = 1i64 << depth;
    let mut pairs: BTreeMap<(usize, usize), BTreeSet<usize>> = BTreeMap::new();
    for code in 0..part.leaf_count() {
        let src_owner = part.leaf_owner(code);
        let (x, y, z) = morton_decode(code);
        let mut c = [x as i64, y as i64, z as i64];
        c[axis] = (c[axis] + delta as i64).rem_euclid(n);
        let dst_owner = part.leaf_owner(morton_encode(c[0] as u32, c[1] as u32, c[2] as u32));
        if src_owner != dst_owner {
            pairs
                .entry((src_owner, dst_owner))
                .or_default()
                .insert(morton_to_rowmajor(depth, code));
        }
    }
    Exchange::from_pairs(part.workers(), &pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_costs(leaves: usize, seed: u64) -> Vec<u64> {
        // Deterministic LCG with a heavy-tailed twist to mimic clustering.
        let mut state = seed | 1;
        (0..leaves)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = state >> 40;
                if u.is_multiple_of(17) {
                    u % 100_000
                } else {
                    u % 500
                }
            })
            .collect()
    }

    fn check_cover(part: &Partition) {
        let p = part.workers();
        let mut owner_seen = vec![0u64; p];
        let mut prev = None;
        for code in 0..part.leaf_count() {
            let r = part.leaf_owner(code);
            owner_seen[r] += 1;
            if let Some(prev) = prev {
                assert!(r >= prev, "owners must be monotone along the curve");
            }
            prev = Some(r);
        }
        let total: u64 = owner_seen.iter().sum();
        assert_eq!(total, part.leaf_count(), "exact cover, no box dropped");
        for (r, &seen) in owner_seen.iter().enumerate() {
            assert_eq!(
                seen,
                part.splits()[r + 1] - part.splits()[r],
                "interval sizes match ownership"
            );
        }
    }

    #[test]
    fn uniform_partition_is_an_exact_cover() {
        for depth in 1..=3 {
            for p in [1usize, 2, 3, 5, 8] {
                check_cover(&Partition::uniform(depth, p));
            }
        }
    }

    #[test]
    fn cost_weighted_is_an_exact_monotone_cover() {
        for depth in [2u32, 3] {
            let leaves = 1usize << (3 * depth);
            for p in [1usize, 2, 4, 7, 8] {
                for seed in [3u64, 99, 0xfeed] {
                    let costs = pseudo_costs(leaves, seed ^ depth as u64);
                    let part = Partition::cost_weighted(depth, p, &costs);
                    assert_eq!(part.workers(), p);
                    check_cover(&part);
                }
            }
        }
    }

    #[test]
    fn cost_weighted_bottleneck_is_optimal_small() {
        // Brute-force all 2-cut placements at depth 1 (8 leaves, p = 3).
        let costs = [5u64, 1, 1, 1, 9, 1, 1, 5];
        let part = Partition::cost_weighted(1, 3, &costs);
        let bn = |s: &[u64]| -> u64 {
            (0..s.len() - 1)
                .map(|r| costs[s[r] as usize..s[r + 1] as usize].iter().sum())
                .max()
                .unwrap()
        };
        let mut best = u64::MAX;
        for a in 0..=8u64 {
            for b in a..=8u64 {
                best = best.min(bn(&[0, a, b, 8]));
            }
        }
        assert_eq!(bn(part.splits()), best);
    }

    #[test]
    fn zero_costs_fall_back_to_uniform() {
        let costs = vec![0u64; 64];
        assert_eq!(
            Partition::cost_weighted(2, 4, &costs),
            Partition::uniform(2, 4)
        );
    }

    #[test]
    fn coarse_owner_matches_first_descendant_leaf() {
        let costs = pseudo_costs(512, 0xabcdef);
        let part = Partition::cost_weighted(3, 5, &costs);
        for l in 0..=3u32 {
            for code in 0..1u64 << (3 * l) {
                assert_eq!(
                    part.owner_at(l, code),
                    part.leaf_owner(code << (3 * (3 - l))),
                );
            }
        }
    }

    #[test]
    fn owned_ranges_partition_every_level() {
        let costs = pseudo_costs(512, 77);
        let part = Partition::cost_weighted(3, 6, &costs);
        for l in 0..=3u32 {
            let mut covered = 0u64;
            let mut cursor = 0u64;
            for r in 0..part.workers() {
                let range = part.owned_at(r, l);
                assert!(range.start >= cursor, "ranges in curve order");
                cursor = range.end.max(cursor);
                for code in range.clone() {
                    assert_eq!(part.owner_at(l, code), r);
                }
                covered += range.end - range.start;
            }
            assert_eq!(covered, 1u64 << (3 * l), "level {l} fully covered");
        }
    }

    #[test]
    fn morton_rowmajor_round_trip() {
        for level in 1..=4u32 {
            let n = 1usize << (3 * level);
            for idx in (0..n).step_by(1.max(n / 97)) {
                assert_eq!(
                    morton_to_rowmajor(level, rowmajor_to_morton(level, idx)),
                    idx
                );
            }
        }
    }

    fn endpoints_balanced(ex: &Exchange) {
        // Every send has exactly one matching recv with the same cells.
        for (src, sends) in ex.sends.iter().enumerate() {
            let mut prev_dst = None;
            for (dst, cells) in sends {
                if let Some(prev) = prev_dst {
                    assert!(*dst > prev, "sends ascend by destination");
                }
                prev_dst = Some(*dst);
                assert_ne!(*dst, src, "no self message");
                assert!(cells.windows(2).all(|w| w[0] < w[1]), "cells ascend");
                let matching = ex.recvs[*dst]
                    .iter()
                    .find(|(s, _)| *s == src)
                    .expect("matching recv");
                assert_eq!(&matching.1, cells, "receiver sees the sender's cells");
            }
        }
        let nsend: usize = ex.sends.iter().map(Vec::len).sum();
        let nrecv: usize = ex.recvs.iter().map(Vec::len).sum();
        assert_eq!(nsend, nrecv);
        assert_eq!(ex.messages(), nsend as u64);
    }

    #[test]
    fn plans_are_endpoint_balanced_and_ordered() {
        let costs = pseudo_costs(4096, 0x5eed);
        let part = Partition::cost_weighted(4, 8, &costs);
        for l in 2..4u32 {
            endpoints_balanced(&child_flush(&part, l));
        }
        for l in 3..=4u32 {
            endpoints_balanced(&parent_fetch(&part, l));
        }
        for l in 2..=4u32 {
            endpoints_balanced(&box_halo(&part, l, Separation::Two));
        }
        endpoints_balanced(&particle_halo(&part, Separation::Two));
        for axis in 0..3 {
            for delta in [-1, 1] {
                endpoints_balanced(&slot_route(&part, axis, delta));
            }
        }
    }

    #[test]
    fn single_worker_plans_are_empty() {
        let part = Partition::uniform(3, 1);
        assert!(child_flush(&part, 2).is_empty());
        assert!(parent_fetch(&part, 3).is_empty());
        assert!(box_halo(&part, 3, Separation::Two).is_empty());
        assert!(particle_halo(&part, Separation::Two).is_empty());
        assert!(slot_route(&part, 0, 1).is_empty());
    }

    #[test]
    fn slot_route_moves_each_cell_at_most_once() {
        let costs = pseudo_costs(512, 31);
        let part = Partition::cost_weighted(3, 8, &costs);
        for axis in 0..3 {
            let route = slot_route(&part, axis, 1);
            let mut seen = std::collections::HashSet::new();
            for sends in &route.sends {
                for (_, cells) in sends {
                    for &c in cells {
                        assert!(seen.insert(c), "cell {c} routed twice");
                    }
                }
            }
        }
    }

    #[test]
    fn leaf_costs_charge_particles_and_translations() {
        let depth = 2u32;
        let leaves = 64usize;
        let model = CostModel {
            k: 12,
            m_trunc: 3,
            with_fields: false,
            sep: Separation::Two,
        };
        let empty = leaf_costs(depth, &model, &vec![0usize; leaves]);
        // Translation charges exist even with no particles…
        assert!(empty.iter().sum::<u64>() > 0);
        // …and adding particles strictly increases the charged leaf.
        let mut counts = vec![0usize; leaves];
        counts[17] = 40;
        let loaded = leaf_costs(depth, &model, &counts);
        let code = rowmajor_to_morton(depth, 17);
        assert!(loaded[code as usize] > empty[code as usize]);
        assert_eq!(
            loaded.iter().zip(&empty).filter(|(a, b)| a != b).count(),
            1,
            "an isolated box charges only its own leaf"
        );
    }
}
