//! The coordinate sort of §3.2 and particle binning.
//!
//! The paper sorts particles by keys built from the *VU-address bits* and
//! *local-memory-address bits* of the leaf box containing each particle
//! (Fig. 5), so that (a) particles of one box are contiguous and (b) each
//! particle lands in the memory of the VU that owns its box — turning the
//! 1-D → 4-D reshape into a local copy. In shared memory the analogue of
//! (b) is placing particles of spatially-adjacent boxes contiguously; the
//! VU-aware key is still provided because the machine simulator
//! (`fmm-machine`) and experiment E12 use it to measure locality.

use crate::coords::BoxCoord;
use crate::domain::Domain;

/// Bit-field description of a block layout: for each axis, the number of
/// high-order (VU address) bits and low-order (local memory) bits of the
/// box coordinate. `vu_bits[a] + local_bits[a]` must equal the level (log₂
/// boxes per axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoordinateSortKey {
    pub vu_bits: [u32; 3],
    pub local_bits: [u32; 3],
}

impl CoordinateSortKey {
    /// A layout with no VU distribution (everything local) — the plain
    /// shared-memory case; keys then order boxes z-major row-major.
    pub fn local_only(level: u32) -> Self {
        CoordinateSortKey {
            vu_bits: [0; 3],
            local_bits: [level; 3],
        }
    }

    /// Build for a `vu_grid` of per-axis VU counts (powers of two) at a
    /// given level.
    pub fn for_vu_grid(level: u32, vu_grid: [u32; 3]) -> Self {
        let mut vu_bits = [0u32; 3];
        let mut local_bits = [0u32; 3];
        for a in 0..3 {
            assert!(
                vu_grid[a].is_power_of_two(),
                "VU grid must be powers of two"
            );
            let vb = vu_grid[a].trailing_zeros();
            assert!(vb <= level, "more VUs than boxes along axis {}", a);
            vu_bits[a] = vb;
            local_bits[a] = level - vb;
        }
        CoordinateSortKey {
            vu_bits,
            local_bits,
        }
    }

    /// The sort key of a box: VU-address bits (z,y,x) concatenated above
    /// local-address bits (z,y,x) — the paper's
    /// `z..z y..y x..x | z..z y..y x..x` key (Fig. 5).
    pub fn key(&self, b: BoxCoord) -> u64 {
        let split = |v: u32, a: usize| -> (u64, u64) {
            let lb = self.local_bits[a];
            ((v >> lb) as u64, (v & ((1 << lb) - 1)) as u64)
        };
        let (vx, lx) = split(b.x, 0);
        let (vy, ly) = split(b.y, 1);
        let (vz, lz) = split(b.z, 2);
        let vu_addr = (vz << (self.vu_bits[1] + self.vu_bits[0])) | (vy << self.vu_bits[0]) | vx;
        let local_addr =
            (lz << (self.local_bits[1] + self.local_bits[0])) | (ly << self.local_bits[0]) | lx;
        let local_total = self.local_bits[0] + self.local_bits[1] + self.local_bits[2];
        (vu_addr << local_total) | local_addr
    }

    /// The VU rank owning a box.
    pub fn vu_of(&self, b: BoxCoord) -> u64 {
        let local_total = self.local_bits[0] + self.local_bits[1] + self.local_bits[2];
        self.key(b) >> local_total
    }

    /// Total number of VUs in the layout.
    pub fn vu_count(&self) -> u64 {
        1u64 << (self.vu_bits[0] + self.vu_bits[1] + self.vu_bits[2])
    }
}

/// Assign every particle to its leaf box index (row-major within the leaf
/// level).
pub fn assign_boxes(positions: &[[f64; 3]], domain: &Domain, level: u32) -> Vec<u32> {
    positions
        .iter()
        .map(|&p| domain.locate(p, level).index() as u32)
        .collect()
}

/// The result of binning particles into leaf boxes: a permutation and CSR
/// offsets.
#[derive(Debug, Clone)]
pub struct Binning {
    /// `perm[i]` is the original index of the i-th particle in sorted
    /// order.
    pub perm: Vec<u32>,
    /// `starts[b]..starts[b+1]` is the sorted-order range of box `b`.
    pub starts: Vec<u32>,
}

impl Binning {
    /// Number of particles in box `b`.
    #[inline]
    pub fn count(&self, b: usize) -> usize {
        (self.starts[b + 1] - self.starts[b]) as usize
    }

    /// Sorted-order index range of box `b`.
    #[inline]
    pub fn range(&self, b: usize) -> std::ops::Range<usize> {
        self.starts[b] as usize..self.starts[b + 1] as usize
    }

    /// Apply the permutation to gather an attribute array into sorted
    /// order.
    pub fn gather<T: Copy>(&self, src: &[T]) -> Vec<T> {
        self.perm.iter().map(|&i| src[i as usize]).collect()
    }

    /// Scatter a sorted-order array back to original particle order.
    pub fn scatter<T: Copy + Default>(&self, sorted: &[T]) -> Vec<T> {
        let mut out = vec![T::default(); sorted.len()];
        for (s, &i) in self.perm.iter().enumerate() {
            out[i as usize] = sorted[s];
        }
        out
    }
}

/// Counting-sort particles by box id — O(N + #boxes), stable.
pub fn bin_particles(box_ids: &[u32], n_boxes: usize) -> Binning {
    let mut counts = vec![0u32; n_boxes + 1];
    for &b in box_ids {
        debug_assert!((b as usize) < n_boxes);
        counts[b as usize + 1] += 1;
    }
    for i in 0..n_boxes {
        counts[i + 1] += counts[i];
    }
    let starts = counts.clone();
    let mut cursor = counts;
    let mut perm = vec![0u32; box_ids.len()];
    for (i, &b) in box_ids.iter().enumerate() {
        perm[cursor[b as usize] as usize] = i as u32;
        cursor[b as usize] += 1;
    }
    Binning { perm, starts }
}

/// The full coordinate sort (paper §3.2 algorithm): assign boxes, build
/// VU-aware keys, and sort. Returns the permutation (sorted → original
/// index) together with each sorted particle's key.
pub fn coordinate_sort(
    positions: &[[f64; 3]],
    domain: &Domain,
    level: u32,
    layout: CoordinateSortKey,
) -> (Vec<u32>, Vec<u64>) {
    let mut keyed: Vec<(u64, u32)> = positions
        .iter()
        .enumerate()
        .map(|(i, &p)| (layout.key(domain.locate(p, level)), i as u32))
        .collect();
    keyed.sort_unstable();
    let keys = keyed.iter().map(|&(k, _)| k).collect();
    let perm = keyed.iter().map(|&(_, i)| i).collect();
    (perm, keys)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_points(n: usize, seed: u64) -> Vec<[f64; 3]> {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| [next(), next(), next()]).collect()
    }

    #[test]
    fn local_only_key_is_row_major_index() {
        let layout = CoordinateSortKey::local_only(3);
        for idx in [0usize, 5, 63, 200, 511] {
            let b = BoxCoord::from_index(3, idx);
            assert_eq!(layout.key(b), idx as u64);
        }
    }

    #[test]
    fn vu_key_orders_by_vu_first() {
        // 2×2×2 VUs over a level-3 grid: boxes in the same VU octant must
        // have contiguous keys.
        let layout = CoordinateSortKey::for_vu_grid(3, [2, 2, 2]);
        assert_eq!(layout.vu_count(), 8);
        let b_lo = BoxCoord {
            level: 3,
            x: 3,
            y: 3,
            z: 3,
        }; // VU (0,0,0)
        let b_hi = BoxCoord {
            level: 3,
            x: 4,
            y: 0,
            z: 0,
        }; // VU (1,0,0)
        assert!(layout.key(b_lo) < layout.key(b_hi));
        assert_eq!(layout.vu_of(b_lo), 0);
        assert_eq!(layout.vu_of(b_hi), 1);
        // All 64 boxes of one VU have keys in one contiguous block of 64.
        let mut keys: Vec<u64> = (0..512)
            .map(|i| BoxCoord::from_index(3, i))
            .filter(|b| layout.vu_of(*b) == 3)
            .map(|b| layout.key(b))
            .collect();
        keys.sort_unstable();
        assert_eq!(keys.len(), 64);
        assert_eq!(keys[63] - keys[0], 63);
    }

    #[test]
    fn binning_is_stable_partition() {
        let box_ids = vec![2u32, 0, 1, 2, 0, 2, 1];
        let b = bin_particles(&box_ids, 3);
        assert_eq!(b.starts, vec![0, 2, 4, 7]);
        assert_eq!(b.perm, vec![1, 4, 2, 6, 0, 3, 5]);
        assert_eq!(b.count(2), 3);
    }

    #[test]
    fn binning_counts_all_particles() {
        let pts = pseudo_points(1000, 42);
        let d = Domain::unit();
        let ids = assign_boxes(&pts, &d, 3);
        let b = bin_particles(&ids, 512);
        assert_eq!(*b.starts.last().unwrap(), 1000);
        // Every particle in the bin of box `bx` really belongs to `bx`.
        for bx in 0..512 {
            for s in b.range(bx) {
                assert_eq!(ids[b.perm[s] as usize] as usize, bx);
            }
        }
    }

    #[test]
    fn gather_scatter_round_trip() {
        let box_ids = vec![1u32, 0, 1, 0];
        let b = bin_particles(&box_ids, 2);
        let attr = vec![10.0, 20.0, 30.0, 40.0];
        let g = b.gather(&attr);
        assert_eq!(g, vec![20.0, 40.0, 10.0, 30.0]);
        assert_eq!(b.scatter(&g), attr);
    }

    #[test]
    fn coordinate_sort_groups_boxes() {
        let pts = pseudo_points(500, 7);
        let d = Domain::unit();
        let layout = CoordinateSortKey::for_vu_grid(3, [2, 2, 1]);
        let (perm, keys) = coordinate_sort(&pts, &d, 3, layout);
        assert_eq!(perm.len(), 500);
        // Keys are non-decreasing, and particles with equal keys share a
        // box.
        for i in 1..keys.len() {
            assert!(keys[i] >= keys[i - 1]);
        }
        // Permutation is a bijection.
        let mut seen = vec![false; 500];
        for &p in &perm {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
    }

    #[test]
    #[should_panic]
    fn too_many_vus_panics() {
        let _ = CoordinateSortKey::for_vu_grid(2, [8, 1, 1]);
    }
}
