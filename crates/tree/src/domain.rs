//! Cubic domain geometry: mapping boxes to centres and side lengths.

use crate::coords::BoxCoord;

/// The (cubic) computational domain. Anderson's method extends to
/// parallelepipeds; the paper and this reproduction use cubes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Domain {
    /// Minimum corner.
    pub min: [f64; 3],
    /// Side length of the whole domain (level-0 box).
    pub size: f64,
}

impl Domain {
    /// Unit cube [0,1)³.
    pub fn unit() -> Self {
        Domain {
            min: [0.0; 3],
            size: 1.0,
        }
    }

    /// The smallest axis-aligned cube containing all points, expanded by a
    /// small margin so that points on the max face still bin inside.
    pub fn bounding(points: &[[f64; 3]]) -> Self {
        assert!(!points.is_empty(), "bounding box of no points");
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for p in points {
            for d in 0..3 {
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        let size = (0..3).map(|d| hi[d] - lo[d]).fold(0.0, f64::max);
        let size = if size > 0.0 {
            size * (1.0 + 1e-12)
        } else {
            1.0
        };
        // Centre the cube on the data.
        let mut min = [0.0; 3];
        for d in 0..3 {
            let mid = 0.5 * (lo[d] + hi[d]);
            min[d] = mid - 0.5 * size;
        }
        Domain { min, size }
    }

    /// Side length of a box at `level`.
    #[inline]
    pub fn box_side(&self, level: u32) -> f64 {
        self.size / (1u64 << level) as f64
    }

    /// Centre of a box.
    #[inline]
    pub fn box_center(&self, b: BoxCoord) -> [f64; 3] {
        let s = self.box_side(b.level);
        [
            self.min[0] + (b.x as f64 + 0.5) * s,
            self.min[1] + (b.y as f64 + 0.5) * s,
            self.min[2] + (b.z as f64 + 0.5) * s,
        ]
    }

    /// The leaf box containing `p` at the given level, clamped to the
    /// domain (points exactly on the max face bin into the last box).
    #[inline]
    pub fn locate(&self, p: [f64; 3], level: u32) -> BoxCoord {
        let n = 1u32 << level;
        let inv = n as f64 / self.size;
        let clampf = |v: f64, d: usize| -> u32 {
            let i = ((v - self.min[d]) * inv).floor();
            (i.max(0.0) as u32).min(n - 1)
        };
        BoxCoord {
            level,
            x: clampf(p[0], 0),
            y: clampf(p[1], 1),
            z: clampf(p[2], 2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_domain_centres() {
        let d = Domain::unit();
        let b = BoxCoord {
            level: 1,
            x: 1,
            y: 0,
            z: 1,
        };
        assert_eq!(d.box_center(b), [0.75, 0.25, 0.75]);
        assert_eq!(d.box_side(3), 0.125);
    }

    #[test]
    fn locate_is_inverse_of_center() {
        let d = Domain {
            min: [-2.0, 1.0, 0.5],
            size: 4.0,
        };
        for level in 0..5 {
            let n = 1u32 << level;
            for &(x, y, z) in &[(0, 0, 0), (n - 1, n / 2, 0), (n - 1, n - 1, n - 1)] {
                let b = BoxCoord { level, x, y, z };
                assert_eq!(d.locate(d.box_center(b), level), b);
            }
        }
    }

    #[test]
    fn locate_clamps_boundary() {
        let d = Domain::unit();
        let b = d.locate([1.0, 1.0, 1.0], 3);
        assert_eq!((b.x, b.y, b.z), (7, 7, 7));
        let b = d.locate([-0.1, 0.5, 2.0], 2);
        assert_eq!((b.x, b.y, b.z), (0, 2, 3));
    }

    #[test]
    fn bounding_contains_all_points() {
        let pts = vec![[0.1, 0.2, 0.3], [0.9, -0.5, 0.0], [0.4, 0.4, 1.7]];
        let d = Domain::bounding(&pts);
        for p in &pts {
            for (pa, &mina) in p.iter().zip(&d.min) {
                assert!(*pa >= mina - 1e-9);
                assert!(*pa <= mina + d.size + 1e-9);
            }
        }
    }

    #[test]
    fn bounding_degenerate_point_cloud() {
        let pts = vec![[1.0, 1.0, 1.0], [1.0, 1.0, 1.0]];
        let d = Domain::bounding(&pts);
        assert!(d.size > 0.0);
        let b = d.locate(pts[0], 4);
        assert!(b.x < 16 && b.y < 16 && b.z < 16);
    }
}
