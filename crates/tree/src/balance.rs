//! Load-balance analysis of the non-adaptive method (paper §3.5).
//!
//! The paper notes three sources of parallelism in the traversal — boxes
//! within a level, interactive-field translations per box, and boxes
//! across levels — and that the *non-adaptive* decomposition balances the
//! box work perfectly but leaves the particle work (P2O, evaluation, near
//! field) to the distribution. This module quantifies that: per-VU work
//! estimates given a particle binning and a block layout.

use crate::coords::BoxCoord;
use crate::sort::{Binning, CoordinateSortKey};

/// Per-VU work summary for one evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadBalance {
    /// Particles owned by each VU.
    pub particles: Vec<u64>,
    /// Near-field pair interactions charged to each VU (target-centric:
    /// a target box's pairs count toward its owner).
    pub near_pairs: Vec<u64>,
    /// Leaf boxes per VU (identical for block layouts; kept for
    /// completeness).
    pub boxes: Vec<u64>,
}

impl LoadBalance {
    /// Max-over-mean imbalance factor of a work vector (1.0 = perfect).
    fn imbalance(v: &[u64]) -> f64 {
        let sum: u64 = v.iter().sum();
        if sum == 0 {
            return 1.0;
        }
        let mean = sum as f64 / v.len() as f64;
        let max = *v.iter().max().unwrap() as f64;
        max / mean
    }

    /// Imbalance of particle ownership (P2O / evaluation phases).
    pub fn particle_imbalance(&self) -> f64 {
        Self::imbalance(&self.particles)
    }

    /// Imbalance of near-field pair work.
    pub fn near_imbalance(&self) -> f64 {
        Self::imbalance(&self.near_pairs)
    }

    /// Parallel efficiency bound implied by the near-field imbalance
    /// (the slowest VU gates the phase).
    pub fn near_efficiency_bound(&self) -> f64 {
        1.0 / self.near_imbalance()
    }
}

/// Analyze a particle binning at `level` over the VU layout described by
/// `layout` (near-field pair counts use the d-separation neighbourhood).
pub fn analyze(
    binning: &Binning,
    level: u32,
    layout: CoordinateSortKey,
    separation: crate::interaction::Separation,
) -> LoadBalance {
    let n_boxes = binning.starts.len() - 1;
    debug_assert_eq!(n_boxes, 1usize << (3 * level));
    let n_vus = layout.vu_count() as usize;
    let mut particles = vec![0u64; n_vus];
    let mut near_pairs = vec![0u64; n_vus];
    let mut boxes = vec![0u64; n_vus];
    let offsets = crate::interaction::near_field_offsets(separation);
    for b in 0..n_boxes {
        let coord = BoxCoord::from_index(level, b);
        let vu = layout.vu_of(coord) as usize;
        boxes[vu] += 1;
        let nt = binning.count(b) as u64;
        particles[vu] += nt;
        // Self-box pairs (symmetric) + one-directional neighbour pairs.
        near_pairs[vu] += nt * nt.saturating_sub(1) / 2;
        for &d in &offsets {
            if let Some(nb) = coord.offset(d) {
                near_pairs[vu] += nt * binning.count(nb.index()) as u64;
            }
        }
    }
    LoadBalance {
        particles,
        near_pairs,
        boxes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::Separation;
    use crate::sort::bin_particles;

    fn binning_for(ids: Vec<u32>, level: u32) -> Binning {
        bin_particles(&ids, 1 << (3 * level))
    }

    #[test]
    fn uniform_occupancy_is_perfectly_balanced() {
        // One particle per box.
        let level = 2;
        let ids: Vec<u32> = (0..64).collect();
        let b = binning_for(ids, level);
        let layout = CoordinateSortKey::for_vu_grid(level, [2, 2, 2]);
        let lb = analyze(&b, level, layout, Separation::Two);
        assert!((lb.particle_imbalance() - 1.0).abs() < 1e-12);
        assert_eq!(lb.boxes, vec![8; 8]);
    }

    #[test]
    fn clustered_occupancy_is_imbalanced() {
        // All particles in one corner box.
        let level = 2;
        let ids = vec![0u32; 100];
        let b = binning_for(ids, level);
        let layout = CoordinateSortKey::for_vu_grid(level, [2, 2, 2]);
        let lb = analyze(&b, level, layout, Separation::Two);
        assert!((lb.particle_imbalance() - 8.0).abs() < 1e-12); // one of 8 VUs holds all
        assert!(lb.near_efficiency_bound() < 0.2);
    }

    #[test]
    fn near_pairs_count_symmetrically_consistent() {
        // Two particles in adjacent boxes: each VU... single-VU layout:
        // total near pairs = self pairs (0) + cross pairs both directions.
        let level = 1;
        let mut ids = vec![0u32, 1];
        ids.sort_unstable();
        let b = binning_for(ids, level);
        let layout = CoordinateSortKey::local_only(level);
        let lb = analyze(&b, level, layout, Separation::Two);
        // box 0 → 1 and box 1 → 0, one pair each direction.
        assert_eq!(lb.near_pairs, vec![2]);
    }

    #[test]
    fn boxes_always_balanced_in_block_layout() {
        let level = 3;
        let ids = vec![5u32; 77]; // heavily clustered particles
        let b = binning_for(ids, level);
        let layout = CoordinateSortKey::for_vu_grid(level, [4, 2, 2]);
        let lb = analyze(&b, level, layout, Separation::Two);
        // Box ownership is distribution-independent: 512/16 = 32 each.
        assert!(lb.boxes.iter().all(|&v| v == 32));
    }
}
