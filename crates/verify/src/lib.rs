//! # fmm-verify — static checking of SPMD communication programs
//!
//! The paper's communication structure is statically schedulable: every
//! CSHIFT, gather, broadcast and router call of the `fmm-spmd` executor
//! is derivable from `(VuGrid, depth, K, separation)` before any
//! particle exists. The executor already *runs* from that derivation —
//! [`fmm_spmd::CommProgram`] — so this crate proves properties of the
//! very program the workers execute, without launching a thread:
//!
//! 1. **Endpoint matching** ([`passes::endpoints`]) — per step, sends and
//!    receives pair up exactly, by rank and payload type.
//! 2. **Deadlock freedom** ([`passes::deadlock`]) — the phase order is
//!    acyclic (strictly increasing tags) and every step completes under
//!    channel buffering capacity 1; wrapped CSHIFT rings are classified
//!    as requiring buffering ≥ 1 (they would rendezvous-deadlock), which
//!    the unbounded fabric provides.
//! 3. **Budget conformance** ([`passes::budget`]) — statically summed
//!    messages and bytes per phase, compared against
//!    [`fmm_machine::communication_budget`] through the same comparator
//!    the runtime model test uses; data-independent phases (upward
//!    gather, downward broadcast + halo) are byte-exact.
//! 4. **Lifecycle progress** ([`passes::lifecycle`]) — the serve
//!    request state machine ([`fmm_serve::lifecycle`]) is acyclic, every
//!    state is reachable, and every request reaches exactly one terminal
//!    (`Reply` or `Drain`).
//! 5. **No reply after shutdown** ([`passes::lifecycle`]) — every
//!    shutdown-tagged transition ends in `Drain`; no handler path can
//!    answer a request once the server is draining.
//! 6. **Framing totality** ([`passes::framing`]) — the FMM1 binary codec
//!    round-trips bit-exactly, rejects every truncation cleanly, and
//!    bounds hostile length fields before allocating.
//! 7. **Determinism + concurrency lints** ([`passes::lints`]) — lexical
//!    checks over the workspace sources for undocumented `unsafe`,
//!    unordered hashed containers, unjustified parallel reductions,
//!    `Condvar` waits outside a retry loop, and nested lock acquisition
//!    without a `// lock-order:` note.
//!
//! A mutation hook injects one-sided faults (a flipped CSHIFT direction,
//! a dropped receive, a reply-on-shutdown lifecycle edge) so CI can
//! prove the analyzer rejects what it should — see the `check` CLI:
//!
//! ```text
//! cargo run -p fmm-verify -- check [--depth D] [--workers P] [--order O]
//!                                  [--forces] [--skip-lints]
//!                                  [--mutate flipped-shift|dropped-recv|reply-after-shutdown]
//! ```

#![forbid(unsafe_code)]

pub mod lower;
pub mod passes;

use std::fmt::Write as _;

use fmm_machine::VuGrid;
use fmm_spmd::{vu_grid_for, CommProgram, Partition};

pub use lower::{apply_mutation, lower, Lowered, Mutation};

/// What to verify.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    pub depth: u32,
    pub grid: VuGrid,
    /// Anderson approximation order `d` (sets K and M as
    /// `fmm_core::FmmConfig::order` does: K spherical samples, M = d/2+1).
    pub order: usize,
    pub sep_d: usize,
    /// Forces near field (particle halo) instead of potentials
    /// (travelling slots).
    pub with_fields: bool,
    /// Check the cost-weighted partitioned program (a synthetic
    /// heavy-tailed leaf-cost profile) instead of the uniform block
    /// layout's.
    pub balance: bool,
    /// Fault injection for the mutation smoke test.
    pub mutate: Option<Mutation>,
    /// Skip the source lints (pass 4), e.g. when checking many
    /// configurations in one CI job — the sources don't change between
    /// them.
    pub skip_lints: bool,
}

impl CheckConfig {
    pub fn table4() -> Self {
        CheckConfig {
            depth: 4,
            grid: VuGrid::new([8, 4, 4]),
            order: 3,
            sep_d: 2,
            with_fields: false,
            balance: false,
            mutate: None,
            skip_lints: false,
        }
    }

    pub fn for_workers(workers: usize, depth: u32) -> Self {
        CheckConfig {
            grid: vu_grid_for(workers),
            depth,
            ..CheckConfig::table4()
        }
    }
}

/// K spherical samples for Anderson order `d` — the same resolution
/// `fmm_core::FmmConfig::order` performs.
fn k_for_order(order: usize) -> usize {
    fmm_sphere::SphereRule::for_order(order).len()
}

/// Outcome of one pass.
#[derive(Debug, Clone)]
pub struct PassResult {
    pub name: &'static str,
    pub ok: bool,
    pub detail: String,
}

/// Full report of one `check` run.
#[derive(Debug, Clone)]
pub struct Report {
    pub config: CheckConfig,
    pub passes: Vec<PassResult>,
}

impl Report {
    pub fn ok(&self) -> bool {
        self.passes.iter().all(|p| p.ok)
    }

    /// Names of the failing passes (what the CLI prints and the mutation
    /// smoke test greps for).
    pub fn failing(&self) -> Vec<&'static str> {
        self.passes
            .iter()
            .filter(|p| !p.ok)
            .map(|p| p.name)
            .collect()
    }
}

fn list<T: std::fmt::Display>(errs: &[T], cap: usize) -> String {
    let mut s = String::new();
    for e in errs.iter().take(cap) {
        let _ = writeln!(s, "    {e}");
    }
    if errs.len() > cap {
        let _ = writeln!(s, "    ... and {} more", errs.len() - cap);
    }
    s
}

/// Build the `CommProgram` a `CheckConfig` describes — the same program
/// `run_checks` verifies and `preflight_budget` prices.
pub fn build_check_program(cfg: &CheckConfig) -> CommProgram {
    if cfg.balance {
        // A data-dependent layout: cut the Morton curve for a synthetic
        // heavy-tailed leaf-cost profile (deterministic LCG; a few leaves
        // dominate, as a clustered distribution's do), then check the
        // partitioned program exactly like the uniform one.
        let leaves = 1usize << (3 * cfg.depth);
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let costs: Vec<u64> = (0..leaves)
            .map(|_| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                let r = state >> 33;
                if r.is_multiple_of(97) {
                    1 + r % 10_000
                } else {
                    1 + r % 16
                }
            })
            .collect();
        let part = Partition::cost_weighted(cfg.depth, cfg.grid.len(), &costs);
        CommProgram::build_partitioned(
            cfg.grid,
            cfg.depth,
            k_for_order(cfg.order),
            cfg.sep_d,
            cfg.with_fields,
            part,
        )
    } else {
        CommProgram::build(
            cfg.grid,
            cfg.depth,
            k_for_order(cfg.order),
            cfg.sep_d,
            cfg.with_fields,
        )
    }
}

/// Price the program `cfg` describes for the launcher's pre-flight gate:
/// lower it and run the closed-form budget over the lowered endpoints —
/// exactly what pass 3 compares against, with M derived from the order
/// as `FmmConfig::order` derives it.
pub fn preflight_budget(cfg: &CheckConfig) -> fmm_machine::ProgramBudget {
    let program = build_check_program(cfg);
    let low = lower(&program);
    passes::budget::budget_for(&low, cfg.order / 2 + 1, 4.0)
}

/// Build the program for `cfg`, lower it (with any mutation), and run
/// the static passes.
pub fn run_checks(cfg: &CheckConfig) -> Report {
    let program = build_check_program(cfg);
    let mut low = lower(&program);
    if let Some(m) = cfg.mutate {
        apply_mutation(&mut low, m);
    }
    let mut passes = Vec::new();

    match passes::endpoints::check(&low) {
        Ok(s) => passes.push(PassResult {
            name: "endpoint-matching",
            ok: true,
            detail: format!("{} steps, {} messages matched", s.steps, s.matched_messages),
        }),
        Err(errs) => passes.push(PassResult {
            name: "endpoint-matching",
            ok: false,
            detail: format!("{} defect(s)\n{}", errs.len(), list(&errs, 8)),
        }),
    }

    match passes::deadlock::check(&low) {
        Ok(s) => passes.push(PassResult {
            name: "deadlock-freedom",
            ok: true,
            detail: format!(
                "phase order acyclic; {} steps complete at capacity 1 \
                 ({} wrapped rings need buffering >= 1, fabric is unbounded)",
                s.steps, s.ring_steps_needing_buffer
            ),
        }),
        Err(errs) => passes.push(PassResult {
            name: "deadlock-freedom",
            ok: false,
            detail: format!("{} stuck step(s)\n{}", errs.len(), list(&errs, 8)),
        }),
    }

    let m_trunc = cfg.order / 2 + 1;
    match passes::budget::check(&low, m_trunc) {
        Ok(s) => {
            let mut d = String::new();
            for (i, name) in fmm_core_phase_names().iter().enumerate() {
                let ph = &s.phases[i];
                let _ = write!(d, "\n    {name}: {} msgs", ph.messages);
                match ph.bytes {
                    Some(b) => {
                        let _ = write!(d, ", {b} B static");
                        if s.byte_exact_phases.contains(&i) {
                            let _ = write!(d, " (byte-exact vs budget)");
                        }
                    }
                    None => {
                        let _ = write!(d, ", bytes data-dependent");
                    }
                }
            }
            passes.push(PassResult {
                name: "budget-conformance",
                ok: true,
                detail: format!(
                    "within {:.0}% of the model{d}",
                    100.0 * fmm_machine::DEFAULT_TOLERANCE
                ),
            });
        }
        Err(errs) => passes.push(PassResult {
            name: "budget-conformance",
            ok: false,
            detail: format!("{} divergence(s)\n{}", errs.len(), list(&errs, 8)),
        }),
    }

    // The serve lifecycle machine: built mutated when the smoke test
    // asks for a handler that answers on the shutdown path.
    let machine = match cfg.mutate {
        Some(Mutation::ReplyAfterShutdown) => fmm_serve::lifecycle::Lifecycle::serve().with_edge(
            fmm_serve::lifecycle::State::Frame,
            fmm_serve::lifecycle::State::Reply,
            "reply-after-shutdown",
            true,
        ),
        _ => fmm_serve::lifecycle::Lifecycle::serve(),
    };

    match passes::lifecycle::check_progress(&machine) {
        Ok(s) => passes.push(PassResult {
            name: "lifecycle-progress",
            ok: true,
            detail: format!(
                "{} states / {} transitions reachable, acyclic; every request \
                 reaches exactly one of {} terminals",
                s.states, s.transitions, s.terminals
            ),
        }),
        Err(errs) => passes.push(PassResult {
            name: "lifecycle-progress",
            ok: false,
            detail: format!("{} defect(s)\n{}", errs.len(), list(&errs, 8)),
        }),
    }

    match passes::lifecycle::check_no_reply_after_shutdown(&machine) {
        Ok(n) => passes.push(PassResult {
            name: "no-reply-after-shutdown",
            ok: true,
            detail: format!("{n} shutdown-tagged edges all end in drain"),
        }),
        Err(errs) => passes.push(PassResult {
            name: "no-reply-after-shutdown",
            ok: false,
            detail: format!("{} defect(s)\n{}", errs.len(), list(&errs, 8)),
        }),
    }

    match passes::framing::check() {
        Ok(s) => passes.push(PassResult {
            name: "framing-totality",
            ok: true,
            detail: format!(
                "{} round-trip identities, {} truncations/hostile inputs cleanly \
                 rejected, {} opcode bytes classified",
                s.round_trips, s.truncations, s.opcodes
            ),
        }),
        Err(errs) => passes.push(PassResult {
            name: "framing-totality",
            ok: false,
            detail: format!("{} defect(s)\n{}", errs.len(), list(&errs, 8)),
        }),
    }

    if !cfg.skip_lints {
        match passes::lints::check(&passes::lints::default_workspace_root()) {
            Ok(s) => passes.push(PassResult {
                name: "determinism-lints",
                ok: true,
                detail: format!(
                    "{} files; {} unsafe sites documented, {} det annotations, \
                     {} looped waits, {} lock-order notes",
                    s.files_scanned,
                    s.documented_unsafe,
                    s.det_annotations,
                    s.looped_waits,
                    s.lock_order_annotations
                ),
            }),
            Err(errs) => passes.push(PassResult {
                name: "determinism-lints",
                ok: false,
                detail: format!("{} finding(s)\n{}", errs.len(), list(&errs, 12)),
            }),
        }
    }

    Report {
        config: cfg.clone(),
        passes,
    }
}

/// Phase names in report order (mirrors `fmm_core::SpmdReport`, not
/// depended on to keep the analyzer's dependency cone minimal).
fn fmm_core_phase_names() -> [&'static str; 6] {
    [
        "sort",
        "p2o",
        "upward(T1)",
        "downward(T2+T3)",
        "eval",
        "near",
    ]
}
