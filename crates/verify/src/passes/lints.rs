//! Pass 4 — determinism lints over the numeric crates' sources.
//!
//! The repo's headline invariant is bitwise reproducibility across
//! executors and worker counts, which survives only if no code path
//! depends on iteration order or unordered floating-point combination.
//! Three textual lints guard the usual leaks:
//!
//! * **`unsafe` without `// SAFETY:`** — every `unsafe` block or impl
//!   must carry a `// SAFETY:` comment in the 3 lines above it (the
//!   textual form of `clippy::undocumented_unsafe_blocks`, which CI also
//!   enforces; this pass makes `fmm-verify check` self-contained).
//! * **`HashMap`/`HashSet` without `// det:`** — hashed containers
//!   iterate in arbitrary order; any use in non-test code must carry a
//!   `// det:` comment justifying why no arithmetic depends on that
//!   order (e.g. values only looked up by key, never iterated).
//! * **parallel reductions without `// det:`** — a `.sum()`/`.reduce()`
//!   downstream of a `par_iter`-family call combines in nondeterministic
//!   order; each site must justify itself (integer accumulation, or an
//!   ordered sequential fold on the deterministic path).
//!
//! Two concurrency lints guard the serve control plane (and everything
//! else that takes a lock):
//!
//! * **`Condvar::wait` outside a retry loop** — condition variables
//!   admit spurious wakeups and lost races between the wake and the
//!   re-lock; every `.wait(guard)` / `.wait_timeout(guard, d)` must sit
//!   lexically inside an enclosing `loop`/`while` that re-checks the
//!   predicate. A site that is genuinely exempt (e.g. the `fmm-sync`
//!   facade forwarding to the primitive it wraps) must say so with a
//!   `// cv-loop:` comment.
//! * **multiple locks in one function without `// lock-order:`** — a
//!   function that acquires two *different* locks is where AB/BA
//!   deadlocks are born; it must carry a `// lock-order:` comment
//!   naming the global order it follows. (Conservative by design: the
//!   lexical pass cannot see whether the guards overlap, so sequential
//!   acquisitions pay one comment too. fmm-check's `lock-order` model
//!   proves the order deadlock-free dynamically; this lint keeps the
//!   justification next to the code.)
//!
//! These are lexical checks, deliberately: they run in milliseconds with
//! no compiler in the loop, and the annotation they demand is exactly
//! the reviewer-facing justification we want in the source anyway.
//! Test modules (from a top-level `#[cfg(test)]` to end of file — the
//! workspace convention) are exempt.

use std::fs;
use std::path::{Path, PathBuf};

/// Which lint fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintRule {
    UndocumentedUnsafe,
    UnjustifiedHashContainer,
    UnjustifiedParallelReduction,
    CondvarWaitNotLooped,
    NestedLockWithoutOrder,
}

impl std::fmt::Display for LintRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LintRule::UndocumentedUnsafe => "unsafe block without // SAFETY:",
            LintRule::UnjustifiedHashContainer => "HashMap/HashSet without // det:",
            LintRule::UnjustifiedParallelReduction => "parallel reduction without // det:",
            LintRule::CondvarWaitNotLooped => {
                "Condvar wait outside a loop/while retry (or // cv-loop:)"
            }
            LintRule::NestedLockWithoutOrder => "multiple locks in one fn without // lock-order:",
        })
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct LintError {
    pub file: PathBuf,
    /// 1-indexed line.
    pub line: usize,
    pub rule: LintRule,
    pub excerpt: String,
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: `{}`",
            self.file.display(),
            self.line,
            self.rule,
            self.excerpt.trim()
        )
    }
}

/// Summary of a clean run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LintSummary {
    pub files_scanned: usize,
    pub documented_unsafe: usize,
    pub det_annotations: usize,
    /// Condvar waits found inside a retry loop.
    pub looped_waits: usize,
    /// `// lock-order:` justifications found.
    pub lock_order_annotations: usize,
}

/// Does any of `lines[lo..=hi]` (saturating) carry `marker`?
fn window_has(lines: &[&str], hi: usize, span: usize, marker: &str) -> bool {
    let lo = hi.saturating_sub(span);
    lines[lo..=hi].iter().any(|l| l.contains(marker))
}

/// Blank out string literals so lexical matches don't fire on message
/// text (this pass scans its own source too). Not escape-aware beyond
/// `\"`; good enough for the workspace's style.
fn strip_strings(code: &str) -> String {
    let mut out = String::with_capacity(code.len());
    let mut in_str = false;
    let mut prev = '\0';
    for c in code.chars() {
        if c == '"' && prev != '\\' {
            in_str = !in_str;
            out.push(' ');
        } else {
            out.push(if in_str { ' ' } else { c });
        }
        prev = c;
    }
    out
}

/// `unsafe` token introducing a block/impl (not `unsafe fn`/`unsafe extern`,
/// whose obligations live in their `# Safety` docs and call sites, and not
/// part of a longer identifier like `unsafe_code`).
fn is_unsafe_block(line: &str) -> bool {
    let word = |c: char| c.is_alphanumeric() || c == '_';
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(i) = line[from..].find("unsafe").map(|i| i + from) {
        from = i + "unsafe".len();
        let before_ok = i == 0 || !word(bytes[i - 1] as char);
        let after = line[from..].trim_start();
        let standalone = !after.chars().next().is_some_and(word);
        if before_ok && standalone && !(after.starts_with("fn ") || after.starts_with("extern")) {
            return true;
        }
    }
    false
}

fn indent_of(line: &str) -> usize {
    line.len() - line.trim_start().len()
}

/// Is line `i` lexically inside a `loop { … }` or `while … { … }` body
/// of its function? Ascends the (indentation-approximated) block tree:
/// each step considers only lines less indented than everything between
/// them and the call, and stops at the function header.
fn inside_retry_loop(lines: &[&str], i: usize) -> bool {
    let mut indent = indent_of(lines[i]);
    if indent == 0 {
        return false;
    }
    for j in (0..i).rev() {
        let l = lines[j];
        let t = l.trim_start();
        if t.is_empty() || t.starts_with("//") {
            continue;
        }
        let ind = indent_of(l);
        if ind >= indent {
            continue;
        }
        if t.starts_with("loop") || t.starts_with("while ") || t.contains("= loop {") {
            return true;
        }
        if t.starts_with("fn ") || t.contains(" fn ") {
            return false;
        }
        indent = ind;
        if indent == 0 {
            return false;
        }
    }
    false
}

/// A `Condvar`-style blocking wait: `.wait(guard)` / `.wait_timeout(…)`.
/// Zero-argument `.wait()` (e.g. `Child::wait`) and `.wait_while(…)`
/// (loops internally) are not retry hazards.
fn is_condvar_wait(code: &str) -> bool {
    if code.contains(".wait_timeout(") {
        return true;
    }
    code.match_indices(".wait(")
        .any(|(i, pat)| !code[i + pat.len()..].trim_start().starts_with(')'))
}

/// Receivers of zero-argument `.lock()` / `.read()` / `.write()` calls
/// (the lock-acquisition spelling; `io::Read`/`Write` calls always take
/// arguments). `self.state.lock()` yields `self.state`.
fn lock_receivers(code: &str, out: &mut Vec<String>) {
    for pat in [".lock()", ".read()", ".write()"] {
        for (i, _) in code.match_indices(pat) {
            let head = &code[..i];
            let recv: String = head
                .chars()
                .rev()
                .take_while(|c| c.is_alphanumeric() || matches!(c, '_' | '.' | ':'))
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect();
            if !recv.is_empty() && !out.contains(&recv) {
                out.push(recv);
            }
        }
    }
}

fn scan_file(path: &Path, src: &str, errors: &mut Vec<LintError>, summary: &mut LintSummary) {
    let lines: Vec<&str> = src.lines().collect();
    summary.files_scanned += 1;
    for (i, &line) in lines.iter().enumerate() {
        let stripped = strip_strings(line);
        let code = stripped.split("//").next().unwrap_or("");
        // Workspace convention: the test module is the tail of the file.
        if line.trim() == "#[cfg(test)]" {
            break;
        }
        if line.contains("// det:") {
            summary.det_annotations += 1;
        }
        if code.contains("unsafe") && is_unsafe_block(code) {
            if window_has(&lines, i, 3, "SAFETY:") {
                summary.documented_unsafe += 1;
            } else {
                errors.push(LintError {
                    file: path.to_path_buf(),
                    line: i + 1,
                    rule: LintRule::UndocumentedUnsafe,
                    excerpt: line.to_string(),
                });
            }
        }
        if (code.contains("HashMap") || code.contains("HashSet"))
            && !code.trim_start().starts_with("use ")
            && !window_has(&lines, i, 3, "// det:")
        {
            errors.push(LintError {
                file: path.to_path_buf(),
                line: i + 1,
                rule: LintRule::UnjustifiedHashContainer,
                excerpt: line.to_string(),
            });
        }
        if (code.contains(".sum(") || code.contains(".reduce("))
            && window_has(&lines, i, 6, "par_")
            && !window_has(&lines, i, 8, "// det:")
        {
            errors.push(LintError {
                file: path.to_path_buf(),
                line: i + 1,
                rule: LintRule::UnjustifiedParallelReduction,
                excerpt: line.to_string(),
            });
        }
        if is_condvar_wait(code) {
            if inside_retry_loop(&lines, i) || window_has(&lines, i, 3, "// cv-loop:") {
                summary.looped_waits += 1;
            } else {
                errors.push(LintError {
                    file: path.to_path_buf(),
                    line: i + 1,
                    rule: LintRule::CondvarWaitNotLooped,
                    excerpt: line.to_string(),
                });
            }
        }
    }
    scan_fn_lock_order(path, &lines, errors, summary);
}

/// The nested-lock rule: within one function (up to the top-level test
/// module), acquisitions of two or more distinct locks require a
/// `// lock-order:` justification anywhere in that function.
fn scan_fn_lock_order(
    path: &Path,
    lines: &[&str],
    errors: &mut Vec<LintError>,
    summary: &mut LintSummary,
) {
    let limit = lines
        .iter()
        .position(|l| l.trim() == "#[cfg(test)]")
        .unwrap_or(lines.len());
    let is_fn_header = |l: &str| {
        let code = strip_strings(l);
        let code = code.split("//").next().unwrap_or("").trim_start();
        code.starts_with("fn ") || code.contains(" fn ")
    };
    let mut headers: Vec<usize> = (0..limit).filter(|&i| is_fn_header(lines[i])).collect();
    headers.push(limit);
    for win in headers.windows(2) {
        let (start, end) = (win[0], win[1]);
        let mut receivers: Vec<String> = Vec::new();
        let mut second_site = None;
        let mut has_order = false;
        for (i, &line) in lines.iter().enumerate().take(end).skip(start) {
            if line.contains("// lock-order:") {
                has_order = true;
                summary.lock_order_annotations += 1;
            }
            let stripped = strip_strings(line);
            let code = stripped.split("//").next().unwrap_or("");
            let before = receivers.len();
            lock_receivers(code, &mut receivers);
            if before < 2 && receivers.len() >= 2 && second_site.is_none() {
                second_site = Some(i);
            }
        }
        if let Some(i) = second_site {
            if !has_order {
                errors.push(LintError {
                    file: path.to_path_buf(),
                    line: i + 1,
                    rule: LintRule::NestedLockWithoutOrder,
                    excerpt: lines[i].to_string(),
                });
            }
        }
    }
}

/// Scan every `crates/*/src/**/*.rs` under `workspace_root`.
pub fn check(workspace_root: &Path) -> Result<LintSummary, Vec<LintError>> {
    let mut errors = Vec::new();
    let mut summary = LintSummary::default();
    let mut files = Vec::new();
    collect_rs_files(&workspace_root.join("crates"), &mut files);
    files.sort();
    assert!(
        !files.is_empty(),
        "no sources under {}/crates — wrong workspace root?",
        workspace_root.display()
    );
    for path in &files {
        let src =
            fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        scan_file(path, &src, &mut errors, &mut summary);
    }
    if errors.is_empty() {
        Ok(summary)
    } else {
        Err(errors)
    }
}

/// Every crate's `src/` tree — integration tests and benches may
/// legitimately use unordered containers for assertions and are skipped.
fn collect_rs_files(crates_dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(crates_dir) else {
        return;
    };
    for entry in entries.flatten() {
        let src = entry.path().join("src");
        if src.is_dir() {
            walk(&src, out);
        }
    }
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The workspace root as seen from this crate's build location.
pub fn default_workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/verify sits two levels below the workspace root")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<(usize, LintRule)> {
        let mut errors = Vec::new();
        let mut summary = LintSummary::default();
        scan_file(Path::new("test.rs"), src, &mut errors, &mut summary);
        errors.into_iter().map(|e| (e.line, e.rule)).collect()
    }

    #[test]
    fn undocumented_unsafe_block_flagged() {
        let src = "fn f() {\n    unsafe { core::hint::unreachable_unchecked() }\n}\n";
        assert_eq!(findings(src), vec![(2, LintRule::UndocumentedUnsafe)]);
    }

    #[test]
    fn documented_unsafe_block_passes() {
        let src = "fn f() {\n    // SAFETY: unreachable by construction\n    unsafe { core::hint::unreachable_unchecked() }\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn unsafe_fn_and_forbid_attribute_exempt() {
        // `unsafe fn` carries its obligations in `# Safety` docs; the
        // `unsafe_code` lint name is not the keyword.
        let src = "#![forbid(unsafe_code)]\npub unsafe fn f() {}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn hash_container_needs_det() {
        let src = "fn f() {\n    let m = std::collections::HashMap::new();\n}\n";
        assert_eq!(findings(src), vec![(2, LintRule::UnjustifiedHashContainer)]);
        let ok = "fn f() {\n    // det: values only looked up by key\n    let m = std::collections::HashMap::new();\n}\n";
        assert!(findings(ok).is_empty());
    }

    #[test]
    fn parallel_reduction_needs_det() {
        let src = "fn f(v: &[f64]) {\n    let s: f64 = v.par_iter()\n        .map(|x| x * x)\n        .sum();\n}\n";
        assert_eq!(
            findings(src),
            vec![(4, LintRule::UnjustifiedParallelReduction)]
        );
    }

    #[test]
    fn sequential_sum_is_fine() {
        let src = "fn f(v: &[f64]) -> f64 {\n    v.iter().sum()\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn test_module_tail_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { unsafe {} }\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn string_literals_do_not_fire() {
        let src = "fn f() -> &'static str {\n    \"unsafe { } and HashMap here\"\n}\n";
        assert!(findings(src).is_empty());
    }
}
