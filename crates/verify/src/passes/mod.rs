//! The static passes: each takes the lowered program (or, for the
//! lints, the workspace sources) and returns a summary or a list of
//! findings.

pub mod budget;
pub mod deadlock;
pub mod endpoints;
pub mod framing;
pub mod lifecycle;
pub mod lints;
