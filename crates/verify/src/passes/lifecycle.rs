//! Passes 5–6 — the serve request lifecycle machine.
//!
//! [`fmm_serve::lifecycle::Lifecycle`] is the typed transition relation
//! the server's handlers witness at runtime (every handler step is
//! checked against it). These passes prove the machine itself is sound,
//! so the runtime witness means something:
//!
//! * **progress** — every state is reachable from `Accept`, the
//!   relation is acyclic (a progress measure exists), terminals have no
//!   outgoing edges (a request reaches exactly one terminal), and every
//!   non-terminal state reaches a terminal (no request can get stuck
//!   mid-machine).
//! * **no-reply-after-shutdown** — every transition tagged
//!   `during_shutdown` ends in the `Drain` terminal: once a request is
//!   on the shutdown path it is never answered as if accepted. (Jobs
//!   enqueued *before* shutdown still drain to `Reply` — that ordering
//!   is a concurrency property, proven over all interleavings by
//!   fmm-check's `shutdown-drains-all-jobs` model, not here.)

use fmm_serve::lifecycle::{Lifecycle, State};

/// Summary of a clean lifecycle analysis.
#[derive(Debug, Clone, Copy)]
pub struct LifecycleSummary {
    pub states: usize,
    pub transitions: usize,
    pub shutdown_edges: usize,
    pub terminals: usize,
}

fn successors(lc: &Lifecycle, s: State) -> Vec<State> {
    lc.transitions()
        .iter()
        .filter(|t| t.from == s)
        .map(|t| t.to)
        .collect()
}

/// States reachable from `from` (inclusive), in deterministic order.
fn reachable(lc: &Lifecycle, from: State) -> Vec<State> {
    let mut seen = vec![from];
    let mut frontier = vec![from];
    while let Some(s) = frontier.pop() {
        for n in successors(lc, s) {
            if !seen.contains(&n) {
                seen.push(n);
                frontier.push(n);
            }
        }
    }
    seen
}

/// Progress: reachability, acyclicity, terminal discipline.
pub fn check_progress(lc: &Lifecycle) -> Result<LifecycleSummary, Vec<String>> {
    let mut errors = Vec::new();
    let from_accept = reachable(lc, State::Accept);
    for s in State::ALL {
        if !from_accept.contains(&s) {
            errors.push(format!("state {} unreachable from accept", s.name()));
        }
    }
    for t in lc.transitions() {
        if t.from.is_terminal() {
            errors.push(format!(
                "terminal {} has outgoing edge {} -> {} ({}): a request would \
                 reach a second terminal",
                t.from.name(),
                t.from.name(),
                t.to.name(),
                t.label
            ));
        }
    }
    // Acyclicity: a state must never be able to return to itself.
    for s in State::ALL {
        if successors(lc, s)
            .into_iter()
            .any(|n| reachable(lc, n).contains(&s))
        {
            errors.push(format!("cycle through {}: no progress measure", s.name()));
        }
    }
    // Every non-terminal reaches a terminal (no stuck requests).
    for s in State::ALL {
        if !s.is_terminal() && !reachable(lc, s).iter().any(|r| r.is_terminal()) {
            errors.push(format!("{} cannot reach a terminal", s.name()));
        }
    }
    if errors.is_empty() {
        Ok(LifecycleSummary {
            states: State::ALL.len(),
            transitions: lc.transitions().len(),
            shutdown_edges: lc
                .transitions()
                .iter()
                .filter(|t| t.during_shutdown)
                .count(),
            terminals: State::ALL.iter().filter(|s| s.is_terminal()).count(),
        })
    } else {
        Err(errors)
    }
}

/// Shutdown discipline: tagged edges may only end the request in
/// `Drain`. Returns the number of shutdown edges checked.
pub fn check_no_reply_after_shutdown(lc: &Lifecycle) -> Result<usize, Vec<String>> {
    let errors: Vec<String> = lc
        .transitions()
        .iter()
        .filter(|t| t.during_shutdown && t.to != State::Drain)
        .map(|t| {
            format!(
                "shutdown-tagged edge {} -> {} ({}) does not drain: the server \
                 would answer a request on the shutdown path",
                t.from.name(),
                t.to.name(),
                t.label
            )
        })
        .collect();
    if errors.is_empty() {
        Ok(lc
            .transitions()
            .iter()
            .filter(|t| t.during_shutdown)
            .count())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_machine_is_sound() {
        let lc = Lifecycle::serve();
        let s = check_progress(&lc).expect("progress holds");
        assert_eq!(s.terminals, 2);
        assert!(s.shutdown_edges >= 2);
        assert!(check_no_reply_after_shutdown(&lc).expect("drains only") >= 2);
    }

    #[test]
    fn reply_after_shutdown_mutant_is_rejected() {
        let lc = Lifecycle::serve().with_edge(State::Frame, State::Reply, "reply-anyway", true);
        let errs = check_no_reply_after_shutdown(&lc).expect_err("mutant rejected");
        assert!(errs[0].contains("reply-anyway"), "{errs:?}");
        // Progress still holds — the bug is purely a shutdown-discipline
        // violation, so only the dedicated pass catches it.
        check_progress(&lc).expect("progress unaffected");
    }

    #[test]
    fn terminal_with_outgoing_edge_is_rejected() {
        let lc = Lifecycle::serve().with_edge(State::Reply, State::Frame, "loop-back", false);
        let errs = check_progress(&lc).expect_err("second terminal rejected");
        assert!(
            errs.iter().any(|e| e.contains("second terminal")),
            "{errs:?}"
        );
        assert!(errs.iter().any(|e| e.contains("cycle")), "{errs:?}");
    }
}
