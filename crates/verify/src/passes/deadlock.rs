//! Pass 2 — deadlock freedom.
//!
//! Two obligations:
//!
//! 1. **Phase order.** The step/tag sequence must be identical on every
//!    rank and strictly increasing (the program is SPMD: all ranks walk
//!    the same step list). Combined with the fabric's tag-addressed
//!    receives — a receive names `(from, tag)` and early packets of
//!    other tags are parked, never blocking the link — this makes steps
//!    *independent*: a rank stuck in step `t` can still absorb traffic
//!    of any other step, so cross-step waiting chains cannot close into
//!    a cycle. The whole-program question reduces to each step in
//!    isolation.
//!
//! 2. **Per-step completion under bounded buffering.** Each step's
//!    per-rank op sequences are executed by an abstract scheduler
//!    against channels of capacity `C` per ordered rank pair:
//!    * `C = ∞` models the real fabric (unbounded `mpsc`): sends never
//!      block. The step must complete — with matched endpoints the only
//!      residual hazard is a receive ordering cycle.
//!    * `C = 1` models single-slot DMA buffers: a send blocks while a
//!      previous message to the same peer is undelivered. Every step
//!      must still complete, which proves the schedule never needs the
//!      fabric's unboundedness.
//!    * `C = 0` models synchronous rendezvous. Wrapped CSHIFT rings
//!      *cannot* complete here — every rank's send would wait on its
//!      neighbour's receive around the full cycle — so the pass records
//!      these steps as requiring buffering ≥ 1 instead of failing. This
//!      is the classical unbuffered-ring deadlock the CM's CSHIFT avoids
//!      with its double-buffered NEWS transfers; our fabric's unbounded
//!      channels are strictly safer.

use std::collections::BTreeMap;

use fmm_spmd::schedule::{Op, Payload};

use crate::lower::{Lowered, LoweredStep};

/// Channel capacity per ordered rank pair for one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Capacity {
    Rendezvous,
    Bounded(usize),
    Unbounded,
}

/// A step that could not complete under some capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockError {
    pub tag: u64,
    pub capacity: Capacity,
    /// Ranks whose op cursor was still mid-sequence when progress died,
    /// with the op each was blocked on.
    pub stuck: Vec<(usize, Op)>,
    /// Messages sent but never received (nonempty for dropped receives).
    pub undelivered: usize,
}

impl std::fmt::Display for DeadlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step tag {}: cannot complete at {:?}: {} rank(s) blocked{}, {} message(s) undelivered",
            self.tag,
            self.capacity,
            self.stuck.len(),
            self.stuck
                .first()
                .map(|(r, op)| format!(" (first: rank {r} on {op:?})"))
                .unwrap_or_default(),
            self.undelivered
        )
    }
}

/// Summary of a clean run.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadlockSummary {
    pub steps: usize,
    /// Steps that complete only with buffering ≥ 1 (the wrapped rings).
    pub ring_steps_needing_buffer: usize,
}

/// Simulate one step under `cap`. Completion = every rank ran its whole
/// op list and no message is left in flight.
pub fn simulate(step: &LoweredStep, p: usize, cap: Capacity) -> Result<(), DeadlockError> {
    let mut pc = vec![0usize; p];
    // In-flight queues per ordered pair, FIFO per pair like the fabric.
    let mut flight: BTreeMap<(usize, usize), Vec<Payload>> = BTreeMap::new();
    loop {
        let mut progressed = false;
        for rank in 0..p {
            while pc[rank] < step.ops[rank].len() {
                match step.ops[rank][pc[rank]] {
                    Op::Send { to, payload, .. } => {
                        let ok = match cap {
                            Capacity::Unbounded => true,
                            Capacity::Bounded(c) => flight.get(&(rank, to)).map_or(0, Vec::len) < c,
                            Capacity::Rendezvous => {
                                // Completes only if the peer is parked on
                                // the matching receive right now.
                                matches!(
                                    step.ops[to].get(pc[to]),
                                    Some(&Op::Recv { from, payload: pl })
                                        if from == rank && pl == payload
                                )
                            }
                        };
                        if !ok {
                            break;
                        }
                        if cap == Capacity::Rendezvous {
                            pc[to] += 1; // the peer's receive fires with us
                        } else {
                            flight.entry((rank, to)).or_default().push(payload);
                        }
                        pc[rank] += 1;
                        progressed = true;
                    }
                    Op::Recv { from, payload } => {
                        let q = flight.entry((from, rank)).or_default();
                        // Payload compatibility is endpoint matching's
                        // job; here a mismatched head still unblocks
                        // nothing, so treat it as not-yet-arrived.
                        if q.first() != Some(&payload) {
                            break;
                        }
                        q.remove(0);
                        pc[rank] += 1;
                        progressed = true;
                    }
                }
            }
        }
        let done = (0..p).all(|r| pc[r] == step.ops[r].len());
        let undelivered: usize = flight.values().map(Vec::len).sum();
        if done && undelivered == 0 {
            return Ok(());
        }
        if !progressed {
            let stuck = (0..p)
                .filter(|&r| pc[r] < step.ops[r].len())
                .map(|r| (r, step.ops[r][pc[r]]))
                .collect();
            return Err(DeadlockError {
                tag: step.tag,
                capacity: cap,
                stuck,
                undelivered,
            });
        }
    }
}

/// Run the pass: tag monotonicity, then per-step completion at `C = ∞`
/// and `C = 1`; `C = 0` classifies ring steps.
pub fn check(low: &Lowered) -> Result<DeadlockSummary, Vec<DeadlockError>> {
    let p = low.program.grid.len();
    // Tag monotonicity across the whole program (obligation 1).
    for pair in low.steps.windows(2) {
        assert!(
            pair[0].tag < pair[1].tag,
            "schedule tags must strictly increase"
        );
    }
    let mut errors = Vec::new();
    let mut summary = DeadlockSummary::default();
    for step in &low.steps {
        summary.steps += 1;
        for cap in [Capacity::Unbounded, Capacity::Bounded(1)] {
            if let Err(e) = simulate(step, p, cap) {
                errors.push(e);
            }
        }
        if simulate(step, p, Capacity::Rendezvous).is_err() {
            summary.ring_steps_needing_buffer += 1;
        }
    }
    if errors.is_empty() {
        Ok(summary)
    } else {
        Err(errors)
    }
}
