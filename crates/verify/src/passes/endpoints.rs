//! Pass 1 — endpoint matching.
//!
//! Within every step, the multiset of sends `(src → dst, payload)` must
//! equal the multiset of receives `(dst expecting src, payload)`: every
//! message has exactly one receiver that names its sender and payload
//! type, and no rank waits for a message nobody sends. Because the
//! fabric addresses receives by `(from, tag)` and each step owns one
//! tag, matching per step is exactly the property the fabric needs.

use std::collections::BTreeMap;

use fmm_spmd::schedule::{Op, Payload};

use crate::lower::{Lowered, LoweredStep};

/// One endpoint defect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EndpointError {
    /// A send with no receive naming it (count = surplus sends).
    UnmatchedSend {
        tag: u64,
        from: usize,
        to: usize,
        payload: Payload,
        count: usize,
    },
    /// A receive with no send behind it.
    UnmatchedRecv {
        tag: u64,
        at: usize,
        from: usize,
        payload: Payload,
        count: usize,
    },
}

impl std::fmt::Display for EndpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EndpointError::UnmatchedSend {
                tag,
                from,
                to,
                payload,
                count,
            } => write!(
                f,
                "step tag {tag}: {count} unmatched send(s) {from} -> {to} ({payload:?})"
            ),
            EndpointError::UnmatchedRecv {
                tag,
                at,
                from,
                payload,
                count,
            } => write!(
                f,
                "step tag {tag}: rank {at} posts {count} receive(s) from {from} ({payload:?}) nobody sends"
            ),
        }
    }
}

/// Summary of a clean run.
#[derive(Debug, Clone, Copy, Default)]
pub struct EndpointSummary {
    pub steps: usize,
    /// Point-to-point messages matched across the whole program.
    pub matched_messages: u64,
}

fn check_step(step: &LoweredStep, errors: &mut Vec<EndpointError>) -> u64 {
    // (src, dst, payload) -> signed balance: sends +1, receives −1.
    let mut balance: BTreeMap<(usize, usize, Payload), i64> = BTreeMap::new();
    let mut sends = 0u64;
    for (rank, ops) in step.ops.iter().enumerate() {
        for op in ops {
            match *op {
                Op::Send { to, payload, .. } => {
                    debug_assert_ne!(to, rank, "self-sends are local moves, not messages");
                    *balance.entry((rank, to, payload)).or_default() += 1;
                    sends += 1;
                }
                Op::Recv { from, payload } => {
                    *balance.entry((from, rank, payload)).or_default() -= 1;
                }
            }
        }
    }
    for ((from, to, payload), b) in balance {
        if b > 0 {
            errors.push(EndpointError::UnmatchedSend {
                tag: step.tag,
                from,
                to,
                payload,
                count: b as usize,
            });
        } else if b < 0 {
            errors.push(EndpointError::UnmatchedRecv {
                tag: step.tag,
                at: to,
                from,
                payload,
                count: (-b) as usize,
            });
        }
    }
    sends
}

/// Run the pass over the whole lowered program.
pub fn check(low: &Lowered) -> Result<EndpointSummary, Vec<EndpointError>> {
    let mut errors = Vec::new();
    let mut summary = EndpointSummary::default();
    for step in &low.steps {
        summary.matched_messages += check_step(step, &mut errors);
        summary.steps += 1;
    }
    if errors.is_empty() {
        Ok(summary)
    } else {
        Err(errors)
    }
}
