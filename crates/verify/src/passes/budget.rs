//! Pass 3 — budget conformance.
//!
//! Statically sum every phase's logical messages and payload bytes from
//! the lowered endpoints and compare against
//! [`fmm_machine::communication_budget`] with the *same* comparator the
//! runtime model test uses ([`fmm_machine::check_phases`]); tolerance
//! handling lives in `fmm-machine`, in one place.
//!
//! What "byte-exact" means here: a phase whose sends all carry
//! [`Volume::Exact`] payloads (upward's gather, downward's broadcast +
//! halos) has a statically known byte total, equal to what the executor's
//! counters will measure on *any* input — the volumes are properties of
//! the layout, not the particles. Those totals are additionally exact
//! against the closed-form budget itself: the upward gather because
//! Σ 2^tz(r) over ranks equals the model's `gather_hops`, the downward
//! halo + broadcast because the budget's axis-aware halo accounting
//! prices wrap-aliased ghost cells as local moves exactly as the
//! lowering does. Phases with data-dependent payloads (router sort,
//! travelling slots, particle halo) report `bytes: None` and are
//! checked on message counts alone.

use fmm_machine::{
    check_phases, communication_budget_with, BudgetMismatch, MeasuredPhase, ProgramBudget,
    ProgramConfig,
};
use fmm_spmd::schedule::{Op, Volume};

use crate::lower::Lowered;

/// Statically summed communication of one phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticPhase {
    /// Machine-wide logical messages (the schedule's `logical_msgs`).
    pub messages: u64,
    /// Payload bytes, `None` if any send in the phase is data-dependent.
    pub bytes: Option<u64>,
}

/// Result of the pass on a conformant program.
#[derive(Debug, Clone)]
pub struct BudgetSummary {
    pub phases: [StaticPhase; 6],
    /// Phase indices whose static byte totals equal the closed-form
    /// budget bit for bit (not merely within tolerance).
    pub byte_exact_phases: Vec<usize>,
    pub budget: ProgramBudget,
}

/// Sum each phase of the lowered program.
pub fn static_phases(low: &Lowered) -> [StaticPhase; 6] {
    let mut phases: [StaticPhase; 6] = [StaticPhase {
        messages: 0,
        bytes: Some(0),
    }; 6];
    for step in &low.steps {
        let ph = &mut phases[step.phase];
        ph.messages += step.logical_msgs;
        for ops in &step.ops {
            for op in ops {
                if let Op::Send { words, .. } = op {
                    match (words, &mut ph.bytes) {
                        (Volume::Exact(w), Some(b)) => *b += w * 8,
                        (Volume::Dynamic, b) => *b = None,
                        (_, None) => {}
                    }
                }
            }
        }
    }
    phases
}

/// Price the lowered program's configuration. `sort_miss_fraction` and
/// `particles_per_box` only shape the data-dependent phases the static
/// sums skip, so representative defaults are fine for conformance.
pub fn budget_for(low: &Lowered, m: usize, particles_per_box: f64) -> ProgramBudget {
    let prog = &low.program;
    let p = prog.grid.len();
    // A partitioned program is priced from its own exchange plans — the
    // single source of truth the schedule was derived from.
    communication_budget_with(
        &ProgramConfig {
            depth: prog.depth,
            k: prog.k,
            m,
            particles_per_box,
            vu_grid: prog.grid,
            supernodes: false,
            sort_miss_fraction: 1.0 - 1.0 / p as f64,
            forces_near: prog.with_fields,
        },
        prog.partition.as_ref().map(|ps| &ps.partition),
    )
}

/// Run the pass: static sums vs. the closed-form budget through the
/// shared comparator at its default tolerance.
pub fn check(low: &Lowered, m: usize) -> Result<BudgetSummary, Vec<BudgetMismatch>> {
    let budget = budget_for(low, m, 4.0);
    let phases = static_phases(low);
    let measured: Vec<MeasuredPhase> = phases
        .iter()
        .map(|p| MeasuredPhase {
            messages: p.messages,
            bytes: p.bytes,
        })
        .collect();
    let mismatches = check_phases(&budget, &measured, fmm_machine::DEFAULT_TOLERANCE);
    if !mismatches.is_empty() {
        return Err(mismatches);
    }
    let byte_exact_phases = phases
        .iter()
        .enumerate()
        .filter_map(|(i, ph)| {
            let b = ph.bytes?;
            (b > 0 && b == fmm_machine::predicted_bytes(&budget.phases[i].comm, budget.config_k))
                .then_some(i)
        })
        .collect();
    Ok(BudgetSummary {
        phases,
        byte_exact_phases,
        budget,
    })
}
