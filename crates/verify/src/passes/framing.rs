//! Pass 7 — framing round-trip totality.
//!
//! The binary front door's codec ([`fmm_serve::protocol`]) must be
//! *total*: every encode/decode pair is an identity, every truncation
//! of a valid payload is a clean `Err` (never a panic, never a partial
//! parse that silently drops particles), every opcode byte is either a
//! known frame or `None`, and a hostile length field fails **before**
//! allocating. This pass runs the codec over a deterministic corpus
//! derived from representative requests; the randomized counterpart
//! (proptest over arbitrary byte soup) lives in
//! `crates/serve/tests/fuzz_protocol.rs`.

use fmm_serve::protocol::{
    self, decode_eval_response, decode_evaluate, encode_eval_response, encode_evaluate,
    EvalRequest, EvalResponse, Opcode, Shape,
};

/// Summary of a clean framing analysis.
#[derive(Debug, Clone, Copy, Default)]
pub struct FramingSummary {
    /// Encode→decode identities verified (requests and responses).
    pub round_trips: usize,
    /// Truncated payloads that decoded to a clean error.
    pub truncations: usize,
    /// Opcode bytes classified (the whole `u8` space).
    pub opcodes: usize,
}

fn shapes() -> Vec<Shape> {
    let base = Shape {
        order: 3,
        depth: 2,
        separation: 2,
        mixed: false,
        forces: false,
    };
    vec![
        base,
        Shape {
            forces: true,
            ..base
        },
        Shape {
            mixed: true,
            separation: 1,
            ..base
        },
        Shape {
            order: 8,
            depth: 5,
            forces: true,
            mixed: true,
            ..base
        },
    ]
}

fn request(shape: Shape, n: usize) -> EvalRequest {
    EvalRequest {
        shape,
        positions: (0..n)
            .map(|i| {
                let f = i as f64 / (n.max(1) as f64);
                [f, (f * 1.7) % 1.0, (f * 2.3) % 1.0]
            })
            .collect(),
        charges: (0..n).map(|i| 1.0 - 2.0 * ((i % 2) as f64)).collect(),
    }
}

fn req_eq(a: &EvalRequest, b: &EvalRequest) -> bool {
    // Bitwise comparison: the wire format stores f64 LE bit patterns,
    // so a round trip must preserve every bit, NaNs included.
    a.shape == b.shape
        && a.positions.len() == b.positions.len()
        && a.charges.len() == b.charges.len()
        && a.positions
            .iter()
            .zip(&b.positions)
            .all(|(x, y)| x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits()))
        && a.charges
            .iter()
            .zip(&b.charges)
            .all(|(p, q)| p.to_bits() == q.to_bits())
}

fn resp_eq(a: &EvalResponse, b: &EvalResponse) -> bool {
    a.batch_size == b.batch_size
        && a.potentials.len() == b.potentials.len()
        && a.potentials
            .iter()
            .zip(&b.potentials)
            .all(|(p, q)| p.to_bits() == q.to_bits())
        && match (&a.fields, &b.fields) {
            (None, None) => true,
            (Some(x), Some(y)) => {
                x.len() == y.len()
                    && x.iter()
                        .zip(y)
                        .all(|(r, s)| r.iter().zip(s).all(|(p, q)| p.to_bits() == q.to_bits()))
            }
            _ => false,
        }
}

/// Run the codec over the corpus.
pub fn check() -> Result<FramingSummary, Vec<String>> {
    let mut errors = Vec::new();
    let mut summary = FramingSummary::default();

    for shape in shapes() {
        for n in [1usize, 3, 17] {
            let req = request(shape, n);
            // The encoding carries the opcode byte at [0]; the server
            // decodes the payload after it (mirroring `handle_binary`).
            let enc = encode_evaluate(&req);
            let payload = &enc[1..];
            // Identity: decode(encode(r)) == r, bit for bit.
            match decode_evaluate(payload) {
                Ok(back) if req_eq(&req, &back) => summary.round_trips += 1,
                Ok(_) => errors.push(format!(
                    "evaluate round trip not identity ({shape:?}, n={n})"
                )),
                Err(e) => errors.push(format!(
                    "evaluate round trip failed ({shape:?}, n={n}): {e}"
                )),
            }
            // Totality under truncation: every proper prefix is a clean Err.
            for cut in 0..payload.len() {
                if decode_evaluate(&payload[..cut]).is_ok() {
                    errors.push(format!(
                        "truncated evaluate payload ({cut} of {} bytes) parsed as valid",
                        payload.len()
                    ));
                } else {
                    summary.truncations += 1;
                }
            }

            let resp = EvalResponse {
                potentials: req.charges.clone(),
                fields: shape.forces.then(|| req.positions.clone()),
                batch_size: n,
            };
            // A response payload starts at its status byte — the decoder
            // consumes the whole frame payload.
            let enc = encode_eval_response(&resp);
            match decode_eval_response(&enc, shape.forces) {
                Ok(back) if resp_eq(&resp, &back) => summary.round_trips += 1,
                Ok(_) => errors.push(format!(
                    "response round trip not identity ({shape:?}, n={n})"
                )),
                Err(e) => errors.push(format!(
                    "response round trip failed ({shape:?}, n={n}): {e}"
                )),
            }
            for cut in 0..enc.len() {
                if decode_eval_response(&enc[..cut], shape.forces).is_ok() {
                    errors.push(format!(
                        "truncated response ({cut} of {} bytes) parsed as valid",
                        enc.len()
                    ));
                } else {
                    summary.truncations += 1;
                }
            }
        }
    }

    // A hostile particle count must fail before allocating 96 GiB.
    let mut hostile = vec![0u8; 12];
    hostile[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    if decode_evaluate(&hostile).is_ok() {
        errors.push("hostile particle count (u32::MAX) accepted".into());
    } else {
        summary.truncations += 1;
    }

    // Opcode space is total: the four known frames and nothing else.
    for b in 0..=255u8 {
        let known = matches!(b, 1..=4);
        match Opcode::from_u8(b) {
            Some(_) if known => summary.opcodes += 1,
            None if !known => summary.opcodes += 1,
            Some(op) => errors.push(format!("opcode byte {b} unexpectedly maps to {op:?}")),
            None => errors.push(format!("known opcode byte {b} rejected")),
        }
    }

    // The frame length cap holds on the read path: a length prefix just
    // over MAX_FRAME is rejected without reading the body.
    let mut oversized = Vec::new();
    oversized.extend_from_slice(&(protocol::MAX_FRAME + 1).to_le_bytes());
    match protocol::read_frame(&mut oversized.as_slice()) {
        Err(_) => summary.truncations += 1,
        Ok(_) => errors.push("frame over MAX_FRAME accepted by read_frame".into()),
    }

    if errors.is_empty() {
        Ok(summary)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_total() {
        let s = check().expect("codec total over the corpus");
        assert!(s.round_trips >= 24, "round trips: {}", s.round_trips);
        assert!(s.truncations > 1000, "truncations: {}", s.truncations);
        assert_eq!(s.opcodes, 256);
    }
}
