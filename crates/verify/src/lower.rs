//! Lowering: expand a [`CommProgram`] into every rank's concrete,
//! ordered send/receive endpoints, step by step.
//!
//! The lowered form is what the passes analyze. It is produced by the
//! same [`fmm_spmd::schedule::Step::ops_for`] the executor's collectives
//! mirror, so a property proven of the lowered program is a property of
//! the program the workers run.
//!
//! Mutations for the analyzer's own smoke tests are applied *here*, to
//! the lowered endpoints, not to the schedule builder: flipping a whole
//! CSHIFT step coherently (sends and receives together) would produce a
//! different but still valid ring, which no analyzer should reject. The
//! interesting faults are one-sided — a sender shifting the wrong way
//! while receivers still expect the old direction, a rank that forgets
//! to post a receive — and those are exactly what the mutations inject.

use fmm_spmd::schedule::{ring_partners, CommProgram, Op, StepKind};

/// One step of the lowered program: the schedule step plus every rank's
/// ordered op list.
#[derive(Debug, Clone)]
pub struct LoweredStep {
    /// Phase index (0..6, `SpmdReport` order).
    pub phase: usize,
    pub kind: StepKind,
    pub tag: u64,
    pub logical_msgs: u64,
    /// `ops[rank]` is rank `rank`'s op sequence, in execution order.
    pub ops: Vec<Vec<Op>>,
}

/// The fully lowered communication program.
#[derive(Debug, Clone)]
pub struct Lowered {
    pub program: CommProgram,
    pub steps: Vec<LoweredStep>,
}

/// Expand every step of `prog` to per-rank endpoints.
pub fn lower(prog: &CommProgram) -> Lowered {
    let p = prog.grid.len();
    let steps = prog
        .steps()
        .map(|(phase, st)| LoweredStep {
            phase,
            kind: st.kind,
            tag: st.tag,
            logical_msgs: st.logical_msgs,
            ops: (0..p).map(|rank| st.ops_for(prog, rank)).collect(),
        })
        .collect();
    Lowered {
        program: prog.clone(),
        steps,
    }
}

/// A schedule fault injected for the mutation smoke test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Every sender of the first travelling-slot CSHIFT shifts the wrong
    /// way; receivers keep expecting the scheduled direction. On any ring
    /// of ≥ 4 ranks the endpoints no longer pair up.
    FlippedShift,
    /// Rank 0 forgets to post its first receive, leaving one send
    /// unmatched.
    DroppedRecv,
    /// The serve lifecycle machine grows a shutdown-tagged edge into
    /// `Reply` (a handler answering on the shutdown path). Applied when
    /// the machine is built, not here — see `run_checks`.
    ReplyAfterShutdown,
}

impl Mutation {
    pub fn parse(s: &str) -> Option<Mutation> {
        match s {
            "flipped-shift" => Some(Mutation::FlippedShift),
            "dropped-recv" => Some(Mutation::DroppedRecv),
            "reply-after-shutdown" => Some(Mutation::ReplyAfterShutdown),
            _ => None,
        }
    }
}

/// Apply `m` to the lowered program in place. Panics if the program has
/// no site for the mutation (e.g. a forces program has no slot shifts, a
/// p = 1 program has no receives) — the smoke test must pick a
/// configuration where the fault exists.
pub fn apply_mutation(low: &mut Lowered, m: Mutation) {
    match m {
        Mutation::FlippedShift => {
            let grid = low.program.grid;
            let step = low
                .steps
                .iter_mut()
                .find(|s| matches!(s.kind, StepKind::SlotShift { .. }))
                .expect("program has a travelling-slot shift to flip");
            let StepKind::SlotShift { axis, delta, .. } = step.kind else {
                unreachable!()
            };
            assert!(
                grid.dims[axis] >= 4,
                "a flipped ring of < 4 ranks is endpoint-equivalent; \
                 use a grid with >= 4 VUs along axis {axis}"
            );
            for (rank, ops) in step.ops.iter_mut().enumerate() {
                for op in ops.iter_mut() {
                    if let Op::Send { to, .. } = op {
                        let (wrong_dst, _) = ring_partners(&grid, rank, axis, -delta);
                        *to = wrong_dst;
                    }
                }
            }
        }
        Mutation::DroppedRecv => {
            let step = low
                .steps
                .iter_mut()
                .find(|s| s.ops[0].iter().any(|o| matches!(o, Op::Recv { .. })))
                .expect("program has a receive on rank 0 to drop");
            let i = step.ops[0]
                .iter()
                .position(|o| matches!(o, Op::Recv { .. }))
                .unwrap();
            step.ops[0].remove(i);
        }
        // Not a schedule fault: this mutation lives in the lifecycle
        // machine, which `run_checks` builds mutated instead.
        Mutation::ReplyAfterShutdown => {}
    }
}
