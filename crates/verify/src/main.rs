//! `fmm-verify` CLI: statically check the SPMD communication program.
//!
//! ```text
//! cargo run -p fmm-verify -- check [--depth D] [--workers P] [--order O]
//!                                  [--forces] [--skip-lints]
//!                                  [--mutate flipped-shift|dropped-recv|reply-after-shutdown]
//! ```
//!
//! Exit status 0 iff every pass is green; on failure the failing passes
//! are named on stderr (the CI mutation smoke test greps for them).

use std::process::ExitCode;

use fmm_verify::{run_checks, CheckConfig, Mutation};

fn usage() -> ! {
    eprintln!(
        "usage: fmm-verify check [--depth D] [--workers P] [--order O] \
         [--forces] [--balance] [--skip-lints] \
         [--mutate flipped-shift|dropped-recv|reply-after-shutdown]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    if it.next().map(String::as_str) != Some("check") {
        usage();
    }
    let mut cfg = CheckConfig::table4();
    let mut workers: Option<usize> = None;
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> &str {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--depth" => cfg.depth = val("--depth").parse().unwrap_or_else(|_| usage()),
            "--workers" => workers = Some(val("--workers").parse().unwrap_or_else(|_| usage())),
            "--order" => cfg.order = val("--order").parse().unwrap_or_else(|_| usage()),
            "--forces" => cfg.with_fields = true,
            "--balance" => cfg.balance = true,
            "--mutate" => {
                cfg.mutate = Some(Mutation::parse(val("--mutate")).unwrap_or_else(|| usage()))
            }
            "--skip-lints" => cfg.skip_lints = true,
            _ => usage(),
        }
    }
    if let Some(p) = workers {
        cfg.grid = fmm_spmd::vu_grid_for(p);
    }
    if cfg.grid.dims.iter().any(|&d| d > 1usize << cfg.depth) {
        eprintln!(
            "error: VU grid {:?} does not fit depth {} ({} leaf boxes per axis)",
            cfg.grid.dims,
            cfg.depth,
            1usize << cfg.depth
        );
        return ExitCode::FAILURE;
    }

    println!(
        "fmm-verify: checking CommProgram depth={} workers={} grid={:?} order={} ({}{}){}",
        cfg.depth,
        cfg.grid.len(),
        cfg.grid.dims,
        cfg.order,
        if cfg.with_fields {
            "forces near field"
        } else {
            "potentials near field"
        },
        if cfg.balance {
            ", cost-weighted partition"
        } else {
            ""
        },
        cfg.mutate
            .map(|m| format!(", mutation {m:?}"))
            .unwrap_or_default(),
    );
    let report = run_checks(&cfg);
    for pass in &report.passes {
        println!(
            "  pass {:<20} {} ({})",
            pass.name,
            if pass.ok { "ok" } else { "FAILED" },
            pass.detail
        );
    }
    if report.ok() {
        println!("fmm-verify: all {} passes green", report.passes.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("fmm-verify: FAILED passes: {}", report.failing().join(", "));
        ExitCode::FAILURE
    }
}
