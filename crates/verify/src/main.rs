//! `fmm-verify` CLI: statically check the SPMD communication program.
//!
//! ```text
//! cargo run -p fmm-verify -- check [--depth D] [--workers P] [--order O]
//!                                  [--forces] [--skip-lints]
//!                                  [--mutate flipped-shift|dropped-recv|reply-after-shutdown]
//! cargo run -p fmm-verify -- preflight [--depth D] [--workers P] [--order O]
//!                                      [--forces] [--balance]
//!                                      [--fabric inprocess|unix|tcp]
//!                                      [--capacity-bytes B]
//! ```
//!
//! `check` runs the static passes; `preflight` prices the same program's
//! budget on a transport model and gates it against a byte capacity —
//! the go/no-go a launcher runs before spawning ranks. Exit status 0 iff
//! every pass (or the capacity gate) is green; failures are named on
//! stderr (the CI smoke tests grep for them).

use std::process::ExitCode;

use fmm_machine::TransportModel;
use fmm_verify::{preflight_budget, run_checks, CheckConfig, Mutation};

fn usage() -> ! {
    eprintln!(
        "usage: fmm-verify check [--depth D] [--workers P] [--order O] \
         [--forces] [--balance] [--skip-lints] \
         [--mutate flipped-shift|dropped-recv|reply-after-shutdown]\n\
         \u{20}      fmm-verify preflight [--depth D] [--workers P] [--order O] \
         [--forces] [--balance] [--fabric inprocess|unix|tcp] [--capacity-bytes B]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let mode = it.next().map(String::as_str);
    if mode != Some("check") && mode != Some("preflight") {
        usage();
    }
    let mut cfg = CheckConfig::table4();
    let mut workers: Option<usize> = None;
    let mut fabric = "inprocess".to_string();
    let mut capacity_bytes: Option<u64> = None;
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> &str {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--depth" => cfg.depth = val("--depth").parse().unwrap_or_else(|_| usage()),
            "--workers" => workers = Some(val("--workers").parse().unwrap_or_else(|_| usage())),
            "--order" => cfg.order = val("--order").parse().unwrap_or_else(|_| usage()),
            "--forces" => cfg.with_fields = true,
            "--balance" => cfg.balance = true,
            "--mutate" => {
                cfg.mutate = Some(Mutation::parse(val("--mutate")).unwrap_or_else(|| usage()))
            }
            "--skip-lints" => cfg.skip_lints = true,
            "--fabric" => fabric = val("--fabric").to_string(),
            "--capacity-bytes" => {
                capacity_bytes = Some(val("--capacity-bytes").parse().unwrap_or_else(|_| usage()))
            }
            _ => usage(),
        }
    }
    if let Some(p) = workers {
        cfg.grid = fmm_spmd::vu_grid_for(p);
    }
    if cfg.grid.dims.iter().any(|&d| d > 1usize << cfg.depth) {
        eprintln!(
            "error: VU grid {:?} does not fit depth {} ({} leaf boxes per axis)",
            cfg.grid.dims,
            cfg.depth,
            1usize << cfg.depth
        );
        return ExitCode::FAILURE;
    }

    if mode == Some("preflight") {
        let Some(model) = TransportModel::by_name(&fabric) else {
            eprintln!("error: unknown fabric {fabric:?} (inprocess|unix|tcp)");
            return ExitCode::FAILURE;
        };
        println!(
            "fmm-verify: pre-flight depth={} workers={} grid={:?} order={} fabric={}{}",
            cfg.depth,
            cfg.grid.len(),
            cfg.grid.dims,
            cfg.order,
            model.name,
            capacity_bytes
                .map(|b| format!(" capacity={b}B"))
                .unwrap_or_default(),
        );
        let budget = preflight_budget(&cfg);
        return match fmm_machine::preflight(&budget, &model, capacity_bytes) {
            Ok(report) => {
                println!("fmm-verify: pre-flight ok: {report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("fmm-verify: FAILED preflight: {e}");
                ExitCode::FAILURE
            }
        };
    }

    println!(
        "fmm-verify: checking CommProgram depth={} workers={} grid={:?} order={} ({}{}){}",
        cfg.depth,
        cfg.grid.len(),
        cfg.grid.dims,
        cfg.order,
        if cfg.with_fields {
            "forces near field"
        } else {
            "potentials near field"
        },
        if cfg.balance {
            ", cost-weighted partition"
        } else {
            ""
        },
        cfg.mutate
            .map(|m| format!(", mutation {m:?}"))
            .unwrap_or_default(),
    );
    let report = run_checks(&cfg);
    for pass in &report.passes {
        println!(
            "  pass {:<20} {} ({})",
            pass.name,
            if pass.ok { "ok" } else { "FAILED" },
            pass.detail
        );
    }
    if report.ok() {
        println!("fmm-verify: all {} passes green", report.passes.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("fmm-verify: FAILED passes: {}", report.failing().join(", "));
        ExitCode::FAILURE
    }
}
