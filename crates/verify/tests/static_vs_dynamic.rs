//! The analyzer's static sums against the executor's dynamic counters.
//!
//! The whole premise of `fmm-verify` is that the communication schedule
//! is data-independent: the statically summed per-phase message counts
//! must equal what the SPMD executor's channel counters measure on *any*
//! input, and every phase whose payload volumes are statically known
//! (`Volume::Exact` throughout) must match measured bytes exactly.
//! Random systems, depths 2–4, worker counts 1–16, both near-field
//! variants.

use fmm_core::{Executor, Fmm, FmmConfig};
use fmm_spmd::{vu_grid_for, CommProgram};
use fmm_verify::lower;
use fmm_verify::passes::budget::static_phases;
use proptest::prelude::*;

fn system(lo: usize, hi: usize) -> impl Strategy<Value = (Vec<[f64; 3]>, Vec<f64>)> {
    (lo..hi).prop_flat_map(|n| {
        (
            proptest::collection::vec(
                (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0).prop_map(|(x, y, z)| [x, y, z]),
                n,
            ),
            proptest::collection::vec(-2.0f64..2.0, n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Static per-phase totals == dynamic per-phase counters, for random
    /// systems and machine shapes.
    #[test]
    fn static_totals_match_dynamic_counters((pts, q) in system(40, 220),
                                            depth in 2u32..5,
                                            log_p in 0u32..5,
                                            forces in proptest::bool::ANY) {
        fmm_spmd::install();
        let p = 1usize << log_p;
        let fmm = Fmm::new(
            FmmConfig::order(3).depth(depth).executor(Executor::spmd(p)),
        ).unwrap();
        let out = if forces {
            fmm.evaluate_forces(&pts, &q).unwrap()
        } else {
            fmm.evaluate(&pts, &q).unwrap()
        };
        let report = out.spmd.expect("spmd run attaches a report");

        let grid = vu_grid_for(p);
        prop_assert_eq!(grid.dims, report.vu_dims);
        let program = CommProgram::build(grid, depth, fmm.k(), 2, forces);
        let stat = static_phases(&lower(&program));

        for (i, (s, d)) in stat.iter().zip(&report.phases).enumerate() {
            prop_assert_eq!(
                s.messages, d.messages,
                "phase {} messages: static {} vs dynamic {} (p={} depth={} forces={})",
                i, s.messages, d.messages, p, depth, forces
            );
            if let Some(b) = s.bytes {
                prop_assert_eq!(
                    b, d.bytes,
                    "phase {} bytes: static {} vs dynamic {} (p={} depth={} forces={})",
                    i, b, d.bytes, p, depth, forces
                );
            }
        }
    }
}
