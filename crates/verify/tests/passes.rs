//! Unit/integration tests of the analyzer itself: clean programs pass
//! every structural pass at every machine shape, and each injected
//! mutation is caught by the pass that owns it.

use fmm_machine::VuGrid;
use fmm_spmd::{vu_grid_for, CommProgram};
use fmm_verify::passes::{budget, deadlock, endpoints};
use fmm_verify::{apply_mutation, lower, run_checks, CheckConfig, Mutation};

fn table4_program() -> CommProgram {
    CommProgram::build(VuGrid::new([8, 4, 4]), 4, 6, 2, false)
}

#[test]
fn structural_passes_clean_across_machine_shapes() {
    for p in [1usize, 2, 4, 8, 16, 64, 128] {
        for depth in 2..=4u32 {
            let grid = vu_grid_for(p);
            if grid.dims.iter().any(|&d| d > 1usize << depth) {
                continue; // grid does not fit the leaf level
            }
            for forces in [false, true] {
                let prog = CommProgram::build(grid, depth, 6, 2, forces);
                let low = lower(&prog);
                let e = endpoints::check(&low)
                    .unwrap_or_else(|errs| panic!("p={p} depth={depth}: {errs:?}"));
                assert_eq!(e.steps, prog.step_count());
                let d = deadlock::check(&low)
                    .unwrap_or_else(|errs| panic!("p={p} depth={depth}: {errs:?}"));
                assert_eq!(d.steps, prog.step_count());
                // Single-rank programs exchange nothing.
                if p == 1 {
                    assert_eq!(e.matched_messages, 0);
                }
            }
        }
    }
}

#[test]
fn budget_pass_clean_and_byte_exact_where_static() {
    for p in [1usize, 2, 4, 8, 16, 128] {
        let depth = if p == 128 { 4 } else { 3 };
        let prog = CommProgram::build(vu_grid_for(p), depth, 6, 2, false);
        let low = lower(&prog);
        let s = budget::check(&low, 2).unwrap_or_else(|errs| panic!("p={p}: {errs:?}"));
        // Any phase with a statically known, nonzero byte total must be
        // byte-exact against the closed-form budget — that is the claim
        // the axis-aware halo accounting makes.
        for (i, ph) in s.phases.iter().enumerate() {
            if ph.bytes.is_some_and(|b| b > 0) {
                assert!(
                    s.byte_exact_phases.contains(&i),
                    "p={p} phase {i}: static bytes {:?} not byte-exact",
                    ph.bytes
                );
            }
        }
    }
}

#[test]
fn table4_static_totals_are_the_pr2_constants() {
    let low = lower(&table4_program());
    let phases = budget::static_phases(&low);
    let msgs: Vec<u64> = phases.iter().map(|p| p.messages).collect();
    assert_eq!(msgs, [1, 0, 127, 19, 0, 65]);
    assert_eq!(phases[2].bytes, Some(86_016));
    assert_eq!(phases[3].bytes, Some(24_351_744));
    // Sort and near-field payloads are data-dependent.
    assert_eq!(phases[0].bytes, None);
    assert_eq!(phases[5].bytes, None);
}

#[test]
fn flipped_shift_is_rejected_by_endpoints_and_deadlock() {
    let mut low = lower(&table4_program());
    apply_mutation(&mut low, Mutation::FlippedShift);
    let errs = endpoints::check(&low).expect_err("flipped ring must not match");
    assert!(!errs.is_empty());
    deadlock::check(&low).expect_err("flipped ring must not complete");
}

#[test]
fn dropped_recv_is_rejected_with_one_unmatched_send() {
    let mut low = lower(&table4_program());
    apply_mutation(&mut low, Mutation::DroppedRecv);
    let errs = endpoints::check(&low).expect_err("dropped receive must not match");
    assert_eq!(errs.len(), 1);
    assert!(matches!(
        errs[0],
        endpoints::EndpointError::UnmatchedSend {
            to: 0,
            count: 1,
            ..
        }
    ));
    let derrs = deadlock::check(&low).expect_err("dropped receive leaves a message in flight");
    assert!(derrs.iter().all(|e| e.undelivered > 0));
}

#[test]
fn mutation_parsing() {
    assert_eq!(
        Mutation::parse("flipped-shift"),
        Some(Mutation::FlippedShift)
    );
    assert_eq!(Mutation::parse("dropped-recv"), Some(Mutation::DroppedRecv));
    assert_eq!(Mutation::parse("no-such-fault"), None);
}

#[test]
fn run_checks_reports_the_failing_pass_by_name() {
    let mut cfg = CheckConfig::table4();
    cfg.skip_lints = true; // source tree state is the lint pass's own test
    let clean = run_checks(&cfg);
    assert!(clean.ok(), "{:?}", clean.failing());

    cfg.mutate = Some(Mutation::FlippedShift);
    let bad = run_checks(&cfg);
    assert!(!bad.ok());
    assert!(bad.failing().contains(&"endpoint-matching"));
}
