//! `fmm-check` CLI: exhaustively model-check the serve control plane.
//!
//! ```text
//! fmm-check [--threads N] [--preemption-bound K] [--max-schedules M]
//!           [--model NAME] [--mutate MUT] [--list]
//! ```
//!
//! With no arguments: run every healthy model at `--threads` (default
//! 2) racing threads, print per-model explored-schedule counts, exit 0
//! iff every property holds under every explored schedule.
//!
//! `--mutate drop-double-check|drop-notify|reset-overflow-tick|
//! swap-lock-order` runs the model carrying that seeded bug instead;
//! the checker must find the violating schedule, and the process exits
//! **non-zero naming the violated property** (the CI smoke test relies
//! on this; a mutant the checker misses exits 0, which `!` in CI turns
//! into a failure).

use std::process::ExitCode;

use fmm_check::{run_healthy, Mutation, HEALTHY_MODELS};
use fmm_sync::model::Options;

fn usage() -> ! {
    eprintln!(
        "usage: fmm-check [--threads N] [--preemption-bound K] [--max-schedules M] \
         [--model NAME] [--mutate {}] [--list]",
        Mutation::ALL.map(|m| m.name()).join("|")
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let mut threads: usize = 2;
    let mut opts = Options::default();
    let mut only: Option<String> = None;
    let mut mutate: Option<Mutation> = None;
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> &str {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--threads" => threads = val("--threads").parse().unwrap_or_else(|_| usage()),
            "--preemption-bound" => {
                opts.preemption_bound = Some(
                    val("--preemption-bound")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--max-schedules" => {
                opts.max_schedules = val("--max-schedules").parse().unwrap_or_else(|_| usage())
            }
            "--model" => only = Some(val("--model").to_string()),
            "--mutate" => {
                mutate = Some(Mutation::parse(val("--mutate")).unwrap_or_else(|| usage()))
            }
            "--list" => {
                for m in HEALTHY_MODELS {
                    println!("{m}");
                }
                return ExitCode::SUCCESS;
            }
            _ => usage(),
        }
    }
    if !(1..=4).contains(&threads) {
        eprintln!("--threads must be 1..=4 (exploration is exponential in threads)");
        usage();
    }

    if let Some(m) = mutate {
        let report = m.run(threads, &opts);
        println!(
            "fmm-check: seeded mutation {} → model {} (property {})",
            m.name(),
            report.name,
            report.property
        );
        return match report.result {
            Err(v) => {
                println!("  property {} VIOLATED — mutation caught:", report.property);
                for line in v.to_string().lines() {
                    println!("  {line}");
                }
                ExitCode::FAILURE
            }
            Ok(e) => {
                println!(
                    "  MUTANT SURVIVED: {} schedules explored ({}), no violation — \
                     the checker has a blind spot",
                    e.schedules,
                    if e.complete { "complete" } else { "truncated" }
                );
                ExitCode::SUCCESS
            }
        };
    }

    println!(
        "fmm-check: exploring control-plane interleavings \
         (threads={threads}, preemption bound={}, schedule budget={})",
        opts.preemption_bound
            .map(|b| b.to_string())
            .unwrap_or_else(|| "none".into()),
        if opts.max_schedules == 0 {
            "none".into()
        } else {
            opts.max_schedules.to_string()
        },
    );
    let names: Vec<&str> = match &only {
        Some(n) => {
            if !HEALTHY_MODELS.contains(&n.as_str()) {
                eprintln!("unknown model {n:?}; --list shows the models");
                return ExitCode::FAILURE;
            }
            vec![n.as_str()]
        }
        None => HEALTHY_MODELS.to_vec(),
    };
    let mut total: u64 = 0;
    let mut failed = Vec::new();
    for name in names {
        let report = run_healthy(name, threads, &opts).expect("listed model exists");
        match report.result {
            Ok(e) => {
                total += e.schedules;
                println!(
                    "  model {:<24} ok — {} schedules ({}), {} pruned, {} transitions  [{}]",
                    report.name,
                    e.schedules,
                    if e.complete { "complete" } else { "TRUNCATED" },
                    e.pruned,
                    e.transitions,
                    report.property
                );
            }
            Err(v) => {
                total += v.schedules;
                println!(
                    "  model {:<24} FAILED — property {} violated:",
                    report.name, report.property
                );
                for line in v.to_string().lines() {
                    println!("    {line}");
                }
                failed.push(report.property);
            }
        }
    }
    if failed.is_empty() {
        println!("fmm-check: all models hold ({total} schedules explored)");
        ExitCode::SUCCESS
    } else {
        eprintln!("fmm-check: VIOLATED properties: {}", failed.join(", "));
        ExitCode::FAILURE
    }
}
