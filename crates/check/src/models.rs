//! The checked models: small concurrent programs, each pinning one
//! safety property of the serve control plane, run under
//! [`fmm_sync::model::explore`] so *every* thread interleaving (modulo
//! sleep-set pruning, which only skips provably-equivalent orders) is
//! executed.
//!
//! Healthy models drive the **real** production code — `PlanRegistry`
//! and `Batcher` compile against the `fmm-sync` facade, so the code
//! under test here is byte-for-byte the code fmm-serve runs. Seeded
//! mutants run *replicas*: local copies of the same locking protocol
//! with one bug planted (double-check deleted, `notify_all` dropped,
//! overflow tick reset, lock order swapped). A replica-with-no-bug
//! variant of each is model-checked in this crate's tests so the
//! replicas are known-faithful; the mutants exist to prove the checker
//! would catch the bug if it were ever introduced into the real code.

use fmm_core::{Executor, Kernel, PlanKey, PlanRegistry, Precision, Separation, TraversalPlan};
use fmm_serve::protocol::{EvalRequest, EvalResponse, Shape};
use fmm_serve::Batcher;
use fmm_sync::atomic::{AtomicUsize, Ordering};
use fmm_sync::model::{explore, Explored, Options, Violation};
use fmm_sync::time::Instant;
use fmm_sync::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// One explored model: its name (CLI selector), the property it pins
/// (named in the violation report), and the outcome.
pub struct ModelReport {
    pub name: &'static str,
    pub property: &'static str,
    pub result: Result<Explored, Box<Violation>>,
}

fn spawn<F: FnOnce() + Send + 'static>(name: String, f: F) -> fmm_sync::thread::JoinHandle<()> {
    fmm_sync::thread::Builder::new()
        .name(name)
        .spawn(f)
        .expect("model spawn")
}

// ---------------------------------------------------------------------
// Registry: exactly one plan build per key.
// ---------------------------------------------------------------------

fn plan_key() -> PlanKey {
    PlanKey {
        depth: 2,
        k: 12,
        separation: Separation::Two,
        executor: Executor::Rayon,
        kernel: Kernel::Scalar,
        precision: Precision::F64,
    }
}

/// `threads` tenants race `PlanRegistry::get_or_build_with` on one key.
/// The builder clones a prototype plan built once outside the model, so
/// every explored schedule exercises the full read-lock / double-checked
/// write-lock protocol without paying for a real plan build. Property:
/// the builder runs exactly once, and every tenant observes that one
/// plan.
pub fn registry_build_once(threads: usize, opts: &Options) -> ModelReport {
    let proto = Arc::new(TraversalPlan::build_with(
        2,
        Separation::Two,
        Kernel::Scalar,
    ));
    let result = explore(opts, move || {
        let reg = Arc::new(PlanRegistry::new(4));
        let builds = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let (reg, proto, builds) = (reg.clone(), proto.clone(), builds.clone());
                spawn(format!("tenant-{i}"), move || {
                    let p = reg.get_or_build_with(plan_key(), || {
                        builds.fetch_add(1, Ordering::Relaxed);
                        proto.clone()
                    });
                    assert!(
                        Arc::ptr_eq(&p, &proto),
                        "exactly-one-plan-build-per-key: tenant observed a plan \
                         that is not the single prototype"
                    );
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let n = builds.load(Ordering::Relaxed);
        assert_eq!(
            n, 1,
            "exactly-one-plan-build-per-key: builder ran {n} times for one key"
        );
        let s = reg.stats();
        assert_eq!(
            s.plan_builds, 1,
            "exactly-one-plan-build-per-key: stats disagree"
        );
    });
    ModelReport {
        name: "registry-build-once",
        property: "exactly-one-plan-build-per-key",
        result,
    }
}

/// Replica of the registry's read-then-write locking protocol (the map
/// payload is irrelevant, so a `u32` stands in for the plan). With
/// `double_check` the write path re-checks residency before building —
/// exactly what `PlanRegistry::get_or_build_with` does; without it the
/// protocol has the classic check-then-act race.
struct MiniRegistry {
    // det: keyed lookups only; never iterated.
    map: RwLock<HashMap<u32, Arc<u32>>>,
    double_check: bool,
}

impl MiniRegistry {
    fn get_or_build(&self, key: u32, builds: &AtomicUsize) -> Arc<u32> {
        {
            let map = self.map.read().unwrap();
            if let Some(v) = map.get(&key) {
                return v.clone();
            }
        }
        let mut map = self.map.write().unwrap();
        if self.double_check {
            if let Some(v) = map.get(&key) {
                return v.clone();
            }
        }
        builds.fetch_add(1, Ordering::Relaxed);
        let v = Arc::new(key);
        map.insert(key, v.clone());
        v
    }
}

/// The registry protocol replica, with or without the double check.
/// `double_check = true` must hold under every schedule (replica
/// fidelity); `false` is the `drop-double-check` mutant the checker
/// must catch.
pub fn registry_replica(threads: usize, double_check: bool, opts: &Options) -> ModelReport {
    let result = explore(opts, move || {
        let reg = Arc::new(MiniRegistry {
            // det: see the field justification.
            map: RwLock::new(HashMap::new()),
            double_check,
        });
        let builds = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let (reg, builds) = (reg.clone(), builds.clone());
                spawn(format!("tenant-{i}"), move || {
                    reg.get_or_build(7, &builds);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let n = builds.load(Ordering::Relaxed);
        assert_eq!(
            n, 1,
            "exactly-one-plan-build-per-key: builder ran {n} times for one key"
        );
    });
    ModelReport {
        name: if double_check {
            "registry-replica"
        } else {
            "registry-replica(drop-double-check)"
        },
        property: "exactly-one-plan-build-per-key",
        result,
    }
}

// ---------------------------------------------------------------------
// Batcher: exactly one completion per job; shutdown drains; overflow
// keeps its opening tick; no lost wakeup.
// ---------------------------------------------------------------------

fn tiny_shape() -> Shape {
    Shape {
        order: 3,
        depth: 2,
        separation: 2,
        mixed: false,
        forces: false,
    }
}

fn tiny_request() -> EvalRequest {
    EvalRequest {
        shape: tiny_shape(),
        positions: vec![[0.5; 3]],
        charges: vec![1.0],
    }
}

fn tiny_response(batch_size: usize) -> EvalResponse {
    EvalResponse {
        potentials: vec![0.0],
        fields: None,
        batch_size,
    }
}

/// `submitters` clients race one executor worker over the real
/// [`Batcher`]. Every submitted job must be answered exactly once: the
/// client asserts one completion arrives and that no second message is
/// ever buffered behind it. The worker's deadline-aware
/// `Condvar::wait_timeout` branches between notify-wake and
/// timeout-wake under the model's virtual clock, so both the "batch
/// fills" and "window elapses" closings are explored; a lost wakeup
/// anywhere in the protocol shows up as a deadlock.
pub fn batcher_exactly_once(submitters: usize, opts: &Options) -> ModelReport {
    let result = explore(opts, move || {
        let b = Arc::new(Batcher::new(Duration::from_millis(5), 2));
        let worker = {
            let b = b.clone();
            spawn("exec".into(), move || {
                while let Some((_shape, jobs)) = b.next_batch() {
                    let n = jobs.len();
                    for j in jobs {
                        let _ = j.tx.send(Ok(tiny_response(n)));
                    }
                }
            })
        };
        let subs: Vec<_> = (0..submitters)
            .map(|i| {
                let b = b.clone();
                spawn(format!("client-{i}"), move || {
                    let rx = b.submit(tiny_request()).expect("no shutdown in this model");
                    let first = rx
                        .recv()
                        .expect("exactly-one-completion-per-job: job dropped without completion");
                    first.expect("job unexpectedly failed");
                    assert!(
                        rx.try_recv().is_err(),
                        "exactly-one-completion-per-job: second completion delivered"
                    );
                })
            })
            .collect();
        for h in subs {
            h.join().unwrap();
        }
        b.shutdown();
        worker.join().unwrap();
    });
    ModelReport {
        name: "batcher-exactly-once",
        property: "exactly-one-completion-per-job",
        result,
    }
}

/// `submitters` clients race the shutdown trigger over the real
/// [`Batcher`]. Every submit must either be rejected atomically
/// (`Err`, nothing queued) or be drained to exactly one completion —
/// shutdown never strands a queued job, and the worker's drain loop
/// terminates.
pub fn batcher_shutdown_drains(submitters: usize, opts: &Options) -> ModelReport {
    let result = explore(opts, move || {
        let b = Arc::new(Batcher::new(Duration::from_millis(5), 2));
        let worker = {
            let b = b.clone();
            spawn("exec".into(), move || {
                while let Some((_shape, jobs)) = b.next_batch() {
                    let n = jobs.len();
                    for j in jobs {
                        let _ = j.tx.send(Ok(tiny_response(n)));
                    }
                }
            })
        };
        let subs: Vec<_> = (0..submitters)
            .map(|i| {
                let b = b.clone();
                spawn(format!("client-{i}"), move || {
                    match b.submit(tiny_request()) {
                        Err(_) => (), // rejected atomically: nothing was queued
                        Ok(rx) => {
                            rx.recv()
                                .expect(
                                    "shutdown-drains-all-jobs: accepted job dropped \
                                 without completion",
                                )
                                .expect("job unexpectedly failed");
                        }
                    }
                })
            })
            .collect();
        b.shutdown(); // races the submitters above
        for h in subs {
            h.join().unwrap();
        }
        worker.join().unwrap();
        assert_eq!(
            b.queue_depth(),
            0,
            "shutdown-drains-all-jobs: jobs left queued after drain"
        );
    });
    ModelReport {
        name: "batcher-shutdown-drains",
        property: "shutdown-drains-all-jobs",
        result,
    }
}

/// Three same-shape submissions against `max_batch = 2`: the first
/// batch closes full, one job overflows. The overflow must stay
/// immediately schedulable — its window deadline (opening tick plus
/// window) is unchanged by the drain. A batcher that reset `opened` on
/// drain would report a strictly later deadline and re-arm the window
/// against traffic that already waited.
pub fn batcher_overflow_tick(opts: &Options) -> ModelReport {
    let result = explore(opts, move || {
        let b = Batcher::new(Duration::from_secs(1), 2);
        for _ in 0..3 {
            b.submit(tiny_request()).unwrap();
        }
        let before = b
            .pending_deadline(&tiny_shape())
            .expect("three jobs queued");
        let (_shape, jobs) = b.next_batch().expect("full batch ready");
        assert_eq!(jobs.len(), 2, "batch closes at max_batch");
        let after = b
            .pending_deadline(&tiny_shape())
            .expect("overflow still queued");
        assert_eq!(
            after, before,
            "overflow-keeps-opening-tick: deadline moved after drain"
        );
        b.shutdown();
        let (_shape, rest) = b.next_batch().expect("overflow drains at shutdown");
        assert_eq!(rest.len(), 1);
        assert!(b.next_batch().is_none(), "drain terminates");
    });
    ModelReport {
        name: "batcher-overflow-tick",
        property: "overflow-keeps-opening-tick",
        result,
    }
}

/// Replica of the batcher's mutex-and-condvar core, reduced to one
/// shape and jobs that are bare completion channels. Two seeded bugs:
/// `drop_notify` deletes the `notify_all` in `submit` (the classic
/// lost wakeup — a worker already parked on the condvar never learns a
/// job arrived), and `reset_overflow_tick` re-stamps `opened` when a
/// drain leaves overflow queued.
struct MiniBatcher {
    state: Mutex<MiniState>,
    cond: Condvar,
    window: Duration,
    max_batch: usize,
    drop_notify: bool,
    reset_overflow_tick: bool,
}

struct MiniState {
    jobs: Vec<fmm_sync::mpsc::SyncSender<u32>>,
    opened: Instant,
    shutdown: bool,
}

impl MiniBatcher {
    fn new(window: Duration, max_batch: usize) -> Self {
        MiniBatcher {
            state: Mutex::new(MiniState {
                jobs: Vec::new(),
                opened: Instant::now(),
                shutdown: false,
            }),
            cond: Condvar::new(),
            window,
            max_batch,
            drop_notify: false,
            reset_overflow_tick: false,
        }
    }

    fn submit(&self) -> Result<fmm_sync::mpsc::Receiver<u32>, ()> {
        let (tx, rx) = fmm_sync::mpsc::sync_channel(1);
        let mut st = self.state.lock().unwrap();
        if st.shutdown {
            return Err(());
        }
        if st.jobs.is_empty() {
            st.opened = Instant::now();
        }
        st.jobs.push(tx);
        if !self.drop_notify {
            self.cond.notify_all();
        }
        Ok(rx)
    }

    fn pending_deadline(&self) -> Option<Instant> {
        let st = self.state.lock().unwrap();
        (!st.jobs.is_empty()).then(|| st.opened + self.window)
    }

    fn next_batch(&self) -> Option<Vec<fmm_sync::mpsc::SyncSender<u32>>> {
        let mut st = self.state.lock().unwrap();
        loop {
            let now = Instant::now();
            let ready = !st.jobs.is_empty()
                && (st.shutdown
                    || st.jobs.len() >= self.max_batch
                    || now.duration_since(st.opened) >= self.window);
            if ready {
                let take = st.jobs.len().min(self.max_batch);
                let batch: Vec<_> = st.jobs.drain(..take).collect();
                if self.reset_overflow_tick && !st.jobs.is_empty() {
                    st.opened = Instant::now(); // seeded bug: re-arms the window
                }
                return Some(batch);
            }
            if st.shutdown {
                return None;
            }
            st = if st.jobs.is_empty() {
                self.cond.wait(st).unwrap()
            } else {
                let deadline = st.opened + self.window;
                let timeout = deadline.saturating_duration_since(now);
                self.cond.wait_timeout(st, timeout).unwrap().0
            };
        }
    }

    fn shutdown(&self) {
        let mut st = self.state.lock().unwrap();
        st.shutdown = true;
        self.cond.notify_all();
    }
}

/// The batcher replica under one client and one worker. Healthy
/// (`drop_notify = false`) it must complete in every schedule; with the
/// notify dropped, the schedule where the worker parks *before* the
/// submit deadlocks — client waiting on its completion, worker waiting
/// on a signal that never comes. The model Condvar is lost-wakeup
/// faithful (a notify wakes only threads already waiting), so the
/// checker reports that schedule as a deadlock.
pub fn batcher_replica_wakeup(drop_notify: bool, opts: &Options) -> ModelReport {
    let result = explore(opts, move || {
        let mut b = MiniBatcher::new(Duration::from_secs(1), 1);
        b.drop_notify = drop_notify;
        let b = Arc::new(b);
        let worker = {
            let b = b.clone();
            spawn("exec".into(), move || {
                while let Some(batch) = b.next_batch() {
                    for tx in batch {
                        let _ = tx.send(1);
                    }
                }
            })
        };
        let client = {
            let b = b.clone();
            spawn("client".into(), move || {
                let rx = b.submit().expect("no shutdown yet");
                rx.recv().expect("no-lost-wakeup: completion never arrived");
            })
        };
        client.join().unwrap();
        b.shutdown();
        worker.join().unwrap();
    });
    ModelReport {
        name: if drop_notify {
            "batcher-replica(drop-notify)"
        } else {
            "batcher-replica"
        },
        property: "no-lost-wakeup",
        result,
    }
}

/// The overflow-tick property on the replica, healthy or with the
/// `reset-overflow-tick` mutant planted. Single-threaded: the property
/// is about state kept across a drain, not about interleavings.
pub fn batcher_replica_overflow(reset_tick: bool, opts: &Options) -> ModelReport {
    let result = explore(opts, move || {
        let mut b = MiniBatcher::new(Duration::from_secs(1), 2);
        b.reset_overflow_tick = reset_tick;
        for _ in 0..3 {
            b.submit().unwrap();
        }
        let before = b.pending_deadline().expect("jobs queued");
        let batch = b.next_batch().expect("full batch ready");
        assert_eq!(batch.len(), 2);
        let after = b.pending_deadline().expect("overflow still queued");
        assert_eq!(
            after, before,
            "overflow-keeps-opening-tick: deadline moved after drain"
        );
    });
    ModelReport {
        name: if reset_tick {
            "batcher-replica(reset-overflow-tick)"
        } else {
            "batcher-replica-overflow"
        },
        property: "overflow-keeps-opening-tick",
        result,
    }
}

// ---------------------------------------------------------------------
// Lock ordering: the engine→registry nesting.
// ---------------------------------------------------------------------

/// Replica of the control plane's one nested acquisition:
/// `Engine::fmm_for` holds the `fmms` write lock while the `Fmm`
/// constructor resolves plans in the shared registry. Every production
/// path takes `fmms` before the registry lock. Healthy, both model
/// tenants follow that order and the model is deadlock-free under
/// every schedule; the `swap-lock-order` mutant reverses one tenant,
/// and the checker finds the AB/BA schedule that deadlocks.
pub fn lock_order(swapped: bool, opts: &Options) -> ModelReport {
    let result = explore(opts, move || {
        let fmms = Arc::new(Mutex::new(0u32));
        let registry = Arc::new(Mutex::new(0u32));
        let a = {
            let (fmms, registry) = (fmms.clone(), registry.clone());
            spawn("tenant-a".into(), move || {
                let mut f = fmms.lock().unwrap();
                // lock-order: fmms → registry (matches Engine::fmm_for).
                let mut r = registry.lock().unwrap();
                *f += 1;
                *r += 1;
            })
        };
        let b = {
            let (fmms, registry) = (fmms.clone(), registry.clone());
            spawn("tenant-b".into(), move || {
                if swapped {
                    let mut r = registry.lock().unwrap();
                    // Seeded bug: acquisition order reversed (registry →
                    // fmms), the classic AB/BA deadlock against tenant-a.
                    let mut f = fmms.lock().unwrap();
                    *f += 1;
                    *r += 1;
                } else {
                    let mut f = fmms.lock().unwrap();
                    // lock-order: fmms → registry (matches Engine::fmm_for).
                    let mut r = registry.lock().unwrap();
                    *f += 1;
                    *r += 1;
                }
            })
        };
        a.join().unwrap();
        b.join().unwrap();
    });
    ModelReport {
        name: if swapped {
            "lock-order(swap-lock-order)"
        } else {
            "lock-order"
        },
        property: "consistent-lock-order",
        result,
    }
}
