//! # fmm-check — exhaustive model checking of the serve control plane
//!
//! The fmm-serve control plane (plan registry, coalescing batcher,
//! shutdown drain) is ordinary mutex-and-condvar code, which means its
//! correctness claims are claims about *all* thread interleavings — a
//! space unit tests sample and ThreadSanitizer observes one run at a
//! time. This crate closes that gap: the control plane compiles against
//! the [`fmm_sync`] facade, and under [`fmm_sync::model::explore`] the
//! facade becomes a cooperative scheduler that replays the program
//! under **every** schedule (bounded preemptions optional, sleep-set
//! pruning for soundness-preserving reduction), failing with the exact
//! decision sequence when any schedule panics, deadlocks, or livelocks.
//!
//! Checked properties (see [`models`]):
//!
//! | model                    | property                         |
//! |--------------------------|----------------------------------|
//! | `registry-build-once`    | exactly-one-plan-build-per-key   |
//! | `batcher-exactly-once`   | exactly-one-completion-per-job   |
//! | `batcher-shutdown-drains`| shutdown-drains-all-jobs         |
//! | `batcher-overflow-tick`  | overflow-keeps-opening-tick      |
//! | `batcher-replica`        | no-lost-wakeup                   |
//! | `lock-order`             | consistent-lock-order            |
//!
//! Seeded mutations (CI's smoke test that the checker has teeth): each
//! plants one classic concurrency bug in a protocol replica and must
//! make `fmm-check --mutate <name>` exit non-zero naming the violated
//! property and the schedule that exposed it.

pub mod models;

pub use models::ModelReport;

use fmm_sync::model::Options;

/// Seeded concurrency bugs for the mutation smoke tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Delete the registry write-path re-check: two tenants racing a
    /// cold key both build it (check-then-act race).
    DropDoubleCheck,
    /// Drop the `notify_all` in `Batcher::submit`: a worker parked
    /// before the submit never wakes (lost wakeup → deadlock).
    DropNotify,
    /// Re-stamp the batch-opening tick when a drain leaves overflow
    /// queued: the leftover's window deadline silently moves later.
    ResetOverflowTick,
    /// Reverse one tenant's fmms→registry acquisition order: the
    /// classic AB/BA deadlock.
    SwapLockOrder,
}

impl Mutation {
    pub const ALL: [Mutation; 4] = [
        Mutation::DropDoubleCheck,
        Mutation::DropNotify,
        Mutation::ResetOverflowTick,
        Mutation::SwapLockOrder,
    ];

    pub fn parse(s: &str) -> Option<Mutation> {
        Some(match s {
            "drop-double-check" => Mutation::DropDoubleCheck,
            "drop-notify" => Mutation::DropNotify,
            "reset-overflow-tick" => Mutation::ResetOverflowTick,
            "swap-lock-order" => Mutation::SwapLockOrder,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            Mutation::DropDoubleCheck => "drop-double-check",
            Mutation::DropNotify => "drop-notify",
            Mutation::ResetOverflowTick => "reset-overflow-tick",
            Mutation::SwapLockOrder => "swap-lock-order",
        }
    }

    /// Run the model carrying this seeded bug.
    pub fn run(self, threads: usize, opts: &Options) -> ModelReport {
        match self {
            Mutation::DropDoubleCheck => models::registry_replica(threads, false, opts),
            Mutation::DropNotify => models::batcher_replica_wakeup(true, opts),
            Mutation::ResetOverflowTick => models::batcher_replica_overflow(true, opts),
            Mutation::SwapLockOrder => models::lock_order(true, opts),
        }
    }
}

/// Names of the healthy models, in run order.
pub const HEALTHY_MODELS: [&str; 6] = [
    "registry-build-once",
    "batcher-exactly-once",
    "batcher-shutdown-drains",
    "batcher-overflow-tick",
    "batcher-replica",
    "lock-order",
];

/// Run one healthy model by name. `threads` is the number of racing
/// model threads (tenants / clients) where the model is parameterized.
pub fn run_healthy(name: &str, threads: usize, opts: &Options) -> Option<ModelReport> {
    Some(match name {
        "registry-build-once" => models::registry_build_once(threads, opts),
        "batcher-exactly-once" => models::batcher_exactly_once(threads, opts),
        "batcher-shutdown-drains" => models::batcher_shutdown_drains(threads, opts),
        "batcher-overflow-tick" => models::batcher_overflow_tick(opts),
        "batcher-replica" => models::batcher_replica_wakeup(false, opts),
        "lock-order" => models::lock_order(false, opts),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_sync::model::ViolationKind;

    fn opts() -> Options {
        Options::default()
    }

    #[test]
    fn every_healthy_model_holds_at_two_threads() {
        for name in HEALTHY_MODELS {
            let report = run_healthy(name, 2, &opts()).unwrap();
            let explored = report
                .result
                .unwrap_or_else(|v| panic!("{name} violated {}:\n{v}", report.property));
            assert!(explored.complete, "{name}: exploration truncated");
            assert!(explored.schedules >= 1, "{name}: no schedules run");
        }
    }

    #[test]
    fn replica_protocols_match_the_real_ones() {
        // The healthy replicas the mutants are planted in must
        // themselves hold, or catching the mutant proves nothing.
        let r = models::registry_replica(2, true, &opts());
        r.result.expect("healthy registry replica holds");
        let r = models::batcher_replica_overflow(false, &opts());
        r.result.expect("healthy overflow replica holds");
    }

    #[test]
    fn registry_race_needs_more_than_one_schedule() {
        let report = models::registry_build_once(2, &opts());
        let explored = report.result.expect("model holds");
        assert!(
            explored.schedules > 1,
            "read/write lock race admits multiple orders; sleep sets \
             collapsed the exploration to a single schedule"
        );
    }

    #[test]
    fn drop_double_check_is_caught_as_a_double_build() {
        let report = Mutation::DropDoubleCheck.run(2, &opts());
        let v = report.result.expect_err("mutant must be caught");
        match &v.kind {
            ViolationKind::Panic(msg) => {
                assert!(
                    msg.contains("exactly-one-plan-build-per-key"),
                    "names the property: {msg}"
                )
            }
            k => panic!("expected a panic violation, got {k:?}"),
        }
        assert!(!v.trace.is_empty(), "violation names the schedule");
    }

    #[test]
    fn drop_notify_is_caught_as_a_lost_wakeup_deadlock() {
        let report = Mutation::DropNotify.run(2, &opts());
        let v = report.result.expect_err("mutant must be caught");
        assert!(
            matches!(v.kind, ViolationKind::Deadlock(_)),
            "lost wakeup surfaces as a deadlock, got {:?}",
            v.kind
        );
    }

    #[test]
    fn reset_overflow_tick_is_caught() {
        let report = Mutation::ResetOverflowTick.run(1, &opts());
        let v = report.result.expect_err("mutant must be caught");
        match &v.kind {
            ViolationKind::Panic(msg) => {
                assert!(
                    msg.contains("overflow-keeps-opening-tick"),
                    "names the property: {msg}"
                )
            }
            k => panic!("expected a panic violation, got {k:?}"),
        }
    }

    #[test]
    fn swap_lock_order_is_caught_as_ab_ba_deadlock() {
        let report = Mutation::SwapLockOrder.run(2, &opts());
        let v = report.result.expect_err("mutant must be caught");
        match &v.kind {
            ViolationKind::Deadlock(parked) => {
                // Both tenants hold one lock and want the other; main is
                // parked too, blocked joining them.
                for t in ["tenant-a", "tenant-b"] {
                    assert!(
                        parked.iter().any(|p| p.contains(t)),
                        "{t} parked in {parked:?}"
                    );
                }
            }
            k => panic!("expected a deadlock, got {k:?}"),
        }
    }
}
