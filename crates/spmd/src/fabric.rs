//! The message fabric: worker ranks as VUs behind a pluggable transport.
//!
//! Every worker owns its particles and box data outright; nothing is shared
//! mutably. The only way data moves between workers is a [`WorkerCtx::send`]
//! / [`WorkerCtx::recv`] pair over a [`Transport`], which makes the measured
//! byte and message counts the *actual* data motion of the program — the
//! quantity `fmm_machine::communication_budget` predicts.
//!
//! The transport seam splits the fabric into two halves with different
//! determinism obligations:
//!
//! * the **wire** ([`Transport`]): how an f64 payload travels from rank to
//!   rank — moved `Vec`s over in-process channels
//!   ([`ChannelTransport`]), or length-prefixed `FMMW` frames over UNIX /
//!   TCP sockets ([`crate::transport::SocketTransport`]). Free to differ
//!   between backends as long as payload bits arrive unchanged;
//! * the **bookkeeping** ([`TagAllocator`], [`fmm_core::Counters`]): tag
//!   allocation and data-motion counting. Deliberately *outside* the
//!   trait — both are pure functions of the `CommProgram`, so they must
//!   not vary per backend, or the bitwise-equal-counters invariant across
//!   fabrics would be silently unverifiable.
//!
//! Determinism: tags are allocated by a monotonic per-worker counter, and
//! every worker executes the same program (same sequence of collective
//! calls), so tag `t` means the same collective phase on every rank. A
//! receive names its `(from, tag)` pair; packets that arrive early are
//! parked in a buffer, so arrival order never affects results.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

use fmm_core::stats::{Counters, SpmdReport};
use fmm_machine::VuGrid;

/// How long a `recv` waits before declaring the fabric wedged. Generous:
/// a matching send may sit behind a whole compute phase on the peer.
pub(crate) const RECV_TIMEOUT: Duration = Duration::from_secs(120);

/// The wire between SPMD ranks, behind an object-safe seam.
///
/// A transport moves f64 payloads between ranks; it does not allocate
/// tags or count traffic (see the module docs for why those live outside
/// the trait). Contract, shared with the in-process channels the
/// `CommProgram` verifier assumes:
///
/// * `send` never blocks — buffering is the transport's problem, so a
///   schedule that is deadlock-free under non-blocking sends stays
///   deadlock-free on every backend;
/// * messages between a fixed (sender, receiver) pair arrive in send
///   order;
/// * payload bits arrive unchanged (f64s travel as their exact bit
///   patterns — socket backends frame them little-endian);
/// * `recv` may park messages that arrive ahead of the requested
///   `(from, tag)` and must deliver them on the matching later call.
pub trait Transport: Send {
    /// Send `data` to rank `to` under `tag`. Must not block.
    fn send(&mut self, to: usize, tag: u64, data: Vec<f64>);
    /// Receive the payload rank `from` sent under `tag`, parking any
    /// other messages that arrive first.
    fn recv(&mut self, from: usize, tag: u64) -> Vec<f64>;
    /// Fabric name, as in [`fmm_core::Fabric::name`].
    fn kind(&self) -> &'static str;
    /// Flush and release wire resources (join writer threads, close
    /// sockets). Idempotent; also run on drop by implementations that
    /// need it.
    fn close(&mut self) {}
}

/// Monotonic collective-tag allocator. All ranks call [`fresh`] in the
/// same program order, so the same tag names the same collective phase
/// everywhere — the property `fmm-verify`'s endpoint-matching pass checks
/// statically and the executor debug-asserts step by step via [`peek`].
///
/// [`fresh`]: TagAllocator::fresh
/// [`peek`]: TagAllocator::peek
#[derive(Debug, Default, Clone)]
pub struct TagAllocator {
    next: u64,
}

impl TagAllocator {
    /// Allocate the next collective tag.
    pub fn fresh(&mut self) -> u64 {
        let t = self.next;
        self.next += 1;
        t
    }

    /// The tag the next collective will use — compared against the
    /// static schedule's step tags to pin executor and program together.
    pub fn peek(&self) -> u64 {
        self.next
    }
}

/// One message on the in-process fabric.
struct Packet {
    from: usize,
    tag: u64,
    data: Vec<f64>,
}

/// The default wire: in-process `mpsc` channels between worker threads.
/// Payloads move by ownership transfer — zero copies, zero serialization.
pub struct ChannelTransport {
    rank: usize,
    senders: Vec<Sender<Packet>>,
    rx: Receiver<Packet>,
    /// Early arrivals, keyed by (from, tag).
    // det: packets are taken by (from, tag) key only, never iterated.
    pending: HashMap<(usize, u64), Vec<Vec<f64>>>,
}

impl Transport for ChannelTransport {
    fn send(&mut self, to: usize, tag: u64, data: Vec<f64>) {
        self.senders[to]
            .send(Packet {
                from: self.rank,
                tag,
                data,
            })
            .expect("fabric peer hung up");
    }

    fn recv(&mut self, from: usize, tag: u64) -> Vec<f64> {
        let key = (from, tag);
        if let Some(q) = self.pending.get_mut(&key) {
            if !q.is_empty() {
                let data = q.remove(0);
                if q.is_empty() {
                    self.pending.remove(&key);
                }
                return data;
            }
        }
        loop {
            match self.rx.recv_timeout(RECV_TIMEOUT) {
                Ok(pkt) => {
                    if (pkt.from, pkt.tag) == key {
                        return pkt.data;
                    }
                    self.pending
                        .entry((pkt.from, pkt.tag))
                        .or_default()
                        .push(pkt.data);
                }
                Err(RecvTimeoutError::Timeout) => {
                    panic!(
                        "spmd rank {} timed out waiting for (from={}, tag={})",
                        self.rank, from, tag
                    );
                }
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("spmd rank {}: fabric disconnected", self.rank);
                }
            }
        }
    }

    fn kind(&self) -> &'static str {
        "inprocess"
    }
}

/// Per-worker execution context: identity on the VU grid, the transport
/// endpoint, the tag allocator, and the per-phase data-motion counters.
pub struct WorkerCtx {
    pub rank: usize,
    pub grid: VuGrid,
    transport: Box<dyn Transport>,
    /// Collective-tag allocator; deterministic program state, identical
    /// on every fabric.
    pub tags: TagAllocator,
    /// Data-motion counters, charged by the collectives (never by the
    /// transport), so totals are fabric-independent.
    pub counters: Counters,
    /// Mirror of the current phase the launcher can read after a panic.
    phase_board: Option<Arc<Vec<AtomicUsize>>>,
}

impl WorkerCtx {
    /// Wire a context over an explicit transport endpoint.
    pub fn new(rank: usize, grid: VuGrid, transport: Box<dyn Transport>) -> Self {
        WorkerCtx {
            rank,
            grid,
            transport,
            tags: TagAllocator::default(),
            counters: Counters::default(),
            phase_board: None,
        }
    }

    /// Worker count.
    pub fn p(&self) -> usize {
        self.grid.len()
    }

    /// My coordinates on the VU grid.
    pub fn coords(&self) -> [usize; 3] {
        self.grid.coords(self.rank)
    }

    /// The fabric this context runs on.
    pub fn fabric(&self) -> &'static str {
        self.transport.kind()
    }

    /// Enter program phase `phase` (0..6, budget order): subsequent
    /// counter charges land there, and the launcher's phase board is
    /// updated so a panic can be attributed.
    pub fn set_phase(&mut self, phase: usize) {
        self.counters.set_phase(phase);
        if let Some(board) = &self.phase_board {
            board[self.rank].store(phase, Ordering::Relaxed);
        }
    }

    /// Send `data` to `to` under `tag`. Never blocks.
    pub fn send(&mut self, to: usize, tag: u64, data: Vec<f64>) {
        self.transport.send(to, tag, data);
    }

    /// Receive the payload sent by `from` under `tag`.
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<f64> {
        self.transport.recv(from, tag)
    }

    /// Count `n` logical channel operations (CSHIFTs, router transfers,
    /// broadcast stages). Charged on rank 0 only so the total matches the
    /// model's program-level operation count rather than `p` copies of it.
    pub fn count_op(&mut self, n: u64) {
        if self.rank == 0 {
            self.counters.add_messages(n);
        }
    }

    /// Flush and release the transport.
    pub fn close(&mut self) {
        self.transport.close();
    }
}

/// Run one worker closure per pre-wired context (threads as VUs), in rank
/// order. The contexts may sit on any transport — in-process channels or
/// per-rank socket endpoints — which is how the socket fabrics reuse the
/// thread launcher for single-process runs.
///
/// A panicking worker fails the whole run; the panic is re-raised on the
/// launcher thread naming the rank and the program phase it died in.
pub fn run_ctxs<T, F>(ctxs: Vec<WorkerCtx>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(WorkerCtx) -> T + Sync,
{
    let p = ctxs.len();
    let board = Arc::new((0..p).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
    let f = &f;
    std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(p);
        for (rank, mut ctx) in ctxs.into_iter().enumerate() {
            debug_assert_eq!(ctx.rank, rank, "contexts must arrive in rank order");
            ctx.phase_board = Some(board.clone());
            joins.push(scope.spawn(move || f(ctx)));
        }
        joins
            .into_iter()
            .enumerate()
            .map(|(rank, j)| {
                j.join().unwrap_or_else(|payload| {
                    let msg = payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&str>().copied())
                        .unwrap_or("<non-string panic payload>");
                    let phase = board[rank].load(Ordering::Relaxed);
                    let phase = SpmdReport::PHASE_NAMES
                        .get(phase)
                        .copied()
                        .unwrap_or("<unknown phase>");
                    panic!("spmd rank {rank} panicked during {phase}: {msg}");
                })
            })
            .collect()
    })
}

/// Contexts for `p = grid.len()` ranks over the in-process channel
/// fabric: a fully-wired `mpsc` mesh, one endpoint per rank.
pub fn channel_ctxs(grid: VuGrid) -> Vec<WorkerCtx> {
    let p = grid.len();
    let mut txs = Vec::with_capacity(p);
    let mut rxs = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = channel();
        txs.push(tx);
        rxs.push(rx);
    }
    rxs.into_iter()
        .enumerate()
        .map(|(rank, rx)| {
            WorkerCtx::new(
                rank,
                grid,
                Box::new(ChannelTransport {
                    rank,
                    senders: txs.clone(),
                    rx,
                    // det: keyed lookups only (see the field's note).
                    pending: HashMap::new(),
                }),
            )
        })
        .collect()
}

/// Run `p = grid.len()` workers over in-process channels, one thread per
/// VU, each with a fully wired [`WorkerCtx`]. Returns the workers'
/// results in rank order.
pub fn run_workers<T, F>(grid: VuGrid, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(WorkerCtx) -> T + Sync,
{
    run_ctxs(channel_ctxs(grid), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_shift_delivers() {
        let grid = VuGrid::new([4, 1, 1]);
        let out = run_workers(grid, |mut ctx| {
            let p = ctx.p();
            let tag = ctx.tags.fresh();
            ctx.send((ctx.rank + 1) % p, tag, vec![ctx.rank as f64]);
            let data = ctx.recv((ctx.rank + p - 1) % p, tag);
            data[0] as usize
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let grid = VuGrid::new([2, 1, 1]);
        let out = run_workers(grid, |mut ctx| {
            let t0 = ctx.tags.fresh();
            let t1 = ctx.tags.fresh();
            let peer = 1 - ctx.rank;
            // Send in tag order, receive in reverse order.
            ctx.send(peer, t0, vec![10.0 + ctx.rank as f64]);
            ctx.send(peer, t1, vec![20.0 + ctx.rank as f64]);
            let b = ctx.recv(peer, t1);
            let a = ctx.recv(peer, t0);
            (a[0], b[0])
        });
        assert_eq!(out[0], (10.0 + 1.0, 20.0 + 1.0));
        assert_eq!(out[1], (10.0, 20.0));
    }

    #[test]
    fn op_counts_on_rank_zero_only() {
        let grid = VuGrid::new([2, 2, 1]);
        let out = run_workers(grid, |mut ctx| {
            ctx.set_phase(3);
            ctx.count_op(2);
            ctx.counters.add_messages(1);
            ctx.counters.add_words(10);
            ctx.counters
        });
        let rank0 = &out[0][3];
        assert_eq!(rank0.messages, 3); // 2 ops + 1 msg
        assert_eq!(rank0.bytes, 80);
        let rank1 = &out[1][3];
        assert_eq!(rank1.messages, 1); // msg only
    }

    #[test]
    fn worker_panic_names_rank_and_phase() {
        let grid = VuGrid::new([2, 1, 1]);
        let err = std::panic::catch_unwind(|| {
            run_workers(grid, |mut ctx| {
                if ctx.rank == 1 {
                    ctx.set_phase(4);
                    panic!("boom at step 7");
                }
                // Rank 0 parks on a receive that never comes until the
                // peer's channel drops, then panics itself — the launcher
                // must still report the *original* rank-1 panic when it
                // joins in rank order and rank 0's death message names
                // its own rank. Keep rank 0 trivially alive instead.
                0usize
            })
        })
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<no message>".into());
        assert!(
            msg.contains("rank 1") && msg.contains("eval") && msg.contains("boom at step 7"),
            "panic message must name rank, phase, and cause: {msg}"
        );
    }
}
