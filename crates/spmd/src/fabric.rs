//! The message fabric: worker threads as VUs, explicit typed channels.
//!
//! Every worker owns its particles and box data outright; nothing is shared
//! mutably. The only way data moves between workers is a [`WorkerCtx::send`]
//! / [`WorkerCtx::recv`] pair over `mpsc` channels, which makes the measured
//! byte and message counts the *actual* data motion of the program — the
//! quantity `fmm_machine::communication_budget` predicts.
//!
//! Determinism: tags are allocated by a monotonic per-worker counter, and
//! every worker executes the same program (same sequence of collective
//! calls), so tag `t` means the same collective phase on every rank. A
//! receive names its `(from, tag)` pair; packets that arrive early are
//! parked in a buffer, so arrival order never affects results.

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

use fmm_core::stats::SpmdPhase;
use fmm_machine::VuGrid;

/// How long a `recv` waits before declaring the fabric wedged. Generous:
/// a matching send may sit behind a whole compute phase on the peer.
const RECV_TIMEOUT: Duration = Duration::from_secs(120);

/// One message on the fabric.
struct Packet {
    from: usize,
    tag: u64,
    data: Vec<f64>,
}

/// Per-worker execution context: identity on the VU grid, channel
/// endpoints, and the per-phase data-motion counters.
pub struct WorkerCtx {
    pub rank: usize,
    pub grid: VuGrid,
    senders: Vec<Sender<Packet>>,
    rx: Receiver<Packet>,
    /// Early arrivals, keyed by (from, tag).
    // det: packets are taken by (from, tag) key only, never iterated.
    pending: HashMap<(usize, u64), Vec<Vec<f64>>>,
    next_tag: u64,
    /// Which program phase counters are charged to (0..6, budget order).
    pub phase: usize,
    pub counters: [SpmdPhase; 6],
}

impl WorkerCtx {
    /// Worker count.
    pub fn p(&self) -> usize {
        self.grid.len()
    }

    /// My coordinates on the VU grid.
    pub fn coords(&self) -> [usize; 3] {
        self.grid.coords(self.rank)
    }

    /// Allocate the next collective tag. All ranks call this in the same
    /// program order, so the same tag names the same phase everywhere.
    pub fn fresh_tag(&mut self) -> u64 {
        let t = self.next_tag;
        self.next_tag += 1;
        t
    }

    /// The tag the next collective will use — compared against the static
    /// schedule's step tags to pin executor and program together.
    pub fn peek_tag(&self) -> u64 {
        self.next_tag
    }

    /// Send `data` to `to` under `tag`. Never blocks (unbounded channel).
    pub fn send(&mut self, to: usize, tag: u64, data: Vec<f64>) {
        self.senders[to]
            .send(Packet {
                from: self.rank,
                tag,
                data,
            })
            .expect("fabric peer hung up");
    }

    /// Receive the packet sent by `from` under `tag`, parking any other
    /// packets that arrive first.
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<f64> {
        let key = (from, tag);
        if let Some(q) = self.pending.get_mut(&key) {
            if !q.is_empty() {
                let data = q.remove(0);
                if q.is_empty() {
                    self.pending.remove(&key);
                }
                return data;
            }
        }
        loop {
            match self.rx.recv_timeout(RECV_TIMEOUT) {
                Ok(pkt) => {
                    if (pkt.from, pkt.tag) == key {
                        return pkt.data;
                    }
                    self.pending
                        .entry((pkt.from, pkt.tag))
                        .or_default()
                        .push(pkt.data);
                }
                Err(RecvTimeoutError::Timeout) => {
                    panic!(
                        "spmd rank {} timed out waiting for (from={}, tag={})",
                        self.rank, from, tag
                    );
                }
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("spmd rank {}: fabric disconnected", self.rank);
                }
            }
        }
    }

    /// Count `n` logical channel operations (CSHIFTs, router transfers,
    /// broadcast stages). Charged on rank 0 only so the total matches the
    /// model's program-level operation count rather than `p` copies of it.
    pub fn count_op(&mut self, n: u64) {
        if self.rank == 0 {
            self.counters[self.phase].messages += n;
        }
    }

    /// Count `n` point-to-point messages on the *sending* worker (router
    /// traffic such as the sort scatter or the upward gather, where the
    /// model counts individual sends).
    pub fn count_msg(&mut self, n: u64) {
        self.counters[self.phase].messages += n;
    }

    /// Count `words` f64 payload words crossing a worker boundary,
    /// charged to the sender.
    pub fn count_bytes_words(&mut self, words: u64) {
        self.counters[self.phase].bytes += words * 8;
    }

    /// Count `words` f64 words moved within this worker's own memory.
    pub fn count_local(&mut self, words: u64) {
        self.counters[self.phase].local_words += words;
    }
}

/// Run `p = grid.len()` workers, one thread per VU, each with a fully wired
/// [`WorkerCtx`]. Returns the workers' results in rank order.
pub fn run_workers<T, F>(grid: VuGrid, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(WorkerCtx) -> T + Sync,
{
    let p = grid.len();
    let mut txs = Vec::with_capacity(p);
    let mut rxs = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = channel();
        txs.push(tx);
        rxs.push(rx);
    }
    let f = &f;
    std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(p);
        for (rank, rx) in rxs.into_iter().enumerate() {
            let senders = txs.clone();
            joins.push(scope.spawn(move || {
                f(WorkerCtx {
                    rank,
                    grid,
                    senders,
                    rx,
                    // det: keyed lookups only (see the field's note).
                    pending: HashMap::new(),
                    next_tag: 0,
                    phase: 0,
                    counters: Default::default(),
                })
            }));
        }
        drop(txs);
        joins
            .into_iter()
            .map(|j| j.join().expect("spmd worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_shift_delivers() {
        let grid = VuGrid::new([4, 1, 1]);
        let out = run_workers(grid, |mut ctx| {
            let p = ctx.p();
            let tag = ctx.fresh_tag();
            ctx.send((ctx.rank + 1) % p, tag, vec![ctx.rank as f64]);
            let data = ctx.recv((ctx.rank + p - 1) % p, tag);
            data[0] as usize
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let grid = VuGrid::new([2, 1, 1]);
        let out = run_workers(grid, |mut ctx| {
            let t0 = ctx.fresh_tag();
            let t1 = ctx.fresh_tag();
            let peer = 1 - ctx.rank;
            // Send in tag order, receive in reverse order.
            ctx.send(peer, t0, vec![10.0 + ctx.rank as f64]);
            ctx.send(peer, t1, vec![20.0 + ctx.rank as f64]);
            let b = ctx.recv(peer, t1);
            let a = ctx.recv(peer, t0);
            (a[0], b[0])
        });
        assert_eq!(out[0], (10.0 + 1.0, 20.0 + 1.0));
        assert_eq!(out[1], (10.0, 20.0));
    }

    #[test]
    fn op_counts_on_rank_zero_only() {
        let grid = VuGrid::new([2, 2, 1]);
        let out = run_workers(grid, |mut ctx| {
            ctx.phase = 3;
            ctx.count_op(2);
            ctx.count_msg(1);
            ctx.count_bytes_words(10);
            ctx.counters
        });
        let rank0 = &out[0][3];
        assert_eq!(rank0.messages, 3); // 2 ops + 1 msg
        assert_eq!(rank0.bytes, 80);
        let rank1 = &out[1][3];
        assert_eq!(rank1.messages, 1); // msg only
    }
}
