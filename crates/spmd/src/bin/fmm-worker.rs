//! One SPMD rank as an OS process.
//!
//! ```text
//! fmm-worker --rank R --fabric unix:/tmp/fmm.sock
//! fmm-worker --rank R --fabric tcp:127.0.0.1:7000
//! ```
//!
//! Joins the launcher's rendezvous (see `fmm_spmd::evaluate_distributed`
//! or the `fmm-launch` binary), receives the job, wires its row of the
//! point-to-point mesh, executes the published `CommProgram`, and
//! returns its `WorkerOut` — f64s as exact bit patterns, so the
//! launcher's assembly is bitwise identical to the in-process run.

use std::process::ExitCode;

use fmm_spmd::{worker_join, FabricAddr};

fn usage() -> ExitCode {
    eprintln!("usage: fmm-worker --rank R --fabric unix:PATH|tcp:HOST:PORT");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut rank: Option<usize> = None;
    let mut fabric: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rank" => rank = args.next().and_then(|v| v.parse().ok()),
            "--fabric" => fabric = args.next(),
            "--help" | "-h" => {
                println!("usage: fmm-worker --rank R --fabric unix:PATH|tcp:HOST:PORT");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("fmm-worker: unknown argument {other:?}");
                return usage();
            }
        }
    }
    let (Some(rank), Some(fabric)) = (rank, fabric) else {
        return usage();
    };
    let addr = match FabricAddr::parse(&fabric) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fmm-worker: bad --fabric: {e}");
            return usage();
        }
    };
    match worker_join(&addr, rank) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fmm-worker: {e}");
            ExitCode::FAILURE
        }
    }
}
