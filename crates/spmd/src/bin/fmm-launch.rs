//! Launch one FMM evaluation and emit a byte-exact evidence file.
//!
//! ```text
//! # in one process, over mpsc channels
//! fmm-launch --workers 4 --depth 4 --n 16384 --out a.bits
//!
//! # the same program as 4 OS processes over UNIX sockets
//! fmm-launch --workers 4 --depth 4 --n 16384 --out b.bits \
//!            --fabric unix:/tmp/fmm.sock --worker-bin target/release/fmm-worker
//!
//! cmp a.bits b.bits   # bitwise-identical fabrics
//! ```
//!
//! The evidence file is the little-endian bit pattern of every potential
//! (and force component with `--forces`) followed by the per-phase
//! channel counters — so `cmp` across runs checks both numerics and data
//! motion byte for byte. With `--check-budget` the measured counters are
//! additionally checked against `communication_budget_with`: exact on
//! the deterministic phases, the shared 10% comparator elsewhere.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use fmm_core::{Balance, Executor, Fmm, FmmConfig};
use fmm_machine::{
    check_phases, communication_budget_with, predicted_bytes, predicted_messages, MeasuredPhase,
    ProgramConfig, VuGrid, DEFAULT_TOLERANCE,
};
use fmm_spmd::{evaluate_distributed, FabricAddr, LaunchConfig, Partition};

const USAGE: &str = "usage: fmm-launch --workers P [--depth D] [--n N] [--order K] \
[--balance uniform|cost] [--forces] [--out FILE] [--check-budget] [--capacity-bytes B] \
[--fabric unix:PATH|tcp:HOST:PORT [--worker-bin PATH]]";

/// The deterministic xorshift system every harness in this repo uses:
/// same seed, same particles, on every host.
fn uniform_system(n: usize, seed: u64) -> (Vec<[f64; 3]>, Vec<f64>) {
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let pts = (0..n).map(|_| [next(), next(), next()]).collect();
    let q = (0..n).map(|_| next() * 2.0 - 1.0).collect();
    (pts, q)
}

struct Opts {
    workers: usize,
    depth: u32,
    n: usize,
    order: usize,
    balance: Balance,
    forces: bool,
    out: Option<PathBuf>,
    check_budget: bool,
    capacity_bytes: Option<u64>,
    fabric: Option<FabricAddr>,
    worker_bin: Option<PathBuf>,
}

fn parse_args() -> Result<Opts, String> {
    let mut o = Opts {
        workers: 4,
        depth: 4,
        n: 16384,
        order: 3,
        balance: Balance::Uniform,
        forces: false,
        out: None,
        check_budget: false,
        capacity_bytes: None,
        fabric: None,
        worker_bin: None,
    };
    let mut args = std::env::args().skip(1);
    let val = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" | "-p" => {
                o.workers = val(&mut args, "--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--depth" => {
                o.depth = val(&mut args, "--depth")?
                    .parse()
                    .map_err(|e| format!("--depth: {e}"))?
            }
            "--n" => {
                o.n = val(&mut args, "--n")?
                    .parse()
                    .map_err(|e| format!("--n: {e}"))?
            }
            "--order" => {
                o.order = val(&mut args, "--order")?
                    .parse()
                    .map_err(|e| format!("--order: {e}"))?
            }
            "--balance" => {
                o.balance = match val(&mut args, "--balance")?.as_str() {
                    "uniform" => Balance::Uniform,
                    "cost" | "cost-weighted" => Balance::CostWeighted,
                    other => return Err(format!("unknown balance {other:?}")),
                }
            }
            "--forces" => o.forces = true,
            "--out" => o.out = Some(PathBuf::from(val(&mut args, "--out")?)),
            "--check-budget" => o.check_budget = true,
            "--capacity-bytes" => {
                o.capacity_bytes = Some(
                    val(&mut args, "--capacity-bytes")?
                        .parse()
                        .map_err(|e| format!("--capacity-bytes: {e}"))?,
                )
            }
            "--fabric" => o.fabric = Some(FabricAddr::parse(&val(&mut args, "--fabric")?)?),
            "--worker-bin" => o.worker_bin = Some(PathBuf::from(val(&mut args, "--worker-bin")?)),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(o)
}

fn run() -> Result<(), String> {
    let o = parse_args()?;
    fmm_spmd::install();
    let (pts, q) = uniform_system(o.n, 0x7ab1e4);
    let cfg = FmmConfig::order(o.order)
        .depth(o.depth)
        .executor(Executor::spmd(o.workers))
        .balance(o.balance);
    let fmm = Fmm::new(cfg).map_err(|e| e.to_string())?;
    let k = fmm.k();

    let out = match &o.fabric {
        None => if o.forces {
            fmm.evaluate_forces(&pts, &q)
        } else {
            fmm.evaluate(&pts, &q)
        }
        .map_err(|e| e.to_string())?,
        Some(addr) => evaluate_distributed(
            &fmm,
            &pts,
            &q,
            &LaunchConfig {
                rendezvous: addr.clone(),
                workers: o.workers,
                with_fields: o.forces,
                worker_bin: o.worker_bin.clone(),
                capacity_bytes: o.capacity_bytes,
            },
        )
        .map_err(|e| e.to_string())?,
    };
    let report = out.spmd.as_ref().ok_or("spmd run attaches a report")?;

    // Evidence file: every f64 as its exact LE bit pattern, then the
    // per-phase counters. Byte-identical files <=> byte-identical runs.
    let mut bits = Vec::with_capacity(8 * out.potentials.len());
    for &p in &out.potentials {
        bits.extend_from_slice(&p.to_le_bytes());
    }
    if let Some(fields) = &out.fields {
        for f in fields {
            for c in f {
                bits.extend_from_slice(&c.to_le_bytes());
            }
        }
    }
    for ph in report.phases.iter() {
        bits.extend_from_slice(&ph.messages.to_le_bytes());
        bits.extend_from_slice(&ph.bytes.to_le_bytes());
        bits.extend_from_slice(&ph.local_words.to_le_bytes());
    }
    match &o.out {
        Some(path) => {
            std::fs::write(path, &bits).map_err(|e| format!("writing {}: {e}", path.display()))?
        }
        None => std::io::stdout()
            .write_all(&bits)
            .map_err(|e| format!("writing stdout: {e}"))?,
    }

    let fabric_name = o.fabric.as_ref().map_or("inprocess", |a| a.fabric().name());
    eprintln!(
        "fmm-launch: {} particles, depth {}, {} workers over {fabric_name}: \
         messages {:?}, {} evidence bytes",
        o.n,
        out.depth,
        report.workers,
        report.phases.iter().map(|p| p.messages).collect::<Vec<_>>(),
        bits.len(),
    );

    if o.check_budget {
        let part = report
            .partition
            .clone()
            .map(|splits| Partition::from_splits(out.depth, splits));
        let budget = communication_budget_with(
            &ProgramConfig {
                depth: out.depth,
                k,
                m: fmm.config().m_trunc,
                particles_per_box: o.n as f64 / 8f64.powi(out.depth as i32),
                vu_grid: VuGrid::new(report.vu_dims),
                supernodes: false,
                sort_miss_fraction: 1.0 - 1.0 / o.workers as f64,
                forces_near: o.forces,
            },
            part.as_ref(),
        );
        // Upward and downward move a schedule-determined set of K-box
        // rows: the measured counters must equal the model bit for bit.
        for i in [2usize, 3] {
            let (pm, pb) = (
                predicted_messages(&budget.phases[i].comm),
                predicted_bytes(&budget.phases[i].comm, k),
            );
            let (mm, mb) = (report.phases[i].messages, report.phases[i].bytes);
            if (pm, pb) != (mm, mb) {
                return Err(format!(
                    "phase {} counters ({mm} msgs, {mb} bytes) diverge from the \
                     budget ({pm} msgs, {pb} bytes)",
                    budget.phases[i].name
                ));
            }
        }
        // Near-field message count is deterministic too; payloads are
        // data-dependent, so bytes go through the 10% comparator below.
        let (pm, mm) = (
            predicted_messages(&budget.phases[5].comm),
            report.phases[5].messages,
        );
        if pm != mm {
            return Err(format!(
                "near-field message count {mm} diverges from the budget's {pm}"
            ));
        }
        let measured: Vec<MeasuredPhase> = report
            .phases
            .iter()
            .enumerate()
            .map(|(i, p)| MeasuredPhase {
                messages: p.messages,
                bytes: matches!(i, 1..=4).then_some(p.bytes),
            })
            .collect();
        let mismatches = check_phases(&budget, &measured, DEFAULT_TOLERANCE);
        if !mismatches.is_empty() {
            return Err(format!(
                "budget divergence:\n{}",
                mismatches
                    .iter()
                    .map(|m| m.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            ));
        }
        eprintln!("fmm-launch: counters match communication_budget_with");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fmm-launch: {e}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
