//! # fmm-spmd — a message-passing SPMD executor behind the machine model
//!
//! The machine model in `fmm-machine` *prices* the FMM's communication on a
//! CM-5-style distributed machine; this crate *executes* it. N worker
//! ranks play the VUs of a [`fmm_machine::VuGrid`], each owning a block
//! of boxes outright. No shared mutable arrays exist: every datum that
//! moves between workers goes through an explicit [`Transport`], so the
//! per-phase byte and message counters measured here are the program's
//! actual data motion — directly comparable against
//! `fmm_machine::communication_budget`.
//!
//! The channel primitives mirror the CM runtime (see `DESIGN.md`, "The
//! SPMD runtime"): a personalized all-to-all (the data router) for the
//! post-sort particle redistribution, grid CSHIFTs with circular wrap for
//! the downward halo and the near-field travelling accumulators, and
//! tree-structured combine/spread for the coarse levels where boxes are
//! fewer than VUs (the Multigrid embedding).
//!
//! Three fabrics carry the same `CommProgram`
//! ([`fmm_core::Fabric`]): in-process `mpsc` channels (the default),
//! UNIX-domain sockets, and TCP — the socket fabrics framing every
//! message with the length-prefixed `FMMW` codec ([`transport`]). The
//! [`distributed`] module runs the same program across OS processes
//! (`fmm-worker` ranks joining a rendezvous).
//!
//! Results are **bitwise identical** to the serial and rayon backends for
//! every worker count and every fabric: the same per-box arithmetic runs
//! in the same order, only the data lives elsewhere.
//!
//! ## Usage
//!
//! ```
//! use fmm_core::{Executor, Fmm, FmmConfig};
//!
//! fmm_spmd::install(); // register the backend once per process
//! let fmm = Fmm::new(FmmConfig::order(3).depth(2).executor(Executor::spmd(4))).unwrap();
//! let positions: Vec<[f64; 3]> = (0..64)
//!     .map(|i| {
//!         let f = i as f64 / 64.0;
//!         [f, (f * 7.3) % 1.0, (f * 3.1) % 1.0]
//!     })
//!     .collect();
//! let out = fmm.evaluate(&positions, &vec![1.0; 64]).unwrap();
//! assert_eq!(out.spmd.unwrap().workers, 4);
//! ```

#![forbid(unsafe_code)]

pub mod collectives;
pub mod distributed;
mod exec;
pub mod fabric;
pub mod schedule;
pub mod transport;

use std::io;
use std::time::Duration;

use fmm_core::driver::{EvalOutput, Fmm, FmmError};
use fmm_core::near::NearFieldStats;
use fmm_core::stats::Counters;
use fmm_core::traversal::TraversalFlops;
use fmm_core::{
    Balance, Domain, Fabric, Phase, Profile, Separation, SpmdOptions, SpmdReport, TraversalPlan,
};
use fmm_linalg::gemm_flops;
use fmm_machine::VuGrid;
use fmm_tree::partition::{leaf_costs, CostModel};

pub use distributed::{evaluate_distributed, worker_join, LaunchConfig};
pub use fabric::{
    channel_ctxs, run_ctxs, run_workers, ChannelTransport, TagAllocator, Transport, WorkerCtx,
};
pub use schedule::{CommProgram, Partition};
pub use transport::{FabricAddr, SocketTransport};

/// Register this crate as the backend for [`fmm_core::Executor::Spmd`].
/// Idempotent; call once before evaluating.
pub fn install() {
    fmm_core::driver::install_spmd_backend(run_spmd);
}

/// Arrange `p` workers (a power of two) on a VU grid, spreading factors of
/// two across x, y, z round-robin: 2 → [2,1,1], 8 → [2,2,2], 128 → [8,4,4].
pub fn vu_grid_for(p: usize) -> VuGrid {
    assert!(p.is_power_of_two(), "worker count must be a power of two");
    let mut dims = [1usize; 3];
    let mut axis = 0;
    let mut left = p;
    while left > 1 {
        dims[axis] *= 2;
        left /= 2;
        axis = (axis + 1) % 3;
    }
    VuGrid::new(dims)
}

/// Build the cost-weighted Morton partition for one input: bin particle
/// counts per leaf box, price every leaf with the calibrated
/// [`CostModel`] (near-field pairs + its share of the translation work),
/// and cut the Morton curve at the optimal bottleneck. Deterministic in
/// the input, so every worker count and executor sees the same partition.
#[allow(clippy::too_many_arguments)]
pub fn cost_partition(
    positions: &[[f64; 3]],
    domain: Domain,
    depth: u32,
    workers: usize,
    k: usize,
    m_trunc: usize,
    with_fields: bool,
    sep: Separation,
) -> Partition {
    let n = 1usize << depth;
    let mut counts = vec![0usize; n * n * n];
    for &pos in positions {
        let b = domain.locate(pos, depth);
        counts[b.index()] += 1;
    }
    let model = CostModel {
        k,
        m_trunc,
        with_fields,
        sep,
    };
    let costs = leaf_costs(depth, &model, &counts);
    Partition::cost_weighted(depth, workers, &costs)
}

/// Wire `p = grid.len()` worker contexts over the selected fabric, all in
/// one process: `mpsc` channels, a UNIX socket-pair mesh, or a loopback
/// TCP mesh. The socket meshes run the exact framing of the
/// multi-process path, which is what makes single-process equivalence
/// tests across fabrics meaningful.
pub fn fabric_ctxs(grid: VuGrid, fabric: Fabric) -> io::Result<Vec<WorkerCtx>> {
    let p = grid.len();
    match fabric {
        Fabric::InProcess => Ok(channel_ctxs(grid)),
        Fabric::Unix => {
            #[cfg(unix)]
            {
                transport::unix_pair_mesh(p)?
                    .into_iter()
                    .enumerate()
                    .map(|(rank, row)| {
                        Ok(WorkerCtx::new(
                            rank,
                            grid,
                            Box::new(SocketTransport::new(rank, row)?),
                        ))
                    })
                    .collect()
            }
            #[cfg(not(unix))]
            {
                Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "the unix fabric needs UNIX-domain sockets",
                ))
            }
        }
        Fabric::Tcp => transport::tcp_loopback_mesh(p)?
            .into_iter()
            .enumerate()
            .map(|(rank, row)| {
                Ok(WorkerCtx::new(
                    rank,
                    grid,
                    Box::new(SocketTransport::new(rank, row)?),
                ))
            })
            .collect(),
    }
}

/// One source of truth for the communication schedule: the executor walks
/// this program, `fmm-verify` statically checks it, and the distributed
/// workers rebuild the identical one from the job description.
pub(crate) fn build_program(
    fmm: &Fmm,
    positions: &[[f64; 3]],
    domain: Domain,
    depth: u32,
    grid: VuGrid,
    with_fields: bool,
    balance: Balance,
) -> CommProgram {
    let cfg = fmm.config();
    match balance {
        Balance::Uniform => CommProgram::build(
            grid,
            depth,
            fmm.k(),
            cfg.separation.d() as usize,
            with_fields,
        ),
        Balance::CostWeighted => CommProgram::build_partitioned(
            grid,
            depth,
            fmm.k(),
            cfg.separation.d() as usize,
            with_fields,
            cost_partition(
                positions,
                domain,
                depth,
                grid.len(),
                fmm.k(),
                cfg.m_trunc,
                with_fields,
                cfg.separation,
            ),
        ),
    }
}

/// The backend entry point matching [`fmm_core::driver::SpmdBackend`].
fn run_spmd(
    fmm: &Fmm,
    positions: &[[f64; 3]],
    charges: &[f64],
    domain: Domain,
    with_fields: bool,
    opts: SpmdOptions,
) -> Result<EvalOutput, FmmError> {
    let cfg = fmm.config();
    let workers = opts.workers;
    let depth = cfg.depth.resolve(positions.len());
    let grid = vu_grid_for(workers);
    let n_axis = 1usize << depth;
    if grid.dims.iter().any(|&d| d > n_axis) {
        return Err(FmmError::InvalidConfig(format!(
            "Executor::spmd({workers}) lays workers on a {:?} grid, but depth {depth} \
             has only {n_axis} leaf boxes per axis; reduce workers or increase depth",
            grid.dims,
        )));
    }
    let plan = fmm.plan_for(depth);
    let program = build_program(
        fmm,
        positions,
        domain,
        depth,
        grid,
        with_fields,
        cfg.effective_balance(),
    );
    let shared = exec::Shared {
        fmm,
        positions,
        charges,
        domain,
        depth,
        with_fields,
        plan: &plan,
        program: &program,
    };
    let ctxs = fabric_ctxs(grid, opts.transport).map_err(|e| {
        FmmError::InvalidConfig(format!(
            "cannot wire the {} fabric for {workers} workers: {e}",
            opts.transport.name()
        ))
    })?;
    let outs = if program.partition.is_some() {
        run_ctxs(ctxs, |ctx| exec::worker_main_part(ctx, &shared))
    } else {
        run_ctxs(ctxs, |ctx| exec::worker_main(ctx, &shared))
    };
    Ok(assemble(
        fmm,
        &plan,
        &program,
        grid,
        depth,
        positions.len(),
        with_fields,
        domain,
        outs,
    ))
}

/// Assemble per-worker outputs into one [`EvalOutput`]: scatter results
/// back to original particle order, merge counters and stats, take phase
/// times from rank 0. Shared between the thread launcher and the
/// multi-process launcher in [`distributed`] — the aggregation must be
/// identical or the fabrics would diverge at the last step.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble(
    fmm: &Fmm,
    plan: &TraversalPlan,
    program: &CommProgram,
    grid: VuGrid,
    depth: u32,
    n: usize,
    with_fields: bool,
    domain: Domain,
    outs: Vec<exec::WorkerOut>,
) -> EvalOutput {
    let workers = grid.len();
    let mut potentials = vec![0.0; n];
    let mut fields = with_fields.then(|| vec![[0.0; 3]; n]);
    let mut counters = Counters::default();
    let mut stats = NearFieldStats::default();
    let (mut p2o_flops, mut eval_flops) = (0u64, 0u64);
    let mut worker_busy_ns = Vec::with_capacity(outs.len());
    let mut worker_flops = Vec::with_capacity(outs.len());
    for w in &outs {
        worker_busy_ns.push(w.times.iter().map(|t| t.as_nanos() as u64).sum());
        worker_flops.push(w.p2o_flops + w.traversal_flops + w.eval_flops + w.near_stats.flops);
        for (i, &o) in w.orig.iter().enumerate() {
            potentials[o] = w.pot[i];
            if let (Some(f), Some(wf)) = (fields.as_mut(), w.fields.as_ref()) {
                f[o] = wf[i];
            }
        }
        counters.merge(&w.counters);
        stats.pair_interactions += w.near_stats.pair_interactions;
        stats.box_pairs += w.near_stats.box_pairs;
        stats.flops += w.near_stats.flops;
        p2o_flops += w.p2o_flops;
        eval_flops += w.eval_flops;
    }

    // Nominal traversal flop counters, closed-form — identical to the
    // serial per-level accounting (which also counts interior-box work).
    let k = fmm.k();
    let mut tfl = TraversalFlops::default();
    if depth >= 3 {
        for l in 1..depth {
            let n_parents = 1usize << (3 * l);
            tfl.t1 += gemm_flops(n_parents, k, k) * 8;
            tfl.copied += (n_parents * 8 * k) as u64;
        }
    }
    let per_box_t2 = plan.octants[0].offsets.len() as u64;
    for l in 2..=depth {
        let n_boxes = 1usize << (3 * l);
        tfl.t2 += per_box_t2 * gemm_flops(n_boxes, k, k);
        if l >= 3 {
            tfl.t3 += gemm_flops(n_boxes, k, k);
        }
        tfl.copied += (n_boxes * k) as u64 * (per_box_t2 + 2);
    }

    let mut profile = Profile::new();
    let phase_of = [
        Phase::Sort,
        Phase::P2O,
        Phase::Upward,
        Phase::Interactive, // downward wall time, as in the serial driver
        Phase::Eval,
        Phase::Near,
    ];
    let critical_path: &[Duration; 6] = &outs[0].times;
    for (ph, &t) in phase_of.iter().zip(critical_path) {
        profile.add_time(*ph, t);
    }
    profile.add_flops(Phase::P2O, p2o_flops);
    profile.add_flops(Phase::Upward, tfl.t1);
    profile.add_flops(Phase::Interactive, tfl.t2);
    profile.add_flops(Phase::Downward, tfl.t3);
    profile.add_flops(Phase::Eval, eval_flops);
    profile.add_flops(Phase::Near, stats.flops);

    EvalOutput {
        potentials,
        fields,
        profile,
        depth,
        near_stats: stats,
        traversal_flops: tfl,
        domain,
        spmd: Some(SpmdReport {
            workers,
            vu_dims: grid.dims,
            phases: counters,
            worker_busy_ns,
            worker_flops,
            partition: program
                .partition
                .as_ref()
                .map(|ps| ps.partition.splits().to_vec()),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_factorization_round_robins() {
        assert_eq!(vu_grid_for(1).dims, [1, 1, 1]);
        assert_eq!(vu_grid_for(2).dims, [2, 1, 1]);
        assert_eq!(vu_grid_for(4).dims, [2, 2, 1]);
        assert_eq!(vu_grid_for(8).dims, [2, 2, 2]);
        assert_eq!(vu_grid_for(32).dims, [4, 4, 2]);
        assert_eq!(vu_grid_for(128).dims, [8, 4, 4]);
    }
}
