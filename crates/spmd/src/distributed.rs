//! Multi-process execution: the same `CommProgram`, ranks as OS processes.
//!
//! A launcher ([`evaluate_distributed`]) binds a rendezvous endpoint
//! (`unix:/path` or `tcp:host:port`) and optionally spawns `p` copies of
//! the `fmm-worker` binary; independently started workers can join the
//! same rendezvous by address. The control plane speaks `FMMC` frames
//! (length-prefixed, same little-endian discipline as the `FMMW` data
//! plane):
//!
//! 1. each worker binds its own *mesh* listener first, connects the
//!    rendezvous, and sends `Hello { rank, mesh_addr }`;
//! 2. once all `p` Hellos are in, the launcher runs the pre-flight
//!    budget check ([`fmm_machine::preflight`]) — it already has the
//!    depth, grid, and fabric in hand — then broadcasts `Job`: the full
//!    method configuration (resolved kernel included, so every host runs
//!    identical arithmetic), the particle system, and the mesh address
//!    table;
//! 3. every worker rebuilds the identical `Fmm` and `CommProgram` from
//!    the job (translation matrices and schedules are pure functions of
//!    the config), wires its mesh row — connect to lower ranks, accept
//!    from higher — and executes the program over a
//!    [`SocketTransport`];
//! 4. each worker returns `Result` (its `WorkerOut`, f64s as exact bit
//!    patterns, counters as u64s); the launcher assembles the same
//!    [`EvalOutput`] the in-process path produces — bitwise identical,
//!    per-rank counters included.
//!
//! Because every listener is bound before the address table is
//! published, mesh connections can only land in a bound listener's
//! backlog — no sleep-and-retry loops in the data path.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command};
use std::time::{Duration, Instant};

use fmm_core::driver::{EvalOutput, Fmm, FmmError};
use fmm_core::near::NearFieldStats;
use fmm_core::stats::Counters;
use fmm_core::{
    Balance, DepthPolicy, Domain, Executor, FmmConfig, Kernel, Separation, SpmdOptions,
};
use fmm_machine::{communication_budget_with, preflight, ProgramConfig, TransportModel};

use crate::exec::{self, WorkerOut};
use crate::fabric::WorkerCtx;
use crate::transport::{connect_mesh, FabricAddr, MeshStream, SocketTransport};
use crate::{assemble, build_program, vu_grid_for};

/// Control-plane frame magic.
pub const CTRL_MAGIC: [u8; 4] = *b"FMMC";
/// Control frames carry whole particle systems; cap at 1 GiB.
pub const MAX_CTRL: usize = 1 << 30;

const OP_HELLO: u8 = 1;
const OP_JOB: u8 = 2;
const OP_RESULT: u8 = 3;

/// How long control-plane reads may stall before the run is declared
/// wedged (covers the whole compute phase on the worker side).
const CTRL_TIMEOUT: Duration = Duration::from_secs(600);

// ---------------------------------------------------------------------
// FMMC framing and primitive encodings
// ---------------------------------------------------------------------

fn write_ctrl(w: &mut impl Write, op: u8, body: &[u8]) -> io::Result<()> {
    let len = 5 + body.len();
    if len > MAX_CTRL {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "control frame exceeds MAX_CTRL",
        ));
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&CTRL_MAGIC)?;
    w.write_all(&[op])?;
    w.write_all(body)?;
    w.flush()
}

fn read_ctrl(r: &mut impl Read) -> io::Result<(u8, Vec<u8>)> {
    let mut lenb = [0u8; 4];
    r.read_exact(&mut lenb)?;
    let len = u32::from_le_bytes(lenb) as usize;
    if !(5..=MAX_CTRL).contains(&len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("control frame length {len} out of range"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    if payload[..4] != CTRL_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad control magic {:02x?}", &payload[..4]),
        ));
    }
    let op = payload[4];
    payload.drain(..5);
    Ok((op, payload))
}

fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}
fn put_f64(b: &mut Vec<u8>, v: f64) {
    b.extend_from_slice(&v.to_le_bytes());
}
fn put_str(b: &mut Vec<u8>, s: &str) {
    put_u32(b, s.len() as u32);
    b.extend_from_slice(s.as_bytes());
}

/// Decode cursor with bounds-checked little-endian takes.
struct Dec<'a> {
    b: &'a [u8],
}

impl<'a> Dec<'a> {
    fn new(b: &'a [u8]) -> Self {
        Dec { b }
    }
    fn bytes(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.b.len() < n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("truncated control body: need {n}, have {}", self.b.len()),
            ));
        }
        let (head, tail) = self.b.split_at(n);
        self.b = tail;
        Ok(head)
    }
    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> io::Result<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.bytes(n)?.to_vec())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
    fn f64s(&mut self, n: usize) -> io::Result<Vec<f64>> {
        Ok(self
            .bytes(8 * n)?
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
    fn done(&self) -> io::Result<()> {
        if self.b.is_empty() {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} trailing bytes in control body", self.b.len()),
            ))
        }
    }
}

// ---------------------------------------------------------------------
// Job description
// ---------------------------------------------------------------------

/// Everything a worker needs to reproduce the launcher's evaluation
/// bitwise: the method knobs (kernel resolved by name), the system, and
/// the mesh address table.
pub(crate) struct JobSpec {
    pub order: u32,
    pub m_trunc: u32,
    pub outer_ratio: f64,
    pub inner_ratio: f64,
    pub sep_d: u32,
    pub depth: u32,
    pub softening: f64,
    pub fused: bool,
    pub kernel: String,
    pub cost_weighted: bool,
    pub with_fields: bool,
    pub workers: u32,
    pub domain_min: [f64; 3],
    pub domain_size: f64,
    pub positions: Vec<[f64; 3]>,
    pub charges: Vec<f64>,
    pub peers: Vec<String>,
}

impl JobSpec {
    fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        put_u32(&mut b, self.order);
        put_u32(&mut b, self.m_trunc);
        put_f64(&mut b, self.outer_ratio);
        put_f64(&mut b, self.inner_ratio);
        put_u32(&mut b, self.sep_d);
        put_u32(&mut b, self.depth);
        put_f64(&mut b, self.softening);
        put_u32(&mut b, u32::from(self.fused));
        put_str(&mut b, &self.kernel);
        put_u32(&mut b, u32::from(self.cost_weighted));
        put_u32(&mut b, u32::from(self.with_fields));
        put_u32(&mut b, self.workers);
        for d in 0..3 {
            put_f64(&mut b, self.domain_min[d]);
        }
        put_f64(&mut b, self.domain_size);
        put_u64(&mut b, self.positions.len() as u64);
        for p in &self.positions {
            for &c in p {
                put_f64(&mut b, c);
            }
        }
        for &q in &self.charges {
            put_f64(&mut b, q);
        }
        put_u32(&mut b, self.peers.len() as u32);
        for a in &self.peers {
            put_str(&mut b, a);
        }
        b
    }

    fn decode(body: &[u8]) -> io::Result<JobSpec> {
        let mut d = Dec::new(body);
        let order = d.u32()?;
        let m_trunc = d.u32()?;
        let outer_ratio = d.f64()?;
        let inner_ratio = d.f64()?;
        let sep_d = d.u32()?;
        let depth = d.u32()?;
        let softening = d.f64()?;
        let fused = d.u32()? != 0;
        let kernel = d.str()?;
        let cost_weighted = d.u32()? != 0;
        let with_fields = d.u32()? != 0;
        let workers = d.u32()?;
        let domain_min = [d.f64()?, d.f64()?, d.f64()?];
        let domain_size = d.f64()?;
        let n = d.u64()? as usize;
        let flat = d.f64s(3 * n)?;
        let positions = flat.chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect();
        let charges = d.f64s(n)?;
        let np = d.u32()? as usize;
        let mut peers = Vec::with_capacity(np);
        for _ in 0..np {
            peers.push(d.str()?);
        }
        d.done()?;
        Ok(JobSpec {
            order,
            m_trunc,
            outer_ratio,
            inner_ratio,
            sep_d,
            depth,
            softening,
            fused,
            kernel,
            cost_weighted,
            with_fields,
            workers,
            domain_min,
            domain_size,
            positions,
            charges,
            peers,
        })
    }

    /// Rebuild the method configuration the launcher serialized. The
    /// kernel arrives pre-resolved: every rank must run the same
    /// microkernel family or the bitwise contract breaks.
    fn config(&self) -> Result<FmmConfig, String> {
        let kernel = Kernel::from_name(&self.kernel)
            .ok_or_else(|| format!("job names unknown kernel {:?}", self.kernel))?;
        let mut cfg = FmmConfig::order(self.order as usize);
        cfg.m_trunc = self.m_trunc as usize;
        cfg.outer_ratio = self.outer_ratio;
        cfg.inner_ratio = self.inner_ratio;
        cfg.separation = match self.sep_d {
            1 => Separation::One,
            2 => Separation::Two,
            d => return Err(format!("job names unknown separation {d}")),
        };
        cfg.depth = DepthPolicy::Fixed(self.depth);
        cfg.softening = self.softening;
        cfg.fused = self.fused;
        cfg.kernel = Some(kernel);
        cfg.executor = Executor::spmd(self.workers as usize);
        cfg.balance = if self.cost_weighted {
            Balance::CostWeighted
        } else {
            Balance::Uniform
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

// ---------------------------------------------------------------------
// WorkerOut wire form
// ---------------------------------------------------------------------

fn encode_out(rank: u32, out: &WorkerOut) -> Vec<u8> {
    let mut b = Vec::new();
    put_u32(&mut b, rank);
    for ph in out.counters.iter() {
        put_u64(&mut b, ph.messages);
        put_u64(&mut b, ph.bytes);
        put_u64(&mut b, ph.local_words);
    }
    put_u64(&mut b, out.orig.len() as u64);
    for &o in &out.orig {
        put_u64(&mut b, o as u64);
    }
    for &p in &out.pot {
        put_f64(&mut b, p);
    }
    put_u32(&mut b, u32::from(out.fields.is_some()));
    if let Some(fs) = &out.fields {
        for f in fs {
            for &c in f {
                put_f64(&mut b, c);
            }
        }
    }
    put_u64(&mut b, out.near_stats.pair_interactions);
    put_u64(&mut b, out.near_stats.box_pairs);
    put_u64(&mut b, out.near_stats.flops);
    put_u64(&mut b, out.p2o_flops);
    put_u64(&mut b, out.eval_flops);
    put_u64(&mut b, out.traversal_flops);
    for t in &out.times {
        put_u64(&mut b, t.as_nanos() as u64);
    }
    b
}

fn decode_out(body: &[u8]) -> io::Result<(u32, WorkerOut)> {
    let mut d = Dec::new(body);
    let rank = d.u32()?;
    let mut counters = Counters::default();
    for phase in 0..Counters::PHASES {
        counters.set_phase(phase);
        let (messages, bytes, local) = (d.u64()?, d.u64()?, d.u64()?);
        if bytes % 8 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "counter bytes not word-aligned",
            ));
        }
        counters.add_messages(messages);
        counters.add_words(bytes / 8);
        counters.add_local_words(local);
    }
    counters.set_phase(0);
    let n = d.u64()? as usize;
    let mut orig = Vec::with_capacity(n);
    for _ in 0..n {
        orig.push(d.u64()? as usize);
    }
    let pot = d.f64s(n)?;
    let fields = if d.u32()? != 0 {
        let flat = d.f64s(3 * n)?;
        Some(flat.chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect())
    } else {
        None
    };
    let near_stats = NearFieldStats {
        pair_interactions: d.u64()?,
        box_pairs: d.u64()?,
        flops: d.u64()?,
    };
    let p2o_flops = d.u64()?;
    let eval_flops = d.u64()?;
    let traversal_flops = d.u64()?;
    let mut times = [Duration::ZERO; 6];
    for t in &mut times {
        *t = Duration::from_nanos(d.u64()?);
    }
    d.done()?;
    Ok((
        rank,
        WorkerOut {
            counters,
            orig,
            pot,
            fields,
            near_stats,
            p2o_flops,
            eval_flops,
            traversal_flops,
            times,
        },
    ))
}

// ---------------------------------------------------------------------
// Control-plane endpoints (unix or tcp)
// ---------------------------------------------------------------------

trait Conn: Read + Write + Send {}
impl<T: Read + Write + Send> Conn for T {}

enum CtrlListener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl CtrlListener {
    fn bind(addr: &FabricAddr) -> io::Result<Self> {
        match addr {
            FabricAddr::Tcp(a) => Ok(CtrlListener::Tcp(TcpListener::bind(a.as_str())?)),
            #[cfg(unix)]
            FabricAddr::Unix(p) => {
                let _ = std::fs::remove_file(p);
                Ok(CtrlListener::Unix(UnixListener::bind(p)?))
            }
            #[cfg(not(unix))]
            FabricAddr::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix rendezvous needs UNIX-domain sockets",
            )),
        }
    }

    /// The address workers should dial — for `tcp:host:0` this is the
    /// OS-assigned port, not the wildcard the launcher was given.
    fn resolved(&self, requested: &FabricAddr) -> io::Result<FabricAddr> {
        match self {
            CtrlListener::Tcp(l) => Ok(FabricAddr::Tcp(l.local_addr()?.to_string())),
            #[cfg(unix)]
            CtrlListener::Unix(_) => Ok(requested.clone()),
        }
    }

    fn accept(&self) -> io::Result<Box<dyn Conn>> {
        match self {
            CtrlListener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_read_timeout(Some(CTRL_TIMEOUT))?;
                Ok(Box::new(s))
            }
            #[cfg(unix)]
            CtrlListener::Unix(l) => {
                let (s, _) = l.accept()?;
                s.set_read_timeout(Some(CTRL_TIMEOUT))?;
                Ok(Box::new(s))
            }
        }
    }
}

/// Connect the rendezvous, retrying briefly: workers may start before
/// the launcher has bound its endpoint.
fn ctrl_connect(addr: &FabricAddr) -> io::Result<Box<dyn Conn>> {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let res: io::Result<Box<dyn Conn>> = match addr {
            FabricAddr::Tcp(a) => TcpStream::connect(a.as_str()).map(|s| {
                let _ = s.set_read_timeout(Some(CTRL_TIMEOUT));
                Box::new(s) as Box<dyn Conn>
            }),
            #[cfg(unix)]
            FabricAddr::Unix(p) => UnixStream::connect(p).map(|s| {
                let _ = s.set_read_timeout(Some(CTRL_TIMEOUT));
                Box::new(s) as Box<dyn Conn>
            }),
            #[cfg(not(unix))]
            FabricAddr::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix rendezvous needs UNIX-domain sockets",
            )),
        };
        match res {
            Ok(c) => return Ok(c),
            Err(e) if Instant::now() < deadline => {
                let transient = matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionRefused
                        | io::ErrorKind::NotFound
                        | io::ErrorKind::AddrNotAvailable
                );
                if !transient {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => return Err(e),
        }
    }
}

// ---------------------------------------------------------------------
// Launcher
// ---------------------------------------------------------------------

/// How a multi-process run is launched.
pub struct LaunchConfig {
    /// Rendezvous endpoint; its kind (unix/tcp) is also the data fabric.
    pub rendezvous: FabricAddr,
    /// Rank count (power of two).
    pub workers: usize,
    /// Evaluate forces as well as potentials.
    pub with_fields: bool,
    /// Spawn this `fmm-worker` binary for every rank. `None` waits for
    /// externally started workers to join the rendezvous.
    pub worker_bin: Option<PathBuf>,
    /// Pre-flight traffic ceiling in bytes (`None` skips the capacity
    /// gate but still validates frame feasibility).
    pub capacity_bytes: Option<u64>,
}

fn io_err(stage: &str, e: impl std::fmt::Display) -> FmmError {
    FmmError::InvalidConfig(format!("distributed launch failed at {stage}: {e}"))
}

/// Evaluate `fmm` on `p` OS-process ranks joined through a rendezvous.
/// Output — potentials, fields, counters, report — is bitwise identical
/// to `Executor::spmd(p)` in one process.
pub fn evaluate_distributed(
    fmm: &Fmm,
    positions: &[[f64; 3]],
    charges: &[f64],
    lc: &LaunchConfig,
) -> Result<EvalOutput, FmmError> {
    let cfg = fmm.config();
    let p = lc.workers;
    if p == 0 || !p.is_power_of_two() {
        return Err(FmmError::InvalidConfig(format!(
            "distributed worker count {p} must be a power of two"
        )));
    }
    if positions.len() != charges.len() || positions.is_empty() {
        return Err(FmmError::BadInput(format!(
            "{} positions vs {} charges",
            positions.len(),
            charges.len()
        )));
    }
    let domain = Domain::bounding(positions);
    let depth = cfg.depth.resolve(positions.len());
    let grid = vu_grid_for(p);
    let n_axis = 1usize << depth;
    if grid.dims.iter().any(|&d| d > n_axis) {
        return Err(FmmError::InvalidConfig(format!(
            "{p} workers on a {:?} grid exceed depth {depth}'s {n_axis} boxes per axis",
            grid.dims
        )));
    }
    let balance = cfg.effective_balance();
    let plan = fmm.plan_for(depth);
    let program = build_program(fmm, positions, domain, depth, grid, lc.with_fields, balance);

    // Pre-flight: price the program on the selected wire and refuse to
    // spawn ranks for a run that cannot fit the operator's budget.
    let budget = communication_budget_with(
        &ProgramConfig {
            depth,
            k: fmm.k(),
            m: cfg.m_trunc,
            particles_per_box: positions.len() as f64 / 8f64.powi(depth as i32),
            vu_grid: grid,
            supernodes: false,
            sort_miss_fraction: 1.0 - 1.0 / p as f64,
            forces_near: lc.with_fields,
        },
        program.partition.as_ref().map(|ps| &ps.partition),
    );
    let model = TransportModel::by_name(lc.rendezvous.fabric().name())
        .expect("every fabric has a transport model");
    preflight(&budget, &model, lc.capacity_bytes).map_err(FmmError::InvalidConfig)?;

    let listener = CtrlListener::bind(&lc.rendezvous).map_err(|e| io_err("rendezvous bind", e))?;
    let rendezvous = listener
        .resolved(&lc.rendezvous)
        .map_err(|e| io_err("rendezvous addr", e))?;

    let mut children: Vec<Child> = Vec::new();
    if let Some(bin) = &lc.worker_bin {
        for rank in 0..p {
            let child = Command::new(bin)
                .arg("--rank")
                .arg(rank.to_string())
                .arg("--fabric")
                .arg(rendezvous.to_string())
                .spawn()
                .map_err(|e| io_err("worker spawn", e))?;
            children.push(child);
        }
    }

    let run = || -> io::Result<Vec<WorkerOut>> {
        // Collect one Hello per rank; the mesh table is rank-indexed.
        let mut conns: Vec<Option<Box<dyn Conn>>> = (0..p).map(|_| None).collect();
        let mut peers = vec![String::new(); p];
        for _ in 0..p {
            let mut conn = listener.accept()?;
            let (op, body) = read_ctrl(&mut conn)?;
            if op != OP_HELLO {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected Hello, got opcode {op}"),
                ));
            }
            let mut dec = Dec::new(&body);
            let rank = dec.u32()? as usize;
            let mesh_addr = dec.str()?;
            dec.done()?;
            if rank >= p || conns[rank].is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("duplicate or out-of-range rank {rank} at rendezvous"),
                ));
            }
            peers[rank] = mesh_addr;
            conns[rank] = Some(conn);
        }
        let job = JobSpec {
            order: cfg.order as u32,
            m_trunc: cfg.m_trunc as u32,
            outer_ratio: cfg.outer_ratio,
            inner_ratio: cfg.inner_ratio,
            sep_d: cfg.separation.d() as u32,
            depth,
            softening: cfg.softening,
            fused: cfg.fused,
            kernel: cfg.resolve_kernel().name().to_string(),
            cost_weighted: balance == Balance::CostWeighted,
            with_fields: lc.with_fields,
            workers: p as u32,
            domain_min: domain.min,
            domain_size: domain.size,
            positions: positions.to_vec(),
            charges: charges.to_vec(),
            peers,
        }
        .encode();
        for conn in conns.iter_mut().flatten() {
            write_ctrl(conn, OP_JOB, &job)?;
        }
        let mut outs: Vec<Option<WorkerOut>> = (0..p).map(|_| None).collect();
        for (rank, conn) in conns.iter_mut().enumerate() {
            let conn = conn.as_mut().unwrap();
            let (op, body) = read_ctrl(conn)?;
            if op != OP_RESULT {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected Result from rank {rank}, got opcode {op}"),
                ));
            }
            let (r, out) = decode_out(&body)?;
            if r as usize != rank {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("rank {rank}'s connection returned rank {r}'s result"),
                ));
            }
            outs[rank] = Some(out);
        }
        Ok(outs.into_iter().map(Option::unwrap).collect())
    };
    let outs = run();

    // Reap spawned workers regardless of how the exchange went.
    let mut child_fail = None;
    for (rank, mut child) in children.into_iter().enumerate() {
        if outs.is_err() {
            let _ = child.kill();
        }
        match child.wait() {
            Ok(st) if st.success() || outs.is_err() => {}
            Ok(st) => child_fail = Some(format!("worker rank {rank} exited with {st}")),
            Err(e) => child_fail = Some(format!("worker rank {rank} unreapable: {e}")),
        }
    }
    if let FabricAddr::Unix(path) = &lc.rendezvous {
        let _ = std::fs::remove_file(path);
    }
    let outs = outs.map_err(|e| io_err("rendezvous exchange", e))?;
    if let Some(fail) = child_fail {
        return Err(io_err("worker exit", fail));
    }
    Ok(assemble(
        fmm,
        &plan,
        &program,
        grid,
        depth,
        positions.len(),
        lc.with_fields,
        domain,
        outs,
    ))
}

// ---------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------

fn run_job<S: MeshStream>(
    rank: usize,
    job: &JobSpec,
    mesh: Vec<Option<S>>,
) -> Result<WorkerOut, String> {
    let cfg = job.config()?;
    let fmm = Fmm::new(cfg).map_err(|e| e.to_string())?;
    let p = job.workers as usize;
    let grid = vu_grid_for(p);
    let domain = Domain {
        min: job.domain_min,
        size: job.domain_size,
    };
    let plan = fmm.plan_for(job.depth);
    let program = build_program(
        &fmm,
        &job.positions,
        domain,
        job.depth,
        grid,
        job.with_fields,
        fmm.config().effective_balance(),
    );
    let shared = exec::Shared {
        fmm: &fmm,
        positions: &job.positions,
        charges: &job.charges,
        domain,
        depth: job.depth,
        with_fields: job.with_fields,
        plan: &plan,
        program: &program,
    };
    let transport = SocketTransport::new(rank, mesh).map_err(|e| e.to_string())?;
    let ctx = WorkerCtx::new(rank, grid, Box::new(transport));
    let out = if program.partition.is_some() {
        exec::worker_main_part(ctx, &shared)
    } else {
        exec::worker_main(ctx, &shared)
    };
    Ok(out)
}

/// Join a rendezvous as rank `rank` and execute the job the launcher
/// publishes: the `fmm-worker` binary is a thin shell over this.
pub fn worker_join(rendezvous: &FabricAddr, rank: usize) -> Result<(), String> {
    let err = |stage: &str, e: &dyn std::fmt::Display| format!("rank {rank} {stage}: {e}");

    // Bind the mesh listener *before* saying Hello: once the launcher
    // publishes the address table, every listener is guaranteed bound.
    enum MeshListener {
        Tcp(TcpListener),
        #[cfg(unix)]
        Unix(UnixListener, PathBuf),
    }
    let (mesh_listener, mesh_addr) = match rendezvous {
        FabricAddr::Tcp(_) => {
            let l = TcpListener::bind("127.0.0.1:0").map_err(|e| err("mesh bind", &e))?;
            let a = l.local_addr().map_err(|e| err("mesh addr", &e))?;
            (MeshListener::Tcp(l), format!("tcp:{a}"))
        }
        #[cfg(unix)]
        FabricAddr::Unix(base) => {
            let path = PathBuf::from(format!("{}.r{rank}", base.display()));
            let _ = std::fs::remove_file(&path);
            let l = UnixListener::bind(&path).map_err(|e| err("mesh bind", &e))?;
            let a = format!("unix:{}", path.display());
            (MeshListener::Unix(l, path), a)
        }
        #[cfg(not(unix))]
        FabricAddr::Unix(_) => return Err("unix fabric needs UNIX-domain sockets".into()),
    };

    let mut conn = ctrl_connect(rendezvous).map_err(|e| err("rendezvous connect", &e))?;
    let mut hello = Vec::new();
    put_u32(&mut hello, rank as u32);
    put_str(&mut hello, &mesh_addr);
    write_ctrl(&mut conn, OP_HELLO, &hello).map_err(|e| err("hello", &e))?;

    let (op, body) = read_ctrl(&mut conn).map_err(|e| err("job read", &e))?;
    if op != OP_JOB {
        return Err(err("job read", &format!("unexpected opcode {op}")));
    }
    let job = JobSpec::decode(&body).map_err(|e| err("job decode", &e))?;
    let p = job.workers as usize;
    if rank >= p {
        return Err(format!("rank {rank} out of range for {p} workers"));
    }

    let out = match mesh_listener {
        MeshListener::Tcp(l) => {
            let mesh = connect_mesh(
                rank,
                p,
                |peer| {
                    let a = job.peers[peer]
                        .strip_prefix("tcp:")
                        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "peer kind"))?;
                    TcpStream::connect(a)
                },
                || l.accept().map(|(s, _)| s),
            )
            .map_err(|e| err("mesh", &e))?;
            run_job(rank, &job, mesh)?
        }
        #[cfg(unix)]
        MeshListener::Unix(l, path) => {
            let mesh = connect_mesh(
                rank,
                p,
                |peer| {
                    let a = job.peers[peer]
                        .strip_prefix("unix:")
                        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "peer kind"))?;
                    UnixStream::connect(a)
                },
                || l.accept().map(|(s, _)| s),
            );
            let _ = std::fs::remove_file(&path);
            run_job(rank, &job, mesh.map_err(|e| err("mesh", &e))?)?
        }
    };

    let body = encode_out(rank as u32, &out);
    write_ctrl(&mut conn, OP_RESULT, &body).map_err(|e| err("result", &e))?;
    Ok(())
}

/// Everything an `SpmdOptions` launch needs to know, derived from the
/// environment: the `--fabric`-style rendezvous address in `FMM_FABRIC`,
/// the worker binary in `FMM_WORKER_BIN`, and an optional capacity gate
/// in `FMM_CAPACITY_BYTES`.
pub fn launch_config_from_env(opts: SpmdOptions, with_fields: bool) -> Option<LaunchConfig> {
    let addr = std::env::var("FMM_FABRIC").ok()?;
    let rendezvous = FabricAddr::parse(&addr).ok()?;
    if rendezvous.fabric() != opts.transport {
        return None;
    }
    Some(LaunchConfig {
        rendezvous,
        workers: opts.workers,
        with_fields,
        worker_bin: std::env::var_os("FMM_WORKER_BIN").map(PathBuf::from),
        capacity_bytes: std::env::var("FMM_CAPACITY_BYTES")
            .ok()
            .and_then(|v| v.parse().ok()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_spec_round_trips() {
        let job = JobSpec {
            order: 3,
            m_trunc: 5,
            outer_ratio: 1.25,
            inner_ratio: 0.875,
            sep_d: 2,
            depth: 3,
            softening: 0.0,
            fused: true,
            kernel: "scalar".into(),
            cost_weighted: true,
            with_fields: true,
            workers: 4,
            domain_min: [-1.0, 0.5, 2.0],
            domain_size: 3.5,
            positions: vec![[0.1, 0.2, 0.3], [0.4, 0.5, 0.6]],
            charges: vec![1.0, -1.0],
            peers: vec!["unix:/tmp/a".into(); 4],
        };
        let out = JobSpec::decode(&job.encode()).unwrap();
        assert_eq!(out.order, 3);
        assert_eq!(out.positions, job.positions);
        assert_eq!(out.charges, job.charges);
        assert_eq!(out.peers, job.peers);
        assert!(out.cost_weighted && out.with_fields && out.fused);
        let cfg = out.config().unwrap();
        assert_eq!(cfg.m_trunc, 5);
        assert_eq!(cfg.balance, Balance::CostWeighted);
    }

    #[test]
    fn job_decode_rejects_truncation() {
        let job = JobSpec {
            order: 3,
            m_trunc: 5,
            outer_ratio: 1.25,
            inner_ratio: 0.875,
            sep_d: 2,
            depth: 3,
            softening: 0.0,
            fused: true,
            kernel: "scalar".into(),
            cost_weighted: false,
            with_fields: false,
            workers: 2,
            domain_min: [0.0; 3],
            domain_size: 1.0,
            positions: vec![[0.1, 0.2, 0.3]],
            charges: vec![1.0],
            peers: vec!["tcp:127.0.0.1:1".into(); 2],
        };
        let bytes = job.encode();
        for cut in [0, 4, 17, bytes.len() - 1] {
            assert!(JobSpec::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(JobSpec::decode(&extra).is_err(), "trailing byte accepted");
    }

    #[test]
    fn worker_out_round_trips_counters_and_bits() {
        let mut counters = Counters::default();
        counters.set_phase(2);
        counters.add_messages(7);
        counters.add_words(100);
        counters.set_phase(5);
        counters.add_local_words(3);
        counters.set_phase(0);
        let out = WorkerOut {
            counters,
            orig: vec![4, 0, 2],
            pot: vec![1.5, f64::from_bits(0x7ff8_0000_0000_0001), -0.0],
            fields: Some(vec![[1.0, 2.0, 3.0]; 3]),
            near_stats: NearFieldStats {
                pair_interactions: 9,
                box_pairs: 4,
                flops: 99,
            },
            p2o_flops: 1,
            eval_flops: 2,
            traversal_flops: 3,
            times: [Duration::from_nanos(5); 6],
        };
        let (rank, back) = decode_out(&encode_out(3, &out)).unwrap();
        assert_eq!(rank, 3);
        assert_eq!(back.counters, out.counters);
        assert_eq!(back.orig, out.orig);
        for (a, b) in out.pot.iter().zip(&back.pot) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(back.fields, out.fields);
        assert_eq!(back.near_stats, out.near_stats);
        assert_eq!(back.times, out.times);
    }

    #[test]
    fn ctrl_frames_round_trip_and_reject_bad_magic() {
        let mut buf = Vec::new();
        write_ctrl(&mut buf, OP_HELLO, b"payload").unwrap();
        let (op, body) = read_ctrl(&mut buf.as_slice()).unwrap();
        assert_eq!(op, OP_HELLO);
        assert_eq!(body, b"payload");
        buf[4] = b'X';
        assert!(read_ctrl(&mut buf.as_slice()).is_err());
    }
}
