//! The communication program: a first-class IR of the SPMD executor's
//! schedule, derivable from `(VuGrid, depth, K, separation, output kind)`
//! alone — before any particle exists.
//!
//! The paper's communication structure is *statically schedulable*: which
//! CSHIFTs run, which ranks exchange halo cells, how the Multigrid-embedded
//! levels gather and broadcast — all of it is a pure function of the
//! machine shape and the hierarchy, not of the data. [`CommProgram`]
//! reifies that schedule as a list of per-phase [`Step`]s, and is consumed
//! from both sides:
//!
//! * the executor ([`crate::run_workers`] workers in `exec.rs`) walks the
//!   program step by step — phase order, levels, axes, shift directions and
//!   tag sequence all come from here, nowhere else;
//! * the static analyzer (`fmm-verify`) lowers every step to its per-rank
//!   send/receive endpoints via [`Step::ops_for`] and proves endpoint
//!   matching, deadlock freedom and budget conformance without launching a
//!   thread.
//!
//! Because both sides read the same structure, a schedule bug (flipped
//! shift direction, dropped receive) is visible to the analyzer exactly as
//! it would be executed.
//!
//! Endpoint enumeration reuses the identical per-rank plan functions the
//! collectives run ([`halo_axis_plan`], [`particle_axis_plan`],
//! [`ring_partners`]): the sender-side enumeration rebuilds the receiver's
//! plan just like the wire protocol does, so the endpoint-matching pass is
//! a real proof that both ends agree, not a tautology.

use std::collections::BTreeMap;

use fmm_machine::{subgrid_extent, BlockLayout, TravelPath, VuGrid};
use fmm_tree::partition::{box_halo, child_flush, parent_fetch, particle_halo, slot_route};
use fmm_tree::Separation;

pub use fmm_tree::{Exchange, Partition};

/// Index of the global grid cell `g` on an `n`-per-axis level.
#[inline]
pub fn cell_index(g: [usize; 3], n: usize) -> usize {
    (g[2] * n + g[1]) * n + g[0]
}

/// What a message carries. Receives are only compatible with sends of the
/// same payload type (the channels are typed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Payload {
    /// Particle records (positions, charges, bookkeeping).
    Particles,
    /// K-sample box vectors of a far/local field level.
    Boxes,
    /// Travelling near-field slots (particles + accumulator trains).
    Slots,
}

/// Statically known payload volume in f64 words, or data-dependent.
///
/// `Exact` counts the words the executor's byte counters charge (envelope
/// metadata such as per-box indices is excluded on both sides, so static
/// and measured bytes are comparable 1:1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Volume {
    Exact(u64),
    Dynamic,
}

/// One communication action of one rank within a step, in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    Send {
        to: usize,
        words: Volume,
        payload: Payload,
    },
    Recv {
        from: usize,
        payload: Payload,
    },
}

/// The collective family of a step and its static parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// Personalized all-to-all through the router (the coordinate sort).
    Router,
    /// Binomial-tree gather of a distributed level's far field to rank 0
    /// (the upward Multigrid-embed transition).
    Gather { level: u32 },
    /// Binomial-tree broadcast of rank 0's local field of `level` to all
    /// ranks (re-entering the distributed region downward).
    Broadcast { level: u32 },
    /// One axis phase of the wrapped box-halo CSHIFT exchange at `level`.
    BoxHalo { level: u32, axis: usize },
    /// One axis phase of the clipped particle-halo exchange at the leaf
    /// level (forces near field).
    ParticleHalo { axis: usize },
    /// One unit CSHIFT of the travelling near-field slots. `delta` is the
    /// slot-position displacement (±1) along `axis`; `visit` is the
    /// half-offset accumulated after the shift, `None` for return shifts.
    SlotShift {
        axis: usize,
        delta: i32,
        visit: Option<[i32; 3]>,
    },
    /// Partitioned upward exchange: child far-field rows of `level` (the
    /// *child* level) flush to the owners of their parents, per the
    /// partition's [`fmm_tree::child_flush`] plan.
    ChildFlush { level: u32 },
    /// Partitioned downward exchange: parent local-expansion rows
    /// (level − 1) fetched by the owners of boxes at `level` for the T3
    /// shift, per [`fmm_tree::parent_fetch`].
    ParentFetch { level: u32 },
    /// Partitioned interactive-field exchange of far rows at `level`
    /// (union over octants), per [`fmm_tree::box_halo`].
    PartBoxHalo { level: u32 },
    /// Partitioned leaf particle exchange for the forces near field: one
    /// step covering the whole clipped neighbourhood, per
    /// [`fmm_tree::particle_halo`].
    PartParticleHalo,
}

/// One step of the program: a collective call every rank makes at the same
/// point, burning exactly one fabric tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    pub kind: StepKind,
    /// The fabric tag this step uses — the global sequence number of the
    /// collective call. Every rank's tag counter agrees by construction.
    pub tag: u64,
    /// Logical message count the machine model charges for this step
    /// (CSHIFT invocations / router operations / broadcast stages /
    /// point-to-point sends), summed over the whole machine.
    pub logical_msgs: u64,
}

/// The precomputed exchange plans of a cost-weighted (Morton-partitioned)
/// program. The plans are built once from the [`Partition`] by
/// [`CommProgram::build_partitioned`] and then consumed by *both* the
/// executor's collectives and the static lowering ([`Step::ops_for`]), so
/// the analyzed endpoints are the executed endpoints by construction.
#[derive(Debug, Clone)]
pub struct PartitionSchedule {
    /// The leaf Morton-curve split driving every plan below.
    pub partition: Partition,
    /// Per *child* level (descending), the upward child-row flush.
    pub child_flush: Vec<(u32, Exchange)>,
    /// Per level `l ≥ 3`, the parent local-row fetch for T3.
    pub parent_fetch: Vec<(u32, Exchange)>,
    /// Per level `l ≥ 2`, the interactive-field far-row exchange.
    pub box_halo: Vec<(u32, Exchange)>,
    /// The one-shot leaf particle exchange (forces near field).
    pub particle_halo: Exchange,
    /// Unit-hop slot routes keyed by `(axis, delta)` — at most six.
    pub slot_routes: BTreeMap<(usize, i32), Exchange>,
}

impl PartitionSchedule {
    /// The child-flush plan whose rows live at `child_level`.
    pub fn child_flush_at(&self, child_level: u32) -> &Exchange {
        &self
            .child_flush
            .iter()
            .find(|(l, _)| *l == child_level)
            .expect("scheduled child level has a plan")
            .1
    }

    /// The parent-fetch plan serving the T3 shift at `level`.
    pub fn parent_fetch_at(&self, level: u32) -> &Exchange {
        &self
            .parent_fetch
            .iter()
            .find(|(l, _)| *l == level)
            .expect("scheduled fetch level has a plan")
            .1
    }

    /// The interactive-field exchange plan at `level`.
    pub fn box_halo_at(&self, level: u32) -> &Exchange {
        &self
            .box_halo
            .iter()
            .find(|(l, _)| *l == level)
            .expect("scheduled halo level has a plan")
            .1
    }

    /// The slot route of one unit hop.
    pub fn slot_route_at(&self, axis: usize, delta: i32) -> &Exchange {
        self.slot_routes
            .get(&(axis, delta))
            .expect("scheduled hop has a route")
    }
}

/// The whole communication program of one evaluation, phase by phase, in
/// [`fmm_core::SpmdReport::PHASE_NAMES`] order.
#[derive(Debug, Clone)]
pub struct CommProgram {
    pub grid: VuGrid,
    pub depth: u32,
    /// Box vector length (sphere samples per box).
    pub k: usize,
    /// Near-field separation d.
    pub sep_d: usize,
    /// Box-halo ghost depth (2d + 1 covers the asymmetric T2 reach).
    pub ghost: usize,
    /// Forces (particle halo) vs potentials (travelling slots) near field.
    pub with_fields: bool,
    /// `Some` when the program runs over a cost-weighted Morton partition
    /// instead of the uniform block layout.
    pub partition: Option<PartitionSchedule>,
    pub phases: [Vec<Step>; 6],
}

impl CommProgram {
    /// Derive the schedule. Pure: depends only on the arguments.
    pub fn build(grid: VuGrid, depth: u32, k: usize, sep_d: usize, with_fields: bool) -> Self {
        let p = grid.len();
        let ghost = 2 * sep_d + 1;
        let mut phases: [Vec<Step>; 6] = Default::default();
        let mut tag = 0u64;
        let mut push = |phases: &mut [Vec<Step>; 6], phase: usize, kind, logical_msgs| {
            phases[phase].push(Step {
                kind,
                tag,
                logical_msgs,
            });
            tag += 1;
        };

        // Phase 0 — sort: one router operation (a no-op message-wise at
        // p = 1, but the collective still runs and burns its tag).
        push(&mut phases, 0, StepKind::Router, (p > 1) as u64);

        // Phase 2 — upward: a single binomial gather at the transition
        // from the block-distributed levels into the Multigrid-embed
        // region (child level still distributed, parent level not).
        if depth >= 3 {
            for l in (1..depth).rev() {
                if subgrid_extent(l, &grid).is_none() && subgrid_extent(l + 1, &grid).is_some() {
                    push(
                        &mut phases,
                        2,
                        StepKind::Gather { level: l + 1 },
                        p as u64 - 1,
                    );
                }
            }
        }

        // Phase 3 — downward: re-entering the distributed region
        // broadcasts the embedded parent level once, then every
        // distributed level runs one wrapped halo exchange (three axis
        // phases, two CSHIFT ops each on the model's ledger).
        let l_first = (2..=depth).find(|&l| subgrid_extent(l, &grid).is_some());
        for l in 2..=depth {
            if subgrid_extent(l, &grid).is_none() {
                continue;
            }
            if Some(l) == l_first && l >= 3 && subgrid_extent(l - 1, &grid).is_none() {
                push(
                    &mut phases,
                    3,
                    StepKind::Broadcast { level: l - 1 },
                    p.trailing_zeros() as u64,
                );
            }
            for axis in 0..3 {
                push(&mut phases, 3, StepKind::BoxHalo { level: l, axis }, 2);
            }
        }

        // Phase 5 — near field. Forces: three particle-halo axis phases.
        // Potentials: the travelling-accumulator sweep — one unit CSHIFT
        // per visited half-offset, then per-axis unit return shifts (the
        // model charges one CSHIFT per visit and one per non-trivial
        // return axis; extra unit hops of a multi-box return ride free).
        if with_fields {
            for axis in 0..3 {
                push(&mut phases, 5, StepKind::ParticleHalo { axis }, 2);
            }
        } else {
            let path = TravelPath::new(sep_d as i32);
            for s in &path.steps {
                push(
                    &mut phases,
                    5,
                    StepKind::SlotShift {
                        axis: s.axis,
                        // Slot position = origin − cum: positions move
                        // against the step direction.
                        delta: -s.dir,
                        visit: Some(s.cum),
                    },
                    1,
                );
            }
            for (axis, &r) in path.returns.iter().enumerate() {
                if r == 0 {
                    continue;
                }
                for hop in 0..r.unsigned_abs() {
                    push(
                        &mut phases,
                        5,
                        StepKind::SlotShift {
                            axis,
                            delta: -r.signum(),
                            visit: None,
                        },
                        (hop == 0) as u64,
                    );
                }
            }
        }

        CommProgram {
            grid,
            depth,
            k,
            sep_d,
            ghost,
            with_fields,
            partition: None,
            phases,
        }
    }

    /// Derive the partitioned schedule of a cost-weighted run: the same
    /// phase structure as [`CommProgram::build`], but every exchange is a
    /// precomputed [`Exchange`] plan of the Morton `partition` rather than
    /// a block-layout collective. Every level stays distributed (no
    /// Multigrid embedding — coarse ownership follows first-descendant
    /// leaves instead), and each step's `logical_msgs` is its plan's exact
    /// machine-wide message count, which is what
    /// `fmm_machine::communication_budget_with` prices.
    pub fn build_partitioned(
        grid: VuGrid,
        depth: u32,
        k: usize,
        sep_d: usize,
        with_fields: bool,
        partition: Partition,
    ) -> Self {
        assert_eq!(
            grid.len(),
            partition.workers(),
            "partition workers must match the VU grid"
        );
        assert_eq!(depth, partition.depth(), "partition depth must match");
        let p = grid.len();
        let ghost = 2 * sep_d + 1;
        let sep = match sep_d {
            1 => Separation::One,
            2 => Separation::Two,
            _ => panic!("unsupported separation d = {sep_d}"),
        };
        let mut phases: [Vec<Step>; 6] = Default::default();
        let mut tag = 0u64;
        let mut push = |phases: &mut [Vec<Step>; 6], phase: usize, kind, logical_msgs| {
            phases[phase].push(Step {
                kind,
                tag,
                logical_msgs,
            });
            tag += 1;
        };

        // Phase 0 — sort: one router operation, as in the uniform build.
        push(&mut phases, 0, StepKind::Router, (p > 1) as u64);

        // Phase 2 — upward: one child-row flush per computed parent level,
        // finest first (parents of the leaves down to level 2). Levels 1
        // and 0 are never consumed by T2/T3 and are skipped, exactly as
        // the partitioned budget prices it.
        let mut cf = Vec::new();
        if depth >= 3 {
            for l in (2..depth).rev() {
                let ex = child_flush(&partition, l);
                push(
                    &mut phases,
                    2,
                    StepKind::ChildFlush { level: l + 1 },
                    ex.messages(),
                );
                cf.push((l + 1, ex));
            }
        }

        // Phase 3 — downward: per level, a parent local-row fetch (l ≥ 3)
        // followed by the interactive-field far-row exchange.
        let mut pf = Vec::new();
        let mut bh = Vec::new();
        for l in 2..=depth {
            if l >= 3 {
                let ex = parent_fetch(&partition, l);
                push(
                    &mut phases,
                    3,
                    StepKind::ParentFetch { level: l },
                    ex.messages(),
                );
                pf.push((l, ex));
            }
            let ex = box_halo(&partition, l, sep);
            push(
                &mut phases,
                3,
                StepKind::PartBoxHalo { level: l },
                ex.messages(),
            );
            bh.push((l, ex));
        }

        // Phase 5 — near field. Forces: the whole clipped particle halo in
        // one planned exchange. Potentials: the identical travelling-slot
        // itinerary as the uniform build — same (axis, delta, visit)
        // sequence — but each hop routed by ownership, with its route's
        // exact message count on the ledger (return hops included).
        let mut ph_ex = Exchange::default();
        let mut routes: BTreeMap<(usize, i32), Exchange> = BTreeMap::new();
        if with_fields {
            let ex = particle_halo(&partition, sep);
            push(&mut phases, 5, StepKind::PartParticleHalo, ex.messages());
            ph_ex = ex;
        } else {
            let path = TravelPath::new(sep_d as i32);
            for s in &path.steps {
                let delta = -s.dir;
                let msgs = routes
                    .entry((s.axis, delta))
                    .or_insert_with(|| slot_route(&partition, s.axis, delta))
                    .messages();
                push(
                    &mut phases,
                    5,
                    StepKind::SlotShift {
                        axis: s.axis,
                        delta,
                        visit: Some(s.cum),
                    },
                    msgs,
                );
            }
            for (axis, &r) in path.returns.iter().enumerate() {
                if r == 0 {
                    continue;
                }
                let delta = -r.signum();
                let msgs = routes
                    .entry((axis, delta))
                    .or_insert_with(|| slot_route(&partition, axis, delta))
                    .messages();
                for _hop in 0..r.unsigned_abs() {
                    push(
                        &mut phases,
                        5,
                        StepKind::SlotShift {
                            axis,
                            delta,
                            visit: None,
                        },
                        msgs,
                    );
                }
            }
        }

        CommProgram {
            grid,
            depth,
            k,
            sep_d,
            ghost,
            with_fields,
            partition: Some(PartitionSchedule {
                partition,
                child_flush: cf,
                parent_fetch: pf,
                box_halo: bh,
                particle_halo: ph_ex,
                slot_routes: routes,
            }),
            phases,
        }
    }

    /// Does the downward phase halo-exchange level `l` (⇔ the level is
    /// block-distributed rather than Multigrid-embedded)?
    pub fn has_box_halo(&self, l: u32) -> bool {
        self.phases[3]
            .iter()
            .any(|s| matches!(s.kind, StepKind::BoxHalo { level, .. } if level == l))
    }

    /// Total number of steps (= fabric tags burned per rank).
    pub fn step_count(&self) -> usize {
        self.phases.iter().map(Vec::len).sum()
    }

    /// All steps in tag order.
    pub fn steps(&self) -> impl Iterator<Item = (usize, &Step)> {
        self.phases
            .iter()
            .enumerate()
            .flat_map(|(i, ph)| ph.iter().map(move |s| (i, s)))
    }
}

/// The ring partners of `rank` for a unit circular shift of slot positions
/// by `delta` along `axis`: `(dst, src)` — we send to `dst` and receive
/// from `src`. Shared by [`crate::collectives::shift_slots`] and the
/// static lowering.
pub fn ring_partners(grid: &VuGrid, rank: usize, axis: usize, delta: i32) -> (usize, usize) {
    let dims_a = grid.dims[axis] as i64;
    let my = grid.coords(rank);
    let mut dst_c = my;
    dst_c[axis] = (my[axis] as i64 + delta as i64).rem_euclid(dims_a) as usize;
    let mut src_c = my;
    src_c[axis] = (my[axis] as i64 - delta as i64).rem_euclid(dims_a) as usize;
    (grid.rank(dst_c), grid.rank(src_c))
}

/// The halo cells rank `who` must obtain in axis phase `axis` of a
/// wrapped box-halo exchange with ghost depth `g`, grouped by source rank
/// (BTreeMap ⇒ deterministic order). Cells are wrapped global indices, in
/// window enumeration order — senders rebuild the same plan, so both ends
/// agree on the per-message layout without exchanging metadata.
///
/// Phase structure (the CSHIFT corner-forwarding trick): phase `a` extends
/// the slab along axis `a` only, but enumerates the *already extended*
/// range on axes `< a`, so corner/edge cells ride later phases instead of
/// needing diagonal neighbors.
pub fn halo_axis_plan(
    lay: &BlockLayout,
    who: [usize; 3],
    axis: usize,
    g: usize,
    n: usize,
) -> BTreeMap<usize, Vec<usize>> {
    let s = lay.subgrid;
    let gi = g as i64;
    let ni = n as i64;
    let lo: Vec<i64> = (0..3).map(|a| (who[a] * s[a]) as i64).collect();
    let ranges: Vec<Vec<i64>> = (0..3)
        .map(|a| {
            let si = s[a] as i64;
            if a < axis {
                (lo[a] - gi..lo[a] + si + gi).collect()
            } else if a == axis {
                (lo[a] - gi..lo[a])
                    .chain(lo[a] + si..lo[a] + si + gi)
                    .collect()
            } else {
                (lo[a]..lo[a] + si).collect()
            }
        })
        .collect();
    let mut plan: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &z in &ranges[2] {
        for &y in &ranges[1] {
            for &x in &ranges[0] {
                let w = [
                    x.rem_euclid(ni) as usize,
                    y.rem_euclid(ni) as usize,
                    z.rem_euclid(ni) as usize,
                ];
                let mut src_c = who;
                src_c[axis] = w[axis] / s[axis];
                let src = lay.vu.rank(src_c);
                plan.entry(src).or_default().push(cell_index(w, n));
            }
        }
    }
    plan
}

/// Clipped (non-wrapped) variant of [`halo_axis_plan`] for the particle
/// halo of the forces near field: cells outside the domain simply don't
/// exist, so ranges intersect `[0, n)` and no coordinate wraps.
pub fn particle_axis_plan(
    lay: &BlockLayout,
    who: [usize; 3],
    axis: usize,
    g: usize,
    n: usize,
) -> BTreeMap<usize, Vec<usize>> {
    let s = lay.subgrid;
    let gi = g as i64;
    let ni = n as i64;
    let lo: Vec<i64> = (0..3).map(|a| (who[a] * s[a]) as i64).collect();
    let clip = |r: std::ops::Range<i64>| r.start.max(0)..r.end.min(ni);
    let ranges: Vec<Vec<i64>> = (0..3)
        .map(|a| {
            let si = s[a] as i64;
            if a < axis {
                clip(lo[a] - gi..lo[a] + si + gi).collect()
            } else if a == axis {
                clip(lo[a] - gi..lo[a])
                    .chain(clip(lo[a] + si..lo[a] + si + gi))
                    .collect()
            } else {
                (lo[a]..lo[a] + si).collect()
            }
        })
        .collect();
    let mut plan: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &z in &ranges[2] {
        for &y in &ranges[1] {
            for &x in &ranges[0] {
                let w = [x as usize, y as usize, z as usize];
                let mut src_c = who;
                src_c[axis] = w[axis] / s[axis];
                let src = lay.vu.rank(src_c);
                debug_assert_ne!(src, lay.vu.rank(who));
                plan.entry(src).or_default().push(cell_index(w, n));
            }
        }
    }
    plan
}

impl Step {
    /// Rank `rank`'s ordered communication actions for this step — the
    /// exact sequence of sends and receives the executor performs, with
    /// statically known payload volumes where the data is data-independent.
    ///
    /// This is the lowering the analyzer checks; it calls the same plan
    /// functions the collectives run.
    pub fn ops_for(&self, prog: &CommProgram, rank: usize) -> Vec<Op> {
        let grid = &prog.grid;
        let p = grid.len();
        let k = prog.k as u64;
        let mut ops = Vec::new();
        match self.kind {
            StepKind::Router => {
                // all_to_allv: send to every other rank in ascending rank
                // order (possibly empty chunks), then receive from every
                // other rank in ascending rank order.
                for w in 0..p {
                    if w != rank {
                        ops.push(Op::Send {
                            to: w,
                            words: Volume::Dynamic,
                            payload: Payload::Particles,
                        });
                    }
                }
                for w in 0..p {
                    if w != rank {
                        ops.push(Op::Recv {
                            from: w,
                            payload: Payload::Particles,
                        });
                    }
                }
            }
            StepKind::Gather { level } => {
                // Binomial combine: stage s halves the holder set. A rank
                // retires by sending everything it holds — its own chunk
                // plus the 2^s − 1 chunks absorbed in earlier stages.
                let boxes_pv = (1u64 << (3 * level)) / p as u64;
                let stages = p.trailing_zeros();
                for s in 0..stages {
                    let bit = 1usize << s;
                    if !rank.is_multiple_of(bit) {
                        continue;
                    }
                    if rank & bit != 0 {
                        ops.push(Op::Send {
                            to: rank - bit,
                            words: Volume::Exact(boxes_pv * (1 << s) * k),
                            payload: Payload::Boxes,
                        });
                        break; // retired
                    } else if rank + bit < p {
                        ops.push(Op::Recv {
                            from: rank + bit,
                            payload: Payload::Boxes,
                        });
                    }
                }
            }
            StepKind::Broadcast { level } => {
                // Binomial spread, high stage first: rank r receives once
                // (at its lowest set bit) and forwards in every later
                // stage. The whole level buffer travels each hop.
                let words = (1u64 << (3 * level)) * k;
                let stages = p.trailing_zeros();
                for s in (0..stages).rev() {
                    let bit = 1usize << s;
                    let span = bit << 1;
                    if rank.is_multiple_of(span) {
                        ops.push(Op::Send {
                            to: rank + bit,
                            words: Volume::Exact(words),
                            payload: Payload::Boxes,
                        });
                    } else if rank.is_multiple_of(bit) {
                        ops.push(Op::Recv {
                            from: rank - bit,
                            payload: Payload::Boxes,
                        });
                    }
                }
            }
            StepKind::BoxHalo { level, axis } => {
                let n = 1usize << level;
                let lay = BlockLayout::new([n; 3], *grid);
                let my = grid.coords(rank);
                // Sends: serve every rank along this axis whose plan
                // names me, in ascending axis-coordinate order.
                for other in 0..grid.dims[axis] {
                    if other == my[axis] {
                        continue;
                    }
                    let mut dst_c = my;
                    dst_c[axis] = other;
                    let dst = grid.rank(dst_c);
                    let dplan = halo_axis_plan(&lay, dst_c, axis, prog.ghost, n);
                    if let Some(cells) = dplan.get(&rank) {
                        ops.push(Op::Send {
                            to: dst,
                            words: Volume::Exact(cells.len() as u64 * k),
                            payload: Payload::Boxes,
                        });
                    }
                }
                // Receives, in plan (ascending source-rank) order; the
                // wrap-aliased self entry is local motion, not a message.
                let plan = halo_axis_plan(&lay, my, axis, prog.ghost, n);
                for src in plan.keys() {
                    if *src != rank {
                        ops.push(Op::Recv {
                            from: *src,
                            payload: Payload::Boxes,
                        });
                    }
                }
            }
            StepKind::ParticleHalo { axis } => {
                let n = 1usize << prog.depth;
                let lay = BlockLayout::new([n; 3], *grid);
                let my = grid.coords(rank);
                for other in 0..grid.dims[axis] {
                    if other == my[axis] {
                        continue;
                    }
                    let mut dst_c = my;
                    dst_c[axis] = other;
                    let dst = grid.rank(dst_c);
                    let dplan = particle_axis_plan(&lay, dst_c, axis, prog.sep_d, n);
                    if dplan.contains_key(&rank) {
                        ops.push(Op::Send {
                            to: dst,
                            words: Volume::Dynamic,
                            payload: Payload::Particles,
                        });
                    }
                }
                let plan = particle_axis_plan(&lay, my, axis, prog.sep_d, n);
                for src in plan.keys() {
                    ops.push(Op::Recv {
                        from: *src,
                        payload: Payload::Particles,
                    });
                }
            }
            StepKind::SlotShift { axis, delta, .. } => {
                if let Some(ps) = prog.partition.as_ref() {
                    // Partitioned hop: route by ownership, not by ring.
                    exchange_ops(
                        ps.slot_route_at(axis, delta),
                        rank,
                        None,
                        Payload::Slots,
                        &mut ops,
                    );
                } else if grid.dims[axis] > 1 {
                    // An axis spanned by one VU wraps onto itself: pure
                    // local motion, no message (the collective still burns
                    // its tag).
                    let (dst, src) = ring_partners(grid, rank, axis, delta);
                    ops.push(Op::Send {
                        to: dst,
                        words: Volume::Dynamic,
                        payload: Payload::Slots,
                    });
                    ops.push(Op::Recv {
                        from: src,
                        payload: Payload::Slots,
                    });
                }
            }
            StepKind::ChildFlush { level } => {
                let ps = part_sched(prog);
                exchange_ops(
                    ps.child_flush_at(level),
                    rank,
                    Some(k),
                    Payload::Boxes,
                    &mut ops,
                );
            }
            StepKind::ParentFetch { level } => {
                let ps = part_sched(prog);
                exchange_ops(
                    ps.parent_fetch_at(level),
                    rank,
                    Some(k),
                    Payload::Boxes,
                    &mut ops,
                );
            }
            StepKind::PartBoxHalo { level } => {
                let ps = part_sched(prog);
                exchange_ops(
                    ps.box_halo_at(level),
                    rank,
                    Some(k),
                    Payload::Boxes,
                    &mut ops,
                );
            }
            StepKind::PartParticleHalo => {
                let ps = part_sched(prog);
                exchange_ops(&ps.particle_halo, rank, None, Payload::Particles, &mut ops);
            }
        }
        ops
    }
}

fn part_sched(prog: &CommProgram) -> &PartitionSchedule {
    prog.partition
        .as_ref()
        .expect("partitioned step kinds only appear in partitioned programs")
}

/// Lower one rank's side of an [`Exchange`]: all sends (destinations
/// ascending, `Exact` when every cell row carries `row_words` f64 words),
/// then all receives (sources ascending) — the order the executor's
/// exchange collectives use, deadlock-free at channel capacity 1 because
/// each ordered rank pair carries at most one message.
fn exchange_ops(
    ex: &Exchange,
    rank: usize,
    row_words: Option<u64>,
    payload: Payload,
    ops: &mut Vec<Op>,
) {
    for (dst, cells) in &ex.sends[rank] {
        ops.push(Op::Send {
            to: *dst,
            words: match row_words {
                Some(w) => Volume::Exact(cells.len() as u64 * w),
                None => Volume::Dynamic,
            },
            payload,
        });
    }
    for (src, _) in &ex.recvs[rank] {
        ops.push(Op::Recv {
            from: *src,
            payload,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vu_grid_for;

    #[test]
    fn tags_are_contiguous_and_phase_ordered() {
        for p in [1usize, 2, 8, 128] {
            for depth in 2..=4u32 {
                let prog = CommProgram::build(vu_grid_for(p), depth, 6, 2, false);
                let tags: Vec<u64> = prog.steps().map(|(_, s)| s.tag).collect();
                let expect: Vec<u64> = (0..tags.len() as u64).collect();
                assert_eq!(tags, expect, "p={p} depth={depth}");
            }
        }
    }

    #[test]
    fn table4_message_totals_match_pr2() {
        // The exact per-phase logical message counts PR 2 asserted at
        // runtime on the Table-4 configuration, now derived statically.
        let prog = CommProgram::build(VuGrid::new([8, 4, 4]), 4, 6, 2, false);
        let msgs: Vec<u64> = prog
            .phases
            .iter()
            .map(|ph| ph.iter().map(|s| s.logical_msgs).sum())
            .collect();
        assert_eq!(msgs, [1, 0, 127, 19, 0, 65]);
    }

    #[test]
    fn forces_program_swaps_near_phase() {
        let pot = CommProgram::build(vu_grid_for(8), 3, 6, 2, false);
        let frc = CommProgram::build(vu_grid_for(8), 3, 6, 2, true);
        assert!(pot.phases[5].len() > 60);
        assert_eq!(frc.phases[5].len(), 3);
        assert_eq!(pot.phases[..5], frc.phases[..5]);
    }

    #[test]
    fn ring_partners_invert() {
        let grid = VuGrid::new([4, 2, 1]);
        for rank in 0..grid.len() {
            for axis in 0..3 {
                for delta in [-1, 1] {
                    let (dst, _) = ring_partners(&grid, rank, axis, delta);
                    let (_, src) = ring_partners(&grid, dst, axis, delta);
                    assert_eq!(src, rank);
                }
            }
        }
    }

    #[test]
    fn partitioned_tags_are_contiguous_and_phase_ordered() {
        for p in [1usize, 2, 8] {
            for depth in 2..=4u32 {
                for with_fields in [false, true] {
                    let prog = CommProgram::build_partitioned(
                        vu_grid_for(p),
                        depth,
                        6,
                        2,
                        with_fields,
                        Partition::uniform(depth, p),
                    );
                    let tags: Vec<u64> = prog.steps().map(|(_, s)| s.tag).collect();
                    let expect: Vec<u64> = (0..tags.len() as u64).collect();
                    assert_eq!(tags, expect, "p={p} depth={depth} forces={with_fields}");
                    assert!(prog.partition.is_some());
                }
            }
        }
    }

    #[test]
    fn partitioned_near_itinerary_mirrors_uniform() {
        // The travelling-slot sweep visits the same (axis, delta, visit)
        // sequence in both builds — the itinerary is pure geometry; only
        // the routing of each hop differs.
        let uni = CommProgram::build(vu_grid_for(8), 3, 6, 2, false);
        let par = CommProgram::build_partitioned(
            vu_grid_for(8),
            3,
            6,
            2,
            false,
            Partition::uniform(3, 8),
        );
        let kinds = |prog: &CommProgram| -> Vec<StepKind> {
            prog.phases[5].iter().map(|s| s.kind).collect()
        };
        assert_eq!(kinds(&uni), kinds(&par));
    }

    #[test]
    fn single_worker_partitioned_plans_are_silent() {
        // p = 1 owns everything: every exchange is empty and every step's
        // logical message count is zero, like the uniform p = 1 program.
        for with_fields in [false, true] {
            let prog = CommProgram::build_partitioned(
                vu_grid_for(1),
                3,
                6,
                2,
                with_fields,
                Partition::uniform(3, 1),
            );
            for (_, s) in prog.steps() {
                assert_eq!(s.logical_msgs, 0, "step {s:?}");
            }
            let ps = prog.partition.as_ref().unwrap();
            assert!(ps.particle_halo.is_empty() || !with_fields);
            for (_, ex) in ps
                .child_flush
                .iter()
                .chain(&ps.parent_fetch)
                .chain(&ps.box_halo)
            {
                assert!(ex.is_empty());
            }
            for ex in ps.slot_routes.values() {
                assert!(ex.is_empty());
            }
        }
    }
}
