//! Socket transports and the `FMMW` wire codec.
//!
//! A fabric message is one length-prefixed frame:
//!
//! ```text
//! u32 LE  payload length (bytes; magic..data, excluding this prefix)
//! [4]     magic "FMMW"
//! u32 LE  sending rank
//! u64 LE  collective tag
//! f64 LE  payload words (length implied by the frame length)
//! ```
//!
//! f64s travel as their exact little-endian bit patterns — the same
//! discipline as `fmm_serve`'s `FMM1` protocol — so a potential computed
//! across OS processes is bitwise the one computed in-process. Frames are
//! capped at [`MAX_FRAME`] and the cap is checked *before* the payload
//! allocation, so a corrupt or hostile length field cannot balloon memory.
//!
//! [`SocketTransport`] runs the codec over any stream that can be split
//! into a read and a write half ([`MeshStream`]: UNIX-domain or TCP
//! sockets). Sends are handed to a per-peer writer thread, which keeps
//! the fabric's "send never blocks" contract even when a large halo frame
//! meets a full kernel socket buffer — the receiving rank may be deep in
//! a compute phase, and two ranks blocked in `write` at each other would
//! deadlock a schedule that is provably deadlock-free under non-blocking
//! sends.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::mpsc::{self, Sender};
use std::thread::JoinHandle;

use fmm_core::Fabric;

use crate::fabric::{Transport, RECV_TIMEOUT};

/// Frame magic, first bytes of every fabric message.
pub const MAGIC: [u8; 4] = *b"FMMW";

/// Header bytes after the length prefix: magic + from + tag.
pub const HEADER: usize = 4 + 4 + 8;

/// Refuse frames beyond this (256 MiB) — far above any real halo
/// exchange, far below an allocation amplification attack.
pub const MAX_FRAME: usize = 256 << 20;

/// Encode one fabric message as a full frame (length prefix included).
pub fn encode_msg(from: u32, tag: u64, data: &[f64]) -> Vec<u8> {
    let len = HEADER + 8 * data.len();
    assert!(len <= MAX_FRAME, "fabric message exceeds MAX_FRAME");
    let mut buf = Vec::with_capacity(4 + len);
    buf.extend_from_slice(&(len as u32).to_le_bytes());
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&from.to_le_bytes());
    buf.extend_from_slice(&tag.to_le_bytes());
    for &w in data {
        buf.extend_from_slice(&w.to_le_bytes());
    }
    buf
}

/// Decode the payload of one frame (everything after the length prefix).
/// Rejects bad magic, short frames, and ragged (non-multiple-of-8) data.
pub fn decode_payload(payload: &[u8]) -> Result<(u32, u64, Vec<f64>), String> {
    if payload.len() < HEADER {
        return Err(format!(
            "frame too short: {} bytes < {HEADER}-byte header",
            payload.len()
        ));
    }
    if payload[..4] != MAGIC {
        return Err(format!("bad magic {:02x?}", &payload[..4]));
    }
    let from = u32::from_le_bytes(payload[4..8].try_into().unwrap());
    let tag = u64::from_le_bytes(payload[8..16].try_into().unwrap());
    let body = &payload[HEADER..];
    if !body.len().is_multiple_of(8) {
        return Err(format!("ragged payload: {} bytes", body.len()));
    }
    let data = body
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    Ok((from, tag, data))
}

/// Decode a full frame as produced by [`encode_msg`] (length prefix
/// first). Rejects truncation at any byte and length/size mismatches.
pub fn decode_msg(frame: &[u8]) -> Result<(u32, u64, Vec<f64>), String> {
    if frame.len() < 4 {
        return Err(format!(
            "frame too short for length prefix: {}",
            frame.len()
        ));
    }
    let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME {
        return Err(format!("frame length {len} exceeds cap {MAX_FRAME}"));
    }
    if frame.len() != 4 + len {
        return Err(format!(
            "frame length mismatch: prefix says {len}, have {}",
            frame.len() - 4
        ));
    }
    decode_payload(&frame[4..])
}

/// Read one frame off a stream. The [`MAX_FRAME`] cap is enforced before
/// the payload buffer is allocated.
pub fn read_msg<R: Read>(r: &mut R) -> io::Result<(u32, u64, Vec<f64>)> {
    let mut lenb = [0u8; 4];
    r.read_exact(&mut lenb)?;
    let len = u32::from_le_bytes(lenb) as usize;
    if !(HEADER..=MAX_FRAME).contains(&len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("fabric frame length {len} out of range"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    decode_payload(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// A duplex byte stream a [`SocketTransport`] can split into a reading
/// half and an independently-owned writing half.
pub trait MeshStream: Read + Write + Send + Sized + 'static {
    fn clone_stream(&self) -> io::Result<Self>;
    fn read_timeout(&self, d: std::time::Duration) -> io::Result<()>;
    const KIND: &'static str;
}

impl MeshStream for TcpStream {
    fn clone_stream(&self) -> io::Result<Self> {
        self.try_clone()
    }
    fn read_timeout(&self, d: std::time::Duration) -> io::Result<()> {
        self.set_read_timeout(Some(d))
    }
    const KIND: &'static str = "tcp";
}

#[cfg(unix)]
impl MeshStream for UnixStream {
    fn clone_stream(&self) -> io::Result<Self> {
        self.try_clone()
    }
    fn read_timeout(&self, d: std::time::Duration) -> io::Result<()> {
        self.set_read_timeout(Some(d))
    }
    const KIND: &'static str = "unix";
}

/// [`Transport`] over a mesh of framed streams, one per peer rank
/// (`None` at this rank's own slot). Writes go through per-peer writer
/// threads so `send` never blocks; reads come off buffered per-peer
/// streams with the same `(from, tag)` parking discipline as the channel
/// fabric.
pub struct SocketTransport {
    rank: usize,
    kind: &'static str,
    writers: Vec<Option<Sender<Vec<u8>>>>,
    writer_joins: Vec<JoinHandle<()>>,
    readers: Vec<Option<BufReader<Box<dyn ReadStream>>>>,
    /// Early arrivals, keyed by (from, tag).
    // det: taken by key only, never iterated.
    pending: HashMap<(usize, u64), VecDeque<Vec<f64>>>,
}

/// Object-safe read half (the concrete stream type is erased so
/// `SocketTransport` itself stays non-generic and boxable).
trait ReadStream: Read + Send {}
impl<S: Read + Send> ReadStream for S {}

impl SocketTransport {
    /// Wire rank `rank` over `streams[s]` to each peer `s`
    /// (`streams[rank]` must be `None`). Spawns one writer thread per
    /// peer and applies the fabric receive timeout to each read half.
    pub fn new<S: MeshStream>(rank: usize, streams: Vec<Option<S>>) -> io::Result<Self> {
        let mut writers = Vec::with_capacity(streams.len());
        let mut writer_joins = Vec::new();
        let mut readers: Vec<Option<BufReader<Box<dyn ReadStream>>>> =
            Vec::with_capacity(streams.len());
        for (peer, s) in streams.into_iter().enumerate() {
            let Some(s) = s else {
                assert_eq!(peer, rank, "only this rank's own slot may be unwired");
                writers.push(None);
                readers.push(None);
                continue;
            };
            s.read_timeout(RECV_TIMEOUT)?;
            let mut wh = s.clone_stream()?;
            let (tx, rx) = mpsc::channel::<Vec<u8>>();
            writer_joins.push(std::thread::spawn(move || {
                // Drain until every sender clone is dropped, then flush:
                // frames queued at teardown still reach the peer.
                for frame in rx {
                    wh.write_all(&frame).expect("fabric write failed");
                }
                wh.flush().expect("fabric flush failed");
            }));
            writers.push(Some(tx));
            readers.push(Some(BufReader::new(Box::new(s) as Box<dyn ReadStream>)));
        }
        Ok(SocketTransport {
            rank,
            kind: S::KIND,
            writers,
            writer_joins,
            readers,
            pending: HashMap::new(),
        })
    }
}

impl Transport for SocketTransport {
    fn send(&mut self, to: usize, tag: u64, data: Vec<f64>) {
        let frame = encode_msg(self.rank as u32, tag, &data);
        self.writers[to]
            .as_ref()
            .expect("send to unwired peer")
            .send(frame)
            .expect("fabric peer hung up");
    }

    fn recv(&mut self, from: usize, tag: u64) -> Vec<f64> {
        let key = (from, tag);
        if let Some(q) = self.pending.get_mut(&key) {
            if let Some(data) = q.pop_front() {
                if q.is_empty() {
                    self.pending.remove(&key);
                }
                return data;
            }
        }
        let reader = self.readers[from].as_mut().expect("recv from unwired peer");
        loop {
            match read_msg(reader) {
                Ok((src, t, data)) => {
                    assert_eq!(
                        src as usize, from,
                        "frame on rank {}'s link to {from} claims source {src}",
                        self.rank
                    );
                    if t == tag {
                        return data;
                    }
                    self.pending.entry((from, t)).or_default().push_back(data);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    panic!(
                        "spmd rank {} timed out waiting for (from={from}, tag={tag})",
                        self.rank
                    );
                }
                Err(e) => panic!(
                    "spmd rank {}: fabric read from {from} failed: {e}",
                    self.rank
                ),
            }
        }
    }

    fn kind(&self) -> &'static str {
        self.kind
    }

    fn close(&mut self) {
        for w in self.writers.iter_mut() {
            *w = None; // drop the sender: writer drains, flushes, exits
        }
        for j in self.writer_joins.drain(..) {
            let _ = j.join();
        }
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        self.close();
    }
}

/// A rendezvous or mesh endpoint address, as written on `--fabric` CLI
/// knobs: `unix:/path/to.sock` or `tcp:host:port`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricAddr {
    Unix(PathBuf),
    Tcp(String),
}

impl FabricAddr {
    pub fn parse(s: &str) -> Result<FabricAddr, String> {
        match s.split_once(':') {
            Some(("unix", path)) if !path.is_empty() => Ok(FabricAddr::Unix(path.into())),
            Some(("tcp", addr)) if addr.contains(':') => Ok(FabricAddr::Tcp(addr.into())),
            _ => Err(format!(
                "bad fabric address {s:?}: expected unix:/path or tcp:host:port"
            )),
        }
    }

    pub fn fabric(&self) -> Fabric {
        match self {
            FabricAddr::Unix(_) => Fabric::Unix,
            FabricAddr::Tcp(_) => Fabric::Tcp,
        }
    }
}

impl std::fmt::Display for FabricAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricAddr::Unix(p) => write!(f, "unix:{}", p.display()),
            FabricAddr::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// Full in-process mesh of UNIX socket pairs: `mesh[r][s]` is rank `r`'s
/// stream to rank `s`. Used when a single-process run selects the
/// [`Fabric::Unix`] wire — same socket type and framing as the
/// multi-process path, no filesystem paths needed.
#[cfg(unix)]
#[allow(clippy::needless_range_loop)] // mesh[i][j]/mesh[j][i] cross-assignment
pub fn unix_pair_mesh(p: usize) -> io::Result<Vec<Vec<Option<UnixStream>>>> {
    let mut mesh: Vec<Vec<Option<UnixStream>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    for i in 0..p {
        for j in i + 1..p {
            let (a, b) = UnixStream::pair()?;
            mesh[i][j] = Some(a);
            mesh[j][i] = Some(b);
        }
    }
    Ok(mesh)
}

/// Full in-process mesh of loopback TCP streams (ephemeral ports).
pub fn tcp_loopback_mesh(p: usize) -> io::Result<Vec<Vec<Option<TcpStream>>>> {
    let mut mesh: Vec<Vec<Option<TcpStream>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    let listeners: Vec<TcpListener> = (0..p)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<io::Result<_>>()?;
    for j in 0..p {
        let addr = listeners[j].local_addr()?;
        for i in 0..j {
            let mut out = TcpStream::connect(addr)?;
            out.write_all(&(i as u32).to_le_bytes())?;
            let (mut inc, _) = listeners[j].accept()?;
            let mut hdr = [0u8; 4];
            inc.read_exact(&mut hdr)?;
            let from = u32::from_le_bytes(hdr) as usize;
            mesh[from][j] = Some(out);
            mesh[j][from] = Some(inc);
        }
    }
    Ok(mesh)
}

/// Establish this rank's row of a cross-process mesh: connect to every
/// lower rank (identifying ourselves with a 4-byte rank header), accept
/// from every higher rank. Every rank's listener is bound before any
/// address table is published (the rendezvous guarantees it), so
/// connections can only land in a bound listener's backlog.
pub fn connect_mesh<S: MeshStream>(
    rank: usize,
    p: usize,
    mut connect: impl FnMut(usize) -> io::Result<S>,
    mut accept: impl FnMut() -> io::Result<S>,
) -> io::Result<Vec<Option<S>>> {
    let mut row: Vec<Option<S>> = (0..p).map(|_| None).collect();
    for (peer, slot) in row.iter_mut().enumerate().take(rank) {
        let mut s = connect(peer)?;
        s.write_all(&(rank as u32).to_le_bytes())?;
        *slot = Some(s);
    }
    for _ in rank + 1..p {
        let mut s = accept()?;
        let mut hdr = [0u8; 4];
        s.read_exact(&mut hdr)?;
        let from = u32::from_le_bytes(hdr) as usize;
        if from <= rank || from >= p || row[from].is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("mesh handshake: unexpected peer rank {from} at rank {rank}"),
            ));
        }
        row[from] = Some(s);
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips_bit_patterns() {
        let data = [
            0.0,
            -0.0,
            1.5,
            f64::INFINITY,
            f64::from_bits(0x7ff8_dead_beef_0001),
        ];
        let frame = encode_msg(3, 42, &data);
        let (from, tag, out) = decode_msg(&frame).unwrap();
        assert_eq!((from, tag), (3, 42));
        assert_eq!(out.len(), data.len());
        for (a, b) in data.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn codec_rejects_truncation_everywhere() {
        let frame = encode_msg(1, 7, &[1.0, 2.0, 3.0]);
        for cut in 0..frame.len() {
            assert!(decode_msg(&frame[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn read_msg_caps_hostile_lengths_before_allocating() {
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&(u32::MAX).to_le_bytes());
        hostile.extend_from_slice(&[0u8; 64]);
        let err = read_msg(&mut hostile.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn fabric_addr_parses_both_ways() {
        let u = FabricAddr::parse("unix:/tmp/fmm.sock").unwrap();
        assert_eq!(u.fabric(), Fabric::Unix);
        assert_eq!(u.to_string(), "unix:/tmp/fmm.sock");
        let t = FabricAddr::parse("tcp:127.0.0.1:9001").unwrap();
        assert_eq!(t.fabric(), Fabric::Tcp);
        assert_eq!(t.to_string(), "tcp:127.0.0.1:9001");
        assert!(FabricAddr::parse("carrier-pigeon:coop").is_err());
        assert!(FabricAddr::parse("tcp:nohost").is_err());
    }

    #[cfg(unix)]
    #[test]
    fn socket_transport_parks_out_of_order_tags() {
        let mesh = unix_pair_mesh(2).unwrap();
        let mut rows = mesh.into_iter();
        let t0 = SocketTransport::new(0, rows.next().unwrap()).unwrap();
        let t1 = SocketTransport::new(1, rows.next().unwrap()).unwrap();
        let h = std::thread::spawn(move || {
            let mut t = t1;
            t.send(0, 0, vec![10.0]);
            t.send(0, 1, vec![20.0]);
            let got = t.recv(0, 0);
            t.close();
            got
        });
        let mut t = t0;
        let b = t.recv(1, 1); // arrives second, requested first
        let a = t.recv(1, 0);
        t.send(1, 0, vec![a[0] + b[0]]);
        t.close();
        assert_eq!((a[0], b[0]), (10.0, 20.0));
        assert_eq!(h.join().unwrap(), vec![30.0]);
    }
}
