//! The per-worker SPMD program: the five FMM phases of the paper's §2.2,
//! executed over block-distributed boxes with explicit communication only.
//!
//! Bitwise identity with the serial backend is a hard invariant, kept by
//! running the *same* per-box arithmetic in the same order:
//! * P2O/eval run `fmm_core::driver::{p2o, eval_local}` over the worker's
//!   own binning (other boxes are empty and skipped);
//! * T1/T2/T3 run one-row `gemm_acc` calls per owned box — rows of a GEMM
//!   are independent, so one-row products equal the corresponding rows of
//!   the serial panel products bit for bit;
//! * a box whose T2 source is out of domain still multiplies a zero row
//!   whenever the serial slab ran the panel GEMM (the `any` predicate
//!   below reproduces the serial slab test), because `0.0 + (−0.0)`
//!   rounds differently from skipping the addition;
//! * the near field runs the identical travelling-accumulator sweep with
//!   the slots physically shifted between workers.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use fmm_core::driver::{eval_local, p2o, Fmm};
use fmm_core::field::FieldHierarchy;
use fmm_core::near::{
    near_field_forces_box, pair_exchange_with, self_box_potential, NearFieldStats, PAIR_FLOPS,
    PAIR_FORCE_FLOPS,
};
use fmm_core::particles::BinnedParticles;
use fmm_core::stats::Counters;
use fmm_core::translations::TranslationSet;
use fmm_core::traversal::{downward_level, upward_level, Aggregation};
use fmm_core::TraversalPlan;
use fmm_linalg::{gemm_acc_with, gemm_flops};
use fmm_machine::{subgrid_extent, BlockLayout};
use fmm_tree::morton::morton_decode;
use fmm_tree::partition::morton_to_rowmajor;
use fmm_tree::{near_field_offsets, BoxCoord, Domain, Hierarchy};

use crate::collectives::{
    all_to_allv, broadcast_from_root, exchange_rows, gather_level_to_root, halo_exchange_axis,
    particle_exchange, particle_halo_axis, shift_slots, shift_slots_part, CellParticles, Slot,
};
use crate::fabric::WorkerCtx;
use crate::schedule::{cell_index, CommProgram, Step, StepKind};

/// Read-only inputs shared by all workers.
pub(crate) struct Shared<'a> {
    pub fmm: &'a Fmm,
    pub positions: &'a [[f64; 3]],
    pub charges: &'a [f64],
    pub domain: Domain,
    pub depth: u32,
    pub with_fields: bool,
    pub plan: &'a TraversalPlan,
    /// The communication schedule — the same [`CommProgram`] the static
    /// analyzer in `fmm-verify` checks. Every collective call below is
    /// cued by one of its steps; no schedule decision is made here.
    pub program: &'a CommProgram,
}

/// A worker's read cursor over one phase's steps. Each collective the
/// worker runs consumes the matching step; the `debug_assert` on the tag
/// pins the fabric's tag counter to the program's static tag sequence, so
/// an executor/schedule divergence fails loudly in debug builds.
struct Cursor<'a> {
    steps: &'a [Step],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn new(steps: &'a [Step]) -> Self {
        Cursor { steps, i: 0 }
    }

    /// Consume the next step, which must exist and satisfy `want`.
    fn next(&mut self, ctx: &WorkerCtx, want: impl Fn(&StepKind) -> bool) -> &'a Step {
        let st = &self.steps[self.i];
        self.i += 1;
        debug_assert!(want(&st.kind), "schedule mismatch at step {st:?}");
        debug_assert_eq!(ctx.tags.peek(), st.tag, "tag drift at step {st:?}");
        st
    }

    /// Consume the next step iff it satisfies `want` (schedule-driven
    /// branches: the program says whether the collective runs).
    fn next_if(&mut self, ctx: &WorkerCtx, want: impl Fn(&StepKind) -> bool) -> Option<&'a Step> {
        let st = self.steps.get(self.i)?;
        if !want(&st.kind) {
            return None;
        }
        self.i += 1;
        debug_assert_eq!(ctx.tags.peek(), st.tag, "tag drift at step {st:?}");
        Some(st)
    }

    /// Every step of the phase must have been consumed.
    fn finish(self) {
        debug_assert_eq!(self.i, self.steps.len(), "unconsumed schedule steps");
    }
}

/// One worker's contribution to the evaluation.
pub(crate) struct WorkerOut {
    pub counters: Counters,
    /// Original input index of each locally-sorted particle.
    pub orig: Vec<usize>,
    /// Combined far + near potential per local particle.
    pub pot: Vec<f64>,
    pub fields: Option<Vec<[f64; 3]>>,
    pub near_stats: NearFieldStats,
    pub p2o_flops: u64,
    pub eval_flops: u64,
    /// GEMM flops this worker performed in the upward/downward traversal
    /// (T1 + T2 + T3) — the per-worker load-balance signal the report's
    /// `worker_flops` aggregates.
    pub traversal_flops: u64,
    /// Wall time of [sort, p2o, upward, downward, eval, near].
    pub times: [Duration; 6],
}

/// Does the serial slab of level `l` have any in-domain T2 source at this
/// (octant parity `o`, offset `off`) along one of x/y? The serial panel
/// spans every parent of the plane, so the question is whether any parent
/// coordinate `q ∈ [0, 2^(l−1))` puts `2q + o + off` inside `[0, 2^l)`.
#[inline]
fn axis_has_source(l: u32, o: i64, off: i64) -> bool {
    let n = 1i64 << l;
    let np = n >> 1;
    let base = o + off;
    let qmin = 0i64.max((1 - base).div_euclid(2));
    let qmax = (np - 1).min((n - 1 - base).div_euclid(2));
    qmin <= qmax
}

/// T2 + T3 for this worker's boxes of a distributed level `l`, bitwise
/// identical to the serial `downward_level`: one-row GEMMs are rows of
/// the serial panel products, and each box writes only its own row, so
/// any enumeration of the owned boxes gives the serial bits. Returns the
/// GEMM flops performed (zero-row multiplies included, as the serial
/// closed form counts them).
#[allow(clippy::too_many_arguments)]
fn downward_owned(
    ctx: &mut WorkerCtx,
    boxes: impl Iterator<Item = BoxCoord>,
    local_parent: &[f64],
    local_cur: &mut [f64],
    far_cur: &[f64],
    ts: &TranslationSet,
    plan: &TraversalPlan,
    l: u32,
    k: usize,
) -> u64 {
    let n_axis = 1i64 << l;
    let apply_t3 = l >= 3;
    // Serial zeroes the whole level, then *adds* each box's accumulator
    // into it; replicate both steps so −0.0 sums keep their sign behavior.
    for v in local_cur.iter_mut() {
        *v = 0.0;
    }
    let zero_row = vec![0.0; k];
    let mut acc = vec![0.0; k];
    let mut flops = 0u64;
    for c in boxes {
        let oct = c.octant();
        let op = &plan.octants[oct];
        for v in acc.iter_mut() {
            *v = 0.0;
        }
        if apply_t3 {
            let pi = c.parent().expect("l >= 3").index();
            gemm_acc_with(
                plan.kernel,
                1,
                k,
                k,
                &local_parent[pi * k..(pi + 1) * k],
                ts.t3t[oct].as_slice(),
                &mut acc,
            );
        }
        let o = [(c.x & 1) as i64, (c.y & 1) as i64, (c.z & 1) as i64];
        let sz_base = 2 * ((c.z >> 1) as i64) + o[2];
        for (j, &off) in op.offsets.iter().enumerate() {
            let sz = sz_base + off[2] as i64;
            let any = (0..n_axis).contains(&sz)
                && axis_has_source(l, o[0], off[0] as i64)
                && axis_has_source(l, o[1], off[1] as i64);
            if !any {
                continue;
            }
            let m = ts.t2t[op.t2_idx[j] as usize]
                .as_ref()
                .expect("interactive offset has a T2 matrix");
            let s = [c.x as i64 + off[0] as i64, c.y as i64 + off[1] as i64, sz];
            if s.iter().all(|&v| v >= 0 && v < n_axis) {
                let si = ((s[2] * n_axis + s[1]) * n_axis + s[0]) as usize;
                gemm_acc_with(
                    plan.kernel,
                    1,
                    k,
                    k,
                    &far_cur[si * k..(si + 1) * k],
                    m.as_slice(),
                    &mut acc,
                );
            } else {
                // The slab GEMM ran with this row zeroed; do the same.
                gemm_acc_with(plan.kernel, 1, k, k, &zero_row, m.as_slice(), &mut acc);
            }
        }
        let ci = c.index();
        for (d, s) in local_cur[ci * k..(ci + 1) * k].iter_mut().zip(&acc) {
            *d += *s;
        }
        ctx.counters
            .add_local_words((op.offsets.len() as u64 + 2) * k as u64);
        flops += (op.offsets.len() as u64 + apply_t3 as u64) * gemm_flops(1, k, k);
    }
    flops
}

pub(crate) fn worker_main(mut ctx: WorkerCtx, sh: &Shared<'_>) -> WorkerOut {
    let rank = ctx.rank;
    let p = ctx.p();
    let depth = sh.depth;
    let n_axis = 1usize << depth;
    let leaf = BlockLayout::new([n_axis; 3], ctx.grid);
    let cfg = sh.fmm.config();
    let k = sh.fmm.k();
    let ts = sh.fmm.translations();
    let mut times = [Duration::ZERO; 6];
    let mut tflops = 0u64;

    // ---- Phase 0: sort. Block-distributed input particles are routed to
    // the worker owning their leaf box (the paper's coordinate sort).
    let t0 = Instant::now();
    let n = sh.positions.len();
    let (i0, i1) = (rank * n / p, (rank + 1) * n / p);
    let mut outgoing: Vec<Vec<f64>> = vec![Vec::new(); p];
    for i in i0..i1 {
        let b = sh.domain.locate(sh.positions[i], depth);
        let w = leaf.vu_of([b.x as usize, b.y as usize, b.z as usize]);
        outgoing[w].extend_from_slice(&[
            sh.positions[i][0],
            sh.positions[i][1],
            sh.positions[i][2],
            sh.charges[i],
            i as f64,
        ]);
    }
    let mut cur = Cursor::new(&sh.program.phases[0]);
    let st = cur.next(&ctx, |k| matches!(k, StepKind::Router));
    // The model prices the whole redistribution as one router send
    // (zero at p = 1, where the router moves nothing).
    ctx.count_op(st.logical_msgs);
    let mine = all_to_allv(&mut ctx, outgoing);
    cur.finish();
    let m_loc = mine.len() / 5;
    let mut pos = Vec::with_capacity(m_loc);
    let mut q = Vec::with_capacity(m_loc);
    let mut orig = Vec::with_capacity(m_loc);
    for ch in mine.chunks_exact(5) {
        pos.push([ch[0], ch[1], ch[2]]);
        q.push(ch[3]);
        orig.push(ch[4] as usize);
    }
    let bp = BinnedParticles::build(&pos, &q, sh.domain, depth);
    let orig_sorted = bp.binning.gather(&orig);
    times[0] = t0.elapsed();

    // ---- Phase 1: P2O over owned leaf boxes (all other boxes are empty
    // in this worker's binning and skipped).
    ctx.set_phase(1);
    let t0 = Instant::now();
    let mut fh = FieldHierarchy::new(Hierarchy::new(depth), k);
    let leaf_side = sh.domain.box_side(depth);
    let a_leaf = cfg.outer_ratio * leaf_side;
    let p2o_flops = p2o(
        &bp,
        sh.fmm.rule(),
        a_leaf,
        depth,
        false,
        &mut fh.far[depth as usize],
    );
    times[1] = t0.elapsed();

    // ---- Phase 2: upward pass. Distributed levels combine per owned
    // parent (children are co-located with their parent under the block
    // layout); once a level no longer fills the VU grid, its children are
    // combined to rank 0 (Multigrid embedding) and the remaining levels
    // run there serially.
    ctx.set_phase(2);
    let t0 = Instant::now();
    let mut cur = Cursor::new(&sh.program.phases[2]);
    if depth >= 3 {
        for l in (1..depth).rev() {
            if subgrid_extent(l, &ctx.grid).is_some() {
                let lay = BlockLayout::new([1usize << l; 3], ctx.grid);
                let (lo, hi) = fh.far.split_at_mut(l as usize + 1);
                let parents = &mut lo[l as usize];
                let children = &hi[0];
                for li in 0..lay.boxes_per_vu() {
                    let g = lay.global_of(rank, li);
                    let pb = BoxCoord {
                        level: l,
                        x: g[0] as u32,
                        y: g[1] as u32,
                        z: g[2] as u32,
                    };
                    let out = {
                        let pi = pb.index();
                        &mut parents[pi * k..(pi + 1) * k]
                    };
                    for oct in 0..8 {
                        let ci = pb.child(oct).index();
                        gemm_acc_with(
                            sh.plan.kernel,
                            1,
                            k,
                            k,
                            &children[ci * k..(ci + 1) * k],
                            ts.t1t[oct].as_slice(),
                            out,
                        );
                    }
                    ctx.counters.add_local_words(8 * k as u64);
                    tflops += gemm_flops(8, k, k);
                }
            } else {
                if cur
                    .next_if(
                        &ctx,
                        |kd| matches!(kd, StepKind::Gather { level } if *level == l + 1),
                    )
                    .is_some()
                {
                    gather_level_to_root(&mut ctx, &mut fh.far[(l + 1) as usize], l + 1, k);
                }
                if rank == 0 {
                    let fl = upward_level(&mut fh, ts, sh.plan, l, Aggregation::Gemm, false);
                    ctx.counters.add_local_words(fl.copied);
                    tflops += fl.t1;
                }
            }
        }
    }
    cur.finish();
    times[2] = t0.elapsed();

    // ---- Phase 3: downward pass. Embedded levels run on rank 0; the
    // first distributed level receives its parents' locals by broadcast;
    // each distributed level halo-exchanges the far field and then runs
    // T2 + T3 per owned box.
    ctx.set_phase(3);
    let t0 = Instant::now();
    let sep = cfg.separation;
    let mut cur = Cursor::new(&sh.program.phases[3]);
    for l in 2..=depth {
        if !sh.program.has_box_halo(l) {
            // Multigrid-embedded level: rank 0 computes it serially.
            if rank == 0 {
                let fl = downward_level(&mut fh, ts, sh.plan, false, Aggregation::Gemm, false, l);
                ctx.counters.add_local_words(fl.copied);
                tflops += fl.t2 + fl.t3;
            }
            continue;
        }
        if cur
            .next_if(
                &ctx,
                |kd| matches!(kd, StepKind::Broadcast { level } if *level == l - 1),
            )
            .is_some()
        {
            broadcast_from_root(&mut ctx, &mut fh.local[(l - 1) as usize]);
        }
        for _ in 0..3 {
            let st = cur.next(
                &ctx,
                |kd| matches!(kd, StepKind::BoxHalo { level, .. } if *level == l),
            );
            let StepKind::BoxHalo { axis, .. } = st.kind else {
                unreachable!()
            };
            ctx.count_op(st.logical_msgs);
            halo_exchange_axis(
                &mut ctx,
                &mut fh.far[l as usize],
                l,
                axis,
                sh.program.ghost,
                k,
            );
        }
        let lay = BlockLayout::new([1usize << l; 3], ctx.grid);
        let (lo, hi) = fh.local.split_at_mut(l as usize);
        tflops += downward_owned(
            &mut ctx,
            (0..lay.boxes_per_vu()).map(|li| {
                let g = lay.global_of(rank, li);
                BoxCoord {
                    level: l,
                    x: g[0] as u32,
                    y: g[1] as u32,
                    z: g[2] as u32,
                }
            }),
            &lo[(l - 1) as usize],
            &mut hi[0],
            &fh.far[l as usize],
            ts,
            sh.plan,
            l,
            k,
        );
    }
    cur.finish();
    times[3] = t0.elapsed();

    // ---- Phase 4: evaluate leaf inner approximations at owned particles.
    ctx.set_phase(4);
    let t0 = Instant::now();
    let b_leaf = cfg.inner_ratio * leaf_side;
    let mut pot = vec![0.0; bp.len()];
    let mut far_field = sh.with_fields.then(|| vec![[0.0; 3]; bp.len()]);
    let eval_flops = eval_local(
        &bp,
        sh.fmm.rule(),
        cfg.m_trunc,
        b_leaf,
        depth,
        false,
        &fh.local[depth as usize],
        &mut pot,
        far_field.as_deref_mut(),
    );
    times[4] = t0.elapsed();

    // ---- Phase 5: near field.
    ctx.set_phase(5);
    let t0 = Instant::now();
    let eps2 = cfg.softening * cfg.softening;
    let mut near_pot = vec![0.0; bp.len()];
    let mut near_field = sh.with_fields.then(|| vec![[0.0; 3]; bp.len()]);
    let mut stats = NearFieldStats::default();
    if let Some(near_f) = near_field.as_mut() {
        // Forces are target-centric: fetch true neighbor particles to
        // ghost depth d (no wrap) and run the serial per-box kernel over
        // the halo-extended binning.
        let own = |c: usize| -> Option<CellParticles> {
            let g = [c % n_axis, (c / n_axis) % n_axis, c / (n_axis * n_axis)];
            if leaf.vu_of(g) != rank {
                return None;
            }
            let r = bp.range(c);
            Some(CellParticles {
                xs: bp.x[r.clone()].to_vec(),
                ys: bp.y[r.clone()].to_vec(),
                zs: bp.z[r.clone()].to_vec(),
                qs: bp.q[r].to_vec(),
            })
        };
        let mut store: BTreeMap<usize, CellParticles> = BTreeMap::new();
        let mut cur = Cursor::new(&sh.program.phases[5]);
        for _ in 0..3 {
            let st = cur.next(&ctx, |kd| matches!(kd, StepKind::ParticleHalo { .. }));
            let StepKind::ParticleHalo { axis } = st.kind else {
                unreachable!()
            };
            ctx.count_op(st.logical_msgs);
            particle_halo_axis(&mut ctx, depth, sep.d() as usize, axis, &own, &mut store);
        }
        cur.finish();
        let mut pos2: Vec<[f64; 3]> = Vec::with_capacity(bp.len());
        let mut q2: Vec<f64> = Vec::with_capacity(bp.len());
        for i in 0..bp.len() {
            pos2.push([bp.x[i], bp.y[i], bp.z[i]]);
            q2.push(bp.q[i]);
        }
        for cell in store.values() {
            for j in 0..cell.len() {
                pos2.push([cell.xs[j], cell.ys[j], cell.zs[j]]);
                q2.push(cell.qs[j]);
            }
        }
        // Stable binning keeps each box's particles in owner order, so
        // per-box source order equals the serial global binning's.
        let bph = BinnedParticles::build(&pos2, &q2, sh.domain, depth);
        let offsets = near_field_offsets(sep);
        let mut pot_h = vec![0.0; bph.len()];
        let mut f_h = vec![[0.0; 3]; bph.len()];
        for li in 0..leaf.boxes_per_vu() {
            let g = leaf.global_of(rank, li);
            let bi = cell_index(g, n_axis);
            let rh = bph.range(bi);
            stats.pair_interactions += near_field_forces_box(
                &bph,
                bi,
                &offsets,
                eps2,
                &mut pot_h[rh.clone()],
                &mut f_h[rh],
            );
        }
        for li in 0..leaf.boxes_per_vu() {
            let g = leaf.global_of(rank, li);
            let bi = cell_index(g, n_axis);
            for (dst, src) in bp.range(bi).zip(bph.range(bi)) {
                near_pot[dst] = pot_h[src];
                near_f[dst] = f_h[src];
            }
        }
        stats.flops = stats.pair_interactions * PAIR_FORCE_FLOPS;
    } else {
        // Potentials use the symmetric travelling-accumulator sweep: each
        // owned box's particles + partial accumulator ride a slot that
        // CSHIFTs along the snake itinerary, exactly as the serial
        // emulation (and the paper's CM implementation) orders it.
        for li in 0..leaf.boxes_per_vu() {
            let g = leaf.global_of(rank, li);
            let bi = cell_index(g, n_axis);
            let r = bp.range(bi);
            if !r.is_empty() {
                stats.pair_interactions +=
                    self_box_potential(&bp, r.clone(), eps2, &mut near_pot[r]);
                stats.box_pairs += 1;
            }
        }
        let mut slots: BTreeMap<usize, Slot> = BTreeMap::new();
        for li in 0..leaf.boxes_per_vu() {
            let g = leaf.global_of(rank, li);
            let bi = cell_index(g, n_axis);
            let r = bp.range(bi);
            slots.insert(
                bi,
                Slot {
                    origin: bi,
                    cell: CellParticles {
                        xs: bp.x[r.clone()].to_vec(),
                        ys: bp.y[r.clone()].to_vec(),
                        zs: bp.z[r.clone()].to_vec(),
                        qs: bp.q[r.clone()].to_vec(),
                    },
                    acc: vec![0.0; r.len()],
                },
            );
        }
        let mut cur = Cursor::new(&sh.program.phases[5]);
        while let Some(st) = cur.next_if(&ctx, |kd| matches!(kd, StepKind::SlotShift { .. })) {
            let StepKind::SlotShift { axis, delta, visit } = st.kind else {
                unreachable!()
            };
            shift_slots(&mut ctx, &mut slots, axis, delta, &leaf, n_axis);
            ctx.count_op(st.logical_msgs);
            // Return shifts (no visit) only move the accumulators home.
            let Some(cum) = visit else { continue };
            for li in 0..leaf.boxes_per_vu() {
                let g = leaf.global_of(rank, li);
                let bi = cell_index(g, n_axis);
                let t_range = bp.range(bi);
                if t_range.is_empty() {
                    continue;
                }
                let t = BoxCoord::from_index(depth, bi);
                let Some(s) = t.offset(cum) else {
                    continue;
                };
                let slot = slots.get_mut(&bi).expect("slot coverage is total");
                debug_assert_eq!(slot.origin, s.index());
                if slot.cell.is_empty() {
                    continue;
                }
                let t_out = &mut near_pot[t_range.clone()];
                for (i, ti) in t_range.clone().enumerate() {
                    t_out[i] += pair_exchange_with(
                        sh.plan.kernel,
                        bp.x[ti],
                        bp.y[ti],
                        bp.z[ti],
                        bp.q[ti],
                        eps2,
                        &slot.cell.xs,
                        &slot.cell.ys,
                        &slot.cell.zs,
                        &slot.cell.qs,
                        &mut slot.acc,
                    );
                    stats.pair_interactions += slot.cell.len() as u64;
                }
                stats.box_pairs += 1;
            }
        }
        cur.finish();
        for li in 0..leaf.boxes_per_vu() {
            let g = leaf.global_of(rank, li);
            let bi = cell_index(g, n_axis);
            let slot = &slots[&bi];
            debug_assert_eq!(slot.origin, bi);
            for (o, a) in near_pot[bp.range(bi)].iter_mut().zip(&slot.acc) {
                *o += *a;
            }
        }
        stats.flops = stats.pair_interactions * PAIR_FLOPS;
    }
    times[5] = t0.elapsed();

    // Combine far + near exactly as the serial driver does.
    if let (Some(ff), Some(nf)) = (far_field.as_mut(), near_field.as_ref()) {
        for (a, b) in ff.iter_mut().zip(nf) {
            for d in 0..3 {
                a[d] += b[d];
            }
        }
    }
    for (f, nr) in pot.iter_mut().zip(&near_pot) {
        *f += nr;
    }

    WorkerOut {
        counters: ctx.counters,
        orig: orig_sorted,
        pot,
        fields: far_field,
        near_stats: stats,
        p2o_flops,
        eval_flops,
        traversal_flops: tflops,
        times,
    }
}

/// The cost-weighted variant of [`worker_main`]: ownership follows the
/// Morton-curve [`fmm_tree::Partition`] carried by the program's
/// [`crate::schedule::PartitionSchedule`] instead of the block layout, and
/// every collective is a precomputed [`fmm_tree::Exchange`]. The per-box
/// arithmetic is byte-for-byte the uniform path's: one-row GEMMs in octant
/// order, the identical travelling-slot itinerary, the same stable
/// rebinning — only *which worker* runs each box changes, and each box's
/// results are written solely by its owner, so outputs stay bitwise equal
/// to the serial backend.
pub(crate) fn worker_main_part(mut ctx: WorkerCtx, sh: &Shared<'_>) -> WorkerOut {
    let rank = ctx.rank;
    let p = ctx.p();
    let depth = sh.depth;
    let n_axis = 1usize << depth;
    let psched = sh
        .program
        .partition
        .as_ref()
        .expect("partitioned worker needs a partition schedule");
    let part = &psched.partition;
    let cfg = sh.fmm.config();
    let k = sh.fmm.k();
    let ts = sh.fmm.translations();
    let mut times = [Duration::ZERO; 6];
    let mut tflops = 0u64;

    // ---- Phase 0: sort. Particles are routed to the *partition* owner of
    // their leaf box; everything downstream of the router is unchanged.
    let t0 = Instant::now();
    let n = sh.positions.len();
    let (i0, i1) = (rank * n / p, (rank + 1) * n / p);
    let mut outgoing: Vec<Vec<f64>> = vec![Vec::new(); p];
    for i in i0..i1 {
        let b = sh.domain.locate(sh.positions[i], depth);
        let w = part.owner(&b);
        outgoing[w].extend_from_slice(&[
            sh.positions[i][0],
            sh.positions[i][1],
            sh.positions[i][2],
            sh.charges[i],
            i as f64,
        ]);
    }
    let mut cur = Cursor::new(&sh.program.phases[0]);
    let st = cur.next(&ctx, |k| matches!(k, StepKind::Router));
    ctx.count_op(st.logical_msgs);
    let mine = all_to_allv(&mut ctx, outgoing);
    cur.finish();
    let m_loc = mine.len() / 5;
    let mut pos = Vec::with_capacity(m_loc);
    let mut q = Vec::with_capacity(m_loc);
    let mut orig = Vec::with_capacity(m_loc);
    for ch in mine.chunks_exact(5) {
        pos.push([ch[0], ch[1], ch[2]]);
        q.push(ch[3]);
        orig.push(ch[4] as usize);
    }
    let bp = BinnedParticles::build(&pos, &q, sh.domain, depth);
    let orig_sorted = bp.binning.gather(&orig);
    times[0] = t0.elapsed();

    // ---- Phase 1: P2O over owned leaf boxes, exactly as the uniform path.
    ctx.set_phase(1);
    let t0 = Instant::now();
    let mut fh = FieldHierarchy::new(Hierarchy::new(depth), k);
    let leaf_side = sh.domain.box_side(depth);
    let a_leaf = cfg.outer_ratio * leaf_side;
    let p2o_flops = p2o(
        &bp,
        sh.fmm.rule(),
        a_leaf,
        depth,
        false,
        &mut fh.far[depth as usize],
    );
    times[1] = t0.elapsed();

    // ---- Phase 2: upward pass. No Multigrid embedding: every level down
    // to 2 is computed by the partition's owners. One child-row flush per
    // parent level brings each owned parent its eight children's rows.
    ctx.set_phase(2);
    let t0 = Instant::now();
    let mut cur = Cursor::new(&sh.program.phases[2]);
    if depth >= 3 {
        for l in (2..depth).rev() {
            let st = cur.next(
                &ctx,
                |kd| matches!(kd, StepKind::ChildFlush { level } if *level == l + 1),
            );
            ctx.count_op(st.logical_msgs);
            exchange_rows(
                &mut ctx,
                &mut fh.far[(l + 1) as usize],
                psched.child_flush_at(l + 1),
                k,
            );
            let (lo, hi) = fh.far.split_at_mut(l as usize + 1);
            let parents = &mut lo[l as usize];
            let children = &hi[0];
            for code in part.owned_at(rank, l) {
                let (x, y, z) = morton_decode(code);
                let pb = BoxCoord { level: l, x, y, z };
                let out = {
                    let pi = pb.index();
                    &mut parents[pi * k..(pi + 1) * k]
                };
                for oct in 0..8 {
                    let ci = pb.child(oct).index();
                    gemm_acc_with(
                        sh.plan.kernel,
                        1,
                        k,
                        k,
                        &children[ci * k..(ci + 1) * k],
                        ts.t1t[oct].as_slice(),
                        out,
                    );
                }
                ctx.counters.add_local_words(8 * k as u64);
                tflops += gemm_flops(8, k, k);
            }
        }
    }
    cur.finish();
    times[2] = t0.elapsed();

    // ---- Phase 3: downward pass. Per level: fetch the owned boxes'
    // parent locals (l ≥ 3), exchange the interactive-field far rows, then
    // run T2 + T3 over the owned Morton range.
    ctx.set_phase(3);
    let t0 = Instant::now();
    let sep = cfg.separation;
    let mut cur = Cursor::new(&sh.program.phases[3]);
    for l in 2..=depth {
        if l >= 3 {
            let st = cur.next(
                &ctx,
                |kd| matches!(kd, StepKind::ParentFetch { level } if *level == l),
            );
            ctx.count_op(st.logical_msgs);
            exchange_rows(
                &mut ctx,
                &mut fh.local[(l - 1) as usize],
                psched.parent_fetch_at(l),
                k,
            );
        }
        let st = cur.next(
            &ctx,
            |kd| matches!(kd, StepKind::PartBoxHalo { level } if *level == l),
        );
        ctx.count_op(st.logical_msgs);
        exchange_rows(&mut ctx, &mut fh.far[l as usize], psched.box_halo_at(l), k);
        let (lo, hi) = fh.local.split_at_mut(l as usize);
        tflops += downward_owned(
            &mut ctx,
            part.owned_at(rank, l).map(|code| {
                let (x, y, z) = morton_decode(code);
                BoxCoord { level: l, x, y, z }
            }),
            &lo[(l - 1) as usize],
            &mut hi[0],
            &fh.far[l as usize],
            ts,
            sh.plan,
            l,
            k,
        );
    }
    cur.finish();
    times[3] = t0.elapsed();

    // ---- Phase 4: evaluate leaf inner approximations at owned particles.
    ctx.set_phase(4);
    let t0 = Instant::now();
    let b_leaf = cfg.inner_ratio * leaf_side;
    let mut pot = vec![0.0; bp.len()];
    let mut far_field = sh.with_fields.then(|| vec![[0.0; 3]; bp.len()]);
    let eval_flops = eval_local(
        &bp,
        sh.fmm.rule(),
        cfg.m_trunc,
        b_leaf,
        depth,
        false,
        &fh.local[depth as usize],
        &mut pot,
        far_field.as_deref_mut(),
    );
    times[4] = t0.elapsed();

    // ---- Phase 5: near field.
    ctx.set_phase(5);
    let t0 = Instant::now();
    let eps2 = cfg.softening * cfg.softening;
    let mut near_pot = vec![0.0; bp.len()];
    let mut near_field = sh.with_fields.then(|| vec![[0.0; 3]; bp.len()]);
    let mut stats = NearFieldStats::default();
    if let Some(near_f) = near_field.as_mut() {
        // Forces: the clipped neighbor halo moves in one planned exchange,
        // then the serial per-box kernel runs over the halo-extended
        // binning (stable binning keeps serial source order).
        let own = |c: usize| -> CellParticles {
            let r = bp.range(c);
            CellParticles {
                xs: bp.x[r.clone()].to_vec(),
                ys: bp.y[r.clone()].to_vec(),
                zs: bp.z[r.clone()].to_vec(),
                qs: bp.q[r].to_vec(),
            }
        };
        let mut store: BTreeMap<usize, CellParticles> = BTreeMap::new();
        let mut cur = Cursor::new(&sh.program.phases[5]);
        let st = cur.next(&ctx, |kd| matches!(kd, StepKind::PartParticleHalo));
        ctx.count_op(st.logical_msgs);
        particle_exchange(&mut ctx, &psched.particle_halo, &own, &mut store);
        cur.finish();
        let mut pos2: Vec<[f64; 3]> = Vec::with_capacity(bp.len());
        let mut q2: Vec<f64> = Vec::with_capacity(bp.len());
        for i in 0..bp.len() {
            pos2.push([bp.x[i], bp.y[i], bp.z[i]]);
            q2.push(bp.q[i]);
        }
        for cell in store.values() {
            for j in 0..cell.len() {
                pos2.push([cell.xs[j], cell.ys[j], cell.zs[j]]);
                q2.push(cell.qs[j]);
            }
        }
        let bph = BinnedParticles::build(&pos2, &q2, sh.domain, depth);
        let offsets = near_field_offsets(sep);
        let mut pot_h = vec![0.0; bph.len()];
        let mut f_h = vec![[0.0; 3]; bph.len()];
        for code in part.owned_at(rank, depth) {
            let bi = morton_to_rowmajor(depth, code);
            let rh = bph.range(bi);
            stats.pair_interactions += near_field_forces_box(
                &bph,
                bi,
                &offsets,
                eps2,
                &mut pot_h[rh.clone()],
                &mut f_h[rh],
            );
        }
        for code in part.owned_at(rank, depth) {
            let bi = morton_to_rowmajor(depth, code);
            for (dst, src) in bp.range(bi).zip(bph.range(bi)) {
                near_pot[dst] = pot_h[src];
                near_f[dst] = f_h[src];
            }
        }
        stats.flops = stats.pair_interactions * PAIR_FORCE_FLOPS;
    } else {
        // Potentials: the identical travelling-accumulator itinerary, with
        // each hop routed by partition ownership instead of the grid ring.
        for code in part.owned_at(rank, depth) {
            let bi = morton_to_rowmajor(depth, code);
            let r = bp.range(bi);
            if !r.is_empty() {
                stats.pair_interactions +=
                    self_box_potential(&bp, r.clone(), eps2, &mut near_pot[r]);
                stats.box_pairs += 1;
            }
        }
        let mut slots: BTreeMap<usize, Slot> = BTreeMap::new();
        for code in part.owned_at(rank, depth) {
            let bi = morton_to_rowmajor(depth, code);
            let r = bp.range(bi);
            slots.insert(
                bi,
                Slot {
                    origin: bi,
                    cell: CellParticles {
                        xs: bp.x[r.clone()].to_vec(),
                        ys: bp.y[r.clone()].to_vec(),
                        zs: bp.z[r.clone()].to_vec(),
                        qs: bp.q[r.clone()].to_vec(),
                    },
                    acc: vec![0.0; r.len()],
                },
            );
        }
        let mut cur = Cursor::new(&sh.program.phases[5]);
        while let Some(st) = cur.next_if(&ctx, |kd| matches!(kd, StepKind::SlotShift { .. })) {
            let StepKind::SlotShift { axis, delta, visit } = st.kind else {
                unreachable!()
            };
            shift_slots_part(
                &mut ctx,
                &mut slots,
                axis,
                delta,
                part,
                psched.slot_route_at(axis, delta),
                n_axis,
            );
            ctx.count_op(st.logical_msgs);
            let Some(cum) = visit else { continue };
            for code in part.owned_at(rank, depth) {
                let bi = morton_to_rowmajor(depth, code);
                let t_range = bp.range(bi);
                if t_range.is_empty() {
                    continue;
                }
                let t = BoxCoord::from_index(depth, bi);
                let Some(s) = t.offset(cum) else {
                    continue;
                };
                let slot = slots.get_mut(&bi).expect("slot coverage is total");
                debug_assert_eq!(slot.origin, s.index());
                if slot.cell.is_empty() {
                    continue;
                }
                let t_out = &mut near_pot[t_range.clone()];
                for (i, ti) in t_range.clone().enumerate() {
                    t_out[i] += pair_exchange_with(
                        sh.plan.kernel,
                        bp.x[ti],
                        bp.y[ti],
                        bp.z[ti],
                        bp.q[ti],
                        eps2,
                        &slot.cell.xs,
                        &slot.cell.ys,
                        &slot.cell.zs,
                        &slot.cell.qs,
                        &mut slot.acc,
                    );
                    stats.pair_interactions += slot.cell.len() as u64;
                }
                stats.box_pairs += 1;
            }
        }
        cur.finish();
        for code in part.owned_at(rank, depth) {
            let bi = morton_to_rowmajor(depth, code);
            let slot = &slots[&bi];
            debug_assert_eq!(slot.origin, bi);
            for (o, a) in near_pot[bp.range(bi)].iter_mut().zip(&slot.acc) {
                *o += *a;
            }
        }
        stats.flops = stats.pair_interactions * PAIR_FLOPS;
    }
    times[5] = t0.elapsed();

    if let (Some(ff), Some(nf)) = (far_field.as_mut(), near_field.as_ref()) {
        for (a, b) in ff.iter_mut().zip(nf) {
            for d in 0..3 {
                a[d] += b[d];
            }
        }
    }
    for (f, nr) in pot.iter_mut().zip(&near_pot) {
        *f += nr;
    }

    WorkerOut {
        counters: ctx.counters,
        orig: orig_sorted,
        pot,
        fields: far_field,
        near_stats: stats,
        p2o_flops,
        eval_flops,
        traversal_flops: tflops,
        times,
    }
}
