//! Channel collectives over the worker fabric, mirroring the CM-5 runtime
//! primitives the machine model prices: the router (irregular sends), CSHIFT
//! (grid-neighbor shifts with circular wrap), and the tree-structured
//! combine/spread used for levels embedded on fewer VUs than boxes
//! (Multigrid embedding).
//!
//! The *plans* — who exchanges which cells with whom — live in
//! [`crate::schedule`], where the static analyzer reads them too; this
//! module only moves the data. Each collective's send/receive sequence is
//! exactly the lowering `schedule::Step::ops_for` describes for its step
//! kind: that correspondence is what lets `fmm-verify` prove properties of
//! the program these functions then execute.
//!
//! Determinism rules shared by every collective here:
//! * every rank calls the collective at the same point of the program, and
//!   each call burns exactly one tag on every rank;
//! * all sends of a phase are posted before the receives that could block
//!   on a peer, so no cyclic wait exists (the binomial gather interleaves
//!   per stage, but its dependency order is a tree — see the deadlock pass
//!   in `fmm-verify`);
//! * receive order is fixed by rank arithmetic, never by arrival order.

use std::collections::BTreeMap;

use fmm_machine::BlockLayout;
use fmm_tree::morton::morton_encode;
use fmm_tree::{Exchange, Partition};

use crate::fabric::WorkerCtx;
use crate::schedule::{cell_index, halo_axis_plan, particle_axis_plan, ring_partners};

/// Personalized all-to-all (the router): worker `w` receives
/// `outgoing[w]`, concatenated in source-rank order. The model prices the
/// sort scatter as one aggregate router operation, so the caller counts
/// the op; bytes are counted here per sending worker.
pub fn all_to_allv(ctx: &mut WorkerCtx, outgoing: Vec<Vec<f64>>) -> Vec<f64> {
    let p = ctx.p();
    let tag = ctx.tags.fresh();
    let mut mine = Vec::new();
    let mut chunks: Vec<Option<Vec<f64>>> = (0..p).map(|_| None).collect();
    for (w, chunk) in outgoing.into_iter().enumerate() {
        if w == ctx.rank {
            ctx.counters.add_local_words(chunk.len() as u64);
            chunks[w] = Some(chunk);
        } else {
            ctx.counters.add_words(chunk.len() as u64);
            ctx.send(w, tag, chunk);
        }
    }
    for (w, slot) in chunks.iter_mut().enumerate() {
        if w != ctx.rank {
            *slot = Some(ctx.recv(w, tag));
        }
    }
    for chunk in chunks.into_iter().flatten() {
        mine.extend_from_slice(&chunk);
    }
    mine
}

/// Tree-structured combine: bring the owned `(box index, k samples)` chunks
/// of a distributed level to rank 0, which writes them into its full-size
/// `buf`. Binomial: stage `s` halves the set of holders, so the total
/// box transmissions match the model's `gather_hops(p)` accounting.
pub fn gather_level_to_root(ctx: &mut WorkerCtx, buf: &mut [f64], l: u32, k: usize) {
    let p = ctx.p();
    let tag = ctx.tags.fresh();
    if p == 1 {
        return;
    }
    let n = 1usize << l;
    let lay = BlockLayout::new([n; 3], ctx.grid);
    let mut held = Vec::with_capacity(lay.boxes_per_vu() * (k + 1));
    for li in 0..lay.boxes_per_vu() {
        let g = lay.global_of(ctx.rank, li);
        let bi = cell_index(g, n);
        held.push(bi as f64);
        held.extend_from_slice(&buf[bi * k..(bi + 1) * k]);
    }
    let stages = p.trailing_zeros();
    for s in 0..stages {
        let bit = 1usize << s;
        if !ctx.rank.is_multiple_of(bit) {
            continue; // retired in an earlier stage
        }
        if ctx.rank & bit != 0 {
            // Payload words are the k-sample rows; the per-box index is
            // envelope metadata, like a router packet header.
            ctx.counters.add_messages(1);
            ctx.counters.add_words((held.len() / (k + 1) * k) as u64);
            let data = std::mem::take(&mut held);
            ctx.send(ctx.rank - bit, tag, data);
        } else if ctx.rank + bit < p {
            let data = ctx.recv(ctx.rank + bit, tag);
            held.extend_from_slice(&data);
        }
    }
    if ctx.rank == 0 {
        for ch in held.chunks_exact(k + 1) {
            let bi = ch[0] as usize;
            buf[bi * k..(bi + 1) * k].copy_from_slice(&ch[1..]);
        }
    }
}

/// Tree-structured spread: rank 0's `buf` replaces every other rank's.
/// Mirror image of [`gather_level_to_root`]; the model prices `log2 p`
/// broadcast stages, counted here via `count_op` (rank 0 sends in every
/// stage), with bytes per actual transmission.
pub fn broadcast_from_root(ctx: &mut WorkerCtx, buf: &mut [f64]) {
    let p = ctx.p();
    let tag = ctx.tags.fresh();
    if p == 1 {
        return;
    }
    let stages = p.trailing_zeros();
    for s in (0..stages).rev() {
        let bit = 1usize << s;
        let span = bit << 1;
        if ctx.rank.is_multiple_of(span) {
            ctx.count_op(1);
            ctx.counters.add_words(buf.len() as u64);
            ctx.send(ctx.rank + bit, tag, buf.to_vec());
        } else if ctx.rank.is_multiple_of(bit) {
            let data = ctx.recv(ctx.rank - bit, tag);
            buf.copy_from_slice(&data);
        }
    }
}

/// One axis phase of the circular-wrap halo exchange of a distributed
/// far-field level: after all three phases (x, y, z — the executor runs
/// them in the program's step order), every rank's full-size `level_buf`
/// holds true values for all boxes within `g` of its subgrid (wrapped
/// coordinates alias the true wrapped box, which consumers never read —
/// they bound-check first, as the CM CSHIFT code masks wrapped elements).
pub fn halo_exchange_axis(
    ctx: &mut WorkerCtx,
    level_buf: &mut [f64],
    l: u32,
    axis: usize,
    g: usize,
    k: usize,
) {
    let n = 1usize << l;
    let lay = BlockLayout::new([n; 3], ctx.grid);
    let my = ctx.coords();
    let tag = ctx.tags.fresh();
    // Post sends: serve every rank along this axis whose plan names me.
    for other in 0..ctx.grid.dims[axis] {
        if other == my[axis] {
            continue;
        }
        let mut dst_c = my;
        dst_c[axis] = other;
        let dst = ctx.grid.rank(dst_c);
        let dplan = halo_axis_plan(&lay, dst_c, axis, g, n);
        if let Some(cells) = dplan.get(&ctx.rank) {
            let mut data = Vec::with_capacity(cells.len() * k);
            for &c in cells {
                data.extend_from_slice(&level_buf[c * k..(c + 1) * k]);
            }
            ctx.counters.add_words(data.len() as u64);
            ctx.send(dst, tag, data);
        }
    }
    // Receive, in plan (ascending source-rank) order.
    let plan = halo_axis_plan(&lay, my, axis, g, n);
    for (src, cells) in &plan {
        if *src == ctx.rank {
            // Wrap aliased back onto my own subgrid: the true values
            // are already in place, only local index motion.
            ctx.counters.add_local_words((cells.len() * k) as u64);
            continue;
        }
        let data = ctx.recv(*src, tag);
        debug_assert_eq!(data.len(), cells.len() * k);
        for (i, &c) in cells.iter().enumerate() {
            level_buf[c * k..(c + 1) * k].copy_from_slice(&data[i * k..(i + 1) * k]);
        }
    }
}

/// Execute one [`Exchange`] plan over the k-sample rows of a full-size
/// level buffer: send every owned row the plan names (row-major cell
/// order, one message per destination), then receive and store peers'
/// rows at their cell indices. Both ends walk the same plan, so no
/// metadata travels; bytes are exactly `rows × k` words, which is what
/// the partitioned budget predicts.
pub fn exchange_rows(ctx: &mut WorkerCtx, buf: &mut [f64], ex: &Exchange, k: usize) {
    let tag = ctx.tags.fresh();
    for (dst, cells) in &ex.sends[ctx.rank] {
        let mut data = Vec::with_capacity(cells.len() * k);
        for &c in cells {
            data.extend_from_slice(&buf[c * k..(c + 1) * k]);
        }
        ctx.counters.add_words(data.len() as u64);
        ctx.send(*dst, tag, data);
    }
    for (src, cells) in &ex.recvs[ctx.rank] {
        let data = ctx.recv(*src, tag);
        debug_assert_eq!(data.len(), cells.len() * k);
        for (i, &c) in cells.iter().enumerate() {
            buf[c * k..(c + 1) * k].copy_from_slice(&data[i * k..(i + 1) * k]);
        }
    }
}

/// Particles of one leaf cell, in the owner's sorted (= serial) order.
#[derive(Default, Clone)]
pub struct CellParticles {
    pub xs: Vec<f64>,
    pub ys: Vec<f64>,
    pub zs: Vec<f64>,
    pub qs: Vec<f64>,
}

impl CellParticles {
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }
}

/// One axis phase of the halo exchange of leaf *particles* (positions +
/// charges) to ghost depth `g`, without wrap — the forces near field is
/// target-centric and only reads true in-domain neighbors. `own` serves a
/// cell I own; received cells accumulate in `store` and are re-served in
/// later phases (corner forwarding). Message layout per cell, in plan
/// order: `[count, xs.., ys.., zs.., qs..]`.
pub fn particle_halo_axis(
    ctx: &mut WorkerCtx,
    depth: u32,
    g: usize,
    axis: usize,
    own: &impl Fn(usize) -> Option<CellParticles>,
    store: &mut BTreeMap<usize, CellParticles>,
) {
    let n = 1usize << depth;
    let lay = BlockLayout::new([n; 3], ctx.grid);
    let my = ctx.coords();
    let tag = ctx.tags.fresh();
    for other in 0..ctx.grid.dims[axis] {
        if other == my[axis] {
            continue;
        }
        let mut dst_c = my;
        dst_c[axis] = other;
        let dst = ctx.grid.rank(dst_c);
        let dplan = particle_axis_plan(&lay, dst_c, axis, g, n);
        if let Some(cells) = dplan.get(&ctx.rank) {
            let mut data = Vec::new();
            let mut payload = 0u64;
            for &c in cells {
                let cell = own(c)
                    .or_else(|| store.get(&c).cloned())
                    .unwrap_or_default();
                data.push(cell.len() as f64);
                payload += 4 * cell.len() as u64;
                data.extend_from_slice(&cell.xs);
                data.extend_from_slice(&cell.ys);
                data.extend_from_slice(&cell.zs);
                data.extend_from_slice(&cell.qs);
            }
            ctx.counters.add_words(payload);
            ctx.send(dst, tag, data);
        }
    }
    let plan = particle_axis_plan(&lay, my, axis, g, n);
    for (src, cells) in &plan {
        let data = ctx.recv(*src, tag);
        let mut i = 0usize;
        for &c in cells {
            let cnt = data[i] as usize;
            i += 1;
            let take = |i: &mut usize| -> Vec<f64> {
                let v = data[*i..*i + cnt].to_vec();
                *i += cnt;
                v
            };
            let xs = take(&mut i);
            let ys = take(&mut i);
            let zs = take(&mut i);
            let qs = take(&mut i);
            store.insert(c, CellParticles { xs, ys, zs, qs });
        }
        debug_assert_eq!(i, data.len());
    }
}

/// One-shot partitioned particle halo (forces near field): every cross-
/// owner neighbour cell of the [`fmm_tree::particle_halo`] plan moves in a
/// single exchange. `own` serves a cell this rank owns; received cells
/// land in `store`. Message layout per cell, in plan order:
/// `[count, xs.., ys.., zs.., qs..]` (the count is envelope metadata, like
/// the axis-phase variant's).
pub fn particle_exchange(
    ctx: &mut WorkerCtx,
    ex: &Exchange,
    own: &impl Fn(usize) -> CellParticles,
    store: &mut BTreeMap<usize, CellParticles>,
) {
    let tag = ctx.tags.fresh();
    for (dst, cells) in &ex.sends[ctx.rank] {
        let mut data = Vec::new();
        let mut payload = 0u64;
        for &c in cells {
            let cell = own(c);
            data.push(cell.len() as f64);
            payload += 4 * cell.len() as u64;
            data.extend_from_slice(&cell.xs);
            data.extend_from_slice(&cell.ys);
            data.extend_from_slice(&cell.zs);
            data.extend_from_slice(&cell.qs);
        }
        ctx.counters.add_words(payload);
        ctx.send(*dst, tag, data);
    }
    for (src, cells) in &ex.recvs[ctx.rank] {
        let data = ctx.recv(*src, tag);
        let mut i = 0usize;
        for &c in cells {
            let cnt = data[i] as usize;
            i += 1;
            let take = |i: &mut usize| -> Vec<f64> {
                let v = data[*i..*i + cnt].to_vec();
                *i += cnt;
                v
            };
            let xs = take(&mut i);
            let ys = take(&mut i);
            let zs = take(&mut i);
            let qs = take(&mut i);
            store.insert(c, CellParticles { xs, ys, zs, qs });
        }
        debug_assert_eq!(i, data.len());
    }
}

/// One travelling slot of the symmetric near-field sweep: the particles
/// and partial accumulator of origin box `origin`, currently visiting some
/// other leaf box.
pub struct Slot {
    pub origin: usize,
    pub cell: CellParticles,
    pub acc: Vec<f64>,
}

/// One unit CSHIFT of the travelling slots: every slot's position moves by
/// `pos_delta` (±1) along `axis` with circular wrap. Slots that cross a VU
/// boundary are serialized to the grid neighbor; the rest re-key locally.
/// `slots` is keyed by current position (global leaf index).
pub fn shift_slots(
    ctx: &mut WorkerCtx,
    slots: &mut BTreeMap<usize, Slot>,
    axis: usize,
    pos_delta: i32,
    lay: &BlockLayout,
    n: usize,
) {
    let tag = ctx.tags.fresh();
    let mut staying: BTreeMap<usize, Slot> = BTreeMap::new();
    let mut leaving: Vec<f64> = Vec::new();
    let mut leaving_words = 0u64;
    for (pos, slot) in std::mem::take(slots) {
        let mut g = [pos % n, (pos / n) % n, pos / (n * n)];
        g[axis] = (g[axis] as i64 + pos_delta as i64).rem_euclid(n as i64) as usize;
        let npos = cell_index(g, n);
        if lay.vu_of(g) == ctx.rank {
            ctx.counters.add_local_words(5 * slot.cell.len() as u64);
            staying.insert(npos, slot);
        } else {
            let cnt = slot.cell.len();
            leaving_words += 5 * cnt as u64;
            leaving.push(npos as f64);
            leaving.push(slot.origin as f64);
            leaving.push(cnt as f64);
            leaving.extend_from_slice(&slot.cell.xs);
            leaving.extend_from_slice(&slot.cell.ys);
            leaving.extend_from_slice(&slot.cell.zs);
            leaving.extend_from_slice(&slot.cell.qs);
            leaving.extend_from_slice(&slot.acc);
        }
    }
    *slots = staying;
    if ctx.grid.dims[axis] == 1 {
        debug_assert!(leaving.is_empty());
        return;
    }
    let (dst, src) = ring_partners(&ctx.grid, ctx.rank, axis, pos_delta);
    ctx.counters.add_words(leaving_words);
    ctx.send(dst, tag, leaving);
    let data = ctx.recv(src, tag);
    unpack_slots(&data, slots);
}

/// Deserialize a stream of `[npos, origin, cnt, xs, ys, zs, qs, acc]`
/// slot records into `slots`, keyed by new position.
fn unpack_slots(data: &[f64], slots: &mut BTreeMap<usize, Slot>) {
    let mut i = 0usize;
    while i < data.len() {
        let npos = data[i] as usize;
        let origin = data[i + 1] as usize;
        let cnt = data[i + 2] as usize;
        i += 3;
        let take = |i: &mut usize| -> Vec<f64> {
            let v = data[*i..*i + cnt].to_vec();
            *i += cnt;
            v
        };
        let xs = take(&mut i);
        let ys = take(&mut i);
        let zs = take(&mut i);
        let qs = take(&mut i);
        let acc = take(&mut i);
        slots.insert(
            npos,
            Slot {
                origin,
                cell: CellParticles { xs, ys, zs, qs },
                acc,
            },
        );
    }
}

/// Partitioned variant of [`shift_slots`]: the same unit circular shift of
/// slot positions, but ownership follows the Morton `part` and departing
/// slots travel by the precomputed `route` ([`fmm_tree::slot_route`] for
/// this `(axis, pos_delta)`), which keys each crossing slot by its
/// *source* cell — so sender and receiver agree on serialization order
/// with no extra metadata. Wire format matches [`shift_slots`].
pub fn shift_slots_part(
    ctx: &mut WorkerCtx,
    slots: &mut BTreeMap<usize, Slot>,
    axis: usize,
    pos_delta: i32,
    part: &Partition,
    route: &Exchange,
    n: usize,
) {
    let tag = ctx.tags.fresh();
    let mut staying: BTreeMap<usize, Slot> = BTreeMap::new();
    // Departing slots keyed by source cell, the route's key.
    let mut leaving: BTreeMap<usize, (usize, Slot)> = BTreeMap::new();
    for (pos, slot) in std::mem::take(slots) {
        let mut g = [pos % n, (pos / n) % n, pos / (n * n)];
        g[axis] = (g[axis] as i64 + pos_delta as i64).rem_euclid(n as i64) as usize;
        let npos = cell_index(g, n);
        let owner = part.leaf_owner(morton_encode(g[0] as u32, g[1] as u32, g[2] as u32));
        if owner == ctx.rank {
            ctx.counters.add_local_words(5 * slot.cell.len() as u64);
            staying.insert(npos, slot);
        } else {
            leaving.insert(pos, (npos, slot));
        }
    }
    *slots = staying;
    for (dst, cells) in &route.sends[ctx.rank] {
        let mut data = Vec::new();
        let mut words = 0u64;
        for &c in cells {
            let (npos, slot) = leaving
                .remove(&c)
                .expect("route names every departing slot");
            let cnt = slot.cell.len();
            words += 5 * cnt as u64;
            data.push(npos as f64);
            data.push(slot.origin as f64);
            data.push(cnt as f64);
            data.extend_from_slice(&slot.cell.xs);
            data.extend_from_slice(&slot.cell.ys);
            data.extend_from_slice(&slot.cell.zs);
            data.extend_from_slice(&slot.cell.qs);
            data.extend_from_slice(&slot.acc);
        }
        ctx.counters.add_words(words);
        ctx.send(*dst, tag, data);
    }
    debug_assert!(leaving.is_empty(), "departing slot missing from the route");
    for (src, _) in &route.recvs[ctx.rank] {
        let data = ctx.recv(*src, tag);
        unpack_slots(&data, slots);
    }
}
