//! Proptest fuzzing of the FMMW data-plane framing — the SPMD socket
//! fabrics' counterpart of `fmm-serve`'s FMM1 fuzz (`fuzz_protocol.rs`).
//!
//! The same three families of properties:
//!
//! 1. **No panic on byte soup** — decoders are total over arbitrary
//!    input and never allocate proportionally to a hostile length field.
//! 2. **Round-trip identity** — encode→decode is the identity for
//!    arbitrary (from, tag, payload) triples, bit-for-bit: payload f64s
//!    are drawn from raw bit patterns, NaNs and infinities included.
//! 3. **Truncation is always an error** — every strict prefix of a valid
//!    frame is rejected, at every cut point.

use std::io::Cursor;

use fmm_spmd::transport::{decode_msg, decode_payload, encode_msg, read_msg, HEADER, MAX_FRAME};
use proptest::prelude::*;

/// f64s from raw bit patterns: includes NaNs, infinities, subnormals.
fn arb_bits_f64() -> impl Strategy<Value = f64> {
    (0u64..=u64::MAX).prop_map(f64::from_bits)
}

fn arb_msg() -> impl Strategy<Value = (u32, u64, Vec<f64>)> {
    (
        0u32..=u32::MAX,
        0u64..=u64::MAX,
        proptest::collection::vec(arb_bits_f64(), 0..64),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Decoders are total: arbitrary bytes produce Ok or Err, never a
    /// panic — through the slice decoders and the streaming reader.
    #[test]
    fn decoders_never_panic_on_byte_soup(bytes in proptest::collection::vec(0u8..=255, 0..512)) {
        let _ = decode_msg(&bytes);
        let _ = decode_payload(&bytes);
        let _ = read_msg(&mut Cursor::new(&bytes));
    }

    /// encode→decode is the identity, bit for bit, for arbitrary header
    /// fields and payload bit patterns — via both the slice decoder and
    /// the streaming reader.
    #[test]
    fn round_trip_is_identity((from, tag, data) in arb_msg()) {
        let frame = encode_msg(from, tag, &data);
        prop_assert_eq!(frame.len(), 4 + HEADER + 8 * data.len());

        let (f2, t2, d2) = decode_msg(&frame).unwrap();
        prop_assert_eq!(f2, from);
        prop_assert_eq!(t2, tag);
        prop_assert_eq!(d2.len(), data.len());
        for (a, b) in data.iter().zip(&d2) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }

        let (f3, t3, d3) = read_msg(&mut Cursor::new(&frame)).unwrap();
        prop_assert_eq!((f3, t3), (from, tag));
        for (a, b) in data.iter().zip(&d3) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Every strict prefix of a valid frame is rejected — no cut point
    /// decodes to anything.
    #[test]
    fn truncation_is_always_an_error((from, tag, data) in arb_msg(), frac in 0.0f64..1.0) {
        let frame = encode_msg(from, tag, &data);
        let cut = ((frame.len() as f64) * frac) as usize; // < len: strict prefix
        prop_assert!(decode_msg(&frame[..cut]).is_err(), "cut at {} accepted", cut);
        prop_assert!(read_msg(&mut Cursor::new(&frame[..cut])).is_err());
    }

    /// A hostile length prefix never drives an allocation: lengths past
    /// MAX_FRAME are rejected before the payload is touched, and lengths
    /// the stream cannot back fail with an error, not a panic.
    #[test]
    fn hostile_lengths_are_bounded(len in 0u64..=u64::MAX >> 16) {
        let mut frame = Vec::new();
        frame.extend_from_slice(&(len.min(u32::MAX as u64) as u32).to_le_bytes());
        frame.extend_from_slice(b"FMMW");
        let res = read_msg(&mut Cursor::new(&frame));
        prop_assert!(res.is_err());
        if len as usize > MAX_FRAME {
            let _ = decode_msg(&frame); // total, no alloc proportional to len
        }
    }
}
