//! CI hook: the worker count under test comes from `FMM_SPMD_WORKERS`
//! (default 2), so the workflow can run the suite at several widths
//! without recompiling. Checks the backend-equivalence invariant end to
//! end at that width.

use fmm_core::{Executor, Fmm, FmmConfig};

#[test]
fn bitwise_at_env_worker_count() {
    let workers: usize = std::env::var("FMM_SPMD_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    fmm_spmd::install();

    let n = 2000;
    let mut state = 0xC1u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let pts: Vec<[f64; 3]> = (0..n).map(|_| [next(), next(), next()]).collect();
    let q: Vec<f64> = (0..n).map(|_| next() * 2.0 - 1.0).collect();

    let cfg = |e| FmmConfig::order(3).depth(3).executor(e);
    let serial = Fmm::new(cfg(Executor::Serial)).unwrap();
    let spmd = Fmm::new(cfg(Executor::spmd(workers))).unwrap();
    let a = serial.evaluate_forces(&pts, &q).unwrap();
    let b = spmd.evaluate_forces(&pts, &q).unwrap();
    for (x, y) in a.potentials.iter().zip(&b.potentials) {
        assert_eq!(x.to_bits(), y.to_bits(), "workers={workers}");
    }
    for (fa, fb) in a.fields.unwrap().iter().zip(b.fields.unwrap().iter()) {
        for d in 0..3 {
            assert_eq!(fa[d].to_bits(), fb[d].to_bits(), "workers={workers}");
        }
    }
    assert_eq!(b.spmd.unwrap().workers, workers);
}
