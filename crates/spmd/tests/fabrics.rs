//! The transport seam's contract: the *same* `CommProgram` carried over
//! in-process channels, UNIX-domain socket frames, or loopback TCP
//! frames produces **bitwise identical** potentials, forces, and channel
//! counters. The fabric moves bytes; it never touches arithmetic,
//! schedule, tags, or counting.

use fmm_core::{Balance, Executor, Fabric, Fmm, FmmConfig, SpmdOptions};
use proptest::prelude::*;

fn system(lo: usize, hi: usize) -> impl Strategy<Value = (Vec<[f64; 3]>, Vec<f64>)> {
    (lo..hi).prop_flat_map(|n| {
        (
            proptest::collection::vec(
                (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0).prop_map(|(x, y, z)| [x, y, z]),
                n,
            ),
            proptest::collection::vec(-2.0f64..2.0, n),
        )
    })
}

fn evaluate(
    pts: &[[f64; 3]],
    q: &[f64],
    depth: u32,
    p: usize,
    bal: Balance,
    fabric: Fabric,
    forces: bool,
) -> fmm_core::EvalOutput {
    fmm_spmd::install();
    let cfg = FmmConfig::order(3)
        .depth(depth)
        .executor(Executor::Spmd(SpmdOptions::new(p).transport(fabric)))
        .balance(bal);
    let fmm = Fmm::new(cfg).unwrap();
    if forces {
        fmm.evaluate_forces(pts, q).unwrap()
    } else {
        fmm.evaluate(pts, q).unwrap()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Potentials, forces, and per-phase counters are bit-for-bit equal
    /// across all three fabrics, for p ∈ {2, 4, 8}, depths 2–3, both
    /// balance modes, potentials-only and forces runs.
    #[test]
    fn fabrics_are_bitwise_interchangeable((pts, q) in system(40, 160),
                                           depth in 2u32..4,
                                           log_p in 1u32..4,
                                           cost_weighted in proptest::bool::ANY,
                                           forces in proptest::bool::ANY) {
        let p = 1usize << log_p;
        let bal = if cost_weighted { Balance::CostWeighted } else { Balance::Uniform };
        let base = evaluate(&pts, &q, depth, p, bal, Fabric::InProcess, forces);
        let base_report = base.spmd.as_ref().unwrap();
        for fabric in [Fabric::Unix, Fabric::Tcp] {
            let out = evaluate(&pts, &q, depth, p, bal, fabric, forces);
            for (i, (a, b)) in base.potentials.iter().zip(&out.potentials).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(),
                                "potential {} differs on {:?} at p={} depth={} bal={:?}",
                                i, fabric, p, depth, bal);
            }
            match (&base.fields, &out.fields) {
                (None, None) => prop_assert!(!forces),
                (Some(fa), Some(fb)) => {
                    for (i, (a, b)) in fa.iter().zip(fb).enumerate() {
                        for d in 0..3 {
                            prop_assert_eq!(a[d].to_bits(), b[d].to_bits(),
                                            "force {}[{}] differs on {:?}", i, d, fabric);
                        }
                    }
                }
                _ => prop_assert!(false, "field presence differs on {:?}", fabric),
            }
            // Counters are functions of the program, not the wire.
            let report = out.spmd.as_ref().unwrap();
            prop_assert_eq!(&base_report.phases, &report.phases,
                            "counters differ on {:?}", fabric);
            prop_assert_eq!(&base_report.partition, &report.partition);
        }
    }
}

/// The acceptance grid pinned exactly: every p ∈ {2, 4, 8} × depth ∈
/// {2, 3} × balance cell agrees across fabrics on one fixed system
/// (proptest samples the space; this leaves no cell to chance).
#[test]
fn acceptance_grid_is_bitwise_identical() {
    let mut state = 0x5eed5eedu64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let pts: Vec<[f64; 3]> = (0..96).map(|_| [next(), next(), next()]).collect();
    let q: Vec<f64> = (0..96).map(|_| next() * 2.0 - 1.0).collect();
    for p in [2usize, 4, 8] {
        for depth in [2u32, 3] {
            for bal in [Balance::Uniform, Balance::CostWeighted] {
                let a = evaluate(&pts, &q, depth, p, bal, Fabric::InProcess, true);
                for fabric in [Fabric::Unix, Fabric::Tcp] {
                    let b = evaluate(&pts, &q, depth, p, bal, fabric, true);
                    assert!(
                        a.potentials
                            .iter()
                            .zip(&b.potentials)
                            .all(|(x, y)| x.to_bits() == y.to_bits()),
                        "potentials differ on {fabric:?} p={p} depth={depth} bal={bal:?}"
                    );
                    let (fa, fb) = (a.fields.as_ref().unwrap(), b.fields.as_ref().unwrap());
                    assert!(
                        fa.iter()
                            .zip(fb)
                            .all(|(x, y)| (0..3).all(|d| x[d].to_bits() == y[d].to_bits())),
                        "forces differ on {fabric:?} p={p} depth={depth} bal={bal:?}"
                    );
                    assert_eq!(
                        a.spmd.as_ref().unwrap().phases,
                        b.spmd.as_ref().unwrap().phases,
                        "counters differ on {fabric:?} p={p} depth={depth} bal={bal:?}"
                    );
                }
            }
        }
    }
}
