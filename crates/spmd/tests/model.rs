//! Measured data motion vs. the machine model's prediction, on the
//! Table-4 configuration (depth 4, 128 VUs as [8,4,4], K = 6, four
//! particles per leaf box). The counters the SPMD executor records are
//! actual channel traffic; `fmm_machine::communication_budget` prices the
//! same program from closed form. The ISSUE's acceptance criterion: every
//! phase's measured messages and bytes land within 10% of the prediction.

use fmm_core::{Balance, Executor, Fmm, FmmConfig, SpmdReport};
use fmm_machine::{
    check_phases, communication_budget, communication_budget_with, predicted_bytes,
    predicted_messages, MeasuredPhase, ProgramConfig, VuGrid, DEFAULT_TOLERANCE,
};
use fmm_spmd::Partition;

const WORKERS: usize = 128;
const DEPTH: u32 = 4;
const N: usize = 16384; // 4 particles per leaf box at depth 4

fn uniform_system(n: usize, seed: u64) -> (Vec<[f64; 3]>, Vec<f64>) {
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let pts = (0..n).map(|_| [next(), next(), next()]).collect();
    let q = (0..n).map(|_| next() * 2.0 - 1.0).collect();
    (pts, q)
}

#[test]
fn table4_motion_matches_the_model_within_10_percent() {
    fmm_spmd::install();
    let (pts, q) = uniform_system(N, 0x7ab1e4);
    let fmm = Fmm::new(
        FmmConfig::order(3)
            .depth(DEPTH)
            .executor(Executor::spmd(WORKERS)),
    )
    .unwrap();
    let k = fmm.k();
    let out = fmm.evaluate(&pts, &q).unwrap();
    let report = out.spmd.expect("spmd run attaches a report");
    assert_eq!(report.vu_dims, [8, 4, 4]);

    // A uniformly random system starts block-distributed by particle
    // index, so all but ~1/p of the particles sort off-VU.
    let budget = communication_budget(&ProgramConfig {
        depth: DEPTH,
        k,
        m: fmm.config().m_trunc,
        particles_per_box: N as f64 / 8f64.powi(DEPTH as i32),
        vu_grid: VuGrid::new([8, 4, 4]),
        supernodes: false,
        sort_miss_fraction: 1.0 - 1.0 / WORKERS as f64,
        forces_near: false,
    });
    assert_eq!(budget.phases.len(), SpmdReport::PHASE_NAMES.len());
    assert_eq!(budget.config_k, k);
    for (phase, name) in budget.phases.iter().zip(SpmdReport::PHASE_NAMES) {
        assert_eq!(phase.name, name, "model and report phases align");
    }

    // The comparator shared with fmm-verify: every phase's measured
    // messages and bytes within the default 10% of the prediction, with
    // zero predictions requiring exact zeros.
    let measured: Vec<MeasuredPhase> = report
        .phases
        .iter()
        .map(|p| MeasuredPhase {
            messages: p.messages,
            bytes: Some(p.bytes),
        })
        .collect();
    let mismatches = check_phases(&budget, &measured, DEFAULT_TOLERANCE);
    assert!(
        mismatches.is_empty(),
        "budget divergence:\n{}",
        mismatches
            .iter()
            .map(|m| m.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );

    // The deterministic counts are exact, not just within tolerance: one
    // router operation for the sort, p − 1 binomial gather sends at the
    // upward embed transition, 6 halo CSHIFTs per distributed level plus
    // log₂ p broadcast stages downward, and the 65-CSHIFT travelling
    // sweep near field.
    let messages: Vec<u64> = report.phases.iter().map(|p| p.messages).collect();
    assert_eq!(messages, [1, 0, 127, 19, 0, 65]);

    // The upward gather and the downward halo + broadcast move a
    // data-independent set of boxes — byte-exact, not statistical.
    assert_eq!(report.phases[2].bytes, 86_016);
    assert_eq!(report.phases[3].bytes, 24_351_744);
}

/// The cost-weighted acceptance criterion: the partitioned budget —
/// summed from the same exchange plans the workers executed — matches the
/// executor's channel counters *byte-exactly* for every plan-derived
/// phase, on a clustered (data-dependent) layout.
fn assert_partitioned_budget_exact(with_fields: bool) {
    fmm_spmd::install();
    const DEPTH3: u32 = 3;
    const P: usize = 8;
    // A clustered system: three quarters of the particles crowd one
    // corner octant, so the cost-weighted cuts are far from uniform.
    let n = 4096;
    let (mut pts, q) = uniform_system(n, 0xc105);
    for p in pts.iter_mut().take(3 * n / 4) {
        for x in p.iter_mut() {
            *x *= 0.25;
        }
    }
    let fmm = Fmm::new(
        FmmConfig::order(3)
            .depth(DEPTH3)
            .executor(Executor::spmd(P))
            .balance(Balance::CostWeighted),
    )
    .unwrap();
    let k = fmm.k();
    let out = if with_fields {
        fmm.evaluate_forces(&pts, &q).unwrap()
    } else {
        fmm.evaluate(&pts, &q).unwrap()
    };
    let report = out.spmd.expect("spmd run attaches a report");
    let splits = report
        .partition
        .clone()
        .expect("cost-weighted report records its partition");
    assert!(
        splits.windows(2).any(|w| w[1] - w[0] != 512 / P as u64),
        "clustered input must produce non-uniform cuts, got {splits:?}"
    );
    let part = Partition::from_splits(DEPTH3, splits);
    let budget = communication_budget_with(
        &ProgramConfig {
            depth: DEPTH3,
            k,
            m: fmm.config().m_trunc,
            particles_per_box: n as f64 / 8f64.powi(DEPTH3 as i32),
            vu_grid: VuGrid::new([2, 2, 2]),
            supernodes: false,
            sort_miss_fraction: 1.0 - 1.0 / P as f64,
            forces_near: with_fields,
        },
        Some(&part),
    );

    // Upward and downward move a partition-determined set of K-box rows:
    // messages AND bytes equal the executor's counters bit for bit.
    for i in [2usize, 3] {
        assert_eq!(
            predicted_messages(&budget.phases[i].comm),
            report.phases[i].messages,
            "phase {i} message count"
        );
        assert_eq!(
            predicted_bytes(&budget.phases[i].comm, k),
            report.phases[i].bytes,
            "phase {i} bytes"
        );
    }
    // Near field: exact message count (slot/particle payloads are
    // data-dependent, so bytes are not statically predictable).
    assert_eq!(
        predicted_messages(&budget.phases[5].comm),
        report.phases[5].messages,
        "near-field message count"
    );

    // And the whole report through the shared comparator.
    let measured: Vec<MeasuredPhase> = report
        .phases
        .iter()
        .enumerate()
        .map(|(i, p)| MeasuredPhase {
            messages: p.messages,
            bytes: matches!(i, 1..=4).then_some(p.bytes),
        })
        .collect();
    let mismatches = check_phases(&budget, &measured, DEFAULT_TOLERANCE);
    assert!(
        mismatches.is_empty(),
        "budget divergence:\n{}",
        mismatches
            .iter()
            .map(|m| m.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn partitioned_potentials_budget_is_byte_exact() {
    assert_partitioned_budget_exact(false);
}

#[test]
fn partitioned_forces_budget_is_byte_exact() {
    assert_partitioned_budget_exact(true);
}
