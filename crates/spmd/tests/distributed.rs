//! True multi-process execution: `evaluate_distributed` spawning real
//! `fmm-worker` OS processes over a UNIX-socket (and TCP) rendezvous
//! must reproduce the in-process run bit for bit — potentials, forces,
//! counters — and the launcher's counters must stay byte-exact against
//! `communication_budget_with` exactly as the in-process model test
//! demands.

use fmm_core::{Balance, Executor, Fmm, FmmConfig};
use fmm_machine::{
    communication_budget_with, predicted_bytes, predicted_messages, ProgramConfig, VuGrid,
};
use fmm_spmd::{evaluate_distributed, FabricAddr, LaunchConfig, Partition};
use std::path::PathBuf;

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_fmm-worker"))
}

fn system(n: usize, seed: u64) -> (Vec<[f64; 3]>, Vec<f64>) {
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let pts = (0..n).map(|_| [next(), next(), next()]).collect();
    let q = (0..n).map(|_| next() * 2.0 - 1.0).collect();
    (pts, q)
}

fn fmm(p: usize, depth: u32, bal: Balance) -> Fmm {
    fmm_spmd::install();
    Fmm::new(
        FmmConfig::order(3)
            .depth(depth)
            .executor(Executor::spmd(p))
            .balance(bal),
    )
    .unwrap()
}

fn assert_bitwise_eq(a: &fmm_core::EvalOutput, b: &fmm_core::EvalOutput, what: &str) {
    assert_eq!(a.potentials.len(), b.potentials.len());
    for (i, (x, y)) in a.potentials.iter().zip(&b.potentials).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: potential {i}");
    }
    match (&a.fields, &b.fields) {
        (None, None) => {}
        (Some(fa), Some(fb)) => {
            for (i, (x, y)) in fa.iter().zip(fb).enumerate() {
                for d in 0..3 {
                    assert_eq!(x[d].to_bits(), y[d].to_bits(), "{what}: force {i}[{d}]");
                }
            }
        }
        _ => panic!("{what}: field presence differs"),
    }
    let (ra, rb) = (a.spmd.as_ref().unwrap(), b.spmd.as_ref().unwrap());
    assert_eq!(ra.phases, rb.phases, "{what}: counters");
    assert_eq!(ra.partition, rb.partition, "{what}: partition");
    assert_eq!(a.near_stats, b.near_stats, "{what}: near stats");
}

#[cfg(unix)]
#[test]
fn four_processes_over_unix_sockets_match_in_process_bitwise() {
    const P: usize = 4;
    const DEPTH: u32 = 3;
    let (pts, q) = system(2048, 0xd15c);
    let f = fmm(P, DEPTH, Balance::Uniform);
    let local = f.evaluate_forces(&pts, &q).unwrap();
    let sock = std::env::temp_dir().join(format!("fmm-dist-{}.sock", std::process::id()));
    let remote = evaluate_distributed(
        &f,
        &pts,
        &q,
        &LaunchConfig {
            rendezvous: FabricAddr::Unix(sock),
            workers: P,
            with_fields: true,
            worker_bin: Some(worker_bin()),
            capacity_bytes: Some(1 << 30),
        },
    )
    .unwrap();
    assert_bitwise_eq(&local, &remote, "unix 4-process");

    // The launcher's counters byte-exact against the machine model on
    // the deterministic phases (upward gather, downward halo+broadcast).
    let report = remote.spmd.as_ref().unwrap();
    let budget = communication_budget_with(
        &ProgramConfig {
            depth: DEPTH,
            k: f.k(),
            m: f.config().m_trunc,
            particles_per_box: pts.len() as f64 / 8f64.powi(DEPTH as i32),
            vu_grid: VuGrid::new(report.vu_dims),
            supernodes: false,
            sort_miss_fraction: 1.0 - 1.0 / P as f64,
            forces_near: true,
        },
        None,
    );
    for i in [2usize, 3] {
        assert_eq!(
            predicted_messages(&budget.phases[i].comm),
            report.phases[i].messages,
            "phase {i} messages"
        );
        assert_eq!(
            predicted_bytes(&budget.phases[i].comm, f.k()),
            report.phases[i].bytes,
            "phase {i} bytes"
        );
    }
}

#[cfg(unix)]
#[test]
fn cost_weighted_processes_reproduce_the_partitioned_run() {
    const P: usize = 4;
    const DEPTH: u32 = 3;
    // Clustered: cost-weighted cuts land far from uniform.
    let (mut pts, q) = system(1536, 0xc0c0);
    for p in pts.iter_mut().take(1152) {
        for x in p.iter_mut() {
            *x *= 0.25;
        }
    }
    let f = fmm(P, DEPTH, Balance::CostWeighted);
    let local = f.evaluate(&pts, &q).unwrap();
    let sock = std::env::temp_dir().join(format!("fmm-dist-cw-{}.sock", std::process::id()));
    let remote = evaluate_distributed(
        &f,
        &pts,
        &q,
        &LaunchConfig {
            rendezvous: FabricAddr::Unix(sock),
            workers: P,
            with_fields: false,
            worker_bin: Some(worker_bin()),
            capacity_bytes: None,
        },
    )
    .unwrap();
    assert_bitwise_eq(&local, &remote, "unix cost-weighted");

    // Partition-derived phases byte-exact against the partitioned budget.
    let report = remote.spmd.as_ref().unwrap();
    let splits = report.partition.clone().expect("partitioned report");
    let part = Partition::from_splits(DEPTH, splits);
    let budget = communication_budget_with(
        &ProgramConfig {
            depth: DEPTH,
            k: f.k(),
            m: f.config().m_trunc,
            particles_per_box: pts.len() as f64 / 8f64.powi(DEPTH as i32),
            vu_grid: VuGrid::new(report.vu_dims),
            supernodes: false,
            sort_miss_fraction: 1.0 - 1.0 / P as f64,
            forces_near: false,
        },
        Some(&part),
    );
    for i in [2usize, 3] {
        assert_eq!(
            predicted_bytes(&budget.phases[i].comm, f.k()),
            report.phases[i].bytes,
            "phase {i} bytes"
        );
    }
}

#[test]
fn two_processes_over_tcp_match_in_process_bitwise() {
    const P: usize = 2;
    let (pts, q) = system(512, 0x7c9);
    let f = fmm(P, 2, Balance::Uniform);
    let local = f.evaluate(&pts, &q).unwrap();
    let remote = evaluate_distributed(
        &f,
        &pts,
        &q,
        &LaunchConfig {
            rendezvous: FabricAddr::Tcp("127.0.0.1:0".into()),
            workers: P,
            with_fields: false,
            worker_bin: Some(worker_bin()),
            capacity_bytes: None,
        },
    )
    .unwrap();
    assert_bitwise_eq(&local, &remote, "tcp 2-process");
}

#[test]
fn preflight_refuses_undersized_capacity_before_spawning() {
    let (pts, q) = system(512, 0xbad);
    let f = fmm(4, 3, Balance::Uniform);
    let missing = PathBuf::from("/nonexistent/fmm-worker-not-here");
    // An undersized capacity must fail *before* any worker is spawned —
    // a worker_bin that cannot exist proves spawn was never reached.
    let err = evaluate_distributed(
        &f,
        &pts,
        &q,
        &LaunchConfig {
            rendezvous: FabricAddr::Tcp("127.0.0.1:0".into()),
            workers: 4,
            with_fields: false,
            worker_bin: Some(missing),
            capacity_bytes: Some(1000),
        },
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("pre-flight"), "{msg}");
    assert!(msg.contains("1000-byte"), "{msg}");
}
