//! The tentpole invariant: `Executor::spmd(p)` is **bitwise identical** to
//! `Executor::Serial` — same potentials, same fields, same near-field
//! counters — for every worker count. Distribution moves data, never bits.

use fmm_core::{Balance, Executor, Fmm, FmmConfig};

fn pseudo_system(n: usize, seed: u64) -> (Vec<[f64; 3]>, Vec<f64>) {
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let pts = (0..n).map(|_| [next(), next(), next()]).collect();
    let q = (0..n).map(|_| next() * 2.0 - 1.0).collect();
    (pts, q)
}

fn config(depth: u32, executor: Executor) -> FmmConfig {
    FmmConfig::order(3).depth(depth).executor(executor)
}

fn assert_bitwise(depth: u32, n: usize, workers: &[usize], with_fields: bool) {
    assert_bitwise_bal(depth, n, workers, with_fields, Balance::Uniform);
}

fn assert_bitwise_bal(depth: u32, n: usize, workers: &[usize], with_fields: bool, bal: Balance) {
    fmm_spmd::install();
    let (pts, q) = pseudo_system(n, 0x5eed ^ (depth as u64) << 8 ^ n as u64);
    let serial = Fmm::new(config(depth, Executor::Serial)).unwrap();
    let reference = if with_fields {
        serial.evaluate_forces(&pts, &q).unwrap()
    } else {
        serial.evaluate(&pts, &q).unwrap()
    };
    for &p in workers {
        let fmm = Fmm::new(config(depth, Executor::spmd(p)).balance(bal)).unwrap();
        let out = if with_fields {
            fmm.evaluate_forces(&pts, &q).unwrap()
        } else {
            fmm.evaluate(&pts, &q).unwrap()
        };
        for (i, (a, b)) in reference.potentials.iter().zip(&out.potentials).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "potential {i} differs at p={p}, depth={depth}: {a:e} vs {b:e}"
            );
        }
        match (&reference.fields, &out.fields) {
            (None, None) => {}
            (Some(fa), Some(fb)) => {
                for (i, (a, b)) in fa.iter().zip(fb).enumerate() {
                    for d in 0..3 {
                        assert_eq!(
                            a[d].to_bits(),
                            b[d].to_bits(),
                            "field {i}[{d}] differs at p={p}, depth={depth}"
                        );
                    }
                }
            }
            _ => panic!("fields presence mismatch"),
        }
        assert_eq!(
            reference.near_stats.pair_interactions, out.near_stats.pair_interactions,
            "near pair count differs at p={p}, depth={depth}"
        );
        assert_eq!(
            reference.near_stats.box_pairs, out.near_stats.box_pairs,
            "near box-pair count differs at p={p}, depth={depth}"
        );
        assert_eq!(reference.near_stats.flops, out.near_stats.flops);
        assert_eq!(reference.traversal_flops, out.traversal_flops);
        let rep = out.spmd.expect("spmd run attaches a report");
        assert_eq!(rep.workers, p);
        assert_eq!(rep.worker_busy_ns.len(), p);
        assert_eq!(rep.worker_flops.len(), p);
        match bal {
            Balance::Uniform => assert!(rep.partition.is_none()),
            Balance::CostWeighted => {
                let splits = rep
                    .partition
                    .expect("cost-weighted run records its partition");
                assert_eq!(splits.len(), p + 1);
            }
        }
    }
}

#[test]
fn potentials_depth2_all_worker_counts() {
    assert_bitwise(2, 700, &[1, 2, 4, 8], false);
}

#[test]
fn potentials_depth3_all_worker_counts() {
    assert_bitwise(3, 3000, &[1, 2, 4, 8], false);
}

#[test]
fn potentials_depth4_sparse_boxes() {
    // Fewer particles than leaf boxes: many empty boxes travel and halo
    // cells are empty — the degenerate paths must still match.
    assert_bitwise(4, 900, &[2, 8], false);
}

#[test]
fn forces_depth2_all_worker_counts() {
    assert_bitwise(2, 600, &[1, 2, 4, 8], true);
}

#[test]
fn forces_depth3_all_worker_counts() {
    assert_bitwise(3, 2500, &[1, 2, 4, 8], true);
}

#[test]
fn potentials_depth3_embedded_levels_p64() {
    // p = 64 on a [4,4,4] grid embeds levels 1 (and forces the gather /
    // broadcast transition at level 2↔3 for depth 3).
    assert_bitwise(3, 2000, &[64], false);
}

#[test]
fn potentials_cost_weighted_depth2_all_worker_counts() {
    assert_bitwise_bal(2, 700, &[1, 2, 4, 8], false, Balance::CostWeighted);
}

#[test]
fn potentials_cost_weighted_depth3_all_worker_counts() {
    assert_bitwise_bal(3, 3000, &[1, 2, 4, 8], false, Balance::CostWeighted);
}

#[test]
fn potentials_cost_weighted_depth4_sparse_boxes() {
    assert_bitwise_bal(4, 900, &[2, 8], false, Balance::CostWeighted);
}

#[test]
fn forces_cost_weighted_depth2_all_worker_counts() {
    assert_bitwise_bal(2, 600, &[1, 2, 4, 8], true, Balance::CostWeighted);
}

#[test]
fn forces_cost_weighted_depth3_all_worker_counts() {
    assert_bitwise_bal(3, 2500, &[1, 2, 4, 8], true, Balance::CostWeighted);
}

#[test]
fn oversubscribed_workers_is_an_error() {
    fmm_spmd::install();
    let (pts, q) = pseudo_system(256, 7);
    // depth 2 → 4 boxes per axis; 512 workers → dims [8,8,8] > 4.
    let fmm = Fmm::new(config(2, Executor::spmd(512))).unwrap();
    let err = fmm.evaluate(&pts, &q).unwrap_err();
    assert!(matches!(err, fmm_core::FmmError::InvalidConfig(_)));
}

#[test]
fn forced_kernels_bitwise_across_all_executors() {
    // Satellite invariant of the kernel-dispatch work: for a *fixed*
    // microkernel family, Serial, Rayon and Spmd produce bit-identical
    // results — the family is recorded in the traversal plan and every
    // executor dispatches through it, so distribution and threading move
    // data, never bits. (Different families legitimately differ in
    // rounding; identical families must not.)
    fmm_spmd::install();
    let (pts, q) = pseudo_system(2200, 0xbeef);
    for kernel in fmm_core::Kernel::available() {
        let mk = |ex: Executor| {
            Fmm::new(config(3, ex).kernel(kernel))
                .unwrap()
                .evaluate_forces(&pts, &q)
                .unwrap()
        };
        let serial = mk(Executor::Serial);
        for out in [mk(Executor::Rayon), mk(Executor::spmd(4))] {
            for (a, b) in serial.potentials.iter().zip(&out.potentials) {
                assert_eq!(a.to_bits(), b.to_bits(), "{kernel:?} potential");
            }
            let (fa, fb) = (
                serial.fields.as_ref().unwrap(),
                out.fields.as_ref().unwrap(),
            );
            for (a, b) in fa.iter().zip(fb) {
                for d in 0..3 {
                    assert_eq!(a[d].to_bits(), b[d].to_bits(), "{kernel:?} field");
                }
            }
            assert_eq!(serial.near_stats, out.near_stats, "{kernel:?} counters");
        }
    }
}
