//! Property tests of the SPMD executor and its channel primitives:
//! backend equivalence is bitwise for arbitrary systems, a CSHIFT forward
//! and back is the identity, and the all-to-all router loses nothing.

use std::collections::BTreeMap;

use fmm_core::{Balance, Executor, Fmm, FmmConfig};
use fmm_machine::BlockLayout;
use fmm_spmd::collectives::{all_to_allv, shift_slots, CellParticles, Slot};
use fmm_spmd::{run_workers, vu_grid_for, Partition};
use proptest::prelude::*;

fn system(lo: usize, hi: usize) -> impl Strategy<Value = (Vec<[f64; 3]>, Vec<f64>)> {
    (lo..hi).prop_flat_map(|n| {
        (
            proptest::collection::vec(
                (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0).prop_map(|(x, y, z)| [x, y, z]),
                n,
            ),
            proptest::collection::vec(-2.0f64..2.0, n),
        )
    })
}

/// Splitmix64 — deterministic per-slot contents all workers can rebuild.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn unit(z: u64) -> f64 {
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// The slot that starts at leaf box `b`: 0–3 particles plus accumulators,
/// all a pure function of (b, seed).
fn slot_for(b: usize, seed: u64) -> Slot {
    let h = mix(seed ^ (b as u64).wrapping_mul(0x2545F4914F6CDD1D));
    let cnt = (h % 4) as usize;
    let mut cell = CellParticles::default();
    let mut acc = Vec::new();
    for i in 0..cnt {
        let s = mix(h ^ i as u64);
        cell.xs.push(unit(s));
        cell.ys.push(unit(mix(s)));
        cell.zs.push(unit(mix(mix(s))));
        cell.qs.push(unit(mix(mix(mix(s)))) * 2.0 - 1.0);
        acc.push(unit(s.rotate_left(17)));
    }
    Slot {
        origin: b,
        cell,
        acc,
    }
}

fn flatten(pos: usize, s: &Slot) -> Vec<u64> {
    let mut v = vec![pos as u64, s.origin as u64, s.cell.len() as u64];
    for arr in [&s.cell.xs, &s.cell.ys, &s.cell.zs, &s.cell.qs, &s.acc] {
        v.extend(arr.iter().map(|x| x.to_bits()));
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `Executor::spmd(p)` reproduces `Executor::Serial` bit for bit on
    /// arbitrary particle systems, for every depth, worker count and
    /// balance mode.
    #[test]
    fn spmd_matches_serial_bitwise((pts, q) in system(40, 250),
                                   depth in 2u32..4,
                                   log_p in 0u32..4,
                                   cost_weighted in proptest::bool::ANY) {
        fmm_spmd::install();
        let p = 1usize << log_p;
        let bal = if cost_weighted { Balance::CostWeighted } else { Balance::Uniform };
        let cfg = |e| FmmConfig::order(3).depth(depth).executor(e).balance(bal);
        let serial = Fmm::new(cfg(Executor::Serial)).unwrap()
            .evaluate(&pts, &q).unwrap();
        let spmd = Fmm::new(cfg(Executor::spmd(p))).unwrap()
            .evaluate(&pts, &q).unwrap();
        for (i, (a, b)) in serial.potentials.iter().zip(&spmd.potentials).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(),
                            "particle {} differs at p={} depth={} bal={:?}", i, p, depth, bal);
        }
        prop_assert_eq!(serial.near_stats.pair_interactions,
                        spmd.near_stats.pair_interactions);
    }

    /// A cost-weighted partition is a permutation-free exact cover of the
    /// leaf Morton curve: cuts are monotone from 0 to 8^depth, every leaf
    /// has exactly one owner, and ownership never goes backwards along
    /// the curve — for arbitrary (including zero and heavy-tailed) costs.
    #[test]
    fn cost_weighted_partition_is_exact_monotone_cover(depth in 2u32..4,
                                                       log_p in 0u32..4,
                                                       seed in 0u64..1 << 60,
                                                       tail in 1u64..10_000) {
        let p = 1usize << log_p;
        let leaves = 1u64 << (3 * depth);
        let costs: Vec<u64> = (0..leaves)
            .map(|b| { let h = mix(seed ^ b); if h.is_multiple_of(13) { h % tail } else { h % 7 } })
            .collect();
        let part = Partition::cost_weighted(depth, p, &costs);
        let splits = part.splits();
        prop_assert_eq!(splits.len(), p + 1);
        prop_assert_eq!(splits[0], 0);
        prop_assert_eq!(splits[p], leaves);
        prop_assert!(splits.windows(2).all(|w| w[0] <= w[1]), "monotone cuts");
        let mut covered = 0u64;
        for r in 0..p {
            let range = part.owned_at(r, depth);
            prop_assert_eq!(range.start, splits[r]);
            prop_assert_eq!(range.end, splits[r + 1]);
            for code in range.clone().take(64) {
                prop_assert_eq!(part.leaf_owner(code), r, "leaf {} owner", code);
            }
            covered += range.end - range.start;
        }
        prop_assert_eq!(covered, leaves, "exact cover");
    }

    /// A unit CSHIFT of the travelling slots followed by its inverse puts
    /// every slot back where it started, bit for bit.
    #[test]
    fn cshift_forward_back_is_identity(axis in 0usize..3,
                                       log_p in 0u32..4,
                                       seed in 0u64..1 << 60) {
        let p = 1usize << log_p;
        let grid = vu_grid_for(p);
        let n = 4usize; // depth-2 leaf grid
        let all: Vec<Vec<u64>> = run_workers(grid, |mut ctx| {
            let lay = BlockLayout::new([n; 3], ctx.grid);
            let mut slots: BTreeMap<usize, Slot> = (0..n * n * n)
                .filter(|&b| lay.vu_of([b % n, (b / n) % n, b / (n * n)]) == ctx.rank)
                .map(|b| (b, slot_for(b, seed)))
                .collect();
            shift_slots(&mut ctx, &mut slots, axis, 1, &lay, n);
            shift_slots(&mut ctx, &mut slots, axis, -1, &lay, n);
            slots.iter().flat_map(|(&pos, s)| flatten(pos, s)).collect::<Vec<u64>>()
        });
        let mut merged: Vec<u64> = all.into_iter().flatten().collect();
        // Workers hold disjoint box ranges; re-sorting by leading position
        // (flatten records are self-delimiting, so a stable global sort is
        // easiest done by rebuilding the expected stream).
        let expected: Vec<u64> = (0..n * n * n)
            .flat_map(|b| flatten(b, &slot_for(b, seed)))
            .collect();
        // Collate the merged records into position order.
        let mut records: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let mut i = 0;
        while i < merged.len() {
            let cnt = merged[i + 2] as usize;
            let end = i + 3 + 5 * cnt;
            records.insert(merged[i], merged[i..end].to_vec());
            i = end;
        }
        merged = records.into_values().flatten().collect();
        prop_assert_eq!(merged, expected, "axis={} p={}", axis, p);
    }

    /// The router conserves data: every worker receives exactly the
    /// concatenation, in source-rank order, of what was addressed to it.
    #[test]
    fn all_to_allv_conserves(log_p in 0u32..4, seed in 0u64..1 << 60) {
        let p = 1usize << log_p;
        let grid = vu_grid_for(p);
        // payload(r → s) is a pure function of (r, s, seed).
        let payload = move |r: usize, s: usize| -> Vec<f64> {
            let h = mix(seed ^ (r * 31 + s) as u64);
            (0..(h % 5) as usize).map(|i| unit(mix(h ^ i as u64))).collect()
        };
        let received: Vec<Vec<f64>> = run_workers(grid, |mut ctx| {
            let out: Vec<Vec<f64>> = (0..p).map(|s| payload(ctx.rank, s)).collect();
            all_to_allv(&mut ctx, out)
        });
        for (s, got) in received.iter().enumerate() {
            let want: Vec<f64> = (0..p).flat_map(|r| payload(r, s)).collect();
            prop_assert_eq!(
                got.iter().map(|x| x.to_bits()).collect::<Vec<u64>>(),
                want.iter().map(|x| x.to_bits()).collect::<Vec<u64>>(),
                "receiver {} of {}", s, p
            );
        }
    }

    /// The distributed coordinate sort conserves particles: starting from
    /// an index-block distribution, after the all-to-all every particle
    /// sits on exactly one VU — the one owning its leaf box.
    #[test]
    fn sort_lands_every_particle_on_its_owner((pts, _q) in system(50, 300),
                                              log_p in 0u32..4) {
        let p = 1usize << log_p;
        let grid = vu_grid_for(p);
        let n_axis = 4usize; // depth-2 leaf grid over the unit cube
        let np = pts.len();
        let pts = &pts;
        let landed: Vec<Vec<u64>> = run_workers(grid, |mut ctx| {
            let lay = BlockLayout::new([n_axis; 3], ctx.grid);
            let cell = |q: &[f64; 3]| {
                let c = |x: f64| ((x * n_axis as f64) as usize).min(n_axis - 1);
                [c(q[0]), c(q[1]), c(q[2])]
            };
            // This worker starts with the index block [i0, i1).
            let (i0, i1) = (ctx.rank * np / p, (ctx.rank + 1) * np / p);
            let mut outgoing: Vec<Vec<f64>> = vec![Vec::new(); p];
            for i in i0..i1 {
                outgoing[lay.vu_of(cell(&pts[i]))].push(i as f64);
            }
            let received = all_to_allv(&mut ctx, outgoing);
            // Owner-correctness: everything that arrived belongs here.
            for &idx in &received {
                assert_eq!(lay.vu_of(cell(&pts[idx as usize])), ctx.rank);
            }
            received.iter().map(|&i| i as u64).collect::<Vec<u64>>()
        });
        // Conservation: each original index appears exactly once globally.
        let mut all: Vec<u64> = landed.into_iter().flatten().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..np as u64).collect::<Vec<u64>>(), "p={}", p);
    }
}
