//! Adaptive octree and the Barnes–Hut traversal.

use crate::moments::Moments;
use rayon::prelude::*;

const NO_CHILD: u32 = u32::MAX;

/// One octree node: cubic cell, particle index range (into the reordered
/// index buffer), children, and multipole moments about the cell centre.
#[derive(Debug, Clone)]
struct Node {
    center: [f64; 3],
    half: f64,
    /// Range of `order` covered by this node.
    start: u32,
    end: u32,
    children: [u32; 8],
    moments: Moments,
    is_leaf: bool,
    /// Squared max distance from `center` to any contained particle
    /// (Salmon–Warren-style guard: floating-point rounding at tiny cell
    /// sizes can leave the nominal cell geometry inconsistent with its
    /// contents, so the MAC must also check the *actual* particle radius).
    bmax2: f64,
}

/// Counters from one traversal.
#[derive(Debug, Clone, Copy, Default)]
pub struct BhStats {
    /// Accepted node–particle multipole evaluations.
    pub node_interactions: u64,
    /// Direct particle–particle interactions.
    pub pair_interactions: u64,
}

/// An adaptive Barnes–Hut octree over a particle set.
pub struct BarnesHut {
    nodes: Vec<Node>,
    /// Particle indices reordered so each node's particles are contiguous.
    order: Vec<u32>,
    positions: Vec<[f64; 3]>,
    charges: Vec<f64>,
}

impl BarnesHut {
    /// Build the tree; cells with at most `leaf_cap` particles are leaves.
    pub fn build(positions: &[[f64; 3]], charges: &[f64], leaf_cap: usize) -> Self {
        assert_eq!(positions.len(), charges.len());
        assert!(!positions.is_empty());
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for p in positions {
            for a in 0..3 {
                lo[a] = lo[a].min(p[a]);
                hi[a] = hi[a].max(p[a]);
            }
        }
        let size = (0..3)
            .map(|a| hi[a] - lo[a])
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let center = [
            0.5 * (lo[0] + hi[0]),
            0.5 * (lo[1] + hi[1]),
            0.5 * (lo[2] + hi[2]),
        ];
        let mut bh = BarnesHut {
            nodes: Vec::new(),
            order: (0..positions.len() as u32).collect(),
            positions: positions.to_vec(),
            charges: charges.to_vec(),
        };
        bh.nodes.push(Node {
            center,
            half: 0.5 * size * (1.0 + 1e-12),
            start: 0,
            end: positions.len() as u32,
            children: [NO_CHILD; 8],
            moments: Moments::zero(center),
            is_leaf: true,
            bmax2: 0.0,
        });
        bh.split(0, leaf_cap, 0);
        bh.compute_moments(0);
        bh
    }

    /// Recursively split node `n` while it holds more than `leaf_cap`
    /// particles (depth-capped to avoid pathological coincident points).
    fn split(&mut self, n: usize, leaf_cap: usize, depth: usize) {
        let (start, end) = (self.nodes[n].start as usize, self.nodes[n].end as usize);
        if end - start <= leaf_cap || depth >= 24 {
            return;
        }
        self.nodes[n].is_leaf = false;
        let center = self.nodes[n].center;
        let half = self.nodes[n].half;
        // Partition `order[start..end]` into eight octant groups (stable
        // bucket pass).
        let octant_of = |i: u32| -> usize {
            let p = self.positions[i as usize];
            ((p[0] >= center[0]) as usize)
                | (((p[1] >= center[1]) as usize) << 1)
                | (((p[2] >= center[2]) as usize) << 2)
        };
        let slice = self.order[start..end].to_vec();
        let mut counts = [0usize; 9];
        for &i in &slice {
            counts[octant_of(i) + 1] += 1;
        }
        for o in 0..8 {
            counts[o + 1] += counts[o];
        }
        let mut cursors = counts;
        for &i in &slice {
            let o = octant_of(i);
            self.order[start + cursors[o]] = i;
            cursors[o] += 1;
        }
        for oct in 0..8 {
            let (s, e) = (start + counts[oct], start + counts[oct + 1]);
            if s == e {
                continue;
            }
            let ccenter = [
                center[0] + half * 0.5 * if oct & 1 != 0 { 1.0 } else { -1.0 },
                center[1] + half * 0.5 * if oct & 2 != 0 { 1.0 } else { -1.0 },
                center[2] + half * 0.5 * if oct & 4 != 0 { 1.0 } else { -1.0 },
            ];
            let ci = self.nodes.len();
            self.nodes.push(Node {
                center: ccenter,
                half: half * 0.5,
                start: s as u32,
                end: e as u32,
                children: [NO_CHILD; 8],
                moments: Moments::zero(ccenter),
                is_leaf: true,
                bmax2: 0.0,
            });
            self.nodes[n].children[oct] = ci as u32;
            self.split(ci, leaf_cap, depth + 1);
        }
    }

    /// Post-order moment computation: leaves from particles, interior nodes
    /// by merging children (the parallel-axis shift of `Moments::merge`).
    fn compute_moments(&mut self, n: usize) {
        if self.nodes[n].is_leaf {
            let (start, end) = (self.nodes[n].start as usize, self.nodes[n].end as usize);
            let mut m = Moments::zero(self.nodes[n].center);
            let mut bmax2 = 0.0f64;
            for s in start..end {
                let i = self.order[s] as usize;
                m.add_particle(self.positions[i], self.charges[i]);
                let p = self.positions[i];
                let c = self.nodes[n].center;
                let d = [p[0] - c[0], p[1] - c[1], p[2] - c[2]];
                bmax2 = bmax2.max(d[0] * d[0] + d[1] * d[1] + d[2] * d[2]);
            }
            self.nodes[n].moments = m;
            self.nodes[n].bmax2 = bmax2;
        } else {
            let children = self.nodes[n].children;
            let mut m = Moments::zero(self.nodes[n].center);
            let mut bmax = 0.0f64;
            for &c in &children {
                if c != NO_CHILD {
                    self.compute_moments(c as usize);
                    let child = &self.nodes[c as usize];
                    m.merge(&child.moments);
                    let me = self.nodes[n].center;
                    let d = [
                        child.moments.center[0] - me[0],
                        child.moments.center[1] - me[1],
                        child.moments.center[2] - me[2],
                    ];
                    let dist = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                    bmax = bmax.max(dist + child.bmax2.sqrt());
                }
            }
            self.nodes[n].moments = m;
            self.nodes[n].bmax2 = bmax * bmax;
        }
    }

    /// Number of tree nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Potential (and optionally field) at one absolute point; `skip` is a
    /// particle index excluded from direct interactions (usually the target
    /// itself), or `usize::MAX`.
    fn eval_point(
        &self,
        x: [f64; 3],
        theta: f64,
        skip: usize,
        with_field: bool,
    ) -> (f64, [f64; 3], BhStats) {
        let mut pot = 0.0;
        let mut field = [0.0; 3];
        let mut stats = BhStats::default();
        let mut stack: Vec<u32> = vec![0];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n as usize];
            let d = [
                x[0] - node.center[0],
                x[1] - node.center[1],
                x[2] - node.center[2],
            ];
            let dist2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
            let s = 2.0 * node.half; // cell side
                                     // MAC: s / dist < θ (θ = 0 never accepts), guarded by the
                                     // particle radius: never accept a node whose particles could
                                     // be as close as the evaluation distance.
                                     // The radius guard requires dist > 2·bmax; for θ ≤ 1 this is
                                     // already implied by the cell-based MAC whenever the cell
                                     // geometry is consistent (bmax ≤ (√3/2)s), so it only bites in
                                     // the degenerate rounding case.
            if !node.is_leaf && s * s < theta * theta * dist2 && 4.0 * node.bmax2 < dist2 {
                pot += node.moments.potential(x);
                if with_field {
                    let f = node.moments.field(x);
                    for a in 0..3 {
                        field[a] += f[a];
                    }
                }
                stats.node_interactions += 1;
            } else if node.is_leaf {
                for s in node.start..node.end {
                    let i = self.order[s as usize] as usize;
                    if i == skip {
                        continue;
                    }
                    let dv = [
                        x[0] - self.positions[i][0],
                        x[1] - self.positions[i][1],
                        x[2] - self.positions[i][2],
                    ];
                    let r2 = dv[0] * dv[0] + dv[1] * dv[1] + dv[2] * dv[2];
                    if r2 == 0.0 {
                        continue;
                    }
                    let inv_r = 1.0 / r2.sqrt();
                    let qr = self.charges[i] * inv_r;
                    pot += qr;
                    if with_field {
                        let qr3 = qr * inv_r * inv_r;
                        for a in 0..3 {
                            field[a] += qr3 * dv[a];
                        }
                    }
                    stats.pair_interactions += 1;
                }
            } else {
                for &c in &node.children {
                    if c != NO_CHILD {
                        stack.push(c);
                    }
                }
            }
        }
        (pot, field, stats)
    }

    /// Potentials at all particles (parallel over targets). Returns the
    /// potentials and aggregate traversal counters.
    pub fn potentials(&self, theta: f64, with_field: bool) -> (Vec<f64>, BhStats) {
        let n = self.positions.len();
        let results: Vec<(f64, BhStats)> = (0..n)
            .into_par_iter()
            .map(|i| {
                let (p, _, s) = self.eval_point(self.positions[i], theta, i, with_field);
                (p, s)
            })
            .collect();
        let mut stats = BhStats::default();
        let mut pot = Vec::with_capacity(n);
        for (p, s) in results {
            pot.push(p);
            stats.node_interactions += s.node_interactions;
            stats.pair_interactions += s.pair_interactions;
        }
        (pot, stats)
    }

    /// Potentials and fields at all particles.
    pub fn potentials_and_fields(&self, theta: f64) -> (Vec<f64>, Vec<[f64; 3]>, BhStats) {
        let n = self.positions.len();
        let results: Vec<(f64, [f64; 3], BhStats)> = (0..n)
            .into_par_iter()
            .map(|i| self.eval_point(self.positions[i], theta, i, true))
            .collect();
        let mut stats = BhStats::default();
        let mut pot = Vec::with_capacity(n);
        let mut field = Vec::with_capacity(n);
        for (p, f, s) in results {
            pot.push(p);
            field.push(f);
            stats.node_interactions += s.node_interactions;
            stats.pair_interactions += s.pair_interactions;
        }
        (pot, field, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_partitions_particles() {
        let pts = vec![
            [0.1, 0.1, 0.1],
            [0.9, 0.9, 0.9],
            [0.1, 0.9, 0.1],
            [0.9, 0.1, 0.9],
            [0.5, 0.5, 0.5],
        ];
        let q = vec![1.0; 5];
        let bh = BarnesHut::build(&pts, &q, 1);
        // Root covers everything; every particle appears exactly once.
        let mut sorted = bh.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        assert!(bh.node_count() > 1);
    }

    #[test]
    fn root_moments_total_charge() {
        let pts = vec![[0.2, 0.3, 0.4], [0.8, 0.7, 0.6], [0.5, 0.1, 0.9]];
        let q = vec![1.0, 2.0, 3.0];
        let bh = BarnesHut::build(&pts, &q, 1);
        assert!((bh.nodes[0].moments.q - 6.0).abs() < 1e-13);
    }

    #[test]
    fn coincident_points_do_not_hang() {
        let pts = vec![[0.5, 0.5, 0.5]; 20];
        let q = vec![1.0; 20];
        let bh = BarnesHut::build(&pts, &q, 2);
        let (pot, _) = bh.potentials(0.5, false);
        // All pairwise distances are zero — skipped — so potentials are 0.
        assert!(pot.iter().all(|p| *p == 0.0), "pot = {:?}", &pot[..3]);
    }

    #[test]
    fn field_consistent_with_potential() {
        let pts = vec![
            [0.1, 0.2, 0.3],
            [0.7, 0.6, 0.2],
            [0.4, 0.9, 0.8],
            [0.85, 0.15, 0.55],
        ];
        let q = vec![1.0, 2.0, 1.5, 0.5];
        let bh = BarnesHut::build(&pts, &q, 1);
        let x = [0.0, -0.5, 1.5]; // off-particle evaluation point
        let theta = 0.5;
        let (p0, f, _) = bh.eval_point(x, theta, usize::MAX, true);
        assert!(p0.is_finite());
        let h = 1e-6;
        for a in 0..3 {
            let mut xp = x;
            xp[a] += h;
            let mut xm = x;
            xm[a] -= h;
            let (pp, _, _) = bh.eval_point(xp, theta, usize::MAX, false);
            let (pm, _, _) = bh.eval_point(xm, theta, usize::MAX, false);
            let fd = -(pp - pm) / (2.0 * h);
            // MAC decisions can flip between xp and xm for a pathological h,
            // but at this geometry they do not; tolerance is loose anyway.
            assert!((fd - f[a]).abs() < 1e-5, "axis {}: {} vs {}", a, fd, f[a]);
        }
    }
}
