//! Multipole moments of a particle cluster about an expansion centre:
//! monopole, dipole, and traceless quadrupole.

/// Moments about `center`: Φ(x) ≈ Q/r + D·x̂/r² + x̂ᵀ𝑸x̂ / (2r³), with
/// x measured from the centre and 𝑸 the traceless quadrupole tensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Moments {
    pub center: [f64; 3],
    /// Monopole Σq.
    pub q: f64,
    /// Dipole Σq·d.
    pub dipole: [f64; 3],
    /// Traceless quadrupole Σq(3 d dᵀ − |d|² I), symmetric, stored as
    /// [xx, yy, zz, xy, xz, yz].
    pub quad: [f64; 6],
}

impl Moments {
    /// Zero moments about a centre.
    pub fn zero(center: [f64; 3]) -> Self {
        Moments {
            center,
            q: 0.0,
            dipole: [0.0; 3],
            quad: [0.0; 6],
        }
    }

    /// Accumulate one particle.
    pub fn add_particle(&mut self, x: [f64; 3], q: f64) {
        let d = [
            x[0] - self.center[0],
            x[1] - self.center[1],
            x[2] - self.center[2],
        ];
        let d2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
        self.q += q;
        for (da, &dv) in self.dipole.iter_mut().zip(&d) {
            *da += q * dv;
        }
        self.quad[0] += q * (3.0 * d[0] * d[0] - d2);
        self.quad[1] += q * (3.0 * d[1] * d[1] - d2);
        self.quad[2] += q * (3.0 * d[2] * d[2] - d2);
        self.quad[3] += q * 3.0 * d[0] * d[1];
        self.quad[4] += q * 3.0 * d[0] * d[2];
        self.quad[5] += q * 3.0 * d[1] * d[2];
    }

    /// Potential of the truncated expansion at an absolute point `x`.
    pub fn potential(&self, x: [f64; 3]) -> f64 {
        let r = [
            x[0] - self.center[0],
            x[1] - self.center[1],
            x[2] - self.center[2],
        ];
        let r2 = r[0] * r[0] + r[1] * r[1] + r[2] * r[2];
        let inv_r = 1.0 / r2.sqrt();
        let inv_r3 = inv_r * inv_r * inv_r;
        let mono = self.q * inv_r;
        let dip = (self.dipole[0] * r[0] + self.dipole[1] * r[1] + self.dipole[2] * r[2]) * inv_r3;
        // x̂ᵀ𝑸x̂/(2r³) = rᵀ𝑸r/(2r⁵)
        let rqr = self.quad[0] * r[0] * r[0]
            + self.quad[1] * r[1] * r[1]
            + self.quad[2] * r[2] * r[2]
            + 2.0
                * (self.quad[3] * r[0] * r[1]
                    + self.quad[4] * r[0] * r[2]
                    + self.quad[5] * r[1] * r[2]);
        let quad = 0.5 * rqr * inv_r3 * inv_r * inv_r;
        mono + dip + quad
    }

    /// Field −∇Φ of the truncated expansion at an absolute point `x`.
    pub fn field(&self, x: [f64; 3]) -> [f64; 3] {
        let r = [
            x[0] - self.center[0],
            x[1] - self.center[1],
            x[2] - self.center[2],
        ];
        let r2 = r[0] * r[0] + r[1] * r[1] + r[2] * r[2];
        let inv_r = 1.0 / r2.sqrt();
        let inv_r2 = inv_r * inv_r;
        let inv_r3 = inv_r2 * inv_r;
        let inv_r5 = inv_r3 * inv_r2;
        let inv_r7 = inv_r5 * inv_r2;
        let mut f = [0.0; 3];
        // Monopole: −∇(Q/r) = Q r / r³.
        for a in 0..3 {
            f[a] += self.q * r[a] * inv_r3;
        }
        // Dipole: −∇(D·r/r³) = 3(D·r) r /r⁵ − D/r³.
        let dr = self.dipole[0] * r[0] + self.dipole[1] * r[1] + self.dipole[2] * r[2];
        for a in 0..3 {
            f[a] += 3.0 * dr * r[a] * inv_r5 - self.dipole[a] * inv_r3;
        }
        // Quadrupole: Φ = rᵀ𝑸r/(2r⁵); −∇ = (5/2)(rᵀ𝑸r) r/r⁷ − 𝑸r/r⁵.
        let qr = [
            self.quad[0] * r[0] + self.quad[3] * r[1] + self.quad[4] * r[2],
            self.quad[3] * r[0] + self.quad[1] * r[1] + self.quad[5] * r[2],
            self.quad[4] * r[0] + self.quad[5] * r[1] + self.quad[2] * r[2],
        ];
        let rqr = qr[0] * r[0] + qr[1] * r[1] + qr[2] * r[2];
        for a in 0..3 {
            f[a] += 2.5 * rqr * r[a] * inv_r7 - qr[a] * inv_r5;
        }
        f
    }

    /// Merge another cluster's moments (about a possibly different centre)
    /// into this one (standard parallel-axis shift).
    pub fn merge(&mut self, other: &Moments) {
        let d = [
            other.center[0] - self.center[0],
            other.center[1] - self.center[1],
            other.center[2] - self.center[2],
        ];
        let d2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
        // Shift other's moments to self.center:
        // Q' = Q
        // D' = D + Q d
        // quad'_ab = quad_ab + 3(D_a d_b + D_b d_a) − 2(D·d)δ_ab
        //            + Q(3 d_a d_b − d² δ_ab)
        let dd = other.dipole[0] * d[0] + other.dipole[1] * d[1] + other.dipole[2] * d[2];
        let pairs = [
            (0, 0, 0),
            (1, 1, 1),
            (2, 2, 2),
            (3, 0, 1),
            (4, 0, 2),
            (5, 1, 2),
        ];
        for &(idx, a, b) in &pairs {
            let delta = if a == b { 1.0 } else { 0.0 };
            self.quad[idx] += other.quad[idx]
                + 3.0 * (other.dipole[a] * d[b] + other.dipole[b] * d[a])
                - 2.0 * dd * delta
                + other.q * (3.0 * d[a] * d[b] - d2 * delta);
        }
        for ((da, &oa), &dv) in self.dipole.iter_mut().zip(&other.dipole).zip(&d) {
            *da += oa + other.q * dv;
        }
        self.q += other.q;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> (Vec<[f64; 3]>, Vec<f64>) {
        (
            vec![
                [0.1, 0.0, -0.05],
                [-0.08, 0.12, 0.02],
                [0.03, -0.1, 0.07],
                [-0.02, 0.05, -0.09],
            ],
            vec![1.0, 2.0, -0.5, 1.5],
        )
    }

    fn exact(pos: &[[f64; 3]], q: &[f64], x: [f64; 3]) -> f64 {
        pos.iter()
            .zip(q)
            .map(|(p, q)| {
                let d = [x[0] - p[0], x[1] - p[1], x[2] - p[2]];
                q / (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt()
            })
            .sum()
    }

    #[test]
    fn quadrupole_expansion_converges_cubically() {
        let (pos, q) = cluster();
        let mut m = Moments::zero([0.0; 3]);
        for (p, qq) in pos.iter().zip(&q) {
            m.add_particle(*p, *qq);
        }
        // Error should fall like (cluster size / r)^3 relative.
        let mut last = f64::INFINITY;
        for &r in &[1.0, 2.0, 4.0, 8.0] {
            let x = [r, 0.3 * r, -0.2 * r];
            let e = (m.potential(x) - exact(&pos, &q, x)).abs() / exact(&pos, &q, x).abs();
            assert!(e < last * 0.3, "r={}: {} vs {}", r, e, last);
            last = e;
        }
        // Octupole truncation: (cluster radius / r)³ relative ≈ 1e-5 at
        // r = 8 for this cluster.
        assert!(last < 1e-5);
    }

    #[test]
    fn single_particle_is_exact_through_quadrupole() {
        let mut m = Moments::zero([0.5, 0.5, 0.5]);
        m.add_particle([0.5, 0.5, 0.5], 2.0);
        // particle at the centre: pure monopole.
        let x = [1.5, 0.5, 0.5];
        assert!((m.potential(x) - 2.0).abs() < 1e-14);
    }

    #[test]
    fn field_matches_finite_difference() {
        let (pos, q) = cluster();
        let mut m = Moments::zero([0.0; 3]);
        for (p, qq) in pos.iter().zip(&q) {
            m.add_particle(*p, *qq);
        }
        let x = [1.3, -0.7, 0.9];
        let f = m.field(x);
        let h = 1e-6;
        for a in 0..3 {
            let mut xp = x;
            xp[a] += h;
            let mut xm = x;
            xm[a] -= h;
            let fd = -(m.potential(xp) - m.potential(xm)) / (2.0 * h);
            assert!((fd - f[a]).abs() < 1e-7, "axis {}: {} vs {}", a, fd, f[a]);
        }
    }

    #[test]
    fn merge_equals_rebuild() {
        let (pos, q) = cluster();
        // Build two half-clusters about different centres, merge into a
        // third centre, compare against direct accumulation there.
        let c = [0.3, -0.2, 0.1];
        let mut direct = Moments::zero(c);
        for (p, qq) in pos.iter().zip(&q) {
            direct.add_particle(*p, *qq);
        }
        let mut m1 = Moments::zero([0.05, 0.0, 0.0]);
        m1.add_particle(pos[0], q[0]);
        m1.add_particle(pos[1], q[1]);
        let mut m2 = Moments::zero([-0.02, 0.01, 0.0]);
        m2.add_particle(pos[2], q[2]);
        m2.add_particle(pos[3], q[3]);
        let mut merged = Moments::zero(c);
        merged.merge(&m1);
        merged.merge(&m2);
        assert!((merged.q - direct.q).abs() < 1e-13);
        for a in 0..3 {
            assert!((merged.dipole[a] - direct.dipole[a]).abs() < 1e-13);
        }
        for i in 0..6 {
            assert!(
                (merged.quad[i] - direct.quad[i]).abs() < 1e-12,
                "quad[{}]: {} vs {}",
                i,
                merged.quad[i],
                direct.quad[i]
            );
        }
    }

    #[test]
    fn quadrupole_is_traceless() {
        let (pos, q) = cluster();
        let mut m = Moments::zero([0.1, 0.1, 0.1]);
        for (p, qq) in pos.iter().zip(&q) {
            m.add_particle(*p, *qq);
        }
        assert!((m.quad[0] + m.quad[1] + m.quad[2]).abs() < 1e-13);
    }
}
