//! # fmm-bh — Barnes–Hut O(N log N) baseline
//!
//! The comparison class of the paper's Table 1 (Salmon & Warren, Liu &
//! Bhatt: "BH, quadrupole"): an adaptive octree with monopole + dipole +
//! quadrupole node moments and the classic s/d < θ multipole acceptance
//! criterion. Dipole terms are kept (rather than expanding about the
//! centre of mass) so mixed-sign charge systems are handled exactly as
//! well as gravitational ones.

#![forbid(unsafe_code)]

pub mod moments;
pub mod tree;

pub use moments::Moments;
pub use tree::{BarnesHut, BhStats};

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_system(n: usize, seed: u64) -> (Vec<[f64; 3]>, Vec<f64>) {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<[f64; 3]> = (0..n).map(|_| [next(), next(), next()]).collect();
        let q: Vec<f64> = (0..n).map(|_| 0.5 + next()).collect();
        (pts, q)
    }

    fn direct(positions: &[[f64; 3]], charges: &[f64]) -> Vec<f64> {
        let n = positions.len();
        let mut out = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let d = [
                    positions[i][0] - positions[j][0],
                    positions[i][1] - positions[j][1],
                    positions[i][2] - positions[j][2],
                ];
                out[i] += charges[j] / (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            }
        }
        out
    }

    #[test]
    fn accuracy_improves_with_smaller_theta() {
        let (pts, q) = pseudo_system(800, 3);
        let reference = direct(&pts, &q);
        let mut last = f64::INFINITY;
        for &theta in &[1.0, 0.6, 0.3] {
            let bh = BarnesHut::build(&pts, &q, 16);
            let (pot, _) = bh.potentials(theta, false);
            let err: f64 = pot
                .iter()
                .zip(&reference)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
                / reference.iter().map(|b| b * b).sum::<f64>().sqrt();
            assert!(err < last, "θ={}: err {} not below {}", theta, err, last);
            assert!(err < 1e-2, "θ={}: err {}", theta, err);
            last = err;
        }
        assert!(last < 1e-4, "θ=0.3 err {}", last);
    }

    #[test]
    fn theta_zero_equals_direct() {
        let (pts, q) = pseudo_system(200, 5);
        let reference = direct(&pts, &q);
        let bh = BarnesHut::build(&pts, &q, 8);
        let (pot, stats) = bh.potentials(0.0, false);
        for (a, b) in pot.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-10 * b.abs().max(1.0));
        }
        // θ = 0 never accepts a multipole.
        assert_eq!(stats.node_interactions, 0);
    }

    #[test]
    fn stats_count_work() {
        let (pts, q) = pseudo_system(1000, 7);
        let bh = BarnesHut::build(&pts, &q, 16);
        let (_, s1) = bh.potentials(0.4, false);
        let (_, s2) = bh.potentials(0.9, false);
        // Larger θ accepts nodes earlier and does less direct work. (The
        // node-interaction count is not monotone in θ once the bmax radius
        // guard binds, so only the direct-work claim is asserted.)
        assert!(s2.pair_interactions < s1.pair_interactions);
        assert!(s1.node_interactions > 0 && s2.node_interactions > 0);
    }
}
