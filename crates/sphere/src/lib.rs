//! # fmm-sphere — sphere quadrature and Anderson's computational elements
//!
//! Anderson's variant of the fast multipole method ("an implementation of
//! the fast multipole method without multipoles") represents the far field
//! of a particle cluster by *potential samples on a sphere* plus Poisson's
//! formula, instead of multipole coefficients. This crate provides:
//!
//! * Legendre polynomials and derivatives ([`legendre`]),
//! * Gauss–Legendre nodes/weights ([`gauss`]),
//! * quadrature rules on the unit sphere exact to a chosen polynomial
//!   degree D ([`quadrature`]): polyhedral designs (tetrahedron,
//!   octahedron, cube, icosahedron) and Gauss×trapezoid product rules for
//!   arbitrary D,
//! * the outer (far-field) and inner (local-field) sphere approximations of
//!   Anderson's method, including analytic gradients ([`approximation`]),
//! * solid harmonics used to test quadrature exactness ([`harmonics`]).
//!
//! ## Conventions
//!
//! Quadrature weights are normalized to sum to **1** (they compute the
//! *spherical mean*), which absorbs the 1/4π factor of Poisson's formula:
//!
//! outer:  Φ(x) ≈ Σᵢ \[ Σₙ₌₀^M (2n+1) (a/r)ⁿ⁺¹ Pₙ(sᵢ·x̂) \] g(a sᵢ) wᵢ
//!
//! inner:  Ψ(x) ≈ Σᵢ \[ Σₙ₌₀^M (2n+1) (r/a)ⁿ   Pₙ(sᵢ·x̂) \] g(a sᵢ) wᵢ
//!
//! With these conventions a unit point charge at the sphere centre, sampled
//! as g = 1/a, reproduces Φ(x) = 1/r exactly from the n = 0 term alone —
//! the first unit test of the crate.

#![forbid(unsafe_code)]

pub mod approximation;
pub mod gauss;
pub mod harmonics;
pub mod legendre;
pub mod quadrature;

pub use approximation::{
    inner_kernel_row, inner_kernel_row_grad, outer_kernel_row, outer_kernel_row_grad, InnerApprox,
    OuterApprox,
};
pub use quadrature::{SphereRule, SphereRuleKind};

/// A point or vector in 3-space. A plain array keeps the crate
/// dependency-free and lets slices of points be viewed as flat f64 buffers.
pub type Vec3 = [f64; 3];

/// Euclidean norm.
#[inline]
pub fn norm(v: Vec3) -> f64 {
    (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt()
}

/// Dot product.
#[inline]
pub fn dot(a: Vec3, b: Vec3) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

/// `a - b`.
#[inline]
pub fn sub(a: Vec3, b: Vec3) -> Vec3 {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

/// `a + b`.
#[inline]
pub fn add(a: Vec3, b: Vec3) -> Vec3 {
    [a[0] + b[0], a[1] + b[1], a[2] + b[2]]
}

/// `s * a`.
#[inline]
pub fn scale(a: Vec3, s: f64) -> Vec3 {
    [a[0] * s, a[1] * s, a[2] * s]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_ops() {
        let a = [1.0, 2.0, 2.0];
        assert!((norm(a) - 3.0).abs() < 1e-15);
        assert_eq!(dot(a, [1.0, 0.0, 0.0]), 1.0);
        assert_eq!(sub(a, a), [0.0; 3]);
        assert_eq!(add(a, scale(a, -1.0)), [0.0; 3]);
    }
}
