//! Anderson's outer- and inner-sphere approximations.
//!
//! The *outer* approximation represents the potential field **outside** a
//! sphere of radius `a` due to sources inside it, from K samples of the
//! potential on the sphere (paper eq. (15)):
//!
//!   Φ(x) ≈ Σᵢ \[ Σₙ₌₀^M (2n+1)(a/r)ⁿ⁺¹ Pₙ(sᵢ·x̂) \] g(a sᵢ) wᵢ ,  r = |x| > a
//!
//! The *inner* approximation represents the potential **inside** the sphere
//! due to sources far outside it (paper eq. (16); interior Poisson kernel,
//! exponent n — see the crate docs for the OCR note):
//!
//!   Ψ(x) ≈ Σᵢ \[ Σₙ₌₀^M (2n+1)(r/a)ⁿ Pₙ(sᵢ·x̂) \] g(a sᵢ) wᵢ ,  r = |x| < a
//!
//! Both are *linear* in the samples g, which is why every translation
//! operator of the method is a K×K matrix: its (j,i) entry is the kernel
//! row of destination point j against source point i. This module provides
//! the kernel rows (and their gradients for force evaluation) plus
//! convenience wrapper types used by examples and tests.

use crate::legendre::{legendre_all, legendre_all_with_deriv};
use crate::quadrature::SphereRule;
use crate::{dot, norm, scale, sub, Vec3};

/// Scratch space for kernel evaluation, reusable across calls to avoid
/// allocation in hot loops.
#[derive(Debug, Clone)]
pub struct KernelScratch {
    p: Vec<f64>,
    dp: Vec<f64>,
    powers: Vec<f64>,
}

impl KernelScratch {
    pub fn new(m: usize) -> Self {
        KernelScratch {
            p: vec![0.0; m + 1],
            dp: vec![0.0; m + 1],
            powers: vec![0.0; m + 2],
        }
    }
}

/// Fill `row[i] = wᵢ Σₙ₌₀^M (2n+1)(a/r)ⁿ⁺¹ Pₙ(sᵢ·x̂)` so that the outer
/// approximation at `x` (relative to the sphere centre) is `row · g`.
///
/// Panics (debug) if `x` is at the centre; callers must guarantee `r > 0`
/// (the outer element is only ever evaluated in the far field).
pub fn outer_kernel_row(rule: &SphereRule, m: usize, a: f64, x: Vec3, row: &mut [f64]) {
    debug_assert_eq!(row.len(), rule.len());
    let r = norm(x);
    debug_assert!(r > 0.0, "outer approximation evaluated at the centre");
    let xhat = scale(x, 1.0 / r);
    let t = a / r;
    let mut scratch = KernelScratch::new(m);
    // powers[n] = t^{n+1}
    let mut tp = t;
    for n in 0..=m {
        scratch.powers[n] = tp;
        tp *= t;
    }
    for (i, (&s, &w)) in rule.points.iter().zip(&rule.weights).enumerate() {
        let u = dot(s, xhat).clamp(-1.0, 1.0);
        legendre_all(m, u, &mut scratch.p);
        let mut acc = 0.0;
        for n in 0..=m {
            acc += (2 * n + 1) as f64 * scratch.powers[n] * scratch.p[n];
        }
        row[i] = acc * w;
    }
}

/// Fill `row[i] = wᵢ Σₙ₌₀^M (2n+1)(r/a)ⁿ Pₙ(sᵢ·x̂)` so that the inner
/// approximation at `x` (relative to the sphere centre) is `row · g`.
///
/// Well-defined at the centre (only the n = 0 term survives: the value at
/// the centre of a harmonic function is its spherical mean).
pub fn inner_kernel_row(rule: &SphereRule, m: usize, a: f64, x: Vec3, row: &mut [f64]) {
    debug_assert_eq!(row.len(), rule.len());
    let r = norm(x);
    if r == 0.0 {
        for (ri, &w) in row.iter_mut().zip(&rule.weights) {
            *ri = w;
        }
        return;
    }
    let xhat = scale(x, 1.0 / r);
    let t = r / a;
    let mut scratch = KernelScratch::new(m);
    // powers[n] = t^n
    let mut tp = 1.0;
    for n in 0..=m {
        scratch.powers[n] = tp;
        tp *= t;
    }
    for (i, (&s, &w)) in rule.points.iter().zip(&rule.weights).enumerate() {
        let u = dot(s, xhat).clamp(-1.0, 1.0);
        legendre_all(m, u, &mut scratch.p);
        let mut acc = 0.0;
        for n in 0..=m {
            acc += (2 * n + 1) as f64 * scratch.powers[n] * scratch.p[n];
        }
        row[i] = acc * w;
    }
}

/// Gradient version of [`outer_kernel_row`]: fills `rows[d][i]` with
/// ∂/∂x_d of the outer kernel, so that ∇Φ(x) = (rows[0]·g, rows[1]·g,
/// rows[2]·g).
pub fn outer_kernel_row_grad(
    rule: &SphereRule,
    m: usize,
    a: f64,
    x: Vec3,
    rows: &mut [Vec<f64>; 3],
) {
    let r = norm(x);
    debug_assert!(r > 0.0);
    let xhat = scale(x, 1.0 / r);
    let t = a / r;
    let mut scratch = KernelScratch::new(m);
    let mut tp = t;
    for n in 0..=m {
        scratch.powers[n] = tp; // t^{n+1}
        tp *= t;
    }
    for (i, (&s, &w)) in rule.points.iter().zip(&rule.weights).enumerate() {
        let u = dot(s, xhat).clamp(-1.0, 1.0);
        legendre_all_with_deriv(m, u, &mut scratch.p, &mut scratch.dp);
        // dΦ/dx = Σₙ (2n+1) t^{n+1} [ −(n+1)/r Pₙ(u) x̂ + Pₙ'(u)(s − u x̂)/r ]
        let mut cr = 0.0; // coefficient of x̂ / r
        let mut cs = 0.0; // coefficient of (s − u x̂) / r
        for n in 0..=m {
            let c = (2 * n + 1) as f64 * scratch.powers[n];
            cr -= c * (n + 1) as f64 * scratch.p[n];
            cs += c * scratch.dp[n];
        }
        for d in 0..3 {
            rows[d][i] = w * (cr * xhat[d] + cs * (s[d] - u * xhat[d])) / r;
        }
    }
}

/// Gradient version of [`inner_kernel_row`]. Well-defined at the centre
/// (where only the n = 1 term contributes: ∇ = 3 sᵢ / a).
pub fn inner_kernel_row_grad(
    rule: &SphereRule,
    m: usize,
    a: f64,
    x: Vec3,
    rows: &mut [Vec<f64>; 3],
) {
    let r = norm(x);
    if r == 0.0 {
        for (i, (&s, &w)) in rule.points.iter().zip(&rule.weights).enumerate() {
            for d in 0..3 {
                rows[d][i] = if m >= 1 { w * 3.0 * s[d] / a } else { 0.0 };
            }
        }
        return;
    }
    let xhat = scale(x, 1.0 / r);
    let mut scratch = KernelScratch::new(m);
    // powers[n] = r^{n-1} / a^n  (for n ≥ 1); n = 0 term has zero gradient.
    let mut tp = 1.0 / a;
    for n in 1..=m {
        scratch.powers[n] = tp;
        tp *= r / a;
    }
    for (i, (&s, &w)) in rule.points.iter().zip(&rule.weights).enumerate() {
        let u = dot(s, xhat).clamp(-1.0, 1.0);
        legendre_all_with_deriv(m, u, &mut scratch.p, &mut scratch.dp);
        // ∇[(r/a)ⁿ Pₙ(u)] = r^{n−1}/aⁿ [ n Pₙ(u) x̂ + Pₙ'(u)(s − u x̂) ]
        let mut gx = [0.0; 3];
        for n in 1..=m {
            let c = (2 * n + 1) as f64 * scratch.powers[n];
            let cn = c * n as f64 * scratch.p[n];
            let cd = c * scratch.dp[n];
            for d in 0..3 {
                gx[d] += cn * xhat[d] + cd * (s[d] - u * xhat[d]);
            }
        }
        for d in 0..3 {
            rows[d][i] = w * gx[d];
        }
    }
}

/// An outer (far-field) sphere approximation: centre, radius, and the K
/// potential samples on the sphere.
#[derive(Debug, Clone)]
pub struct OuterApprox {
    pub center: Vec3,
    pub radius: f64,
    pub g: Vec<f64>,
}

impl OuterApprox {
    /// Construct from point sources (positions absolute, charges q):
    /// g_i = Σ_j q_j / |a sᵢ + c − x_j|.
    pub fn from_particles(
        rule: &SphereRule,
        center: Vec3,
        radius: f64,
        positions: &[Vec3],
        charges: &[f64],
    ) -> Self {
        assert_eq!(positions.len(), charges.len());
        let g = rule
            .points
            .iter()
            .map(|&s| {
                let sp = [
                    center[0] + radius * s[0],
                    center[1] + radius * s[1],
                    center[2] + radius * s[2],
                ];
                positions
                    .iter()
                    .zip(charges)
                    .map(|(&x, &q)| q / norm(sub(sp, x)))
                    .sum()
            })
            .collect();
        OuterApprox { center, radius, g }
    }

    /// Evaluate the approximation at an absolute point `x` outside the
    /// sphere, truncating the Legendre series at `m`.
    pub fn evaluate(&self, rule: &SphereRule, m: usize, x: Vec3) -> f64 {
        let mut row = vec![0.0; rule.len()];
        outer_kernel_row(rule, m, self.radius, sub(x, self.center), &mut row);
        row.iter().zip(&self.g).map(|(r, g)| r * g).sum()
    }

    /// Gradient of the approximation at an absolute point `x`.
    pub fn evaluate_grad(&self, rule: &SphereRule, m: usize, x: Vec3) -> Vec3 {
        let mut rows = [
            vec![0.0; rule.len()],
            vec![0.0; rule.len()],
            vec![0.0; rule.len()],
        ];
        outer_kernel_row_grad(rule, m, self.radius, sub(x, self.center), &mut rows);
        let mut g = [0.0; 3];
        for d in 0..3 {
            g[d] = rows[d].iter().zip(&self.g).map(|(r, gg)| r * gg).sum();
        }
        g
    }
}

/// An inner (local-field) sphere approximation: centre, radius, and the K
/// potential samples on the sphere.
#[derive(Debug, Clone)]
pub struct InnerApprox {
    pub center: Vec3,
    pub radius: f64,
    pub g: Vec<f64>,
}

impl InnerApprox {
    /// Construct from far sources by sampling their exact potential on the
    /// sphere.
    pub fn from_particles(
        rule: &SphereRule,
        center: Vec3,
        radius: f64,
        positions: &[Vec3],
        charges: &[f64],
    ) -> Self {
        let g = rule
            .points
            .iter()
            .map(|&s| {
                let sp = [
                    center[0] + radius * s[0],
                    center[1] + radius * s[1],
                    center[2] + radius * s[2],
                ];
                positions
                    .iter()
                    .zip(charges)
                    .map(|(&x, &q)| q / norm(sub(sp, x)))
                    .sum()
            })
            .collect();
        InnerApprox { center, radius, g }
    }

    /// Evaluate the approximation at an absolute point `x` inside the
    /// sphere.
    pub fn evaluate(&self, rule: &SphereRule, m: usize, x: Vec3) -> f64 {
        let mut row = vec![0.0; rule.len()];
        inner_kernel_row(rule, m, self.radius, sub(x, self.center), &mut row);
        row.iter().zip(&self.g).map(|(r, g)| r * g).sum()
    }

    /// Gradient of the approximation at an absolute point `x`.
    pub fn evaluate_grad(&self, rule: &SphereRule, m: usize, x: Vec3) -> Vec3 {
        let mut rows = [
            vec![0.0; rule.len()],
            vec![0.0; rule.len()],
            vec![0.0; rule.len()],
        ];
        inner_kernel_row_grad(rule, m, self.radius, sub(x, self.center), &mut rows);
        let mut g = [0.0; 3];
        for d in 0..3 {
            g[d] = rows[d].iter().zip(&self.g).map(|(r, gg)| r * gg).sum();
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrature::SphereRule;

    #[test]
    fn point_charge_at_centre_exact() {
        // g = q/a on the whole sphere; only n = 0 survives and gives q/r
        // exactly for any rule and any M ≥ 0.
        let rule = SphereRule::icosahedron();
        let outer = OuterApprox::from_particles(&rule, [0.0; 3], 1.0, &[[0.0; 3]], &[2.5]);
        for &r in &[1.5, 2.0, 10.0] {
            let v = outer.evaluate(&rule, 0, [r, 0.0, 0.0]);
            assert!((v - 2.5 / r).abs() < 1e-12, "r={} v={}", r, v);
        }
    }

    #[test]
    fn off_centre_charge_converges_with_distance() {
        // The error decays with distance until it hits the discretization
        // floor ~ (|p|/a)^(D+1) — Anderson's error analysis, and the reason
        // the paper's Table 2 tunes the sphere radii per integration order.
        let rule = SphereRule::icosahedron();
        let m = 2;
        let q = 1.0;
        let p = [0.3, 0.1, -0.2]; // |p| ≈ 0.374, floor ≈ 5e-4
        let outer = OuterApprox::from_particles(&rule, [0.0; 3], 1.0, &[p], &[q]);
        let mut last = f64::INFINITY;
        for &r in &[2.0, 4.0, 8.0] {
            let x = [r, 0.0, 0.0];
            let exact = q / norm(sub(x, p));
            let err = (outer.evaluate(&rule, m, x) - exact).abs() / exact;
            assert!(err < last * 0.9, "error not decaying: r={} err={}", r, err);
            last = err;
        }
        assert!(last < 2e-3, "far-field error too large: {}", last);
        // A higher-degree rule lowers the floor at the same geometry.
        let rule14 = SphereRule::product(14);
        let outer14 = OuterApprox::from_particles(&rule14, [0.0; 3], 1.0, &[p], &[q]);
        let x = [8.0, 0.0, 0.0];
        let exact = q / norm(sub(x, p));
        let err14 = (outer14.evaluate(&rule14, 7, x) - exact).abs() / exact;
        assert!(
            err14 < last / 50.0,
            "D=14 floor {} not ≪ D=5 floor {}",
            err14,
            last
        );
    }

    #[test]
    fn inner_value_at_centre_is_spherical_mean() {
        let rule = SphereRule::product(8);
        let sources = [[5.0, 1.0, 0.0], [-4.0, 2.0, 3.0]];
        let charges = [1.0, -2.0];
        let inner = InnerApprox::from_particles(&rule, [0.0; 3], 1.0, &sources, &charges);
        let mean: f64 = inner.g.iter().zip(&rule.weights).map(|(g, w)| g * w).sum();
        let v = inner.evaluate(&rule, 6, [0.0; 3]);
        assert!((v - mean).abs() < 1e-13);
        // And the spherical mean of a harmonic function equals its value at
        // the centre (mean value property), so this should be close to the
        // true potential at the origin.
        let exact: f64 = sources
            .iter()
            .zip(&charges)
            .map(|(&s, &q)| q / norm(s))
            .sum();
        assert!((v - exact).abs() < 1e-6, "v={} exact={}", v, exact);
    }

    #[test]
    fn inner_reconstructs_far_potential() {
        let rule = SphereRule::product(10);
        let sources = [[6.0, -1.0, 2.0], [0.0, 7.0, -3.0], [-5.0, -5.0, 5.0]];
        let charges = [1.0, 0.5, -1.5];
        let a = 1.0;
        let inner = InnerApprox::from_particles(&rule, [0.0; 3], a, &sources, &charges);
        for x in [[0.2, 0.1, 0.0], [-0.3, 0.3, 0.2], [0.0, 0.0, 0.45]] {
            let exact: f64 = sources
                .iter()
                .zip(&charges)
                .map(|(&s, &q)| q / norm(sub(x, s)))
                .sum();
            let v = inner.evaluate(&rule, 5, x);
            assert!(
                (v - exact).abs() < 1e-4 * exact.abs().max(1.0),
                "x={:?} v={} exact={}",
                x,
                v,
                exact
            );
        }
    }

    #[test]
    fn outer_gradient_matches_finite_difference() {
        let rule = SphereRule::icosahedron();
        let outer = OuterApprox::from_particles(
            &rule,
            [0.0; 3],
            1.0,
            &[[0.2, -0.1, 0.3], [-0.2, 0.0, 0.1]],
            &[1.0, 2.0],
        );
        let m = 4;
        let x = [2.0, 1.0, -1.5];
        let g = outer.evaluate_grad(&rule, m, x);
        let h = 1e-6;
        for d in 0..3 {
            let mut xp = x;
            xp[d] += h;
            let mut xm = x;
            xm[d] -= h;
            let fd = (outer.evaluate(&rule, m, xp) - outer.evaluate(&rule, m, xm)) / (2.0 * h);
            assert!((fd - g[d]).abs() < 1e-6, "d={} fd={} an={}", d, fd, g[d]);
        }
    }

    #[test]
    fn inner_gradient_matches_finite_difference() {
        let rule = SphereRule::product(8);
        let inner = InnerApprox::from_particles(&rule, [0.0; 3], 1.0, &[[5.0, 2.0, -1.0]], &[3.0]);
        let m = 5;
        for x in [[0.3, -0.2, 0.1], [0.0, 0.0, 0.0]] {
            let g = inner.evaluate_grad(&rule, m, x);
            let h = 1e-6;
            for d in 0..3 {
                let mut xp = x;
                xp[d] += h;
                let mut xm = x;
                xm[d] -= h;
                let fd = (inner.evaluate(&rule, m, xp) - inner.evaluate(&rule, m, xm)) / (2.0 * h);
                assert!(
                    (fd - g[d]).abs() < 1e-5,
                    "x={:?} d={} fd={} an={}",
                    x,
                    d,
                    fd,
                    g[d]
                );
            }
        }
    }

    #[test]
    fn kernel_rows_linear_in_g() {
        // evaluate(g1 + g2) == evaluate(g1) + evaluate(g2): the element is
        // linear in the samples, the property that makes translations
        // matrices.
        let rule = SphereRule::icosahedron();
        let x = [3.0, 0.5, 1.0];
        let mut row = vec![0.0; rule.len()];
        outer_kernel_row(&rule, 3, 1.0, x, &mut row);
        let g1: Vec<f64> = (0..rule.len()).map(|i| i as f64).collect();
        let g2: Vec<f64> = (0..rule.len()).map(|i| (i * i) as f64 * 0.1).collect();
        let e = |g: &[f64]| -> f64 { row.iter().zip(g).map(|(r, g)| r * g).sum() };
        let sum: Vec<f64> = g1.iter().zip(&g2).map(|(a, b)| a + b).collect();
        assert!((e(&sum) - e(&g1) - e(&g2)).abs() < 1e-10);
    }

    #[test]
    fn higher_truncation_not_worse_in_far_field() {
        let rule = SphereRule::product(14);
        let p = [0.4, -0.3, 0.2];
        let outer = OuterApprox::from_particles(&rule, [0.0; 3], 1.0, &[p], &[1.0]);
        let x = [5.0, 2.0, 1.0];
        let exact = 1.0 / norm(sub(x, p));
        let err_low = (outer.evaluate(&rule, 1, x) - exact).abs();
        let err_high = (outer.evaluate(&rule, 7, x) - exact).abs();
        assert!(err_high < err_low);
        // M = 7 reaches the D = 14 discretization floor (~8e-6 relative at
        // this geometry); it cannot do better than the rule's degree allows.
        assert!(err_high < 1e-4 * exact);
    }
}
