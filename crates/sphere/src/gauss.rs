//! Gauss–Legendre quadrature on [−1, 1].
//!
//! Used to build product quadrature rules on the sphere: an `nθ`-point
//! Gauss rule in cos θ crossed with an equispaced trapezoid rule in φ
//! integrates spherical polynomials exactly up to degree
//! min(2·nθ − 1, nφ − 1).

use crate::legendre::legendre_all_with_deriv;

/// Nodes and weights of the `n`-point Gauss–Legendre rule on [−1, 1].
///
/// Nodes are roots of Pₙ found by Newton iteration from the Chebyshev-like
/// initial guess; weights are 2 / ((1 − x²) Pₙ'(x)²). Accurate to ~1e-15
/// for the modest n (≤ 64) used by sphere rules.
pub fn gauss_legendre(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n >= 1, "need at least one node");
    let mut nodes = vec![0.0; n];
    let mut weights = vec![0.0; n];
    let mut p = vec![0.0; n + 1];
    let mut dp = vec![0.0; n + 1];
    for i in 0..n {
        // Initial guess (Abramowitz & Stegun 25.4.38-style).
        let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        for _ in 0..100 {
            legendre_all_with_deriv(n, x, &mut p, &mut dp);
            let dx = p[n] / dp[n];
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        legendre_all_with_deriv(n, x, &mut p, &mut dp);
        nodes[i] = x;
        weights[i] = 2.0 / ((1.0 - x * x) * dp[n] * dp[n]);
    }
    // Newton converged from the cos ladder gives descending nodes; sort
    // ascending for a canonical ordering.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| nodes[a].partial_cmp(&nodes[b]).unwrap());
    let nodes_sorted: Vec<f64> = idx.iter().map(|&i| nodes[i]).collect();
    let weights_sorted: Vec<f64> = idx.iter().map(|&i| weights[i]).collect();
    (nodes_sorted, weights_sorted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn integrate(n: usize, f: impl Fn(f64) -> f64) -> f64 {
        let (x, w) = gauss_legendre(n);
        x.iter().zip(&w).map(|(&xi, &wi)| wi * f(xi)).sum()
    }

    #[test]
    fn weights_sum_to_two() {
        for n in 1..40 {
            let (_, w) = gauss_legendre(n);
            let s: f64 = w.iter().sum();
            assert!((s - 2.0).abs() < 1e-13, "n={} sum={}", n, s);
        }
    }

    #[test]
    fn exact_for_polynomials_up_to_2n_minus_1() {
        for n in 1..12usize {
            for d in 0..=(2 * n - 1) {
                let approx = integrate(n, |x| x.powi(d as i32));
                let exact = if d % 2 == 1 {
                    0.0
                } else {
                    2.0 / (d as f64 + 1.0)
                };
                assert!(
                    (approx - exact).abs() < 1e-12,
                    "n={} d={} approx={} exact={}",
                    n,
                    d,
                    approx,
                    exact
                );
            }
        }
    }

    #[test]
    fn not_exact_beyond_degree() {
        // x^(2n) is not integrated exactly by the n-point rule.
        let n = 3;
        let approx = integrate(n, |x| x.powi(2 * n as i32));
        let exact = 2.0 / (2.0 * n as f64 + 1.0);
        assert!((approx - exact).abs() > 1e-6);
    }

    #[test]
    fn nodes_symmetric_and_sorted() {
        let (x, w) = gauss_legendre(7);
        for i in 0..7 {
            assert!((x[i] + x[6 - i]).abs() < 1e-13);
            assert!((w[i] - w[6 - i]).abs() < 1e-13);
        }
        for i in 1..7 {
            assert!(x[i] > x[i - 1]);
        }
    }

    #[test]
    fn transcendental_integral_converges() {
        // ∫_{-1}^{1} e^x dx = e - 1/e.
        let exact = std::f64::consts::E - 1.0 / std::f64::consts::E;
        let approx = integrate(12, f64::exp);
        assert!((approx - exact).abs() < 1e-13);
    }
}
