//! Legendre polynomials Pₙ and their derivatives.
//!
//! Anderson's Poisson-formula kernels are truncated Legendre series in
//! cos γ = s·x̂, so the hot evaluation path needs all of P₀..P_M at a point.
//! The three-term recurrence
//!
//!   (n+1) P_{n+1}(t) = (2n+1) t Pₙ(t) − n P_{n−1}(t)
//!
//! is numerically stable on [−1, 1].

/// Evaluate Pₙ(t) for a single degree `n`.
pub fn legendre(n: usize, t: f64) -> f64 {
    match n {
        0 => 1.0,
        1 => t,
        _ => {
            let mut pm1 = 1.0;
            let mut p = t;
            for k in 1..n {
                let next = ((2 * k + 1) as f64 * t * p - k as f64 * pm1) / (k + 1) as f64;
                pm1 = p;
                p = next;
            }
            p
        }
    }
}

/// Fill `out[n] = Pₙ(t)` for `n = 0..=m` (so `out.len() == m + 1`).
#[inline]
pub fn legendre_all(m: usize, t: f64, out: &mut [f64]) {
    debug_assert_eq!(out.len(), m + 1);
    out[0] = 1.0;
    if m == 0 {
        return;
    }
    out[1] = t;
    for k in 1..m {
        out[k + 1] = ((2 * k + 1) as f64 * t * out[k] - k as f64 * out[k - 1]) / (k + 1) as f64;
    }
}

/// Fill `p[n] = Pₙ(t)` and `dp[n] = Pₙ'(t)` for `n = 0..=m`.
///
/// Derivatives use the recurrence Pₙ'(t) = P_{n-2}'(t) + (2n−1) P_{n−1}(t),
/// which is valid for all t including t = ±1 (where the more common
/// (1−t²)-based formula degenerates).
#[inline]
pub fn legendre_all_with_deriv(m: usize, t: f64, p: &mut [f64], dp: &mut [f64]) {
    debug_assert_eq!(p.len(), m + 1);
    debug_assert_eq!(dp.len(), m + 1);
    legendre_all(m, t, p);
    dp[0] = 0.0;
    if m >= 1 {
        dp[1] = 1.0;
    }
    for n in 2..=m {
        dp[n] = dp[n - 2] + (2 * n - 1) as f64 * p[n - 1];
    }
}

/// Pₙ'(t) for a single degree.
pub fn legendre_deriv(n: usize, t: f64) -> f64 {
    let mut p = vec![0.0; n + 1];
    let mut dp = vec![0.0; n + 1];
    legendre_all_with_deriv(n, t, &mut p, &mut dp);
    dp[n]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn closed_forms(t: f64) -> [f64; 6] {
        [
            1.0,
            t,
            0.5 * (3.0 * t * t - 1.0),
            0.5 * (5.0 * t * t * t - 3.0 * t),
            0.125 * (35.0 * t.powi(4) - 30.0 * t * t + 3.0),
            0.125 * (63.0 * t.powi(5) - 70.0 * t.powi(3) + 15.0 * t),
        ]
    }

    #[test]
    fn matches_closed_forms() {
        for &t in &[-1.0, -0.7, -0.3, 0.0, 0.25, 0.9, 1.0] {
            let cf = closed_forms(t);
            for (n, _) in cf.iter().enumerate() {
                assert!(
                    (legendre(n, t) - cf[n]).abs() < 1e-13,
                    "P_{}({}) = {} vs {}",
                    n,
                    t,
                    legendre(n, t),
                    cf[n]
                );
            }
        }
    }

    #[test]
    fn all_matches_single() {
        let t = 0.437;
        let mut out = vec![0.0; 11];
        legendre_all(10, t, &mut out);
        for (n, o) in out.iter().enumerate() {
            assert!((o - legendre(n, t)).abs() < 1e-13);
        }
    }

    #[test]
    fn value_at_one_is_one() {
        let mut out = vec![0.0; 21];
        legendre_all(20, 1.0, &mut out);
        for v in out {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn value_at_minus_one_alternates() {
        let mut out = vec![0.0; 16];
        legendre_all(15, -1.0, &mut out);
        for (n, v) in out.iter().enumerate() {
            let expect = if n % 2 == 0 { 1.0 } else { -1.0 };
            assert!((v - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let h = 1e-6;
        for &t in &[-0.8, -0.2, 0.0, 0.5, 0.95] {
            for n in 0..10 {
                let fd = (legendre(n, t + h) - legendre(n, t - h)) / (2.0 * h);
                let an = legendre_deriv(n, t);
                assert!(
                    (fd - an).abs() < 1e-6 * (1.0 + an.abs()),
                    "P'_{}({}) fd={} an={}",
                    n,
                    t,
                    fd,
                    an
                );
            }
        }
    }

    #[test]
    fn derivative_at_one() {
        // Pₙ'(1) = n(n+1)/2.
        for n in 0..12usize {
            let expect = (n * (n + 1)) as f64 / 2.0;
            assert!((legendre_deriv(n, 1.0) - expect).abs() < 1e-10);
        }
    }

    #[test]
    fn bonnet_recurrence_consistency() {
        // (2n+1) t Pn = (n+1) P_{n+1} + n P_{n-1}
        let t = -0.613;
        for n in 1..15usize {
            let lhs = (2 * n + 1) as f64 * t * legendre(n, t);
            let rhs = (n + 1) as f64 * legendre(n + 1, t) + n as f64 * legendre(n - 1, t);
            assert!((lhs - rhs).abs() < 1e-12);
        }
    }
}
