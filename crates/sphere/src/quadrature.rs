//! Quadrature rules on the unit sphere.
//!
//! Anderson's method needs a rule `{(sᵢ, wᵢ)}` exact for spherical
//! polynomials up to a chosen *integration order* D; D controls the error
//! decay rate of the sphere approximations (the paper's Table 2). The
//! paper uses K = 12 points for D = 5 (the icosahedral rule) and a 72-point
//! rule for D = 14 (McLaren's rule, whose coefficients are not in the
//! paper). We provide the classical polyhedral designs for low D and
//! Gauss × trapezoid product rules for arbitrary D — the behaviour of the
//! method depends on D, not on which minimal rule realizes it (see
//! DESIGN.md §3 for this substitution).
//!
//! Weights are normalized to sum to 1 (spherical mean convention).

use crate::gauss::gauss_legendre;
use crate::Vec3;

/// How a [`SphereRule`] was constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SphereRuleKind {
    /// Regular tetrahedron vertices: K = 4, exact to degree 2.
    Tetrahedron,
    /// Regular octahedron vertices: K = 6, exact to degree 3.
    Octahedron,
    /// Cube vertices: K = 8, exact to degree 3.
    Cube,
    /// Regular icosahedron vertices: K = 12, exact to degree 5 (the paper's
    /// D = 5 configuration).
    Icosahedron,
    /// Gauss–Legendre × trapezoid product rule, exact to the stored degree.
    Product,
}

/// A quadrature rule on the unit sphere: K points, K weights summing to 1,
/// exact for spherical polynomials of total degree ≤ `degree`.
#[derive(Debug, Clone)]
pub struct SphereRule {
    pub kind: SphereRuleKind,
    pub degree: usize,
    pub points: Vec<Vec3>,
    pub weights: Vec<f64>,
}

impl SphereRule {
    /// Number of integration points K.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Spherical mean of `f` under the rule.
    pub fn integrate(&self, mut f: impl FnMut(Vec3) -> f64) -> f64 {
        self.points
            .iter()
            .zip(&self.weights)
            .map(|(&p, &w)| w * f(p))
            .sum()
    }

    /// The regular tetrahedron rule: K = 4, degree 2.
    pub fn tetrahedron() -> Self {
        let s = 1.0 / 3f64.sqrt();
        let points = vec![[s, s, s], [s, -s, -s], [-s, s, -s], [-s, -s, s]];
        let weights = vec![0.25; 4];
        SphereRule {
            kind: SphereRuleKind::Tetrahedron,
            degree: 2,
            points,
            weights,
        }
    }

    /// The regular octahedron rule: K = 6, degree 3.
    pub fn octahedron() -> Self {
        let points = vec![
            [1.0, 0.0, 0.0],
            [-1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, -1.0, 0.0],
            [0.0, 0.0, 1.0],
            [0.0, 0.0, -1.0],
        ];
        let weights = vec![1.0 / 6.0; 6];
        SphereRule {
            kind: SphereRuleKind::Octahedron,
            degree: 3,
            points,
            weights,
        }
    }

    /// The cube-vertex rule: K = 8, degree 3.
    pub fn cube() -> Self {
        let s = 1.0 / 3f64.sqrt();
        let mut points = Vec::with_capacity(8);
        for &x in &[-s, s] {
            for &y in &[-s, s] {
                for &z in &[-s, s] {
                    points.push([x, y, z]);
                }
            }
        }
        let weights = vec![0.125; 8];
        SphereRule {
            kind: SphereRuleKind::Cube,
            degree: 3,
            points,
            weights,
        }
    }

    /// The regular icosahedron rule: K = 12, degree 5. This is the paper's
    /// D = 5 / K = 12 configuration.
    pub fn icosahedron() -> Self {
        let phi = (1.0 + 5f64.sqrt()) / 2.0;
        let norm = (1.0 + phi * phi).sqrt();
        let a = 1.0 / norm;
        let b = phi / norm;
        // Cyclic permutations of (0, ±1, ±φ) / |(1, φ)|.
        let mut points = Vec::with_capacity(12);
        for &s1 in &[-1.0, 1.0] {
            for &s2 in &[-1.0, 1.0] {
                points.push([0.0, s1 * a, s2 * b]);
                points.push([s1 * a, s2 * b, 0.0]);
                points.push([s2 * b, 0.0, s1 * a]);
            }
        }
        let weights = vec![1.0 / 12.0; 12];
        SphereRule {
            kind: SphereRuleKind::Icosahedron,
            degree: 5,
            points,
            weights,
        }
    }

    /// Gauss–Legendre (in cos θ) × trapezoid (in φ) product rule exact to
    /// degree `d`: `⌈(d+1)/2⌉ × (d+1)` points.
    pub fn product(d: usize) -> Self {
        let n_theta = d / 2 + 1; // 2·n_theta − 1 ≥ d
        let n_phi = d + 1; // trapezoid exact for e^{imφ}, |m| ≤ n_phi − 1
        let (ct, wt) = gauss_legendre(n_theta);
        let mut points = Vec::with_capacity(n_theta * n_phi);
        let mut weights = Vec::with_capacity(n_theta * n_phi);
        for (i, &c) in ct.iter().enumerate() {
            let s = (1.0 - c * c).max(0.0).sqrt();
            for j in 0..n_phi {
                let phi = 2.0 * std::f64::consts::PI * j as f64 / n_phi as f64;
                points.push([s * phi.cos(), s * phi.sin(), c]);
                // Gauss weight integrates dμ/2 over cosθ; trapezoid gives
                // 1/n_phi of the azimuthal mean.
                weights.push(wt[i] / 2.0 / n_phi as f64);
            }
        }
        SphereRule {
            kind: SphereRuleKind::Product,
            degree: d,
            points,
            weights,
        }
    }

    /// The smallest built-in rule exact to integration order `d`
    /// (polyhedral designs where available, product rule otherwise).
    pub fn for_order(d: usize) -> Self {
        match d {
            0..=2 => SphereRule::tetrahedron(),
            3 => SphereRule::octahedron(),
            4 | 5 => SphereRule::icosahedron(),
            _ => SphereRule::product(d),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harmonics::solid_harmonic_basis_count;
    use crate::harmonics::spherical_harmonic_real;

    fn check_exactness(rule: &SphereRule) {
        // A rule of degree D must annihilate all real spherical harmonics
        // Y_l^m with 1 ≤ l ≤ D (their spherical mean is 0) and give 1 for
        // the constant.
        let w_sum: f64 = rule.weights.iter().sum();
        assert!((w_sum - 1.0).abs() < 1e-13, "weights sum {}", w_sum);
        for l in 1..=rule.degree {
            for m in -(l as i64)..=(l as i64) {
                let v = rule.integrate(|p| spherical_harmonic_real(l, m, p));
                assert!(
                    v.abs() < 1e-10,
                    "{:?} degree {} fails Y_{}^{}: {}",
                    rule.kind,
                    rule.degree,
                    l,
                    m,
                    v
                );
            }
        }
    }

    #[test]
    fn all_points_on_unit_sphere() {
        for rule in [
            SphereRule::tetrahedron(),
            SphereRule::octahedron(),
            SphereRule::cube(),
            SphereRule::icosahedron(),
            SphereRule::product(9),
            SphereRule::product(14),
        ] {
            for p in &rule.points {
                let n = crate::norm(*p);
                assert!((n - 1.0).abs() < 1e-12, "{:?}: |p| = {}", rule.kind, n);
            }
        }
    }

    #[test]
    fn polyhedral_rules_exact() {
        check_exactness(&SphereRule::tetrahedron());
        check_exactness(&SphereRule::octahedron());
        check_exactness(&SphereRule::cube());
        check_exactness(&SphereRule::icosahedron());
    }

    #[test]
    fn product_rules_exact() {
        for d in [4, 6, 7, 9, 11, 14] {
            check_exactness(&SphereRule::product(d));
        }
    }

    #[test]
    fn icosahedron_not_degree_6() {
        // The icosahedral rule is a 5-design but not a 6-design: some
        // degree-6 harmonic must have non-zero mean under it.
        let rule = SphereRule::icosahedron();
        let mut worst: f64 = 0.0;
        for m in -6..=6 {
            let v = rule.integrate(|p| spherical_harmonic_real(6, m, p));
            worst = worst.max(v.abs());
        }
        assert!(worst > 1e-6, "icosahedron unexpectedly exact at degree 6");
    }

    #[test]
    fn for_order_selects_smallest() {
        assert_eq!(SphereRule::for_order(2).len(), 4);
        assert_eq!(SphereRule::for_order(3).len(), 6);
        assert_eq!(SphereRule::for_order(5).len(), 12);
        assert_eq!(SphereRule::for_order(5).kind, SphereRuleKind::Icosahedron);
        let r14 = SphereRule::for_order(14);
        assert_eq!(r14.kind, SphereRuleKind::Product);
        assert_eq!(r14.len(), 8 * 15);
    }

    #[test]
    fn counts_documented() {
        // Touch the harmonics helper to document basis sizes per degree.
        assert_eq!(solid_harmonic_basis_count(5), 36);
    }

    #[test]
    fn integrate_constant_and_linear() {
        let rule = SphereRule::product(7);
        assert!((rule.integrate(|_| 3.5) - 3.5).abs() < 1e-13);
        assert!(rule.integrate(|p| p[0] + 2.0 * p[1] - p[2]).abs() < 1e-13);
        // mean of z² over sphere is 1/3.
        assert!((rule.integrate(|p| p[2] * p[2]) - 1.0 / 3.0).abs() < 1e-13);
    }
}
