//! Real spherical and solid harmonics.
//!
//! Used for testing: quadrature exactness (a degree-D sphere rule must
//! annihilate Y_l^m for 1 ≤ l ≤ D) and as analytically-known harmonic
//! fields for validating the inner/outer sphere approximations.

use crate::Vec3;

/// Associated Legendre P_l^m(t) (no Condon–Shortley phase), m ≥ 0.
pub fn assoc_legendre(l: usize, m: usize, t: f64) -> f64 {
    assert!(m <= l);
    // P_m^m = (2m-1)!! (1-t²)^{m/2}
    let somx2 = ((1.0 - t) * (1.0 + t)).max(0.0).sqrt();
    let mut pmm = 1.0;
    let mut fact = 1.0;
    for _ in 0..m {
        pmm *= fact * somx2;
        fact += 2.0;
    }
    if l == m {
        return pmm;
    }
    let mut pmmp1 = t * (2 * m + 1) as f64 * pmm;
    if l == m + 1 {
        return pmmp1;
    }
    let mut pll = 0.0;
    for ll in (m + 2)..=l {
        pll = (t * (2 * ll - 1) as f64 * pmmp1 - (ll + m - 1) as f64 * pmm) / (ll - m) as f64;
        pmm = pmmp1;
        pmmp1 = pll;
    }
    pll
}

fn factorial(n: usize) -> f64 {
    (1..=n).map(|i| i as f64).product::<f64>().max(1.0)
}

/// Real, fully normalized spherical harmonic Y_l^m evaluated at a unit
/// vector `p`. `m` ranges over −l..=l; negative m selects the sin(|m|φ)
/// branch.
pub fn spherical_harmonic_real(l: usize, m: i64, p: Vec3) -> f64 {
    let ct = p[2].clamp(-1.0, 1.0);
    let phi = p[1].atan2(p[0]);
    let ma = m.unsigned_abs() as usize;
    assert!(ma <= l);
    let norm = (((2 * l + 1) as f64 / (4.0 * std::f64::consts::PI))
        * (factorial(l - ma) / factorial(l + ma)))
    .sqrt();
    let plm = assoc_legendre(l, ma, ct);
    if m == 0 {
        norm * plm
    } else if m > 0 {
        std::f64::consts::SQRT_2 * norm * plm * (ma as f64 * phi).cos()
    } else {
        std::f64::consts::SQRT_2 * norm * plm * (ma as f64 * phi).sin()
    }
}

/// Number of linearly independent solid harmonics of degree ≤ l: (l+1)².
pub const fn solid_harmonic_basis_count(l: usize) -> usize {
    (l + 1) * (l + 1)
}

/// Regular solid harmonic r^l Y_l^m(x̂) at an arbitrary point — a harmonic
/// polynomial, finite everywhere (returns the l = 0 value at the origin).
pub fn regular_solid_harmonic(l: usize, m: i64, x: Vec3) -> f64 {
    let r = crate::norm(x);
    if r == 0.0 {
        return if l == 0 {
            spherical_harmonic_real(0, 0, [0.0, 0.0, 1.0])
        } else {
            0.0
        };
    }
    let u = crate::scale(x, 1.0 / r);
    r.powi(l as i32) * spherical_harmonic_real(l, m, u)
}

/// Irregular solid harmonic r^{−(l+1)} Y_l^m(x̂) — harmonic away from the
/// origin, decaying at infinity. Panics at the origin.
pub fn irregular_solid_harmonic(l: usize, m: i64, x: Vec3) -> f64 {
    let r = crate::norm(x);
    assert!(
        r > 0.0,
        "irregular solid harmonic is singular at the origin"
    );
    let u = crate::scale(x, 1.0 / r);
    r.powi(-(l as i32) - 1) * spherical_harmonic_real(l, m, u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assoc_legendre_m0_matches_legendre() {
        for l in 0..8 {
            for &t in &[-0.9, -0.3, 0.2, 0.8] {
                assert!((assoc_legendre(l, 0, t) - crate::legendre::legendre(l, t)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn known_values() {
        // P_1^1(t) = sqrt(1-t²); P_2^1(t) = 3 t sqrt(1-t²); P_2^2 = 3(1-t²).
        let t = 0.3;
        let s = (1.0f64 - t * t).sqrt();
        assert!((assoc_legendre(1, 1, t) - s).abs() < 1e-13);
        assert!((assoc_legendre(2, 1, t) - 3.0 * t * s).abs() < 1e-13);
        assert!((assoc_legendre(2, 2, t) - 3.0 * (1.0 - t * t)).abs() < 1e-13);
    }

    #[test]
    fn y00_is_constant() {
        let v = 1.0 / (4.0 * std::f64::consts::PI).sqrt();
        for p in [[1.0, 0.0, 0.0], [0.0, 0.0, 1.0], [0.6, 0.0, 0.8]] {
            assert!((spherical_harmonic_real(0, 0, p) - v).abs() < 1e-13);
        }
    }

    #[test]
    fn orthonormality_under_dense_rule() {
        // A high-degree product rule should reproduce <Y_lm, Y_l'm'> = δ
        // (up to the 4π factor from our mean-normalized weights).
        let rule = crate::SphereRule::product(16);
        let pairs = [(0i64, 0usize), (1, 1), (-1, 1), (0, 2), (2, 3), (-3, 4)];
        for (i, &(m1, l1)) in pairs.iter().enumerate() {
            for &(m2, l2) in &pairs[i..] {
                let v = rule.integrate(|p| {
                    spherical_harmonic_real(l1, m1, p) * spherical_harmonic_real(l2, m2, p)
                }) * 4.0
                    * std::f64::consts::PI;
                let expect = if l1 == l2 && m1 == m2 { 1.0 } else { 0.0 };
                assert!(
                    (v - expect).abs() < 1e-10,
                    "<Y_{}^{} , Y_{}^{}> = {}",
                    l1,
                    m1,
                    l2,
                    m2,
                    v
                );
            }
        }
    }

    #[test]
    fn regular_solid_harmonic_is_harmonic() {
        // Laplacian of r^l Y_lm vanishes: check with a 6-point stencil.
        let h = 1e-3;
        let x = [0.4, -0.2, 0.7];
        for (l, m) in [(1usize, 0i64), (2, 1), (3, -2), (4, 4)] {
            let f = |p: crate::Vec3| regular_solid_harmonic(l, m, p);
            let mut lap = -6.0 * f(x);
            for d in 0..3 {
                let mut xp = x;
                xp[d] += h;
                let mut xm = x;
                xm[d] -= h;
                lap += f(xp) + f(xm);
            }
            lap /= h * h;
            assert!(lap.abs() < 1e-5, "∆(r^{} Y) = {}", l, lap);
        }
    }

    #[test]
    fn irregular_solid_harmonic_decays() {
        let l = 2;
        let v1 = irregular_solid_harmonic(l, 0, [0.0, 0.0, 1.0]).abs();
        let v2 = irregular_solid_harmonic(l, 0, [0.0, 0.0, 2.0]).abs();
        assert!((v2 / v1 - 0.5f64.powi(3)).abs() < 1e-12);
    }
}
