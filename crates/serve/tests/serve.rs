//! End-to-end service tests on a loopback listener: both front doors,
//! coalescing under concurrency, metrics, and graceful shutdown.

use fmm_core::{Fmm, FmmConfig};
use fmm_serve::protocol::{self, EvalRequest, Opcode, Shape};
use fmm_serve::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn system(n: usize, seed: u64) -> (Vec<[f64; 3]>, Vec<f64>) {
    let mut state = seed;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let pts: Vec<[f64; 3]> = (0..n).map(|_| [next(), next(), next()]).collect();
    let q: Vec<f64> = (0..n).map(|_| next() * 2.0 - 1.0).collect();
    (pts, q)
}

fn shape() -> Shape {
    Shape {
        order: 3,
        depth: 2,
        separation: 2,
        mixed: false,
        forces: false,
    }
}

fn start(window_ms: u64, max_batch: usize) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        conn_threads: 8,
        exec_threads: 2,
        window: Duration::from_millis(window_ms),
        max_batch,
        registry_capacity: 16,
        read_timeout: Duration::from_secs(10),
    })
    .expect("bind loopback")
}

fn binary_evaluate(addr: &str, req: &EvalRequest) -> Result<protocol::EvalResponse, String> {
    let mut s = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    s.write_all(&protocol::MAGIC).map_err(|e| e.to_string())?;
    protocol::write_frame(&mut s, &protocol::encode_evaluate(req)).map_err(|e| e.to_string())?;
    let frame = protocol::read_frame(&mut s).map_err(|e| e.to_string())?;
    protocol::decode_eval_response(&frame, req.shape.forces)
}

fn http_roundtrip(addr: &str, request: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(request.as_bytes()).unwrap();
    let mut r = BufReader::new(s);
    let mut status = String::new();
    r.read_line(&mut status).unwrap();
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        r.read_line(&mut h).unwrap();
        if h.trim_end().is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().unwrap();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body).unwrap();
    (status, String::from_utf8(body).unwrap())
}

#[test]
fn binary_round_trip_is_bitwise_vs_local() {
    let server = start(1, 64);
    let addr = server.local_addr().to_string();
    let (pts, q) = system(80, 7);
    let resp = binary_evaluate(
        &addr,
        &EvalRequest {
            shape: shape(),
            positions: pts.clone(),
            charges: q.clone(),
        },
    )
    .unwrap();
    let local = Fmm::new(FmmConfig::order(3).depth(2)).unwrap();
    let want = local.evaluate(&pts, &q).unwrap().potentials;
    assert_eq!(resp.potentials.len(), want.len());
    for (a, b) in resp.potentials.iter().zip(&want) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    server.shutdown();
    server.join();
}

#[test]
fn forces_round_trip_carries_fields() {
    let server = start(1, 64);
    let addr = server.local_addr().to_string();
    let (pts, q) = system(48, 21);
    let mut sh = shape();
    sh.forces = true;
    let resp = binary_evaluate(
        &addr,
        &EvalRequest {
            shape: sh,
            positions: pts.clone(),
            charges: q.clone(),
        },
    )
    .unwrap();
    let local = Fmm::new(FmmConfig::order(3).depth(2)).unwrap();
    let want = local.evaluate_forces(&pts, &q).unwrap();
    let fields = resp.fields.expect("fields in forces response");
    for (a, b) in fields.iter().zip(&want.fields.unwrap()) {
        for d in 0..3 {
            assert_eq!(a[d].to_bits(), b[d].to_bits());
        }
    }
    server.shutdown();
    server.join();
}

#[test]
fn json_front_door_round_trips() {
    let server = start(1, 64);
    let addr = server.local_addr().to_string();
    let (pts, q) = system(32, 3);
    let flat: Vec<String> = pts
        .iter()
        .flat_map(|p| p.iter().map(|c| format!("{}", c)))
        .collect();
    let charges: Vec<String> = q.iter().map(|c| format!("{}", c)).collect();
    let body = format!(
        "{{\"order\":3,\"depth\":2,\"positions\":[{}],\"charges\":[{}]}}",
        flat.join(","),
        charges.join(",")
    );
    let raw = format!(
        "POST /evaluate HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    let (status, resp) = http_roundtrip(&addr, &raw);
    assert!(status.contains("200"), "{status}: {resp}");
    let v = fmm_serve::json::parse(&resp).unwrap();
    let served = v.get("potentials").unwrap().as_f64_array().unwrap();
    let local = Fmm::new(FmmConfig::order(3).depth(2)).unwrap();
    let want = local.evaluate(&pts, &q).unwrap().potentials;
    for (a, b) in served.iter().zip(&want) {
        assert_eq!(a.to_bits(), b.to_bits(), "JSON round-trip must be bitwise");
    }

    // Unknown route and malformed body are clean errors, not hangs.
    let (nf, _) = http_roundtrip(&addr, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(nf.contains("404"));
    let (bad, _) = http_roundtrip(
        &addr,
        "POST /evaluate HTTP/1.1\r\nHost: t\r\nContent-Length: 2\r\n\r\n{}",
    );
    assert!(bad.contains("400"));

    server.shutdown();
    server.join();
}

#[test]
fn concurrent_same_shape_requests_coalesce() {
    // A generous window so concurrent clients land in one batch.
    let server = start(150, 64);
    let addr = server.local_addr().to_string();
    let clients = 8;
    let handles: Vec<_> = (0..clients)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let (pts, q) = system(48, 100 + i as u64);
                let resp = binary_evaluate(
                    &addr,
                    &EvalRequest {
                        shape: shape(),
                        positions: pts.clone(),
                        charges: q.clone(),
                    },
                )
                .unwrap();
                let local = Fmm::new(FmmConfig::order(3).depth(2)).unwrap();
                let want = local.evaluate(&pts, &q).unwrap().potentials;
                for (a, b) in resp.potentials.iter().zip(&want) {
                    assert_eq!(a.to_bits(), b.to_bits(), "client {i}");
                }
                resp.batch_size
            })
        })
        .collect();
    let sizes: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let max = *sizes.iter().max().unwrap();
    assert!(
        max >= 2,
        "no coalescing observed: batch sizes {sizes:?} (window too short for the host?)"
    );
    // However the batches landed, the registry built exactly one plan.
    assert_eq!(server.engine().registry().stats().plan_builds, 1);
    server.shutdown();
    server.join();
}

#[test]
fn metrics_and_info_report_the_registry() {
    let server = start(1, 64);
    let addr = server.local_addr().to_string();
    let (pts, q) = system(32, 5);
    binary_evaluate(
        &addr,
        &EvalRequest {
            shape: shape(),
            positions: pts,
            charges: q,
        },
    )
    .unwrap();
    let (status, metrics) = http_roundtrip(&addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(status.contains("200"));
    assert!(metrics.contains("fmm_requests_total 1"), "{metrics}");
    assert!(metrics.contains("fmm_plan_builds 1"), "{metrics}");
    assert!(metrics.contains("fmm_batches_total 1"), "{metrics}");

    // Info over the binary door.
    let mut s = TcpStream::connect(&addr).unwrap();
    s.write_all(&protocol::MAGIC).unwrap();
    protocol::write_frame(&mut s, &[Opcode::Info as u8]).unwrap();
    let info = protocol::decode_text(&protocol::read_frame(&mut s).unwrap()).unwrap();
    let v = fmm_serve::json::parse(&info).unwrap();
    assert_eq!(
        v.get("registry")
            .unwrap()
            .get("plan_builds")
            .unwrap()
            .as_usize(),
        Some(1)
    );
    // The fabrics the SPMD executor can run over, in declaration order.
    assert!(
        info.contains(r#""transports":["inprocess","unix","tcp"]"#),
        "{info}"
    );
    server.shutdown();
    server.join();
}

#[test]
fn shutdown_endpoint_drains_gracefully() {
    let server = start(1, 64);
    let addr = server.local_addr().to_string();
    let (pts, q) = system(32, 9);
    binary_evaluate(
        &addr,
        &EvalRequest {
            shape: shape(),
            positions: pts,
            charges: q,
        },
    )
    .unwrap();
    let (status, body) = http_roundtrip(
        &addr,
        "POST /shutdown HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
    );
    assert!(status.contains("200"));
    assert!(body.contains("draining"));
    // join() must return: acceptor unblocked, workers drained.
    server.join();
    // The port is released: connecting now fails (or is refused fast).
    assert!(TcpStream::connect(&addr).is_err());
}
