//! Proptest fuzzing of the HTTP/1.1 front door: the request reader over
//! arbitrary byte soup and structured-but-random requests, and the
//! `/evaluate` JSON body parser over soup, near-miss JSON, and generated
//! valid bodies.

use fmm_serve::http::{eval_request_from_json, eval_response_to_json, read_request};
use fmm_serve::json;
use fmm_serve::protocol::EvalResponse;
use proptest::prelude::*;
use std::io::BufReader;

fn ascii(range: std::ops::Range<u8>, len: std::ops::Range<usize>) -> impl Strategy<Value = String> {
    proptest::collection::vec(range, len).prop_map(|v| String::from_utf8(v).expect("ascii"))
}

/// A token of URL-ish characters (no whitespace, no CR/LF).
fn token() -> impl Strategy<Value = String> {
    proptest::collection::vec(33u8..127, 1..12).prop_map(|v| String::from_utf8(v).expect("ascii"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup on the socket never panics the reader: it
    /// yields a request or an io::Error, and any body it does return is
    /// bounded by MAX_FRAME.
    #[test]
    fn reader_is_total_over_byte_soup(bytes in proptest::collection::vec(0u8..=255, 0..512)) {
        let mut r = BufReader::new(bytes.as_slice());
        if let Ok(req) = read_request(&mut r) {
            prop_assert!(req.body.len() <= fmm_serve::protocol::MAX_FRAME as usize);
        }
    }

    /// A well-formed request with arbitrary method/path/headers/body
    /// parses back exactly.
    #[test]
    fn well_formed_requests_round_trip(
        method in token(),
        path in token(),
        junk_header in ascii(33u8..58, 1..10),
        body in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let mut raw = Vec::new();
        raw.extend_from_slice(
            format!(
                "{method} {path} HTTP/1.1\r\n{junk_header}: x\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        );
        raw.extend_from_slice(&body);
        let mut r = BufReader::new(raw.as_slice());
        let req = read_request(&mut r).expect("well-formed request parses");
        prop_assert_eq!(req.method, method);
        prop_assert_eq!(req.path, path);
        prop_assert_eq!(req.body, body);
    }

    /// A Content-Length larger than the bytes that follow is an Err, not
    /// a hang or a short read surfacing as a request.
    #[test]
    fn short_bodies_error(claim in 1usize..4096, supplied in 0usize..32) {
        let supplied = supplied.min(claim.saturating_sub(1));
        let mut raw = Vec::new();
        raw.extend_from_slice(
            format!("POST /evaluate HTTP/1.1\r\nContent-Length: {claim}\r\n\r\n").as_bytes(),
        );
        raw.extend(std::iter::repeat_n(b'x', supplied));
        let mut r = BufReader::new(raw.as_slice());
        prop_assert!(read_request(&mut r).is_err());
    }

    /// The JSON body parser never panics on soup — ASCII or arbitrary.
    #[test]
    fn json_parser_is_total_over_soup(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        let _ = eval_request_from_json(&bytes);
    }

    /// Structurally valid `/evaluate` bodies parse to matching shapes.
    #[test]
    fn generated_bodies_parse(
        n in 0usize..20,
        order in 1usize..12,
        depth in 1usize..6,
        forces in proptest::bool::ANY,
    ) {
        let positions: Vec<String> = (0..3 * n).map(|i| format!("{}", i as f64 * 0.01)).collect();
        let charges: Vec<String> = (0..n).map(|i| format!("{}", 1.0 - (i % 2) as f64 * 2.0)).collect();
        let body = format!(
            "{{\"positions\":[{}],\"charges\":[{}],\"order\":{order},\"depth\":{depth},\"forces\":{forces}}}",
            positions.join(","),
            charges.join(","),
        );
        let req = eval_request_from_json(body.as_bytes()).expect("valid body parses");
        prop_assert_eq!(req.positions.len(), n);
        prop_assert_eq!(req.charges.len(), n);
        prop_assert_eq!(req.shape.order as usize, order);
        prop_assert_eq!(req.shape.depth as usize, depth);
        prop_assert_eq!(req.shape.forces, forces);
    }

    /// A positions array whose length is not a multiple of 3 is rejected
    /// with a diagnostic, never truncated silently.
    #[test]
    fn ragged_positions_are_rejected(n in 0usize..10, extra in 1usize..3) {
        let positions: Vec<String> = (0..3 * n + extra).map(|_| "0.5".to_string()).collect();
        let body = format!(
            "{{\"positions\":[{}],\"charges\":[]}}",
            positions.join(","),
        );
        let err = eval_request_from_json(body.as_bytes()).expect_err("ragged positions rejected");
        prop_assert!(err.contains("multiple of 3"), "{}", err);
    }

    /// Response rendering → JSON parse preserves every potential bitwise
    /// (for finite values — JSON has no NaN).
    #[test]
    fn response_json_round_trips_finite_values(
        potentials in proptest::collection::vec(-1e12f64..1e12, 0..20),
        batch in 0usize..100,
    ) {
        let resp = EvalResponse {
            potentials: potentials.clone(),
            fields: None,
            batch_size: batch,
        };
        let text = eval_response_to_json(&resp);
        let v = json::parse(&text).expect("own JSON parses");
        let back = v.get("potentials").unwrap().as_f64_array().unwrap();
        prop_assert_eq!(back.len(), potentials.len());
        for (a, b) in back.iter().zip(&potentials) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(v.get("batch_size").unwrap().as_usize(), Some(batch));
    }
}
