//! Proptest fuzzing of the FMM1 binary framing — the randomized
//! counterpart of the deterministic-corpus `framing-totality` pass in
//! `fmm-verify`.
//!
//! Three families of properties:
//!
//! 1. **No panic on byte soup** — every decoder is total over arbitrary
//!    input: it returns `Ok` or `Err`, never panics, never allocates
//!    proportionally to a hostile length field.
//! 2. **Round-trip identity** — encode→decode is the identity for
//!    arbitrary requests/responses, bit-for-bit (NaNs and infinities
//!    included: payload f64s are drawn from raw bit patterns).
//! 3. **Decode idempotence** — anything a decoder accepts re-encodes to
//!    a payload the decoder maps to the same value.

use fmm_serve::protocol::{
    decode_eval_response, decode_evaluate, decode_text, encode_eval_response, encode_evaluate,
    encode_text, read_frame, write_frame, EvalRequest, EvalResponse, Shape, MAX_FRAME,
};
use proptest::prelude::*;

fn arb_shape() -> impl Strategy<Value = Shape> {
    (
        1u16..=16,
        1u32..=8,
        1u8..=2,
        proptest::bool::ANY,
        proptest::bool::ANY,
    )
        .prop_map(|(order, depth, separation, mixed, forces)| Shape {
            order,
            depth,
            separation,
            mixed,
            forces,
        })
}

/// f64s from raw bit patterns: includes NaNs, infinities, subnormals.
fn arb_bits_f64() -> impl Strategy<Value = f64> {
    (0u64..=u64::MAX).prop_map(f64::from_bits)
}

fn arb_request() -> impl Strategy<Value = EvalRequest> {
    (arb_shape(), 0usize..40).prop_flat_map(|(shape, n)| {
        (
            Just(shape),
            proptest::collection::vec(
                (arb_bits_f64(), arb_bits_f64(), arb_bits_f64()).prop_map(|(x, y, z)| [x, y, z]),
                n,
            ),
            proptest::collection::vec(arb_bits_f64(), n),
        )
            .prop_map(|(shape, positions, charges)| EvalRequest {
                shape,
                positions,
                charges,
            })
    })
}

fn req_bits_eq(a: &EvalRequest, b: &EvalRequest) -> bool {
    a.shape == b.shape
        && a.positions.len() == b.positions.len()
        && a.charges.len() == b.charges.len()
        && a.positions
            .iter()
            .zip(&b.positions)
            .all(|(x, y)| x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits()))
        && a.charges
            .iter()
            .zip(&b.charges)
            .all(|(p, q)| p.to_bits() == q.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup never panics any decoder.
    #[test]
    fn decoders_are_total_over_byte_soup(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        let _ = decode_evaluate(&bytes);
        let _ = decode_eval_response(&bytes, false);
        let _ = decode_eval_response(&bytes, true);
        let _ = decode_text(&bytes);
        let _ = read_frame(&mut bytes.as_slice());
    }

    /// A hostile particle count in an otherwise plausible header is
    /// rejected before any allocation of that size.
    #[test]
    fn hostile_counts_fail_fast(count in 1u32 << 20 .. u32::MAX, pad in 0usize..16) {
        let mut b = vec![0u8; 8];
        b.extend_from_slice(&count.to_le_bytes());
        b.extend(std::iter::repeat_n(0u8, pad));
        prop_assert!(decode_evaluate(&b).is_err());
    }

    /// Request encode→decode is the identity, bit for bit.
    #[test]
    fn request_round_trips_bitwise(req in arb_request()) {
        let enc = encode_evaluate(&req);
        // [0] is the opcode byte; the server hands the decoder the rest.
        let back = decode_evaluate(&enc[1..]).expect("self-encoded request decodes");
        prop_assert!(req_bits_eq(&req, &back));
    }

    /// Anything `decode_evaluate` accepts is a fixed point: re-encoding
    /// and re-decoding yields the same value.
    #[test]
    fn accepted_requests_are_fixed_points(bytes in proptest::collection::vec(0u8..=255, 0..192)) {
        if let Ok(req) = decode_evaluate(&bytes) {
            let enc = encode_evaluate(&req);
            let again = decode_evaluate(&enc[1..]).expect("re-encoded request decodes");
            prop_assert!(req_bits_eq(&req, &again));
        }
    }

    /// Response encode→decode is the identity, bit for bit.
    #[test]
    fn response_round_trips_bitwise(
        potentials in proptest::collection::vec(arb_bits_f64(), 0..40),
        forces in proptest::bool::ANY,
        batch in 0usize..1000,
    ) {
        let fields = forces.then(|| {
            potentials.iter().map(|&p| [p, -p, p * 0.5]).collect::<Vec<_>>()
        });
        let resp = EvalResponse {
            potentials: potentials.clone(),
            fields,
            batch_size: batch,
        };
        let enc = encode_eval_response(&resp);
        let back = decode_eval_response(&enc, forces).expect("self-encoded response decodes");
        prop_assert_eq!(back.batch_size, resp.batch_size);
        prop_assert_eq!(back.potentials.len(), resp.potentials.len());
        for (a, b) in back.potentials.iter().zip(&resp.potentials) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(back.fields.is_some(), resp.fields.is_some());
        if let (Some(x), Some(y)) = (&back.fields, &resp.fields) {
            for (r, s) in x.iter().zip(y) {
                for (a, b) in r.iter().zip(s) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    /// write_frame→read_frame is the identity for in-cap payloads, and
    /// a length prefix over MAX_FRAME is rejected without reading a body.
    #[test]
    fn frames_round_trip_and_cap_holds(
        payload in proptest::collection::vec(0u8..=255, 0..512),
        over in 1u32..1024,
    ) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).expect("write to vec");
        let back = read_frame(&mut wire.as_slice()).expect("read own frame");
        prop_assert_eq!(&back, &payload);

        let mut hostile = Vec::new();
        hostile.extend_from_slice(&(MAX_FRAME + over).to_le_bytes());
        hostile.extend_from_slice(&payload);
        prop_assert!(read_frame(&mut hostile.as_slice()).is_err());
    }

    /// Text frames round-trip arbitrary (printable-ish) strings.
    #[test]
    fn text_round_trips(chars in proptest::collection::vec(32u8..127, 0..64)) {
        let s = String::from_utf8(chars).expect("ascii");
        // The leading status byte (0 = ok) is consumed by the decoder.
        let enc = encode_text(&s);
        let back = decode_text(&enc).expect("self-encoded text decodes");
        prop_assert_eq!(back, s);
    }
}
