//! The coalescing batcher: requests with identical [`Shape`]s are merged
//! within a time/size window into one multiple-instance evaluation.
//!
//! Window semantics: the first request of a shape opens that shape's
//! window; the batch closes when either `window` has elapsed since it
//! opened or `max_batch` requests have accumulated, whichever comes
//! first. A closing batch takes at most `max_batch` requests (oldest
//! first); any overflow stays queued with its original arrival-ordering
//! and is immediately ready. During shutdown every pending batch closes
//! at once, so no request is dropped.
//!
//! Plain mutex-and-condvar concurrency — via the `fmm_sync` facade, so
//! the identical code path runs under `std::sync` in production and
//! under the fmm-check model scheduler during verification: a `Mutex`
//! over a `BTreeMap` of per-shape queues plus one `Condvar`; executor
//! workers block in [`Batcher::next_batch`] with a deadline-aware timed
//! wait. Each submitted job carries a oneshot (an `mpsc` channel of
//! capacity one) on which the executor delivers the result.

use crate::protocol::{EvalRequest, EvalResponse, Shape};
use fmm_sync::mpsc;
use fmm_sync::time::Instant;
use fmm_sync::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::time::Duration;

/// One queued request plus its response channel.
pub struct Job {
    pub positions: Vec<[f64; 3]>,
    pub charges: Vec<f64>,
    pub tx: mpsc::SyncSender<Result<EvalResponse, String>>,
}

struct ShapeQueue {
    jobs: Vec<Job>,
    /// When the currently-pending batch opened (first job's arrival).
    opened: Instant,
}

struct State {
    // det: a BTreeMap (Shape: Ord), so batch pick order under equal
    // deadlines is the key order, never hash order.
    queues: BTreeMap<Shape, ShapeQueue>,
    shutdown: bool,
}

pub struct Batcher {
    state: Mutex<State>,
    cond: Condvar,
    window: Duration,
    max_batch: usize,
}

impl Batcher {
    pub fn new(window: Duration, max_batch: usize) -> Self {
        Batcher {
            state: Mutex::new(State {
                queues: BTreeMap::new(),
                shutdown: false,
            }),
            cond: Condvar::new(),
            window,
            max_batch: max_batch.max(1),
        }
    }

    /// Enqueue a request; returns the receiver its result arrives on.
    /// Returns `Err` with the request if the batcher is shutting down.
    pub fn submit(
        &self,
        req: EvalRequest,
    ) -> Result<mpsc::Receiver<Result<EvalResponse, String>>, String> {
        let (tx, rx) = mpsc::sync_channel(1);
        let job = Job {
            positions: req.positions,
            charges: req.charges,
            tx,
        };
        let mut st = self.state.lock().unwrap();
        if st.shutdown {
            return Err("server is shutting down".into());
        }
        let q = st.queues.entry(req.shape).or_insert_with(|| ShapeQueue {
            jobs: Vec::new(),
            opened: Instant::now(),
        });
        if q.jobs.is_empty() {
            q.opened = Instant::now();
        }
        q.jobs.push(job);
        // Wake a worker: either to run a now-full batch or to arm the
        // window timer for a fresh one.
        self.cond.notify_all();
        Ok(rx)
    }

    /// Total requests currently queued (all shapes).
    pub fn queue_depth(&self) -> usize {
        let st = self.state.lock().unwrap();
        st.queues.values().map(|q| q.jobs.len()).sum()
    }

    /// When the pending batch for `shape` will close if no further
    /// traffic arrives (its opening instant plus the window), or `None`
    /// when nothing is queued for that shape. Introspection for tests
    /// and the fmm-check models: "overflow keeps its opening tick" is
    /// asserted against this value — a batcher that reset `opened` on
    /// drain would report a strictly later deadline for the leftovers.
    pub fn pending_deadline(&self, shape: &Shape) -> Option<Instant> {
        let st = self.state.lock().unwrap();
        st.queues
            .get(shape)
            .filter(|q| !q.jobs.is_empty())
            .map(|q| q.opened + self.window)
    }

    /// Block until a batch is ready and take it. Returns `None` once the
    /// batcher is shut down *and* fully drained.
    pub fn next_batch(&self) -> Option<(Shape, Vec<Job>)> {
        let mut st = self.state.lock().unwrap();
        loop {
            let now = Instant::now();
            // Ready: full, window elapsed, or draining at shutdown.
            let ready = st
                .queues
                .iter()
                .find(|(_, q)| {
                    !q.jobs.is_empty()
                        && (st.shutdown
                            || q.jobs.len() >= self.max_batch
                            || now.duration_since(q.opened) >= self.window)
                })
                .map(|(s, _)| *s);
            if let Some(shape) = ready {
                let q = st.queues.get_mut(&shape).unwrap();
                let take = q.jobs.len().min(self.max_batch);
                let jobs: Vec<Job> = q.jobs.drain(..take).collect();
                // Leftovers keep their original opening time, so they
                // are immediately ready for the next worker.
                return Some((shape, jobs));
            }
            if st.shutdown {
                return None;
            }
            // Sleep until the earliest pending window closes (or forever
            // if nothing is queued — a submit will notify).
            let earliest = st
                .queues
                .values()
                .filter(|q| !q.jobs.is_empty())
                .map(|q| q.opened + self.window)
                .min();
            st = match earliest {
                None => self.cond.wait(st).unwrap(),
                Some(deadline) => {
                    let timeout = deadline.saturating_duration_since(now);
                    self.cond.wait_timeout(st, timeout).unwrap().0
                }
            };
        }
    }

    /// Begin draining: no new submissions; queued batches close at once;
    /// `next_batch` returns `None` once empty.
    pub fn shutdown(&self) {
        let mut st = self.state.lock().unwrap();
        st.shutdown = true;
        self.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(depth: u32) -> Shape {
        Shape {
            order: 3,
            depth,
            separation: 2,
            mixed: false,
            forces: false,
        }
    }

    fn request(depth: u32, n: usize) -> EvalRequest {
        EvalRequest {
            shape: shape(depth),
            positions: vec![[0.5; 3]; n],
            charges: vec![1.0; n],
        }
    }

    #[test]
    fn full_batch_closes_before_the_window() {
        let b = Batcher::new(Duration::from_secs(3600), 4);
        for _ in 0..4 {
            b.submit(request(2, 1)).unwrap();
        }
        let t0 = Instant::now();
        let (s, jobs) = b.next_batch().unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "did not wait the window"
        );
        assert_eq!(s, shape(2));
        assert_eq!(jobs.len(), 4);
    }

    #[test]
    fn window_closes_a_partial_batch() {
        let b = Batcher::new(Duration::from_millis(20), 1000);
        b.submit(request(2, 1)).unwrap();
        b.submit(request(2, 1)).unwrap();
        let (_, jobs) = b.next_batch().unwrap();
        assert_eq!(jobs.len(), 2);
    }

    #[test]
    fn shapes_do_not_mix_and_overflow_stays_queued() {
        let b = Batcher::new(Duration::from_millis(5), 3);
        for _ in 0..4 {
            b.submit(request(2, 1)).unwrap();
        }
        b.submit(request(3, 1)).unwrap();
        let (s1, j1) = b.next_batch().unwrap();
        assert_eq!((s1.depth, j1.len()), (2, 3));
        // The overflow job and the depth-3 job drain as separate batches.
        let mut rest: Vec<(u32, usize)> = (0..2)
            .map(|_| {
                let (s, j) = b.next_batch().unwrap();
                (s.depth, j.len())
            })
            .collect();
        rest.sort_unstable();
        assert_eq!(rest, vec![(2, 1), (3, 1)]);
    }

    #[test]
    fn shutdown_drains_and_terminates() {
        let b = Batcher::new(Duration::from_secs(3600), 1000);
        b.submit(request(2, 1)).unwrap();
        b.shutdown();
        assert!(b.submit(request(2, 1)).is_err());
        let (_, jobs) = b.next_batch().unwrap();
        assert_eq!(jobs.len(), 1);
        assert!(b.next_batch().is_none());
    }
}
