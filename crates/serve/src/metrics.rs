//! Service counters, exposed as Prometheus-style text at `/metrics`.
//!
//! PetFMM's lesson (PAPERS.md): once workloads are heterogeneous,
//! per-request cost accounting — queue depth, batch occupancy — must be
//! first-class. Everything here is a relaxed atomic; the registry's own
//! counters (`plan_builds` / `plan_hits` / evictions) are scraped live
//! from the shared [`fmm_core::PlanRegistry`] at render time.

use fmm_core::PlanRegistry;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Debug, Default)]
pub struct Metrics {
    /// Evaluation requests accepted (both front doors).
    pub requests_total: AtomicU64,
    /// Evaluation requests answered with an error.
    pub errors_total: AtomicU64,
    /// Coalesced batches executed.
    pub batches_total: AtomicU64,
    /// Requests that rode in those batches (Σ batch sizes). The ratio
    /// to `batches_total` is the mean batch occupancy.
    pub batched_requests_total: AtomicU64,
    /// Requests whose window closed with them alone (occupancy 1).
    pub solo_batches_total: AtomicU64,
    /// Particles evaluated.
    pub particles_total: AtomicU64,
    /// Requests over the binary protocol.
    pub binary_requests_total: AtomicU64,
    /// Requests over the HTTP front door.
    pub http_requests_total: AtomicU64,
    /// Connections accepted.
    pub connections_total: AtomicU64,
    /// Peak queue depth observed by the batcher.
    pub queue_depth_peak: AtomicU64,
}

impl Metrics {
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(counter: &AtomicU64, x: u64) {
        counter.fetch_add(x, Ordering::Relaxed);
    }

    pub fn max(counter: &AtomicU64, x: u64) {
        counter.fetch_max(x, Ordering::Relaxed);
    }

    /// Render the Prometheus-style scrape body, combining the service
    /// counters with the plan registry's.
    pub fn render(&self, registry: &PlanRegistry) -> String {
        let mut s = String::new();
        let mut line = |name: &str, help: &str, v: u64| {
            let _ = writeln!(s, "# HELP {name} {help}");
            let _ = writeln!(s, "# TYPE {name} counter");
            let _ = writeln!(s, "{name} {v}");
        };
        line(
            "fmm_requests_total",
            "evaluation requests accepted",
            self.requests_total.load(Ordering::Relaxed),
        );
        line(
            "fmm_errors_total",
            "evaluation requests answered with an error",
            self.errors_total.load(Ordering::Relaxed),
        );
        line(
            "fmm_batches_total",
            "coalesced batches executed",
            self.batches_total.load(Ordering::Relaxed),
        );
        line(
            "fmm_batched_requests_total",
            "requests summed over executed batches",
            self.batched_requests_total.load(Ordering::Relaxed),
        );
        line(
            "fmm_solo_batches_total",
            "batches that closed with a single request",
            self.solo_batches_total.load(Ordering::Relaxed),
        );
        line(
            "fmm_particles_total",
            "particles evaluated",
            self.particles_total.load(Ordering::Relaxed),
        );
        line(
            "fmm_binary_requests_total",
            "requests over the binary protocol",
            self.binary_requests_total.load(Ordering::Relaxed),
        );
        line(
            "fmm_http_requests_total",
            "requests over the HTTP front door",
            self.http_requests_total.load(Ordering::Relaxed),
        );
        line(
            "fmm_connections_total",
            "connections accepted",
            self.connections_total.load(Ordering::Relaxed),
        );
        line(
            "fmm_queue_depth_peak",
            "peak batcher queue depth observed",
            self.queue_depth_peak.load(Ordering::Relaxed),
        );
        let reg = registry.stats();
        line(
            "fmm_plan_builds",
            "traversal plans built by the shared registry",
            reg.plan_builds,
        );
        line(
            "fmm_plan_hits",
            "plan lookups served from the shared registry",
            reg.plan_hits,
        );
        line(
            "fmm_plan_evictions",
            "plans displaced by the registry's LRU bound",
            reg.evictions,
        );
        line(
            "fmm_plan_entries",
            "plans currently resident in the registry",
            reg.entries as u64,
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_registry_counters() {
        let m = Metrics::default();
        Metrics::inc(&m.requests_total);
        Metrics::add(&m.particles_total, 64);
        let reg = PlanRegistry::new(4);
        let text = m.render(&reg);
        assert!(text.contains("fmm_requests_total 1"));
        assert!(text.contains("fmm_particles_total 64"));
        assert!(text.contains("fmm_plan_builds 0"));
    }
}
