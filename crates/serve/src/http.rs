//! Minimal HTTP/1.1 front door: enough of the protocol for `curl` and
//! load generators — request-line + headers + `Content-Length` body, one
//! request per connection (`Connection: close`). The JSON request/
//! response mapping for `/evaluate` lives here too.

use crate::json::{self, Value};
use crate::protocol::{EvalRequest, EvalResponse, Shape};
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Read, Write};

/// One parsed HTTP request.
pub struct HttpRequest {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
}

/// Read a single HTTP request from the stream.
pub fn read_request<R: Read>(r: &mut BufReader<R>) -> io::Result<HttpRequest> {
    let mut line = String::new();
    r.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no path"))?
        .to_string();
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        r.read_line(&mut h)?;
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, val)) = h.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = val
                    .trim()
                    .parse()
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}")))?;
            }
        }
    }
    if content_length > crate::protocol::MAX_FRAME as usize {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;
    Ok(HttpRequest { method, path, body })
}

/// Write an HTTP response and close-worthy headers.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        reason,
        content_type,
        body.len()
    )?;
    w.write_all(body)?;
    w.flush()
}

/// Parse the `/evaluate` JSON body. Required: `positions` (flat, 3·n) and
/// `charges` (n). Optional with defaults: `order` 5, `depth` 2,
/// `separation` 2, `precision` `"f64"`, `forces` false.
pub fn eval_request_from_json(body: &[u8]) -> Result<EvalRequest, String> {
    let text = std::str::from_utf8(body).map_err(|e| e.to_string())?;
    let v = json::parse(text)?;
    let positions_flat = v
        .get("positions")
        .and_then(Value::as_f64_array)
        .ok_or("missing numeric array \"positions\"")?;
    if positions_flat.len() % 3 != 0 {
        return Err(format!(
            "\"positions\" length {} is not a multiple of 3",
            positions_flat.len()
        ));
    }
    let charges = v
        .get("charges")
        .and_then(Value::as_f64_array)
        .ok_or("missing numeric array \"charges\"")?;
    let order = v
        .get("order")
        .map(|x| {
            x.as_usize()
                .ok_or("\"order\" must be a non-negative integer")
        })
        .transpose()?
        .unwrap_or(5);
    let depth = v
        .get("depth")
        .map(|x| {
            x.as_usize()
                .ok_or("\"depth\" must be a non-negative integer")
        })
        .transpose()?
        .unwrap_or(2);
    let separation = v
        .get("separation")
        .map(|x| x.as_usize().ok_or("\"separation\" must be 1 or 2"))
        .transpose()?
        .unwrap_or(2);
    let mixed = match v.get("precision").map(|x| x.as_str()) {
        None => false,
        Some(Some("f64")) => false,
        Some(Some("mixed")) => true,
        Some(_) => return Err("\"precision\" must be \"f64\" or \"mixed\"".into()),
    };
    let forces = v
        .get("forces")
        .map(|x| x.as_bool().ok_or("\"forces\" must be a boolean"))
        .transpose()?
        .unwrap_or(false);
    let positions: Vec<[f64; 3]> = positions_flat
        .chunks_exact(3)
        .map(|c| [c[0], c[1], c[2]])
        .collect();
    Ok(EvalRequest {
        shape: Shape {
            order: order.min(u16::MAX as usize) as u16,
            depth: depth.min(u32::MAX as usize) as u32,
            separation: separation.min(u8::MAX as usize) as u8,
            mixed,
            forces,
        },
        positions,
        charges,
    })
}

/// Render the `/evaluate` JSON response.
pub fn eval_response_to_json(resp: &EvalResponse) -> String {
    let mut obj = BTreeMap::new();
    obj.insert("n".to_string(), Value::Num(resp.potentials.len() as f64));
    obj.insert("batch_size".to_string(), Value::Num(resp.batch_size as f64));
    obj.insert("potentials".to_string(), json::num_array(&resp.potentials));
    if let Some(f) = &resp.fields {
        let flat: Vec<f64> = f.iter().flat_map(|r| r.iter().copied()).collect();
        obj.insert("fields".to_string(), json::num_array(&flat));
    }
    json::write(&Value::Obj(obj))
}

/// Render a JSON error body.
pub fn error_to_json(msg: &str) -> String {
    let mut obj = BTreeMap::new();
    obj.insert("error".to_string(), Value::Str(msg.to_string()));
    json::write(&Value::Obj(obj))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_evaluate_body() {
        let body =
            br#"{"positions":[0.1,0.2,0.3,0.4,0.5,0.6],"charges":[1,-1],"depth":2,"order":3}"#;
        let req = eval_request_from_json(body).unwrap();
        assert_eq!(req.positions.len(), 2);
        assert_eq!(req.shape.order, 3);
        assert_eq!(req.shape.depth, 2);
        assert!(!req.shape.forces);
    }

    #[test]
    fn json_response_round_trips_potentials_bitwise() {
        let resp = EvalResponse {
            potentials: vec![1.0 / 3.0, -2.5e-7],
            fields: None,
            batch_size: 4,
        };
        let text = eval_response_to_json(&resp);
        let v = json::parse(&text).unwrap();
        let back = v.get("potentials").unwrap().as_f64_array().unwrap();
        for (a, b) in back.iter().zip(&resp.potentials) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(v.get("batch_size").unwrap().as_usize(), Some(4));
    }

    #[test]
    fn http_request_parses_from_bytes() {
        let raw = b"POST /evaluate HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let mut r = BufReader::new(&raw[..]);
        let req = read_request(&mut r).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/evaluate");
        assert_eq!(req.body, b"abcd");
    }
}
