//! The serve request lifecycle as a typed state machine.
//!
//! Every evaluation request walks the same path through the server:
//! its connection is **accept**ed, a **frame** is read (binary frame or
//! HTTP request), the decoded job is **enqueue**d into the batcher, a
//! worker **batch**es it, and exactly one terminal is reached — a
//! **reply** carrying the result (or a diagnostic for a malformed
//! frame), or the **drain** terminal when shutdown rejects the request
//! before it is queued. This module lifts that path out of the handler
//! control flow into data: [`Lifecycle`] is the transition relation
//! itself, and [`Tracker`] is a runtime witness the handlers drive, so
//! a handler that strays from the machine panics at the exact illegal
//! step instead of silently inventing a new path.
//!
//! The machine is what `fmm-verify` analyzes statically (its
//! `lifecycle-progress` and `no-reply-after-shutdown` passes walk
//! [`Lifecycle::serve`]), and what the handlers follow dynamically (the
//! [`Tracker`] only permits transitions the machine contains). The two
//! views pin each other: the passes prove the machine is sound, the
//! tracker proves the code implements the machine.
//!
//! Transitions taken only while shutdown is in effect carry a
//! `during_shutdown` tag. The drain guarantee — a job accepted by
//! [`crate::Batcher::submit`] is *always* completed, even across
//! shutdown — is deliberately not re-modelled here; it is the
//! `shutdown-drains-all-jobs` property fmm-check proves over every
//! interleaving. Here it shows up as the absence of shutdown-tagged
//! edges out of `Enqueue`/`Batch` on the happy path.

/// One request's position in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum State {
    /// Connection accepted, no frame read yet.
    Accept,
    /// A raw frame (or HTTP request) is in hand.
    Frame,
    /// The decoded job sits in the batcher queue.
    Enqueue,
    /// A worker has coalesced the job into a running batch.
    Batch,
    /// Terminal: a response was written (result, or a diagnostic for a
    /// malformed/invalid frame).
    Reply,
    /// Terminal: the request ended on the shutdown path — rejected
    /// before queueing, or its connection wound down with the server.
    Drain,
}

impl State {
    pub const ALL: [State; 6] = [
        State::Accept,
        State::Frame,
        State::Enqueue,
        State::Batch,
        State::Reply,
        State::Drain,
    ];

    pub fn name(self) -> &'static str {
        match self {
            State::Accept => "accept",
            State::Frame => "frame",
            State::Enqueue => "enqueue",
            State::Batch => "batch",
            State::Reply => "reply",
            State::Drain => "drain",
        }
    }

    /// Terminal states have no outgoing transitions: reaching one ends
    /// the request, and a request reaches exactly one.
    pub fn is_terminal(self) -> bool {
        matches!(self, State::Reply | State::Drain)
    }
}

/// One edge of the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    pub from: State,
    pub to: State,
    /// What the server does on this edge (diagnostics and reports).
    pub label: &'static str,
    /// Taken only once shutdown has been observed. The
    /// `no-reply-after-shutdown` pass requires every tagged edge to end
    /// in [`State::Drain`].
    pub during_shutdown: bool,
}

/// A request-lifecycle state machine: the transition relation plus the
/// fixed start state [`State::Accept`].
#[derive(Debug, Clone)]
pub struct Lifecycle {
    transitions: Vec<Transition>,
}

impl Lifecycle {
    /// The machine the production handlers implement.
    pub fn serve() -> Lifecycle {
        let t = |from, to, label, during_shutdown| Transition {
            from,
            to,
            label,
            during_shutdown,
        };
        Lifecycle {
            transitions: vec![
                t(State::Accept, State::Frame, "read-frame", false),
                t(State::Accept, State::Drain, "listener-closed", true),
                t(State::Frame, State::Reply, "error-reply", false),
                t(State::Frame, State::Enqueue, "submit-accepted", false),
                t(State::Frame, State::Drain, "rejected-shutting-down", true),
                t(State::Enqueue, State::Batch, "coalesced", false),
                // Defensive edge: an executor lost mid-flight abandons
                // the job. fmm-check's shutdown-drains model proves the
                // protocol never takes it; the handler keeps it so a
                // violated drain guarantee is a tracked Drain, not an
                // untracked code path.
                t(State::Enqueue, State::Drain, "executor-lost", true),
                t(State::Batch, State::Reply, "result-delivered", false),
            ],
        }
    }

    /// `self` plus one extra edge — the seam `fmm-verify --mutate
    /// reply-after-shutdown` uses to prove its passes reject a machine
    /// that answers on the shutdown path.
    pub fn with_edge(
        mut self,
        from: State,
        to: State,
        label: &'static str,
        during_shutdown: bool,
    ) -> Lifecycle {
        self.transitions.push(Transition {
            from,
            to,
            label,
            during_shutdown,
        });
        self
    }

    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// The edge `from → to`, if the machine contains one.
    pub fn edge(&self, from: State, to: State) -> Option<&Transition> {
        self.transitions
            .iter()
            .find(|t| t.from == from && t.to == to)
    }

    /// Start a runtime witness at [`State::Accept`].
    pub fn track(&self) -> Tracker<'_> {
        Tracker {
            machine: self,
            state: State::Accept,
        }
    }
}

/// The machine the handlers witness against (built once).
pub fn serve_machine() -> &'static Lifecycle {
    static MACHINE: std::sync::OnceLock<Lifecycle> = std::sync::OnceLock::new();
    MACHINE.get_or_init(Lifecycle::serve)
}

/// A runtime witness: one request's walk through a [`Lifecycle`].
/// Every step is checked against the machine; an illegal step panics
/// with the attempted edge, which turns "handler drifted from the
/// documented lifecycle" from a review finding into a test failure.
#[derive(Debug)]
pub struct Tracker<'a> {
    machine: &'a Lifecycle,
    state: State,
}

impl Tracker<'_> {
    /// Take the edge to `to`. Panics if the machine has no such edge.
    pub fn advance(&mut self, to: State) {
        match self.machine.edge(self.state, to) {
            Some(_) => self.state = to,
            None => panic!(
                "lifecycle violation: no transition {} -> {} in the serve machine",
                self.state.name(),
                to.name()
            ),
        }
    }

    pub fn state(&self) -> State {
        self.state
    }

    pub fn finished(&self) -> bool {
        self.state.is_terminal()
    }

    /// Assert the walk ended (used by handlers after writing the
    /// response): exactly one terminal, no request left mid-machine.
    pub fn finish(&self) {
        assert!(
            self.finished(),
            "lifecycle violation: request ended in non-terminal state {}",
            self.state.name()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_walks_to_reply() {
        let m = Lifecycle::serve();
        let mut t = m.track();
        for s in [State::Frame, State::Enqueue, State::Batch, State::Reply] {
            t.advance(s);
        }
        t.finish();
    }

    #[test]
    fn shutdown_reject_walks_to_drain() {
        let m = Lifecycle::serve();
        let mut t = m.track();
        t.advance(State::Frame);
        t.advance(State::Drain);
        t.finish();
    }

    #[test]
    fn error_reply_is_terminal_from_frame() {
        let m = Lifecycle::serve();
        let mut t = m.track();
        t.advance(State::Frame);
        t.advance(State::Reply);
        t.finish();
    }

    #[test]
    #[should_panic(expected = "no transition accept -> batch")]
    fn skipping_states_panics() {
        let m = Lifecycle::serve();
        let mut t = m.track();
        t.advance(State::Batch);
    }

    #[test]
    #[should_panic(expected = "non-terminal state enqueue")]
    fn finishing_mid_machine_panics() {
        let m = Lifecycle::serve();
        let mut t = m.track();
        t.advance(State::Frame);
        t.advance(State::Enqueue);
        t.finish();
    }

    #[test]
    fn every_shutdown_edge_targets_drain() {
        for t in Lifecycle::serve().transitions() {
            if t.during_shutdown {
                assert_eq!(t.to, State::Drain, "{} -> {}", t.from.name(), t.to.name());
            }
        }
    }

    #[test]
    fn terminals_have_no_outgoing_edges() {
        for t in Lifecycle::serve().transitions() {
            assert!(!t.from.is_terminal());
        }
    }
}
