//! The std-only thread-pool TCP server.
//!
//! Topology: one acceptor thread feeds accepted connections through an
//! `mpsc` channel to `conn_threads` connection workers (each handles one
//! connection at a time: binary frame loop or a single HTTP exchange);
//! evaluation requests flow into the [`Batcher`], and `exec_threads`
//! executor workers pull coalesced batches and run them on the
//! [`Engine`]. Graceful shutdown: a shutdown request (either front door)
//! flips an `AtomicBool`, closes the batcher (drain mode), and self-
//! connects to the loopback listener to unblock the blocking `accept`;
//! every queued request is still answered before the threads exit.

use crate::batcher::Batcher;
use crate::engine::Engine;
use crate::http;
use crate::json::{self, Value};
use crate::lifecycle::{self, State, Tracker};
use crate::metrics::Metrics;
use crate::protocol::{self, Opcode};
use fmm_sync::atomic::{AtomicBool, Ordering};
use fmm_sync::mpsc;
use fmm_sync::thread::JoinHandle;
use fmm_sync::Mutex;
use std::collections::BTreeMap;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Connection-handling threads.
    pub conn_threads: usize,
    /// Batch-executing threads.
    pub exec_threads: usize,
    /// Coalescing window: how long the first request of a shape waits
    /// for company before its batch closes.
    pub window: Duration,
    /// Largest coalesced batch.
    pub max_batch: usize,
    /// Shared plan-registry capacity (resident plans).
    pub registry_capacity: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            conn_threads: 4,
            exec_threads: 2,
            window: Duration::from_millis(2),
            max_batch: 64,
            registry_capacity: 64,
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// Everything a connection handler needs to trigger a graceful stop.
struct ShutdownHandle {
    flag: AtomicBool,
    addr: SocketAddr,
    batcher: Arc<Batcher>,
}

impl ShutdownHandle {
    fn trigger(&self) {
        if self.flag.swap(true, Ordering::SeqCst) {
            return; // already shutting down
        }
        self.batcher.shutdown();
        // Unblock the acceptor's blocking accept().
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running server; dropping it does NOT stop it — call
/// [`Server::shutdown`] or let a client hit the shutdown endpoint and
/// [`Server::join`].
pub struct Server {
    local_addr: SocketAddr,
    engine: Arc<Engine>,
    shutdown: Arc<ShutdownHandle>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start all threads.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let engine = Arc::new(Engine::new(cfg.registry_capacity));
        let batcher = Arc::new(Batcher::new(cfg.window, cfg.max_batch));
        let shutdown = Arc::new(ShutdownHandle {
            flag: AtomicBool::new(false),
            addr: local_addr,
            batcher: Arc::clone(&batcher),
        });

        let mut threads = Vec::new();

        // Executor workers: drain the batcher until shutdown.
        for i in 0..cfg.exec_threads.max(1) {
            let eng = Arc::clone(&engine);
            let bat = Arc::clone(&batcher);
            threads.push(
                fmm_sync::thread::Builder::new()
                    .name(format!("fmm-exec-{i}"))
                    .spawn(move || {
                        while let Some((shape, jobs)) = bat.next_batch() {
                            eng.run_batch(shape, jobs);
                        }
                    })?,
            );
        }

        // Connection workers.
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        for i in 0..cfg.conn_threads.max(1) {
            let rx = Arc::clone(&conn_rx);
            let eng = Arc::clone(&engine);
            let bat = Arc::clone(&batcher);
            let sd = Arc::clone(&shutdown);
            let read_timeout = cfg.read_timeout;
            threads.push(
                fmm_sync::thread::Builder::new()
                    .name(format!("fmm-conn-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only for the recv, not the handling.
                        let stream = rx.lock().unwrap().recv();
                        match stream {
                            Ok(s) => {
                                let _ = s.set_read_timeout(Some(read_timeout));
                                let _ = s.set_nodelay(true);
                                let _ = handle_connection(s, &eng, &bat, &sd);
                            }
                            Err(_) => return, // acceptor gone: drain done
                        }
                    })?,
            );
        }

        // Acceptor.
        {
            let sd = Arc::clone(&shutdown);
            let eng = Arc::clone(&engine);
            threads.push(
                fmm_sync::thread::Builder::new()
                    .name("fmm-accept".into())
                    .spawn(move || {
                        for stream in listener.incoming() {
                            if sd.flag.load(Ordering::SeqCst) {
                                break; // the wake-up connection lands here
                            }
                            if let Ok(s) = stream {
                                Metrics::inc(&eng.metrics.connections_total);
                                if conn_tx.send(s).is_err() {
                                    break;
                                }
                            }
                        }
                        // Dropping conn_tx lets the connection workers
                        // finish their queues and exit.
                    })?,
            );
        }

        Ok(Server {
            local_addr,
            engine,
            shutdown,
            threads,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Trigger a graceful stop from the owning process.
    pub fn shutdown(&self) {
        self.shutdown.trigger();
    }

    /// Wait for all threads (returns once a shutdown has been triggered
    /// and every queued request answered).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Route one connection: binary protocol if it opens with the magic,
/// otherwise a single HTTP exchange.
fn handle_connection(
    mut stream: TcpStream,
    engine: &Arc<Engine>,
    batcher: &Arc<Batcher>,
    shutdown: &Arc<ShutdownHandle>,
) -> io::Result<()> {
    let mut head = [0u8; 4];
    let n = stream.peek(&mut head)?;
    if n == 4 && head == protocol::MAGIC {
        handle_binary(stream, engine, batcher, shutdown)
    } else {
        handle_http(&mut stream, engine, batcher, shutdown)
    }
}

/// Submit an evaluation and wait for its result, driving the caller's
/// lifecycle witness (at [`State::Frame`] on entry). Validation errors
/// leave the witness at `Frame` — the caller's error reply takes the
/// `error-reply` edge; the shutdown and executor-lost exits advance to
/// [`State::Drain`] here, where the distinction is visible.
fn evaluate(
    engine: &Arc<Engine>,
    batcher: &Arc<Batcher>,
    req: protocol::EvalRequest,
    lc: &mut Tracker<'_>,
) -> Result<protocol::EvalResponse, String> {
    let m = &engine.metrics;
    Metrics::inc(&m.requests_total);
    if req.positions.len() != req.charges.len() {
        Metrics::inc(&m.errors_total);
        return Err(format!(
            "{} positions vs {} charges",
            req.positions.len(),
            req.charges.len()
        ));
    }
    if req.positions.is_empty() {
        Metrics::inc(&m.errors_total);
        return Err("no particles".into());
    }
    let rx = match batcher.submit(req) {
        Ok(rx) => rx,
        Err(e) => {
            Metrics::inc(&m.errors_total);
            lc.advance(State::Drain);
            return Err(e);
        }
    };
    lc.advance(State::Enqueue);
    Metrics::max(&m.queue_depth_peak, batcher.queue_depth() as u64);
    match rx.recv() {
        Ok(r) => {
            lc.advance(State::Batch);
            r
        }
        Err(_) => {
            lc.advance(State::Drain);
            Err("executor dropped the request".into())
        }
    }
}

/// Close a request's lifecycle walk after its response went out: any
/// walk still mid-machine took a reply edge (`error-reply` from
/// `Frame`, `result-delivered` from `Batch`); drain exits already sit
/// on their terminal.
fn finish_replied(mut lc: Tracker<'_>) {
    if !lc.finished() {
        lc.advance(State::Reply);
    }
    lc.finish();
}

/// The `/info` document.
fn info_json(engine: &Arc<Engine>) -> String {
    let reg = engine.registry().stats();
    let mut registry = BTreeMap::new();
    registry.insert("plan_builds".into(), Value::Num(reg.plan_builds as f64));
    registry.insert("plan_hits".into(), Value::Num(reg.plan_hits as f64));
    registry.insert("evictions".into(), Value::Num(reg.evictions as f64));
    registry.insert("entries".into(), Value::Num(reg.entries as f64));
    registry.insert("capacity".into(), Value::Num(reg.capacity as f64));
    let plans: Vec<Value> = engine
        .registry()
        .snapshot()
        .into_iter()
        .map(|(k, bytes)| {
            let mut p = BTreeMap::new();
            p.insert("depth".into(), Value::Num(k.depth as f64));
            p.insert("k".into(), Value::Num(k.k as f64));
            p.insert("bytes".into(), Value::Num(bytes as f64));
            Value::Obj(p)
        })
        .collect();
    let mut obj = BTreeMap::new();
    obj.insert(
        "service".into(),
        Value::Str("fmm-serve (Anderson O(N) hierarchical N-body)".into()),
    );
    obj.insert(
        "kernel".into(),
        Value::Str(fmm_linalg::Kernel::detect().name().to_string()),
    );
    obj.insert(
        "transports".into(),
        Value::Arr(
            fmm_core::Fabric::ALL
                .iter()
                .map(|f| Value::Str(f.name().to_string()))
                .collect(),
        ),
    );
    obj.insert("registry".into(), Value::Obj(registry));
    obj.insert("plans".into(), Value::Arr(plans));
    json::write(&Value::Obj(obj))
}

fn handle_binary(
    mut stream: TcpStream,
    engine: &Arc<Engine>,
    batcher: &Arc<Batcher>,
    shutdown: &Arc<ShutdownHandle>,
) -> io::Result<()> {
    use std::io::Read;
    let mut magic = [0u8; 4];
    stream.read_exact(&mut magic)?;
    loop {
        let payload = match protocol::read_frame(&mut stream) {
            Ok(p) => p,
            Err(_) => return Ok(()), // EOF or timeout: client done
        };
        if payload.is_empty() {
            protocol::write_frame(&mut stream, &protocol::encode_error("empty frame"))?;
            continue;
        }
        match Opcode::from_u8(payload[0]) {
            Some(Opcode::Evaluate) => {
                Metrics::inc(&engine.metrics.binary_requests_total);
                let mut lc = lifecycle::serve_machine().track();
                lc.advance(State::Frame);
                let resp = match protocol::decode_evaluate(&payload[1..]) {
                    Ok(req) => evaluate(engine, batcher, req, &mut lc),
                    Err(e) => Err(e),
                };
                let frame = match resp {
                    Ok(r) => protocol::encode_eval_response(&r),
                    Err(e) => protocol::encode_error(&e),
                };
                protocol::write_frame(&mut stream, &frame)?;
                finish_replied(lc);
            }
            Some(Opcode::Info) => {
                protocol::write_frame(&mut stream, &protocol::encode_text(&info_json(engine)))?;
            }
            Some(Opcode::Metrics) => {
                let text = engine.metrics.render(engine.registry());
                protocol::write_frame(&mut stream, &protocol::encode_text(&text))?;
            }
            Some(Opcode::Shutdown) => {
                protocol::write_frame(&mut stream, &protocol::encode_text("draining"))?;
                shutdown.trigger();
                return Ok(());
            }
            None => {
                protocol::write_frame(
                    &mut stream,
                    &protocol::encode_error(&format!("unknown opcode {}", payload[0])),
                )?;
            }
        }
    }
}

fn handle_http(
    stream: &mut TcpStream,
    engine: &Arc<Engine>,
    batcher: &Arc<Batcher>,
    shutdown: &Arc<ShutdownHandle>,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let req = match http::read_request(&mut reader) {
        Ok(r) => r,
        Err(_) => return Ok(()), // unparseable / timed-out request
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/evaluate") => {
            Metrics::inc(&engine.metrics.http_requests_total);
            let mut lc = lifecycle::serve_machine().track();
            lc.advance(State::Frame);
            let result = http::eval_request_from_json(&req.body)
                .and_then(|er| evaluate(engine, batcher, er, &mut lc));
            let out = match result {
                Ok(r) => http::write_response(
                    stream,
                    200,
                    "OK",
                    "application/json",
                    http::eval_response_to_json(&r).as_bytes(),
                ),
                Err(e) => http::write_response(
                    stream,
                    400,
                    "Bad Request",
                    "application/json",
                    http::error_to_json(&e).as_bytes(),
                ),
            };
            finish_replied(lc);
            out
        }
        ("GET", "/info") => http::write_response(
            stream,
            200,
            "OK",
            "application/json",
            info_json(engine).as_bytes(),
        ),
        ("GET", "/metrics") => http::write_response(
            stream,
            200,
            "OK",
            "text/plain; version=0.0.4",
            engine.metrics.render(engine.registry()).as_bytes(),
        ),
        ("GET", "/healthz") => http::write_response(stream, 200, "OK", "text/plain", b"ok\n"),
        ("POST", "/shutdown") => {
            let r = http::write_response(stream, 200, "OK", "text/plain", b"draining\n");
            let _ = stream.flush();
            shutdown.trigger();
            r
        }
        _ => http::write_response(
            stream,
            404,
            "Not Found",
            "application/json",
            http::error_to_json(&format!("no route {} {}", req.method, req.path)).as_bytes(),
        ),
    }
}
