//! The evaluation engine: a cache of `Fmm` instances keyed by request
//! [`Shape`], all sharing one process-wide [`PlanRegistry`], plus the
//! batch execution path that fans a coalesced batch through
//! [`Fmm::evaluate_batch`] and slices each request's result back out.

use crate::batcher::Job;
use crate::metrics::Metrics;
use crate::protocol::{EvalResponse, Shape};
use fmm_core::{BatchRequest, Fmm, FmmConfig, PlanRegistry, Precision, Separation};
use fmm_sync::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Depth bound on requests: deeper hierarchies than this are almost
/// certainly hostile (8^9 boxes) rather than useful.
const MAX_DEPTH: u32 = 7;

pub struct Engine {
    registry: Arc<PlanRegistry>,
    // det: keyed lookups only; never iterated.
    fmms: RwLock<HashMap<Shape, Arc<Fmm>>>,
    pub metrics: Arc<Metrics>,
}

impl Engine {
    pub fn new(registry_capacity: usize) -> Self {
        Engine {
            registry: Arc::new(PlanRegistry::new(registry_capacity)),
            // det: see the field justification.
            fmms: RwLock::new(HashMap::new()),
            metrics: Arc::new(Metrics::default()),
        }
    }

    pub fn registry(&self) -> &Arc<PlanRegistry> {
        &self.registry
    }

    fn config_for(shape: &Shape) -> Result<FmmConfig, String> {
        if shape.depth < 2 || shape.depth > MAX_DEPTH {
            return Err(format!(
                "depth {} out of the served range 2..={}",
                shape.depth, MAX_DEPTH
            ));
        }
        if shape.order == 0 || shape.order > 16 {
            return Err(format!(
                "order {} out of the served range 1..=16",
                shape.order
            ));
        }
        let separation = match shape.separation {
            1 => Separation::One,
            2 => Separation::Two,
            d => return Err(format!("separation {} not in {{1, 2}}", d)),
        };
        let mut cfg = FmmConfig::order(shape.order as usize)
            .depth(shape.depth)
            .separation(separation);
        if shape.mixed {
            cfg = cfg.precision(Precision::Mixed);
        }
        cfg.validate()?;
        Ok(cfg)
    }

    /// The `Fmm` instance serving `shape`, built on first use. All
    /// instances resolve plans from the shared registry, so a new tenant
    /// whose plan key matches a resident one costs zero plan builds.
    pub fn fmm_for(&self, shape: &Shape) -> Result<Arc<Fmm>, String> {
        if let Some(f) = self.fmms.read().unwrap().get(shape) {
            return Ok(Arc::clone(f));
        }
        let cfg = Self::config_for(shape)?;
        let built = Arc::new(
            Fmm::with_registry(cfg, Arc::clone(&self.registry)).map_err(|e| e.to_string())?,
        );
        let mut w = self.fmms.write().unwrap();
        // Double-check: another tenant may have built it while we did.
        Ok(Arc::clone(w.entry(*shape).or_insert(built)))
    }

    /// Execute one coalesced batch and deliver each job its slice. Every
    /// job receives exactly one message, success or failure.
    pub fn run_batch(&self, shape: Shape, jobs: Vec<Job>) {
        let m = &self.metrics;
        Metrics::inc(&m.batches_total);
        Metrics::add(&m.batched_requests_total, jobs.len() as u64);
        if jobs.len() == 1 {
            Metrics::inc(&m.solo_batches_total);
        }
        let particles: usize = jobs.iter().map(|j| j.positions.len()).sum();
        Metrics::add(&m.particles_total, particles as u64);

        let fail_all = |jobs: &[Job], msg: &str| {
            Metrics::add(&m.errors_total, jobs.len() as u64);
            for j in jobs {
                let _ = j.tx.send(Err(msg.to_string()));
            }
        };

        let fmm = match self.fmm_for(&shape) {
            Ok(f) => f,
            Err(e) => return fail_all(&jobs, &e),
        };
        let requests: Vec<BatchRequest> = jobs
            .iter()
            .map(|j| BatchRequest {
                positions: &j.positions,
                charges: &j.charges,
            })
            .collect();
        let out = if shape.forces {
            fmm.evaluate_batch_forces(&requests)
        } else {
            fmm.evaluate_batch(&requests)
        };
        let out = match out {
            Ok(o) => o,
            Err(e) => return fail_all(&jobs, &e.to_string()),
        };
        let batch_size = jobs.len();
        for (i, j) in jobs.iter().enumerate() {
            let resp = EvalResponse {
                potentials: out.potentials_of(i).to_vec(),
                fields: out.fields_of(i).map(|f| f.to_vec()),
                batch_size,
            };
            let _ = j.tx.send(Ok(resp));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_sync::mpsc;

    fn shape() -> Shape {
        Shape {
            order: 3,
            depth: 2,
            separation: 2,
            mixed: false,
            forces: false,
        }
    }

    #[test]
    fn instances_are_cached_and_share_the_registry() {
        let eng = Engine::new(8);
        let a = eng.fmm_for(&shape()).unwrap();
        let b = eng.fmm_for(&shape()).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let mut forces = shape();
        forces.forces = true;
        // A forces-only difference is a distinct instance but the same
        // plan key, so serving both costs one plan build.
        let c = eng.fmm_for(&forces).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        a.plan_for(2);
        c.plan_for(2);
        assert_eq!(eng.registry().stats().plan_builds, 1);
    }

    #[test]
    fn bad_shapes_are_rejected() {
        let eng = Engine::new(8);
        let mut s = shape();
        s.depth = 1;
        assert!(eng.fmm_for(&s).is_err());
        s = shape();
        s.separation = 3;
        assert!(eng.fmm_for(&s).is_err());
    }

    #[test]
    fn run_batch_answers_every_job() {
        let eng = Engine::new(8);
        let mut jobs = Vec::new();
        let mut rxs = Vec::new();
        for i in 0..3 {
            let (tx, rx) = mpsc::sync_channel(1);
            jobs.push(Job {
                positions: (0..32)
                    .map(|j| {
                        let f = (i * 37 + j) as f64 / 40.0;
                        [f % 1.0, (f * 1.7) % 1.0, (f * 2.3) % 1.0]
                    })
                    .collect(),
                charges: vec![1.0; 32],
                tx,
            });
            rxs.push(rx);
        }
        eng.run_batch(shape(), jobs);
        for rx in rxs {
            let resp = rx.recv().unwrap().unwrap();
            assert_eq!(resp.potentials.len(), 32);
            assert_eq!(resp.batch_size, 3);
        }
        assert_eq!(eng.registry().stats().plan_builds, 1);
    }
}
