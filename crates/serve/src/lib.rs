//! # fmm-serve — a batched, multi-tenant evaluation service
//!
//! The paper's central aggregation trick (§2, item 2) batches many small
//! O(P²) translations into a few large multiple-instance GEMMs. This
//! crate replays that trick across *requests*: a long-running, std-only
//! (no async runtime) TCP server whose **coalescing batcher** merges
//! same-shape requests within a time/size window into one
//! [`fmm_core::Fmm::evaluate_batch`] call, and whose tenants' `Fmm`
//! instances all resolve traversal plans from one process-wide
//! [`fmm_core::PlanRegistry`] — a new tenant whose
//! `(depth, K, separation, executor, kernel, precision)` matches a
//! resident plan costs zero plan builds.
//!
//! Two front doors on one port, distinguished by the first bytes of the
//! connection:
//! - a length-prefixed **binary protocol** (magic `FMM1`; `f64` LE bit
//!   patterns, so a round-trip is bitwise by construction) — see
//!   [`protocol`];
//! - minimal **HTTP/1.1 + JSON** for `curl` and quick integrations —
//!   `POST /evaluate`, `GET /info`, `GET /metrics` (Prometheus-style),
//!   `GET /healthz`, `POST /shutdown` — see [`http`].
//!
//! Batching changes scheduling, never arithmetic: a batched response is
//! bitwise identical to a solo [`fmm_core::Fmm::evaluate`] of the same
//! request (`crates/core/tests/batch_serve.rs` pins this).

pub mod batcher;
pub mod engine;
pub mod http;
pub mod json;
pub mod lifecycle;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use batcher::Batcher;
pub use engine::Engine;
pub use metrics::Metrics;
pub use protocol::{EvalRequest, EvalResponse, Shape};
pub use server::{ServeConfig, Server};
