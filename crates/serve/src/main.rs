//! The `fmm-serve` binary: start the evaluation service and run until a
//! shutdown request arrives on either front door.
//!
//! ```text
//! fmm-serve [--addr 127.0.0.1:7331] [--window-us 2000] [--max-batch 64]
//!           [--conn-threads 4] [--exec-threads 2] [--registry-capacity 64]
//! ```

use fmm_serve::{ServeConfig, Server};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: fmm-serve [--addr HOST:PORT] [--window-us N] [--max-batch N]\n\
         \x20                [--conn-threads N] [--exec-threads N] [--registry-capacity N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:7331".into(),
        ..ServeConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut grab = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => cfg.addr = grab(),
            "--window-us" => {
                cfg.window = Duration::from_micros(grab().parse().unwrap_or_else(|_| usage()))
            }
            "--max-batch" => cfg.max_batch = grab().parse().unwrap_or_else(|_| usage()),
            "--conn-threads" => cfg.conn_threads = grab().parse().unwrap_or_else(|_| usage()),
            "--exec-threads" => cfg.exec_threads = grab().parse().unwrap_or_else(|_| usage()),
            "--registry-capacity" => {
                cfg.registry_capacity = grab().parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }

    let server = match Server::start(cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fmm-serve: cannot bind {}: {}", cfg.addr, e);
            std::process::exit(1);
        }
    };
    println!(
        "fmm-serve listening on {} (window {:?}, max batch {}, {} conn / {} exec threads)",
        server.local_addr(),
        cfg.window,
        cfg.max_batch,
        cfg.conn_threads,
        cfg.exec_threads
    );
    server.join();
    println!("fmm-serve: drained, bye");
}
