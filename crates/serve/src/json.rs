//! Minimal JSON: a recursive-descent parser and a writer, sufficient for
//! the service's request/response bodies. No external dependencies (the
//! build environment is offline), and numerically faithful: `f64` values
//! are written with Rust's `Display`, which produces the shortest string
//! that parses back to the identical bits, so potentials survive a JSON
//! round-trip bit-for-bit.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects use a `BTreeMap` so serialization order is
/// deterministic (sorted keys).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_f64().and_then(|x| {
            if x >= 0.0 && x.fract() == 0.0 {
                Some(x as usize)
            } else {
                None
            }
        })
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A numeric array as a flat `Vec<f64>`.
    pub fn as_f64_array(&self) -> Option<Vec<f64>> {
        match self {
            Value::Arr(v) => v.iter().map(Value::as_f64).collect(),
            _ => None,
        }
    }
}

/// Parse a complete JSON document.
pub fn parse(s: &str) -> Result<Value, String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|x| x as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at offset {}", other, self.i)),
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?;
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {:?}: {}", s, e))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|e| e.to_string())?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.i += 4;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(v));
                }
                other => return Err(format!("expected ',' or ']', found {:?}", other)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        // det: a BTreeMap, so iteration (and re-serialization) is sorted,
        // never insertion- or hash-ordered.
        let mut m = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let val = self.value()?;
            m.insert(key, val);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(m));
                }
                other => return Err(format!("expected ',' or '}}', found {:?}", other)),
            }
        }
    }
}

/// Serialize a value. Numbers use `f64::Display` (shortest round-trip).
pub fn write(v: &Value) -> String {
    let mut s = String::new();
    write_into(v, &mut s);
    s
}

fn write_into(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(x) => {
            if x.is_finite() {
                let _ = write!(out, "{}", x);
            } else {
                // JSON has no non-finite numbers; null is the least-bad
                // representation (requests producing these are bugs).
                out.push_str("null");
            }
        }
        Value::Str(s) => write_str(s, out),
        Value::Arr(a) => {
            out.push('[');
            for (i, x) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_into(x, out);
            }
            out.push(']');
        }
        Value::Obj(m) => {
            out.push('{');
            for (i, (k, x)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_str(k, out);
                out.push(':');
                write_into(x, out);
            }
            out.push('}');
        }
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience: an f64 slice as a JSON array value.
pub fn num_array(xs: &[f64]) -> Value {
    Value::Arr(xs.iter().map(|&x| Value::Num(x)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let doc = r#"{"a": [1, 2.5, -3e-2], "b": {"c": true, "d": null}, "s": "x\"y\n"}"#;
        let v = parse(doc).unwrap();
        let re = parse(&write(&v)).unwrap();
        assert_eq!(v, re);
    }

    #[test]
    fn f64_round_trip_is_bitwise() {
        let xs = [
            1.0 / 3.0,
            -0.0,
            1e-300,
            std::f64::consts::PI,
            6.02214076e23,
            f64::MIN_POSITIVE,
        ];
        let v = num_array(&xs);
        let back = parse(&write(&v)).unwrap().as_f64_array().unwrap();
        for (a, b) in xs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("{\"a\":1} x").is_err());
    }
}
