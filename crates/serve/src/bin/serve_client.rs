//! Example client for fmm-serve: exercises both front doors and verifies
//! that served results are bitwise identical to a local
//! [`fmm_core::Fmm::evaluate`] of the same request.
//!
//! ```text
//! serve-client --addr 127.0.0.1:7331 json      # HTTP/JSON round-trip + verify
//! serve-client --addr 127.0.0.1:7331 binary    # binary round-trip + verify
//! serve-client --addr 127.0.0.1:7331 storm     # 16 concurrent binary requests
//! serve-client --addr 127.0.0.1:7331 metrics   # scrape /metrics
//! serve-client --addr 127.0.0.1:7331 info      # GET /info
//! serve-client --addr 127.0.0.1:7331 shutdown  # request graceful drain
//! ```
//!
//! Exits non-zero on any mismatch or protocol error.

use fmm_core::{Fmm, FmmConfig};
use fmm_serve::protocol::{self, EvalRequest, Opcode, Shape};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

fn system(n: usize, seed: u64) -> (Vec<[f64; 3]>, Vec<f64>) {
    // The repo's standard LCG (bench/tests), so servers and clients
    // agree on inputs without sharing code.
    let mut state = seed;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let pts: Vec<[f64; 3]> = (0..n).map(|_| [next(), next(), next()]).collect();
    let q: Vec<f64> = (0..n).map(|_| next() * 2.0 - 1.0).collect();
    (pts, q)
}

fn shape() -> Shape {
    Shape {
        order: 5,
        depth: 2,
        separation: 2,
        mixed: false,
        forces: false,
    }
}

fn local_reference(positions: &[[f64; 3]], charges: &[f64]) -> Vec<f64> {
    let fmm = Fmm::new(FmmConfig::order(5).depth(2)).expect("local config");
    fmm.evaluate(positions, charges)
        .expect("local evaluate")
        .potentials
}

fn http_exchange(addr: &str, request: &str) -> Result<(String, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream
        .write_all(request.as_bytes())
        .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    reader.read_line(&mut status).map_err(|e| e.to_string())?;
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        reader.read_line(&mut h).map_err(|e| e.to_string())?;
        if h.trim_end().is_empty() {
            break;
        }
        if let Some((name, val)) = h.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = val.trim().parse().map_err(|_| "bad content-length")?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| e.to_string())?;
    Ok((
        status.trim_end().to_string(),
        String::from_utf8_lossy(&body).into_owned(),
    ))
}

fn http_post(addr: &str, path: &str, body: &str) -> Result<(String, String), String> {
    http_exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn http_get(addr: &str, path: &str) -> Result<(String, String), String> {
    http_exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"),
    )
}

fn check_bitwise(got: &[f64], want: &[f64], label: &str) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!(
            "{label}: {} potentials, wanted {}",
            got.len(),
            want.len()
        ));
    }
    for (i, (a, b)) in got.iter().zip(want).enumerate() {
        if a.to_bits() != b.to_bits() {
            return Err(format!(
                "{label}: potential {i} differs: served {a:e} vs local {b:e}"
            ));
        }
    }
    Ok(())
}

fn run_json(addr: &str) -> Result<(), String> {
    let (pts, q) = system(96, 42);
    let flat: Vec<String> = pts
        .iter()
        .flat_map(|p| p.iter().map(|c| format!("{}", c)))
        .collect();
    let charges: Vec<String> = q.iter().map(|c| format!("{}", c)).collect();
    let body = format!(
        "{{\"order\":5,\"depth\":2,\"positions\":[{}],\"charges\":[{}]}}",
        flat.join(","),
        charges.join(",")
    );
    let (status, resp) = http_post(addr, "/evaluate", &body)?;
    if !status.contains("200") {
        return Err(format!("JSON evaluate: {status}: {resp}"));
    }
    let v = fmm_serve::json::parse(&resp)?;
    let served = v
        .get("potentials")
        .and_then(fmm_serve::json::Value::as_f64_array)
        .ok_or("response has no potentials array")?;
    check_bitwise(&served, &local_reference(&pts, &q), "JSON round-trip")?;
    println!("json: OK ({} potentials bitwise identical)", served.len());
    Ok(())
}

fn binary_evaluate(addr: &str, req: &EvalRequest) -> Result<protocol::EvalResponse, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream
        .write_all(&protocol::MAGIC)
        .map_err(|e| e.to_string())?;
    protocol::write_frame(&mut stream, &protocol::encode_evaluate(req))
        .map_err(|e| e.to_string())?;
    let frame = protocol::read_frame(&mut stream).map_err(|e| e.to_string())?;
    protocol::decode_eval_response(&frame, req.shape.forces)
}

fn run_binary(addr: &str) -> Result<(), String> {
    let (pts, q) = system(128, 1234);
    let resp = binary_evaluate(
        addr,
        &EvalRequest {
            shape: shape(),
            positions: pts.clone(),
            charges: q.clone(),
        },
    )?;
    check_bitwise(
        &resp.potentials,
        &local_reference(&pts, &q),
        "binary round-trip",
    )?;
    println!(
        "binary: OK ({} potentials bitwise identical, batch_size {})",
        resp.potentials.len(),
        resp.batch_size
    );
    Ok(())
}

/// Fire concurrent same-shape requests so the server's window actually
/// coalesces them; verify each against the local reference.
fn run_storm(addr: &str) -> Result<(), String> {
    let clients = 16;
    let handles: Vec<_> = (0..clients)
        .map(|i| {
            let addr = addr.to_string();
            std::thread::spawn(move || -> Result<usize, String> {
                let (pts, q) = system(64, 5000 + i as u64);
                let resp = binary_evaluate(
                    &addr,
                    &EvalRequest {
                        shape: shape(),
                        positions: pts.clone(),
                        charges: q.clone(),
                    },
                )?;
                check_bitwise(
                    &resp.potentials,
                    &local_reference(&pts, &q),
                    &format!("storm client {i}"),
                )?;
                Ok(resp.batch_size)
            })
        })
        .collect();
    let mut max_batch = 0usize;
    for h in handles {
        max_batch = max_batch.max(h.join().map_err(|_| "client panicked")??);
    }
    println!("storm: OK ({clients} clients bitwise identical, max batch_size {max_batch})");
    Ok(())
}

fn run_binary_text(addr: &str, op: Opcode) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream
        .write_all(&protocol::MAGIC)
        .map_err(|e| e.to_string())?;
    protocol::write_frame(&mut stream, &[op as u8]).map_err(|e| e.to_string())?;
    let frame = protocol::read_frame(&mut stream).map_err(|e| e.to_string())?;
    protocol::decode_text(&frame)
}

fn main() {
    let mut addr = "127.0.0.1:7331".to_string();
    let mut command = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => {
                addr = args.next().unwrap_or_else(|| {
                    eprintln!("--addr needs a value");
                    std::process::exit(2);
                })
            }
            "json" | "binary" | "storm" | "metrics" | "info" | "shutdown" => command = Some(a),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let command = command.unwrap_or_else(|| {
        eprintln!("usage: serve-client [--addr HOST:PORT] json|binary|storm|metrics|info|shutdown");
        std::process::exit(2);
    });

    let result = match command.as_str() {
        "json" => run_json(&addr),
        "binary" => run_binary(&addr),
        "storm" => run_storm(&addr),
        "metrics" => http_get(&addr, "/metrics").map(|(_, body)| print!("{body}")),
        "info" => run_binary_text(&addr, Opcode::Info).map(|t| println!("{t}")),
        "shutdown" => http_post(&addr, "/shutdown", "").map(|(s, _)| println!("shutdown: {s}")),
        _ => unreachable!(),
    };
    if let Err(e) = result {
        eprintln!("serve-client {command}: FAILED: {e}");
        std::process::exit(1);
    }
}
