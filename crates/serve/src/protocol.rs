//! Wire protocol shared by both front doors.
//!
//! The binary protocol is length-prefixed frames over TCP:
//!
//! ```text
//! magic  "FMM1"          (4 bytes, once per connection, client → server)
//! frame  u32 LE length | payload               (both directions)
//! ```
//!
//! A request payload is `opcode (u8)` followed by opcode-specific data;
//! a response payload is `status (u8)` — 0 = ok, 1 = error — followed by
//! the result (ok) or a UTF-8 message (error). All integers are
//! little-endian; all reals are `f64` LE bit patterns, so a round-trip
//! is bitwise by construction.
//!
//! `Evaluate` request data:
//!
//! ```text
//! flags (u8: bit0 = forces, bit1 = mixed precision)
//! separation (u8: 1 | 2) · order (u16) · depth (u32) · n (u32)
//! positions: 3·n f64 · charges: n f64
//! ```
//!
//! `Evaluate` ok-response data: `n (u32)`, `n` potentials, then (iff
//! forces) `3·n` field components. `Info` and `Metrics` ok-responses
//! carry UTF-8 text (JSON and Prometheus-style respectively); `Shutdown`
//! acknowledges with an empty ok before the server begins draining.

use std::io::{self, Read, Write};

/// Connection preamble identifying the binary protocol (HTTP requests
/// never start with these bytes).
pub const MAGIC: [u8; 4] = *b"FMM1";

/// Largest accepted frame (64 MiB): bounds a single request at ~2.7M
/// particles and keeps a malformed length prefix from looking like an
/// allocation request.
pub const MAX_FRAME: u32 = 64 << 20;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    Evaluate = 1,
    Info = 2,
    Metrics = 3,
    Shutdown = 4,
}

impl Opcode {
    pub fn from_u8(x: u8) -> Option<Opcode> {
        match x {
            1 => Some(Opcode::Evaluate),
            2 => Some(Opcode::Info),
            3 => Some(Opcode::Metrics),
            4 => Some(Opcode::Shutdown),
            _ => None,
        }
    }
}

/// The evaluation parameters every request carries; requests whose shapes
/// agree are coalescable (they resolve to the same `Fmm` instance and
/// plan key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Shape {
    pub order: u16,
    pub depth: u32,
    /// Well-separateness d ∈ {1, 2}.
    pub separation: u8,
    /// Mixed-precision near field.
    pub mixed: bool,
    /// Forces (potentials + fields) rather than potentials only.
    pub forces: bool,
}

/// One parsed evaluation request.
#[derive(Debug, Clone)]
pub struct EvalRequest {
    pub shape: Shape,
    pub positions: Vec<[f64; 3]>,
    pub charges: Vec<f64>,
}

/// One evaluation result (request particle order).
#[derive(Debug, Clone)]
pub struct EvalResponse {
    pub potentials: Vec<f64>,
    pub fields: Option<Vec<[f64; 3]>>,
    /// How many requests shared the batch this one rode in (≥ 1).
    pub batch_size: usize,
}

/// Read one length-prefixed frame payload.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds the {} byte cap", len, MAX_FRAME),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Write one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Encode an `Evaluate` request payload (opcode byte included).
pub fn encode_evaluate(req: &EvalRequest) -> Vec<u8> {
    let n = req.positions.len();
    let mut out = Vec::with_capacity(13 + 8 * (3 * n + n));
    out.push(Opcode::Evaluate as u8);
    let mut flags = 0u8;
    if req.shape.forces {
        flags |= 1;
    }
    if req.shape.mixed {
        flags |= 2;
    }
    out.push(flags);
    out.push(req.shape.separation);
    out.extend_from_slice(&req.shape.order.to_le_bytes());
    out.extend_from_slice(&req.shape.depth.to_le_bytes());
    out.extend_from_slice(&(n as u32).to_le_bytes());
    for p in &req.positions {
        for c in p {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }
    for q in &req.charges {
        out.extend_from_slice(&q.to_le_bytes());
    }
    out
}

fn take<'a>(b: &mut &'a [u8], n: usize) -> Result<&'a [u8], String> {
    if b.len() < n {
        return Err(format!(
            "truncated payload: wanted {} bytes, had {}",
            n,
            b.len()
        ));
    }
    let (head, tail) = b.split_at(n);
    *b = tail;
    Ok(head)
}

fn take_f64s(b: &mut &[u8], n: usize) -> Result<Vec<f64>, String> {
    let raw = take(b, 8 * n)?;
    Ok(raw
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Decode an `Evaluate` request payload (after the opcode byte).
pub fn decode_evaluate(mut b: &[u8]) -> Result<EvalRequest, String> {
    let head = take(&mut b, 12)?;
    let flags = head[0];
    let separation = head[1];
    let order = u16::from_le_bytes(head[2..4].try_into().unwrap());
    let depth = u32::from_le_bytes(head[4..8].try_into().unwrap());
    let n = u32::from_le_bytes(head[8..12].try_into().unwrap()) as usize;
    let pos_flat = take_f64s(&mut b, 3 * n)?;
    let charges = take_f64s(&mut b, n)?;
    if !b.is_empty() {
        return Err(format!("{} trailing bytes after evaluate payload", b.len()));
    }
    let positions = pos_flat
        .chunks_exact(3)
        .map(|c| [c[0], c[1], c[2]])
        .collect();
    Ok(EvalRequest {
        shape: Shape {
            order,
            depth,
            separation,
            mixed: flags & 2 != 0,
            forces: flags & 1 != 0,
        },
        positions,
        charges,
    })
}

/// Encode an ok response for `Evaluate`.
pub fn encode_eval_response(resp: &EvalResponse) -> Vec<u8> {
    let n = resp.potentials.len();
    let mut out = Vec::with_capacity(9 + 8 * n);
    out.push(0u8); // status ok
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&(resp.batch_size as u32).to_le_bytes());
    for p in &resp.potentials {
        out.extend_from_slice(&p.to_le_bytes());
    }
    if let Some(f) = &resp.fields {
        for row in f {
            for c in row {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
    }
    out
}

/// Decode an `Evaluate` response payload. `forces` must match the request.
pub fn decode_eval_response(mut b: &[u8], forces: bool) -> Result<EvalResponse, String> {
    let status = take(&mut b, 1)?[0];
    if status != 0 {
        return Err(String::from_utf8_lossy(b).into_owned());
    }
    let head = take(&mut b, 8)?;
    let n = u32::from_le_bytes(head[0..4].try_into().unwrap()) as usize;
    let batch_size = u32::from_le_bytes(head[4..8].try_into().unwrap()) as usize;
    let potentials = take_f64s(&mut b, n)?;
    let fields = if forces {
        let flat = take_f64s(&mut b, 3 * n)?;
        Some(flat.chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect())
    } else {
        None
    };
    if !b.is_empty() {
        return Err(format!("{} trailing bytes after response", b.len()));
    }
    Ok(EvalResponse {
        potentials,
        fields,
        batch_size,
    })
}

/// Encode an error response.
pub fn encode_error(msg: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + msg.len());
    out.push(1u8);
    out.extend_from_slice(msg.as_bytes());
    out
}

/// Encode an ok response carrying UTF-8 text (`Info` / `Metrics`).
pub fn encode_text(text: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + text.len());
    out.push(0u8);
    out.extend_from_slice(text.as_bytes());
    out
}

/// Decode a text response (`Info` / `Metrics` / `Shutdown` ack).
pub fn decode_text(mut b: &[u8]) -> Result<String, String> {
    let status = take(&mut b, 1)?[0];
    let text = String::from_utf8_lossy(b).into_owned();
    if status != 0 {
        return Err(text);
    }
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_request_round_trips_bitwise() {
        let req = EvalRequest {
            shape: Shape {
                order: 5,
                depth: 2,
                separation: 2,
                mixed: false,
                forces: true,
            },
            positions: vec![[0.1, 0.2, 0.3], [1.0 / 3.0, -0.0, 1e-200]],
            charges: vec![1.0, -2.5],
        };
        let enc = encode_evaluate(&req);
        assert_eq!(enc[0], Opcode::Evaluate as u8);
        let dec = decode_evaluate(&enc[1..]).unwrap();
        assert_eq!(dec.shape, req.shape);
        for (a, b) in dec.positions.iter().zip(&req.positions) {
            for d in 0..3 {
                assert_eq!(a[d].to_bits(), b[d].to_bits());
            }
        }
        for (a, b) in dec.charges.iter().zip(&req.charges) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn eval_response_round_trips() {
        let resp = EvalResponse {
            potentials: vec![1.5, -2.25, 1.0 / 7.0],
            fields: Some(vec![[1.0, 2.0, 3.0]; 3]),
            batch_size: 17,
        };
        let dec = decode_eval_response(&encode_eval_response(&resp), true).unwrap();
        assert_eq!(dec.batch_size, 17);
        for (a, b) in dec.potentials.iter().zip(&resp.potentials) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(dec.fields.unwrap().len(), 3);
    }

    #[test]
    fn error_and_text_paths() {
        assert_eq!(
            decode_text(&encode_error("boom")).unwrap_err(),
            "boom".to_string()
        );
        assert_eq!(decode_text(&encode_text("ok")).unwrap(), "ok");
    }

    #[test]
    fn frame_cap_is_enforced() {
        let mut buf: &[u8] = &(MAX_FRAME + 1).to_le_bytes();
        assert!(read_frame(&mut buf).is_err());
    }
}
