//! # fmm-direct — the O(N²) direct-summation baseline
//!
//! Ground truth for the accuracy experiments and one endpoint of the
//! paper's arithmetic-complexity comparison (the O(N²/M) near-field term
//! in §2.3 is this computation restricted to a neighbourhood). Tiled for
//! cache reuse and parallelized over target tiles with rayon.

#![forbid(unsafe_code)]

use rayon::prelude::*;

/// Tile edge for the blocked all-pairs sweep: targets are processed in
/// tiles of this many particles so the source SoA streams from cache.
const TILE: usize = 512;

/// Potentials Φᵢ = Σ_{j≠i} q_j / |xᵢ − x_j| for all particles.
pub fn potentials(positions: &[[f64; 3]], charges: &[f64]) -> Vec<f64> {
    assert_eq!(positions.len(), charges.len());
    let n = positions.len();
    // SoA copy once: the inner loop then streams four flat arrays.
    let xs: Vec<f64> = positions.iter().map(|p| p[0]).collect();
    let ys: Vec<f64> = positions.iter().map(|p| p[1]).collect();
    let zs: Vec<f64> = positions.iter().map(|p| p[2]).collect();

    let mut out = vec![0.0; n];
    out.par_chunks_mut(TILE).enumerate().for_each(|(t, chunk)| {
        let base = t * TILE;
        for (i, o) in chunk.iter_mut().enumerate() {
            let ti = base + i;
            let (tx, ty, tz) = (xs[ti], ys[ti], zs[ti]);
            let mut acc = 0.0;
            for j in 0..n {
                if j == ti {
                    continue;
                }
                let dx = tx - xs[j];
                let dy = ty - ys[j];
                let dz = tz - zs[j];
                acc += charges[j] / (dx * dx + dy * dy + dz * dz).sqrt();
            }
            *o = acc;
        }
    });
    out
}

/// Potentials and fields (−∇Φ) for all particles.
pub fn potentials_and_fields(positions: &[[f64; 3]], charges: &[f64]) -> (Vec<f64>, Vec<[f64; 3]>) {
    assert_eq!(positions.len(), charges.len());
    let n = positions.len();
    let xs: Vec<f64> = positions.iter().map(|p| p[0]).collect();
    let ys: Vec<f64> = positions.iter().map(|p| p[1]).collect();
    let zs: Vec<f64> = positions.iter().map(|p| p[2]).collect();

    let mut pot = vec![0.0; n];
    let mut field = vec![[0.0; 3]; n];
    pot.par_chunks_mut(TILE)
        .zip(field.par_chunks_mut(TILE))
        .enumerate()
        .for_each(|(t, (pc, fc))| {
            let base = t * TILE;
            for i in 0..pc.len() {
                let ti = base + i;
                let (tx, ty, tz) = (xs[ti], ys[ti], zs[ti]);
                let mut p_acc = 0.0;
                let mut f_acc = [0.0; 3];
                for j in 0..n {
                    if j == ti {
                        continue;
                    }
                    let dx = tx - xs[j];
                    let dy = ty - ys[j];
                    let dz = tz - zs[j];
                    let r2 = dx * dx + dy * dy + dz * dz;
                    let inv_r = 1.0 / r2.sqrt();
                    let qr = charges[j] * inv_r;
                    p_acc += qr;
                    let qr3 = qr * inv_r * inv_r;
                    f_acc[0] += qr3 * dx;
                    f_acc[1] += qr3 * dy;
                    f_acc[2] += qr3 * dz;
                }
                pc[i] = p_acc;
                fc[i] = f_acc;
            }
        });
    (pot, field)
}

/// Potential at arbitrary evaluation points (not necessarily particles).
pub fn potentials_at(targets: &[[f64; 3]], positions: &[[f64; 3]], charges: &[f64]) -> Vec<f64> {
    assert_eq!(positions.len(), charges.len());
    targets
        .par_iter()
        .map(|t| {
            positions
                .iter()
                .zip(charges)
                .map(|(p, q)| {
                    let dx = t[0] - p[0];
                    let dy = t[1] - p[1];
                    let dz = t[2] - p[2];
                    let r2 = dx * dx + dy * dy + dz * dz;
                    if r2 == 0.0 {
                        0.0
                    } else {
                        q / r2.sqrt()
                    }
                })
                .sum()
        })
        .collect()
}

/// Flops of a full direct potential evaluation.
pub const fn direct_flops(n: usize) -> u64 {
    (n as u64) * (n as u64 - 1) * 10
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_body() {
        let pos = [[0.0, 0.0, 0.0], [2.0, 0.0, 0.0]];
        let q = [3.0, 5.0];
        let p = potentials(&pos, &q);
        assert!((p[0] - 2.5).abs() < 1e-15);
        assert!((p[1] - 1.5).abs() < 1e-15);
    }

    #[test]
    fn symmetric_pair_forces_cancel() {
        // Total momentum change: Σ qᵢ Eᵢ = 0 for any system (Newton's
        // third law).
        let pos = [
            [0.1, 0.2, 0.3],
            [0.9, 0.5, 0.1],
            [0.4, 0.8, 0.7],
            [0.6, 0.1, 0.9],
        ];
        let q = [1.0, -2.0, 0.5, 1.5];
        let (_, f) = potentials_and_fields(&pos, &q);
        let mut total = [0.0f64; 3];
        for (qi, fi) in q.iter().zip(&f) {
            for (ta, fa) in total.iter_mut().zip(fi) {
                *ta += qi * fa;
            }
        }
        for (a, t) in total.iter().enumerate() {
            assert!(t.abs() < 1e-12, "axis {}: {}", a, t);
        }
    }

    #[test]
    fn potentials_at_matches_self_evaluation() {
        let pos = vec![[0.0, 0.0, 0.0], [1.0, 1.0, 1.0], [0.5, 0.0, 0.5]];
        let q = vec![1.0, 2.0, -1.0];
        let self_pot = potentials(&pos, &q);
        // Evaluating at a particle position: potentials_at includes the 1/0
        // guard (skips coincident sources), so it matches.
        let at = potentials_at(&pos, &pos, &q);
        for (a, b) in at.iter().zip(&self_pot) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn tiles_cover_everything() {
        // n larger than one tile, check against a naive loop.
        let n = TILE + 77;
        let mut state = 5u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pos: Vec<[f64; 3]> = (0..n).map(|_| [next(), next(), next()]).collect();
        let q: Vec<f64> = (0..n).map(|_| next()).collect();
        let p = potentials(&pos, &q);
        // Check a few indices against a direct loop.
        for &i in &[0usize, TILE - 1, TILE, n - 1] {
            let mut acc = 0.0;
            for j in 0..n {
                if j == i {
                    continue;
                }
                let d = [
                    pos[i][0] - pos[j][0],
                    pos[i][1] - pos[j][1],
                    pos[i][2] - pos[j][2],
                ];
                acc += q[j] / (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            }
            assert!((p[i] - acc).abs() < 1e-10);
        }
    }

    #[test]
    fn flop_count() {
        assert_eq!(direct_flops(100), 100 * 99 * 10);
    }
}
