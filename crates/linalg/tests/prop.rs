//! Scalar-parity property tests for every dispatched kernel family: on any
//! host, every `Kernel::available()` entry must agree with the scalar
//! reference on arbitrary shapes and data — GEMM, GEMV, and the pairwise
//! near-field kernels (f64 and f32).

use fmm_linalg::kernel::{gemm_acc_with, gemv_with, Kernel};
use fmm_linalg::pairwise;
use proptest::prelude::*;

fn values(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0f64..1.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `C += A·B` agrees with the scalar kernel for every family, on
    /// arbitrary shapes spanning all tile-edge paths.
    #[test]
    fn gemm_matches_scalar(m in 1usize..20, k in 1usize..40, n in 1usize..70, seed in 0u64..1000) {
        let pseudo = |s: u64, len: usize| -> Vec<f64> {
            let mut state = (seed ^ s).wrapping_mul(6364136223846793005).wrapping_add(1);
            (0..len).map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            }).collect()
        };
        let a = pseudo(1, m * k);
        let b = pseudo(2, k * n);
        let c0 = pseudo(3, m * n);
        let mut want = c0.clone();
        gemm_acc_with(Kernel::Scalar, m, k, n, &a, &b, &mut want);
        for kernel in Kernel::available() {
            let mut c = c0.clone();
            gemm_acc_with(kernel, m, k, n, &a, &b, &mut c);
            for (x, y) in c.iter().zip(&want) {
                prop_assert!((x - y).abs() < 1e-11 * (1.0 + y.abs()),
                             "{:?} {}x{}x{}: {} vs {}", kernel, m, k, n, x, y);
            }
        }
    }

    /// GEMV agrees with the scalar kernel in both accumulate modes.
    #[test]
    fn gemv_matches_scalar(m in 1usize..50, k in 1usize..80, seed in 0u64..1000) {
        let pseudo = |s: u64, len: usize| -> Vec<f64> {
            let mut state = (seed ^ s).wrapping_mul(6364136223846793005).wrapping_add(1);
            (0..len).map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            }).collect()
        };
        let a = pseudo(4, m * k);
        let x = pseudo(5, k);
        let y0 = pseudo(6, m);
        for accumulate in [false, true] {
            let mut want = y0.clone();
            gemv_with(Kernel::Scalar, m, k, &a, &x, &mut want, accumulate);
            for kernel in Kernel::available() {
                let mut y = y0.clone();
                gemv_with(kernel, m, k, &a, &x, &mut y, accumulate);
                for (p, q) in y.iter().zip(&want) {
                    prop_assert!((p - q).abs() < 1e-11 * (1.0 + q.abs()),
                                 "{:?} {}x{} acc={}", kernel, m, k, accumulate);
                }
            }
        }
    }

    /// The f64 pairwise exchange kernel agrees with scalar for every
    /// family: gathered total and scattered source accumulators.
    #[test]
    fn pairwise_exchange_matches_scalar(
        xs in values(37), ys in values(37), zs in values(37), qs in values(37),
        tq in -1.0f64..1.0,
    ) {
        // Keep the target clear of the sources so 1/r is well-conditioned.
        let (tx, ty, tz) = (2.5, -1.5, 2.0);
        let eps2 = 1e-9;
        let mut want_s = vec![0.0; xs.len()];
        let want = pairwise::exchange_with(
            Kernel::Scalar, tx, ty, tz, tq, eps2, &xs, &ys, &zs, &qs, &mut want_s);
        for kernel in Kernel::available() {
            let mut s = vec![0.0; xs.len()];
            let got = pairwise::exchange_with(
                kernel, tx, ty, tz, tq, eps2, &xs, &ys, &zs, &qs, &mut s);
            prop_assert!((got - want).abs() < 1e-12 * (1.0 + want.abs()), "{:?}", kernel);
            for (a, b) in s.iter().zip(&want_s) {
                prop_assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()), "{:?}", kernel);
            }
            let got_g = pairwise::gather_with(kernel, tx, ty, tz, eps2, &xs, &ys, &zs, &qs);
            prop_assert!((got_g - want).abs() < 1e-12 * (1.0 + want.abs()), "{:?} gather", kernel);
        }
    }

    /// The f32 pairwise kernels track the f64 scalar reference within the
    /// single-precision error budget (a few f32 ulps per term).
    #[test]
    fn pairwise_f32_tracks_f64(
        xs in values(29), ys in values(29), zs in values(29), qs in values(29),
    ) {
        let (tx, ty, tz) = (2.5, -1.5, 2.0);
        let want = pairwise::gather_with(Kernel::Scalar, tx, ty, tz, 0.0, &xs, &ys, &zs, &qs);
        let f32s = |v: &[f64]| v.iter().map(|&x| x as f32).collect::<Vec<f32>>();
        let (xs32, ys32, zs32, qs32) = (f32s(&xs), f32s(&ys), f32s(&zs), f32s(&qs));
        for kernel in Kernel::available() {
            let got = pairwise::gather_f32_with(
                kernel, tx as f32, ty as f32, tz as f32, 0.0, &xs32, &ys32, &zs32, &qs32);
            prop_assert!((got as f64 - want).abs() < 1e-5 * (1.0 + want.abs()),
                         "{:?}: {} vs {}", kernel, got, want);
        }
    }
}
