//! # fmm-linalg — dense linear algebra substrate
//!
//! The SC'96 paper expresses every translation operator of Anderson's
//! hierarchical N-body method as a K×K matrix acting on potential vectors,
//! and aggregates independent translations into (multiple-instance)
//! matrix–matrix products executed by the Connection Machine Scientific
//! Software Library (CMSSL). This crate is the stand-in for that substrate:
//! a small, allocation-conscious dense linear algebra kernel set —
//! GEMV, GEMM, batched ("multiple instance") GEMM — together with flop
//! accounting so the benchmark harness can report *arithmetic efficiency*
//! the way the paper's Table 3 does.
//!
//! Matrices are row-major `f64`. The kernels are written so that the
//! compiler can vectorize the inner loops (contiguous unit-stride access on
//! the innermost index, accumulation into local buffers), following the
//! Rust Performance Book guidance: no allocation and no bounds checks in
//! hot loops.

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx512;
pub mod gemm;
pub mod kernel;
pub mod matrix;
pub mod multi;
#[cfg(target_arch = "aarch64")]
pub(crate) mod neon;
pub mod pairwise;
pub mod perm;

pub use gemm::{gemm_acc, gemm_naive, gemv, gemv_acc};
pub use kernel::{gemm_acc_scalar, gemm_acc_with, gemv_with, Kernel};
pub use matrix::Matrix;
pub use multi::{multi_gemm_acc, multi_gemm_acc_with, MultiGemmPlan};
pub use perm::Permutation;

/// Number of floating point operations for an `m×k` by `k×n` matrix product
/// (multiplies + adds counted separately, as the paper's Mflops rates do).
#[inline]
pub const fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * (m as u64) * (k as u64) * (n as u64)
}

/// Number of floating point operations for an `m×k` matrix–vector product.
#[inline]
pub const fn gemv_flops(m: usize, k: usize) -> u64 {
    2 * (m as u64) * (k as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_counts() {
        assert_eq!(gemm_flops(12, 12, 8), 2 * 12 * 12 * 8);
        assert_eq!(gemv_flops(72, 72), 2 * 72 * 72);
    }
}
