//! GEMV / GEMM entry points.
//!
//! The hot path of the hierarchy traversal is `C += A * B` where `A` is a
//! `K × K` translation matrix and `B` a gathered `K × n` panel of potential
//! vectors (K is 12–120, n is the number of aggregated boxes, often
//! hundreds to thousands). These wrappers dispatch to the microkernels in
//! [`crate::kernel`] — an explicit AVX2+FMA register-tiled kernel when the
//! CPU supports it, the blocked scalar loop otherwise.

use crate::kernel::{gemm_acc_with, gemv_with, Kernel};

/// `y = A * x` where `A` is row-major `m × k`.
#[inline]
pub fn gemv(m: usize, k: usize, a: &[f64], x: &[f64], y: &mut [f64]) {
    gemv_with(Kernel::detect(), m, k, a, x, y, false);
}

/// `y += A * x` where `A` is row-major `m × k`.
#[inline]
pub fn gemv_acc(m: usize, k: usize, a: &[f64], x: &[f64], y: &mut [f64]) {
    gemv_with(Kernel::detect(), m, k, a, x, y, true);
}

/// `C += A * B`, all row-major; `A` is `m × k`, `B` is `k × n`, `C` is `m × n`.
///
/// This is the workhorse behind aggregated translations.
pub fn gemm_acc(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    gemm_acc_with(Kernel::detect(), m, k, n, a, b, c);
}

/// Reference triple-loop GEMM (`C += A * B`) used to validate `gemm_acc`.
pub fn gemm_naive(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(seed: u64, len: usize) -> Vec<f64> {
        // Small deterministic LCG so the tests need no external crates.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn gemv_matches_manual() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let x = vec![1.0, 0.5, -1.0];
        let mut y = vec![0.0; 2];
        gemv(2, 3, &a, &x, &mut y);
        assert!((y[0] - (1.0 + 1.0 - 3.0)).abs() < 1e-15);
        assert!((y[1] - (4.0 + 2.5 - 6.0)).abs() < 1e-15);
    }

    #[test]
    fn gemv_acc_accumulates() {
        let a = vec![2.0]; // 1x1
        let x = vec![3.0];
        let mut y = vec![10.0];
        gemv_acc(1, 1, &a, &x, &mut y);
        assert_eq!(y[0], 16.0);
    }

    #[test]
    fn gemm_matches_naive_various_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (12, 12, 8),
            (72, 72, 4),
            (13, 129, 33),
        ] {
            let a = pseudo(1 + m as u64, m * k);
            let b = pseudo(2 + n as u64, k * n);
            let mut c1 = pseudo(3, m * n);
            let mut c2 = c1.clone();
            gemm_acc(m, k, n, &a, &b, &mut c1);
            gemm_naive(m, k, n, &a, &b, &mut c2);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() < 1e-12, "mismatch for {}x{}x{}", m, k, n);
            }
        }
    }

    #[test]
    fn gemm_vs_repeated_gemv() {
        let (m, k, n) = (9, 9, 17);
        let a = pseudo(11, m * k);
        let b = pseudo(13, k * n);
        let mut c = vec![0.0; m * n];
        gemm_acc(m, k, n, &a, &b, &mut c);
        // Column j of C should equal A * (column j of B).
        for j in 0..n {
            let col: Vec<f64> = (0..k).map(|p| b[p * n + j]).collect();
            let mut y = vec![0.0; m];
            gemv(m, k, &a, &col, &mut y);
            for i in 0..m {
                assert!((c[i * n + j] - y[i]).abs() < 1e-12);
            }
        }
    }
}
