//! Permutations of matrix rows/columns.
//!
//! The paper observes that the eight T1 (and T3) translation matrices are
//! row/column permutations of one another, thanks to the symmetry of the
//! integration-point distribution on the sphere, and discusses using that
//! fact to compress precomputation. This module provides the permutation
//! machinery (and is exercised by `fmm-core`'s symmetry tests, which verify
//! the paper's claim for the icosahedral rule).

use crate::Matrix;

/// A permutation of `0..n`, stored as the image vector: `perm[i]` is where
/// element `i` goes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    image: Vec<usize>,
}

impl Permutation {
    /// Identity permutation on `n` elements.
    pub fn identity(n: usize) -> Self {
        Permutation {
            image: (0..n).collect(),
        }
    }

    /// Build from an image vector; panics unless it is a bijection on
    /// `0..n`.
    pub fn from_image(image: Vec<usize>) -> Self {
        let n = image.len();
        let mut seen = vec![false; n];
        for &v in &image {
            assert!(v < n, "permutation image out of range");
            assert!(!seen[v], "permutation image not injective");
            seen[v] = true;
        }
        Permutation { image }
    }

    pub fn len(&self) -> usize {
        self.image.len()
    }

    pub fn is_empty(&self) -> bool {
        self.image.is_empty()
    }

    #[inline]
    pub fn apply_index(&self, i: usize) -> usize {
        self.image[i]
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0; self.image.len()];
        for (i, &v) in self.image.iter().enumerate() {
            inv[v] = i;
        }
        Permutation { image: inv }
    }

    /// Compose: `(self ∘ other)(i) = self(other(i))`.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len());
        Permutation {
            image: other.image.iter().map(|&i| self.image[i]).collect(),
        }
    }

    /// Permute the rows of `m`: row `i` of the result is row `inv(i)` of the
    /// input, i.e. input row `i` lands at `perm(i)`.
    pub fn permute_rows(&self, m: &Matrix) -> Matrix {
        assert_eq!(self.len(), m.rows());
        let mut out = Matrix::zeros(m.rows(), m.cols());
        for i in 0..m.rows() {
            out.row_mut(self.image[i]).copy_from_slice(m.row(i));
        }
        out
    }

    /// Permute the columns of `m`: input column `j` lands at `perm(j)`.
    pub fn permute_cols(&self, m: &Matrix) -> Matrix {
        assert_eq!(self.len(), m.cols());
        let mut out = Matrix::zeros(m.rows(), m.cols());
        for i in 0..m.rows() {
            let src = m.row(i);
            let dst = out.row_mut(i);
            for (j, &v) in src.iter().enumerate() {
                dst[self.image[j]] = v;
            }
        }
        out
    }

    /// Permute a vector: input element `i` lands at `perm(i)`.
    pub fn permute_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.len(), v.len());
        let mut out = vec![0.0; v.len()];
        for (i, &x) in v.iter().enumerate() {
            out[self.image[i]] = x;
        }
        out
    }
}

/// Find a permutation pair `(p_rows, p_cols)` such that
/// `p_rows . a . p_cols^{-1} == b` entry-wise within `tol`, by greedy row
/// matching; returns `None` if rows cannot be matched. Used to verify the
/// paper's claim that the eight T1/T3 matrices are permutations of each
/// other.
pub fn find_row_permutation(a: &Matrix, b: &Matrix, tol: f64) -> Option<Permutation> {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return None;
    }
    let n = a.rows();
    let mut image = vec![usize::MAX; n];
    let mut used = vec![false; n];
    for (i, im) in image.iter_mut().enumerate() {
        // Sorted row signature comparison: row i of a must equal some row of b
        // up to a column permutation, so compare multisets of entries.
        let mut sa: Vec<f64> = a.row(i).to_vec();
        sa.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let mut found = false;
        for (j, uj) in used.iter_mut().enumerate() {
            if *uj {
                continue;
            }
            let mut sb: Vec<f64> = b.row(j).to_vec();
            sb.sort_by(|x, y| x.partial_cmp(y).unwrap());
            if sa.iter().zip(&sb).all(|(x, y)| (x - y).abs() <= tol) {
                *im = j;
                *uj = true;
                found = true;
                break;
            }
        }
        if !found {
            return None;
        }
    }
    Some(Permutation::from_image(image))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_round_trip() {
        let p = Permutation::from_image(vec![2, 0, 3, 1]);
        let id = p.compose(&p.inverse());
        assert_eq!(id, Permutation::identity(4));
        let id2 = p.inverse().compose(&p);
        assert_eq!(id2, Permutation::identity(4));
    }

    #[test]
    fn permute_vec_and_rows_consistent() {
        let p = Permutation::from_image(vec![1, 2, 0]);
        let v = vec![10.0, 20.0, 30.0];
        assert_eq!(p.permute_vec(&v), vec![30.0, 10.0, 20.0]);
        let m = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        let pm = p.permute_rows(&m);
        assert_eq!(pm.row(1), m.row(0));
        assert_eq!(pm.row(2), m.row(1));
        assert_eq!(pm.row(0), m.row(2));
    }

    #[test]
    fn permute_cols_moves_columns() {
        let p = Permutation::from_image(vec![2, 0, 1]);
        let m = Matrix::from_vec(1, 3, vec![5.0, 6.0, 7.0]);
        let pm = p.permute_cols(&m);
        assert_eq!(pm.as_slice(), &[6.0, 7.0, 5.0]);
    }

    #[test]
    #[should_panic]
    fn bad_image_panics() {
        let _ = Permutation::from_image(vec![0, 0, 2]);
    }

    #[test]
    fn find_row_permutation_identity_case() {
        let m = Matrix::from_fn(4, 4, |i, j| ((i * 13 + j * 7) % 11) as f64);
        let p = find_row_permutation(&m, &m, 1e-12).unwrap();
        // Greedy matching on identical matrices must succeed (not necessarily
        // with the identity if rows repeat, but here rows are distinct).
        assert_eq!(p, Permutation::identity(4));
    }

    #[test]
    fn find_row_permutation_detects_permuted() {
        let m = Matrix::from_fn(4, 4, |i, j| ((i * 13 + j * 7) % 11) as f64);
        let p = Permutation::from_image(vec![3, 1, 0, 2]);
        let pm = p.permute_rows(&m);
        let q = find_row_permutation(&m, &pm, 1e-12).unwrap();
        assert_eq!(q, p);
    }
}
