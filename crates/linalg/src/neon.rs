//! NEON microkernels for aarch64: 2-lane f64 vectors. The GEMM main tile
//! is 2 C-rows × 4 q-registers (8 columns) — 8 independent `vfmaq_f64`
//! chains, matching the ILP structure of the x86 kernels at NEON's width.
//! NEON is architecturally guaranteed on aarch64, so these paths need no
//! runtime feature probe; they are compile-verified by the CI aarch64
//! cross-build job.

#![cfg(target_arch = "aarch64")]

use core::arch::aarch64::*;

/// 2-row × 8-column register-tiled `C += A·B`.
///
/// # Safety
/// Slice lengths must match the `m/k/n` shape (checked by the public
/// wrapper in [`crate::kernel`]). NEON itself is always present on aarch64.
pub unsafe fn gemm_acc(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let cp = c.as_mut_ptr();
    let mut i = 0;
    while i + 2 <= m {
        row_pair(i, k, n, ap, bp, cp);
        i += 2;
    }
    if i < m {
        row_single(i, k, n, ap, bp, cp);
    }
}

unsafe fn row_pair(i: usize, k: usize, n: usize, ap: *const f64, bp: *const f64, cp: *mut f64) {
    let a0row = ap.add(i * k);
    let a1row = ap.add((i + 1) * k);
    let c0row = cp.add(i * n);
    let c1row = cp.add((i + 1) * n);
    let mut j = 0;
    while j + 8 <= n {
        let mut q00 = vld1q_f64(c0row.add(j));
        let mut q01 = vld1q_f64(c0row.add(j + 2));
        let mut q02 = vld1q_f64(c0row.add(j + 4));
        let mut q03 = vld1q_f64(c0row.add(j + 6));
        let mut q10 = vld1q_f64(c1row.add(j));
        let mut q11 = vld1q_f64(c1row.add(j + 2));
        let mut q12 = vld1q_f64(c1row.add(j + 4));
        let mut q13 = vld1q_f64(c1row.add(j + 6));
        for p in 0..k {
            let brow = bp.add(p * n + j);
            let b0 = vld1q_f64(brow);
            let b1 = vld1q_f64(brow.add(2));
            let b2 = vld1q_f64(brow.add(4));
            let b3 = vld1q_f64(brow.add(6));
            let a0 = vdupq_n_f64(*a0row.add(p));
            let a1 = vdupq_n_f64(*a1row.add(p));
            q00 = vfmaq_f64(q00, a0, b0);
            q01 = vfmaq_f64(q01, a0, b1);
            q02 = vfmaq_f64(q02, a0, b2);
            q03 = vfmaq_f64(q03, a0, b3);
            q10 = vfmaq_f64(q10, a1, b0);
            q11 = vfmaq_f64(q11, a1, b1);
            q12 = vfmaq_f64(q12, a1, b2);
            q13 = vfmaq_f64(q13, a1, b3);
        }
        vst1q_f64(c0row.add(j), q00);
        vst1q_f64(c0row.add(j + 2), q01);
        vst1q_f64(c0row.add(j + 4), q02);
        vst1q_f64(c0row.add(j + 6), q03);
        vst1q_f64(c1row.add(j), q10);
        vst1q_f64(c1row.add(j + 2), q11);
        vst1q_f64(c1row.add(j + 4), q12);
        vst1q_f64(c1row.add(j + 6), q13);
        j += 8;
    }
    while j + 2 <= n {
        let mut q0 = vld1q_f64(c0row.add(j));
        let mut q1 = vld1q_f64(c1row.add(j));
        for p in 0..k {
            let bv = vld1q_f64(bp.add(p * n + j));
            q0 = vfmaq_f64(q0, vdupq_n_f64(*a0row.add(p)), bv);
            q1 = vfmaq_f64(q1, vdupq_n_f64(*a1row.add(p)), bv);
        }
        vst1q_f64(c0row.add(j), q0);
        vst1q_f64(c1row.add(j), q1);
        j += 2;
    }
    while j < n {
        let mut s0 = 0.0;
        let mut s1 = 0.0;
        for p in 0..k {
            let bv = *bp.add(p * n + j);
            s0 += *a0row.add(p) * bv;
            s1 += *a1row.add(p) * bv;
        }
        *c0row.add(j) += s0;
        *c1row.add(j) += s1;
        j += 1;
    }
}

unsafe fn row_single(i: usize, k: usize, n: usize, ap: *const f64, bp: *const f64, cp: *mut f64) {
    let arow = ap.add(i * k);
    let crow = cp.add(i * n);
    let mut j = 0;
    while j + 8 <= n {
        let mut q0 = vld1q_f64(crow.add(j));
        let mut q1 = vld1q_f64(crow.add(j + 2));
        let mut q2 = vld1q_f64(crow.add(j + 4));
        let mut q3 = vld1q_f64(crow.add(j + 6));
        for p in 0..k {
            let brow = bp.add(p * n + j);
            let av = vdupq_n_f64(*arow.add(p));
            q0 = vfmaq_f64(q0, av, vld1q_f64(brow));
            q1 = vfmaq_f64(q1, av, vld1q_f64(brow.add(2)));
            q2 = vfmaq_f64(q2, av, vld1q_f64(brow.add(4)));
            q3 = vfmaq_f64(q3, av, vld1q_f64(brow.add(6)));
        }
        vst1q_f64(crow.add(j), q0);
        vst1q_f64(crow.add(j + 2), q1);
        vst1q_f64(crow.add(j + 4), q2);
        vst1q_f64(crow.add(j + 6), q3);
        j += 8;
    }
    while j + 2 <= n {
        let mut q = vld1q_f64(crow.add(j));
        for p in 0..k {
            q = vfmaq_f64(q, vdupq_n_f64(*arow.add(p)), vld1q_f64(bp.add(p * n + j)));
        }
        vst1q_f64(crow.add(j), q);
        j += 2;
    }
    while j < n {
        let mut s = 0.0;
        for p in 0..k {
            s += *arow.add(p) * *bp.add(p * n + j);
        }
        *crow.add(j) += s;
        j += 1;
    }
}

/// Row-wise dot products, 4 accumulators × 2 lanes per row.
///
/// # Safety
/// Slice lengths must match (checked by the public wrapper).
pub unsafe fn gemv(_m: usize, k: usize, a: &[f64], x: &[f64], y: &mut [f64], accumulate: bool) {
    let ap = a.as_ptr();
    let xp = x.as_ptr();
    for (i, yi) in y.iter_mut().enumerate() {
        let row = ap.add(i * k);
        let mut q0 = vdupq_n_f64(0.0);
        let mut q1 = vdupq_n_f64(0.0);
        let mut q2 = vdupq_n_f64(0.0);
        let mut q3 = vdupq_n_f64(0.0);
        let mut p = 0;
        while p + 8 <= k {
            q0 = vfmaq_f64(q0, vld1q_f64(row.add(p)), vld1q_f64(xp.add(p)));
            q1 = vfmaq_f64(q1, vld1q_f64(row.add(p + 2)), vld1q_f64(xp.add(p + 2)));
            q2 = vfmaq_f64(q2, vld1q_f64(row.add(p + 4)), vld1q_f64(xp.add(p + 4)));
            q3 = vfmaq_f64(q3, vld1q_f64(row.add(p + 6)), vld1q_f64(xp.add(p + 6)));
            p += 8;
        }
        while p + 2 <= k {
            q0 = vfmaq_f64(q0, vld1q_f64(row.add(p)), vld1q_f64(xp.add(p)));
            p += 2;
        }
        let mut acc = vaddvq_f64(vaddq_f64(vaddq_f64(q0, q1), vaddq_f64(q2, q3)));
        while p < k {
            acc += *row.add(p) * *xp.add(p);
            p += 1;
        }
        if accumulate {
            *yi += acc;
        } else {
            *yi = acc;
        }
    }
}
