//! Row-major dense matrix type used for translation operators.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `rows × cols` matrix of `f64`.
///
/// Translation operators in Anderson's method are square `K × K` matrices
/// (K = number of sphere integration points), but the type is general so
/// the same storage backs gathered potential panels (`K × n_boxes`).
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector. Panics if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Build a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major backing slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The transpose (fresh allocation).
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry difference against another matrix of the same
    /// shape. Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Apply `self * x` into `y` (overwrite). Shapes: `x.len() == cols`,
    /// `y.len() == rows`.
    pub fn apply(&self, x: &[f64], y: &mut [f64]) {
        crate::gemm::gemv(self.rows, self.cols, &self.data, x, y);
    }

    /// Accumulate `self * x` into `y`.
    pub fn apply_acc(&self, x: &[f64], y: &mut [f64]) {
        crate::gemm::gemv_acc(self.rows, self.cols, &self.data, x, y);
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_apply_is_noop() {
        let m = Matrix::identity(5);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut y = [0.0; 5];
        m.apply(&x, &mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * 7 + j) as f64);
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
    }

    #[test]
    fn from_fn_indexing() {
        let m = Matrix::from_fn(4, 3, |i, j| (10 * i + j) as f64);
        assert_eq!(m[(2, 1)], 21.0);
        assert_eq!(m.row(3), &[30.0, 31.0, 32.0]);
    }

    #[test]
    fn frobenius_norm_simple() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn from_vec_bad_shape_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }
}
