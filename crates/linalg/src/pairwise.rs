//! Pairwise particle–particle microkernels for the near field.
//!
//! One target against a contiguous SoA run of sources, `Σ q_s/√(r²+ε²)`,
//! in two flavours: *gather* (target-only accumulation) and *exchange*
//! (the symmetric Newton's-third-law form — the target gathers while each
//! source accumulates the reciprocal term). Each flavour exists in f64 and
//! in f32, dispatched over the same [`Kernel`] families as the GEMM path:
//!
//! | kernel   | f64 lanes | f32 lanes | rsqrt seed        | NR steps f64/f32 |
//! |----------|-----------|-----------|-------------------|------------------|
//! | scalar   | 1         | 1         | `1.0/x.sqrt()`    | — (exact)        |
//! | avx2+fma | 4         | 8         | `rsqrt_ps` (2⁻¹²) | 3 / 2            |
//! | avx512   | 8         | 16        | `rsqrt14` (2⁻¹⁴)  | 2 / 1            |
//! | neon     | 2         | 4         | `vrsqrte` (~2⁻⁸)  | 3 / 2            |
//!
//! Newton–Raphson squares the relative error each step (`e ← 3/2·e²`), so
//! the f64 paths land at ~1 ulp (2⁻¹⁴ → 2⁻²⁷ → 2⁻⁵³ for AVX-512) and the
//! f32 paths land below f32 machine epsilon. The f32 kernels power the
//! mixed-precision near field; their error budget is derived in DESIGN.md
//! §5.5 ("Kernel tiers and precision modes").

use crate::kernel::Kernel;

/// f64 gather: `Σ q_s/√(r²+ε²)` of one target against a source run.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn gather_with(
    kernel: Kernel,
    tx: f64,
    ty: f64,
    tz: f64,
    eps2: f64,
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    qs: &[f64],
) -> f64 {
    debug_assert!(ys.len() == xs.len() && zs.len() == xs.len() && qs.len() == xs.len());
    match kernel {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: callers obtain the kernel from detect()/supported().
        Kernel::Avx2Fma => unsafe { x86::gather_avx2(tx, ty, tz, eps2, xs, ys, zs, qs) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        Kernel::Avx512 => unsafe { x86::gather_avx512(tx, ty, tz, eps2, xs, ys, zs, qs) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is architecturally guaranteed on aarch64.
        Kernel::Neon => unsafe { arm::gather_neon(tx, ty, tz, eps2, xs, ys, zs, qs) },
        _ => gather_scalar(tx, ty, tz, eps2, xs, ys, zs, qs),
    }
}

/// f64 exchange: the target gathers `Σ q_s·r⁻¹` (returned) while each
/// source accumulates `q_t·r⁻¹` into `s_out`.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn exchange_with(
    kernel: Kernel,
    tx: f64,
    ty: f64,
    tz: f64,
    tq: f64,
    eps2: f64,
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    qs: &[f64],
    s_out: &mut [f64],
) -> f64 {
    debug_assert!(
        ys.len() == xs.len()
            && zs.len() == xs.len()
            && qs.len() == xs.len()
            && s_out.len() == xs.len()
    );
    match kernel {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: callers obtain the kernel from detect()/supported().
        Kernel::Avx2Fma => unsafe {
            x86::exchange_avx2(tx, ty, tz, tq, eps2, xs, ys, zs, qs, s_out)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        Kernel::Avx512 => unsafe {
            x86::exchange_avx512(tx, ty, tz, tq, eps2, xs, ys, zs, qs, s_out)
        },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is architecturally guaranteed on aarch64.
        Kernel::Neon => unsafe { arm::exchange_neon(tx, ty, tz, tq, eps2, xs, ys, zs, qs, s_out) },
        _ => exchange_scalar(tx, ty, tz, tq, eps2, xs, ys, zs, qs, s_out),
    }
}

/// f32 gather (mixed-precision near field).
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn gather_f32_with(
    kernel: Kernel,
    tx: f32,
    ty: f32,
    tz: f32,
    eps2: f32,
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    qs: &[f32],
) -> f32 {
    debug_assert!(ys.len() == xs.len() && zs.len() == xs.len() && qs.len() == xs.len());
    match kernel {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: callers obtain the kernel from detect()/supported().
        Kernel::Avx2Fma => unsafe { x86::gather_f32_avx2(tx, ty, tz, eps2, xs, ys, zs, qs) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        Kernel::Avx512 => unsafe { x86::gather_f32_avx512(tx, ty, tz, eps2, xs, ys, zs, qs) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is architecturally guaranteed on aarch64.
        Kernel::Neon => unsafe { arm::gather_f32_neon(tx, ty, tz, eps2, xs, ys, zs, qs) },
        _ => gather_f32_scalar(tx, ty, tz, eps2, xs, ys, zs, qs),
    }
}

/// f32 exchange (mixed-precision symmetric near field). Every pairwise
/// term is computed in f32, but each source's contribution is widened to
/// f64 before the scatter-add into `s_out`, so f32 rounding never
/// *accumulates* on the source side — the caller likewise adds the
/// returned target partial into an f64 accumulator per call. This keeps
/// the f32 error per output at O(per-term) instead of O(chain length),
/// which is what the documented ≤1e-5 near-field bound relies on (see
/// DESIGN.md §5.5).
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn exchange_f32_with(
    kernel: Kernel,
    tx: f32,
    ty: f32,
    tz: f32,
    tq: f32,
    eps2: f32,
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    qs: &[f32],
    s_out: &mut [f64],
) -> f32 {
    debug_assert!(
        ys.len() == xs.len()
            && zs.len() == xs.len()
            && qs.len() == xs.len()
            && s_out.len() == xs.len()
    );
    match kernel {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: callers obtain the kernel from detect()/supported().
        Kernel::Avx2Fma => unsafe {
            x86::exchange_f32_avx2(tx, ty, tz, tq, eps2, xs, ys, zs, qs, s_out)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        Kernel::Avx512 => unsafe {
            x86::exchange_f32_avx512(tx, ty, tz, tq, eps2, xs, ys, zs, qs, s_out)
        },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is architecturally guaranteed on aarch64.
        Kernel::Neon => unsafe {
            arm::exchange_f32_neon(tx, ty, tz, tq, eps2, xs, ys, zs, qs, s_out)
        },
        _ => exchange_f32_scalar(tx, ty, tz, tq, eps2, xs, ys, zs, qs, s_out),
    }
}

/// f32 exchange over a whole panel of targets against one source box.
/// Semantically one [`exchange_f32_with`] call per target — each target's
/// f32 partial is widened into `t_out[i]`, each source's per-term
/// contributions into `s_out[j]` — but the AVX-512 path serves two
/// targets per source sweep: source coordinates load once per chunk, the
/// two rsqrt chains interleave, and the pair's source-side contributions
/// are summed in f32 (one extra rounding within the box pair, inside the
/// documented error model) before a single widened scatter-add. Other
/// kernels fall back to the per-target routine.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn exchange_f32_panel_with(
    kernel: Kernel,
    txs: &[f32],
    tys: &[f32],
    tzs: &[f32],
    tqs: &[f32],
    eps2: f32,
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    qs: &[f32],
    t_out: &mut [f64],
    s_out: &mut [f64],
) {
    debug_assert!(
        tys.len() == txs.len()
            && tzs.len() == txs.len()
            && tqs.len() == txs.len()
            && t_out.len() == txs.len()
    );
    debug_assert!(
        ys.len() == xs.len()
            && zs.len() == xs.len()
            && qs.len() == xs.len()
            && s_out.len() == xs.len()
    );
    match kernel {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: callers obtain the kernel from detect()/supported();
        // slice lengths checked above.
        Kernel::Avx512 => unsafe {
            x86::exchange_f32_panel_avx512(txs, tys, tzs, tqs, eps2, xs, ys, zs, qs, t_out, s_out)
        },
        _ => {
            for (i, t) in t_out.iter_mut().enumerate() {
                *t += exchange_f32_with(
                    kernel, txs[i], tys[i], tzs[i], tqs[i], eps2, xs, ys, zs, qs, s_out,
                ) as f64;
            }
        }
    }
}

/// f32 potential + field gather: returns `(Σ q·r⁻¹, Σ q·r⁻³·Δ)` for one
/// target against a source run (mixed-precision force near field).
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn force_gather_f32_with(
    kernel: Kernel,
    tx: f32,
    ty: f32,
    tz: f32,
    eps2: f32,
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    qs: &[f32],
) -> (f32, [f32; 3]) {
    debug_assert!(ys.len() == xs.len() && zs.len() == xs.len() && qs.len() == xs.len());
    match kernel {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: callers obtain the kernel from detect()/supported().
        Kernel::Avx2Fma => unsafe { x86::force_gather_f32_avx2(tx, ty, tz, eps2, xs, ys, zs, qs) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        Kernel::Avx512 => unsafe { x86::force_gather_f32_avx512(tx, ty, tz, eps2, xs, ys, zs, qs) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is architecturally guaranteed on aarch64.
        Kernel::Neon => unsafe { arm::force_gather_f32_neon(tx, ty, tz, eps2, xs, ys, zs, qs) },
        _ => force_gather_f32_scalar(tx, ty, tz, eps2, xs, ys, zs, qs),
    }
}

// ---------------------------------------------------------------- scalar

#[allow(clippy::too_many_arguments)]
fn gather_scalar(
    tx: f64,
    ty: f64,
    tz: f64,
    eps2: f64,
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    qs: &[f64],
) -> f64 {
    let mut acc = 0.0;
    for j in 0..xs.len() {
        let dx = tx - xs[j];
        let dy = ty - ys[j];
        let dz = tz - zs[j];
        let r2 = dx * dx + dy * dy + dz * dz + eps2;
        acc += qs[j] / r2.sqrt();
    }
    acc
}

#[allow(clippy::too_many_arguments)]
fn exchange_scalar(
    tx: f64,
    ty: f64,
    tz: f64,
    tq: f64,
    eps2: f64,
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    qs: &[f64],
    s_out: &mut [f64],
) -> f64 {
    let mut acc = 0.0;
    for j in 0..xs.len() {
        let dx = tx - xs[j];
        let dy = ty - ys[j];
        let dz = tz - zs[j];
        let inv_r = 1.0 / (dx * dx + dy * dy + dz * dz + eps2).sqrt();
        acc += qs[j] * inv_r;
        s_out[j] += tq * inv_r;
    }
    acc
}

#[allow(clippy::too_many_arguments)]
fn gather_f32_scalar(
    tx: f32,
    ty: f32,
    tz: f32,
    eps2: f32,
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    qs: &[f32],
) -> f32 {
    let mut acc = 0.0f32;
    for j in 0..xs.len() {
        let dx = tx - xs[j];
        let dy = ty - ys[j];
        let dz = tz - zs[j];
        let r2 = dx * dx + dy * dy + dz * dz + eps2;
        acc += qs[j] / r2.sqrt();
    }
    acc
}

#[allow(clippy::too_many_arguments)]
fn exchange_f32_scalar(
    tx: f32,
    ty: f32,
    tz: f32,
    tq: f32,
    eps2: f32,
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    qs: &[f32],
    s_out: &mut [f64],
) -> f32 {
    let mut acc = 0.0f32;
    for j in 0..xs.len() {
        let dx = tx - xs[j];
        let dy = ty - ys[j];
        let dz = tz - zs[j];
        let inv_r = 1.0 / (dx * dx + dy * dy + dz * dz + eps2).sqrt();
        acc += qs[j] * inv_r;
        s_out[j] += (tq * inv_r) as f64;
    }
    acc
}

#[allow(clippy::too_many_arguments)]
fn force_gather_f32_scalar(
    tx: f32,
    ty: f32,
    tz: f32,
    eps2: f32,
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    qs: &[f32],
) -> (f32, [f32; 3]) {
    let mut p = 0.0f32;
    let mut f = [0.0f32; 3];
    for j in 0..xs.len() {
        let dx = tx - xs[j];
        let dy = ty - ys[j];
        let dz = tz - zs[j];
        let r2 = dx * dx + dy * dy + dz * dz + eps2;
        let inv_r = 1.0 / r2.sqrt();
        let qr = qs[j] * inv_r;
        p += qr;
        let qr3 = qr * inv_r * inv_r;
        f[0] += qr3 * dx;
        f[1] += qr3 * dy;
        f[2] += qr3 * dz;
    }
    (p, f)
}

// ---------------------------------------------------------------- x86-64

#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::*;

    /// 4-lane f64 `x^{-1/2}`: `rsqrt_ps` seed widened + 3 Newton–Raphson
    /// refinements (~4e-4 → 1e-7 → 1e-14 → ~1 ulp).
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn rsqrt_nr(r2: __m256d) -> __m256d {
        let mut y = _mm256_cvtps_pd(_mm_rsqrt_ps(_mm256_cvtpd_ps(r2)));
        let half = _mm256_set1_pd(0.5);
        let three = _mm256_set1_pd(3.0);
        for _ in 0..3 {
            // y ← ½·y·(3 − r²·y²)
            let y2 = _mm256_mul_pd(y, y);
            let t = _mm256_fnmadd_pd(r2, y2, three);
            y = _mm256_mul_pd(_mm256_mul_pd(half, y), t);
        }
        y
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hsum(v: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(v);
        let hi = _mm256_extractf128_pd(v, 1);
        let s = _mm_add_pd(lo, hi);
        _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)))
    }

    /// 8-lane f64 `x^{-1/2}`: `rsqrt14_pd` seed (2⁻¹⁴) + 2 refinements
    /// (2⁻¹⁴ → ~6e-9 → ~5e-17, i.e. ~1 ulp).
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn rsqrt_nr_512(r2: __m512d) -> __m512d {
        let mut y = _mm512_rsqrt14_pd(r2);
        let half = _mm512_set1_pd(0.5);
        let three = _mm512_set1_pd(3.0);
        for _ in 0..2 {
            let y2 = _mm512_mul_pd(y, y);
            let t = _mm512_fnmadd_pd(r2, y2, three);
            y = _mm512_mul_pd(_mm512_mul_pd(half, y), t);
        }
        y
    }

    /// 8-lane f32 `x^{-1/2}`: `rsqrt_ps` seed (2⁻¹²) + 2 refinements.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn rsqrt_nr_ps(r2: __m256) -> __m256 {
        let mut y = _mm256_rsqrt_ps(r2);
        let half = _mm256_set1_ps(0.5);
        let three = _mm256_set1_ps(3.0);
        for _ in 0..2 {
            let y2 = _mm256_mul_ps(y, y);
            let t = _mm256_fnmadd_ps(r2, y2, three);
            y = _mm256_mul_ps(_mm256_mul_ps(half, y), t);
        }
        y
    }

    /// 16-lane f32 `x^{-1/2}`: `rsqrt14_ps` seed (2⁻¹⁴) + 1 refinement
    /// (→ ~6e-9, below f32 epsilon).
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn rsqrt_nr_ps_512(r2: __m512) -> __m512 {
        let y = _mm512_rsqrt14_ps(r2);
        let y2 = _mm512_mul_ps(y, y);
        let t = _mm512_fnmadd_ps(r2, y2, _mm512_set1_ps(3.0));
        _mm512_mul_ps(_mm512_mul_ps(_mm512_set1_ps(0.5), y), t)
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum_ps(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let s = _mm_add_ps(lo, hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
        _mm_cvtss_f32(s)
    }

    /// # Safety
    /// Requires AVX2+FMA; SoA slices must have equal lengths.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn gather_avx2(
        tx: f64,
        ty: f64,
        tz: f64,
        eps2: f64,
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        qs: &[f64],
    ) -> f64 {
        let n = xs.len();
        let txv = _mm256_set1_pd(tx);
        let tyv = _mm256_set1_pd(ty);
        let tzv = _mm256_set1_pd(tz);
        let e2v = _mm256_set1_pd(eps2);
        let mut acc = _mm256_setzero_pd();
        let mut j = 0;
        while j + 4 <= n {
            let dx = _mm256_sub_pd(txv, _mm256_loadu_pd(xs.as_ptr().add(j)));
            let dy = _mm256_sub_pd(tyv, _mm256_loadu_pd(ys.as_ptr().add(j)));
            let dz = _mm256_sub_pd(tzv, _mm256_loadu_pd(zs.as_ptr().add(j)));
            let r2 = _mm256_fmadd_pd(
                dz,
                dz,
                _mm256_fmadd_pd(dy, dy, _mm256_fmadd_pd(dx, dx, e2v)),
            );
            let qv = _mm256_loadu_pd(qs.as_ptr().add(j));
            acc = _mm256_fmadd_pd(qv, rsqrt_nr(r2), acc);
            j += 4;
        }
        let mut total = hsum(acc);
        while j < n {
            let dx = tx - xs[j];
            let dy = ty - ys[j];
            let dz = tz - zs[j];
            total += qs[j] / (dx * dx + dy * dy + dz * dz + eps2).sqrt();
            j += 1;
        }
        total
    }

    /// # Safety
    /// Requires AVX2+FMA; all slices (including `s_out`) equal lengths.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn exchange_avx2(
        tx: f64,
        ty: f64,
        tz: f64,
        tq: f64,
        eps2: f64,
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        qs: &[f64],
        s_out: &mut [f64],
    ) -> f64 {
        let n = xs.len();
        let txv = _mm256_set1_pd(tx);
        let tyv = _mm256_set1_pd(ty);
        let tzv = _mm256_set1_pd(tz);
        let tqv = _mm256_set1_pd(tq);
        let e2v = _mm256_set1_pd(eps2);
        let mut acc = _mm256_setzero_pd();
        let mut j = 0;
        while j + 4 <= n {
            let dx = _mm256_sub_pd(txv, _mm256_loadu_pd(xs.as_ptr().add(j)));
            let dy = _mm256_sub_pd(tyv, _mm256_loadu_pd(ys.as_ptr().add(j)));
            let dz = _mm256_sub_pd(tzv, _mm256_loadu_pd(zs.as_ptr().add(j)));
            let r2 = _mm256_fmadd_pd(
                dz,
                dz,
                _mm256_fmadd_pd(dy, dy, _mm256_fmadd_pd(dx, dx, e2v)),
            );
            let inv_r = rsqrt_nr(r2);
            acc = _mm256_fmadd_pd(_mm256_loadu_pd(qs.as_ptr().add(j)), inv_r, acc);
            let so = s_out.as_mut_ptr().add(j);
            _mm256_storeu_pd(so, _mm256_fmadd_pd(tqv, inv_r, _mm256_loadu_pd(so)));
            j += 4;
        }
        let mut total = hsum(acc);
        while j < n {
            let dx = tx - xs[j];
            let dy = ty - ys[j];
            let dz = tz - zs[j];
            let inv_r = 1.0 / (dx * dx + dy * dy + dz * dz + eps2).sqrt();
            total += qs[j] * inv_r;
            s_out[j] += tq * inv_r;
            j += 1;
        }
        total
    }

    /// # Safety
    /// Requires AVX-512F; SoA slices must have equal lengths.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn gather_avx512(
        tx: f64,
        ty: f64,
        tz: f64,
        eps2: f64,
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        qs: &[f64],
    ) -> f64 {
        let n = xs.len();
        let txv = _mm512_set1_pd(tx);
        let tyv = _mm512_set1_pd(ty);
        let tzv = _mm512_set1_pd(tz);
        let e2v = _mm512_set1_pd(eps2);
        let mut acc = _mm512_setzero_pd();
        let mut j = 0;
        while j + 8 <= n {
            let dx = _mm512_sub_pd(txv, _mm512_loadu_pd(xs.as_ptr().add(j)));
            let dy = _mm512_sub_pd(tyv, _mm512_loadu_pd(ys.as_ptr().add(j)));
            let dz = _mm512_sub_pd(tzv, _mm512_loadu_pd(zs.as_ptr().add(j)));
            let r2 = _mm512_fmadd_pd(
                dz,
                dz,
                _mm512_fmadd_pd(dy, dy, _mm512_fmadd_pd(dx, dx, e2v)),
            );
            let qv = _mm512_loadu_pd(qs.as_ptr().add(j));
            acc = _mm512_fmadd_pd(qv, rsqrt_nr_512(r2), acc);
            j += 8;
        }
        let mut total = _mm512_reduce_add_pd(acc);
        while j < n {
            let dx = tx - xs[j];
            let dy = ty - ys[j];
            let dz = tz - zs[j];
            total += qs[j] / (dx * dx + dy * dy + dz * dz + eps2).sqrt();
            j += 1;
        }
        total
    }

    /// # Safety
    /// Requires AVX-512F; all slices (including `s_out`) equal lengths.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn exchange_avx512(
        tx: f64,
        ty: f64,
        tz: f64,
        tq: f64,
        eps2: f64,
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        qs: &[f64],
        s_out: &mut [f64],
    ) -> f64 {
        let n = xs.len();
        let txv = _mm512_set1_pd(tx);
        let tyv = _mm512_set1_pd(ty);
        let tzv = _mm512_set1_pd(tz);
        let tqv = _mm512_set1_pd(tq);
        let e2v = _mm512_set1_pd(eps2);
        let mut acc = _mm512_setzero_pd();
        let mut j = 0;
        while j + 8 <= n {
            let dx = _mm512_sub_pd(txv, _mm512_loadu_pd(xs.as_ptr().add(j)));
            let dy = _mm512_sub_pd(tyv, _mm512_loadu_pd(ys.as_ptr().add(j)));
            let dz = _mm512_sub_pd(tzv, _mm512_loadu_pd(zs.as_ptr().add(j)));
            let r2 = _mm512_fmadd_pd(
                dz,
                dz,
                _mm512_fmadd_pd(dy, dy, _mm512_fmadd_pd(dx, dx, e2v)),
            );
            let inv_r = rsqrt_nr_512(r2);
            acc = _mm512_fmadd_pd(_mm512_loadu_pd(qs.as_ptr().add(j)), inv_r, acc);
            let so = s_out.as_mut_ptr().add(j);
            _mm512_storeu_pd(so, _mm512_fmadd_pd(tqv, inv_r, _mm512_loadu_pd(so)));
            j += 8;
        }
        let mut total = _mm512_reduce_add_pd(acc);
        while j < n {
            let dx = tx - xs[j];
            let dy = ty - ys[j];
            let dz = tz - zs[j];
            let inv_r = 1.0 / (dx * dx + dy * dy + dz * dz + eps2).sqrt();
            total += qs[j] * inv_r;
            s_out[j] += tq * inv_r;
            j += 1;
        }
        total
    }

    /// # Safety
    /// Requires AVX2+FMA; SoA slices must have equal lengths.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn gather_f32_avx2(
        tx: f32,
        ty: f32,
        tz: f32,
        eps2: f32,
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        qs: &[f32],
    ) -> f32 {
        let n = xs.len();
        let txv = _mm256_set1_ps(tx);
        let tyv = _mm256_set1_ps(ty);
        let tzv = _mm256_set1_ps(tz);
        let e2v = _mm256_set1_ps(eps2);
        let mut acc = _mm256_setzero_ps();
        let mut j = 0;
        while j + 8 <= n {
            let dx = _mm256_sub_ps(txv, _mm256_loadu_ps(xs.as_ptr().add(j)));
            let dy = _mm256_sub_ps(tyv, _mm256_loadu_ps(ys.as_ptr().add(j)));
            let dz = _mm256_sub_ps(tzv, _mm256_loadu_ps(zs.as_ptr().add(j)));
            let r2 = _mm256_fmadd_ps(
                dz,
                dz,
                _mm256_fmadd_ps(dy, dy, _mm256_fmadd_ps(dx, dx, e2v)),
            );
            let qv = _mm256_loadu_ps(qs.as_ptr().add(j));
            acc = _mm256_fmadd_ps(qv, rsqrt_nr_ps(r2), acc);
            j += 8;
        }
        let mut total = hsum_ps(acc);
        while j < n {
            let dx = tx - xs[j];
            let dy = ty - ys[j];
            let dz = tz - zs[j];
            total += qs[j] / (dx * dx + dy * dy + dz * dz + eps2).sqrt();
            j += 1;
        }
        total
    }

    /// # Safety
    /// Requires AVX2+FMA; all slices (including `s_out`) equal lengths.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn exchange_f32_avx2(
        tx: f32,
        ty: f32,
        tz: f32,
        tq: f32,
        eps2: f32,
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        qs: &[f32],
        s_out: &mut [f64],
    ) -> f32 {
        let n = xs.len();
        let txv = _mm256_set1_ps(tx);
        let tyv = _mm256_set1_ps(ty);
        let tzv = _mm256_set1_ps(tz);
        let tqv = _mm256_set1_ps(tq);
        let e2v = _mm256_set1_ps(eps2);
        let mut acc = _mm256_setzero_ps();
        let mut j = 0;
        while j + 8 <= n {
            let dx = _mm256_sub_ps(txv, _mm256_loadu_ps(xs.as_ptr().add(j)));
            let dy = _mm256_sub_ps(tyv, _mm256_loadu_ps(ys.as_ptr().add(j)));
            let dz = _mm256_sub_ps(tzv, _mm256_loadu_ps(zs.as_ptr().add(j)));
            let r2 = _mm256_fmadd_ps(
                dz,
                dz,
                _mm256_fmadd_ps(dy, dy, _mm256_fmadd_ps(dx, dx, e2v)),
            );
            let inv_r = rsqrt_nr_ps(r2);
            acc = _mm256_fmadd_ps(_mm256_loadu_ps(qs.as_ptr().add(j)), inv_r, acc);
            // Widen each source's f32 contribution to f64 for the
            // scatter-add, so source-side rounding never accumulates.
            let contrib = _mm256_mul_ps(tqv, inv_r);
            let lo = _mm256_cvtps_pd(_mm256_castps256_ps128(contrib));
            let hi = _mm256_cvtps_pd(_mm256_extractf128_ps(contrib, 1));
            let so = s_out.as_mut_ptr().add(j);
            _mm256_storeu_pd(so, _mm256_add_pd(_mm256_loadu_pd(so), lo));
            _mm256_storeu_pd(so.add(4), _mm256_add_pd(_mm256_loadu_pd(so.add(4)), hi));
            j += 8;
        }
        let mut total = hsum_ps(acc);
        while j < n {
            let dx = tx - xs[j];
            let dy = ty - ys[j];
            let dz = tz - zs[j];
            let inv_r = 1.0 / (dx * dx + dy * dy + dz * dz + eps2).sqrt();
            total += qs[j] * inv_r;
            s_out[j] += (tq * inv_r) as f64;
            j += 1;
        }
        total
    }

    /// # Safety
    /// Requires AVX-512F; SoA slices must have equal lengths.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn gather_f32_avx512(
        tx: f32,
        ty: f32,
        tz: f32,
        eps2: f32,
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        qs: &[f32],
    ) -> f32 {
        let n = xs.len();
        let txv = _mm512_set1_ps(tx);
        let tyv = _mm512_set1_ps(ty);
        let tzv = _mm512_set1_ps(tz);
        let e2v = _mm512_set1_ps(eps2);
        let mut acc = _mm512_setzero_ps();
        let mut j = 0;
        while j + 16 <= n {
            let dx = _mm512_sub_ps(txv, _mm512_loadu_ps(xs.as_ptr().add(j)));
            let dy = _mm512_sub_ps(tyv, _mm512_loadu_ps(ys.as_ptr().add(j)));
            let dz = _mm512_sub_ps(tzv, _mm512_loadu_ps(zs.as_ptr().add(j)));
            let r2 = _mm512_fmadd_ps(
                dz,
                dz,
                _mm512_fmadd_ps(dy, dy, _mm512_fmadd_ps(dx, dx, e2v)),
            );
            let qv = _mm512_loadu_ps(qs.as_ptr().add(j));
            acc = _mm512_fmadd_ps(qv, rsqrt_nr_ps_512(r2), acc);
            j += 16;
        }
        if j < n {
            // Masked tail: one more 16-lane iteration with dead lanes
            // zeroed. A box holds ~2·⌈p²/2⌉/… ≈ 30 particles at the
            // standard depths, so a scalar tail would dominate the call.
            let m: __mmask16 = (1u16 << (n - j)) - 1;
            let dx = _mm512_sub_ps(txv, _mm512_maskz_loadu_ps(m, xs.as_ptr().add(j)));
            let dy = _mm512_sub_ps(tyv, _mm512_maskz_loadu_ps(m, ys.as_ptr().add(j)));
            let dz = _mm512_sub_ps(tzv, _mm512_maskz_loadu_ps(m, zs.as_ptr().add(j)));
            let r2 = _mm512_fmadd_ps(
                dz,
                dz,
                _mm512_fmadd_ps(dy, dy, _mm512_fmadd_ps(dx, dx, e2v)),
            );
            // Dead lanes hold tx²+ty²+tz²+eps2, which can be 0; pin them
            // to 1.0 so rsqrt stays finite (0·∞ = NaN would poison acc).
            let r2 = _mm512_mask_mov_ps(_mm512_set1_ps(1.0), m, r2);
            let qv = _mm512_maskz_loadu_ps(m, qs.as_ptr().add(j));
            acc = _mm512_fmadd_ps(qv, rsqrt_nr_ps_512(r2), acc);
        }
        _mm512_reduce_add_ps(acc)
    }

    /// # Safety
    /// Requires AVX-512F; all slices (including `s_out`) equal lengths.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn exchange_f32_avx512(
        tx: f32,
        ty: f32,
        tz: f32,
        tq: f32,
        eps2: f32,
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        qs: &[f32],
        s_out: &mut [f64],
    ) -> f32 {
        let n = xs.len();
        let txv = _mm512_set1_ps(tx);
        let tyv = _mm512_set1_ps(ty);
        let tzv = _mm512_set1_ps(tz);
        let tqv = _mm512_set1_ps(tq);
        let e2v = _mm512_set1_ps(eps2);
        let mut acc = _mm512_setzero_ps();
        let mut j = 0;
        while j + 16 <= n {
            let dx = _mm512_sub_ps(txv, _mm512_loadu_ps(xs.as_ptr().add(j)));
            let dy = _mm512_sub_ps(tyv, _mm512_loadu_ps(ys.as_ptr().add(j)));
            let dz = _mm512_sub_ps(tzv, _mm512_loadu_ps(zs.as_ptr().add(j)));
            let r2 = _mm512_fmadd_ps(
                dz,
                dz,
                _mm512_fmadd_ps(dy, dy, _mm512_fmadd_ps(dx, dx, e2v)),
            );
            let inv_r = rsqrt_nr_ps_512(r2);
            acc = _mm512_fmadd_ps(_mm512_loadu_ps(qs.as_ptr().add(j)), inv_r, acc);
            // Widen the 16 f32 contributions to f64 for the scatter-add.
            // The upper 8 lanes come out via an f64x4-pair bitcast
            // (extractf32x8 would need AVX-512DQ; extractf64x4 is plain F).
            let contrib = _mm512_mul_ps(tqv, inv_r);
            let lo8 = _mm512_castps512_ps256(contrib);
            let hi8 = _mm256_castpd_ps(_mm512_extractf64x4_pd(_mm512_castps_pd(contrib), 1));
            let so = s_out.as_mut_ptr().add(j);
            _mm512_storeu_pd(so, _mm512_add_pd(_mm512_loadu_pd(so), _mm512_cvtps_pd(lo8)));
            let so8 = so.add(8);
            _mm512_storeu_pd(
                so8,
                _mm512_add_pd(_mm512_loadu_pd(so8), _mm512_cvtps_pd(hi8)),
            );
            j += 16;
        }
        if j < n {
            // Masked tail (see gather_f32_avx512): dead lanes zeroed, r2
            // pinned to 1.0 to keep rsqrt finite, and the f64 scatter-add
            // write-masked per 8-lane half.
            let m: __mmask16 = (1u16 << (n - j)) - 1;
            let dx = _mm512_sub_ps(txv, _mm512_maskz_loadu_ps(m, xs.as_ptr().add(j)));
            let dy = _mm512_sub_ps(tyv, _mm512_maskz_loadu_ps(m, ys.as_ptr().add(j)));
            let dz = _mm512_sub_ps(tzv, _mm512_maskz_loadu_ps(m, zs.as_ptr().add(j)));
            let r2 = _mm512_fmadd_ps(
                dz,
                dz,
                _mm512_fmadd_ps(dy, dy, _mm512_fmadd_ps(dx, dx, e2v)),
            );
            let r2 = _mm512_mask_mov_ps(_mm512_set1_ps(1.0), m, r2);
            let inv_r = rsqrt_nr_ps_512(r2);
            acc = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, qs.as_ptr().add(j)), inv_r, acc);
            let contrib = _mm512_mul_ps(tqv, inv_r);
            let lo8 = _mm512_castps512_ps256(contrib);
            let hi8 = _mm256_castpd_ps(_mm512_extractf64x4_pd(_mm512_castps_pd(contrib), 1));
            let so = s_out.as_mut_ptr().add(j);
            let (mlo, mhi) = ((m & 0xff) as __mmask8, (m >> 8) as __mmask8);
            let cur = _mm512_maskz_loadu_pd(mlo, so);
            _mm512_mask_storeu_pd(so, mlo, _mm512_add_pd(cur, _mm512_cvtps_pd(lo8)));
            if mhi != 0 {
                let so8 = so.add(8);
                let cur = _mm512_maskz_loadu_pd(mhi, so8);
                _mm512_mask_storeu_pd(so8, mhi, _mm512_add_pd(cur, _mm512_cvtps_pd(hi8)));
            }
        }
        _mm512_reduce_add_ps(acc)
    }

    /// Two-target f32 exchange: one pass over the source box serves a
    /// pair of targets. Source coordinates are loaded once per chunk, the
    /// two rsqrt chains interleave (twice the ILP of the single-target
    /// kernel), and the targets' source-side contributions are summed in
    /// f32 — one extra rounding within the box pair — before the single
    /// widened scatter-add.
    ///
    /// # Safety
    /// Requires AVX-512F; source slices and `s_out` equal lengths.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn exchange_f32_pair_avx512(
        t0: [f32; 4],
        t1: [f32; 4],
        eps2: f32,
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        qs: &[f32],
        s_out: &mut [f64],
    ) -> (f32, f32) {
        let n = xs.len();
        let tx0 = _mm512_set1_ps(t0[0]);
        let ty0 = _mm512_set1_ps(t0[1]);
        let tz0 = _mm512_set1_ps(t0[2]);
        let tq0 = _mm512_set1_ps(t0[3]);
        let tx1 = _mm512_set1_ps(t1[0]);
        let ty1 = _mm512_set1_ps(t1[1]);
        let tz1 = _mm512_set1_ps(t1[2]);
        let tq1 = _mm512_set1_ps(t1[3]);
        let e2v = _mm512_set1_ps(eps2);
        let mut acc0 = _mm512_setzero_ps();
        let mut acc1 = _mm512_setzero_ps();
        let mut j = 0;
        while j + 16 <= n {
            let xv = _mm512_loadu_ps(xs.as_ptr().add(j));
            let yv = _mm512_loadu_ps(ys.as_ptr().add(j));
            let zv = _mm512_loadu_ps(zs.as_ptr().add(j));
            let qv = _mm512_loadu_ps(qs.as_ptr().add(j));
            let dx0 = _mm512_sub_ps(tx0, xv);
            let dy0 = _mm512_sub_ps(ty0, yv);
            let dz0 = _mm512_sub_ps(tz0, zv);
            let dx1 = _mm512_sub_ps(tx1, xv);
            let dy1 = _mm512_sub_ps(ty1, yv);
            let dz1 = _mm512_sub_ps(tz1, zv);
            let r20 = _mm512_fmadd_ps(
                dz0,
                dz0,
                _mm512_fmadd_ps(dy0, dy0, _mm512_fmadd_ps(dx0, dx0, e2v)),
            );
            let r21 = _mm512_fmadd_ps(
                dz1,
                dz1,
                _mm512_fmadd_ps(dy1, dy1, _mm512_fmadd_ps(dx1, dx1, e2v)),
            );
            let inv0 = rsqrt_nr_ps_512(r20);
            let inv1 = rsqrt_nr_ps_512(r21);
            acc0 = _mm512_fmadd_ps(qv, inv0, acc0);
            acc1 = _mm512_fmadd_ps(qv, inv1, acc1);
            let contrib = _mm512_fmadd_ps(tq1, inv1, _mm512_mul_ps(tq0, inv0));
            let lo8 = _mm512_castps512_ps256(contrib);
            let hi8 = _mm256_castpd_ps(_mm512_extractf64x4_pd(_mm512_castps_pd(contrib), 1));
            let so = s_out.as_mut_ptr().add(j);
            _mm512_storeu_pd(so, _mm512_add_pd(_mm512_loadu_pd(so), _mm512_cvtps_pd(lo8)));
            let so8 = so.add(8);
            _mm512_storeu_pd(
                so8,
                _mm512_add_pd(_mm512_loadu_pd(so8), _mm512_cvtps_pd(hi8)),
            );
            j += 16;
        }
        if j < n {
            // Masked tail (see gather_f32_avx512): dead lanes zeroed, r2
            // pinned to 1.0, scatter write-masked per 8-lane half.
            let m: __mmask16 = (1u16 << (n - j)) - 1;
            let xv = _mm512_maskz_loadu_ps(m, xs.as_ptr().add(j));
            let yv = _mm512_maskz_loadu_ps(m, ys.as_ptr().add(j));
            let zv = _mm512_maskz_loadu_ps(m, zs.as_ptr().add(j));
            let qv = _mm512_maskz_loadu_ps(m, qs.as_ptr().add(j));
            let dx0 = _mm512_sub_ps(tx0, xv);
            let dy0 = _mm512_sub_ps(ty0, yv);
            let dz0 = _mm512_sub_ps(tz0, zv);
            let dx1 = _mm512_sub_ps(tx1, xv);
            let dy1 = _mm512_sub_ps(ty1, yv);
            let dz1 = _mm512_sub_ps(tz1, zv);
            let one = _mm512_set1_ps(1.0);
            let r20 = _mm512_fmadd_ps(
                dz0,
                dz0,
                _mm512_fmadd_ps(dy0, dy0, _mm512_fmadd_ps(dx0, dx0, e2v)),
            );
            let r21 = _mm512_fmadd_ps(
                dz1,
                dz1,
                _mm512_fmadd_ps(dy1, dy1, _mm512_fmadd_ps(dx1, dx1, e2v)),
            );
            let inv0 = rsqrt_nr_ps_512(_mm512_mask_mov_ps(one, m, r20));
            let inv1 = rsqrt_nr_ps_512(_mm512_mask_mov_ps(one, m, r21));
            acc0 = _mm512_fmadd_ps(qv, inv0, acc0);
            acc1 = _mm512_fmadd_ps(qv, inv1, acc1);
            let contrib = _mm512_fmadd_ps(tq1, inv1, _mm512_mul_ps(tq0, inv0));
            let lo8 = _mm512_castps512_ps256(contrib);
            let hi8 = _mm256_castpd_ps(_mm512_extractf64x4_pd(_mm512_castps_pd(contrib), 1));
            let so = s_out.as_mut_ptr().add(j);
            let (mlo, mhi) = ((m & 0xff) as __mmask8, (m >> 8) as __mmask8);
            let cur = _mm512_maskz_loadu_pd(mlo, so);
            _mm512_mask_storeu_pd(so, mlo, _mm512_add_pd(cur, _mm512_cvtps_pd(lo8)));
            if mhi != 0 {
                let so8 = so.add(8);
                let cur = _mm512_maskz_loadu_pd(mhi, so8);
                _mm512_mask_storeu_pd(so8, mhi, _mm512_add_pd(cur, _mm512_cvtps_pd(hi8)));
            }
        }
        (_mm512_reduce_add_ps(acc0), _mm512_reduce_add_ps(acc1))
    }

    /// Panel of targets against one source box: pairs of targets share
    /// each source sweep; an odd final target falls back to the
    /// single-target kernel.
    ///
    /// # Safety
    /// Requires AVX-512F; target slices equal lengths, source slices and
    /// `s_out` equal lengths, `t_out.len() == txs.len()`.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn exchange_f32_panel_avx512(
        txs: &[f32],
        tys: &[f32],
        tzs: &[f32],
        tqs: &[f32],
        eps2: f32,
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        qs: &[f32],
        t_out: &mut [f64],
        s_out: &mut [f64],
    ) {
        let nt = txs.len();
        let mut a = 0;
        while a + 2 <= nt {
            let (p0, p1) = exchange_f32_pair_avx512(
                [txs[a], tys[a], tzs[a], tqs[a]],
                [txs[a + 1], tys[a + 1], tzs[a + 1], tqs[a + 1]],
                eps2,
                xs,
                ys,
                zs,
                qs,
                s_out,
            );
            t_out[a] += p0 as f64;
            t_out[a + 1] += p1 as f64;
            a += 2;
        }
        if a < nt {
            t_out[a] +=
                exchange_f32_avx512(txs[a], tys[a], tzs[a], tqs[a], eps2, xs, ys, zs, qs, s_out)
                    as f64;
        }
    }

    /// # Safety
    /// Requires AVX2+FMA; SoA slices must have equal lengths.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn force_gather_f32_avx2(
        tx: f32,
        ty: f32,
        tz: f32,
        eps2: f32,
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        qs: &[f32],
    ) -> (f32, [f32; 3]) {
        let n = xs.len();
        let txv = _mm256_set1_ps(tx);
        let tyv = _mm256_set1_ps(ty);
        let tzv = _mm256_set1_ps(tz);
        let e2v = _mm256_set1_ps(eps2);
        let mut pacc = _mm256_setzero_ps();
        let mut fx = _mm256_setzero_ps();
        let mut fy = _mm256_setzero_ps();
        let mut fz = _mm256_setzero_ps();
        let mut j = 0;
        while j + 8 <= n {
            let dx = _mm256_sub_ps(txv, _mm256_loadu_ps(xs.as_ptr().add(j)));
            let dy = _mm256_sub_ps(tyv, _mm256_loadu_ps(ys.as_ptr().add(j)));
            let dz = _mm256_sub_ps(tzv, _mm256_loadu_ps(zs.as_ptr().add(j)));
            let r2 = _mm256_fmadd_ps(
                dz,
                dz,
                _mm256_fmadd_ps(dy, dy, _mm256_fmadd_ps(dx, dx, e2v)),
            );
            let inv_r = rsqrt_nr_ps(r2);
            let qr = _mm256_mul_ps(_mm256_loadu_ps(qs.as_ptr().add(j)), inv_r);
            pacc = _mm256_add_ps(pacc, qr);
            let qr3 = _mm256_mul_ps(qr, _mm256_mul_ps(inv_r, inv_r));
            fx = _mm256_fmadd_ps(qr3, dx, fx);
            fy = _mm256_fmadd_ps(qr3, dy, fy);
            fz = _mm256_fmadd_ps(qr3, dz, fz);
            j += 8;
        }
        let mut p = hsum_ps(pacc);
        let mut f = [hsum_ps(fx), hsum_ps(fy), hsum_ps(fz)];
        while j < n {
            let dx = tx - xs[j];
            let dy = ty - ys[j];
            let dz = tz - zs[j];
            let r2 = dx * dx + dy * dy + dz * dz + eps2;
            let inv_r = 1.0 / r2.sqrt();
            let qr = qs[j] * inv_r;
            p += qr;
            let qr3 = qr * inv_r * inv_r;
            f[0] += qr3 * dx;
            f[1] += qr3 * dy;
            f[2] += qr3 * dz;
            j += 1;
        }
        (p, f)
    }

    /// # Safety
    /// Requires AVX-512F; SoA slices must have equal lengths.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn force_gather_f32_avx512(
        tx: f32,
        ty: f32,
        tz: f32,
        eps2: f32,
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        qs: &[f32],
    ) -> (f32, [f32; 3]) {
        let n = xs.len();
        let txv = _mm512_set1_ps(tx);
        let tyv = _mm512_set1_ps(ty);
        let tzv = _mm512_set1_ps(tz);
        let e2v = _mm512_set1_ps(eps2);
        let mut pacc = _mm512_setzero_ps();
        let mut fx = _mm512_setzero_ps();
        let mut fy = _mm512_setzero_ps();
        let mut fz = _mm512_setzero_ps();
        let mut j = 0;
        while j + 16 <= n {
            let dx = _mm512_sub_ps(txv, _mm512_loadu_ps(xs.as_ptr().add(j)));
            let dy = _mm512_sub_ps(tyv, _mm512_loadu_ps(ys.as_ptr().add(j)));
            let dz = _mm512_sub_ps(tzv, _mm512_loadu_ps(zs.as_ptr().add(j)));
            let r2 = _mm512_fmadd_ps(
                dz,
                dz,
                _mm512_fmadd_ps(dy, dy, _mm512_fmadd_ps(dx, dx, e2v)),
            );
            let inv_r = rsqrt_nr_ps_512(r2);
            let qr = _mm512_mul_ps(_mm512_loadu_ps(qs.as_ptr().add(j)), inv_r);
            pacc = _mm512_add_ps(pacc, qr);
            let qr3 = _mm512_mul_ps(qr, _mm512_mul_ps(inv_r, inv_r));
            fx = _mm512_fmadd_ps(qr3, dx, fx);
            fy = _mm512_fmadd_ps(qr3, dy, fy);
            fz = _mm512_fmadd_ps(qr3, dz, fz);
            j += 16;
        }
        if j < n {
            // Masked tail (see gather_f32_avx512): q is zeroed on dead
            // lanes so qr and qr3 vanish there; r2 is pinned to 1.0 to
            // keep rsqrt finite.
            let m: __mmask16 = (1u16 << (n - j)) - 1;
            let dx = _mm512_sub_ps(txv, _mm512_maskz_loadu_ps(m, xs.as_ptr().add(j)));
            let dy = _mm512_sub_ps(tyv, _mm512_maskz_loadu_ps(m, ys.as_ptr().add(j)));
            let dz = _mm512_sub_ps(tzv, _mm512_maskz_loadu_ps(m, zs.as_ptr().add(j)));
            let r2 = _mm512_fmadd_ps(
                dz,
                dz,
                _mm512_fmadd_ps(dy, dy, _mm512_fmadd_ps(dx, dx, e2v)),
            );
            let r2 = _mm512_mask_mov_ps(_mm512_set1_ps(1.0), m, r2);
            let inv_r = rsqrt_nr_ps_512(r2);
            let qr = _mm512_mul_ps(_mm512_maskz_loadu_ps(m, qs.as_ptr().add(j)), inv_r);
            pacc = _mm512_add_ps(pacc, qr);
            let qr3 = _mm512_mul_ps(qr, _mm512_mul_ps(inv_r, inv_r));
            fx = _mm512_fmadd_ps(qr3, dx, fx);
            fy = _mm512_fmadd_ps(qr3, dy, fy);
            fz = _mm512_fmadd_ps(qr3, dz, fz);
        }
        let p = _mm512_reduce_add_ps(pacc);
        let f = [
            _mm512_reduce_add_ps(fx),
            _mm512_reduce_add_ps(fy),
            _mm512_reduce_add_ps(fz),
        ];
        (p, f)
    }
}

// --------------------------------------------------------------- aarch64

#[cfg(target_arch = "aarch64")]
mod arm {
    use core::arch::aarch64::*;

    /// 2-lane f64 `x^{-1/2}`: `vrsqrte` seed (~2⁻⁸) + 3 `vrsqrts` steps.
    #[inline]
    unsafe fn rsqrt_nr_f64(r2: float64x2_t) -> float64x2_t {
        let mut y = vrsqrteq_f64(r2);
        for _ in 0..3 {
            y = vmulq_f64(y, vrsqrtsq_f64(vmulq_f64(r2, y), y));
        }
        y
    }

    /// 4-lane f32 `x^{-1/2}`: `vrsqrte` seed + 2 `vrsqrts` steps.
    #[inline]
    unsafe fn rsqrt_nr_f32(r2: float32x4_t) -> float32x4_t {
        let mut y = vrsqrteq_f32(r2);
        for _ in 0..2 {
            y = vmulq_f32(y, vrsqrtsq_f32(vmulq_f32(r2, y), y));
        }
        y
    }

    /// # Safety
    /// SoA slices must have equal lengths (NEON is always present).
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn gather_neon(
        tx: f64,
        ty: f64,
        tz: f64,
        eps2: f64,
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        qs: &[f64],
    ) -> f64 {
        let n = xs.len();
        let txv = vdupq_n_f64(tx);
        let tyv = vdupq_n_f64(ty);
        let tzv = vdupq_n_f64(tz);
        let e2v = vdupq_n_f64(eps2);
        let mut acc = vdupq_n_f64(0.0);
        let mut j = 0;
        while j + 2 <= n {
            let dx = vsubq_f64(txv, vld1q_f64(xs.as_ptr().add(j)));
            let dy = vsubq_f64(tyv, vld1q_f64(ys.as_ptr().add(j)));
            let dz = vsubq_f64(tzv, vld1q_f64(zs.as_ptr().add(j)));
            let r2 = vfmaq_f64(vfmaq_f64(vfmaq_f64(e2v, dx, dx), dy, dy), dz, dz);
            acc = vfmaq_f64(acc, vld1q_f64(qs.as_ptr().add(j)), rsqrt_nr_f64(r2));
            j += 2;
        }
        let mut total = vaddvq_f64(acc);
        while j < n {
            let dx = tx - xs[j];
            let dy = ty - ys[j];
            let dz = tz - zs[j];
            total += qs[j] / (dx * dx + dy * dy + dz * dz + eps2).sqrt();
            j += 1;
        }
        total
    }

    /// # Safety
    /// All slices (including `s_out`) must have equal lengths.
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn exchange_neon(
        tx: f64,
        ty: f64,
        tz: f64,
        tq: f64,
        eps2: f64,
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        qs: &[f64],
        s_out: &mut [f64],
    ) -> f64 {
        let n = xs.len();
        let txv = vdupq_n_f64(tx);
        let tyv = vdupq_n_f64(ty);
        let tzv = vdupq_n_f64(tz);
        let tqv = vdupq_n_f64(tq);
        let e2v = vdupq_n_f64(eps2);
        let mut acc = vdupq_n_f64(0.0);
        let mut j = 0;
        while j + 2 <= n {
            let dx = vsubq_f64(txv, vld1q_f64(xs.as_ptr().add(j)));
            let dy = vsubq_f64(tyv, vld1q_f64(ys.as_ptr().add(j)));
            let dz = vsubq_f64(tzv, vld1q_f64(zs.as_ptr().add(j)));
            let r2 = vfmaq_f64(vfmaq_f64(vfmaq_f64(e2v, dx, dx), dy, dy), dz, dz);
            let inv_r = rsqrt_nr_f64(r2);
            acc = vfmaq_f64(acc, vld1q_f64(qs.as_ptr().add(j)), inv_r);
            let so = s_out.as_mut_ptr().add(j);
            vst1q_f64(so, vfmaq_f64(vld1q_f64(so), tqv, inv_r));
            j += 2;
        }
        let mut total = vaddvq_f64(acc);
        while j < n {
            let dx = tx - xs[j];
            let dy = ty - ys[j];
            let dz = tz - zs[j];
            let inv_r = 1.0 / (dx * dx + dy * dy + dz * dz + eps2).sqrt();
            total += qs[j] * inv_r;
            s_out[j] += tq * inv_r;
            j += 1;
        }
        total
    }

    /// # Safety
    /// SoA slices must have equal lengths.
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn gather_f32_neon(
        tx: f32,
        ty: f32,
        tz: f32,
        eps2: f32,
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        qs: &[f32],
    ) -> f32 {
        let n = xs.len();
        let txv = vdupq_n_f32(tx);
        let tyv = vdupq_n_f32(ty);
        let tzv = vdupq_n_f32(tz);
        let e2v = vdupq_n_f32(eps2);
        let mut acc = vdupq_n_f32(0.0);
        let mut j = 0;
        while j + 4 <= n {
            let dx = vsubq_f32(txv, vld1q_f32(xs.as_ptr().add(j)));
            let dy = vsubq_f32(tyv, vld1q_f32(ys.as_ptr().add(j)));
            let dz = vsubq_f32(tzv, vld1q_f32(zs.as_ptr().add(j)));
            let r2 = vfmaq_f32(vfmaq_f32(vfmaq_f32(e2v, dx, dx), dy, dy), dz, dz);
            acc = vfmaq_f32(acc, vld1q_f32(qs.as_ptr().add(j)), rsqrt_nr_f32(r2));
            j += 4;
        }
        let mut total = vaddvq_f32(acc);
        while j < n {
            let dx = tx - xs[j];
            let dy = ty - ys[j];
            let dz = tz - zs[j];
            total += qs[j] / (dx * dx + dy * dy + dz * dz + eps2).sqrt();
            j += 1;
        }
        total
    }

    /// # Safety
    /// All slices (including `s_out`) must have equal lengths.
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn exchange_f32_neon(
        tx: f32,
        ty: f32,
        tz: f32,
        tq: f32,
        eps2: f32,
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        qs: &[f32],
        s_out: &mut [f64],
    ) -> f32 {
        let n = xs.len();
        let txv = vdupq_n_f32(tx);
        let tyv = vdupq_n_f32(ty);
        let tzv = vdupq_n_f32(tz);
        let tqv = vdupq_n_f32(tq);
        let e2v = vdupq_n_f32(eps2);
        let mut acc = vdupq_n_f32(0.0);
        let mut j = 0;
        while j + 4 <= n {
            let dx = vsubq_f32(txv, vld1q_f32(xs.as_ptr().add(j)));
            let dy = vsubq_f32(tyv, vld1q_f32(ys.as_ptr().add(j)));
            let dz = vsubq_f32(tzv, vld1q_f32(zs.as_ptr().add(j)));
            let r2 = vfmaq_f32(vfmaq_f32(vfmaq_f32(e2v, dx, dx), dy, dy), dz, dz);
            let inv_r = rsqrt_nr_f32(r2);
            acc = vfmaq_f32(acc, vld1q_f32(qs.as_ptr().add(j)), inv_r);
            // Widen each source's f32 contribution to f64 for the
            // scatter-add, so source-side rounding never accumulates.
            let contrib = vmulq_f32(tqv, inv_r);
            let so = s_out.as_mut_ptr().add(j);
            let lo = vcvt_f64_f32(vget_low_f32(contrib));
            let hi = vcvt_high_f64_f32(contrib);
            vst1q_f64(so, vaddq_f64(vld1q_f64(so), lo));
            vst1q_f64(so.add(2), vaddq_f64(vld1q_f64(so.add(2)), hi));
            j += 4;
        }
        let mut total = vaddvq_f32(acc);
        while j < n {
            let dx = tx - xs[j];
            let dy = ty - ys[j];
            let dz = tz - zs[j];
            let inv_r = 1.0 / (dx * dx + dy * dy + dz * dz + eps2).sqrt();
            total += qs[j] * inv_r;
            s_out[j] += (tq * inv_r) as f64;
            j += 1;
        }
        total
    }

    /// # Safety
    /// SoA slices must have equal lengths.
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn force_gather_f32_neon(
        tx: f32,
        ty: f32,
        tz: f32,
        eps2: f32,
        xs: &[f32],
        ys: &[f32],
        zs: &[f32],
        qs: &[f32],
    ) -> (f32, [f32; 3]) {
        let n = xs.len();
        let txv = vdupq_n_f32(tx);
        let tyv = vdupq_n_f32(ty);
        let tzv = vdupq_n_f32(tz);
        let e2v = vdupq_n_f32(eps2);
        let mut pacc = vdupq_n_f32(0.0);
        let mut fx = vdupq_n_f32(0.0);
        let mut fy = vdupq_n_f32(0.0);
        let mut fz = vdupq_n_f32(0.0);
        let mut j = 0;
        while j + 4 <= n {
            let dx = vsubq_f32(txv, vld1q_f32(xs.as_ptr().add(j)));
            let dy = vsubq_f32(tyv, vld1q_f32(ys.as_ptr().add(j)));
            let dz = vsubq_f32(tzv, vld1q_f32(zs.as_ptr().add(j)));
            let r2 = vfmaq_f32(vfmaq_f32(vfmaq_f32(e2v, dx, dx), dy, dy), dz, dz);
            let inv_r = rsqrt_nr_f32(r2);
            let qr = vmulq_f32(vld1q_f32(qs.as_ptr().add(j)), inv_r);
            pacc = vaddq_f32(pacc, qr);
            let qr3 = vmulq_f32(qr, vmulq_f32(inv_r, inv_r));
            fx = vfmaq_f32(fx, qr3, dx);
            fy = vfmaq_f32(fy, qr3, dy);
            fz = vfmaq_f32(fz, qr3, dz);
            j += 4;
        }
        let mut p = vaddvq_f32(pacc);
        let mut f = [vaddvq_f32(fx), vaddvq_f32(fy), vaddvq_f32(fz)];
        while j < n {
            let dx = tx - xs[j];
            let dy = ty - ys[j];
            let dz = tz - zs[j];
            let r2 = dx * dx + dy * dy + dz * dz + eps2;
            let inv_r = 1.0 / r2.sqrt();
            let qr = qs[j] * inv_r;
            p += qr;
            let qr3 = qr * inv_r * inv_r;
            f[0] += qr3 * dx;
            f[1] += qr3 * dy;
            f[2] += qr3 * dz;
            j += 1;
        }
        (p, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(seed: u64, len: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    /// Sources placed ≥ ~0.1 away from the target so 1/r is well scaled.
    fn soa(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let xs: Vec<f64> = pseudo(seed, n).iter().map(|v| 0.2 + v).collect();
        let ys = pseudo(seed + 1, n);
        let zs = pseudo(seed + 2, n);
        let qs: Vec<f64> = pseudo(seed + 3, n).iter().map(|v| v * 2.0 - 1.0).collect();
        (xs, ys, zs, qs)
    }

    #[test]
    fn f64_gather_and_exchange_agree_across_kernels() {
        for n in [0usize, 1, 3, 4, 7, 8, 9, 16, 31, 200] {
            let (xs, ys, zs, qs) = soa(n, 42);
            let want = gather_with(Kernel::Scalar, 0.0, 0.1, -0.05, 1e-6, &xs, &ys, &zs, &qs);
            let mut want_s = vec![0.1; n];
            let want_x = exchange_with(
                Kernel::Scalar,
                0.0,
                0.1,
                -0.05,
                0.7,
                1e-6,
                &xs,
                &ys,
                &zs,
                &qs,
                &mut want_s,
            );
            for kernel in Kernel::available() {
                let got = gather_with(kernel, 0.0, 0.1, -0.05, 1e-6, &xs, &ys, &zs, &qs);
                assert!(
                    (got - want).abs() < 1e-12 * (1.0 + want.abs()),
                    "{:?} gather n={}: {} vs {}",
                    kernel,
                    n,
                    got,
                    want
                );
                let mut s = vec![0.1; n];
                let got_x = exchange_with(
                    kernel, 0.0, 0.1, -0.05, 0.7, 1e-6, &xs, &ys, &zs, &qs, &mut s,
                );
                assert!((got_x - want_x).abs() < 1e-12 * (1.0 + want_x.abs()));
                for (a, b) in s.iter().zip(&want_s) {
                    assert!(
                        (a - b).abs() < 1e-12 * (1.0 + b.abs()),
                        "{:?} exchange s_out n={}",
                        kernel,
                        n
                    );
                }
            }
        }
    }

    #[test]
    fn f32_kernels_agree_with_f32_scalar() {
        for n in [0usize, 1, 5, 8, 15, 16, 17, 33, 120] {
            let (xs, ys, zs, qs) = soa(n, 7);
            let xs: Vec<f32> = xs.iter().map(|&v| v as f32).collect();
            let ys: Vec<f32> = ys.iter().map(|&v| v as f32).collect();
            let zs: Vec<f32> = zs.iter().map(|&v| v as f32).collect();
            let qs: Vec<f32> = qs.iter().map(|&v| v as f32).collect();
            let want = gather_f32_with(Kernel::Scalar, 0.0, 0.1, -0.05, 0.0, &xs, &ys, &zs, &qs);
            let (wp, wf) =
                force_gather_f32_with(Kernel::Scalar, 0.0, 0.1, -0.05, 0.0, &xs, &ys, &zs, &qs);
            let mut want_s = vec![0.0f64; n];
            let want_x = exchange_f32_with(
                Kernel::Scalar,
                0.0,
                0.1,
                -0.05,
                0.7,
                0.0,
                &xs,
                &ys,
                &zs,
                &qs,
                &mut want_s,
            );
            // The SIMD f32 paths use refined rsqrt estimates: a few f32
            // ulps per term, so compare at ~1e-5 relative.
            let tol = |r: f32| 1e-5 * (1.0 + r.abs());
            for kernel in Kernel::available() {
                let got = gather_f32_with(kernel, 0.0, 0.1, -0.05, 0.0, &xs, &ys, &zs, &qs);
                assert!((got - want).abs() < tol(want), "{:?} n={}", kernel, n);
                let (gp, gf) =
                    force_gather_f32_with(kernel, 0.0, 0.1, -0.05, 0.0, &xs, &ys, &zs, &qs);
                assert!((gp - wp).abs() < tol(wp));
                for d in 0..3 {
                    assert!(
                        (gf[d] - wf[d]).abs() < 10.0 * tol(wf[d]),
                        "{:?} force[{}] n={}: {} vs {}",
                        kernel,
                        d,
                        n,
                        gf[d],
                        wf[d]
                    );
                }
                let mut s = vec![0.0f64; n];
                let got_x = exchange_f32_with(
                    kernel, 0.0, 0.1, -0.05, 0.7, 0.0, &xs, &ys, &zs, &qs, &mut s,
                );
                assert!((got_x - want_x).abs() < tol(want_x));
                for (a, b) in s.iter().zip(&want_s) {
                    assert!((a - b).abs() < 1e-5 * (1.0 + b.abs()));
                }
            }
        }
    }

    #[test]
    fn f32_panel_matches_per_target_calls() {
        // The panel entry point must agree with one exchange_f32_with call
        // per target. The AVX-512 pair path sums the two targets' source
        // contributions in f32 before widening — one extra rounding — so
        // the comparison is at f32 tolerance, not bitwise.
        for (nt, n) in [(1usize, 17usize), (2, 16), (5, 33), (8, 120), (29, 29)] {
            let (sx, sy, sz, sq) = soa(n, 11);
            let (tx, ty, tz, tq) = soa(nt, 13);
            let f = |v: &[f64]| v.iter().map(|&x| x as f32).collect::<Vec<f32>>();
            let (sx, sy, sz, sq) = (f(&sx), f(&sy), f(&sz), f(&sq));
            let (tx, ty, tz, tq) = (f(&tx), f(&ty), f(&tz), f(&tq));
            for kernel in Kernel::available() {
                let mut want_t = vec![0.0f64; nt];
                let mut want_s = vec![0.0f64; n];
                for i in 0..nt {
                    want_t[i] += exchange_f32_with(
                        kernel,
                        tx[i],
                        ty[i],
                        tz[i],
                        tq[i],
                        1e-4,
                        &sx,
                        &sy,
                        &sz,
                        &sq,
                        &mut want_s,
                    ) as f64;
                }
                let mut got_t = vec![0.0f64; nt];
                let mut got_s = vec![0.0f64; n];
                exchange_f32_panel_with(
                    kernel, &tx, &ty, &tz, &tq, 1e-4, &sx, &sy, &sz, &sq, &mut got_t, &mut got_s,
                );
                for (a, b) in got_t.iter().zip(&want_t) {
                    assert!(
                        (a - b).abs() < 1e-5 * (1.0 + b.abs()),
                        "{:?} panel t_out nt={} n={}: {} vs {}",
                        kernel,
                        nt,
                        n,
                        a,
                        b
                    );
                }
                for (a, b) in got_s.iter().zip(&want_s) {
                    assert!(
                        (a - b).abs() < 1e-5 * (1.0 + b.abs()),
                        "{:?} panel s_out nt={} n={}: {} vs {}",
                        kernel,
                        nt,
                        n,
                        a,
                        b
                    );
                }
            }
        }
    }

    #[test]
    fn f32_gather_tracks_f64_reference() {
        // The f32 path against the f64 scalar path: the difference is the
        // f32 representation + rsqrt error, ~1e-6 relative for a
        // well-conditioned sum of ~100 terms.
        let n = 100;
        let (xs, ys, zs, qs) = soa(n, 99);
        let f64_ref = gather_with(Kernel::Scalar, 0.0, 0.1, -0.05, 0.0, &xs, &ys, &zs, &qs);
        let xs32: Vec<f32> = xs.iter().map(|&v| v as f32).collect();
        let ys32: Vec<f32> = ys.iter().map(|&v| v as f32).collect();
        let zs32: Vec<f32> = zs.iter().map(|&v| v as f32).collect();
        let qs32: Vec<f32> = qs.iter().map(|&v| v as f32).collect();
        for kernel in Kernel::available() {
            let got = gather_f32_with(kernel, 0.0, 0.1, -0.05, 0.0, &xs32, &ys32, &zs32, &qs32);
            let rel = (got as f64 - f64_ref).abs() / (1.0 + f64_ref.abs());
            assert!(rel < 1e-5, "{:?}: rel {}", kernel, rel);
        }
    }
}
